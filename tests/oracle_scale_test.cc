// Tests for the continental-scale oracle work: pluggable vertex orderings
// (degree vs CH contraction) with per-ordering parallel-build bit-identity,
// 32-bit quantized label distances (saturation/infinity semantics and the
// proven error bound), the batched multi-source BatchQuery sweep through
// HubLabelOracle / CachedOracle / GatherDistanceColumns, and the
// ordering-identity gate on the determinism workload.

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/builders.h"
#include "src/insertion/insertion.h"
#include "src/model/feasibility.h"
#include "src/parallel/thread_pool.h"
#include "src/shortest/contraction.h"
#include "src/shortest/dijkstra.h"
#include "src/shortest/hub_labels.h"
#include "src/shortest/oracle.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

RoadNetwork MakeTwoComponentGraph() {
  // Two 3x4 grids with no connecting edge.
  std::vector<Point> coords;
  std::vector<EdgeSpec> edges;
  const auto add_grid = [&](double x0, double y0) {
    const VertexId base = static_cast<VertexId>(coords.size());
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 4; ++c) {
        coords.push_back({x0 + c * 1.0, y0 + r * 1.0});
      }
    }
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 4; ++c) {
        const VertexId v = base + static_cast<VertexId>(r * 4 + c);
        if (c + 1 < 4) edges.push_back({v, v + 1, 1.0, RoadClass::kPrimary});
        if (r + 1 < 3) edges.push_back({v, v + 4, 1.0, RoadClass::kPrimary});
      }
    }
  };
  add_grid(0.0, 0.0);
  add_grid(100.0, 100.0);
  return RoadNetwork::FromEdges(std::move(coords), edges);
}

OracleOptions Opts(VertexOrder order, bool quantize) {
  OracleOptions o;
  o.order = order;
  o.quantize = quantize;
  return o;
}

// --------------------------------------------------------- vertex ordering

TEST(HubLabelOrderTest, ContractionOrderIsAPermutation) {
  Rng grng(91);
  const RoadNetwork g = MakeRandomGeometricGraph(150, 10.0, 4, &grng);
  const std::vector<int> rank = ContractionOrder(g);
  ASSERT_EQ(rank.size(), static_cast<std::size_t>(g.num_vertices()));
  std::vector<bool> seen(rank.size(), false);
  for (const int r : rank) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, static_cast<int>(rank.size()));
    ASSERT_FALSE(seen[static_cast<std::size_t>(r)]);
    seen[static_cast<std::size_t>(r)] = true;
  }
}

TEST(HubLabelOrderTest, ContractionOrderMatchesDijkstraOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng grng(40 + seed);
    const RoadNetwork g = MakeRandomGeometricGraph(160, 12.0, 4, &grng);
    HubLabelOracle labels = HubLabelOracle::Build(
        g, nullptr, Opts(VertexOrder::kContraction, false));
    EXPECT_EQ(labels.order(), VertexOrder::kContraction);
    DijkstraOracle truth(&g);
    Rng rng(7 * seed);
    for (int trial = 0; trial < 150; ++trial) {
      const VertexId s = rng.UniformInt(0, g.num_vertices() - 1);
      const VertexId t = rng.UniformInt(0, g.num_vertices() - 1);
      EXPECT_NEAR(labels.Distance(s, t), truth.Distance(s, t), 1e-9)
          << "seed=" << seed << " s=" << s << " t=" << t;
    }
  }
}

TEST(HubLabelOrderTest, ContractionOrderShrinksLabelsOnCityGraph) {
  const RoadNetwork g = MakeNycLike(0.06, 1);
  HubLabelOracle degree =
      HubLabelOracle::Build(g, nullptr, Opts(VertexOrder::kDegree, false));
  HubLabelOracle ch = HubLabelOracle::Build(
      g, nullptr, Opts(VertexOrder::kContraction, false));
  // The CH importance order is the point of the pluggable strategy: it must
  // measurably beat the degree proxy on road-like graphs.
  EXPECT_LT(ch.average_label_size(), degree.average_label_size());
  EXPECT_LT(ch.MemoryBytes(), degree.MemoryBytes());
}

TEST(HubLabelOrderTest, ParallelBuildBitIdenticalPerOrderingAndQuant) {
  Rng grng(77);
  const RoadNetwork g = MakeRandomGeometricGraph(220, 14.0, 4, &grng);
  for (const VertexOrder order :
       {VertexOrder::kDegree, VertexOrder::kContraction}) {
    for (const bool quantize : {false, true}) {
      const OracleOptions opts = Opts(order, quantize);
      const HubLabelOracle seq = HubLabelOracle::Build(g, nullptr, opts);
      for (const int threads : {2, 5, 8}) {
        ThreadPool pool(threads);
        const HubLabelOracle par = HubLabelOracle::Build(g, &pool, opts);
        EXPECT_TRUE(seq.SameLabels(par))
            << "order=" << static_cast<int>(order)
            << " quantize=" << quantize << " threads=" << threads;
      }
    }
  }
}

TEST(HubLabelOrderTest, DefaultOptionsReproduceLegacyBuild) {
  Rng grng(5);
  const RoadNetwork g = MakeRandomGeometricGraph(180, 12.0, 4, &grng);
  const HubLabelOracle legacy = HubLabelOracle::Build(g);
  const HubLabelOracle opted =
      HubLabelOracle::Build(g, nullptr, OracleOptions{});
  EXPECT_TRUE(legacy.SameLabels(opted));
  EXPECT_EQ(legacy.order(), VertexOrder::kDegree);
  EXPECT_FALSE(legacy.quantized());
  EXPECT_EQ(legacy.QuantizationErrorBound(), 0.0);
}

// ------------------------------------------------------------ quantization

TEST(HubLabelQuantTest, HelpersSaturateAndRoundTripInfinity) {
  const double scale = 1000.0;  // quanta per minute
  // Exact infinity survives via the sentinel (and NaN maps to it too —
  // "unknown" must never decode as a finite distance).
  EXPECT_EQ(HubLabelOracle::QuantizeDistance(kInfDistance, scale),
            HubLabelOracle::kQuantInf);
  EXPECT_EQ(HubLabelOracle::DequantizeDistance(HubLabelOracle::kQuantInf,
                                               1.0 / scale),
            kInfDistance);
  EXPECT_EQ(HubLabelOracle::QuantizeDistance(std::nan(""), scale),
            HubLabelOracle::kQuantInf);
  // Near-overflow saturates at the cap instead of wrapping.
  const double huge =
      static_cast<double>(HubLabelOracle::kQuantMax) / scale * 4.0;
  EXPECT_EQ(HubLabelOracle::QuantizeDistance(huge, scale),
            HubLabelOracle::kQuantMax);
  EXPECT_EQ(HubLabelOracle::QuantizeDistance(
                static_cast<double>(HubLabelOracle::kQuantMax) / scale, scale),
            HubLabelOracle::kQuantMax);
  // Zero and sub-quantum values round to the floor of the representation.
  EXPECT_EQ(HubLabelOracle::QuantizeDistance(0.0, scale), 0u);
  EXPECT_EQ(HubLabelOracle::QuantizeDistance(1e-9, scale), 0u);
  EXPECT_EQ(HubLabelOracle::DequantizeDistance(0u, 1.0 / scale), 0.0);
  // Round-trip of a representable value survives within rounding.
  EXPECT_EQ(HubLabelOracle::QuantizeDistance(2.0, scale), 2000u);
  EXPECT_DOUBLE_EQ(HubLabelOracle::DequantizeDistance(2000u, 1.0 / scale),
                   2.0);
}

TEST(HubLabelQuantTest, DisconnectedPairsStayInfinite) {
  const RoadNetwork g = MakeTwoComponentGraph();
  HubLabelOracle labels = HubLabelOracle::Build(
      g, nullptr, Opts(VertexOrder::kDegree, true));
  EXPECT_TRUE(labels.quantized());
  const VertexId a = 0;               // first grid
  const VertexId b = 12;              // second grid
  EXPECT_EQ(labels.Distance(a, b), kInfDistance);
  EXPECT_EQ(labels.Distance(b, a), kInfDistance);
  EXPECT_LT(labels.Distance(0, 1), kInfDistance);
  // The batched sweep agrees.
  std::vector<double> out;
  labels.BatchQuery({a, b}, {b, a}, &out);
  EXPECT_EQ(out[0], kInfDistance);  // a -> b
  EXPECT_EQ(out[1], 0.0);           // a -> a
  EXPECT_EQ(out[2], 0.0);           // b -> b
  EXPECT_EQ(out[3], kInfDistance);  // b -> a
}

TEST(HubLabelQuantTest, ZeroLengthEdgesQuantizeExactly) {
  // All-zero edge costs make every finite distance 0; the degenerate scale
  // must not divide by zero, and results stay exact.
  const RoadNetwork g = MakePathGraph(12, 0.0);
  HubLabelOracle labels = HubLabelOracle::Build(
      g, nullptr, Opts(VertexOrder::kDegree, true));
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const VertexId s = rng.UniformInt(0, g.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, g.num_vertices() - 1);
    EXPECT_EQ(labels.Distance(s, t), 0.0);
  }
}

TEST(HubLabelQuantTest, ErrorBoundHoldsAcrossRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng grng(60 + seed);
    const RoadNetwork g = MakeRandomGeometricGraph(170, 13.0, 4, &grng);
    for (const VertexOrder order :
         {VertexOrder::kDegree, VertexOrder::kContraction}) {
      HubLabelOracle exact = HubLabelOracle::Build(g, nullptr,
                                                   Opts(order, false));
      HubLabelOracle quant = HubLabelOracle::Build(g, nullptr,
                                                   Opts(order, true));
      const double bound = quant.QuantizationErrorBound();
      ASSERT_GT(bound, 0.0);
      EXPECT_GT(quant.quant_resolution(), 0.0);
      // Quantized labels store half the bytes of the exact ones.
      EXPECT_LT(quant.MemoryBytes(), exact.MemoryBytes());
      Rng rng(9 * seed);
      for (int trial = 0; trial < 200; ++trial) {
        const VertexId s = rng.UniformInt(0, g.num_vertices() - 1);
        const VertexId t = rng.UniformInt(0, g.num_vertices() - 1);
        const double de = exact.Distance(s, t);
        const double dq = quant.Distance(s, t);
        if (de == kInfDistance) {
          EXPECT_EQ(dq, kInfDistance);
        } else {
          EXPECT_LE(std::abs(dq - de), bound)
              << "seed=" << seed << " s=" << s << " t=" << t;
        }
      }
    }
  }
}

TEST(HubLabelQuantTest, SimReportSurfacesErrorBound) {
  const RoadNetwork graph = MakeChengduLike(0.04, 2);
  Rng rng(17);
  HubLabelOracle exact = HubLabelOracle::Build(graph);
  RequestParams rp;
  rp.count = 60;
  rp.duration_min = 120.0;
  rp.seed = 23;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &exact, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 6, 4.0, &rng);

  HubLabelOracle quant = HubLabelOracle::Build(
      graph, nullptr, Opts(VertexOrder::kDegree, true));
  SimOptions options;
  {
    Simulation sim(&graph, &quant, workers, &requests, options);
    const SimReport report = sim.Run(MakePruneGreedyDpFactory({}));
    EXPECT_EQ(report.oracle_quant_error_bound,
              quant.QuantizationErrorBound());
    EXPECT_GT(report.oracle_quant_error_bound, 0.0);
  }
  {
    Simulation sim(&graph, &exact, workers, &requests, options);
    const SimReport report = sim.Run(MakePruneGreedyDpFactory({}));
    EXPECT_EQ(report.oracle_quant_error_bound, 0.0);
  }
}

// -------------------------------------------------------------- BatchQuery

TEST(OracleBatchQueryTest, MatchesPointQueriesExactly) {
  Rng grng(31);
  const RoadNetwork g = MakeRandomGeometricGraph(200, 13.0, 4, &grng);
  for (const VertexOrder order :
       {VertexOrder::kDegree, VertexOrder::kContraction}) {
    for (const bool quantize : {false, true}) {
      HubLabelOracle labels =
          HubLabelOracle::Build(g, nullptr, Opts(order, quantize));
      Rng rng(13);
      for (int trial = 0; trial < 30; ++trial) {
        const int ns = rng.UniformInt(1, 9);
        const int nt = rng.UniformInt(1, 4);
        std::vector<VertexId> sources, targets;
        for (int i = 0; i < ns; ++i) {
          sources.push_back(rng.UniformInt(0, g.num_vertices() - 1));
        }
        for (int j = 0; j < nt; ++j) {
          targets.push_back(rng.UniformInt(0, g.num_vertices() - 1));
        }
        if (trial % 3 == 0 && ns > 1) sources[1] = sources[0];  // duplicate
        if (trial % 4 == 0) targets[0] = sources[0];            // s == t cell
        const std::int64_t before = labels.query_count();
        std::vector<double> out;
        labels.BatchQuery(sources, targets, &out);
        EXPECT_EQ(labels.query_count() - before,
                  static_cast<std::int64_t>(ns) * nt);
        ASSERT_EQ(out.size(), static_cast<std::size_t>(ns) *
                                  static_cast<std::size_t>(nt));
        for (int i = 0; i < ns; ++i) {
          for (int j = 0; j < nt; ++j) {
            // Bit-identical, not just close: the sweep forms the same
            // candidate sums and min over doubles is order-independent.
            EXPECT_EQ(out[static_cast<std::size_t>(i * nt + j)],
                      labels.Distance(sources[static_cast<std::size_t>(i)],
                                      targets[static_cast<std::size_t>(j)]))
                << "order=" << static_cast<int>(order)
                << " quantize=" << quantize << " i=" << i << " j=" << j;
          }
        }
      }
    }
  }
}

TEST(OracleBatchQueryTest, EmptySetsAreSafe) {
  Rng grng(8);
  const RoadNetwork g = MakeRandomGeometricGraph(60, 8.0, 4, &grng);
  HubLabelOracle labels = HubLabelOracle::Build(g);
  std::vector<double> out{1.0, 2.0};
  labels.BatchQuery({}, {0, 1}, &out);
  EXPECT_TRUE(out.empty());
  labels.BatchQuery({0, 1}, {}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(OracleBatchQueryTest, CachedOracleBatchMatchesAndBills) {
  Rng grng(44);
  const RoadNetwork g = MakeRandomGeometricGraph(150, 11.0, 4, &grng);
  HubLabelOracle labels = HubLabelOracle::Build(g);
  Rng rng(21);
  for (int round = 0; round < 2; ++round) {
    CachedOracle cached(&labels, 4096);
    CachedOracle reference(&labels, 4096);
    for (int trial = 0; trial < 20; ++trial) {
      const int ns = rng.UniformInt(1, 8);
      const int nt = rng.UniformInt(1, 3);
      std::vector<VertexId> sources, targets;
      for (int i = 0; i < ns; ++i) {
        sources.push_back(rng.UniformInt(0, g.num_vertices() - 1));
      }
      for (int j = 0; j < nt; ++j) {
        targets.push_back(rng.UniformInt(0, g.num_vertices() - 1));
      }
      if (trial % 2 == 0 && ns > 2) sources[2] = sources[0];  // dup miss
      std::vector<double> out;
      cached.BatchQuery(sources, targets, &out);
      for (int i = 0; i < ns; ++i) {
        for (int j = 0; j < nt; ++j) {
          EXPECT_EQ(out[static_cast<std::size_t>(i * nt + j)],
                    reference.Distance(sources[static_cast<std::size_t>(i)],
                                       targets[static_cast<std::size_t>(j)]));
        }
      }
      // Billing parity: the batch bills every cell, like per-pair calls.
      EXPECT_EQ(cached.query_count(), reference.query_count());
    }
  }
}

TEST(OracleBatchQueryTest, GatherColumnsMatchReferenceFuzz) {
  // Fuzz-pin GatherDistanceColumns (batched sweep) against the original
  // per-pair loop, over random routes and requests, through a CachedOracle
  // on hub labels — values bit-identical AND the same billed query count.
  Rng grng(52);
  TestEnv env(MakeRandomGeometricGraph(120, 10.0, 4, &grng));
  HubLabelOracle labels = HubLabelOracle::Build(env.graph());
  CachedOracle cached(&labels, 4096);
  PlanningContext ctx(&env.graph(), &cached, &env.requests());

  Rng rng(67);
  Worker w;
  w.id = 0;
  w.capacity = 4;
  w.initial_location = 0;
  for (int round = 0; round < 12; ++round) {
    Route route(w.initial_location, 0.0);
    BuildRandomRoute(&env, w, &route, 6, 0.0, 90.0, &rng);
    const VertexId o = rng.UniformInt(0, env.graph().num_vertices() - 1);
    const VertexId d = rng.UniformInt(0, env.graph().num_vertices() - 1);
    const Request r = env.AddRequest(o, d, 0.0, 120.0);
    for (int max_pos = 0; max_pos <= route.size(); ++max_pos) {
      DistanceColumns got, want;
      const std::int64_t before_got = cached.query_count();
      GatherDistanceColumns(route, r, &ctx, &got, max_pos);
      const std::int64_t got_queries = cached.query_count() - before_got;
      GatherDistanceColumnsReference(route, r, &ctx, &want, max_pos);
      const std::int64_t want_queries =
          cached.query_count() - before_got - got_queries;
      EXPECT_EQ(got_queries, want_queries);
      ASSERT_EQ(got.to_origin.size(), want.to_origin.size());
      for (std::size_t k = 0; k < want.to_origin.size(); ++k) {
        EXPECT_EQ(got.to_origin[k], want.to_origin[k]);
        EXPECT_EQ(got.to_destination[k], want.to_destination[k]);
      }
    }
  }
}

TEST(OracleBatchQueryTest, MultiRouteGatherMatchesPerRoute) {
  Rng grng(58);
  TestEnv env(MakeRandomGeometricGraph(120, 10.0, 4, &grng));
  HubLabelOracle labels = HubLabelOracle::Build(env.graph());
  CachedOracle cached(&labels, 4096);
  PlanningContext ctx(&env.graph(), &cached, &env.requests());

  Rng rng(71);
  std::vector<Route> routes;
  for (int c = 0; c < 5; ++c) {
    Worker w;
    w.id = static_cast<WorkerId>(c);
    w.capacity = 4;
    w.initial_location = rng.UniformInt(0, env.graph().num_vertices() - 1);
    Route route(w.initial_location, 0.0);
    BuildRandomRoute(&env, w, &route, 5, 0.0, 90.0, &rng);
    routes.push_back(route);
  }
  const VertexId o = rng.UniformInt(0, env.graph().num_vertices() - 1);
  const VertexId d = rng.UniformInt(0, env.graph().num_vertices() - 1);
  const Request r = env.AddRequest(o, d, 0.0, 120.0);

  std::vector<const Route*> route_ptrs;
  std::vector<int> max_pos;
  for (const Route& route : routes) {
    route_ptrs.push_back(&route);
    max_pos.push_back(route.size());
  }
  std::vector<DistanceColumns> multi;
  const std::int64_t before = cached.query_count();
  GatherDistanceColumnsMulti(route_ptrs, max_pos, r, &ctx, &multi);
  const std::int64_t multi_queries = cached.query_count() - before;

  std::int64_t per_route_queries = 0;
  for (std::size_t c = 0; c < routes.size(); ++c) {
    DistanceColumns want;
    const std::int64_t b = cached.query_count();
    GatherDistanceColumns(routes[c], r, &ctx, &want, max_pos[c]);
    per_route_queries += cached.query_count() - b;
    ASSERT_EQ(multi[c].to_origin.size(), want.to_origin.size());
    for (std::size_t k = 0; k < want.to_origin.size(); ++k) {
      EXPECT_EQ(multi[c].to_origin[k], want.to_origin[k]);
      EXPECT_EQ(multi[c].to_destination[k], want.to_destination[k]);
    }
  }
  EXPECT_EQ(multi_queries, per_route_queries);
}

// ------------------------------------------------------- ordering identity

struct IdentityRun {
  SimReport report;
  std::vector<bool> served;
};

IdentityRun RunWorkload(const RoadNetwork& graph, DistanceOracle* oracle,
                        const std::vector<Worker>& workers,
                        const std::vector<Request>& requests,
                        const PlannerFactory& factory, int num_threads) {
  SimOptions options;
  options.num_threads = num_threads;
  Simulation sim(&graph, oracle, workers, &requests, options);
  IdentityRun run;
  run.report = sim.Run(factory);
  run.served = sim.served();
  return run;
}

void ExpectIdenticalRuns(const IdentityRun& a, const IdentityRun& b,
                         const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.report.served_requests, b.report.served_requests);
  EXPECT_EQ(a.report.unified_cost, b.report.unified_cost);
  EXPECT_EQ(a.report.total_distance, b.report.total_distance);
  EXPECT_EQ(a.report.penalty_sum, b.report.penalty_sum);
  EXPECT_EQ(a.report.mean_pickup_wait_min, b.report.mean_pickup_wait_min);
  EXPECT_EQ(a.report.mean_detour_ratio, b.report.mean_detour_ratio);
  EXPECT_EQ(a.report.makespan_min, b.report.makespan_min);
  EXPECT_EQ(a.report.distance_queries, b.report.distance_queries);
  EXPECT_EQ(a.served, b.served);
}

TEST(OrderingIdentityTest, DegreeAndContractionOrdersAreOutputIdentical) {
  // Reordering is exact — the oracle answers the same distances whatever
  // the build order — so the full simulation must be byte-identical on the
  // determinism workload under every ordering.
  const RoadNetwork graph = MakeChengduLike(0.05, 2);
  HubLabelOracle degree = HubLabelOracle::Build(graph);
  HubLabelOracle ch = HubLabelOracle::Build(
      graph, nullptr, Opts(VertexOrder::kContraction, false));

  Rng rng(17);
  RequestParams rp;
  rp.count = 260;
  rp.duration_min = 240.0;
  rp.seed = 23;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &degree, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 14, 4.0, &rng);

  const IdentityRun base = RunWorkload(graph, &degree, workers, requests,
                                       MakePruneGreedyDpFactory({}), 1);
  ASSERT_GT(base.report.served_requests, 0);
  const IdentityRun reordered = RunWorkload(graph, &ch, workers, requests,
                                            MakePruneGreedyDpFactory({}), 1);
  ExpectIdenticalRuns(base, reordered, "degree vs contraction order");
  // Same factory, same thread count: the query trace matches cell for cell.
  EXPECT_EQ(base.report.index_memory_bytes, reordered.report.index_memory_bytes)
      << "(cache memory, not labels — should match)";

  // The unpruned planner drives the batched multi-route gather path; it
  // must agree across orderings too.
  PlannerConfig unpruned;
  unpruned.use_pruning = false;
  const IdentityRun base_np = RunWorkload(graph, &degree, workers, requests,
                                          MakeGreedyDpFactory(unpruned), 1);
  const IdentityRun ch_np = RunWorkload(graph, &ch, workers, requests,
                                        MakeGreedyDpFactory(unpruned), 1);
  ExpectIdenticalRuns(base_np, ch_np, "unpruned degree vs contraction");
  EXPECT_EQ(base.report.served_requests, base_np.report.served_requests);
}

TEST(OrderingIdentityTest, QuantizedRunIsThreadCountIdentical) {
  // Quantization changes reported values within the error bound, but the
  // run must stay a pure function of the (quantized) oracle — identical
  // across thread counts.
  const RoadNetwork graph = MakeChengduLike(0.05, 2);
  HubLabelOracle exact = HubLabelOracle::Build(graph);
  HubLabelOracle quant = HubLabelOracle::Build(
      graph, nullptr, Opts(VertexOrder::kDegree, true));

  Rng rng(17);
  RequestParams rp;
  rp.count = 200;
  rp.duration_min = 200.0;
  rp.seed = 23;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &exact, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 12, 4.0, &rng);

  const IdentityRun t1 = RunWorkload(graph, &quant, workers, requests,
                                     MakeParallelGreedyDpFactory({}), 1);
  ASSERT_GT(t1.report.served_requests, 0);
  EXPECT_GT(t1.report.oracle_quant_error_bound, 0.0);
  for (const int threads : {2, 4, 8}) {
    const IdentityRun tn = RunWorkload(graph, &quant, workers, requests,
                                       MakeParallelGreedyDpFactory({}),
                                       threads);
    ExpectIdenticalRuns(t1, tn,
                        "quantized threads=" + std::to_string(threads));
    EXPECT_EQ(tn.report.oracle_quant_error_bound,
              t1.report.oracle_quant_error_bound);
  }
}

// ----------------------------------------------------- memory bookkeeping

TEST(HubLabelOrderTest, MemoryBytesReportsExactCsrSize) {
  Rng grng(12);
  const RoadNetwork g = MakeRandomGeometricGraph(140, 11.0, 4, &grng);
  const auto n = static_cast<std::size_t>(g.num_vertices());

  HubLabelOracle exact = HubLabelOracle::Build(g);
  const auto total = static_cast<std::size_t>(
      std::llround(exact.average_label_size() * static_cast<double>(n)));
  // Exact formula: offsets (n+1 x int64) + ranks (total x int32) +
  // distances (total x double). Capacity slack must not inflate it.
  EXPECT_EQ(exact.MemoryBytes(),
            static_cast<std::int64_t>((n + 1) * sizeof(std::int64_t) +
                                      total * sizeof(VertexId) +
                                      total * sizeof(double)));

  HubLabelOracle quant =
      HubLabelOracle::Build(g, nullptr, Opts(VertexOrder::kDegree, true));
  EXPECT_EQ(quant.MemoryBytes(),
            static_cast<std::int64_t>((n + 1) * sizeof(std::int64_t) +
                                      total * sizeof(VertexId) +
                                      total * sizeof(std::uint32_t)));
}

}  // namespace
}  // namespace urpsm
