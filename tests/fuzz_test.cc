#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <set>
#include <unordered_map>

#include "src/index/grid_index.h"
#include "src/sim/fleet.h"
#include "src/sim/metrics.h"
#include "src/util/lru_cache.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

/// Reference LRU built on std::list + std::map, compared operation by
/// operation against the production cache under a random op stream.
class ReferenceLru {
 public:
  explicit ReferenceLru(std::size_t capacity) : capacity_(capacity) {}
  std::optional<int> Get(int key) {
    auto it = std::find_if(items_.begin(), items_.end(),
                           [&](const auto& kv) { return kv.first == key; });
    if (it == items_.end()) return std::nullopt;
    items_.splice(items_.begin(), items_, it);
    return it->second;
  }
  void Put(int key, int value) {
    if (capacity_ == 0) return;
    auto it = std::find_if(items_.begin(), items_.end(),
                           [&](const auto& kv) { return kv.first == key; });
    if (it != items_.end()) {
      it->second = value;
      items_.splice(items_.begin(), items_, it);
      return;
    }
    if (items_.size() >= capacity_) items_.pop_back();
    items_.emplace_front(key, value);
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<int, int>> items_;
};

class FuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSweep, LruMatchesReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 1);
  const std::size_t capacity = static_cast<std::size_t>(rng.UniformInt(1, 8));
  LruCache<int, int> cache(capacity);
  ReferenceLru ref(capacity);
  for (int op = 0; op < 3000; ++op) {
    const int key = rng.UniformInt(0, 12);  // small key space forces churn
    if (rng.Bernoulli(0.5)) {
      const int value = rng.UniformInt(0, 1000);
      cache.Put(key, value);
      ref.Put(key, value);
    } else {
      EXPECT_EQ(cache.Get(key), ref.Get(key)) << "op " << op;
    }
  }
}

TEST_P(FuzzSweep, GridIndexMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7243 + 5);
  const double cell = rng.Uniform(0.5, 3.0);
  GridIndex index({0, 0}, {20, 20}, cell);
  std::unordered_map<WorkerId, Point> truth;
  WorkerId next_id = 0;
  for (int op = 0; op < 2000; ++op) {
    const double roll = rng.Uniform(0, 1);
    if (roll < 0.4 || truth.empty()) {
      const Point p{rng.Uniform(0, 20), rng.Uniform(0, 20)};
      index.Insert(next_id, p);
      truth[next_id] = p;
      ++next_id;
    } else if (roll < 0.6) {
      auto it = truth.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int>(truth.size()) - 1));
      index.Remove(it->first, it->second);
      truth.erase(it);
    } else if (roll < 0.8) {
      auto it = truth.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int>(truth.size()) - 1));
      const Point to{rng.Uniform(0, 20), rng.Uniform(0, 20)};
      index.Move(it->first, it->second, to);
      it->second = to;
    } else {
      const Point q{rng.Uniform(0, 20), rng.Uniform(0, 20)};
      const double radius = rng.Uniform(0, 6);
      const auto got = index.WithinRadius(q, radius);
      const std::set<WorkerId> got_set(got.begin(), got.end());
      // Superset property: everything within the true radius is returned.
      for (const auto& [w, p] : truth) {
        if (EuclideanDistance(p, q) <= radius) {
          EXPECT_TRUE(got_set.contains(w))
              << "op " << op << " missing worker " << w;
        }
      }
      // And nothing outside the cell-box over-approximation: the scan box
      // spans floor(radius/cell)+2 cell widths per axis from the query
      // point, i.e. at most sqrt(2) * (radius + 2 * cell).
      const double slack = 1.41422 * (radius + 2 * cell) + 1e-9;
      for (WorkerId w : got_set) {
        EXPECT_LE(EuclideanDistance(truth.at(w), q), slack) << "op " << op;
      }
    }
  }
  EXPECT_EQ(index.All().size(), truth.size());
}

TEST_P(FuzzSweep, FleetScheduleConsistentUnderRandomOps) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9173 + 11);
  TestEnv env(MakeGridGraph(7, 7, 0.9));
  std::vector<Worker> workers;
  const int num_workers = rng.UniformInt(2, 5);
  for (int w = 0; w < num_workers; ++w) {
    workers.push_back({w, static_cast<VertexId>(rng.UniformInt(0, 48)),
                       rng.UniformInt(2, 5)});
  }
  Fleet fleet(workers, &env.graph());
  GridIndex index({0, 0}, {6, 6}, 1.5);
  fleet.AttachIndex(&index);

  double now = 0.0;
  for (int op = 0; op < 120; ++op) {
    now += rng.Uniform(0.0, 2.0);
    fleet.AdvanceTo(now);
    const VertexId o = rng.UniformInt(0, 48);
    VertexId d = rng.UniformInt(0, 48);
    if (d == o) d = (d + 1) % 49;
    const Request r =
        env.AddRequest(o, d, now, now + rng.Uniform(4.0, 30.0), 10.0,
                       rng.UniformInt(1, 2));
    const WorkerId w = rng.UniformInt(0, num_workers - 1);
    fleet.Touch(w, now);
    const InsertionCandidate c = LinearDpInsertion(
        fleet.worker(w), fleet.route(w), r, env.ctx());
    if (!c.feasible()) continue;
    fleet.ApplyInsertion(w, r, c.i, c.j, env.oracle());
    // Leg-cost cache must stay in sync with the oracle.
    const Route& rt = fleet.route(w);
    for (int k = 0; k < rt.size(); ++k) {
      ASSERT_NEAR(rt.leg_costs()[static_cast<std::size_t>(k)],
                  env.oracle()->Distance(rt.VertexAt(k), rt.VertexAt(k + 1)),
                  1e-9);
    }
  }
  fleet.FinishAll();
  // Total distance bookkeeping and all execution invariants.
  EXPECT_NEAR(fleet.TotalPlannedDistance(), fleet.committed_distance(), 1e-9);
  const InvariantReport rep = VerifyInvariants(fleet, env.requests());
  EXPECT_TRUE(rep.ok) << rep.violation;
  // Grid index ends with every worker indexed exactly once.
  EXPECT_EQ(index.All().size(), static_cast<std::size_t>(num_workers));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(1, 13));

}  // namespace
}  // namespace urpsm
