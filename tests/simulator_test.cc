#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/algos/batch.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"

namespace urpsm {
namespace {

struct SimFixture {
  SimFixture(std::uint64_t seed, int n_workers, int n_requests)
      : graph(MakeNycLike(0.02, seed)), oracle(&graph), rng(seed) {
    workers = GenerateWorkers(graph, n_workers, 3.0, &rng);
    RequestParams rp;
    rp.count = n_requests;
    rp.duration_min = 180.0;
    rp.seed = seed + 1;
    requests = GenerateRequests(graph, rp, &oracle, &rng);
  }
  RoadNetwork graph;
  DijkstraOracle oracle;
  Rng rng;
  std::vector<Worker> workers;
  std::vector<Request> requests;
};

TEST(SimulatorTest, ReportAggregatesAreConsistent) {
  SimFixture f(5, 10, 80);
  SimOptions options;
  options.alpha = 1.0;
  Simulation sim(&f.graph, &f.oracle, f.workers, &f.requests, options);
  const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));

  EXPECT_EQ(rep.total_requests, 80);
  EXPECT_GE(rep.served_requests, 0);
  EXPECT_LE(rep.served_requests, 80);
  EXPECT_NEAR(rep.served_rate, rep.served_requests / 80.0, 1e-12);
  EXPECT_NEAR(rep.unified_cost,
              options.alpha * rep.total_distance + rep.penalty_sum, 1e-9);
  EXPECT_GT(rep.distance_queries, 0);
  EXPECT_FALSE(rep.timed_out);
  // Penalty sum equals the sum over rejected requests.
  double expect_penalty = 0.0;
  for (const Request& r : f.requests) {
    if (!sim.served()[static_cast<std::size_t>(r.id)]) {
      expect_penalty += r.penalty;
    }
  }
  EXPECT_NEAR(rep.penalty_sum, expect_penalty, 1e-9);
}

TEST(SimulatorTest, InvariantsHoldAfterRun) {
  SimFixture f(6, 12, 100);
  Simulation sim(&f.graph, &f.oracle, f.workers, &f.requests, SimOptions{});
  sim.Run(MakePruneGreedyDpFactory({}));
  const InvariantReport rep = VerifyInvariants(sim.fleet(), f.requests);
  EXPECT_TRUE(rep.ok) << rep.violation;
}

TEST(SimulatorTest, ServedImpliesDeliveredByDeadline) {
  SimFixture f(7, 12, 100);
  Simulation sim(&f.graph, &f.oracle, f.workers, &f.requests, SimOptions{});
  sim.Run(MakePruneGreedyDpFactory({}));
  for (const Request& r : f.requests) {
    if (sim.served()[static_cast<std::size_t>(r.id)]) {
      EXPECT_LE(sim.fleet().DropoffTime(r.id), r.deadline + 1e-6)
          << "request " << r.id;
      EXPECT_LE(sim.fleet().PickupTime(r.id), sim.fleet().DropoffTime(r.id));
    } else {
      EXPECT_EQ(sim.fleet().AssignedWorker(r.id), kInvalidWorker);
    }
  }
}

TEST(SimulatorTest, TotalDistanceMatchesCommittedLegs) {
  SimFixture f(8, 10, 60);
  Simulation sim(&f.graph, &f.oracle, f.workers, &f.requests, SimOptions{});
  const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));
  EXPECT_NEAR(rep.total_distance, sim.fleet().committed_distance(), 1e-9);
  // After FinishAll, planned == committed.
  EXPECT_NEAR(sim.fleet().TotalPlannedDistance(),
              sim.fleet().committed_distance(), 1e-9);
}

TEST(SimulatorTest, WallLimitTriggersTimeout) {
  SimFixture f(9, 10, 200);
  SimOptions options;
  options.wall_limit_seconds = 0.0;  // instant kill after first request
  Simulation sim(&f.graph, &f.oracle, f.workers, &f.requests, options);
  const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));
  EXPECT_TRUE(rep.timed_out);
  EXPECT_LE(rep.served_requests, rep.total_requests);
  // The truncated run reports how far it got, so percentile stats over
  // the processed prefix are interpretable.
  EXPECT_LT(rep.processed_requests, rep.total_requests);
  EXPECT_EQ(static_cast<std::size_t>(rep.processed_requests),
            rep.response_stats.count());
}

TEST(SimulatorTest, ProcessedRequestsCoversFullRunWithoutTimeout) {
  SimFixture f(5, 10, 80);
  Simulation sim(&f.graph, &f.oracle, f.workers, &f.requests, SimOptions{});
  const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));
  EXPECT_FALSE(rep.timed_out);
  EXPECT_EQ(rep.processed_requests, rep.total_requests);
}

TEST(SimulatorTest, TimedOutRunSkipsUnboundedFinalize) {
  // The batch baseline defers every assignment to Finalize-time flushes.
  // With the wall limit already exceeded, Finalize(0) must NOT plan the
  // buffered requests: before the budget was threaded through, a timed-out
  // run still paid for (and counted) an unbounded final flush.
  SimFixture f(9, 10, 120);
  SimOptions options;
  options.wall_limit_seconds = 0.0;
  Simulation sim(&f.graph, &f.oracle, f.workers, &f.requests, options);
  const SimReport rep = sim.Run(MakeBatchFactory({}));
  EXPECT_TRUE(rep.timed_out);
  EXPECT_EQ(rep.served_requests, 0);  // nothing was ever flushed
}

TEST(SimulatorTest, GappyRequestIdsAreHandled) {
  // Ids far from the dense 0..n-1 layout: formerly silent out-of-bounds
  // indexing (served_, direct-distance cache, request table) — now routed
  // through the id->index mapping end to end.
  SimFixture f(12, 8, 40);
  std::vector<Request> gappy = f.requests;
  for (std::size_t i = 0; i < gappy.size(); ++i) {
    gappy[i].id = static_cast<RequestId>(1000 + 7 * i);  // gappy, non-dense
  }
  Simulation sim(&f.graph, &f.oracle, f.workers, &gappy, SimOptions{});
  const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));
  EXPECT_EQ(rep.total_requests, static_cast<int>(gappy.size()));
  EXPECT_GT(rep.served_requests, 0);
  const InvariantReport inv = VerifyInvariants(sim.fleet(), gappy);
  EXPECT_TRUE(inv.ok) << inv.violation;
  // served() is position-indexed; request_served resolves by id. The two
  // must agree, and the penalty partition must hold under gappy ids.
  double expect_penalty = 0.0;
  int served_count = 0;
  for (std::size_t i = 0; i < gappy.size(); ++i) {
    EXPECT_EQ(sim.served()[i], sim.request_served(gappy[i].id));
    if (sim.served()[i]) {
      ++served_count;
    } else {
      expect_penalty += gappy[i].penalty;
    }
  }
  EXPECT_EQ(served_count, rep.served_requests);
  EXPECT_NEAR(rep.penalty_sum, expect_penalty, 1e-9);

  // The same workload with dense ids must produce the same outcomes —
  // ids are labels, not semantics.
  Simulation dense_sim(&f.graph, &f.oracle, f.workers, &f.requests,
                       SimOptions{});
  const SimReport dense_rep = dense_sim.Run(MakePruneGreedyDpFactory({}));
  EXPECT_EQ(dense_rep.served_requests, rep.served_requests);
  EXPECT_EQ(dense_rep.unified_cost, rep.unified_cost);
  EXPECT_EQ(dense_sim.served(), sim.served());
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  SimFixture f(10, 10, 80);
  Simulation a(&f.graph, &f.oracle, f.workers, &f.requests, SimOptions{});
  const SimReport ra = a.Run(MakePruneGreedyDpFactory({}));
  Simulation b(&f.graph, &f.oracle, f.workers, &f.requests, SimOptions{});
  const SimReport rb = b.Run(MakePruneGreedyDpFactory({}));
  EXPECT_EQ(ra.served_requests, rb.served_requests);
  EXPECT_NEAR(ra.unified_cost, rb.unified_cost, 1e-9);
  EXPECT_NEAR(ra.total_distance, rb.total_distance, 1e-9);
}

TEST(SimulatorTest, MoreWorkersNeverHurtMuch) {
  // The paper's Fig. 3 trend: unified cost decreases (served rate rises)
  // with fleet size. Greedy online planning is not strictly monotone, but
  // the trend must hold between a tiny and a larger fleet.
  SimFixture small(11, 3, 150);
  Simulation sim_small(&small.graph, &small.oracle, small.workers,
                       &small.requests, SimOptions{});
  const SimReport rep_small = sim_small.Run(MakePruneGreedyDpFactory({}));

  SimFixture big(11, 30, 150);  // same seed => same graph & requests
  Simulation sim_big(&big.graph, &big.oracle, big.workers, &big.requests,
                     SimOptions{});
  const SimReport rep_big = sim_big.Run(MakePruneGreedyDpFactory({}));

  EXPECT_GT(rep_big.served_rate, rep_small.served_rate);
  EXPECT_LT(rep_big.unified_cost, rep_small.unified_cost);
}

// ------------------------------------------------ options validation

TEST(ValidateSimOptionsTest, CleanOptionsPassThroughSilently) {
  SimOptions options;
  options.batch_window_s = 6.0;
  options.pipeline = true;
  options.pipeline_depth = 4;
  options.num_threads = 8;
  std::vector<std::string> warnings;
  const SimOptions out = ValidateSimOptions(options, &warnings);
  EXPECT_TRUE(warnings.empty());
  EXPECT_TRUE(out.pipeline);
  EXPECT_EQ(out.pipeline_depth, 4);
  EXPECT_EQ(out.num_threads, 8);
  EXPECT_EQ(out.batch_window_s, 6.0);
}

TEST(ValidateSimOptionsTest, PipelineWithoutWindowIsDisabledWithWarning) {
  SimOptions options;
  options.pipeline = true;  // but batch_window_s stays 0
  std::vector<std::string> warnings;
  const SimOptions out = ValidateSimOptions(options, &warnings);
  EXPECT_FALSE(out.pipeline);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("pipeline requires batch_window_s"),
            std::string::npos);
}

TEST(ValidateSimOptionsTest, InvalidNumericsClampToNearestSane) {
  SimOptions options;
  options.batch_window_s = -3.0;
  options.pipeline_depth = 0;
  options.ingest_capacity = 0;
  options.num_threads = -2;
  options.wall_limit_seconds = -1.0;
  options.admission_slack_min = -5.0;
  options.window_admit_budget = -7;
  options.metrics_snapshot_period_s = 0.0;
  std::vector<std::string> warnings;
  const SimOptions out = ValidateSimOptions(options, &warnings);
  EXPECT_EQ(out.batch_window_s, 0.0);
  EXPECT_EQ(out.pipeline_depth, 2);
  EXPECT_EQ(out.ingest_capacity, 1u);
  EXPECT_EQ(out.num_threads, 1);
  EXPECT_EQ(out.wall_limit_seconds, 0.0);
  EXPECT_EQ(out.admission_slack_min, 0.0);
  EXPECT_EQ(out.window_admit_budget, 0);
  EXPECT_EQ(out.metrics_snapshot_period_s, 1.0);
  EXPECT_GE(warnings.size(), 7u);  // one message per clamp above
}

TEST(ValidateSimOptionsTest, FaultRatesAndDelaysAreClamped) {
  SimOptions options;
  options.faults.Arm(FaultSite::kOracleDelay, 1.5, -10.0);  // both invalid
  options.faults.Arm(FaultSite::kIngestStall, -0.2, 5.0);
  std::vector<std::string> warnings;
  const SimOptions out = ValidateSimOptions(options, &warnings);
  EXPECT_EQ(out.faults.site[static_cast<int>(FaultSite::kOracleDelay)].rate,
            1.0);
  EXPECT_EQ(
      out.faults.site[static_cast<int>(FaultSite::kOracleDelay)].delay_us,
      0.0);
  EXPECT_EQ(out.faults.site[static_cast<int>(FaultSite::kIngestStall)].rate,
            0.0);
  EXPECT_GE(warnings.size(), 3u);
}

TEST(ValidateSimOptionsTest, ConstructorAppliesValidation) {
  // The constructor routes its options through ValidateSimOptions, so a
  // degenerate configuration (pipeline without a window, depth 0) still
  // runs the windowed loop instead of crashing or silently misbehaving.
  SimFixture f(23, 4, 20);
  SimOptions options;
  options.pipeline = true;  // no batch window: validation turns this off
  options.pipeline_depth = 0;
  Simulation sim(&f.graph, &f.oracle, f.workers, &f.requests, options);
  const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));
  EXPECT_FALSE(rep.pipeline.enabled);
  EXPECT_EQ(rep.processed_requests, rep.total_requests);
  const InvariantReport acct = CheckAccounting(rep);
  EXPECT_TRUE(acct.ok) << acct.violation;
}

}  // namespace
}  // namespace urpsm
