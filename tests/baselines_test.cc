#include <gtest/gtest.h>

#include "src/algos/batch.h"
#include "src/algos/kinetic.h"
#include "src/algos/tshare.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

struct BaselineFixture {
  explicit BaselineFixture(std::uint64_t seed, int n_workers = 12,
                           int n_requests = 90)
      : graph(MakeNycLike(0.02, seed)), oracle(&graph), rng(seed) {
    workers = GenerateWorkers(graph, n_workers, 3.0, &rng);
    RequestParams rp;
    rp.count = n_requests;
    rp.duration_min = 150.0;
    rp.seed = seed + 1;
    requests = GenerateRequests(graph, rp, &oracle, &rng);
  }
  SimReport Run(const PlannerFactory& factory, Simulation** out = nullptr) {
    sim = std::make_unique<Simulation>(&graph, &oracle, workers, &requests,
                                       SimOptions{});
    if (out != nullptr) *out = sim.get();
    return sim->Run(factory);
  }
  RoadNetwork graph;
  DijkstraOracle oracle;
  Rng rng;
  std::vector<Worker> workers;
  std::vector<Request> requests;
  std::unique_ptr<Simulation> sim;
};

TEST(TShareTest, ServesAndRespectsInvariants) {
  BaselineFixture f(41);
  const SimReport rep = f.Run(MakeTShareFactory({}));
  EXPECT_EQ(rep.algorithm, "tshare");
  EXPECT_GT(rep.served_requests, 0);
  const InvariantReport inv = VerifyInvariants(f.sim->fleet(), f.requests);
  EXPECT_TRUE(inv.ok) << inv.violation;
}

TEST(TShareTest, IndexMemoryExceedsPlainPlanner) {
  BaselineFixture f(42);
  const SimReport tshare = f.Run(MakeTShareFactory({}));
  const SimReport prune = f.Run(MakePruneGreedyDpFactory({}));
  // Fig. 5: tshare's sorted-cell-list grid index dominates.
  EXPECT_GT(tshare.index_memory_bytes, prune.index_memory_bytes);
}

TEST(KineticTest, ServesAndRespectsInvariants) {
  BaselineFixture f(43);
  const SimReport rep = f.Run(MakeKineticFactory({}));
  EXPECT_EQ(rep.algorithm, "kinetic");
  EXPECT_GT(rep.served_requests, 0);
  const InvariantReport inv = VerifyInvariants(f.sim->fleet(), f.requests);
  EXPECT_TRUE(inv.ok) << inv.violation;
}

TEST(KineticTest, ReorderingNeverWorsePerDecision) {
  // Per decision from the same starting route, the kinetic full-ordering
  // search explores a superset of the insertion placements, so its route
  // after accommodating the new request can never be longer. (Across a
  // *sequence* of greedy decisions the two can diverge either way, so the
  // guarantee is per-step only.)
  TestEnv env(MakeGridGraph(8, 8, 0.8));
  std::vector<Worker> workers = {{0, 0, 4}};
  Rng rng(4);
  for (int trial = 0; trial < 6; ++trial) {
    // Identical starting routes built by the same insertion sequence.
    Fleet fleet_kin(workers, &env.graph());
    Fleet fleet_ins(workers, &env.graph());
    for (int k = 0; k < trial; ++k) {
      const VertexId o = rng.UniformInt(0, 63);
      VertexId d = rng.UniformInt(0, 63);
      if (d == o) d = (d + 1) % 64;
      const Request r = env.AddRequest(o, d, 0.0, 240.0, 1e9);
      const InsertionCandidate c = LinearDpInsertion(
          workers[0], fleet_ins.route(0), r, env.ctx());
      if (!c.feasible()) continue;
      fleet_ins.ApplyInsertion(0, r, c.i, c.j, env.oracle());
      fleet_kin.ApplyInsertion(0, r, c.i, c.j, env.oracle());
    }
    // One probe decided by each planner.
    KineticPlanner kinetic(env.ctx(), &fleet_kin, PlannerConfig{});
    const VertexId o = rng.UniformInt(0, 63);
    VertexId d = rng.UniformInt(0, 63);
    if (d == o) d = (d + 1) % 64;
    const Request probe = env.AddRequest(o, d, 0.0, 240.0, 1e9);
    const InsertionCandidate ins = LinearDpInsertion(
        workers[0], fleet_ins.route(0), probe, env.ctx());
    const WorkerId got = kinetic.OnRequest(probe);
    if (ins.feasible()) {
      ASSERT_EQ(got, 0) << "kinetic must serve whatever insertion can";
      fleet_ins.ApplyInsertion(0, probe, ins.i, ins.j, env.oracle());
      EXPECT_LE(fleet_kin.route(0).RemainingCost(),
                fleet_ins.route(0).RemainingCost() + 1e-9)
          << "trial " << trial;
    }
  }
}

TEST(KineticTest, BudgetExhaustionTracked) {
  // A high-capacity worker with many pending stops forces tree blow-up.
  TestEnv env(MakeGridGraph(10, 10, 0.6));
  std::vector<Worker> workers = {{0, 0, 20}};
  Fleet fleet(workers, &env.graph());
  KineticPlanner kinetic(env.ctx(), &fleet, PlannerConfig{},
                         /*max_expansions_per_request=*/500);
  Rng rng(5);
  for (int k = 0; k < 14; ++k) {
    const VertexId o = rng.UniformInt(0, 99);
    VertexId d = rng.UniformInt(0, 99);
    if (d == o) d = (d + 1) % 100;
    const Request r = env.AddRequest(o, d, 0.0, 500.0, 1e9);
    kinetic.OnRequest(r);
  }
  EXPECT_GT(kinetic.budget_exhausted_count(), 0);
}

TEST(BatchTest, ServesAndRespectsInvariants) {
  BaselineFixture f(44);
  const SimReport rep = f.Run(MakeBatchFactory({}));
  EXPECT_EQ(rep.algorithm, "batch");
  EXPECT_GT(rep.served_requests, 0);
  const InvariantReport inv = VerifyInvariants(f.sim->fleet(), f.requests);
  EXPECT_TRUE(inv.ok) << inv.violation;
}

TEST(BatchTest, FinalizeFlushesLastBatch) {
  TestEnv env(MakeGridGraph(8, 8, 0.8));
  std::vector<Worker> workers = {{0, 27, 4}};
  Fleet fleet(workers, &env.graph());
  BatchBaselinePlanner batch(env.ctx(), &fleet, PlannerConfig{},
                             /*batch_interval_min=*/0.1);
  const Request r = env.AddRequest(28, 30, 0.0, 1e9);
  EXPECT_EQ(batch.OnRequest(r), kInvalidWorker);  // deferred
  EXPECT_EQ(fleet.AssignedWorker(r.id), kInvalidWorker);
  batch.Finalize(/*budget_seconds=*/1e9);
  EXPECT_EQ(fleet.AssignedWorker(r.id), 0);
}

TEST(BatchTest, ExhaustedBudgetSkipsFinalFlush) {
  TestEnv env(MakeGridGraph(8, 8, 0.8));
  std::vector<Worker> workers = {{0, 27, 4}};
  Fleet fleet(workers, &env.graph());
  BatchBaselinePlanner batch(env.ctx(), &fleet, PlannerConfig{},
                             /*batch_interval_min=*/0.1);
  const Request r = env.AddRequest(28, 30, 0.0, 1e9);
  batch.OnRequest(r);
  // The wall limit is already exceeded: the buffered request must stay
  // rejected instead of being planned in unbounded post-timeout work.
  batch.Finalize(/*budget_seconds=*/0.0);
  EXPECT_EQ(fleet.AssignedWorker(r.id), kInvalidWorker);
}

TEST(BatchTest, WindowedModeMatchesSimulatorWindows) {
  // Driven through Simulation's windowed event loop (batch_window_s > 0),
  // the baseline consumes whole release windows via OnBatch and must still
  // produce a valid, invariant-respecting run that serves requests.
  BaselineFixture f(48);
  SimOptions options;
  options.batch_window_s = 6.0;  // the paper's 6-second batching interval
  Simulation sim(&f.graph, &f.oracle, f.workers, &f.requests, options);
  const SimReport rep = sim.Run(MakeBatchFactory({}));
  EXPECT_EQ(rep.algorithm, "batch");
  EXPECT_GT(rep.served_requests, 0);
  EXPECT_EQ(rep.processed_requests, rep.total_requests);
  const InvariantReport inv = VerifyInvariants(sim.fleet(), f.requests);
  EXPECT_TRUE(inv.ok) << inv.violation;
}

TEST(BatchTest, BatchBoundaryTriggersFlush) {
  TestEnv env(MakeGridGraph(8, 8, 0.8));
  std::vector<Worker> workers = {{0, 27, 4}};
  Fleet fleet(workers, &env.graph());
  BatchBaselinePlanner batch(env.ctx(), &fleet, PlannerConfig{}, 0.1);
  const Request r1 = env.AddRequest(28, 30, 0.0, 1e9);
  batch.OnRequest(r1);
  // Second request lands past the 6-second boundary: r1 must be flushed.
  const Request r2 = env.AddRequest(29, 31, 0.5, 1e9);
  batch.OnRequest(r2);
  EXPECT_EQ(fleet.AssignedWorker(r1.id), 0);
  EXPECT_EQ(fleet.AssignedWorker(r2.id), kInvalidWorker);  // still buffered
}

TEST(BaselineComparisonTest, PaperOrderingOnSharedWorkload) {
  // The headline comparison (Sec. 6.2 summary) under worker scarcity —
  // where assignment quality matters: pruneGreedyDP achieves the lowest
  // unified cost and the highest served rate. Averaged over seeds to damp
  // single-instance noise.
  double uc_prune = 0.0, uc_tshare = 0.0, uc_batch = 0.0;
  double sr_prune = 0.0, sr_tshare = 0.0, sr_batch = 0.0;
  for (std::uint64_t seed : {45u, 46u, 47u}) {
    BaselineFixture f(seed, /*n_workers=*/6, /*n_requests=*/200);
    SetDeadlineOffsets(&f.requests, 8.0);  // tight deadlines -> scarcity
    SetPenaltyFactors(&f.requests, 10.0, &f.oracle);
    const SimReport prune = f.Run(MakePruneGreedyDpFactory({}));
    const SimReport tshare = f.Run(MakeTShareFactory({}));
    const SimReport batch = f.Run(MakeBatchFactory({}));
    uc_prune += prune.unified_cost;
    uc_tshare += tshare.unified_cost;
    uc_batch += batch.unified_cost;
    sr_prune += prune.served_rate;
    sr_tshare += tshare.served_rate;
    sr_batch += batch.served_rate;
  }
  EXPECT_LE(uc_prune, uc_tshare);
  EXPECT_LE(uc_prune, uc_batch);
  EXPECT_GE(sr_prune, sr_tshare);
  EXPECT_GE(sr_prune, sr_batch);
}

}  // namespace
}  // namespace urpsm
