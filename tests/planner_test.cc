#include <gtest/gtest.h>

#include "src/core/planner.h"
#include "src/sim/simulator.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : env_(MakeGridGraph(10, 10, 0.8)) {}
  TestEnv env_;
};

TEST_F(PlannerTest, ServesTrivialRequest) {
  std::vector<Worker> workers = {{0, 0, 4}};
  Fleet fleet(workers, &env_.graph());
  PlannerConfig cfg;
  GreedyDpPlanner planner(env_.ctx(), &fleet, cfg);
  const Request r = env_.AddRequest(11, 22, 0.0, 1e9);
  EXPECT_EQ(planner.OnRequest(r), 0);
  EXPECT_EQ(fleet.AssignedWorker(r.id), 0);
  EXPECT_EQ(fleet.route(0).size(), 2);
}

TEST_F(PlannerTest, RejectsWhenPenaltyBelowLowerBound) {
  // alpha = 1 and a tiny penalty: serving costs more than rejecting.
  std::vector<Worker> workers = {{0, 99, 4}};  // far corner
  Fleet fleet(workers, &env_.graph());
  PlannerConfig cfg;
  cfg.alpha = 1.0;
  GreedyDpPlanner planner(env_.ctx(), &fleet, cfg);
  const Request r = env_.AddRequest(0, 1, 0.0, 1e9, /*penalty=*/1e-6);
  EXPECT_EQ(planner.OnRequest(r), kInvalidWorker);
}

TEST_F(PlannerTest, AlphaZeroNeverRejectsByPenalty) {
  // Maximize served count: alpha = 0 disables the penalty rejection.
  std::vector<Worker> workers = {{0, 99, 4}};
  Fleet fleet(workers, &env_.graph());
  PlannerConfig cfg;
  cfg.alpha = 0.0;
  GreedyDpPlanner planner(env_.ctx(), &fleet, cfg);
  const Request r = env_.AddRequest(0, 1, 0.0, 1e9, /*penalty=*/1e-6);
  EXPECT_EQ(planner.OnRequest(r), 0);
}

TEST_F(PlannerTest, RejectsUnservableDeadline) {
  std::vector<Worker> workers = {{0, 0, 4}};
  Fleet fleet(workers, &env_.graph());
  GreedyDpPlanner planner(env_.ctx(), &fleet, PlannerConfig{});
  const Request r = env_.AddRequest(98, 99, 0.0, 0.001);  // hopeless
  EXPECT_EQ(planner.OnRequest(r), kInvalidWorker);
}

TEST_F(PlannerTest, PicksTheCheaperWorker) {
  std::vector<Worker> workers = {{0, 0, 4}, {1, 23, 4}};
  Fleet fleet(workers, &env_.graph());
  GreedyDpPlanner planner(env_.ctx(), &fleet, PlannerConfig{});
  // Request right next to worker 1's anchor (vertex 23 = (3,2)).
  const Request r = env_.AddRequest(24, 27, 0.0, 1e9);
  EXPECT_EQ(planner.OnRequest(r), 1);
}

TEST_F(PlannerTest, ExactRejectCheckAblation) {
  // With the ablation on, a penalty between LB and Delta* flips to reject.
  std::vector<Worker> workers = {{0, 90, 4}};  // (0,9): euclid 7.2km but
                                               // road distance longer
  const Request probe = env_.AddRequest(9, 8, 0.0, 1e9);  // (9,0)->(8,0)
  {
    Fleet fleet(workers, &env_.graph());
    PlannerConfig cfg;
    cfg.exact_reject_check = false;
    GreedyDpPlanner planner(env_.ctx(), &fleet, cfg);
    Request r = probe;
    // Penalty below the exact cost but above the Euclidean lower bound:
    // straight-line (9,9 apart... vertices (0,9) to (9,0)) at motorway
    // speed is far less than grid travel at residential speed.
    r.penalty = env_.graph().EuclideanLowerBoundMin(90, 9) * 1.5;
    EXPECT_EQ(planner.OnRequest(r), 0);  // paper-faithful: serves
  }
  {
    Fleet fleet(workers, &env_.graph());
    PlannerConfig cfg;
    cfg.exact_reject_check = true;
    GreedyDpPlanner planner(env_.ctx(), &fleet, cfg);
    Request r = probe;
    r.penalty = env_.graph().EuclideanLowerBoundMin(90, 9) * 1.5;
    EXPECT_EQ(planner.OnRequest(r), kInvalidWorker);  // ablation: rejects
  }
}

TEST_F(PlannerTest, CandidateRadiusNegativeWhenHopeless) {
  Request r;
  r.release_time = 10.0;
  r.deadline = 12.0;
  EXPECT_LT(CandidateRadiusKm(r, /*L=*/5.0, /*now=*/10.0), 0.0);
  EXPECT_GT(CandidateRadiusKm(r, /*L=*/1.0, /*now=*/10.0), 0.0);
}

/// Lemma 8 is lossless: pruneGreedyDP and GreedyDP must produce identical
/// assignments and unified costs on a full simulated day, while the pruned
/// variant issues no more distance queries.
TEST(PlannerEquivalenceTest, PruningIsLossless) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const RoadNetwork g = MakeNycLike(0.02, seed);
    DijkstraOracle oracle(&g);
    Rng rng(seed);
    std::vector<Worker> workers = GenerateWorkers(g, 15, 3.0, &rng);
    RequestParams rp;
    rp.count = 120;
    rp.duration_min = 120.0;
    rp.seed = seed;
    std::vector<Request> requests = GenerateRequests(g, rp, &oracle, &rng);

    SimOptions options;
    Simulation sim_pruned(&g, &oracle, workers, &requests, options);
    const SimReport pruned = sim_pruned.Run(MakePruneGreedyDpFactory({}));
    std::vector<bool> served_pruned = sim_pruned.served();

    Simulation sim_plain(&g, &oracle, workers, &requests, options);
    const SimReport plain = sim_plain.Run(MakeGreedyDpFactory({}));

    EXPECT_EQ(pruned.served_requests, plain.served_requests) << seed;
    EXPECT_NEAR(pruned.unified_cost, plain.unified_cost,
                1e-6 * std::max(1.0, plain.unified_cost))
        << seed;
    EXPECT_EQ(served_pruned, sim_plain.served()) << seed;
    EXPECT_LE(pruned.distance_queries, plain.distance_queries) << seed;
  }
}

}  // namespace
}  // namespace urpsm
