// Tests for the pipelined dispatch engine: IngestQueue semantics
// (FIFO, backpressure, close/cancel), pipelined-on thread-count and
// queue-capacity independence, a saturation run where ingest outpaces
// planning (occupancy > 0, backpressure engaged, exact accounting, no
// drops), manually driven PlanWindow/CommitWindow epoch bookkeeping, and
// a pipelined fuzz workload (run under tsan by the tsan preset).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/parallel/ingest_queue.h"
#include "src/shortest/hub_labels.h"
#include "src/sim/dispatch_window.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

// ------------------------------------------------------------ IngestQueue

TEST(IngestQueueTest, FifoOrderAndStats) {
  IngestQueue q(16);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.Push({i, static_cast<double>(i), {}}));
  }
  EXPECT_EQ(q.total_pushed(), 5);
  EXPECT_EQ(q.max_depth(), 5u);
  Arrival a;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.Pop(&a));
    EXPECT_EQ(a.id, i);
    EXPECT_EQ(a.release_time, static_cast<double>(i));
  }
  q.Close();
  EXPECT_FALSE(q.Pop(&a));  // closed and drained
  EXPECT_EQ(q.backpressure_waits(), 0);
}

TEST(IngestQueueTest, BackpressureBlocksProducerUntilPop) {
  IngestQueue q(2);
  ASSERT_TRUE(q.Push({0, 0.0, {}}));
  ASSERT_TRUE(q.Push({1, 1.0, {}}));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push({2, 2.0, {}}));  // must block until a Pop
    third_pushed.store(true);
  });
  // Deterministic hand-off: the backpressure counter increments *before*
  // the producer blocks, so waiting for it guarantees the producer really
  // hit the full queue before the consumer frees a slot.
  while (q.backpressure_waits() == 0) std::this_thread::yield();
  EXPECT_FALSE(third_pushed.load());
  Arrival a;
  ASSERT_TRUE(q.Pop(&a));
  EXPECT_EQ(a.id, 0);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(q.backpressure_waits(), 1);
  ASSERT_TRUE(q.Pop(&a));
  EXPECT_EQ(a.id, 1);
  ASSERT_TRUE(q.Pop(&a));
  EXPECT_EQ(a.id, 2);
  EXPECT_EQ(q.max_depth(), 2u);  // bounded: never exceeded capacity
}

TEST(IngestQueueTest, TryPushBlockPolicyDelegatesToPush) {
  IngestQueue q(4);
  EXPECT_EQ(q.TryPush({0, 0.0, 1.0, {}}, AdmissionPolicy::kBlock),
            IngestQueue::PushOutcome::kAdmitted);
  q.Cancel();
  EXPECT_EQ(q.TryPush({1, 1.0, 1.0, {}}, AdmissionPolicy::kBlock),
            IngestQueue::PushOutcome::kCancelled);
  EXPECT_EQ(q.TryPush({2, 2.0, 1.0, {}}, AdmissionPolicy::kShedOldestSlack),
            IngestQueue::PushOutcome::kCancelled);
}

TEST(IngestQueueTest, TryPushRejectAtIngressShedsIncomingOnFull) {
  IngestQueue q(2);
  ASSERT_EQ(q.TryPush({0, 0.0, 5.0, {}}, AdmissionPolicy::kRejectAtIngress),
            IngestQueue::PushOutcome::kAdmitted);
  ASSERT_EQ(q.TryPush({1, 1.0, 5.0, {}}, AdmissionPolicy::kRejectAtIngress),
            IngestQueue::PushOutcome::kAdmitted);
  EXPECT_EQ(q.TryPush({2, 2.0, 99.0, {}}, AdmissionPolicy::kRejectAtIngress),
            IngestQueue::PushOutcome::kRejected);
  EXPECT_EQ(q.evicted(), 0);      // nothing queued was touched
  EXPECT_EQ(q.total_pushed(), 2);
  Arrival a;
  ASSERT_TRUE(q.Pop(&a));
  EXPECT_EQ(a.id, 0);
  // A freed slot admits again without shedding.
  EXPECT_EQ(q.TryPush({3, 3.0, 5.0, {}}, AdmissionPolicy::kRejectAtIngress),
            IngestQueue::PushOutcome::kAdmitted);
}

TEST(IngestQueueTest, TryPushShedOldestSlackEvictsLeastSlackQueued) {
  IngestQueue q(2);
  ASSERT_EQ(q.TryPush({0, 0.0, 5.0, {}}, AdmissionPolicy::kShedOldestSlack),
            IngestQueue::PushOutcome::kAdmitted);
  ASSERT_EQ(q.TryPush({1, 1.0, 3.0, {}}, AdmissionPolicy::kShedOldestSlack),
            IngestQueue::PushOutcome::kAdmitted);
  // Full queue: id 1 has the least slack (3.0 < 5.0) and is evicted.
  EXPECT_EQ(q.TryPush({2, 2.0, 10.0, {}}, AdmissionPolicy::kShedOldestSlack),
            IngestQueue::PushOutcome::kAdmitted);
  EXPECT_EQ(q.evicted(), 1);
  // Full again with slacks {5, 10}: an incoming slack-1 arrival is its
  // own victim — rejected, nothing queued is evicted.
  EXPECT_EQ(q.TryPush({3, 3.0, 1.0, {}}, AdmissionPolicy::kShedOldestSlack),
            IngestQueue::PushOutcome::kRejected);
  EXPECT_EQ(q.evicted(), 1);
  Arrival a;
  ASSERT_TRUE(q.Pop(&a));
  EXPECT_EQ(a.id, 0);  // FIFO among survivors
  ASSERT_TRUE(q.Pop(&a));
  EXPECT_EQ(a.id, 2);
  // Slack ties break on the lower id (deterministic victim).
  IngestQueue q2(2);
  ASSERT_EQ(q2.TryPush({7, 0.0, 4.0, {}}, AdmissionPolicy::kShedOldestSlack),
            IngestQueue::PushOutcome::kAdmitted);
  ASSERT_EQ(q2.TryPush({5, 1.0, 4.0, {}}, AdmissionPolicy::kShedOldestSlack),
            IngestQueue::PushOutcome::kAdmitted);
  ASSERT_EQ(q2.TryPush({9, 2.0, 8.0, {}}, AdmissionPolicy::kShedOldestSlack),
            IngestQueue::PushOutcome::kAdmitted);
  ASSERT_TRUE(q2.Pop(&a));
  EXPECT_EQ(a.id, 7);  // id 5 was the tie-break victim
}

TEST(IngestQueueTest, CancelWakesBlockedProducerAndConsumer) {
  IngestQueue q(1);
  ASSERT_TRUE(q.Push({0, 0.0, {}}));
  std::thread producer([&] {
    EXPECT_FALSE(q.Push({1, 1.0, {}}));  // blocked, then cancelled
  });
  // Same handshake as above: once the backpressure counter ticks, the
  // producer is committed to the full-queue wait, so Cancel provably
  // wakes a *blocked* push (no consumer races the slot free).
  while (q.backpressure_waits() == 0) std::this_thread::yield();
  q.Cancel();
  producer.join();
  Arrival a;
  EXPECT_FALSE(q.Pop(&a));             // cancelled: pending data discarded
  EXPECT_FALSE(q.Push({2, 2.0, {}}));  // and the stream stays dead

  // A consumer blocked on an EMPTY queue must wake on Cancel too.
  IngestQueue q2(1);
  std::thread consumer([&] {
    Arrival b;
    EXPECT_FALSE(q2.Pop(&b));
  });
  q2.Cancel();
  consumer.join();
}

// ------------------------------------------- pipelined determinism

struct WorkloadRun {
  SimReport report;
  std::vector<bool> served;
};

WorkloadRun RunOnce(const RoadNetwork& graph, DistanceOracle* oracle,
                    const std::vector<Worker>& workers,
                    const std::vector<Request>& requests, int num_threads,
                    double batch_window_s, bool pipeline,
                    std::size_t ingest_capacity = 4096,
                    int pipeline_depth = 2) {
  SimOptions options;
  options.num_threads = num_threads;
  options.batch_window_s = batch_window_s;
  options.pipeline = pipeline;
  options.ingest_capacity = ingest_capacity;
  options.pipeline_depth = pipeline_depth;
  Simulation sim(&graph, oracle, workers, &requests, options);
  WorkloadRun run;
  run.report = sim.Run(MakeDispatchWindowFactory({}));
  run.served = sim.served();
  return run;
}

// Bit-identical on every deterministic field (wall-clock response-time
// and pipeline-occupancy stats are inherently run-dependent, excluded).
void ExpectIdentical(const WorkloadRun& a, const WorkloadRun& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.report.served_requests, b.report.served_requests);
  EXPECT_EQ(a.report.unified_cost, b.report.unified_cost);
  EXPECT_EQ(a.report.total_distance, b.report.total_distance);
  EXPECT_EQ(a.report.penalty_sum, b.report.penalty_sum);
  EXPECT_EQ(a.report.mean_pickup_wait_min, b.report.mean_pickup_wait_min);
  EXPECT_EQ(a.report.mean_detour_ratio, b.report.mean_detour_ratio);
  EXPECT_EQ(a.report.makespan_min, b.report.makespan_min);
  EXPECT_EQ(a.report.distance_queries, b.report.distance_queries);
  EXPECT_EQ(a.served, b.served);
}

class PipelineDeterminismTest : public ::testing::TestWithParam<double> {};

TEST_P(PipelineDeterminismTest, ThreadCountIndependent) {
  const double penalty_factor = GetParam();
  const RoadNetwork graph = MakeChengduLike(0.05, 2);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(41);
  RequestParams rp;
  rp.count = 220;
  rp.duration_min = 200.0;
  rp.penalty_factor = penalty_factor;
  rp.seed = 43;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 12, 4.0, &rng);

  for (double window_s : {2.0, 15.0}) {
    const WorkloadRun base = RunOnce(graph, &labels, workers, requests, 1,
                                     window_s, /*pipeline=*/true);
    ASSERT_GT(base.report.served_requests, 0);
    ASSERT_TRUE(base.report.pipeline.enabled);
    EXPECT_EQ(base.report.pipeline.ingested,
              static_cast<std::int64_t>(requests.size()));
    EXPECT_EQ(base.report.processed_requests, base.report.total_requests);
    for (int threads : {2, 4, 8}) {
      const WorkloadRun run = RunOnce(graph, &labels, workers, requests,
                                      threads, window_s, /*pipeline=*/true);
      ExpectIdentical(base, run, "window=" + std::to_string(window_s) +
                                     " threads=" + std::to_string(threads));
    }
  }
}

TEST_P(PipelineDeterminismTest, QueueCapacityIndependent) {
  // The ingest-queue bound only paces the producer; it must not leak into
  // any planning result — a tiny queue (heavy backpressure) and an
  // effectively unbounded one give bit-identical runs.
  const double penalty_factor = GetParam();
  const RoadNetwork graph = MakeChengduLike(0.05, 2);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(47);
  RequestParams rp;
  rp.count = 180;
  rp.duration_min = 120.0;
  rp.penalty_factor = penalty_factor;
  rp.seed = 53;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 10, 4.0, &rng);

  const WorkloadRun wide = RunOnce(graph, &labels, workers, requests, 4, 6.0,
                                   /*pipeline=*/true, /*capacity=*/4096);
  const WorkloadRun narrow = RunOnce(graph, &labels, workers, requests, 4, 6.0,
                                     /*pipeline=*/true, /*capacity=*/8);
  ExpectIdentical(wide, narrow, "capacity 4096 vs 8");
  EXPECT_LE(narrow.report.pipeline.max_queue_depth, 8);
}

INSTANTIATE_TEST_SUITE_P(Workloads, PipelineDeterminismTest,
                         ::testing::Values(10.0,   // default penalties
                                           1.7,    // rejection-heavy
                                           30.0),  // accept-heavy
                         [](const ::testing::TestParamInfo<double>& info) {
                           if (info.param < 5.0) return "RejectionHeavy";
                           return info.param > 20.0 ? "AcceptHeavy"
                                                    : "DefaultPenalties";
                         });

// ------------------------------------------------- ring depth

TEST(PipelineDepthTest, ReportsIdenticalAtEveryDepth) {
  // The slot-ring depth only changes HOW far the planning stage may run
  // ahead (speculating windows that commit-time validation re-derives),
  // never any planning result: every deterministic report field must be
  // bit-identical across depths, at 1 thread and with a real pool.
  const RoadNetwork graph = MakeChengduLike(0.05, 2);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(83);
  RequestParams rp;
  rp.count = 200;
  rp.duration_min = 150.0;
  rp.penalty_factor = 10.0;
  rp.seed = 89;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 10, 4.0, &rng);

  for (double window_s : {2.0, 6.0}) {
    const WorkloadRun base = RunOnce(graph, &labels, workers, requests, 1,
                                     window_s, /*pipeline=*/true,
                                     /*capacity=*/4096, /*depth=*/2);
    ASSERT_GT(base.report.served_requests, 0);
    EXPECT_EQ(base.report.pipeline.depth, 2);
    // The double buffer never speculates.
    EXPECT_EQ(base.report.pipeline.speculation_hits, 0);
    EXPECT_EQ(base.report.pipeline.speculation_misses, 0);
    for (int depth : {3, 4, 8}) {
      for (int threads : {1, 4}) {
        const WorkloadRun run = RunOnce(graph, &labels, workers, requests,
                                        threads, window_s, /*pipeline=*/true,
                                        /*capacity=*/4096, depth);
        EXPECT_EQ(run.report.pipeline.depth, depth);
        ExpectIdentical(base, run,
                        "window=" + std::to_string(window_s) + " depth=" +
                            std::to_string(depth) + " threads=" +
                            std::to_string(threads));
      }
    }
  }
}

// ------------------------------------------------- forced speculation

TEST(PipelineSpeculationTest, DivergedWindowsReplanAndMatchFusedReference) {
  // Drives the plan/commit split by hand with the plan stage one window
  // ahead: window e+1 is planned before window e commits, so the probe
  // "every shard released by e" fails and the planner must speculate.
  // A small contended fleet makes window e's commits overturn window
  // e+1's speculative reads (forced misses -> commit-time replans), and
  // the final outcome must still match the fused lock-step reference
  // exactly — speculation is an execution strategy, not a result change.
  const RoadNetwork graph = MakeChengduLike(0.05, 3);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(97);
  RequestParams rp;
  rp.count = 160;
  rp.duration_min = 80.0;  // dense windows on a 6-worker fleet
  rp.penalty_factor = 12.0;
  rp.seed = 101;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 6, 4.0, &rng);

  const double window_min = 6.0 / 60.0;
  // Shared window decomposition (identical to the windowed event loop).
  std::vector<std::vector<RequestId>> batches;
  std::vector<double> closes;
  std::size_t next = 0;
  while (next < requests.size()) {
    const double window_end = requests[next].release_time + window_min;
    std::vector<RequestId> batch;
    while (next < requests.size() &&
           requests[next].release_time < window_end) {
      batch.push_back(requests[next].id);
      ++next;
    }
    batches.push_back(std::move(batch));
    closes.push_back(window_end);
  }
  ASSERT_GT(batches.size(), 4u);

  // Reference: the fused lock-step loop (advance + OnBatch per window).
  Fleet ref_fleet(workers, &graph);
  PlanningContext ref_ctx(&graph, &labels, &requests);
  DispatchWindowPlanner ref(&ref_ctx, &ref_fleet, PlannerConfig{},
                            /*pool=*/nullptr);
  for (std::size_t k = 0; k < batches.size(); ++k) {
    ref_fleet.AdvanceTo(closes[k]);
    ref.OnBatch(batches[k], closes[k],
                static_cast<WindowEpoch>(k + 1));
  }
  ref_fleet.FinishAll();

  // Speculative run: the plan stage stays one window ahead of commit.
  Fleet fleet(workers, &graph);
  PlanningContext ctx(&graph, &labels, &requests);
  DispatchWindowPlanner planner(&ctx, &fleet, PlannerConfig{},
                                /*pool=*/nullptr);
  planner.ConfigurePipeline(4);
  fleet.DisableArrivalHeap();
  WindowEpoch planned = 0, committed = 0;
  const auto plan_next = [&] {
    const std::size_t k = static_cast<std::size_t>(planned);
    planner.PlanWindow(batches[k], closes[k], ++planned);
  };
  plan_next();
  while (committed < batches.size()) {
    if (planned < batches.size()) plan_next();  // one window ahead
    planner.CommitWindow(++committed);
    const InvariantReport inv =
        VerifyInvariants(fleet, requests, /*mid_run=*/true);
    ASSERT_TRUE(inv.ok) << "after epoch " << committed << ": "
                        << inv.violation;
  }
  fleet.FinishAll();

  // Speculation actually happened and diverged at least once.
  EXPECT_GT(planner.speculation_hits() + planner.speculation_misses(), 0);
  EXPECT_GT(planner.speculation_misses(), 0);

  // Bit-identical outcome versus the fused reference.
  EXPECT_EQ(fleet.committed_distance(), ref_fleet.committed_distance());
  for (const Request& r : requests) {
    EXPECT_EQ(fleet.AssignedWorker(r.id), ref_fleet.AssignedWorker(r.id))
        << "request " << r.id;
    EXPECT_EQ(fleet.PickupTime(r.id), ref_fleet.PickupTime(r.id));
    EXPECT_EQ(fleet.DropoffTime(r.id), ref_fleet.DropoffTime(r.id));
  }
  const InvariantReport inv = VerifyInvariants(fleet, requests);
  EXPECT_TRUE(inv.ok) << inv.violation;
}

// --------------------------------------------------- saturation

TEST(PipelineSaturationTest, IngestOutpacesPlanningWithoutDrops) {
  // Dense arrivals + a small queue: the replaying producer outruns the
  // planner, so the queue fills (backpressure engages) and arrivals keep
  // being accepted while windows are mid-plan (occupancy > 0). Nothing
  // may be dropped: every request is ingested, planned and accounted.
  const RoadNetwork graph = MakeChengduLike(0.05, 4);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(59);
  RequestParams rp;
  rp.count = 600;
  rp.duration_min = 90.0;  // ~40 requests per 6-second window
  rp.penalty_factor = 10.0;
  rp.seed = 61;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 30, 4.0, &rng);

  SimOptions options;
  options.num_threads = 2;
  options.batch_window_s = 6.0;
  options.pipeline = true;
  options.ingest_capacity = 16;
  Simulation sim(&graph, &labels, workers, &requests, options);
  const SimReport rep = sim.Run(MakeDispatchWindowFactory({}));

  const PipelineStats& ps = rep.pipeline;
  ASSERT_TRUE(ps.enabled);
  EXPECT_EQ(ps.ingested, static_cast<std::int64_t>(requests.size()));
  EXPECT_EQ(rep.processed_requests, rep.total_requests);
  EXPECT_FALSE(rep.timed_out);
  EXPECT_GT(ps.windows, 10);
  EXPECT_GT(ps.backpressure_waits, 0);
  EXPECT_GT(ps.overlapped_arrivals, 0);
  EXPECT_GT(ps.occupancy, 0.0);
  EXPECT_LE(ps.max_queue_depth, 16);
  EXPECT_GT(ps.plan_ms, 0.0);
  // Latency samples cover exactly the processed requests.
  EXPECT_EQ(rep.response_stats.count(),
            static_cast<std::size_t>(rep.processed_requests));

  const InvariantReport inv = VerifyInvariants(sim.fleet(), requests);
  EXPECT_TRUE(inv.ok) << inv.violation;
}

// --------------------------------------------------- wall-limit timeout

TEST(PipelineTimeoutTest, KillSwitchDrainsAndJoinsWithoutHang) {
  // A zero wall budget trips the plan stage's kill switch on the very
  // first arrival: the producer (blocked on the tiny full queue) must be
  // woken by Cancel, the committer must still receive its stop sentinel,
  // and both joins must return — the run ends timed-out with every
  // request rejected (DNF) and exact accounting, instead of hanging.
  const RoadNetwork graph = MakeChengduLike(0.05, 5);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(73);
  RequestParams rp;
  rp.count = 300;
  rp.duration_min = 90.0;
  rp.penalty_factor = 10.0;
  rp.seed = 79;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 10, 4.0, &rng);

  SimOptions options;
  options.num_threads = 2;
  options.batch_window_s = 6.0;
  options.pipeline = true;
  options.ingest_capacity = 4;  // producer must block before the cancel
  options.wall_limit_seconds = 0.0;
  Simulation sim(&graph, &labels, workers, &requests, options);
  const SimReport rep = sim.Run(MakeDispatchWindowFactory({}));

  EXPECT_TRUE(rep.timed_out);
  const PipelineStats& ps = rep.pipeline;
  ASSERT_TRUE(ps.enabled);
  // The kill switch fires before any window is planned, so nothing is
  // processed and ingest stops early (well short of the request table).
  EXPECT_EQ(ps.windows, 0);
  EXPECT_EQ(rep.processed_requests, 0);
  EXPECT_EQ(rep.response_stats.count(), 0u);
  EXPECT_LT(ps.ingested, static_cast<std::int64_t>(requests.size()));
  // DNF accounting: every request is rejected and billed its penalty.
  EXPECT_EQ(rep.served_requests, 0);
  double penalty_sum = 0.0;
  for (const Request& r : requests) penalty_sum += r.penalty;
  EXPECT_DOUBLE_EQ(rep.penalty_sum, penalty_sum);

  const InvariantReport inv = VerifyInvariants(sim.fleet(), requests);
  EXPECT_TRUE(inv.ok) << inv.violation;
}

// ------------------------------------- manual epochs / shard release

TEST(PipelineEpochTest, PlanCommitSplitReleasesShardsPerEpoch) {
  const RoadNetwork graph = MakeChengduLike(0.05, 3);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(67);
  RequestParams rp;
  rp.count = 80;
  rp.duration_min = 60.0;
  rp.penalty_factor = 10.0;
  rp.seed = 71;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 8, 4.0, &rng);

  Fleet fleet(workers, &graph);
  PlanningContext ctx(&graph, &labels, &requests);
  DispatchWindowPlanner planner(&ctx, &fleet, PlannerConfig{},
                                /*pool=*/nullptr);

  const double window_min = 6.0 / 60.0;
  std::size_t next = 0;
  WindowEpoch epoch = 0;
  while (next < requests.size()) {
    const double window_end = requests[next].release_time + window_min;
    std::vector<RequestId> batch;
    while (next < requests.size() &&
           requests[next].release_time < window_end) {
      batch.push_back(requests[next].id);
      ++next;
    }
    ++epoch;
    // The pipelined split, driven by hand on one thread: plan (which
    // self-advances the fleet shard by shard), then commit.
    planner.PlanWindow(batch, window_end, epoch);
    planner.CommitWindow(epoch);
    for (int s = 0; s < planner.shards().num_shards(); ++s) {
      EXPECT_EQ(planner.shards().CommittedEpoch(s), epoch);
    }
    const InvariantReport inv =
        VerifyInvariants(fleet, requests, /*mid_run=*/true);
    ASSERT_TRUE(inv.ok) << "after epoch " << epoch << ": " << inv.violation;
  }
  ASSERT_GT(epoch, 3u);
  fleet.FinishAll();
  const InvariantReport inv = VerifyInvariants(fleet, requests);
  EXPECT_TRUE(inv.ok) << inv.violation;
}

// ------------------------------------------------- pipelined fuzz

TEST(PipelineFuzzTest, RandomWorkloadsMatchSingleThreadedPipeline) {
  // Several random workloads through the full three-stage engine at
  // 4 threads vs the 1-thread pipelined reference: results must match
  // bit-for-bit and the fleet must stay invariant-clean. Run under tsan
  // by the tsan preset — the advance-gate / commit-stage overlap is
  // exactly what it probes.
  for (const int seed : {3, 17}) {
    const RoadNetwork graph = MakeChengduLike(0.05, seed);
    HubLabelOracle labels = HubLabelOracle::Build(graph);
    Rng rng(100 + seed);
    RequestParams rp;
    rp.count = 150;
    rp.duration_min = 100.0;
    rp.penalty_factor = (seed % 2 == 0) ? 2.5 : 12.0;
    rp.seed = 200 + seed;
    const std::vector<Request> requests =
        GenerateRequests(graph, rp, &labels, &rng);
    const std::vector<Worker> workers = GenerateWorkers(graph, 9, 4.0, &rng);

    const WorkloadRun base = RunOnce(graph, &labels, workers, requests, 1,
                                     4.0, /*pipeline=*/true, /*capacity=*/32);
    const WorkloadRun run = RunOnce(graph, &labels, workers, requests, 4,
                                    4.0, /*pipeline=*/true, /*capacity=*/32);
    ExpectIdentical(base, run, "seed=" + std::to_string(seed));

    SimOptions options;
    options.num_threads = 4;
    options.batch_window_s = 4.0;
    options.pipeline = true;
    options.ingest_capacity = 32;
    Simulation sim(&graph, &labels, workers, &requests, options);
    sim.Run(MakeDispatchWindowFactory({}));
    const InvariantReport inv = VerifyInvariants(sim.fleet(), requests);
    EXPECT_TRUE(inv.ok) << "seed " << seed << ": " << inv.violation;
  }
}

// --------------------------------- parallel-commit shard conflicts

TEST(PipelineCommitConflictTest, ConcurrentFootprintsMatchSerialCommit) {
  // Conflict-heavy fuzz for the parallel commit stage: a compact fleet
  // on a small graph makes accepted proposals' shard footprints overlap
  // constantly, so the per-shard ticket queues (and the replan path for
  // proposals invalidated by an earlier conflicting commit) are
  // exercised hard. Depth 4 with a real pool — speculative validation
  // AND concurrent footprint commits — must match the depth-2 1-thread
  // pipelined run bit-for-bit. Run under tsan by the tsan preset.
  for (const int seed : {5, 23}) {
    const RoadNetwork graph = MakeChengduLike(0.05, seed);
    HubLabelOracle labels = HubLabelOracle::Build(graph);
    Rng rng(300 + seed);
    RequestParams rp;
    rp.count = 150;
    rp.duration_min = 70.0;  // dense: many requests per window
    rp.penalty_factor = (seed % 2 == 0) ? 20.0 : 8.0;
    rp.seed = 400 + seed;
    const std::vector<Request> requests =
        GenerateRequests(graph, rp, &labels, &rng);
    const std::vector<Worker> workers = GenerateWorkers(graph, 7, 4.0, &rng);

    const WorkloadRun base =
        RunOnce(graph, &labels, workers, requests, 1, 4.0,
                /*pipeline=*/true, /*capacity=*/32, /*depth=*/2);
    const WorkloadRun run =
        RunOnce(graph, &labels, workers, requests, 4, 4.0,
                /*pipeline=*/true, /*capacity=*/32, /*depth=*/4);
    ExpectIdentical(base, run, "seed=" + std::to_string(seed));

    SimOptions options;
    options.num_threads = 4;
    options.batch_window_s = 4.0;
    options.pipeline = true;
    options.ingest_capacity = 32;
    options.pipeline_depth = 4;
    Simulation sim(&graph, &labels, workers, &requests, options);
    sim.Run(MakeDispatchWindowFactory({}));
    const InvariantReport inv = VerifyInvariants(sim.fleet(), requests);
    EXPECT_TRUE(inv.ok) << "seed " << seed << ": " << inv.violation;
  }
}

// ------------------------------------------- admission control / drain

// Shared workload for the admission tests (tighter than the determinism
// sweeps: the levers, not the planner, are under test here).
struct AdmissionWorkload {
  explicit AdmissionWorkload(RoadNetwork g) : graph(std::move(g)) {}
  RoadNetwork graph;
  std::unique_ptr<HubLabelOracle> labels;
  std::vector<Request> requests;
  std::vector<Worker> workers;
};

const AdmissionWorkload& AdmissionSetup() {
  static const AdmissionWorkload* w = [] {
    auto* aw = new AdmissionWorkload(MakeChengduLike(0.05, 2));
    aw->labels =
        std::make_unique<HubLabelOracle>(HubLabelOracle::Build(aw->graph));
    Rng rng(67);
    RequestParams rp;
    rp.count = 180;
    rp.duration_min = 90.0;  // dense: several requests per 6 s window
    rp.seed = 71;
    aw->requests = GenerateRequests(aw->graph, rp, aw->labels.get(), &rng);
    // Every third request gets a near-impossible deadline (2 min of
    // slack against a 6 min admission floor) so the slack-floor tests
    // have a deterministic population to shed; the rest keep the
    // generator's 10 min offset.
    for (std::size_t i = 0; i < aw->requests.size(); i += 3) {
      aw->requests[i].deadline = aw->requests[i].release_time + 2.0;
    }
    aw->workers = GenerateWorkers(aw->graph, 10, 4.0, &rng);
    return aw;
  }();
  return *w;
}

WorkloadRun RunAdmission(SimOptions options) {
  const AdmissionWorkload& w = AdmissionSetup();
  options.batch_window_s = 6.0;
  options.pipeline = true;
  HubLabelOracle labels = *w.labels;  // per-run query counters
  Simulation sim(&w.graph, &labels, w.workers, &w.requests, options);
  WorkloadRun run;
  run.report = sim.Run(MakeDispatchWindowFactory({}));
  run.served = sim.served();
  const InvariantReport acct = CheckAccounting(run.report);
  EXPECT_TRUE(acct.ok) << acct.violation;
  const InvariantReport inv = VerifyInvariants(sim.fleet(), w.requests);
  EXPECT_TRUE(inv.ok) << inv.violation;
  return run;
}

void ExpectSameShedAccounting(const WorkloadRun& a, const WorkloadRun& b,
                              const std::string& label) {
  SCOPED_TRACE(label);
  ExpectIdentical(a, b, label);
  EXPECT_EQ(a.report.rejected_requests, b.report.rejected_requests);
  EXPECT_EQ(a.report.shed_requests, b.report.shed_requests);
  EXPECT_EQ(a.report.dnf_requests, b.report.dnf_requests);
  EXPECT_EQ(a.report.shed_deadline, b.report.shed_deadline);
  EXPECT_EQ(a.report.shed_overload, b.report.shed_overload);
  EXPECT_EQ(a.report.shed_drain, b.report.shed_drain);
}

TEST(PipelineAdmissionTest, BlockPolicyShedsNothingAndMatchesDefault) {
  SimOptions plain;
  plain.num_threads = 2;
  const WorkloadRun base = RunAdmission(plain);
  EXPECT_EQ(base.report.shed_requests, 0);
  EXPECT_EQ(base.report.dnf_requests, 0);
  EXPECT_EQ(base.report.rejected_requests,
            base.report.processed_requests - base.report.served_requests);
  // A shedding policy with no lever armed and ample capacity must be
  // bit-identical to the lossless kBlock run: the safety valve never
  // engages below capacity and the deterministic levers are off.
  SimOptions shed = plain;
  shed.admission_policy = AdmissionPolicy::kShedOldestSlack;
  const WorkloadRun unarmed = RunAdmission(shed);
  ExpectSameShedAccounting(base, unarmed, "unarmed kShedOldestSlack");
  EXPECT_EQ(unarmed.report.shed_requests, 0);
}

TEST(PipelineAdmissionTest, SlackFloorShedsUnservableDeterministically) {
  SimOptions options;
  options.num_threads = 1;
  options.admission_policy = AdmissionPolicy::kShedOldestSlack;
  options.admission_slack_min = 6.0;  // deadline offset is 10 min: bites
  const WorkloadRun base = RunAdmission(options);
  EXPECT_GT(base.report.shed_deadline, 0);
  EXPECT_EQ(base.report.shed_overload, 0);
  EXPECT_EQ(base.report.shed_drain, 0);
  EXPECT_GT(base.report.served_requests, 0);
  // The floor is a pure function of the workload (Euclidean lower bound):
  // every thread count sheds the same set.
  for (const int threads : {2, 4}) {
    SimOptions o = options;
    o.num_threads = threads;
    ExpectSameShedAccounting(base, RunAdmission(o),
                             "slack floor threads=" + std::to_string(threads));
  }
}

TEST(PipelineAdmissionTest, WindowBudgetShedsExcessDeterministically) {
  for (const AdmissionPolicy policy : {AdmissionPolicy::kShedOldestSlack,
                                       AdmissionPolicy::kRejectAtIngress}) {
    SimOptions options;
    options.num_threads = 1;
    options.admission_policy = policy;
    options.window_admit_budget = 4;  // windows carry ~12 requests: bites
    const WorkloadRun base = RunAdmission(options);
    EXPECT_GT(base.report.shed_overload, 0);
    EXPECT_EQ(base.report.shed_deadline, 0);
    EXPECT_GT(base.report.served_requests, 0);
    for (const int threads : {2, 4}) {
      SimOptions o = options;
      o.num_threads = threads;
      ExpectSameShedAccounting(
          base, RunAdmission(o),
          "budget policy=" +
              std::to_string(static_cast<int>(policy)) +
              " threads=" + std::to_string(threads));
    }
  }
}

TEST(PipelineDrainTest, CutoffCommitsPrefixAndShedsRemainderGracefully) {
  SimOptions options;
  options.num_threads = 1;
  options.drain_after_s = 45.0 * 60.0;  // half the 90-min workload
  const WorkloadRun base = RunAdmission(options);
  EXPECT_TRUE(base.report.pipeline.drained);
  EXPECT_EQ(base.report.pipeline.drain_cutoff_min, 45.0);
  EXPECT_GT(base.report.shed_drain, 0);
  EXPECT_GT(base.report.served_requests, 0);
  // Graceful: everything admitted before the cutoff is planned and
  // committed (no DNFs, unlike the wall-limit kill switch) and the shed
  // remainder is billed its penalty.
  EXPECT_EQ(base.report.dnf_requests, 0);
  EXPECT_EQ(base.report.processed_requests,
            base.report.total_requests -
                static_cast<int>(base.report.shed_drain));
  EXPECT_GT(base.report.penalty_sum, 0.0);
  EXPECT_FALSE(base.report.timed_out);
  // The cutoff is simulated time: thread counts cannot move it, and drain
  // works under every admission policy.
  for (const int threads : {2, 4}) {
    SimOptions o = options;
    o.num_threads = threads;
    o.admission_policy = threads == 2 ? AdmissionPolicy::kBlock
                                      : AdmissionPolicy::kShedOldestSlack;
    ExpectSameShedAccounting(base, RunAdmission(o),
                             "drain threads=" + std::to_string(threads));
  }
}

// ------------------------------------------------ close/cancel races

TEST(IngestQueueRaceTest, MultiProducerCancelAccountsEveryArrival) {
  // Producers block on a tiny queue while the consumer pops a few and
  // then cancels mid-stream. Every blocked waiter must wake (the joins
  // hang otherwise — ctest's timeout is the deadlock detector) and every
  // arrival must land in exactly one bucket: popped, discarded by
  // Cancel(), or refused (Push returned false).
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  IngestQueue q(2);
  std::atomic<std::int64_t> refused{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (!q.Push({p * kPerProducer + i, static_cast<double>(i), 0.0, {}})) {
          refused.fetch_add(1);
        }
      }
    });
  }
  std::int64_t popped = 0;
  Arrival a;
  for (int i = 0; i < 40; ++i) {
    if (q.Pop(&a)) ++popped;
  }
  q.Cancel();
  // Post-cancel pops fail immediately; producers all wake and drain out.
  EXPECT_FALSE(q.Pop(&a));
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(q.total_pushed(), popped + q.discarded());
  EXPECT_EQ(q.total_pushed() + refused.load(),
            static_cast<std::int64_t>(kProducers) * kPerProducer);
  EXPECT_LE(q.max_depth(), 2u);
}

TEST(IngestQueueRaceTest, MultiProducerCloseDrainsEverything) {
  // Close (the graceful path) must lose nothing: after the producers
  // finish and the stream closes, the consumer drains exactly what was
  // pushed, and the final Pop returns false instead of hanging.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 150;
  IngestQueue q(8);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(
            q.Push({p * kPerProducer + i, static_cast<double>(i), 0.0, {}}));
      }
    });
  }
  std::int64_t popped = 0;
  std::thread consumer([&] {
    Arrival a;
    while (q.Pop(&a)) ++popped;
  });
  for (std::thread& t : producers) t.join();
  q.Close();
  consumer.join();
  EXPECT_EQ(popped, static_cast<std::int64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(q.total_pushed(), popped);
  EXPECT_EQ(q.discarded(), 0);
  EXPECT_LE(q.max_depth(), 8u);
}

TEST(IngestQueueRaceTest, ConcurrentShedPolicyKeepsCountsConsistent) {
  // Multi-producer TryPush under kShedOldestSlack: admissions, evictions
  // and rejections race on a full queue, yet the conservation law must
  // hold exactly: everything admitted is either popped or evicted, and
  // every offer is admitted or rejected.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 300;
  IngestQueue q(4);
  std::atomic<std::int64_t> admitted{0}, rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int id = p * kPerProducer + i;
        const auto out = q.TryPush({id, 0.0, static_cast<double>(id % 17), {}},
                                   AdmissionPolicy::kShedOldestSlack);
        if (out == IngestQueue::PushOutcome::kAdmitted) {
          admitted.fetch_add(1);
        } else {
          ASSERT_EQ(out, IngestQueue::PushOutcome::kRejected);
          rejected.fetch_add(1);
        }
      }
    });
  }
  std::int64_t popped = 0;
  std::thread consumer([&] {
    Arrival a;
    while (q.Pop(&a)) ++popped;
  });
  for (std::thread& t : producers) t.join();
  q.Close();
  consumer.join();
  EXPECT_EQ(admitted.load() + rejected.load(),
            static_cast<std::int64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(q.total_pushed(), admitted.load());
  EXPECT_EQ(popped + q.evicted(), q.total_pushed());
  EXPECT_EQ(q.discarded(), 0);
  EXPECT_LE(q.max_depth(), 4u);
}

}  // namespace
}  // namespace urpsm
