#include <gtest/gtest.h>

#include "src/model/feasibility.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

class FeasibilityTest : public ::testing::Test {
 protected:
  FeasibilityTest() : env_(MakePathGraph(10, 1.0)) {}
  double EdgeMin() const {
    return 1.0 / SpeedKmPerMin(RoadClass::kResidential);
  }
  TestEnv env_;
};

TEST_F(FeasibilityTest, EmptyRouteState) {
  Route rt(4, 7.0);
  const RouteState st = BuildRouteState(rt, env_.ctx());
  EXPECT_EQ(st.n, 0);
  EXPECT_DOUBLE_EQ(st.arr[0], 7.0);
  EXPECT_EQ(st.ddl[0], kInf);
  EXPECT_EQ(st.slack[0], kInf);
  EXPECT_EQ(st.picked[0], 0);
}

TEST_F(FeasibilityTest, ArraysMatchPaperDefinitions) {
  // Route: anchor 0 at t=0, pickup at 2, dropoff at 6. L = 4 edges.
  const double e = EdgeMin();
  const Request r = env_.AddRequest(2, 6, 0.0, 20.0 * e, 10.0, 2);
  Route rt(0, 0.0);
  rt.Insert(r, 0, 0, env_.oracle());
  const RouteState st = BuildRouteState(rt, env_.ctx());
  ASSERT_EQ(st.n, 2);
  // arr (Eq. 7): 0, 2e, 6e.
  EXPECT_NEAR(st.arr[1], 2 * e, 1e-12);
  EXPECT_NEAR(st.arr[2], 6 * e, 1e-12);
  // ddl (Eq. 6): pickup e_r - L = 20e - 4e = 16e; dropoff e_r = 20e.
  EXPECT_NEAR(st.ddl[1], 16 * e, 1e-12);
  EXPECT_NEAR(st.ddl[2], 20 * e, 1e-12);
  // slack (Eq. 8): slack[2] = inf; slack[1] = ddl[2]-arr[2] = 14e;
  // slack[0] = min(14e, ddl[1]-arr[1] = 14e) = 14e.
  EXPECT_EQ(st.slack[2], kInf);
  EXPECT_NEAR(st.slack[1], 14 * e, 1e-9);
  EXPECT_NEAR(st.slack[0], 14 * e, 1e-9);
  // picked (Eq. 9): 0, +2, back to 0.
  EXPECT_EQ(st.picked[0], 0);
  EXPECT_EQ(st.picked[1], 2);
  EXPECT_EQ(st.picked[2], 0);
}

TEST_F(FeasibilityTest, OnboardLoadSeedsPickedArray) {
  const Request r = env_.AddRequest(2, 6, 0.0, 100.0, 10.0, 3);
  Route rt(0, 0.0);
  rt.Insert(r, 0, 0, env_.oracle());
  rt.PopFront();  // rider on board at anchor
  const RouteState st = BuildRouteState(rt, env_.ctx());
  ASSERT_EQ(st.n, 1);
  EXPECT_EQ(st.picked[0], 3);
  EXPECT_EQ(st.picked[1], 0);
}

TEST_F(FeasibilityTest, SlackIsSuffixMinimum) {
  const double e = EdgeMin();
  // Two requests with different tightness so slacks differ along the route.
  const Request r1 = env_.AddRequest(1, 8, 0.0, 30.0 * e);
  const Request r2 = env_.AddRequest(2, 4, 0.0, 9.0 * e);
  Route rt(0, 0.0);
  rt.Insert(r1, 0, 0, env_.oracle());   // 0 ->1 ->8
  rt.Insert(r2, 1, 2, env_.oracle());   // 0 ->1 ->2 ->4 ->8
  const RouteState st = BuildRouteState(rt, env_.ctx());
  ASSERT_EQ(st.n, 4);
  for (int k = 0; k + 1 <= st.n; ++k) {
    EXPECT_LE(st.slack[static_cast<std::size_t>(k)],
              st.slack[static_cast<std::size_t>(k + 1)] + 1e-12);
  }
}

TEST_F(FeasibilityTest, ValidateStopsAcceptsFeasible) {
  const Request r = env_.AddRequest(2, 6, 0.0, 100.0);
  std::vector<Stop> stops = {{2, r.id, StopKind::kPickup},
                             {6, r.id, StopKind::kDropoff}};
  double cost = 0.0;
  EXPECT_TRUE(ValidateStops(0, 0.0, stops, 4, 0, env_.ctx(), &cost));
  EXPECT_NEAR(cost, 6 * EdgeMin(), 1e-12);
}

TEST_F(FeasibilityTest, ValidateStopsRejectsDeadline) {
  const double e = EdgeMin();
  const Request r = env_.AddRequest(2, 6, 0.0, 5.0 * e);  // needs 6e
  std::vector<Stop> stops = {{2, r.id, StopKind::kPickup},
                             {6, r.id, StopKind::kDropoff}};
  EXPECT_FALSE(ValidateStops(0, 0.0, stops, 4, 0, env_.ctx()));
}

TEST_F(FeasibilityTest, ValidateStopsRejectsCapacity) {
  const Request r1 = env_.AddRequest(1, 6, 0.0, 1000.0, 10.0, 2);
  const Request r2 = env_.AddRequest(2, 5, 0.0, 1000.0, 10.0, 2);
  std::vector<Stop> stops = {{1, r1.id, StopKind::kPickup},
                             {2, r2.id, StopKind::kPickup},
                             {5, r2.id, StopKind::kDropoff},
                             {6, r1.id, StopKind::kDropoff}};
  EXPECT_TRUE(ValidateStops(0, 0.0, stops, 4, 0, env_.ctx()));
  EXPECT_FALSE(ValidateStops(0, 0.0, stops, 3, 0, env_.ctx()));
}

TEST_F(FeasibilityTest, ValidateStopsRejectsDropoffBeforePickup) {
  const Request r = env_.AddRequest(2, 6, 0.0, 1000.0);
  std::vector<Stop> stops = {{6, r.id, StopKind::kDropoff},
                             {2, r.id, StopKind::kPickup}};
  EXPECT_FALSE(ValidateStops(0, 0.0, stops, 4, 0, env_.ctx()));
}

TEST_F(FeasibilityTest, ValidateStopsRejectsDuplicatePickup) {
  const Request r = env_.AddRequest(2, 6, 0.0, 1000.0);
  std::vector<Stop> stops = {{2, r.id, StopKind::kPickup},
                             {2, r.id, StopKind::kPickup},
                             {6, r.id, StopKind::kDropoff}};
  EXPECT_FALSE(ValidateStops(0, 0.0, stops, 4, 0, env_.ctx()));
}

TEST_F(FeasibilityTest, DirectDistCachedSingleQuery) {
  const Request r = env_.AddRequest(2, 6, 0.0, 1000.0);
  const std::int64_t before = env_.oracle()->query_count();
  const double l1 = env_.ctx()->DirectDist(r.id);
  const double l2 = env_.ctx()->DirectDist(r.id);
  EXPECT_DOUBLE_EQ(l1, l2);
  EXPECT_EQ(env_.oracle()->query_count(), before + 1);
}

}  // namespace
}  // namespace urpsm
