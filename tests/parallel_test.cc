// Tests for the parallel dispatch engine: ThreadPool/ParallelFor,
// ShardedLruCache, the concurrent CachedOracle path, and the determinism
// regression proving ParallelGreedyDpPlanner is bit-identical to the
// sequential GreedyDP planners for every thread count.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/parallel/parallel_planner.h"
#include "src/parallel/thread_pool.h"
#include "src/shortest/hub_labels.h"
#include "src/sim/simulator.h"
#include "src/util/sharded_lru_cache.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"

namespace urpsm {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kN = 20000;
  std::vector<std::atomic<int>> counts(kN);
  for (auto& c : counts) c.store(0);
  pool.ParallelFor(0, kN, [&](std::int64_t i) {
    counts[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, RespectsNonZeroBeginAndGrain) {
  ThreadPool pool(3);
  constexpr std::int64_t kBegin = 17, kEnd = 4711;
  std::vector<std::atomic<int>> counts(kEnd);
  for (auto& c : counts) c.store(0);
  pool.ParallelFor(kBegin, kEnd,
                   [&](std::int64_t i) {
                     counts[static_cast<std::size_t>(i)].fetch_add(1);
                   },
                   /*grain=*/64);
  for (std::int64_t i = 0; i < kEnd; ++i) {
    ASSERT_EQ(counts[static_cast<std::size_t>(i)].load(), i >= kBegin ? 1 : 0);
  }
}

TEST(ThreadPoolTest, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(3, 2, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A single iteration runs inline on the caller.
  std::int64_t seen = -1;
  pool.ParallelFor(9, 10, [&](std::int64_t i) { seen = i; });
  EXPECT_EQ(seen, 9);
}

TEST(ThreadPoolTest, SizeOnePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const auto caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.ParallelFor(0, 100, [&](std::int64_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  // Stresses the epoch/wakeup logic: many small back-to-back jobs.
  ThreadPool pool(4);
  for (int round = 0; round < 300; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.ParallelFor(0, 64, [&](std::int64_t i) { sum.fetch_add(i); });
    ASSERT_EQ(sum.load(), 64 * 63 / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, WritesAreVisibleToCallerAfterReturn) {
  ThreadPool pool(4);
  constexpr std::int64_t kN = 5000;
  std::vector<std::int64_t> out(kN, -1);  // plain (non-atomic) slots
  pool.ParallelFor(0, kN,
                   [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = i * i; });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ThreadPoolTest, ParallelMapReturnsPerIndexValues) {
  ThreadPool pool(4);
  const std::vector<int> squares =
      pool.ParallelMap<int>(100, [](std::int64_t i) {
        return static_cast<int>(i * i);
      });
  ASSERT_EQ(squares.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(squares[static_cast<std::size_t>(i)], i * i);
}

// ---------------------------------------------------------- ShardedLruCache

TEST(ShardedLruCacheTest, PutGetAndCounters) {
  ShardedLruCache<int, int> cache(64, 4);
  EXPECT_EQ(cache.num_shards(), 4u);
  EXPECT_FALSE(cache.Get(1).has_value());
  cache.Put(1, 10);
  cache.Put(2, 20);
  ASSERT_TRUE(cache.Get(1).has_value());
  EXPECT_EQ(*cache.Get(1), 10);
  EXPECT_EQ(*cache.Get(2), 20);
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.misses(), 1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1).has_value());
}

TEST(ShardedLruCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  ShardedLruCache<int, int> cache(100, 5);
  EXPECT_EQ(cache.num_shards(), 8u);
  ShardedLruCache<int, int> one(100, 1);
  EXPECT_EQ(one.num_shards(), 1u);
  one.Put(3, 33);
  EXPECT_EQ(*one.Get(3), 33);
}

TEST(ShardedLruCacheTest, EvictionKeepsSizeBounded) {
  // Per-shard capacity is ceil(64/4) = 16, so the total never exceeds 64
  // no matter how the keys hash.
  ShardedLruCache<int, int> cache(64, 4);
  for (int k = 0; k < 10000; ++k) cache.Put(k, k);
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(cache.size(), 0u);
}

TEST(ShardedLruCacheTest, ZeroCapacityDisablesCaching) {
  ShardedLruCache<int, int> cache(0, 8);
  cache.Put(1, 10);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedLruCacheTest, ConcurrentHammerNeverReturnsWrongValue) {
  ShardedLruCache<int, std::int64_t> cache(256, 8);
  constexpr int kThreads = 8, kOps = 20000, kKeys = 512;
  std::atomic<bool> corrupt{false};
  std::atomic<std::int64_t> gets{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t state = 0x9e3779b97f4a7c15ULL * (t + 1);
      for (int op = 0; op < kOps; ++op) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const int key = static_cast<int>(state >> 33) % kKeys;
        if ((state & 1) != 0u) {
          cache.Put(key, static_cast<std::int64_t>(key) * 3);
        } else {
          gets.fetch_add(1);
          if (auto hit = cache.Get(key)) {
            if (*hit != static_cast<std::int64_t>(key) * 3) corrupt.store(true);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(corrupt.load());
  EXPECT_LE(cache.size(), 256u);
  // Every Get is counted as exactly one hit or one miss, even under
  // contention.
  EXPECT_EQ(cache.hits() + cache.misses(), gets.load());
}

// ----------------------------------------------------- concurrent oracle

TEST(CachedOracleConcurrencyTest, ConcurrentDistancesMatchSequential) {
  const RoadNetwork graph = MakeCity({12, 12, 0.3, 4, 12, 0.1, 0.02, 5});
  DijkstraOracle inner(&graph);
  CachedOracle cached(&inner, 1 << 12);

  // Ground truth from an independent sequential oracle.
  DijkstraOracle truth(&graph);
  const int n = graph.num_vertices();
  constexpr int kThreads = 8, kPairs = 400;
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(kPairs);
  std::uint64_t state = 42;
  for (int i = 0; i < kPairs; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto u = static_cast<VertexId>((state >> 33) % static_cast<std::uint64_t>(n));
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto v = static_cast<VertexId>((state >> 33) % static_cast<std::uint64_t>(n));
    pairs.emplace_back(u, v);
  }

  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::vector<std::vector<double>> got(kThreads,
                                       std::vector<double>(kPairs, -1.0));
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPairs; ++i) {
        got[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] =
            cached.Distance(pairs[static_cast<std::size_t>(i)].first,
                            pairs[static_cast<std::size_t>(i)].second);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int i = 0; i < kPairs; ++i) {
    const double expect = truth.Distance(pairs[static_cast<std::size_t>(i)].first,
                                         pairs[static_cast<std::size_t>(i)].second);
    for (int t = 0; t < kThreads; ++t) {
      if (got[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] != expect) {
        mismatch.store(true);
      }
    }
  }
  EXPECT_FALSE(mismatch.load());
  // Every top-level call is counted exactly once, concurrency or not.
  EXPECT_EQ(cached.query_count(), static_cast<std::int64_t>(kThreads) * kPairs);
}

// ------------------------------------------------- determinism regression

struct WorkloadRun {
  SimReport report;
  std::vector<bool> served;
};

WorkloadRun RunOnce(const RoadNetwork& graph, DistanceOracle* oracle,
                    const std::vector<Worker>& workers,
                    const std::vector<Request>& requests,
                    const PlannerFactory& factory, int num_threads) {
  SimOptions options;
  options.num_threads = num_threads;
  Simulation sim(&graph, oracle, workers, &requests, options);
  WorkloadRun run;
  run.report = sim.Run(factory);
  run.served = sim.served();
  return run;
}

// Bit-identical on every deterministic field (wall-clock response-time
// stats are inherently run-dependent and excluded).
void ExpectIdentical(const WorkloadRun& a, const WorkloadRun& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.report.served_requests, b.report.served_requests);
  EXPECT_EQ(a.report.unified_cost, b.report.unified_cost);
  EXPECT_EQ(a.report.total_distance, b.report.total_distance);
  EXPECT_EQ(a.report.penalty_sum, b.report.penalty_sum);
  EXPECT_EQ(a.report.mean_pickup_wait_min, b.report.mean_pickup_wait_min);
  EXPECT_EQ(a.report.mean_detour_ratio, b.report.mean_detour_ratio);
  EXPECT_EQ(a.report.makespan_min, b.report.makespan_min);
  EXPECT_EQ(a.served, b.served);
}

class ParallelPlannerDeterminismTest
    : public ::testing::TestWithParam<double> {};

TEST_P(ParallelPlannerDeterminismTest, BitIdenticalToSequentialForAllThreadCounts) {
  const double penalty_factor = GetParam();
  const RoadNetwork graph = MakeChengduLike(0.05, 2);
  HubLabelOracle labels = HubLabelOracle::Build(graph);

  Rng rng(17);
  RequestParams rp;
  rp.count = 260;
  rp.duration_min = 240.0;
  rp.penalty_factor = penalty_factor;
  rp.seed = 23;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 14, 4.0, &rng);

  const PlannerConfig config;  // pruning on
  const WorkloadRun sequential = RunOnce(graph, &labels, workers, requests,
                                         MakePruneGreedyDpFactory(config), 1);
  // The unpruned ablation must agree too (Lemma 8 losslessness with the
  // shared deterministic tie-break).
  const WorkloadRun unpruned = RunOnce(graph, &labels, workers, requests,
                                       MakeGreedyDpFactory(config), 1);
  ExpectIdentical(sequential, unpruned, "pruneGreedyDP vs GreedyDP");

  ASSERT_GT(sequential.report.served_requests, 0);
  if (penalty_factor < 5.0) {
    // The rejection-heavy workload must actually exercise rejections.
    ASSERT_LT(sequential.report.served_requests,
              sequential.report.total_requests);
  }

  for (int threads : {1, 2, 4, 8}) {
    const WorkloadRun parallel =
        RunOnce(graph, &labels, workers, requests,
                MakeParallelGreedyDpFactory(config), threads);
    ExpectIdentical(sequential, parallel,
                    "parallel threads=" + std::to_string(threads));
  }

  // The speculative block scan is thread-count independent, so the
  // distance-query count of parallel runs must not depend on the pool
  // size either.
  const WorkloadRun p2 = RunOnce(graph, &labels, workers, requests,
                                 MakeParallelGreedyDpFactory(config), 2);
  const WorkloadRun p8 = RunOnce(graph, &labels, workers, requests,
                                 MakeParallelGreedyDpFactory(config), 8);
  EXPECT_EQ(p2.report.distance_queries, p8.report.distance_queries);
}

INSTANTIATE_TEST_SUITE_P(Workloads, ParallelPlannerDeterminismTest,
                         ::testing::Values(10.0,   // default penalties
                                           1.7,    // rejection-heavy
                                           30.0),  // accept-heavy: long
                                                   // routes, warm caches
                         [](const ::testing::TestParamInfo<double>& info) {
                           if (info.param < 5.0) return "RejectionHeavy";
                           return info.param > 20.0 ? "AcceptHeavy"
                                                    : "DefaultPenalties";
                         });

}  // namespace
}  // namespace urpsm
