#include <gtest/gtest.h>

#include <map>

#include "src/algos/batch.h"
#include "src/algos/kinetic.h"
#include "src/algos/tshare.h"
#include "src/core/objective.h"
#include "src/shortest/contraction.h"
#include "src/shortest/hub_labels.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"

namespace urpsm {
namespace {

/// End-to-end: full day, all five algorithms, hub-label oracle (as the
/// paper's setup), invariants checked for every run.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new RoadNetwork(MakeChengduLike(0.05, 21));
    labels_ = new HubLabelOracle(HubLabelOracle::Build(*graph_));
    Rng rng(99);
    workers_ = new std::vector<Worker>(GenerateWorkers(*graph_, 20, 3.0, &rng));
    RequestParams rp;
    rp.count = 250;
    rp.duration_min = 300.0;
    rp.seed = 100;
    requests_ = new std::vector<Request>(
        GenerateRequests(*graph_, rp, labels_, &rng));
  }
  static void TearDownTestSuite() {
    delete requests_;
    delete workers_;
    delete labels_;
    delete graph_;
  }

  SimReport RunAlgo(const PlannerFactory& factory, SimOptions options = {}) {
    Simulation sim(graph_, labels_, *workers_, requests_, options);
    const SimReport rep = sim.Run(factory);
    const InvariantReport inv = VerifyInvariants(sim.fleet(), *requests_);
    EXPECT_TRUE(inv.ok) << rep.algorithm << ": " << inv.violation;
    return rep;
  }

  static RoadNetwork* graph_;
  static HubLabelOracle* labels_;
  static std::vector<Worker>* workers_;
  static std::vector<Request>* requests_;
};

RoadNetwork* IntegrationTest::graph_ = nullptr;
HubLabelOracle* IntegrationTest::labels_ = nullptr;
std::vector<Worker>* IntegrationTest::workers_ = nullptr;
std::vector<Request>* IntegrationTest::requests_ = nullptr;

TEST_F(IntegrationTest, AllFiveAlgorithmsCompleteAndAreSane) {
  std::map<std::string, SimReport> reports;
  reports["prune"] = RunAlgo(MakePruneGreedyDpFactory({}));
  reports["greedy"] = RunAlgo(MakeGreedyDpFactory({}));
  reports["tshare"] = RunAlgo(MakeTShareFactory({}));
  reports["kinetic"] = RunAlgo(MakeKineticFactory({}));
  reports["batch"] = RunAlgo(MakeBatchFactory({}));
  for (const auto& [name, rep] : reports) {
    EXPECT_GT(rep.served_requests, 0) << name;
    EXPECT_GT(rep.total_distance, 0.0) << name;
    EXPECT_FALSE(rep.timed_out) << name;
  }
  // Pruning is lossless (same result as unpruned).
  EXPECT_EQ(reports["prune"].served_requests,
            reports["greedy"].served_requests);
  EXPECT_NEAR(reports["prune"].unified_cost, reports["greedy"].unified_cost,
              1e-6 * reports["greedy"].unified_cost);
  EXPECT_LE(reports["prune"].distance_queries,
            reports["greedy"].distance_queries);
}

TEST_F(IntegrationTest, ObjectivePresetMaxServedServesMore) {
  // alpha = 0 / p = 1 (max-served preset) must serve at least as many
  // requests as alpha = 1 with tiny penalties (which rejects aggressively).
  std::vector<Request> unit = *requests_;
  SetUnitPenalties(&unit);
  SimOptions served_opts;
  served_opts.alpha = 0.0;
  Simulation sim_served(graph_, labels_, *workers_, &unit, served_opts);
  const SimReport rep_served =
      sim_served.Run(MakePruneGreedyDpFactory(PlannerConfig{.alpha = 0.0}));

  std::vector<Request> tiny = *requests_;
  for (Request& r : tiny) r.penalty = 1e-9;
  SimOptions dist_opts;
  dist_opts.alpha = 1.0;
  Simulation sim_dist(graph_, labels_, *workers_, &tiny, dist_opts);
  const SimReport rep_dist =
      sim_dist.Run(MakePruneGreedyDpFactory(PlannerConfig{.alpha = 1.0}));

  EXPECT_GT(rep_served.served_requests, rep_dist.served_requests);
  // And with unit penalties, UC == number of unserved requests.
  EXPECT_NEAR(rep_served.unified_cost,
              rep_served.total_requests - rep_served.served_requests, 1e-9);
}

TEST_F(IntegrationTest, RevenueObjectiveIdentityHoldsEndToEnd) {
  const double cr = 3.0, cw = 0.4;
  std::vector<Request> rev = *requests_;
  SetRevenuePenalties(&rev, cr, labels_);
  SimOptions options;
  options.alpha = cw;
  Simulation sim(graph_, labels_, *workers_, &rev, options);
  const SimReport rep =
      sim.Run(MakePruneGreedyDpFactory(PlannerConfig{.alpha = cw}));

  double all_fares = 0.0;
  for (const Request& r : rev) {
    all_fares += cr * labels_->Distance(r.origin, r.destination);
  }
  const double revenue = Revenue(rev, sim.served(), rep.total_distance, cr,
                                 cw, labels_);
  // Eq. (4): revenue = c_r * sum dis - UC.
  EXPECT_NEAR(revenue, all_fares - rep.unified_cost, 1e-6 * all_fares);
}

TEST_F(IntegrationTest, LongerDeadlinesImproveService) {
  std::vector<Request> tight = *requests_;
  SetDeadlineOffsets(&tight, 5.0);
  SetPenaltyFactors(&tight, 10.0, labels_);
  Simulation sim_tight(graph_, labels_, *workers_, &tight, SimOptions{});
  const SimReport rep_tight = sim_tight.Run(MakePruneGreedyDpFactory({}));

  std::vector<Request> loose = *requests_;
  SetDeadlineOffsets(&loose, 25.0);
  SetPenaltyFactors(&loose, 10.0, labels_);
  Simulation sim_loose(graph_, labels_, *workers_, &loose, SimOptions{});
  const SimReport rep_loose = sim_loose.Run(MakePruneGreedyDpFactory({}));

  EXPECT_GT(rep_loose.served_rate, rep_tight.served_rate);
  EXPECT_LT(rep_loose.unified_cost, rep_tight.unified_cost);
}

TEST_F(IntegrationTest, HubLabelOracleAgreesWithDijkstraInSitu) {
  DijkstraOracle exact(graph_);
  Rng rng(55);
  for (int i = 0; i < 50; ++i) {
    const VertexId s = rng.UniformInt(0, graph_->num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, graph_->num_vertices() - 1);
    EXPECT_NEAR(labels_->Distance(s, t), exact.Distance(s, t), 1e-9);
  }
}

TEST_F(IntegrationTest, SimulationIdenticalAcrossOracles) {
  // The planner's decisions depend only on distances; any exact oracle
  // must produce a bit-identical simulation outcome.
  DijkstraOracle dijkstra(graph_);
  ContractionHierarchy ch = ContractionHierarchy::Build(*graph_);

  Simulation sim_hub(graph_, labels_, *workers_, requests_, SimOptions{});
  const SimReport hub = sim_hub.Run(MakePruneGreedyDpFactory({}));
  Simulation sim_dij(graph_, &dijkstra, *workers_, requests_, SimOptions{});
  const SimReport dij = sim_dij.Run(MakePruneGreedyDpFactory({}));
  Simulation sim_ch(graph_, &ch, *workers_, requests_, SimOptions{});
  const SimReport chr = sim_ch.Run(MakePruneGreedyDpFactory({}));

  EXPECT_EQ(hub.served_requests, dij.served_requests);
  EXPECT_EQ(hub.served_requests, chr.served_requests);
  EXPECT_NEAR(hub.unified_cost, dij.unified_cost,
              1e-6 * hub.unified_cost);
  EXPECT_NEAR(hub.unified_cost, chr.unified_cost,
              1e-6 * hub.unified_cost);
  EXPECT_EQ(sim_hub.served(), sim_dij.served());
  EXPECT_EQ(sim_hub.served(), sim_ch.served());
}

}  // namespace
}  // namespace urpsm
