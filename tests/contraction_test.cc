#include <gtest/gtest.h>

#include <tuple>

#include "src/graph/builders.h"
#include "src/shortest/contraction.h"
#include "src/shortest/dijkstra.h"
#include "src/util/rng.h"
#include "src/workload/city.h"

namespace urpsm {
namespace {

TEST(ContractionTest, PathGraphDistances) {
  const RoadNetwork g = MakePathGraph(6, 1.0);
  ContractionHierarchy ch = ContractionHierarchy::Build(g);
  const double e = 1.0 / SpeedKmPerMin(RoadClass::kResidential);
  EXPECT_NEAR(ch.Distance(0, 5), 5 * e, 1e-12);
  EXPECT_NEAR(ch.Distance(2, 4), 2 * e, 1e-12);
  EXPECT_DOUBLE_EQ(ch.Distance(3, 3), 0.0);
}

TEST(ContractionTest, DisconnectedIsInfinite) {
  std::vector<Point> coords = {{0, 0}, {1, 0}, {5, 5}, {6, 5}};
  std::vector<EdgeSpec> edges = {{0, 1, 1.0, RoadClass::kResidential},
                                 {2, 3, 1.0, RoadClass::kResidential}};
  const RoadNetwork g = RoadNetwork::FromEdges(coords, edges);
  ContractionHierarchy ch = ContractionHierarchy::Build(g);
  EXPECT_EQ(ch.Distance(0, 2), kInfDistance);
  EXPECT_TRUE(ch.Path(0, 2).empty());
}

TEST(ContractionTest, QueryCounterAndMemory) {
  const RoadNetwork g = MakeGridGraph(5, 5, 1.0);
  ContractionHierarchy ch = ContractionHierarchy::Build(g);
  ch.Distance(0, 24);
  ch.Distance(3, 7);
  EXPECT_EQ(ch.query_count(), 2);
  EXPECT_GT(ch.MemoryBytes(), 0);
}

/// Parameterized equivalence sweep: CH distances must equal Dijkstra on
/// every graph family and seed, and unpacked paths must be real paths of
/// matching cost.
class ContractionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  RoadNetwork MakeGraph(int kind, Rng* rng) {
    switch (kind) {
      case 0:
        return MakeGridGraph(9, 9, 0.7);
      case 1:
        return MakeCycleGraph(30, 1.0);
      case 2:
        return MakeRandomGeometricGraph(120, 9.0, 3, rng);
      default: {
        CityParams p;
        p.rows = 14;
        p.cols = 14;
        p.seed = 5;
        return MakeCity(p);
      }
    }
  }
};

TEST_P(ContractionPropertyTest, DistancesMatchDijkstra) {
  const auto [kind, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 39119 + 1);
  const RoadNetwork g = MakeGraph(kind, &rng);
  ContractionHierarchy ch = ContractionHierarchy::Build(g);
  for (int trial = 0; trial < 60; ++trial) {
    const VertexId s = rng.UniformInt(0, g.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, g.num_vertices() - 1);
    EXPECT_NEAR(ch.Distance(s, t), DijkstraDistance(g, s, t), 1e-9)
        << "s=" << s << " t=" << t << " kind=" << kind;
  }
}

TEST_P(ContractionPropertyTest, PathsAreValidAndTight) {
  const auto [kind, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 48271 + 3);
  const RoadNetwork g = MakeGraph(kind, &rng);
  ContractionHierarchy ch = ContractionHierarchy::Build(g);
  for (int trial = 0; trial < 20; ++trial) {
    const VertexId s = rng.UniformInt(0, g.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, g.num_vertices() - 1);
    const auto path = ch.Path(s, t);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    double cost = 0.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      double leg = kInfDistance;
      for (const auto& arc : g.Neighbors(path[i])) {
        if (arc.to == path[i + 1]) leg = std::min(leg, arc.cost);
      }
      ASSERT_LT(leg, kInfDistance)
          << "unpacked path uses non-edge " << path[i] << "->" << path[i + 1];
      cost += leg;
    }
    EXPECT_NEAR(cost, DijkstraDistance(g, s, t), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ContractionPropertyTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace urpsm
