#include <gtest/gtest.h>

#include "src/core/planner.h"
#include "src/insertion/insertion.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

TEST(EdgeCaseTest, ZeroWorkersRejectsEverything) {
  const RoadNetwork g = MakeGridGraph(5, 5, 1.0);
  DijkstraOracle oracle(&g);
  std::vector<Request> requests = {{0, 1, 5, 0.0, 100.0, 7.5, 1}};
  Simulation sim(&g, &oracle, {}, &requests, SimOptions{});
  const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));
  EXPECT_EQ(rep.served_requests, 0);
  EXPECT_DOUBLE_EQ(rep.penalty_sum, 7.5);
  EXPECT_DOUBLE_EQ(rep.unified_cost, 7.5);
}

TEST(EdgeCaseTest, ZeroRequestsCostsNothing) {
  const RoadNetwork g = MakeGridGraph(5, 5, 1.0);
  DijkstraOracle oracle(&g);
  std::vector<Request> requests;
  std::vector<Worker> workers = {{0, 0, 4}};
  Simulation sim(&g, &oracle, workers, &requests, SimOptions{});
  const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));
  EXPECT_EQ(rep.total_requests, 0);
  EXPECT_DOUBLE_EQ(rep.unified_cost, 0.0);
  EXPECT_DOUBLE_EQ(rep.total_distance, 0.0);
}

TEST(EdgeCaseTest, RequestAtWorkerLocation) {
  // Origin == worker anchor: pickup costs zero distance.
  TestEnv env(MakePathGraph(6, 1.0));
  const Request r = env.AddRequest(2, 4, 0.0, 1e9);
  Route rt(2, 0.0);
  const Worker w{0, 2, 4};
  const InsertionCandidate c = LinearDpInsertion(w, rt, r, env.ctx());
  ASSERT_TRUE(c.feasible());
  const double e = 1.0 / SpeedKmPerMin(RoadClass::kResidential);
  EXPECT_NEAR(c.delta, 2 * e, 1e-12);  // only the o->d leg
}

TEST(EdgeCaseTest, SimultaneousReleases) {
  // Many requests at the exact same release time must all be processed,
  // in id order, without fleet-time regressions.
  const RoadNetwork g = MakeGridGraph(8, 8, 0.7);
  DijkstraOracle oracle(&g);
  Rng rng(3);
  std::vector<Request> requests;
  for (int i = 0; i < 20; ++i) {
    Request r;
    r.id = i;
    r.origin = rng.UniformInt(0, 63);
    r.destination = (r.origin + 7) % 64;
    r.release_time = 60.0;  // all at once
    r.deadline = 90.0;
    r.penalty = 10.0;
    r.capacity = 1;
    requests.push_back(r);
  }
  std::vector<Worker> workers = {{0, 0, 4}, {1, 63, 4}};
  Simulation sim(&g, &oracle, workers, &requests, SimOptions{});
  const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));
  EXPECT_GT(rep.served_requests, 0);
  const InvariantReport inv = VerifyInvariants(sim.fleet(), requests);
  EXPECT_TRUE(inv.ok) << inv.violation;
}

TEST(EdgeCaseTest, DeadlineExactlyTight) {
  // Deadline equals the exact earliest possible arrival: still feasible
  // (the paper's constraint is <=).
  TestEnv env(MakePathGraph(8, 1.0));
  const double e = 1.0 / SpeedKmPerMin(RoadClass::kResidential);
  const Request r = env.AddRequest(2, 6, 0.0, 6.0 * e);
  Route rt(0, 0.0);
  const Worker w{0, 0, 4};
  const InsertionCandidate c = BasicInsertion(w, rt, r, env.ctx());
  ASSERT_TRUE(c.feasible());
  const InsertionCandidate lin = LinearDpInsertion(w, rt, r, env.ctx());
  ASSERT_TRUE(lin.feasible());
  EXPECT_NEAR(lin.delta, c.delta, 1e-9);
}

TEST(EdgeCaseTest, ZeroCapacityRequestRounding) {
  // Capacity-1 request into a capacity-1 worker already carrying someone:
  // strictly sequential, never overlapping.
  TestEnv env(MakePathGraph(10, 1.0));
  const Request r1 = env.AddRequest(1, 8, 0.0, 1e9);
  Route rt(0, 0.0);
  rt.Insert(r1, 0, 0, env.oracle());
  const Worker w{0, 0, 1};
  const Request r2 = env.AddRequest(3, 5, 0.0, 1e9);
  const InsertionCandidate c = LinearDpInsertion(w, rt, r2, env.ctx());
  ASSERT_TRUE(c.feasible());
  // Pickup of r2 cannot be between r1's pickup and dropoff.
  EXPECT_GE(c.i, 2);
}

TEST(EdgeCaseTest, VeryLargeRouteStillLinear) {
  // 400-stop route: the linear DP must stay exact (spot-check vs naive)
  // and fast. Guards against accidental quadratic regressions.
  TestEnv env(MakeGridGraph(20, 20, 0.5));
  const Worker w{0, 0, 1 << 20};
  Route rt(0, 0.0);
  Rng rng(11);
  while (rt.size() < 400) {
    const VertexId o = rng.UniformInt(0, 399);
    VertexId d = rng.UniformInt(0, 399);
    if (d == o) d = (d + 1) % 400;
    const Request r = env.AddRequest(o, d, 0.0, 1e9);
    rt.Insert(r, rt.size(), rt.size(), env.oracle());
  }
  const Request probe = env.AddRequest(5, 395, 0.0, 1e9);
  const InsertionCandidate lin = LinearDpInsertion(w, rt, probe, env.ctx());
  const InsertionCandidate naive = NaiveDpInsertion(w, rt, probe, env.ctx());
  ASSERT_EQ(lin.feasible(), naive.feasible());
  if (lin.feasible()) {
    EXPECT_NEAR(lin.delta, naive.delta, 1e-9);
  }
}

TEST(EdgeCaseTest, RejectIsFinalInvariant) {
  // Once rejected, a request never reappears (Def. 5's invariable
  // constraint): the fleet must have no record of it.
  const RoadNetwork g = MakeGridGraph(6, 6, 1.0);
  DijkstraOracle oracle(&g);
  std::vector<Request> requests = {{0, 0, 35, 0.0, 0.01, 5.0, 1}};  // hopeless
  std::vector<Worker> workers = {{0, 18, 4}};
  Simulation sim(&g, &oracle, workers, &requests, SimOptions{});
  const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));
  EXPECT_EQ(rep.served_requests, 0);
  EXPECT_EQ(sim.fleet().AssignedWorker(0), kInvalidWorker);
  EXPECT_EQ(sim.fleet().PickupTime(0), kInf);
}

}  // namespace
}  // namespace urpsm
