#ifndef URPSM_TESTS_TEST_UTIL_H_
#define URPSM_TESTS_TEST_UTIL_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/graph/builders.h"
#include "src/graph/road_network.h"
#include "src/insertion/insertion.h"
#include "src/model/feasibility.h"
#include "src/model/route.h"
#include "src/model/types.h"
#include "src/shortest/oracle.h"
#include "src/util/rng.h"

namespace urpsm {

/// Everything an insertion/planning unit test needs wired together.
class TestEnv {
 public:
  explicit TestEnv(RoadNetwork graph) : graph_(std::move(graph)) {
    oracle_ = std::make_unique<DijkstraOracle>(&graph_);
    ctx_ = std::make_unique<PlanningContext>(&graph_, oracle_.get(),
                                             &requests_);
  }

  const RoadNetwork& graph() const { return graph_; }
  PlanningContext* ctx() { return ctx_.get(); }
  DistanceOracle* oracle() { return oracle_.get(); }
  std::vector<Request>& requests() { return requests_; }

  /// Registers a request with the next dense id and returns a copy (the
  /// backing vector may reallocate on later additions).
  Request AddRequest(VertexId o, VertexId d, double release, double deadline,
                     double penalty = 10.0, int capacity = 1) {
    Request r;
    r.id = static_cast<RequestId>(requests_.size());
    r.origin = o;
    r.destination = d;
    r.release_time = release;
    r.deadline = deadline;
    r.penalty = penalty;
    r.capacity = capacity;
    requests_.push_back(r);
    return requests_.back();
  }

 private:
  RoadNetwork graph_;
  std::unique_ptr<DijkstraOracle> oracle_;
  std::vector<Request> requests_;
  std::unique_ptr<PlanningContext> ctx_;
};

/// Builds a random feasible route for `worker` by repeatedly generating
/// random requests and applying the ground-truth best insertion. Returns
/// the number of requests actually inserted.
inline int BuildRandomRoute(TestEnv* env, const Worker& worker, Route* route,
                            int attempts, double now, double deadline_span,
                            Rng* rng) {
  int inserted = 0;
  const VertexId n = env->graph().num_vertices();
  for (int k = 0; k < attempts; ++k) {
    const VertexId o = rng->UniformInt(0, n - 1);
    VertexId d = rng->UniformInt(0, n - 1);
    if (d == o) d = (d + 1) % n;
    const double deadline = now + rng->Uniform(0.3, 1.0) * deadline_span;
    const Request& r =
        env->AddRequest(o, d, now, deadline, 10.0, rng->UniformInt(1, 2));
    const InsertionCandidate cand =
        BasicInsertion(worker, *route, r, env->ctx());
    if (cand.feasible()) {
      route->Insert(r, cand.i, cand.j, env->ctx()->oracle());
      ++inserted;
    }
  }
  return inserted;
}

}  // namespace urpsm

#endif  // URPSM_TESTS_TEST_UTIL_H_
