// Deterministic fault-injection suite for the pipelined engine.
//
// The harness's contract: every injected fault is a *wall-clock*
// perturbation (producer stalls/bursts, oracle query latency, shard
// epoch-lock holds, thread-pool chunk delays) drawn from a seeded
// splitmix64 schedule — never a planning input. The engine already
// guarantees schedule-independence of its deterministic report fields,
// so a faulted run must finish (no deadlock), keep the ingest backlog
// bounded, keep the fleet invariant-clean, account for every request
// exactly, and — for the timing-only sites — match the un-faulted
// baseline bit for bit. kDrainTrigger is the exception that proves the
// rule: it sheds a seed-derived suffix of the workload, so its report
// differs from the baseline but is identical across thread counts.
//
// Run under tsan and asan-ubsan by the CI presets (suite name matches
// the tsan filter regex).

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/shortest/hub_labels.h"
#include "src/sim/dispatch_window.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/util/fault.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

// ------------------------------------------------------------- injector

TEST(FaultInjectorTest, ScheduleIsAPureFunctionOfSeedSiteAndVisit) {
  FaultSpec spec;
  spec.seed = 7;
  spec.Arm(FaultSite::kOracleDelay, 0.5, /*delay_us=*/0.0);
  FaultInjector a(spec);
  FaultInjector b(spec);
  std::vector<bool> fires_a, fires_b;
  for (int i = 0; i < 200; ++i) {
    fires_a.push_back(a.MaybeDelay(FaultSite::kOracleDelay));
  }
  for (int i = 0; i < 200; ++i) {
    fires_b.push_back(b.MaybeDelay(FaultSite::kOracleDelay));
  }
  EXPECT_EQ(fires_a, fires_b);  // replayable from the seed
  EXPECT_EQ(a.visits(FaultSite::kOracleDelay), 200);
  EXPECT_EQ(a.fired(FaultSite::kOracleDelay), b.fired(FaultSite::kOracleDelay));
  // rate 0.5 over 200 visits: statistically impossible to hit 0 or 200.
  EXPECT_GT(a.fired(FaultSite::kOracleDelay), 0);
  EXPECT_LT(a.fired(FaultSite::kOracleDelay), 200);

  FaultSpec other = spec;
  other.seed = 8;
  FaultInjector c(other);
  std::vector<bool> fires_c;
  for (int i = 0; i < 200; ++i) {
    fires_c.push_back(c.MaybeDelay(FaultSite::kOracleDelay));
  }
  EXPECT_NE(fires_a, fires_c);  // a different seed is a different schedule
}

TEST(FaultInjectorTest, UnarmedSitesNeverAdvanceOrFire) {
  FaultSpec spec;
  spec.Arm(FaultSite::kIngestStall, 1.0, 0.0);
  FaultInjector inj(spec);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(inj.MaybeDelay(FaultSite::kOracleDelay));
  }
  EXPECT_EQ(inj.visits(FaultSite::kOracleDelay), 0);
  EXPECT_EQ(inj.fired(FaultSite::kOracleDelay), 0);
  EXPECT_TRUE(inj.MaybeDelay(FaultSite::kIngestStall));  // rate 1 always fires
  EXPECT_FALSE(MaybeInject(nullptr, FaultSite::kIngestStall));  // null-safe
}

TEST(FaultInjectorTest, StableFractionIsStableAndInUnitInterval) {
  FaultSpec spec;
  spec.seed = 1234;
  spec.Arm(FaultSite::kDrainTrigger, 1.0, 0.0);
  FaultInjector inj(spec);
  const double f = inj.StableFraction(FaultSite::kDrainTrigger);
  EXPECT_GE(f, 0.0);
  EXPECT_LT(f, 1.0);
  inj.MaybeDelay(FaultSite::kDrainTrigger);  // advancing must not move it
  EXPECT_EQ(inj.StableFraction(FaultSite::kDrainTrigger), f);
  FaultSpec other = spec;
  other.seed = 1235;
  EXPECT_NE(FaultInjector(other).StableFraction(FaultSite::kDrainTrigger), f);
}

// ------------------------------------------------------------ engine runs

struct FaultWorkload {
  explicit FaultWorkload(RoadNetwork g) : graph(std::move(g)) {}
  RoadNetwork graph;
  std::unique_ptr<HubLabelOracle> labels;
  std::vector<Request> requests;
  std::vector<Worker> workers;
};

// One shared workload for the whole suite: building hub labels per test
// would dominate the runtime without adding coverage. The oracle holds a
// pointer into the graph, so both live together in one leaked struct
// (labels are built only after the graph reached its final address).
const FaultWorkload& Workload() {
  static const FaultWorkload* w = [] {
    auto* fw = new FaultWorkload(MakeChengduLike(0.05, 2));
    fw->labels =
        std::make_unique<HubLabelOracle>(HubLabelOracle::Build(fw->graph));
    Rng rng(101);
    RequestParams rp;
    rp.count = 140;
    rp.duration_min = 120.0;
    rp.seed = 103;
    fw->requests = GenerateRequests(fw->graph, rp, fw->labels.get(), &rng);
    fw->workers = GenerateWorkers(fw->graph, 10, 4.0, &rng);
    return fw;
  }();
  return *w;
}

struct FaultRun {
  SimReport report;
  std::vector<bool> served;
};

FaultRun RunWithFaults(const FaultSpec& faults, int threads,
                       const std::string& trace_path = "") {
  const FaultWorkload& w = Workload();
  SimOptions options;
  options.num_threads = threads;
  options.batch_window_s = 6.0;
  options.pipeline = true;
  options.pipeline_depth = 3;  // speculation on: the widest thread overlap
  options.faults = faults;
  options.trace_path = trace_path;
  // Mutable copy of the shared oracle: query counters are per-run state.
  HubLabelOracle labels = *w.labels;
  Simulation sim(&w.graph, &labels, w.workers, &w.requests, options);
  FaultRun run;
  run.report = sim.Run(MakeDispatchWindowFactory({}));
  const InvariantReport fleet_ok =
      VerifyInvariants(sim.fleet(), w.requests);
  EXPECT_TRUE(fleet_ok.ok) << fleet_ok.violation;
  const InvariantReport acct = CheckAccounting(run.report);
  EXPECT_TRUE(acct.ok) << acct.violation;
  EXPECT_LE(run.report.pipeline.max_queue_depth,
            static_cast<std::int64_t>(options.ingest_capacity));
  run.served = sim.served();
  return run;
}

void ExpectSameDeterministicFields(const FaultRun& a, const FaultRun& b,
                                   const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.report.served_requests, b.report.served_requests);
  EXPECT_EQ(a.report.rejected_requests, b.report.rejected_requests);
  EXPECT_EQ(a.report.shed_requests, b.report.shed_requests);
  EXPECT_EQ(a.report.dnf_requests, b.report.dnf_requests);
  EXPECT_EQ(a.report.shed_deadline, b.report.shed_deadline);
  EXPECT_EQ(a.report.shed_overload, b.report.shed_overload);
  EXPECT_EQ(a.report.shed_drain, b.report.shed_drain);
  EXPECT_EQ(a.report.unified_cost, b.report.unified_cost);
  EXPECT_EQ(a.report.total_distance, b.report.total_distance);
  EXPECT_EQ(a.report.penalty_sum, b.report.penalty_sum);
  EXPECT_EQ(a.report.distance_queries, b.report.distance_queries);
  EXPECT_EQ(a.served, b.served);
}

// The per-site schedule sweep: every timing-only site, two seeds each —
// ten schedules, all required to reproduce the un-faulted baseline
// exactly. An URPSM_FAULT_SEED env var adds an extra seed to the sweep
// (replay knob for schedules found elsewhere).
struct SiteCase {
  FaultSite site;
  double rate;
  double delay_us;
};

class FaultScheduleTest : public ::testing::TestWithParam<SiteCase> {};

TEST_P(FaultScheduleTest, TimingFaultsPreserveDeterministicReport) {
  const SiteCase c = GetParam();
  const FaultRun baseline = RunWithFaults(FaultSpec{}, /*threads=*/4);
  ASSERT_GT(baseline.report.served_requests, 0);
  ASSERT_FALSE(baseline.report.timed_out);
  std::vector<std::uint64_t> seeds = {11, 12};
  if (const char* env = std::getenv("URPSM_FAULT_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 10));
  }
  for (const std::uint64_t seed : seeds) {
    FaultSpec spec;
    spec.seed = seed;
    spec.Arm(c.site, c.rate, c.delay_us);
    const FaultRun run = RunWithFaults(spec, /*threads=*/4);
    EXPECT_FALSE(run.report.timed_out);
    ExpectSameDeterministicFields(
        baseline, run,
        std::string(FaultSiteName(c.site)) + " seed=" + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sites, FaultScheduleTest,
    ::testing::Values(SiteCase{FaultSite::kIngestStall, 0.10, 200.0},
                      SiteCase{FaultSite::kIngestBurst, 0.01, 3000.0},
                      SiteCase{FaultSite::kOracleDelay, 0.001, 50.0},
                      SiteCase{FaultSite::kShardLockHold, 0.10, 300.0},
                      SiteCase{FaultSite::kPoolTaskDelay, 0.02, 200.0}),
    [](const ::testing::TestParamInfo<SiteCase>& info) {
      return FaultSiteName(info.param.site);
    });

TEST(FaultSuiteTest, CombinedScheduleAllTimingSites) {
  const FaultRun baseline = RunWithFaults(FaultSpec{}, /*threads=*/4);
  FaultSpec spec;
  spec.seed = 21;
  spec.Arm(FaultSite::kIngestStall, 0.10, 200.0)
      .Arm(FaultSite::kIngestBurst, 0.01, 3000.0)
      .Arm(FaultSite::kOracleDelay, 0.001, 50.0)
      .Arm(FaultSite::kShardLockHold, 0.10, 300.0)
      .Arm(FaultSite::kPoolTaskDelay, 0.02, 200.0);
  for (const int threads : {1, 4}) {
    const FaultRun run = RunWithFaults(spec, threads);
    EXPECT_FALSE(run.report.timed_out);
    ExpectSameDeterministicFields(
        baseline, run, "combined threads=" + std::to_string(threads));
  }
}

TEST(FaultSuiteTest, DrainTriggerShedsSeedDerivedSuffixDeterministically) {
  FaultSpec spec;
  spec.seed = 31;
  spec.Arm(FaultSite::kDrainTrigger, 1.0, 0.0);
  const FaultRun base = RunWithFaults(spec, /*threads=*/1);
  EXPECT_TRUE(base.report.pipeline.drained);
  EXPECT_GT(base.report.pipeline.drain_cutoff_min, 0.0);
  EXPECT_GT(base.report.shed_drain, 0);          // a real suffix was shed
  EXPECT_GT(base.report.served_requests, 0);     // the prefix was committed
  EXPECT_EQ(base.report.dnf_requests, 0);        // graceful: no DNFs
  // The drain instant is a pure function of (workload, seed): any thread
  // count reproduces the same shed set and the same committed prefix.
  for (const int threads : {2, 4}) {
    const FaultRun run = RunWithFaults(spec, threads);
    ExpectSameDeterministicFields(base, run,
                                  "drain threads=" + std::to_string(threads));
  }
  // A different seed picks a different cutoff inside the release span.
  FaultSpec other = spec;
  other.seed = 32;
  const FaultRun o = RunWithFaults(other, /*threads=*/1);
  EXPECT_NE(o.report.pipeline.drain_cutoff_min,
            base.report.pipeline.drain_cutoff_min);
}

// ---------------------------------------------------- trace artifact

struct TraceEvent {
  std::string name;
  char ph = '?';
  int tid = -1;
};

bool ParseEvent(const std::string& raw, TraceEvent* e) {
  std::string line = raw;
  if (!line.empty() && line.back() == ',') line.pop_back();
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  const auto field = [&line](const std::string& key) -> std::string {
    const std::string tag = "\"" + key + "\":";
    const std::size_t pos = line.find(tag);
    if (pos == std::string::npos) return "";
    std::size_t start = pos + tag.size();
    if (line[start] == '"') {
      const std::size_t end = line.find('"', start + 1);
      return line.substr(start + 1, end - start - 1);
    }
    std::size_t end = start;
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
    return line.substr(start, end - start);
  };
  e->name = field("name");
  const std::string ph = field("ph");
  const std::string tid = field("tid");
  if (e->name.empty() || ph.size() != 1 || tid.empty()) return false;
  e->ph = ph[0];
  e->tid = std::stoi(tid);
  return e->ph == 'B' || e->ph == 'E' || e->ph == 'i';
}

TEST(FaultSuiteTest, InjectedRunEmitsBalancedTraceSpans) {
  // A fully faulted, traced run: every B must close with an E on the same
  // thread (shed/drain decisions are 'i' instants, which leave the span
  // stack untouched). The file doubles as the CI artifact
  // (fault_trace_injected.json) so every CI run leaves a Perfetto-loadable
  // trace of the engine operating under injected faults.
  FaultSpec spec;
  spec.seed = 41;
  spec.Arm(FaultSite::kIngestStall, 0.10, 200.0)
      .Arm(FaultSite::kOracleDelay, 0.001, 50.0)
      .Arm(FaultSite::kShardLockHold, 0.10, 300.0)
      .Arm(FaultSite::kPoolTaskDelay, 0.02, 200.0)
      .Arm(FaultSite::kDrainTrigger, 1.0, 0.0);
  const char* trace_path = "fault_trace_injected.json";
  const FaultRun run = RunWithFaults(spec, /*threads=*/4, trace_path);
  EXPECT_TRUE(run.report.trace_enabled);
  EXPECT_TRUE(run.report.pipeline.drained);

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.is_open());
  std::map<int, std::vector<std::string>> stacks;  // tid -> open span names
  int events = 0, instants = 0, drain_instants = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"name\"") == std::string::npos) continue;  // brackets
    TraceEvent e;
    ASSERT_TRUE(ParseEvent(line, &e)) << line;
    ++events;
    if (e.ph == 'B') {
      stacks[e.tid].push_back(e.name);
    } else if (e.ph == 'E') {
      ASSERT_FALSE(stacks[e.tid].empty()) << "E without B: " << e.name;
      EXPECT_EQ(stacks[e.tid].back(), e.name);  // LIFO per thread
      stacks[e.tid].pop_back();
    } else {
      ++instants;
      if (e.name == "drain.trigger") ++drain_instants;
    }
  }
  EXPECT_GT(events, 0);
  EXPECT_EQ(drain_instants, 1);  // the drain decision is traced exactly once
  EXPECT_GT(instants, 0);
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unbalanced spans on tid " << tid;
  }
}

}  // namespace
}  // namespace urpsm
