#include <gtest/gtest.h>

#include <algorithm>

#include "src/index/grid_index.h"

namespace urpsm {
namespace {

TEST(GridIndexTest, DimensionsFromBoundingBox) {
  GridIndex idx({0, 0}, {10, 6}, 2.0);
  EXPECT_EQ(idx.cells_x(), 5);
  EXPECT_EQ(idx.cells_y(), 3);
}

TEST(GridIndexTest, InsertAndFind) {
  GridIndex idx({0, 0}, {10, 10}, 1.0);
  idx.Insert(1, {2.5, 2.5});
  idx.Insert(2, {8.5, 8.5});
  const auto near = idx.WithinRadius({2.0, 2.0}, 1.5);
  EXPECT_NE(std::find(near.begin(), near.end(), 1), near.end());
  EXPECT_EQ(std::find(near.begin(), near.end(), 2), near.end());
}

TEST(GridIndexTest, WithinRadiusIsSuperset) {
  // Every worker within the exact disk must be returned (cells only
  // over-approximate).
  GridIndex idx({0, 0}, {10, 10}, 2.0);
  idx.Insert(1, {5.0, 5.0});
  idx.Insert(2, {6.9, 5.0});
  idx.Insert(3, {9.9, 9.9});
  const auto near = idx.WithinRadius({5.0, 5.0}, 2.0);
  EXPECT_NE(std::find(near.begin(), near.end(), 1), near.end());
  EXPECT_NE(std::find(near.begin(), near.end(), 2), near.end());
}

TEST(GridIndexTest, NegativeRadiusEmpty) {
  GridIndex idx({0, 0}, {10, 10}, 1.0);
  idx.Insert(1, {5, 5});
  EXPECT_TRUE(idx.WithinRadius({5, 5}, -1.0).empty());
}

TEST(GridIndexTest, RemoveAndMove) {
  GridIndex idx({0, 0}, {10, 10}, 1.0);
  idx.Insert(7, {1.5, 1.5});
  idx.Move(7, {1.5, 1.5}, {8.5, 8.5});
  EXPECT_TRUE(idx.WithinRadius({1.5, 1.5}, 0.5).empty());
  const auto near = idx.WithinRadius({8.5, 8.5}, 0.5);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0], 7);
  idx.Remove(7, {8.5, 8.5});
  EXPECT_TRUE(idx.All().empty());
}

TEST(GridIndexTest, MoveWithinSameCellNoop) {
  GridIndex idx({0, 0}, {10, 10}, 2.0);
  idx.Insert(1, {1.0, 1.0});
  idx.Move(1, {1.0, 1.0}, {1.5, 1.5});  // same cell
  EXPECT_EQ(idx.All().size(), 1u);
}

TEST(GridIndexTest, PointsOutsideBoxClampToEdgeCells) {
  GridIndex idx({0, 0}, {10, 10}, 1.0);
  idx.Insert(1, {-5.0, 20.0});  // clamped to corner cell
  EXPECT_EQ(idx.All().size(), 1u);
  EXPECT_FALSE(idx.WithinRadius({0.0, 10.0}, 1.5).empty());
}

TEST(GridIndexTest, MemoryGrowsWithFinerCells) {
  GridIndex coarse({0, 0}, {20, 20}, 5.0);
  GridIndex fine({0, 0}, {20, 20}, 1.0);
  EXPECT_GT(fine.MemoryBytes(), coarse.MemoryBytes());
}

TEST(TShareGridIndexTest, CellsSortedByDistance) {
  TShareGridIndex idx({0, 0}, {10, 10}, 2.0);
  const Point q{1.0, 1.0};
  const auto& order = idx.CellsByDistance(q);
  ASSERT_EQ(order.size(),
            static_cast<std::size_t>(idx.cells_x() * idx.cells_y()));
  double prev = -1.0;
  for (int cell : order) {
    const double d = idx.CellCenterDistanceKm(q, cell);
    EXPECT_GE(d, prev - 1e-12);
    prev = d;
  }
  // Nearest cell is the query's own cell (distance 0).
  EXPECT_DOUBLE_EQ(idx.CellCenterDistanceKm(q, order.front()), 0.0);
}

TEST(TShareGridIndexTest, MemoryDwarfsPlainIndex) {
  GridIndex plain({0, 0}, {30, 30}, 1.0);
  TShareGridIndex tshare({0, 0}, {30, 30}, 1.0);
  // The per-cell sorted lists are quadratic in cell count: Fig. 5's
  // memory gap between tshare and the others.
  EXPECT_GT(tshare.MemoryBytes(), 100 * plain.MemoryBytes());
}

}  // namespace
}  // namespace urpsm
