#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/index/grid_index.h"

namespace urpsm {
namespace {

TEST(GridIndexTest, DimensionsFromBoundingBox) {
  GridIndex idx({0, 0}, {10, 6}, 2.0);
  EXPECT_EQ(idx.cells_x(), 5);
  EXPECT_EQ(idx.cells_y(), 3);
}

TEST(GridIndexTest, InsertAndFind) {
  GridIndex idx({0, 0}, {10, 10}, 1.0);
  idx.Insert(1, {2.5, 2.5});
  idx.Insert(2, {8.5, 8.5});
  const auto near = idx.WithinRadius({2.0, 2.0}, 1.5);
  EXPECT_NE(std::find(near.begin(), near.end(), 1), near.end());
  EXPECT_EQ(std::find(near.begin(), near.end(), 2), near.end());
}

TEST(GridIndexTest, WithinRadiusIsSuperset) {
  // Every worker within the exact disk must be returned (cells only
  // over-approximate).
  GridIndex idx({0, 0}, {10, 10}, 2.0);
  idx.Insert(1, {5.0, 5.0});
  idx.Insert(2, {6.9, 5.0});
  idx.Insert(3, {9.9, 9.9});
  const auto near = idx.WithinRadius({5.0, 5.0}, 2.0);
  EXPECT_NE(std::find(near.begin(), near.end(), 1), near.end());
  EXPECT_NE(std::find(near.begin(), near.end(), 2), near.end());
}

TEST(GridIndexTest, NegativeRadiusEmpty) {
  GridIndex idx({0, 0}, {10, 10}, 1.0);
  idx.Insert(1, {5, 5});
  EXPECT_TRUE(idx.WithinRadius({5, 5}, -1.0).empty());
}

TEST(GridIndexTest, RemoveAndMove) {
  GridIndex idx({0, 0}, {10, 10}, 1.0);
  idx.Insert(7, {1.5, 1.5});
  idx.Move(7, {1.5, 1.5}, {8.5, 8.5});
  EXPECT_TRUE(idx.WithinRadius({1.5, 1.5}, 0.5).empty());
  const auto near = idx.WithinRadius({8.5, 8.5}, 0.5);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0], 7);
  idx.Remove(7, {8.5, 8.5});
  EXPECT_TRUE(idx.All().empty());
}

TEST(GridIndexTest, MoveWithinSameCellNoop) {
  GridIndex idx({0, 0}, {10, 10}, 2.0);
  idx.Insert(1, {1.0, 1.0});
  idx.Move(1, {1.0, 1.0}, {1.5, 1.5});  // same cell
  EXPECT_EQ(idx.All().size(), 1u);
}

TEST(GridIndexTest, PointsOutsideBoxClampToEdgeCells) {
  GridIndex idx({0, 0}, {10, 10}, 1.0);
  idx.Insert(1, {-5.0, 20.0});  // clamped to corner cell
  EXPECT_EQ(idx.All().size(), 1u);
  EXPECT_FALSE(idx.WithinRadius({0.0, 10.0}, 1.5).empty());
}

TEST(GridIndexTest, WithinRadiusAtBoundingBoxCorners) {
  // Queries anchored on the box's corners must clamp their ring scan to
  // the existing cells and still return every in-disk worker. A sharded
  // caller issues these for requests released at the map edge.
  GridIndex idx({0, 0}, {10, 10}, 1.0);
  idx.Insert(1, {0.0, 0.0});
  idx.Insert(2, {10.0, 0.0});
  idx.Insert(3, {0.0, 10.0});
  idx.Insert(4, {10.0, 10.0});
  for (const Point corner :
       {Point{0.0, 0.0}, Point{10.0, 0.0}, Point{0.0, 10.0}, Point{10.0, 10.0}}) {
    const auto near = idx.WithinRadius(corner, 0.5);
    EXPECT_EQ(near.size(), 1u) << "corner (" << corner.x << "," << corner.y << ")";
  }
  // A radius covering the whole box from a corner reaches all four.
  const auto all = idx.WithinRadius({0.0, 0.0}, 15.0);
  EXPECT_EQ(all.size(), 4u);
}

TEST(GridIndexTest, WithinRadiusOverEmptyRings) {
  // Rings between the query cell and the only occupied cell are empty;
  // the scan must neither stop early nor fabricate workers.
  GridIndex idx({0, 0}, {20, 20}, 1.0);
  idx.Insert(42, {18.5, 18.5});
  EXPECT_TRUE(idx.WithinRadius({1.5, 1.5}, 10.0).empty());
  const auto found = idx.WithinRadius({1.5, 1.5}, 30.0);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], 42);
  // Radius zero still scans the query's own (empty) cell.
  EXPECT_TRUE(idx.WithinRadius({5.5, 5.5}, 0.0).empty());
}

TEST(GridIndexTest, MoveAcrossCellsUnderInterleavedChurn) {
  // Interleaved insert/remove/move sequences (the access pattern a
  // sharded fleet produces once anchors migrate cell to cell): after
  // every step the index must agree with a reference map — no lost,
  // duplicated, or stale entries.
  GridIndex idx({0, 0}, {16, 16}, 2.0);
  std::vector<std::pair<WorkerId, Point>> reference;  // current positions

  const auto verify = [&]() {
    const auto all = idx.All();
    ASSERT_EQ(all.size(), reference.size());
    for (const auto& [w, p] : reference) {
      // Exactly-once: present globally...
      ASSERT_EQ(std::count(all.begin(), all.end(), w), 1) << "worker " << w;
      // ...and findable at (only) its current cell.
      const auto near = idx.WithinRadius(p, 0.0);
      EXPECT_NE(std::find(near.begin(), near.end(), w), near.end())
          << "worker " << w;
    }
  };

  const auto move_to = [&](WorkerId w, const Point& to) {
    for (auto& [id, p] : reference) {
      if (id == w) {
        idx.Move(w, p, to);
        p = to;
        return;
      }
    }
    FAIL() << "moving unknown worker " << w;
  };

  idx.Insert(1, {1.0, 1.0});
  reference.push_back({1, {1.0, 1.0}});
  idx.Insert(2, {1.2, 1.2});  // same cell as worker 1
  reference.push_back({2, {1.2, 1.2}});
  idx.Insert(3, {15.0, 15.0});
  reference.push_back({3, {15.0, 15.0}});
  verify();

  move_to(1, {5.0, 1.0});    // crosses one cell boundary
  move_to(3, {1.0, 15.0});   // long move across the box
  verify();

  // Remove one of two same-cell workers; the survivor must stay findable.
  idx.Remove(2, {1.2, 1.2});
  reference.erase(reference.begin() + 1);
  verify();

  // Reinsert at the far corner, then bounce a worker back and forth
  // across the same boundary (regression for swap-with-back removal).
  idx.Insert(2, {15.5, 0.5});
  reference.push_back({2, {15.5, 0.5}});
  move_to(1, {1.0, 1.0});
  move_to(1, {5.0, 1.0});
  move_to(1, {1.0, 1.0});
  verify();

  // Same-cell move is a no-op but must keep the entry.
  move_to(2, {15.7, 0.7});
  verify();

  idx.Remove(1, {1.0, 1.0});
  idx.Remove(2, {15.7, 0.7});
  idx.Remove(3, {1.0, 15.0});
  reference.clear();
  verify();
}

TEST(GridIndexTest, MemoryGrowsWithFinerCells) {
  GridIndex coarse({0, 0}, {20, 20}, 5.0);
  GridIndex fine({0, 0}, {20, 20}, 1.0);
  EXPECT_GT(fine.MemoryBytes(), coarse.MemoryBytes());
}

TEST(TShareGridIndexTest, CellsSortedByDistance) {
  TShareGridIndex idx({0, 0}, {10, 10}, 2.0);
  const Point q{1.0, 1.0};
  const auto& order = idx.CellsByDistance(q);
  ASSERT_EQ(order.size(),
            static_cast<std::size_t>(idx.cells_x() * idx.cells_y()));
  double prev = -1.0;
  for (int cell : order) {
    const double d = idx.CellCenterDistanceKm(q, cell);
    EXPECT_GE(d, prev - 1e-12);
    prev = d;
  }
  // Nearest cell is the query's own cell (distance 0).
  EXPECT_DOUBLE_EQ(idx.CellCenterDistanceKm(q, order.front()), 0.0);
}

TEST(TShareGridIndexTest, MemoryDwarfsPlainIndex) {
  GridIndex plain({0, 0}, {30, 30}, 1.0);
  TShareGridIndex tshare({0, 0}, {30, 30}, 1.0);
  // The per-cell sorted lists are quadratic in cell count: Fig. 5's
  // memory gap between tshare and the others.
  EXPECT_GT(tshare.MemoryBytes(), 100 * plain.MemoryBytes());
}

}  // namespace
}  // namespace urpsm
