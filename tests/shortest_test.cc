#include <gtest/gtest.h>

#include <memory>

#include "src/graph/builders.h"
#include "src/shortest/bidijkstra.h"
#include "src/shortest/dijkstra.h"
#include "src/shortest/hub_labels.h"
#include "src/shortest/oracle.h"
#include "src/util/rng.h"
#include "src/workload/city.h"

namespace urpsm {
namespace {

TEST(DijkstraTest, PathGraphDistances) {
  const RoadNetwork g = MakePathGraph(5, 1.0);  // residential, 1 km edges
  const double per_edge = 1.0 / SpeedKmPerMin(RoadClass::kResidential);
  EXPECT_NEAR(DijkstraDistance(g, 0, 4), 4 * per_edge, 1e-12);
  EXPECT_NEAR(DijkstraDistance(g, 2, 3), per_edge, 1e-12);
  EXPECT_DOUBLE_EQ(DijkstraDistance(g, 3, 3), 0.0);
}

TEST(DijkstraTest, CycleTakesShorterArc) {
  const RoadNetwork g = MakeCycleGraph(10, 1.0);
  const double per_edge = 1.0 / SpeedKmPerMin(RoadClass::kResidential);
  EXPECT_NEAR(DijkstraDistance(g, 0, 3), 3 * per_edge, 1e-12);
  EXPECT_NEAR(DijkstraDistance(g, 0, 7), 3 * per_edge, 1e-12);  // wrap
  EXPECT_NEAR(DijkstraDistance(g, 0, 5), 5 * per_edge, 1e-12);  // antipodal
}

TEST(DijkstraTest, UnreachableIsInfinite) {
  std::vector<Point> coords = {{0, 0}, {1, 0}, {5, 5}, {6, 5}};
  std::vector<EdgeSpec> edges = {{0, 1, 1.0, RoadClass::kResidential},
                                 {2, 3, 1.0, RoadClass::kResidential}};
  const RoadNetwork g = RoadNetwork::FromEdges(coords, edges);
  EXPECT_EQ(DijkstraDistance(g, 0, 2), kInfDistance);
  EXPECT_TRUE(DijkstraPath(g, 0, 2).empty());
}

TEST(DijkstraTest, PathEndpointsAndContinuity) {
  Rng rng(11);
  const RoadNetwork g = MakeRandomGeometricGraph(80, 8.0, 3, &rng);
  for (int trial = 0; trial < 20; ++trial) {
    const VertexId s = rng.UniformInt(0, g.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, g.num_vertices() - 1);
    const auto path = DijkstraPath(g, s, t);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    // Path cost equals the distance.
    double cost = 0.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      double best = kInfDistance;
      for (const auto& arc : g.Neighbors(path[i])) {
        if (arc.to == path[i + 1]) best = std::min(best, arc.cost);
      }
      ASSERT_LT(best, kInfDistance) << "path uses a non-edge";
      cost += best;
    }
    EXPECT_NEAR(cost, DijkstraDistance(g, s, t), 1e-9);
  }
}

TEST(DijkstraTest, AllDistancesMatchPointQueries) {
  Rng rng(13);
  const RoadNetwork g = MakeRandomGeometricGraph(60, 6.0, 3, &rng);
  const auto all = DijkstraAll(g, 7);
  for (VertexId v = 0; v < g.num_vertices(); v += 5) {
    EXPECT_NEAR(all[static_cast<std::size_t>(v)], DijkstraDistance(g, 7, v),
                1e-9);
  }
}

TEST(BidijkstraTest, MatchesDijkstraOnRandomGraphs) {
  Rng rng(17);
  for (int seed = 0; seed < 3; ++seed) {
    Rng grng(100 + static_cast<std::uint64_t>(seed));
    const RoadNetwork g = MakeRandomGeometricGraph(120, 10.0, 3, &grng);
    for (int trial = 0; trial < 30; ++trial) {
      const VertexId s = rng.UniformInt(0, g.num_vertices() - 1);
      const VertexId t = rng.UniformInt(0, g.num_vertices() - 1);
      EXPECT_NEAR(BidirectionalDistance(g, s, t), DijkstraDistance(g, s, t),
                  1e-9);
    }
  }
}

TEST(BidijkstraTest, DisconnectedReturnsInfinity) {
  std::vector<Point> coords = {{0, 0}, {1, 0}, {5, 5}, {6, 5}};
  std::vector<EdgeSpec> edges = {{0, 1, 1.0, RoadClass::kResidential},
                                 {2, 3, 1.0, RoadClass::kResidential}};
  const RoadNetwork g = RoadNetwork::FromEdges(coords, edges);
  EXPECT_EQ(BidirectionalDistance(g, 0, 3), kInfDistance);
}

TEST(HubLabelsTest, MatchesDijkstraOnCity) {
  CityParams p;
  p.rows = 12;
  p.cols = 12;
  const RoadNetwork g = MakeCity(p);
  HubLabelOracle oracle = HubLabelOracle::Build(g);
  Rng rng(19);
  for (int trial = 0; trial < 200; ++trial) {
    const VertexId s = rng.UniformInt(0, g.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, g.num_vertices() - 1);
    EXPECT_NEAR(oracle.Distance(s, t), DijkstraDistance(g, s, t), 1e-9)
        << "s=" << s << " t=" << t;
  }
}

TEST(HubLabelsTest, MatchesDijkstraOnRandomGeometric) {
  Rng grng(23);
  const RoadNetwork g = MakeRandomGeometricGraph(150, 12.0, 4, &grng);
  HubLabelOracle oracle = HubLabelOracle::Build(g);
  Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    const VertexId s = rng.UniformInt(0, g.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, g.num_vertices() - 1);
    EXPECT_NEAR(oracle.Distance(s, t), DijkstraDistance(g, s, t), 1e-9);
  }
}

TEST(HubLabelsTest, SelfDistanceZeroAndCounters) {
  const RoadNetwork g = MakeGridGraph(5, 5, 1.0);
  HubLabelOracle oracle = HubLabelOracle::Build(g);
  EXPECT_DOUBLE_EQ(oracle.Distance(3, 3), 0.0);
  EXPECT_EQ(oracle.query_count(), 1);
  EXPECT_GT(oracle.average_label_size(), 0.0);
  EXPECT_GT(oracle.MemoryBytes(), 0);
}

TEST(HubLabelsTest, PathFallbackIsExact) {
  const RoadNetwork g = MakeGridGraph(4, 4, 1.0);
  HubLabelOracle oracle = HubLabelOracle::Build(g);
  const auto path = oracle.Path(0, 15);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 15);
}

TEST(CachedOracleTest, CountsQueriesAndCachesSymmetrically) {
  const RoadNetwork g = MakeGridGraph(6, 6, 1.0);
  DijkstraOracle inner(&g);
  CachedOracle cached(&inner, 128);
  const double d1 = cached.Distance(0, 35);
  const double d2 = cached.Distance(35, 0);  // symmetric key -> cache hit
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_EQ(cached.query_count(), 2);
  EXPECT_EQ(inner.query_count(), 1);
  EXPECT_EQ(cached.cache_hits(), 1);
}

TEST(CachedOracleTest, SelfDistanceSkipsInner) {
  const RoadNetwork g = MakeGridGraph(3, 3, 1.0);
  DijkstraOracle inner(&g);
  CachedOracle cached(&inner, 16);
  EXPECT_DOUBLE_EQ(cached.Distance(4, 4), 0.0);
  EXPECT_EQ(inner.query_count(), 0);
}

TEST(CachedOracleTest, EvictionStillCorrect) {
  const RoadNetwork g = MakeGridGraph(6, 6, 1.0);
  DijkstraOracle inner(&g);
  CachedOracle cached(&inner, 2);  // tiny cache, heavy eviction
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const VertexId s = rng.UniformInt(0, g.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, g.num_vertices() - 1);
    EXPECT_NEAR(cached.Distance(s, t), DijkstraDistance(g, s, t), 1e-9);
  }
}

}  // namespace
}  // namespace urpsm
