#include <gtest/gtest.h>

#include "src/sim/fleet.h"
#include "src/sim/metrics.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

class FleetTest : public ::testing::Test {
 protected:
  FleetTest() : env_(MakePathGraph(10, 1.0)) {}
  double EdgeMin() const {
    return 1.0 / SpeedKmPerMin(RoadClass::kResidential);
  }
  Fleet MakeFleet() {
    std::vector<Worker> workers = {{0, 0, 4}, {1, 9, 4}};
    return Fleet(workers, &env_.graph());
  }
  TestEnv env_;
};

TEST_F(FleetTest, InitialState) {
  Fleet fleet = MakeFleet();
  EXPECT_EQ(fleet.size(), 2);
  EXPECT_EQ(fleet.route(0).anchor(), 0);
  EXPECT_EQ(fleet.route(1).anchor(), 9);
  EXPECT_DOUBLE_EQ(fleet.committed_distance(), 0.0);
  EXPECT_EQ(fleet.AssignedWorker(0), kInvalidWorker);
}

TEST_F(FleetTest, AdvanceCommitsDueStops) {
  const double e = EdgeMin();
  Fleet fleet = MakeFleet();
  const Request r = env_.AddRequest(2, 5, 0.0, 1e9);
  fleet.ApplyInsertion(0, r, 0, 0, env_.oracle());
  EXPECT_EQ(fleet.AssignedWorker(r.id), 0);

  fleet.AdvanceTo(1.9 * e);  // before pickup at 2e
  EXPECT_EQ(fleet.route(0).size(), 2);
  fleet.AdvanceTo(2.1 * e);  // pickup committed
  EXPECT_EQ(fleet.route(0).size(), 1);
  EXPECT_EQ(fleet.route(0).anchor(), 2);
  EXPECT_NEAR(fleet.PickupTime(r.id), 2 * e, 1e-12);
  EXPECT_EQ(fleet.DropoffTime(r.id), kInf);
  fleet.AdvanceTo(5.0 * e);  // dropoff at 5e
  EXPECT_TRUE(fleet.route(0).empty());
  EXPECT_NEAR(fleet.DropoffTime(r.id), 5 * e, 1e-12);
  EXPECT_NEAR(fleet.committed_distance(), 5 * e, 1e-12);
}

TEST_F(FleetTest, TouchBumpsIdleWorkers) {
  Fleet fleet = MakeFleet();
  fleet.Touch(0, 42.0);
  EXPECT_DOUBLE_EQ(fleet.route(0).anchor_time(), 42.0);
  // Touch never moves a worker's clock backwards.
  fleet.Touch(0, 10.0);
  EXPECT_DOUBLE_EQ(fleet.route(0).anchor_time(), 42.0);
}

TEST_F(FleetTest, TouchCommitsDueStopsForOneWorker) {
  const double e = EdgeMin();
  Fleet fleet = MakeFleet();
  const Request r = env_.AddRequest(2, 5, 0.0, 1e9);
  fleet.ApplyInsertion(0, r, 0, 0, env_.oracle());
  fleet.Touch(0, 3.0 * e);
  EXPECT_EQ(fleet.route(0).anchor(), 2);  // pickup committed
  EXPECT_EQ(fleet.route(0).size(), 1);
}

TEST_F(FleetTest, FinishAllFlushesEverything) {
  Fleet fleet = MakeFleet();
  const Request r1 = env_.AddRequest(2, 5, 0.0, 1e9);
  const Request r2 = env_.AddRequest(8, 6, 0.0, 1e9);
  fleet.ApplyInsertion(0, r1, 0, 0, env_.oracle());
  fleet.ApplyInsertion(1, r2, 0, 0, env_.oracle());
  fleet.FinishAll();
  EXPECT_TRUE(fleet.route(0).empty());
  EXPECT_TRUE(fleet.route(1).empty());
  EXPECT_LT(fleet.DropoffTime(r1.id), kInf);
  EXPECT_LT(fleet.DropoffTime(r2.id), kInf);
  EXPECT_DOUBLE_EQ(fleet.TotalPlannedDistance(), fleet.committed_distance());
}

TEST_F(FleetTest, TotalPlannedIncludesPendingLegs) {
  const double e = EdgeMin();
  Fleet fleet = MakeFleet();
  const Request r = env_.AddRequest(2, 5, 0.0, 1e9);
  fleet.ApplyInsertion(0, r, 0, 0, env_.oracle());
  EXPECT_NEAR(fleet.TotalPlannedDistance(), 5 * e, 1e-12);
  fleet.AdvanceTo(2.0 * e);
  EXPECT_NEAR(fleet.TotalPlannedDistance(), 5 * e, 1e-12);  // invariant
}

TEST_F(FleetTest, GridIndexTracksAnchors) {
  Fleet fleet = MakeFleet();
  GridIndex index({0, 0}, {9, 1}, 1.0);
  fleet.AttachIndex(&index);
  EXPECT_EQ(index.All().size(), 2u);
  const Request r = env_.AddRequest(5, 7, 0.0, 1e9);
  fleet.ApplyInsertion(0, r, 0, 0, env_.oracle());
  fleet.FinishAll();
  // Worker 0 ends at vertex 7 (x = 7); the index must see it there.
  const auto near7 = index.WithinRadius({7.0, 0.0}, 0.4);
  bool found = false;
  for (WorkerId w : near7) found |= (w == 0);
  EXPECT_TRUE(found);
}

TEST_F(FleetTest, CommitLogRecordsExecution) {
  Fleet fleet = MakeFleet();
  const Request r = env_.AddRequest(2, 5, 0.0, 1e9);
  fleet.ApplyInsertion(0, r, 0, 0, env_.oracle());
  fleet.FinishAll();
  const auto& log = fleet.CommitLog(0);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].stop.kind, StopKind::kPickup);
  EXPECT_EQ(log[1].stop.kind, StopKind::kDropoff);
  EXPECT_LE(log[0].time, log[1].time);
  const InvariantReport rep = VerifyInvariants(fleet, env_.requests());
  EXPECT_TRUE(rep.ok) << rep.violation;
}

TEST_F(FleetTest, ReplaceRouteReordersStops) {
  Fleet fleet = MakeFleet();
  const Request r1 = env_.AddRequest(2, 6, 0.0, 1e9);
  fleet.ApplyInsertion(0, r1, 0, 0, env_.oracle());
  const Request r2 = env_.AddRequest(3, 4, 0.0, 1e9);
  std::vector<Stop> stops = {{2, r1.id, StopKind::kPickup},
                             {3, r2.id, StopKind::kPickup},
                             {4, r2.id, StopKind::kDropoff},
                             {6, r1.id, StopKind::kDropoff}};
  fleet.ReplaceRoute(0, r2, stops, env_.oracle());
  EXPECT_EQ(fleet.AssignedWorker(r2.id), 0);
  fleet.FinishAll();
  const InvariantReport rep = VerifyInvariants(fleet, env_.requests());
  EXPECT_TRUE(rep.ok) << rep.violation;
}

TEST_F(FleetTest, InvariantCheckerCatchesViolations) {
  // Deliberately violate the deadline by replaying with a tighter one.
  Fleet fleet = MakeFleet();
  const Request r = env_.AddRequest(2, 5, 0.0, 1e9);
  fleet.ApplyInsertion(0, r, 0, 0, env_.oracle());
  fleet.FinishAll();
  std::vector<Request> tampered = env_.requests();
  tampered[0].deadline = 0.0;  // drop-off definitely later than this
  const InvariantReport rep = VerifyInvariants(fleet, tampered);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.violation.find("deadline"), std::string::npos);
}

}  // namespace
}  // namespace urpsm
