// Tests for the flat-memory hot path: CSR hub labels (including the
// rank-order-preserving parallel build), the fleet's version-keyed
// route-state cache, the O(1) arrival prefix, and the per-request distance
// columns feeding the insertion operators.

#include <algorithm>
#include <gtest/gtest.h>

#include <vector>

#include "src/graph/builders.h"
#include "src/insertion/insertion.h"
#include "src/model/feasibility.h"
#include "src/parallel/thread_pool.h"
#include "src/shortest/dijkstra.h"
#include "src/shortest/hub_labels.h"
#include "src/shortest/oracle.h"
#include "src/sim/fleet.h"
#include "src/util/rng.h"
#include "src/workload/city.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

// ------------------------------------------------------- CSR hub labels

RoadNetwork MakeTwoComponentGraph() {
  // Two 3x4 grids with no connecting edge.
  std::vector<Point> coords;
  std::vector<EdgeSpec> edges;
  const auto add_grid = [&](double x0, double y0) {
    const VertexId base = static_cast<VertexId>(coords.size());
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 4; ++c) {
        coords.push_back({x0 + c * 1.0, y0 + r * 1.0});
      }
    }
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 4; ++c) {
        const VertexId v = base + static_cast<VertexId>(r * 4 + c);
        if (c + 1 < 4) edges.push_back({v, v + 1, 1.0, RoadClass::kPrimary});
        if (r + 1 < 3) edges.push_back({v, v + 4, 1.0, RoadClass::kPrimary});
      }
    }
  };
  add_grid(0.0, 0.0);
  add_grid(100.0, 100.0);
  return RoadNetwork::FromEdges(std::move(coords), edges);
}

TEST(HubLabelCsrTest, MatchesDijkstraOracleOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng grng(40 + seed);
    const RoadNetwork g = MakeRandomGeometricGraph(160, 12.0, 4, &grng);
    HubLabelOracle labels = HubLabelOracle::Build(g);
    DijkstraOracle truth(&g);
    Rng rng(7 * seed);
    for (int trial = 0; trial < 150; ++trial) {
      const VertexId s = rng.UniformInt(0, g.num_vertices() - 1);
      const VertexId t = rng.UniformInt(0, g.num_vertices() - 1);
      EXPECT_NEAR(labels.Distance(s, t), truth.Distance(s, t), 1e-9)
          << "seed=" << seed << " s=" << s << " t=" << t;
    }
  }
}

TEST(HubLabelCsrTest, DisconnectedPairsAreInfinite) {
  const RoadNetwork g = MakeTwoComponentGraph();
  HubLabelOracle labels = HubLabelOracle::Build(g);
  DijkstraOracle truth(&g);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      const double expect = truth.Distance(s, t);
      const double got = labels.Distance(s, t);
      if (expect == kInfDistance) {
        EXPECT_EQ(got, kInfDistance) << "s=" << s << " t=" << t;
      } else {
        EXPECT_NEAR(got, expect, 1e-12) << "s=" << s << " t=" << t;
      }
    }
  }
}

TEST(HubLabelCsrTest, ParallelBuildBitIdenticalToSequential) {
  // The speculative batch build must reproduce the sequential labeling
  // exactly — offsets, hub ranks and distances — for every pool size.
  std::vector<RoadNetwork> graphs;
  {
    Rng grng(51);
    graphs.push_back(MakeRandomGeometricGraph(220, 14.0, 4, &grng));
  }
  {
    CityParams p;
    p.rows = 10;
    p.cols = 10;
    graphs.push_back(MakeCity(p));
  }
  graphs.push_back(MakeTwoComponentGraph());
  graphs.push_back(MakeCycleGraph(37, 0.7));
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const RoadNetwork& g = graphs[gi];
    const HubLabelOracle seq = HubLabelOracle::Build(g);
    for (int threads : {2, 5, 8}) {
      ThreadPool pool(threads);
      const HubLabelOracle par = HubLabelOracle::Build(g, &pool);
      EXPECT_TRUE(par.SameLabels(seq))
          << "graph " << gi << ", threads=" << threads;
    }
  }
}

TEST(HubLabelCsrTest, NullAndSingleThreadPoolFallBackToSequential) {
  const RoadNetwork g = MakeGridGraph(6, 6, 0.8);
  const HubLabelOracle seq = HubLabelOracle::Build(g);
  const HubLabelOracle null_pool = HubLabelOracle::Build(g, nullptr);
  EXPECT_TRUE(null_pool.SameLabels(seq));
  ThreadPool one(1);
  const HubLabelOracle one_pool = HubLabelOracle::Build(g, &one);
  EXPECT_TRUE(one_pool.SameLabels(seq));
}

// ------------------------------------------------- route version + arrivals

TEST(RouteVersionTest, MutatorsBumpVersionAndArrivalsStayExact) {
  TestEnv env(MakeGridGraph(8, 8, 0.5));
  Route rt(0, 5.0);
  EXPECT_EQ(rt.version(), 0u);

  const auto expect_arrivals_exact = [&](const Route& route) {
    for (int k = 0; k <= route.size(); ++k) {
      double t = route.anchor_time();
      for (int l = 0; l < k; ++l) {
        t += route.leg_costs()[static_cast<std::size_t>(l)];
      }
      // Bit-exact: the cache must match the fresh prefix walk exactly,
      // not just approximately.
      EXPECT_EQ(route.ArrivalAt(k), t) << "k=" << k;
    }
  };
  expect_arrivals_exact(rt);

  const Request r1 = env.AddRequest(3, 42, 0.0, 1e9);
  rt.Insert(r1, 0, 0, env.oracle());
  EXPECT_EQ(rt.version(), 1u);
  expect_arrivals_exact(rt);

  const Request r2 = env.AddRequest(10, 60, 0.0, 1e9);
  rt.Insert(r2, 1, 2, env.oracle());
  EXPECT_EQ(rt.version(), 2u);
  expect_arrivals_exact(rt);

  rt.PopFront();
  EXPECT_EQ(rt.version(), 3u);
  expect_arrivals_exact(rt);

  std::vector<Stop> stops(rt.stops().begin(), rt.stops().end());
  std::reverse(stops.begin(), stops.end());
  rt.SetStops(std::move(stops), env.oracle());
  EXPECT_EQ(rt.version(), 4u);
  expect_arrivals_exact(rt);

  rt.set_anchor_time(rt.anchor_time() + 2.5);
  EXPECT_EQ(rt.version(), 5u);
  expect_arrivals_exact(rt);
}

// ----------------------------------------------------- route-state cache

void ExpectStateEqual(const RouteState& cached, const RouteState& fresh,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(cached.n, fresh.n);
  // Exact (bit-level) equality: the cache must be indistinguishable from a
  // fresh build, not merely close.
  EXPECT_EQ(cached.arr, fresh.arr);
  EXPECT_EQ(cached.ddl, fresh.ddl);
  EXPECT_EQ(cached.slack, fresh.slack);
  EXPECT_EQ(cached.picked, fresh.picked);
}

TEST(RouteStateCacheTest, FuzzChurnMatchesFreshBuildAfterEveryMutation) {
  Rng rng(67);
  const RoadNetwork g = MakeGridGraph(10, 10, 0.6);
  DijkstraOracle oracle(&g);
  std::vector<Request> requests;
  PlanningContext ctx(&g, &oracle, &requests);

  constexpr int kWorkers = 4;
  std::vector<Worker> workers;
  for (WorkerId w = 0; w < kWorkers; ++w) {
    workers.push_back(
        {w, rng.UniformInt(0, g.num_vertices() - 1), rng.UniformInt(3, 6)});
  }
  Fleet fleet(workers, &g);
  std::vector<RequestId> last_assigned(kWorkers, kInvalidRequest);

  double now = 0.0;
  for (int op = 0; op < 300; ++op) {
    const int kind = rng.UniformInt(0, 9);
    const auto w = static_cast<WorkerId>(rng.UniformInt(0, kWorkers - 1));
    if (kind < 5) {
      // Random insertion through the ground-truth operator; mixes tight
      // and loose deadlines so routes grow, shrink and reject.
      const VertexId o = rng.UniformInt(0, g.num_vertices() - 1);
      VertexId d = rng.UniformInt(0, g.num_vertices() - 1);
      if (d == o) d = (d + 1) % g.num_vertices();
      Request r;
      r.id = static_cast<RequestId>(requests.size());
      r.origin = o;
      r.destination = d;
      r.release_time = now;
      r.deadline = now + rng.Uniform(5.0, 40.0);
      r.capacity = rng.UniformInt(1, 2);
      requests.push_back(r);
      fleet.Touch(w, now);
      const InsertionCandidate c =
          BasicInsertion(fleet.worker(w), fleet.route(w), r, &ctx);
      if (c.feasible()) {
        fleet.ApplyInsertion(w, r, c.i, c.j, &oracle);
        last_assigned[static_cast<std::size_t>(w)] = r.id;
      }
    } else if (kind < 7) {
      now += rng.Uniform(0.0, 4.0);
      fleet.AdvanceTo(now);  // commits due stops (PopFront churn)
    } else if (kind < 9) {
      fleet.Touch(w, now);  // idle anchor-time bumps
    } else if (last_assigned[static_cast<std::size_t>(w)] !=
               kInvalidRequest) {
      // SetStops churn: re-commit the same stops wholesale (recomputes
      // legs, bumps the version) via ReplaceRoute.
      std::vector<Stop> stops(fleet.route(w).stops().begin(),
                              fleet.route(w).stops().end());
      fleet.ReplaceRoute(w, requests[static_cast<std::size_t>(
                                last_assigned[static_cast<std::size_t>(w)])],
                         std::move(stops), &oracle);
    }
    // The cache must equal a fresh build for every worker after every
    // mutation — including workers untouched this round (warm entries).
    for (WorkerId v = 0; v < kWorkers; ++v) {
      const RouteState& cached = fleet.CachedState(v, &ctx);
      const RouteState fresh = BuildRouteState(fleet.route(v), &ctx);
      ExpectStateEqual(cached, fresh,
                       "op " + std::to_string(op) + ", worker " +
                           std::to_string(v));
      if (HasFatalFailure()) return;
    }
  }
}

TEST(RouteStateCacheTest, RepeatedCallsDoNotRebuild) {
  const RoadNetwork g = MakeGridGraph(6, 6, 0.5);
  DijkstraOracle oracle(&g);
  std::vector<Request> requests;
  PlanningContext ctx(&g, &oracle, &requests);
  Fleet fleet({{0, 0, 4}}, &g);

  const RouteState& a = fleet.CachedState(0, &ctx);
  const RouteState* a_ptr = &a;
  const std::int64_t queries_after_first = oracle.query_count();
  const RouteState& b = fleet.CachedState(0, &ctx);
  EXPECT_EQ(&b, a_ptr);  // same slot, no rebuild
  EXPECT_EQ(oracle.query_count(), queries_after_first);
}

// ----------------------------------------------------- distance columns

TEST(DistanceColumnsTest, GatherMatchesDirectDist) {
  TestEnv env(MakeGridGraph(9, 9, 0.5));
  Worker w{0, 0, 8};
  Route rt(w.initial_location, 0.0);
  Rng rng(71);
  BuildRandomRoute(&env, w, &rt, 10, 0.0, 60.0, &rng);
  const Request probe = env.AddRequest(5, 70, 0.0, 1e9);

  DistanceColumns cols;
  GatherDistanceColumns(rt, probe, env.ctx(), &cols);
  ASSERT_EQ(cols.to_origin.size(), static_cast<std::size_t>(rt.size() + 1));
  ASSERT_EQ(cols.to_destination.size(),
            static_cast<std::size_t>(rt.size() + 1));
  for (int k = 0; k <= rt.size(); ++k) {
    const auto ks = static_cast<std::size_t>(k);
    EXPECT_EQ(cols.to_origin[ks],
              env.ctx()->Dist(rt.VertexAt(k), probe.origin));
    EXPECT_EQ(cols.to_destination[ks],
              env.ctx()->Dist(rt.VertexAt(k), probe.destination));
  }
}

TEST(DistanceColumnsTest, ExplicitColumnsMatchImplicitGather) {
  TestEnv env(MakeGridGraph(9, 9, 0.5));
  Worker w{0, 0, 6};
  Route rt(w.initial_location, 0.0);
  Rng rng(73);
  BuildRandomRoute(&env, w, &rt, 12, 0.0, 45.0, &rng);
  const RouteState st = BuildRouteState(rt, env.ctx());

  for (int trial = 0; trial < 40; ++trial) {
    const VertexId o = rng.UniformInt(0, env.graph().num_vertices() - 1);
    VertexId d = rng.UniformInt(0, env.graph().num_vertices() - 1);
    if (d == o) d = (d + 1) % env.graph().num_vertices();
    const Request r =
        env.AddRequest(o, d, 0.0, rng.Uniform(10.0, 80.0), 10.0,
                       rng.UniformInt(1, 2));
    DistanceColumns cols;
    GatherDistanceColumns(rt, r, env.ctx(), &cols);

    const InsertionCandidate lin_tls =
        LinearDpInsertion(w, rt, st, r, env.ctx());
    const InsertionCandidate lin_cols =
        LinearDpInsertion(w, rt, st, r, cols, env.ctx());
    EXPECT_EQ(lin_tls.i, lin_cols.i);
    EXPECT_EQ(lin_tls.j, lin_cols.j);
    EXPECT_EQ(lin_tls.delta, lin_cols.delta);

    const InsertionCandidate nai_tls =
        NaiveDpInsertion(w, rt, st, r, env.ctx());
    const InsertionCandidate nai_cols =
        NaiveDpInsertion(w, rt, st, r, cols, env.ctx());
    EXPECT_EQ(nai_tls.i, nai_cols.i);
    EXPECT_EQ(nai_tls.j, nai_cols.j);
    EXPECT_EQ(nai_tls.delta, nai_cols.delta);
  }
}

TEST(DistanceColumnsTest, AllThreeOperatorsAgreeUnderFuzz) {
  // Column-fed basic (ground truth), naive DP and linear DP must pick
  // placements of identical cost on mixed feasible/infeasible workloads.
  Rng rng(79);
  for (int round = 0; round < 6; ++round) {
    TestEnv env(MakeGridGraph(8, 8, 0.6));
    Worker w{0, rng.UniformInt(0, env.graph().num_vertices() - 1),
             rng.UniformInt(2, 5)};
    Route rt(w.initial_location, 0.0);
    BuildRandomRoute(&env, w, &rt, 8, 0.0, 35.0, &rng);
    for (int trial = 0; trial < 25; ++trial) {
      const VertexId o = rng.UniformInt(0, env.graph().num_vertices() - 1);
      VertexId d = rng.UniformInt(0, env.graph().num_vertices() - 1);
      if (d == o) d = (d + 1) % env.graph().num_vertices();
      const Request r =
          env.AddRequest(o, d, 0.0, rng.Uniform(4.0, 50.0), 10.0,
                         rng.UniformInt(1, 3));
      const InsertionCandidate basic = BasicInsertion(w, rt, r, env.ctx());
      const InsertionCandidate naive = NaiveDpInsertion(w, rt, r, env.ctx());
      const InsertionCandidate lin = LinearDpInsertion(w, rt, r, env.ctx());
      ASSERT_EQ(basic.feasible(), naive.feasible())
          << "round " << round << " trial " << trial;
      ASSERT_EQ(basic.feasible(), lin.feasible())
          << "round " << round << " trial " << trial;
      if (basic.feasible()) {
        EXPECT_NEAR(basic.delta, naive.delta, 1e-9);
        EXPECT_NEAR(basic.delta, lin.delta, 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace urpsm
