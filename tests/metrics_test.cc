#include <cmath>

#include <gtest/gtest.h>

#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

TEST(AverageReportsTest, SingleReportIsIdentityOnMeans) {
  SimReport r;
  r.algorithm = std::string("x");
  r.total_requests = 10;
  r.served_requests = 7;
  r.served_rate = 0.7;
  r.unified_cost = 123.0;
  r.distance_queries = 42;
  const SimReport avg = AverageReports({r});
  EXPECT_EQ(avg.algorithm, "x");
  EXPECT_EQ(avg.served_requests, 7);
  EXPECT_DOUBLE_EQ(avg.unified_cost, 123.0);
  EXPECT_EQ(avg.distance_queries, 42);
}

TEST(AverageReportsTest, MeansAndMaxes) {
  SimReport a, b;
  a.algorithm = b.algorithm = std::string("x");
  a.total_requests = b.total_requests = 100;
  a.served_requests = 60;
  b.served_requests = 80;
  a.unified_cost = 100.0;
  b.unified_cost = 200.0;
  a.response_stats.Add(5.0);
  b.response_stats.Add(9.0);
  a.timed_out = false;
  b.timed_out = true;
  a.makespan_min = 100.0;
  b.makespan_min = 90.0;
  const SimReport avg = AverageReports({a, b});
  EXPECT_EQ(avg.served_requests, 70);
  EXPECT_DOUBLE_EQ(avg.unified_cost, 150.0);
  EXPECT_DOUBLE_EQ(avg.max_response_ms, 9.0);  // max over pooled samples
  EXPECT_TRUE(avg.timed_out);                  // OR
  EXPECT_DOUBLE_EQ(avg.makespan_min, 100.0);   // max
}

TEST(AverageReportsTest, PercentilesArePooledNotAveraged) {
  // Two deliberately skewed runs. Run A: 9 fast requests and one slow.
  // Run B: uniformly slow. A per-run p50 average would report
  // (1 + 100) / 2 = 50.5 ms — a latency that 15 of the 20 pooled samples
  // beat. The pooled p50 must come from the merged sample set.
  SimReport a, b;
  a.algorithm = b.algorithm = std::string("x");
  a.total_requests = b.total_requests = 10;
  for (int i = 0; i < 9; ++i) a.response_stats.Add(1.0);
  a.response_stats.Add(1000.0);
  a.p50_response_ms = a.response_stats.Percentile(50);   // 1.0
  a.p95_response_ms = a.response_stats.Percentile(95);   // ~550
  for (int i = 0; i < 10; ++i) b.response_stats.Add(100.0);
  b.p50_response_ms = b.response_stats.Percentile(50);   // 100.0
  b.p95_response_ms = b.response_stats.Percentile(95);   // 100.0

  const SimReport avg = AverageReports({a, b});
  StatsAccumulator pooled;
  pooled.Merge(a.response_stats);
  pooled.Merge(b.response_stats);
  EXPECT_DOUBLE_EQ(avg.p50_response_ms, pooled.Percentile(50));
  EXPECT_DOUBLE_EQ(avg.p95_response_ms, pooled.Percentile(95));
  EXPECT_DOUBLE_EQ(avg.avg_response_ms, pooled.mean());
  EXPECT_DOUBLE_EQ(avg.max_response_ms, 1000.0);
  // The old average-of-percentiles is measurably wrong on this pair.
  const double avg_of_p50s = (a.p50_response_ms + b.p50_response_ms) / 2.0;
  EXPECT_GT(std::abs(avg_of_p50s - avg.p50_response_ms), 10.0);
}

TEST(ServiceMetricsTest, PopulatedAndSane) {
  const RoadNetwork g = MakeChengduLike(0.03, 8);
  DijkstraOracle oracle(&g);
  Rng rng(4);
  std::vector<Worker> workers = GenerateWorkers(g, 10, 3.0, &rng);
  RequestParams rp;
  rp.count = 120;
  rp.duration_min = 200.0;
  std::vector<Request> requests = GenerateRequests(g, rp, &oracle, &rng);
  Simulation sim(&g, &oracle, workers, &requests, SimOptions{});
  const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));
  ASSERT_GT(rep.served_requests, 0);
  EXPECT_GE(rep.mean_pickup_wait_min, 0.0);
  // A pickup can never wait past the deadline window.
  EXPECT_LE(rep.mean_pickup_wait_min, rp.deadline_offset_min);
  // Detour ratio >= 1: the on-board path is at least the direct distance.
  EXPECT_GE(rep.mean_detour_ratio, 1.0 - 1e-9);
  // Makespan is after the last served request's release.
  double last_served_release = 0.0;
  for (const Request& r : requests) {
    if (sim.served()[static_cast<std::size_t>(r.id)]) {
      last_served_release = std::max(last_served_release, r.release_time);
    }
  }
  EXPECT_GE(rep.makespan_min, last_served_release);
}

TEST(MaterializePathTest, ExpandsLegsIntoRealEdges) {
  TestEnv env(MakeGridGraph(6, 6, 1.0));
  const Request r1 = env.AddRequest(7, 28, 0.0, 1e9);
  Route rt(0, 0.0);
  rt.Insert(r1, 0, 0, env.oracle());
  const std::vector<VertexId> path = rt.MaterializePath(env.oracle());
  ASSERT_GE(path.size(), 3u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 28);
  // Consecutive vertices must be joined by actual edges, and the total
  // cost must equal the route's planned cost.
  double cost = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    double leg = kInf;
    for (const auto& arc : env.graph().Neighbors(path[i])) {
      if (arc.to == path[i + 1]) leg = std::min(leg, arc.cost);
    }
    ASSERT_LT(leg, kInf) << "non-edge " << path[i] << "->" << path[i + 1];
    cost += leg;
  }
  EXPECT_NEAR(cost, rt.RemainingCost(), 1e-9);
}

TEST(MaterializePathTest, EmptyRouteIsJustTheAnchor) {
  TestEnv env(MakeGridGraph(3, 3, 1.0));
  Route rt(4, 0.0);
  const auto path = rt.MaterializePath(env.oracle());
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 4);
}

}  // namespace
}  // namespace urpsm
