// Tests for the observability layer (src/obs): t-digest determinism,
// merge associativity and rank-error bounds against an exact sort on a
// million-sample pooled input; metrics-registry semantics (disabled
// inertness, thread-safe sharded counters under concurrent snapshots,
// histogram expansion, callback-gauge freeze, the JSON-lines exporter);
// Chrome trace-event schema validation over a real pipelined smoke run
// (well-formed JSON, balanced B/E spans per tid, non-decreasing
// timestamps per tid, shard ids on commit spans); and the NaN pins for
// zero-request and timed-out runs. The registry/trace suites run under
// the tsan preset (suite names match its Obs filter).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/registry.h"
#include "src/obs/tdigest.h"
#include "src/obs/trace.h"
#include "src/shortest/hub_labels.h"
#include "src/sim/dispatch_window.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

// ----------------------------------------------------------- t-digest

// A skewed mixture (uniform bulk + exponential tail) so the digest's
// tail accuracy is actually exercised; deterministic from the seed.
std::vector<double> MixtureSamples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.8)) {
      xs.push_back(rng.Uniform(0.0, 100.0));
    } else {
      xs.push_back(100.0 + rng.Exponential(0.02));
    }
  }
  return xs;
}

// Rank (midpoint of the equal range, in [0, 1]) of `v` in sorted data.
double RankOf(const std::vector<double>& sorted, double v) {
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), v);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), v);
  const double r = 0.5 * (static_cast<double>(lo - sorted.begin()) +
                          static_cast<double>(hi - sorted.begin()));
  return r / static_cast<double>(sorted.size());
}

TEST(ObsTDigestTest, SmallInputsGetExactSortedSamplePercentiles) {
  // Until the first buffer compression every centroid is a singleton and
  // Quantile reduces bit-for-bit to the classic sorted-sample formula
  // lerp(sorted[floor(r)], sorted[ceil(r)]) with r = q * (n - 1).
  StatsAccumulator acc;
  const std::vector<double> xs = {7.0, 1.0, 9.0, 3.0, 10.0,
                                  2.0, 8.0, 4.0, 6.0, 5.0};
  for (double x : xs) acc.Add(x);
  // n = 10, sorted = 1..10.
  EXPECT_DOUBLE_EQ(acc.Percentile(50), 5.5);    // r = 4.5
  EXPECT_DOUBLE_EQ(acc.Percentile(95), 9.55);   // r = 8.55
  EXPECT_DOUBLE_EQ(acc.Percentile(99), 9.91);   // r = 8.91
  EXPECT_DOUBLE_EQ(acc.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(100), 10.0);
  EXPECT_EQ(acc.count(), 10u);
  EXPECT_DOUBLE_EQ(acc.sum(), 55.0);
}

TEST(ObsTDigestTest, IdenticalHistoriesProduceIdenticalSketches) {
  // Same Add sequence -> bit-identical centroids and quantiles. Queries
  // on one sketch along the way must not perturb it (const scratch-view
  // quantiles), so interleaving them cannot break the equality.
  StatsAccumulator a;
  StatsAccumulator b;
  const std::vector<double> xs = MixtureSamples(50'000, 11);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    a.Add(xs[i]);
    b.Add(xs[i]);
    if (i % 977 == 0) (void)a.Percentile(95);  // must not perturb a
  }
  for (double p : {1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    EXPECT_EQ(a.Percentile(p), b.Percentile(p)) << "p" << p;
  }
  obs::TDigest da = a.digest();
  obs::TDigest db = b.digest();
  da.Compress();
  db.Compress();
  ASSERT_EQ(da.centroids().size(), db.centroids().size());
  for (std::size_t i = 0; i < da.centroids().size(); ++i) {
    EXPECT_EQ(da.centroids()[i].mean, db.centroids()[i].mean) << i;
    EXPECT_EQ(da.centroids()[i].weight, db.centroids()[i].weight) << i;
  }
  // Bounded representation regardless of sample count.
  EXPECT_LE(da.centroids().size(),
            static_cast<std::size_t>(2 * da.compression()));
}

TEST(ObsTDigestTest, MergeIsDeterministic) {
  StatsAccumulator a;
  StatsAccumulator b;
  for (double x : MixtureSamples(30'000, 21)) a.Add(x);
  for (double x : MixtureSamples(30'000, 22)) b.Add(x);
  StatsAccumulator m1 = a;
  m1.Merge(b);
  StatsAccumulator m2 = a;
  m2.Merge(b);
  EXPECT_EQ(m1.count(), m2.count());
  EXPECT_EQ(m1.sum(), m2.sum());
  for (double p : {5.0, 50.0, 95.0, 99.0}) {
    EXPECT_EQ(m1.Percentile(p), m2.Percentile(p)) << "p" << p;
  }
}

TEST(ObsTDigestTest, MergeAssociativeOnExactStatsAndWithinRankError) {
  // (a + b) + c vs a + (b + c): count/min/max exactly equal, sum equal
  // up to float addition reordering, and every quantile of both
  // groupings within the sketch's rank-error bound of the exact pooled
  // distribution.
  StatsAccumulator a;
  StatsAccumulator b;
  StatsAccumulator c;
  std::vector<double> pooled;
  for (double x : MixtureSamples(30'000, 31)) { a.Add(x); pooled.push_back(x); }
  for (double x : MixtureSamples(30'000, 32)) { b.Add(x); pooled.push_back(x); }
  for (double x : MixtureSamples(30'000, 33)) { c.Add(x); pooled.push_back(x); }
  std::sort(pooled.begin(), pooled.end());

  StatsAccumulator ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);
  StatsAccumulator bc = b;
  bc.Merge(c);
  StatsAccumulator a_bc = a;
  a_bc.Merge(bc);

  EXPECT_EQ(ab_c.count(), pooled.size());
  EXPECT_EQ(a_bc.count(), pooled.size());
  EXPECT_EQ(ab_c.min(), a_bc.min());
  EXPECT_EQ(ab_c.max(), a_bc.max());
  EXPECT_NEAR(ab_c.sum(), a_bc.sum(), 1e-9 * std::abs(ab_c.sum()));
  for (double q : {0.05, 0.5, 0.95, 0.99}) {
    const double e1 = ab_c.Percentile(q * 100.0);
    const double e2 = a_bc.Percentile(q * 100.0);
    EXPECT_NEAR(RankOf(pooled, e1), q, 0.01) << "q=" << q;
    EXPECT_NEAR(RankOf(pooled, e2), q, 0.01) << "q=" << q;
    // The two groupings agree with each other within the same bound.
    EXPECT_NEAR(RankOf(pooled, e1), RankOf(pooled, e2), 0.01) << "q=" << q;
  }
}

TEST(ObsTDigestTest, RankErrorUnderOnePercentOnMillionPooledSamples) {
  // The acceptance bar: four shards of 250k samples each, merged into
  // one digest, must place p50/p95/p99 within 1% rank error of an exact
  // sort of the full million-sample pooled input.
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kPerShard = 250'000;
  std::vector<double> pooled;
  pooled.reserve(kShards * kPerShard);
  StatsAccumulator merged;
  for (std::size_t s = 0; s < kShards; ++s) {
    StatsAccumulator shard;
    for (double x : MixtureSamples(kPerShard, 100 + s)) {
      shard.Add(x);
      pooled.push_back(x);
    }
    merged.Merge(shard);
  }
  ASSERT_EQ(merged.count(), pooled.size());
  std::sort(pooled.begin(), pooled.end());
  EXPECT_EQ(merged.min(), pooled.front());
  EXPECT_EQ(merged.max(), pooled.back());
  for (double q : {0.5, 0.95, 0.99}) {
    const double est = merged.Percentile(q * 100.0);
    const double err = std::abs(RankOf(pooled, est) - q);
    EXPECT_LE(err, 0.01) << "q=" << q << " est=" << est;
  }
}

TEST(ObsTDigestTest, EmptyAccumulatorIsFiniteZero) {
  // The zero-sample NaN pin: every summary of an empty accumulator is a
  // finite 0, never 0/0.
  const StatsAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  for (double v : {acc.mean(), acc.min(), acc.max(), acc.sum(),
                   acc.Percentile(50), acc.Percentile(99)}) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_EQ(v, 0.0);
  }
}

// ----------------------------------------------------------- registry

TEST(ObsRegistryTest, DisabledRegistryIsInertAndSnapshotsEmpty) {
  obs::Registry reg(/*enabled=*/false);
  EXPECT_FALSE(reg.enabled());
  obs::Counter* c = reg.GetCounter("c");
  obs::Gauge* g = reg.GetGauge("g");
  obs::Histogram* h = reg.GetHistogram("h");
  c->Add(7);
  obs::Inc(c);
  obs::Inc(nullptr);  // null-safe
  g->Set(3.0);
  h->Observe(1.0);
  { obs::ScopedTimerMs t(h); }
  reg.RegisterCallbackGauge("cb", [] { return 1.0; });
  EXPECT_TRUE(reg.Snapshot().empty());
  // The exporter is a no-op when disabled: no file appears.
  std::remove("obs_export_disabled.jsonl");
  reg.StartPeriodicExport("obs_export_disabled.jsonl", 0.01);
  reg.StopPeriodicExport();
  std::ifstream in("obs_export_disabled.jsonl");
  EXPECT_FALSE(in.good());
}

TEST(ObsRegistryTest, CountersSumAcrossThreadsUnderConcurrentSnapshots) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      // Each thread fetches its own pointers (concurrent find-or-create)
      // and hammers a shared counter, its own counter, a gauge and a
      // histogram while snapshots run.
      obs::Counter* shared = reg.GetCounter("shared");
      obs::Counter* own = reg.GetCounter("own." + std::to_string(t));
      obs::Histogram* h = reg.GetHistogram("lat");
      obs::Gauge* g = reg.GetGauge("depth");
      for (int i = 0; i < kIters; ++i) {
        shared->Add(1);
        if (i % 100 == 0) {
          own->Add(1);
          h->Observe(static_cast<double>(i % 7));
          g->Set(static_cast<double>(i));
        }
      }
    });
  }
  std::thread snapshotter([&reg] {
    for (int i = 0; i < 50; ++i) (void)reg.Snapshot();
  });
  for (auto& w : workers) w.join();
  snapshotter.join();
  const std::map<std::string, double> snap = reg.Snapshot();
  EXPECT_EQ(snap.at("shared"), static_cast<double>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.at("own." + std::to_string(t)), kIters / 100);
  }
  EXPECT_EQ(snap.at("lat.count"), static_cast<double>(kThreads) * (kIters / 100));
}

TEST(ObsRegistryTest, ManyCountersSpillPastTheCellBlock) {
  // Counter ids beyond the per-thread cell-block capacity (256) take the
  // mutex-guarded overflow path; sums must still be exact, from several
  // threads at once.
  obs::Registry reg;
  constexpr int kCounters = 300;
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kCounters; ++i) {
        reg.GetCounter("c." + std::to_string(i))->Add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  const std::map<std::string, double> snap = reg.Snapshot();
  for (int i = 0; i < kCounters; ++i) {
    EXPECT_EQ(snap.at("c." + std::to_string(i)), kThreads) << i;
  }
}

TEST(ObsRegistryTest, HistogramsExpandAndEmptyOnesAreOmitted) {
  obs::Registry reg;
  obs::Histogram* h = reg.GetHistogram("h");
  reg.GetHistogram("never_observed");
  for (int i = 1; i <= 100; ++i) h->Observe(static_cast<double>(i));
  const std::map<std::string, double> snap = reg.Snapshot();
  EXPECT_EQ(snap.at("h.count"), 100.0);
  EXPECT_EQ(snap.at("h.sum"), 5050.0);
  EXPECT_EQ(snap.at("h.min"), 1.0);
  EXPECT_EQ(snap.at("h.max"), 100.0);
  EXPECT_NEAR(snap.at("h.p50"), 50.5, 1e-9);   // exact: singletons
  EXPECT_NEAR(snap.at("h.p95"), 95.05, 1e-9);
  EXPECT_NEAR(snap.at("h.p99"), 99.01, 1e-9);
  EXPECT_EQ(snap.count("never_observed.count"), 0u);
  // GetHistogram with the same name returns the same instrument.
  EXPECT_EQ(reg.GetHistogram("h"), h);
  EXPECT_EQ(reg.GetCounter("x"), reg.GetCounter("x"));
}

TEST(ObsRegistryTest, CallbackGaugesEvaluateLiveAndFreezeLastValue) {
  obs::Registry reg;
  double depth = 7.0;
  const std::size_t id =
      reg.RegisterCallbackGauge("queue.depth", [&depth] { return depth; });
  EXPECT_EQ(reg.Snapshot().at("queue.depth"), 7.0);
  depth = 9.0;
  EXPECT_EQ(reg.Snapshot().at("queue.depth"), 9.0);
  reg.FreezeCallbackGauge(id);  // evaluates one last time (9), drops fn
  depth = 11.0;
  EXPECT_EQ(reg.Snapshot().at("queue.depth"), 9.0);

  // The RAII guard freezes on scope exit — the component can die before
  // the final snapshot and the last value survives.
  int live = 3;
  {
    obs::CallbackGuard guard(&reg);
    guard.Track(reg.RegisterCallbackGauge("comp.v",
                                          [&live] { return live * 1.0; }));
    EXPECT_EQ(reg.Snapshot().at("comp.v"), 3.0);
  }
  live = 99;  // must not be read anymore
  EXPECT_EQ(reg.Snapshot().at("comp.v"), 3.0);
}

TEST(ObsRegistryTest, PeriodicExporterAppendsJsonLines) {
  const char* path = "obs_export_test.jsonl";
  std::remove(path);
  {
    obs::Registry reg;
    reg.GetCounter("exp.c")->Add(5);
    reg.StartPeriodicExport(path, 0.02);
    std::this_thread::sleep_for(std::chrono::milliseconds(70));
    reg.StopPeriodicExport();  // writes a final line
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.rfind("{\"ts_ms\":", 0), 0u) << line;
    EXPECT_NE(line.find("\"metrics\":{"), std::string::npos) << line;
    EXPECT_NE(line.find("\"exp.c\":"), std::string::npos) << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_GE(lines, 2);  // at least one periodic tick plus the final line
  std::remove(path);
}

TEST(ObsRegistryTest, SubIntervalRunStillWritesFinalSnapshot) {
  // A run shorter than one export period must not leave an empty file:
  // StopPeriodicExport writes the final snapshot unconditionally, so even
  // a 10-second period with an immediate stop yields >= 1 line.
  const char* path = "obs_export_subinterval_test.jsonl";
  std::remove(path);
  {
    obs::Registry reg;
    reg.GetCounter("exp.final")->Add(7);
    reg.StartPeriodicExport(path, 10.0);
    reg.StopPeriodicExport();  // no tick has fired yet
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_NE(line.find("\"exp.final\":"), std::string::npos) << line;
  }
  EXPECT_GE(lines, 1);
  std::remove(path);
}

// -------------------------------------------------------------- trace

struct TraceEvent {
  std::string name;
  char ph = '?';
  double ts = 0.0;
  int tid = -1;
  std::map<std::string, long long> args;
};

// Parses one `{"name":...}` line of the flushed trace (the writer emits
// exactly one event per line). Returns false on any malformed field.
bool ParseEvent(const std::string& raw, TraceEvent* e) {
  std::string line = raw;
  if (!line.empty() && line.back() == ',') line.pop_back();
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  const auto field = [&line](const std::string& key) -> std::string {
    const std::string tag = "\"" + key + "\":";
    const std::size_t pos = line.find(tag);
    if (pos == std::string::npos) return "";
    std::size_t start = pos + tag.size();
    if (line[start] == '"') {
      const std::size_t end = line.find('"', start + 1);
      return line.substr(start + 1, end - start - 1);
    }
    std::size_t end = start;
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
    return line.substr(start, end - start);
  };
  e->name = field("name");
  const std::string ph = field("ph");
  const std::string ts = field("ts");
  const std::string tid = field("tid");
  if (e->name.empty() || ph.size() != 1 || ts.empty() || tid.empty()) {
    return false;
  }
  e->ph = ph[0];
  e->ts = std::stod(ts);
  e->tid = std::stoi(tid);
  const std::size_t apos = line.find("\"args\":{");
  if (apos != std::string::npos) {
    std::size_t p = apos + 8;
    while (p < line.size() && line[p] != '}') {
      if (line[p] == ',') ++p;
      if (line[p] != '"') return false;
      const std::size_t kend = line.find('"', p + 1);
      const std::string key = line.substr(p + 1, kend - p - 1);
      p = kend + 2;  // skip closing quote and ':'
      std::size_t vend = p;
      while (vend < line.size() && line[vend] != ',' && line[vend] != '}') {
        ++vend;
      }
      e->args[key] = std::stoll(line.substr(p, vend - p));
      p = vend;
    }
  }
  return e->ph == 'B' || e->ph == 'E' || e->ph == 'i';
}

TEST(ObsTraceTest, DisabledRecorderRecordsNothing) {
  obs::TraceRecorder t{std::string()};
  EXPECT_FALSE(t.enabled());
  t.Begin("x", {{"k", 1}});
  t.End("x");
  t.Instant("i");
  { obs::TraceSpan s(&t, "span"); }
  { obs::TraceSpan s(nullptr, "span"); }  // null recorder is fine too
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  t.Flush();  // no path, no file, no crash
}

TEST(ObsTraceTest, PipelinedSmokeRunEmitsValidChromeTrace) {
  // Runs the real three-stage engine (4 threads, depth-4 ring so the
  // speculation spans appear) with tracing and metrics on, then
  // validates the flushed Chrome trace: well-formed JSON envelope, every
  // event parseable, B/E spans balanced per tid with matching names,
  // timestamps non-decreasing per tid, window epochs on the plan/commit
  // spans and shard ids on the commit.apply spans. The file is also the
  // CI trace artifact (obs_trace_smoke.json in the test working dir).
  const RoadNetwork graph = MakeChengduLike(0.05, 2);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(41);
  RequestParams rp;
  rp.count = 150;
  rp.duration_min = 100.0;
  rp.penalty_factor = 10.0;
  rp.seed = 43;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 9, 4.0, &rng);

  const char* trace_path = "obs_trace_smoke.json";
  std::remove(trace_path);
  SimOptions options;
  options.num_threads = 4;
  options.batch_window_s = 4.0;
  options.pipeline = true;
  options.pipeline_depth = 4;
  options.ingest_capacity = 32;
  options.collect_metrics = true;
  options.trace_path = trace_path;
  Simulation sim(&graph, &labels, workers, &requests, options);
  const SimReport rep = sim.Run(MakeDispatchWindowFactory({}));
  EXPECT_TRUE(rep.trace_enabled);
  EXPECT_FALSE(rep.timed_out);

  // --- the registry snapshot attached to the report ---
  ASSERT_FALSE(rep.metrics.empty());
  for (const auto& [key, value] : rep.metrics) {
    EXPECT_TRUE(std::isfinite(value)) << key;
  }
  EXPECT_GE(rep.metrics.at("engine.windows"), 1.0);
  EXPECT_EQ(rep.metrics.at("ingest.total_pushed"),
            static_cast<double>(requests.size()));
  const double hit_rate = rep.metrics.at("oracle.cache_hit_rate");
  EXPECT_GE(hit_rate, 0.0);
  EXPECT_LE(hit_rate, 1.0);
  EXPECT_EQ(rep.metrics.at("pool.threads"), 4.0);
  EXPECT_EQ(rep.metrics.count("shards.commit_blocking_waits"), 1u);

  // --- the flushed trace file ---
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines.front(), "{\"displayTimeUnit\":\"ms\",");
  EXPECT_EQ(lines[1], "\"traceEvents\":[");
  EXPECT_EQ(lines.back(), "]}");

  std::map<int, std::vector<std::string>> open;  // per-tid span stack
  std::map<int, double> last_ts;
  std::map<std::string, int> begins;
  int commit_apply_with_shard = 0;
  int speculation_instants = 0;
  for (std::size_t i = 2; i + 1 < lines.size(); ++i) {
    TraceEvent e;
    ASSERT_TRUE(ParseEvent(lines[i], &e)) << lines[i];
    // Timestamps are non-decreasing per tid (taken in program order).
    auto [it, fresh] = last_ts.emplace(e.tid, e.ts);
    if (!fresh) {
      EXPECT_GE(e.ts, it->second) << lines[i];
      it->second = e.ts;
    }
    if (e.ph == 'B') {
      open[e.tid].push_back(e.name);
      ++begins[e.name];
    } else if (e.ph == 'E') {
      auto& stack = open[e.tid];
      ASSERT_FALSE(stack.empty()) << "unmatched E: " << lines[i];
      EXPECT_EQ(stack.back(), e.name) << "mismatched span nesting";
      stack.pop_back();
    }
    if (e.name == "window.plan_exact" || e.name == "window.plan_speculative" ||
        e.name == "window.validate" || e.name == "plan" ||
        e.name == "commit") {
      if (e.ph == 'B') {
        ASSERT_EQ(e.args.count("epoch"), 1u) << lines[i];
        EXPECT_GE(e.args.at("epoch"), 1) << lines[i];
      }
    }
    if (e.name == "commit.apply" && e.ph == 'B') {
      ASSERT_EQ(e.args.count("shard"), 1u) << lines[i];
      ASSERT_EQ(e.args.count("epoch"), 1u) << lines[i];
      if (e.args.at("shard") >= 0) ++commit_apply_with_shard;
    }
    if (e.name == "speculation" && e.ph == 'i') {
      EXPECT_EQ(e.args.count("hits"), 1u);
      EXPECT_EQ(e.args.count("misses"), 1u);
      ++speculation_instants;
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unbalanced spans on tid " << tid;
  }
  // The stage spans the pipeline exists for are all present, one plan
  // and one commit span per window epoch.
  EXPECT_EQ(begins["ingest.replay"], 1);
  EXPECT_EQ(begins["plan"], rep.pipeline.windows);
  EXPECT_EQ(begins["commit"], rep.pipeline.windows);
  EXPECT_GT(begins["commit.apply"], 0);
  EXPECT_GT(commit_apply_with_shard, 0);
  // Whether the depth-4 ring actually ran ahead is timing-dependent, but
  // whenever the report says it speculated, the trace must show it.
  if (rep.pipeline.speculation_hits + rep.pipeline.speculation_misses > 0) {
    EXPECT_GT(speculation_instants, 0);
  }
}

// --------------------------------------------- multi-run aggregation

TEST(ObsAverageReportsTest, PoolsStageDigestsAndAveragesMetricMaps) {
  // Per-run PipelineStats stage timings used to be dropped by
  // AverageReports; now counters average, stage-time digests pool (true
  // pooled percentiles), metric maps average element-wise over the runs
  // that reported each key, and trace_enabled ORs.
  SimReport a;
  SimReport b;
  a.pipeline.enabled = b.pipeline.enabled = true;
  a.pipeline.windows = 10;
  b.pipeline.windows = 20;
  a.pipeline.speculation_misses = 4;
  b.pipeline.speculation_misses = 6;
  for (int i = 1; i <= 50; ++i) {
    a.pipeline.plan_window_ms.Add(static_cast<double>(i));          // 1..50
    b.pipeline.plan_window_ms.Add(static_cast<double>(50 + i));     // 51..100
  }
  a.metrics["engine.windows"] = 10.0;
  b.metrics["engine.windows"] = 20.0;
  a.metrics["only_in_a"] = 8.0;
  b.trace_enabled = true;

  const SimReport avg = AverageReports({a, b});
  EXPECT_EQ(avg.pipeline.windows, 15);
  EXPECT_EQ(avg.pipeline.speculation_misses, 5);
  EXPECT_TRUE(avg.trace_enabled);
  // Pooled, not averaged: the p50 of 1..100, not a mean of per-run p50s.
  EXPECT_EQ(avg.pipeline.plan_window_ms.count(), 100u);
  EXPECT_NEAR(avg.pipeline.plan_window_ms.Percentile(50), 50.5, 1e-9);
  EXPECT_EQ(avg.metrics.at("engine.windows"), 15.0);
  EXPECT_EQ(avg.metrics.at("only_in_a"), 8.0);  // over reporting runs only
}

// ----------------------------------------------------- report NaN pins

void ExpectFiniteReport(const SimReport& rep) {
  const double fields[] = {
      rep.served_rate,         rep.unified_cost,      rep.total_distance,
      rep.penalty_sum,         rep.avg_response_ms,   rep.p50_response_ms,
      rep.p95_response_ms,     rep.p99_response_ms,   rep.max_response_ms,
      rep.wall_seconds,        rep.mean_pickup_wait_min,
      rep.mean_detour_ratio,   rep.makespan_min,      rep.pipeline.occupancy,
      rep.pipeline.ingest_wait_ms, rep.pipeline.plan_ms, rep.pipeline.commit_ms};
  for (double f : fields) EXPECT_TRUE(std::isfinite(f)) << f;
  for (const auto& [key, value] : rep.metrics) {
    EXPECT_TRUE(std::isfinite(value)) << key;
  }
}

TEST(ObsSimReportTest, ZeroRequestRunHasFiniteRatios) {
  // total_requests == 0 historically produced 0/0 in served_rate and the
  // response-time summaries; every ratio must come out a finite 0.
  const RoadNetwork graph = MakeChengduLike(0.05, 2);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(7);
  const std::vector<Worker> workers = GenerateWorkers(graph, 4, 4.0, &rng);
  const std::vector<Request> requests;  // empty day
  SimOptions options;
  options.collect_metrics = true;
  Simulation sim(&graph, &labels, workers, &requests, options);
  const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));
  EXPECT_EQ(rep.total_requests, 0);
  EXPECT_EQ(rep.served_rate, 0.0);
  EXPECT_EQ(rep.avg_response_ms, 0.0);
  EXPECT_EQ(rep.p99_response_ms, 0.0);
  ExpectFiniteReport(rep);
  // The oracle hit-rate callback gauge guards its 0/0 too.
  ASSERT_EQ(rep.metrics.count("oracle.cache_hit_rate"), 1u);
  EXPECT_EQ(rep.metrics.at("oracle.cache_hit_rate"), 0.0);
}

TEST(ObsSimReportTest, TimedOutPipelinedRunHasFiniteRatios) {
  // A zero wall budget kills the run before anything is planned: zero
  // ingested arrivals, zero processed requests — occupancy and every
  // latency summary must still be finite.
  const RoadNetwork graph = MakeChengduLike(0.05, 5);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(73);
  RequestParams rp;
  rp.count = 120;
  rp.duration_min = 90.0;
  rp.penalty_factor = 10.0;
  rp.seed = 79;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 8, 4.0, &rng);
  SimOptions options;
  options.num_threads = 2;
  options.batch_window_s = 6.0;
  options.pipeline = true;
  options.ingest_capacity = 4;
  options.wall_limit_seconds = 0.0;
  options.collect_metrics = true;
  Simulation sim(&graph, &labels, workers, &requests, options);
  const SimReport rep = sim.Run(MakeDispatchWindowFactory({}));
  EXPECT_TRUE(rep.timed_out);
  EXPECT_EQ(rep.processed_requests, 0);
  ExpectFiniteReport(rep);
}

}  // namespace
}  // namespace urpsm
