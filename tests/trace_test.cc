#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/shortest/oracle.h"
#include "src/workload/city.h"
#include "src/workload/trace.h"
#include "src/util/rng.h"

namespace urpsm {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : graph_(MakeChengduLike(0.04, 4)), oracle_(&graph_) {}
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<TripRecord> MakeTrips(int n) {
    Rng rng(8);
    Point lo, hi;
    graph_.BoundingBox(&lo, &hi);
    std::vector<TripRecord> trips;
    for (int i = 0; i < n; ++i) {
      TripRecord t;
      t.release_min = rng.Uniform(0, 600);
      t.pickup = {rng.Uniform(lo.x, hi.x), rng.Uniform(lo.y, hi.y)};
      t.dropoff = {rng.Uniform(lo.x, hi.x), rng.Uniform(lo.y, hi.y)};
      t.passengers = rng.UniformInt(1, 4);
      trips.push_back(t);
    }
    return trips;
  }

  RoadNetwork graph_;
  DijkstraOracle oracle_;
  std::string path_ = ::testing::TempDir() + "/urpsm_trips.csv";
};

TEST_F(TraceTest, CsvRoundTrip) {
  const auto trips = MakeTrips(50);
  ASSERT_TRUE(SaveTripCsv(trips, path_));
  std::vector<TripRecord> loaded;
  ASSERT_TRUE(LoadTripCsv(path_, &loaded));
  ASSERT_EQ(loaded.size(), trips.size());
  for (std::size_t i = 0; i < trips.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].release_min, trips[i].release_min);
    EXPECT_DOUBLE_EQ(loaded[i].pickup.x, trips[i].pickup.x);
    EXPECT_DOUBLE_EQ(loaded[i].dropoff.y, trips[i].dropoff.y);
    EXPECT_EQ(loaded[i].passengers, trips[i].passengers);
  }
}

TEST_F(TraceTest, LoadRejectsMissingAndMalformed) {
  std::vector<TripRecord> out;
  EXPECT_FALSE(LoadTripCsv(path_ + ".missing", &out));
  std::ofstream(path_) << "header\n1,2,3\n";  // wrong arity
  EXPECT_FALSE(LoadTripCsv(path_, &out));
}

TEST_F(TraceTest, NearestVertexIndexMatchesLinearScan) {
  const NearestVertexIndex index(graph_);
  Rng rng(9);
  Point lo, hi;
  graph_.BoundingBox(&lo, &hi);
  for (int i = 0; i < 100; ++i) {
    // Include points outside the bounding box.
    const Point p{rng.Uniform(lo.x - 2, hi.x + 2),
                  rng.Uniform(lo.y - 2, hi.y + 2)};
    const VertexId fast = index.Nearest(p);
    const VertexId slow = graph_.NearestVertex(p);
    // Ties are possible; distances must match exactly.
    EXPECT_DOUBLE_EQ(EuclideanDistance(graph_.coord(fast), p),
                     EuclideanDistance(graph_.coord(slow), p));
  }
}

TEST_F(TraceTest, RequestsFromTripsMapsAndSorts) {
  const auto trips = MakeTrips(80);
  const auto requests =
      RequestsFromTrips(graph_, trips, /*deadline=*/12.0, /*penalty=*/10.0,
                        &oracle_);
  ASSERT_FALSE(requests.empty());
  ASSERT_LE(requests.size(), trips.size());
  double prev = -1.0;
  const NearestVertexIndex index(graph_);
  for (const Request& r : requests) {
    EXPECT_EQ(r.id, &r - requests.data());
    EXPECT_GE(r.release_time, prev);
    prev = r.release_time;
    EXPECT_NE(r.origin, r.destination);
    EXPECT_NEAR(r.deadline - r.release_time, 12.0, 1e-12);
    EXPECT_NEAR(r.penalty, 10.0 * oracle_.Distance(r.origin, r.destination),
                1e-9);
  }
}

TEST_F(TraceTest, DegenerateTripsDropped) {
  // Both endpoints at the same coordinate map to one vertex -> dropped.
  std::vector<TripRecord> trips = {{10.0, graph_.coord(5), graph_.coord(5), 1}};
  const auto requests =
      RequestsFromTrips(graph_, trips, 10.0, 10.0, &oracle_);
  EXPECT_TRUE(requests.empty());
}

}  // namespace
}  // namespace urpsm
