#include <gtest/gtest.h>

#include "src/core/objective.h"
#include "src/core/urpsm.h"
#include "src/graph/builders.h"
#include "src/shortest/oracle.h"

namespace urpsm {
namespace {

std::vector<Request> ThreeRequests() {
  std::vector<Request> rs(3);
  for (int i = 0; i < 3; ++i) {
    rs[static_cast<std::size_t>(i)].id = i;
    rs[static_cast<std::size_t>(i)].origin = i;
    rs[static_cast<std::size_t>(i)].destination = i + 2;
    rs[static_cast<std::size_t>(i)].penalty = 5.0;
  }
  return rs;
}

TEST(ObjectiveTest, UnifiedCostFormula) {
  EXPECT_DOUBLE_EQ(UnifiedCost(1.0, 100.0, 20.0), 120.0);
  EXPECT_DOUBLE_EQ(UnifiedCost(0.0, 100.0, 20.0), 20.0);
  EXPECT_DOUBLE_EQ(UnifiedCost(2.5, 10.0, 0.0), 25.0);
}

TEST(ObjectiveTest, PresetAlphas) {
  EXPECT_DOUBLE_EQ(Objective::MinTotalDistance().alpha, 1.0);
  EXPECT_DOUBLE_EQ(Objective::MaxServedCount().alpha, 0.0);
  EXPECT_DOUBLE_EQ(Objective::MaxRevenue(0.3).alpha, 0.3);
}

TEST(ObjectiveTest, PenaltyRewrites) {
  auto rs = ThreeRequests();
  SetServeAllPenalties(&rs);
  for (const Request& r : rs) EXPECT_DOUBLE_EQ(r.penalty, kServeAllPenalty);
  SetUnitPenalties(&rs);
  for (const Request& r : rs) EXPECT_DOUBLE_EQ(r.penalty, 1.0);
  ScalePenalties(&rs, 4.0);
  for (const Request& r : rs) EXPECT_DOUBLE_EQ(r.penalty, 4.0);
}

TEST(ObjectiveTest, RevenuePenaltiesUseShortestDistance) {
  const RoadNetwork g = MakePathGraph(8, 1.0);
  DijkstraOracle oracle(&g);
  auto rs = ThreeRequests();
  SetRevenuePenalties(&rs, 2.0, &oracle);
  for (const Request& r : rs) {
    EXPECT_DOUBLE_EQ(r.penalty,
                     2.0 * oracle.Distance(r.origin, r.destination));
  }
}

TEST(ObjectiveTest, RevenueIdentityEquation4) {
  // Eq. (4): revenue = c_r * sum_R dis(o,d) - UC when alpha = c_w and
  // p_r = c_r * dis(o_r, d_r).
  const RoadNetwork g = MakePathGraph(10, 1.0);
  DijkstraOracle oracle(&g);
  const double cr = 2.0, cw = 0.5;
  auto rs = ThreeRequests();
  SetRevenuePenalties(&rs, cr, &oracle);

  // Suppose requests 0 and 2 are served with some total distance D.
  std::vector<bool> served = {true, false, true};
  const double total_distance = 7.25;

  double penalty_sum = 0.0;
  double all_fares = 0.0;
  for (const Request& r : rs) {
    all_fares += cr * oracle.Distance(r.origin, r.destination);
    if (!served[static_cast<std::size_t>(r.id)]) penalty_sum += r.penalty;
  }
  const double uc = UnifiedCost(cw, total_distance, penalty_sum);
  const double revenue =
      Revenue(rs, served, total_distance, cr, cw, &oracle);
  EXPECT_NEAR(revenue, all_fares - uc, 1e-9);
}

TEST(ObjectiveTest, InstanceValidation) {
  Instance inst;
  EXPECT_EQ(ValidateInstance(inst), "empty road network");
  inst.graph = MakePathGraph(5, 1.0);
  EXPECT_EQ(ValidateInstance(inst), "");  // no workers/requests is fine

  inst.workers.push_back({0, 2, 4});
  EXPECT_EQ(ValidateInstance(inst), "");
  inst.workers.push_back({5, 2, 4});  // id not dense
  EXPECT_NE(ValidateInstance(inst), "");
  inst.workers.pop_back();

  Request r;
  r.id = 0;
  r.origin = 1;
  r.destination = 3;
  r.release_time = 5.0;
  r.deadline = 15.0;
  r.penalty = 1.0;
  inst.requests.push_back(r);
  EXPECT_EQ(ValidateInstance(inst), "");

  inst.requests[0].deadline = 2.0;  // before release
  EXPECT_NE(ValidateInstance(inst), "");
  inst.requests[0].deadline = 15.0;
  inst.requests[0].origin = 99;  // out of range
  EXPECT_NE(ValidateInstance(inst), "");
}

}  // namespace
}  // namespace urpsm
