#include <gtest/gtest.h>

#include <set>

#include "src/shortest/dijkstra.h"
#include "src/shortest/oracle.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"

namespace urpsm {
namespace {

TEST(CityTest, DimensionsAndConnectivity) {
  CityParams p;
  p.rows = 20;
  p.cols = 25;
  p.dropout = 0.08;
  const RoadNetwork g = MakeCity(p);
  EXPECT_EQ(g.num_vertices(), 500);
  // Connectivity: every vertex reachable from vertex 0.
  const auto dist = DijkstraAll(g, 0);
  for (double d : dist) EXPECT_LT(d, kInfDistance);
}

TEST(CityTest, HasAllRoadClasses) {
  CityParams p;
  p.rows = 30;
  p.cols = 30;
  const RoadNetwork g = MakeCity(p);
  std::set<RoadClass> classes;
  for (const EdgeSpec& e : g.edges()) classes.insert(e.cls);
  EXPECT_TRUE(classes.contains(RoadClass::kMotorway));
  EXPECT_TRUE(classes.contains(RoadClass::kPrimary));
  EXPECT_TRUE(classes.contains(RoadClass::kResidential));
}

TEST(CityTest, EdgeLengthsRespectEuclideanLowerBound) {
  CityParams p;
  p.rows = 15;
  p.cols = 15;
  const RoadNetwork g = MakeCity(p);
  for (const EdgeSpec& e : g.edges()) {
    EXPECT_GE(e.length_km, g.EuclideanKm(e.u, e.v) - 1e-12);
  }
}

TEST(CityTest, DeterministicForSeed) {
  CityParams p;
  p.rows = 12;
  p.cols = 12;
  p.seed = 77;
  const RoadNetwork a = MakeCity(p);
  const RoadNetwork b = MakeCity(p);
  ASSERT_EQ(a.edges().size(), b.edges().size());
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].u, b.edges()[i].u);
    EXPECT_DOUBLE_EQ(a.edges()[i].length_km, b.edges()[i].length_km);
  }
}

TEST(CityTest, NycLargerThanChengdu) {
  // Table 4's relative scale must be preserved by the substitution.
  const RoadNetwork nyc = MakeNycLike(0.05);
  const RoadNetwork chengdu = MakeChengduLike(0.05);
  EXPECT_GT(nyc.num_vertices(), chengdu.num_vertices());
  EXPECT_GT(nyc.num_undirected_edges(), chengdu.num_undirected_edges());
}

class RequestGenTest : public ::testing::Test {
 protected:
  RequestGenTest()
      : graph_(MakeNycLike(0.02, 3)), oracle_(&graph_), rng_(123) {}
  RoadNetwork graph_;
  DijkstraOracle oracle_;
  Rng rng_;
};

TEST_F(RequestGenTest, BasicInvariants) {
  RequestParams p;
  p.count = 500;
  auto rs = GenerateRequests(graph_, p, &oracle_, &rng_);
  ASSERT_EQ(rs.size(), 500u);
  double prev = -1.0;
  for (const Request& r : rs) {
    EXPECT_EQ(r.id, &r - rs.data());  // dense ids in sorted order
    EXPECT_GE(r.release_time, prev);
    prev = r.release_time;
    EXPECT_NE(r.origin, r.destination);
    EXPECT_GE(r.origin, 0);
    EXPECT_LT(r.origin, graph_.num_vertices());
    EXPECT_NEAR(r.deadline - r.release_time, p.deadline_offset_min, 1e-9);
    EXPECT_GE(r.capacity, 1);
    EXPECT_LE(r.capacity, 6);
    EXPECT_NEAR(r.penalty,
                p.penalty_factor * oracle_.Distance(r.origin, r.destination),
                1e-9);
  }
}

TEST_F(RequestGenTest, CapacityDistributionMostlySingles) {
  RequestParams p;
  p.count = 2000;
  auto rs = GenerateRequests(graph_, p, &oracle_, &rng_);
  int singles = 0;
  for (const Request& r : rs) singles += (r.capacity == 1);
  // NYC TLC: ~72% single-passenger trips.
  EXPECT_NEAR(singles / 2000.0, 0.72, 0.05);
}

TEST_F(RequestGenTest, RushHourConcentration) {
  RequestParams p;
  p.count = 4000;
  p.rush_fraction = 0.8;
  auto rs = GenerateRequests(graph_, p, &oracle_, &rng_);
  int in_peaks = 0;
  for (const Request& r : rs) {
    const double t = r.release_time;
    if ((t > 7.0 * 60 && t < 10.0 * 60) || (t > 16.5 * 60 && t < 19.5 * 60)) {
      ++in_peaks;
    }
  }
  // Peak windows are ~25% of the day but must hold well over half the
  // trips at rush_fraction 0.8.
  EXPECT_GT(in_peaks / 4000.0, 0.55);
}

TEST_F(RequestGenTest, HotspotsConcentrateDemand) {
  RequestParams p;
  p.count = 3000;
  p.uniform_fraction = 0.0;
  p.hotspot_count = 2;
  p.hotspot_stddev_km = 0.8;
  auto rs = GenerateRequests(graph_, p, &oracle_, &rng_);
  // With 2 tight hotspots and no uniform component, distinct origin count
  // must be far below the request count.
  std::set<VertexId> origins;
  for (const Request& r : rs) origins.insert(r.origin);
  EXPECT_LT(origins.size(), 900u);
}

TEST_F(RequestGenTest, SweepHelpers) {
  RequestParams p;
  p.count = 50;
  auto rs = GenerateRequests(graph_, p, &oracle_, &rng_);
  SetDeadlineOffsets(&rs, 25.0);
  for (const Request& r : rs) {
    EXPECT_NEAR(r.deadline - r.release_time, 25.0, 1e-12);
  }
  SetPenaltyFactors(&rs, 30.0, &oracle_);
  for (const Request& r : rs) {
    EXPECT_NEAR(r.penalty, 30.0 * oracle_.Distance(r.origin, r.destination),
                1e-9);
  }
}

TEST_F(RequestGenTest, WorkersWithinGraphAndCapacityMean) {
  auto ws = GenerateWorkers(graph_, 300, 4.0, &rng_);
  ASSERT_EQ(ws.size(), 300u);
  double mean = 0.0;
  for (const Worker& w : ws) {
    EXPECT_GE(w.initial_location, 0);
    EXPECT_LT(w.initial_location, graph_.num_vertices());
    EXPECT_GE(w.capacity, 1);
    mean += w.capacity;
  }
  EXPECT_NEAR(mean / 300.0, 4.0, 0.3);
}

TEST(VertexSamplerTest, SampleNearReturnsCloseVertex) {
  const RoadNetwork g = MakeNycLike(0.02, 9);
  VertexSampler sampler(g);
  Rng rng(5);
  const Point target = g.coord(g.num_vertices() / 2);
  for (int i = 0; i < 50; ++i) {
    const VertexId v = sampler.SampleNear(target, &rng);
    EXPECT_LT(EuclideanDistance(g.coord(v), target), 3.0);
  }
}

}  // namespace
}  // namespace urpsm
