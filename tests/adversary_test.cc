#include <gtest/gtest.h>

#include "src/core/objective.h"
#include "src/sim/simulator.h"
#include "src/workload/adversary.h"

namespace urpsm {
namespace {

TEST(AdversaryTest, InstanceShape) {
  Rng rng(1);
  const Instance inst =
      MakeCycleAdversary(16, AdversaryLemma::kMaxServed, 0.5, &rng);
  EXPECT_EQ(ValidateInstance(inst), "");
  EXPECT_EQ(inst.graph.num_vertices(), 16);
  ASSERT_EQ(inst.workers.size(), 1u);
  EXPECT_EQ(inst.workers[0].capacity, 2);
  ASSERT_EQ(inst.requests.size(), 1u);
  EXPECT_DOUBLE_EQ(inst.requests[0].release_time, 16.0);
  EXPECT_DOUBLE_EQ(inst.requests[0].penalty, 1.0);
}

TEST(AdversaryTest, LemmaVariantsDifferInPenalty) {
  Rng rng(2);
  const Instance served =
      MakeCycleAdversary(16, AdversaryLemma::kMaxServed, 0.5, &rng);
  Rng rng2(2);
  const Instance dist =
      MakeCycleAdversary(16, AdversaryLemma::kMinDistance, 0.5, &rng2);
  Rng rng3(2);
  const Instance rev =
      MakeCycleAdversary(16, AdversaryLemma::kMaxRevenue, 0.5, &rng3);
  EXPECT_DOUBLE_EQ(served.requests[0].penalty, 1.0);
  EXPECT_DOUBLE_EQ(dist.requests[0].penalty, kServeAllPenalty);
  EXPECT_DOUBLE_EQ(rev.requests[0].penalty, 2.5 * 8.0);
  // Revenue variant: trip spans half the cycle.
  EXPECT_EQ(rev.requests[0].destination,
            (rev.requests[0].origin + 8) % 16);
}

TEST(AdversaryTest, OfflineOptimumAlwaysServes) {
  // A worker pre-positioned at the (known-in-hindsight) origin serves the
  // request: with release at |V| and the cycle traversable in |V| time,
  // the offline optimum has unserved count 0 for every draw.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    Instance inst =
        MakeCycleAdversary(20, AdversaryLemma::kMaxServed, 0.5, &rng);
    // Omniscient repositioning: start the worker at the future origin.
    inst.workers[0].initial_location = inst.requests[0].origin;
    DijkstraOracle oracle(&inst.graph);
    SimOptions options;
    options.alpha = 0.0;
    Simulation sim(&inst.graph, &oracle, inst.workers, &inst.requests,
                   options);
    const SimReport rep = sim.Run(MakePruneGreedyDpFactory(
        PlannerConfig{.alpha = 0.0}));
    EXPECT_EQ(rep.served_requests, 1) << "seed " << seed;
  }
}

TEST(AdversaryTest, OnlineAlgorithmServesRarely) {
  // Any online algorithm leaves the worker at a fixed position while the
  // adversary draws the origin uniformly: served probability <= ~2/|V|.
  const int kVertices = 20;
  int served = 0;
  const int kTrials = 200;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    Rng rng(seed);
    const Instance inst =
        MakeCycleAdversary(kVertices, AdversaryLemma::kMaxServed, 0.5, &rng);
    DijkstraOracle oracle(&inst.graph);
    SimOptions options;
    options.alpha = 0.0;
    Simulation sim(&inst.graph, &oracle, inst.workers, &inst.requests,
                   options);
    const SimReport rep = sim.Run(MakePruneGreedyDpFactory(
        PlannerConfig{.alpha = 0.0}));
    served += rep.served_requests;
  }
  const double serve_rate = static_cast<double>(served) / kTrials;
  // Lemma 1: expected unserved >= 1 - 2/|V|; allow sampling slack.
  EXPECT_LE(serve_rate, 2.0 / kVertices + 0.08);
  EXPECT_GE(1.0 - serve_rate, AdversaryUnservedLowerBound(kVertices) - 0.08);
}

TEST(AdversaryTest, UnservedLowerBoundFormula) {
  EXPECT_DOUBLE_EQ(AdversaryUnservedLowerBound(4), 0.5);
  EXPECT_DOUBLE_EQ(AdversaryUnservedLowerBound(100), 0.98);
}

}  // namespace
}  // namespace urpsm
