#include <gtest/gtest.h>

#include "src/core/offline.h"
#include "src/core/planner.h"
#include "src/sim/simulator.h"
#include "src/workload/adversary.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

class OfflineTest : public ::testing::Test {
 protected:
  OfflineTest() : env_(MakePathGraph(10, 1.0)) {}
  double EdgeMin() const {
    return 1.0 / SpeedKmPerMin(RoadClass::kResidential);
  }
  TestEnv env_;
};

TEST_F(OfflineTest, EmptyInstanceCostsNothing) {
  std::vector<Worker> workers = {{0, 0, 4}};
  const OfflineSolution sol =
      SolveOffline(workers, env_.requests(), 1.0, env_.ctx());
  EXPECT_DOUBLE_EQ(sol.unified_cost, 0.0);
  EXPECT_EQ(sol.served, 0);
}

TEST_F(OfflineTest, SingleRequestServedWhenCheap) {
  const double e = EdgeMin();
  env_.AddRequest(2, 5, 0.0, 100.0, /*penalty=*/100.0);
  std::vector<Worker> workers = {{0, 0, 4}};
  const OfflineSolution sol =
      SolveOffline(workers, env_.requests(), 1.0, env_.ctx());
  EXPECT_EQ(sol.served, 1);
  EXPECT_NEAR(sol.unified_cost, 5 * e, 1e-9);  // drive 0->2->5
  EXPECT_EQ(sol.assignment[0], 0);
}

TEST_F(OfflineTest, SingleRequestRejectedWhenPenaltyCheap) {
  env_.AddRequest(2, 5, 0.0, 100.0, /*penalty=*/1e-3);
  std::vector<Worker> workers = {{0, 9, 4}};  // far away
  const OfflineSolution sol =
      SolveOffline(workers, env_.requests(), 1.0, env_.ctx());
  EXPECT_EQ(sol.served, 0);
  EXPECT_NEAR(sol.unified_cost, 1e-3, 1e-12);
}

TEST_F(OfflineTest, WaitingForReleaseIsFree) {
  // Request releases late; worker sits at its origin. Cost must be the
  // pure trip, not the wait.
  const double e = EdgeMin();
  env_.AddRequest(0, 3, /*release=*/50.0, /*deadline=*/50.0 + 4 * e, 100.0);
  std::vector<Worker> workers = {{0, 0, 4}};
  const OfflineSolution sol =
      SolveOffline(workers, env_.requests(), 1.0, env_.ctx());
  EXPECT_EQ(sol.served, 1);
  EXPECT_NEAR(sol.total_distance, 3 * e, 1e-9);
}

TEST_F(OfflineTest, PoolsWhenBeneficial) {
  // Two overlapping trips along the path: one vehicle can carry both.
  env_.AddRequest(1, 6, 0.0, 1e9, 1e6);
  env_.AddRequest(2, 5, 0.0, 1e9, 1e6);
  std::vector<Worker> workers = {{0, 0, 4}};
  const OfflineSolution sol =
      SolveOffline(workers, env_.requests(), 1.0, env_.ctx());
  EXPECT_EQ(sol.served, 2);
  // Optimal: 0->1->2->5->6 = 6 edges.
  EXPECT_NEAR(sol.total_distance, 6 * EdgeMin(), 1e-9);
}

TEST_F(OfflineTest, CapacityForbidsPooling) {
  env_.AddRequest(1, 6, 0.0, 1e9, 1e6);
  env_.AddRequest(2, 5, 0.0, 1e9, 1e6);
  std::vector<Worker> workers = {{0, 0, 1}};  // one passenger at a time
  const OfflineSolution sol =
      SolveOffline(workers, env_.requests(), 1.0, env_.ctx());
  EXPECT_EQ(sol.served, 2);
  // Must serve sequentially: 0->1->6 then back 6->2... optimal order is
  // 0->2->5->... wait release times are 0; best: 0->1? Let the solver
  // decide — just assert it is strictly worse than the pooled 6 edges.
  EXPECT_GT(sol.total_distance, 6 * EdgeMin() + 1e-9);
}

TEST_F(OfflineTest, BestRouteCostInfeasibleOnImpossibleDeadline) {
  const double e = EdgeMin();
  const Request r = env_.AddRequest(2, 9, 0.0, 3 * e, 10.0);  // needs 9e
  std::vector<RequestId> set = {r.id};
  EXPECT_EQ(BestRouteCost({0, 0, 4}, set, env_.ctx()), kInf);
}

TEST_F(OfflineTest, TwoWorkersSplitLoad) {
  const double e = EdgeMin();
  // Opposite-direction trips: each worker should take one.
  env_.AddRequest(1, 3, 0.0, 4 * e, 1e6);
  env_.AddRequest(8, 6, 0.0, 4 * e, 1e6);
  std::vector<Worker> workers = {{0, 0, 4}, {1, 9, 4}};
  const OfflineSolution sol =
      SolveOffline(workers, env_.requests(), 1.0, env_.ctx());
  EXPECT_EQ(sol.served, 2);
  EXPECT_EQ(sol.assignment[0], 0);
  EXPECT_EQ(sol.assignment[1], 1);
  EXPECT_NEAR(sol.total_distance, (3 + 3) * e, 1e-9);
}

/// The clairvoyant optimum lower-bounds every online planner.
TEST(OfflineBoundTest, OfflineNeverWorseThanOnlineGreedy) {
  for (std::uint64_t seed : {3u, 7u, 13u, 19u}) {
    const RoadNetwork g = MakeChengduLike(0.02, seed);
    DijkstraOracle oracle(&g);
    Rng rng(seed);
    std::vector<Worker> workers = GenerateWorkers(g, 2, 3.0, &rng);
    RequestParams rp;
    rp.count = 6;
    rp.duration_min = 30.0;
    rp.deadline_offset_min = 15.0;
    rp.seed = seed;
    std::vector<Request> requests = GenerateRequests(g, rp, &oracle, &rng);

    PlanningContext ctx(&g, &oracle, &requests);
    const OfflineSolution opt = SolveOffline(workers, requests, 1.0, &ctx);

    Simulation sim(&g, &oracle, workers, &requests, SimOptions{});
    const SimReport online = sim.Run(MakePruneGreedyDpFactory({}));
    EXPECT_LE(opt.unified_cost, online.unified_cost + 1e-6) << "seed " << seed;
  }
}

TEST(OfflineBoundTest, OfflineServesAdversaryRequestAlways) {
  // Lemma 1's key fact: E[OPT unserved] = 0 — the clairvoyant solver
  // always serves the cycle-adversary request.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    Instance inst =
        MakeCycleAdversary(12, AdversaryLemma::kMaxServed, 0.5, &rng);
    // Offline knows the request: it can pre-position during [0, |V|].
    // Our solver models free waiting *at* the pickup vertex, which is the
    // same power here.
    DijkstraOracle oracle(&inst.graph);
    PlanningContext ctx(&inst.graph, &oracle, &inst.requests);
    const OfflineSolution sol =
        SolveOffline(inst.workers, inst.requests, 0.0, &ctx);
    EXPECT_EQ(sol.served, 1) << "seed " << seed;
  }
}

}  // namespace
}  // namespace urpsm
