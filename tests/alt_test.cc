#include <gtest/gtest.h>

#include "src/graph/builders.h"
#include "src/shortest/alt.h"
#include "src/shortest/dijkstra.h"
#include "src/util/rng.h"
#include "src/workload/city.h"

namespace urpsm {
namespace {

TEST(AltTest, PathGraphDistances) {
  const RoadNetwork g = MakePathGraph(7, 1.0);
  AltOracle alt = AltOracle::Build(g, 3);
  const double e = 1.0 / SpeedKmPerMin(RoadClass::kResidential);
  EXPECT_NEAR(alt.Distance(0, 6), 6 * e, 1e-12);
  EXPECT_NEAR(alt.Distance(4, 1), 3 * e, 1e-12);
  EXPECT_DOUBLE_EQ(alt.Distance(2, 2), 0.0);
}

TEST(AltTest, HeuristicIsAdmissible) {
  Rng rng(3);
  const RoadNetwork g = MakeRandomGeometricGraph(80, 8.0, 3, &rng);
  AltOracle alt = AltOracle::Build(g, 6);
  for (int trial = 0; trial < 100; ++trial) {
    const VertexId v = rng.UniformInt(0, g.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, g.num_vertices() - 1);
    EXPECT_LE(alt.Heuristic(v, t), DijkstraDistance(g, v, t) + 1e-9);
  }
}

TEST(AltTest, MatchesDijkstraOnCity) {
  CityParams p;
  p.rows = 13;
  p.cols = 13;
  const RoadNetwork g = MakeCity(p);
  AltOracle alt = AltOracle::Build(g, 8);
  Rng rng(5);
  for (int trial = 0; trial < 150; ++trial) {
    const VertexId s = rng.UniformInt(0, g.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, g.num_vertices() - 1);
    EXPECT_NEAR(alt.Distance(s, t), DijkstraDistance(g, s, t), 1e-9)
        << s << "->" << t;
  }
}

TEST(AltTest, PathValidAndTight) {
  const RoadNetwork g = MakeGridGraph(8, 8, 0.9);
  AltOracle alt = AltOracle::Build(g, 4);
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const VertexId s = rng.UniformInt(0, 63);
    const VertexId t = rng.UniformInt(0, 63);
    const auto path = alt.Path(s, t);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    double cost = 0.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      double leg = kInfDistance;
      for (const auto& arc : g.Neighbors(path[i])) {
        if (arc.to == path[i + 1]) leg = std::min(leg, arc.cost);
      }
      ASSERT_LT(leg, kInfDistance);
      cost += leg;
    }
    EXPECT_NEAR(cost, DijkstraDistance(g, s, t), 1e-9);
  }
}

TEST(AltTest, DisconnectedIsInfinite) {
  std::vector<Point> coords = {{0, 0}, {1, 0}, {5, 5}, {6, 5}};
  std::vector<EdgeSpec> edges = {{0, 1, 1.0, RoadClass::kResidential},
                                 {2, 3, 1.0, RoadClass::kResidential}};
  const RoadNetwork g = RoadNetwork::FromEdges(coords, edges);
  AltOracle alt = AltOracle::Build(g, 4);
  EXPECT_EQ(alt.Distance(0, 3), kInfDistance);
  EXPECT_TRUE(alt.Path(0, 3).empty());
}

TEST(AltTest, LandmarksAreDistinctAndCounted) {
  const RoadNetwork g = MakeGridGraph(10, 10, 1.0);
  AltOracle alt = AltOracle::Build(g, 6);
  EXPECT_EQ(alt.num_landmarks(), 6);
  for (std::size_t i = 0; i < alt.landmarks().size(); ++i) {
    for (std::size_t j = i + 1; j < alt.landmarks().size(); ++j) {
      EXPECT_NE(alt.landmarks()[i], alt.landmarks()[j]);
    }
  }
  EXPECT_GT(alt.MemoryBytes(), 0);
}

}  // namespace
}  // namespace urpsm
