// Tests for the batched dispatch-window engine: FleetShards partitioning,
// window = 0 bit-identity with sequential pruneGreedyDP at every thread
// count, thread-count determinism of real windows, per-window invariant
// checks on accept- and rejection-heavy workloads, and a shard-conflict
// fuzz driving concurrent Touch/ApplyInsertion on contended workers
// (run under tsan by the tsan preset).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/parallel/fleet_shards.h"
#include "src/shortest/hub_labels.h"
#include "src/sim/dispatch_window.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

// ---------------------------------------------------------------- shards

TEST(FleetShardsTest, EveryWorkerInExactlyOneShard) {
  const RoadNetwork graph = MakeChengduLike(0.05, 3);
  Rng rng(9);
  const std::vector<Worker> workers = GenerateWorkers(graph, 37, 4.0, &rng);
  Fleet fleet(workers, &graph);
  Point lo, hi;
  graph.BoundingBox(&lo, &hi);
  FleetShards shards(&fleet, lo, hi, 4.0, 8);
  ASSERT_EQ(shards.num_shards(), 8);
  int total = 0;
  for (int s = 0; s < shards.num_shards(); ++s) {
    for (const WorkerId w : shards.workers_in(s)) {
      EXPECT_EQ(shards.ShardOf(w), s);
      ++total;
    }
  }
  EXPECT_EQ(total, fleet.size());
  // Shard of a worker matches the shard of its anchor region.
  for (WorkerId w = 0; w < fleet.size(); ++w) {
    EXPECT_EQ(shards.ShardOf(w), shards.ShardOfPoint(fleet.anchor_point(w)));
  }
}

TEST(FleetShardsTest, RebuildTracksAnchorMovement) {
  TestEnv env(MakeGridGraph(12, 12, 1.0));
  std::vector<Worker> workers = {{0, 0, 4}};
  Fleet fleet(workers, &env.graph());
  Point lo, hi;
  env.graph().BoundingBox(&lo, &hi);
  FleetShards shards(&fleet, lo, hi, /*region_km=*/2.0, 16);
  const int before = shards.ShardOf(0);
  // Drive the worker across the map; shard follows after Rebuild.
  const Request r = env.AddRequest(0, 143, 0.0, 1e9);
  fleet.ApplyInsertion(0, r, 0, 0, env.oracle());
  fleet.FinishAll();
  shards.Rebuild();
  EXPECT_EQ(shards.ShardOf(0), shards.ShardOfPoint(fleet.anchor_point(0)));
  EXPECT_NE(shards.ShardOf(0), before);  // corner -> far corner region
}

// ----------------------------------------------- window=0 bit-identity

struct WorkloadRun {
  SimReport report;
  std::vector<bool> served;
};

WorkloadRun RunOnce(const RoadNetwork& graph, DistanceOracle* oracle,
                    const std::vector<Worker>& workers,
                    const std::vector<Request>& requests,
                    const PlannerFactory& factory, int num_threads,
                    double batch_window_s = 0.0) {
  SimOptions options;
  options.num_threads = num_threads;
  options.batch_window_s = batch_window_s;
  Simulation sim(&graph, oracle, workers, &requests, options);
  WorkloadRun run;
  run.report = sim.Run(factory);
  run.served = sim.served();
  return run;
}

// Bit-identical on every deterministic field (wall-clock response-time
// stats are inherently run-dependent and excluded).
void ExpectIdentical(const WorkloadRun& a, const WorkloadRun& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.report.served_requests, b.report.served_requests);
  EXPECT_EQ(a.report.unified_cost, b.report.unified_cost);
  EXPECT_EQ(a.report.total_distance, b.report.total_distance);
  EXPECT_EQ(a.report.penalty_sum, b.report.penalty_sum);
  EXPECT_EQ(a.report.mean_pickup_wait_min, b.report.mean_pickup_wait_min);
  EXPECT_EQ(a.report.mean_detour_ratio, b.report.mean_detour_ratio);
  EXPECT_EQ(a.report.makespan_min, b.report.makespan_min);
  EXPECT_EQ(a.served, b.served);
}

class DispatchWindowDeterminismTest : public ::testing::TestWithParam<double> {
};

TEST_P(DispatchWindowDeterminismTest, WindowZeroBitIdenticalToSequential) {
  const double penalty_factor = GetParam();
  const RoadNetwork graph = MakeChengduLike(0.05, 2);
  HubLabelOracle labels = HubLabelOracle::Build(graph);

  Rng rng(17);
  RequestParams rp;
  rp.count = 260;
  rp.duration_min = 240.0;
  rp.penalty_factor = penalty_factor;
  rp.seed = 23;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 14, 4.0, &rng);

  const PlannerConfig config;  // pruning on
  const WorkloadRun sequential = RunOnce(graph, &labels, workers, requests,
                                         MakePruneGreedyDpFactory(config), 1);
  ASSERT_GT(sequential.report.served_requests, 0);
  if (penalty_factor < 5.0) {
    ASSERT_LT(sequential.report.served_requests,
              sequential.report.total_requests);
  }

  // The acceptance bar: batch_window_s = 0 reproduces the sequential
  // pruneGreedyDP run exactly, for every thread count.
  for (int threads : {1, 2, 4, 8}) {
    const WorkloadRun windowed =
        RunOnce(graph, &labels, workers, requests,
                MakeDispatchWindowFactory(config), threads,
                /*batch_window_s=*/0.0);
    ExpectIdentical(sequential, windowed,
                    "window=0 threads=" + std::to_string(threads));
  }
}

TEST_P(DispatchWindowDeterminismTest, RealWindowsThreadCountIndependent) {
  const double penalty_factor = GetParam();
  const RoadNetwork graph = MakeChengduLike(0.05, 2);
  HubLabelOracle labels = HubLabelOracle::Build(graph);

  Rng rng(19);
  RequestParams rp;
  rp.count = 220;
  rp.duration_min = 200.0;
  rp.penalty_factor = penalty_factor;
  rp.seed = 29;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 12, 4.0, &rng);

  const PlannerConfig config;
  for (double window_s : {2.0, 15.0}) {
    const WorkloadRun base =
        RunOnce(graph, &labels, workers, requests,
                MakeDispatchWindowFactory(config), 1, window_s);
    ASSERT_GT(base.report.served_requests, 0);
    for (int threads : {2, 4, 8}) {
      const WorkloadRun run =
          RunOnce(graph, &labels, workers, requests,
                  MakeDispatchWindowFactory(config), threads, window_s);
      ExpectIdentical(base, run, "window=" + std::to_string(window_s) +
                                     " threads=" + std::to_string(threads));
      // The task decomposition is structural, so even the distance-query
      // count must not depend on the pool size.
      EXPECT_EQ(base.report.distance_queries, run.report.distance_queries);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, DispatchWindowDeterminismTest,
                         ::testing::Values(10.0,   // default penalties
                                           1.7,    // rejection-heavy
                                           30.0),  // accept-heavy
                         [](const ::testing::TestParamInfo<double>& info) {
                           if (info.param < 5.0) return "RejectionHeavy";
                           return info.param > 20.0 ? "AcceptHeavy"
                                                    : "DefaultPenalties";
                         });

// -------------------------------------------- per-window invariants

// Drives the engine window by window by hand and verifies the fleet
// invariants after every OnBatch — the mid-run mode tolerates passengers
// still on board and assignments whose drop-off is pending.
void CheckInvariantsAfterEveryWindow(double penalty_factor) {
  const RoadNetwork graph = MakeChengduLike(0.05, 4);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(31);
  RequestParams rp;
  rp.count = 180;
  rp.duration_min = 180.0;
  rp.penalty_factor = penalty_factor;
  rp.seed = 37;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 10, 4.0, &rng);

  ThreadPool pool(4);
  Fleet fleet(workers, &graph);
  PlanningContext ctx(&graph, &labels, &requests);
  ctx.set_thread_pool(&pool);
  DispatchWindowPlanner planner(&ctx, &fleet, PlannerConfig{}, &pool);

  const double window_min = 6.0 / 60.0;
  std::size_t next = 0;
  int windows = 0;
  while (next < requests.size()) {
    const double window_end = requests[next].release_time + window_min;
    std::vector<RequestId> batch;
    while (next < requests.size() &&
           requests[next].release_time < window_end) {
      batch.push_back(requests[next].id);
      ++next;
    }
    fleet.AdvanceTo(window_end);
    planner.OnBatch(batch, window_end,
                    static_cast<WindowEpoch>(windows + 1));
    ++windows;
    const InvariantReport inv =
        VerifyInvariants(fleet, requests, /*mid_run=*/true);
    ASSERT_TRUE(inv.ok) << "after window " << windows << ": "
                        << inv.violation;
  }
  fleet.FinishAll();
  const InvariantReport final_inv = VerifyInvariants(fleet, requests);
  EXPECT_TRUE(final_inv.ok) << final_inv.violation;
  EXPECT_GT(windows, 10);  // the workload actually spans many windows
}

TEST(DispatchWindowInvariantsTest, AcceptHeavyEveryWindowClean) {
  CheckInvariantsAfterEveryWindow(/*penalty_factor=*/30.0);
}

TEST(DispatchWindowInvariantsTest, RejectionHeavyEveryWindowClean) {
  CheckInvariantsAfterEveryWindow(/*penalty_factor=*/1.7);
}

// --------------------------------------------- conflict resolution

TEST(DispatchWindowConflictTest, SecondRequestReplansOntoUpdatedRoute) {
  // One worker, two batch members: both propose the same worker against
  // the frozen fleet; the cheaper proposal applies first (unified-cost-
  // then-id order), the loser detects the route-version change and goes
  // through the sequential replan — ending up inserted into the updated
  // route rather than applying a stale (i, j).
  TestEnv env(MakeGridGraph(8, 8, 0.8));
  std::vector<Worker> workers = {{0, 27, 4}};
  Fleet fleet(workers, &env.graph());
  const Request r1 = env.AddRequest(28, 30, 0.0, 1e9, 1e9);
  const Request r2 = env.AddRequest(29, 31, 0.0, 1e9, 1e9);
  DispatchWindowPlanner planner(env.ctx(), &fleet, PlannerConfig{},
                                /*pool=*/nullptr);
  planner.OnBatch({r1.id, r2.id}, 0.0, /*epoch=*/1);
  EXPECT_EQ(fleet.AssignedWorker(r1.id), 0);
  EXPECT_EQ(fleet.AssignedWorker(r2.id), 0);
  EXPECT_EQ(planner.conflict_replans(), 1);
  fleet.FinishAll();
  const InvariantReport inv = VerifyInvariants(fleet, env.requests());
  EXPECT_TRUE(inv.ok) << inv.violation;
}

// ------------------------------------------------ shard-conflict fuzz

TEST(ShardConflictFuzzTest, ContendedEvaluationThenOrderedApplication) {
  // The engine's per-window pattern, fuzzed: several requests evaluate
  // the SAME workers concurrently (CachedState rebuilds contend on the
  // shard locks), then a driver applies proposals in order, replaying the
  // conflict-resolution staleness check. Run under tsan by the tsan
  // preset; any unserialized state-cache rebuild is a data race here.
  TestEnv env(MakeGridGraph(10, 10, 0.8));
  constexpr int kWorkers = 4, kThreads = 4, kRounds = 20;
  std::vector<Worker> workers;
  for (int w = 0; w < kWorkers; ++w) workers.push_back({w, w * 7, 6});
  std::vector<Request> all;
  Rng rng(13);
  for (int i = 0; i < kThreads * kRounds; ++i) {
    const VertexId o = rng.UniformInt(0, 99);
    VertexId d = rng.UniformInt(0, 99);
    if (d == o) d = (d + 1) % 100;
    all.push_back(env.AddRequest(o, d, 0.0, 1e9, 1e9));
  }

  Fleet fleet(workers, &env.graph());
  Point lo, hi;
  env.graph().BoundingBox(&lo, &hi);
  GridIndex index(lo, hi, 2.0);
  fleet.AttachIndex(&index);
  FleetShards shards(&fleet, lo, hi, /*region_km=*/1.6, 4);
  fleet.AttachShards(&shards);

  struct Proposal {
    WorkerId worker = kInvalidWorker;
    int i = -1, j = -1;
    std::uint64_t version = 0;
  };
  int applied = 0, conflicts = 0;
  for (int round = 0; round < kRounds; ++round) {
    const double now = 0.4 * round;
    // Driver: touch everyone (commits due stops, bumps idle clocks).
    for (WorkerId w = 0; w < kWorkers; ++w) fleet.Touch(w, now);
    shards.Rebuild();
    // Parallel: every thread evaluates its request against ALL workers —
    // two requests contending for one worker is the common case here.
    std::vector<Proposal> proposals(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const Request& r =
            all[static_cast<std::size_t>(round * kThreads + t)];
        double best_delta = kInf;
        for (WorkerId w = 0; w < kWorkers; ++w) {
          const InsertionCandidate cand = LinearDpInsertion(
              fleet.worker(w), fleet.route(w),
              fleet.CachedState(w, env.ctx()), r, env.ctx());
          if (cand.feasible() && cand.delta < best_delta) {
            best_delta = cand.delta;
            proposals[static_cast<std::size_t>(t)] = {
                w, cand.i, cand.j, fleet.route(w).version()};
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    // Driver: ordered application with the engine's staleness rule.
    for (int t = 0; t < kThreads; ++t) {
      const Proposal& p = proposals[static_cast<std::size_t>(t)];
      const Request& r = all[static_cast<std::size_t>(round * kThreads + t)];
      if (p.worker == kInvalidWorker) continue;
      if (fleet.route(p.worker).version() == p.version) {
        fleet.ApplyInsertion(p.worker, r, p.i, p.j, env.ctx()->oracle());
        ++applied;
      } else {
        ++conflicts;  // an earlier proposal took the worker: skip (reject)
      }
    }
  }
  fleet.AttachShards(nullptr);
  fleet.FinishAll();
  EXPECT_GT(applied, 0);
  EXPECT_GT(conflicts, 0) << "fuzz never produced a worker conflict";
  const InvariantReport inv = VerifyInvariants(fleet, all);
  EXPECT_TRUE(inv.ok) << inv.violation;
}

TEST(ShardConflictFuzzTest, ConcurrentMutationAcrossShards) {
  // Shard-safe mutation path: threads own disjoint workers and run
  // Touch + ApplyInsertion concurrently. Per-worker route state is
  // exclusive; the cross-shard commit state (arrival heap, grid index,
  // pickup/drop-off records, total distance) is what the commit mutex
  // must protect — tsan flags it if it does not.
  TestEnv env(MakeGridGraph(10, 10, 0.8));
  constexpr int kThreads = 4, kPerThread = 30;
  std::vector<Worker> workers;
  for (int w = 0; w < kThreads; ++w) workers.push_back({w, w * 11, 8});
  std::vector<Request> all;
  Rng rng(29);
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    const VertexId o = rng.UniformInt(0, 99);
    VertexId d = rng.UniformInt(0, 99);
    if (d == o) d = (d + 1) % 100;
    all.push_back(env.AddRequest(o, d, 0.0, 1e9, 1e9));
  }

  Fleet fleet(workers, &env.graph());
  Point lo, hi;
  env.graph().BoundingBox(&lo, &hi);
  GridIndex index(lo, hi, 2.0);
  fleet.AttachIndex(&index);
  FleetShards shards(&fleet, lo, hi, /*region_km=*/1.6, 4);
  fleet.AttachShards(&shards);

  std::atomic<int> applied{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const WorkerId w = t;  // exclusive owner of this worker's route
      for (int k = 0; k < kPerThread; ++k) {
        const Request& r = all[static_cast<std::size_t>(t * kPerThread + k)];
        fleet.Touch(w, 0.2 * k);  // commits stops -> heap/index/records
        const InsertionCandidate cand = LinearDpInsertion(
            fleet.worker(w), fleet.route(w), fleet.CachedState(w, env.ctx()),
            r, env.ctx());
        if (cand.feasible()) {
          fleet.ApplyInsertion(w, r, cand.i, cand.j, env.ctx()->oracle());
          applied.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  fleet.AttachShards(nullptr);
  fleet.FinishAll();
  EXPECT_GT(applied.load(), 0);
  const InvariantReport inv = VerifyInvariants(fleet, all);
  EXPECT_TRUE(inv.ok) << inv.violation;
}

}  // namespace
}  // namespace urpsm
