#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/shortest/dijkstra.h"
#include "src/shortest/oracle.h"
#include "src/workload/city.h"
#include "src/workload/io.h"
#include "src/workload/requests.h"
#include "src/util/rng.h"

namespace urpsm {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/urpsm_io_test.inst";
};

Instance SmallInstance() {
  Instance inst;
  inst.name = "roundtrip";
  CityParams p;
  p.rows = 8;
  p.cols = 8;
  inst.graph = MakeCity(p);
  DijkstraOracle oracle(&inst.graph);
  Rng rng(3);
  inst.workers = GenerateWorkers(inst.graph, 5, 4.0, &rng);
  RequestParams rp;
  rp.count = 20;
  inst.requests = GenerateRequests(inst.graph, rp, &oracle, &rng);
  return inst;
}

TEST_F(IoTest, RoundTripPreservesEverything) {
  const Instance orig = SmallInstance();
  ASSERT_TRUE(SaveInstance(orig, path_));
  Instance loaded;
  ASSERT_TRUE(LoadInstance(path_, &loaded));

  EXPECT_EQ(loaded.name, orig.name);
  ASSERT_EQ(loaded.graph.num_vertices(), orig.graph.num_vertices());
  ASSERT_EQ(loaded.graph.edges().size(), orig.graph.edges().size());
  for (VertexId v = 0; v < orig.graph.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(loaded.graph.coord(v).x, orig.graph.coord(v).x);
    EXPECT_DOUBLE_EQ(loaded.graph.coord(v).y, orig.graph.coord(v).y);
  }
  for (std::size_t i = 0; i < orig.graph.edges().size(); ++i) {
    EXPECT_EQ(loaded.graph.edges()[i].u, orig.graph.edges()[i].u);
    EXPECT_EQ(loaded.graph.edges()[i].v, orig.graph.edges()[i].v);
    EXPECT_DOUBLE_EQ(loaded.graph.edges()[i].length_km,
                     orig.graph.edges()[i].length_km);
    EXPECT_EQ(loaded.graph.edges()[i].cls, orig.graph.edges()[i].cls);
  }
  ASSERT_EQ(loaded.workers.size(), orig.workers.size());
  for (std::size_t i = 0; i < orig.workers.size(); ++i) {
    EXPECT_EQ(loaded.workers[i].initial_location,
              orig.workers[i].initial_location);
    EXPECT_EQ(loaded.workers[i].capacity, orig.workers[i].capacity);
  }
  ASSERT_EQ(loaded.requests.size(), orig.requests.size());
  for (std::size_t i = 0; i < orig.requests.size(); ++i) {
    EXPECT_EQ(loaded.requests[i].origin, orig.requests[i].origin);
    EXPECT_EQ(loaded.requests[i].destination, orig.requests[i].destination);
    EXPECT_DOUBLE_EQ(loaded.requests[i].release_time,
                     orig.requests[i].release_time);
    EXPECT_DOUBLE_EQ(loaded.requests[i].deadline, orig.requests[i].deadline);
    EXPECT_DOUBLE_EQ(loaded.requests[i].penalty, orig.requests[i].penalty);
    EXPECT_EQ(loaded.requests[i].capacity, orig.requests[i].capacity);
  }
  EXPECT_EQ(ValidateInstance(loaded), "");
}

TEST_F(IoTest, RoundTripPreservesShortestDistances) {
  const Instance orig = SmallInstance();
  ASSERT_TRUE(SaveInstance(orig, path_));
  Instance loaded;
  ASSERT_TRUE(LoadInstance(path_, &loaded));
  for (int trial = 0; trial < 20; ++trial) {
    const VertexId s = (trial * 7) % orig.graph.num_vertices();
    const VertexId t = (trial * 13 + 5) % orig.graph.num_vertices();
    EXPECT_DOUBLE_EQ(DijkstraDistance(loaded.graph, s, t),
                     DijkstraDistance(orig.graph, s, t));
  }
}

TEST_F(IoTest, LoadRejectsMissingFile) {
  Instance out;
  EXPECT_FALSE(LoadInstance(path_ + ".does-not-exist", &out));
}

TEST_F(IoTest, LoadRejectsBadMagic) {
  std::ofstream(path_) << "not-an-instance v1\n";
  Instance out;
  EXPECT_FALSE(LoadInstance(path_, &out));
}

TEST_F(IoTest, LoadRejectsTruncatedFile) {
  const Instance orig = SmallInstance();
  ASSERT_TRUE(SaveInstance(orig, path_));
  // Truncate to half.
  std::ifstream in(path_);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path_) << content.substr(0, content.size() / 2);
  Instance out;
  EXPECT_FALSE(LoadInstance(path_, &out));
}

TEST_F(IoTest, LoadRejectsBadRoadClass) {
  std::ofstream(path_) << "urpsm-instance v1\nname x\nvertices 2\n0 0\n1 0\n"
                       << "edges 1\n0 1 1.0 9\nworkers 0\nrequests 0\n";
  Instance out;
  EXPECT_FALSE(LoadInstance(path_, &out));
}

}  // namespace
}  // namespace urpsm
