#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "src/obs/tdigest.h"
#include "src/util/lru_cache.h"
#include "src/util/rng.h"
#include "src/util/scratch.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace urpsm {
namespace {

TEST(LruCacheTest, MissOnEmpty) {
  LruCache<int, int> cache(4);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);
}

TEST(LruCacheTest, PutThenGet) {
  LruCache<int, std::string> cache(4);
  cache.Put(1, "a");
  auto hit = cache.Get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "a");
  EXPECT_EQ(cache.hits(), 1);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  ASSERT_TRUE(cache.Get(1).has_value());  // 1 becomes MRU
  cache.Put(3, 30);                       // evicts 2
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
}

TEST(LruCacheTest, PutRefreshesExistingKey) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // refresh: 1 becomes MRU, size stays 2
  cache.Put(3, 30);  // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(*cache.Get(1), 11);
  EXPECT_FALSE(cache.Get(2).has_value());
}

TEST(LruCacheTest, ZeroCapacityDisablesCaching) {
  LruCache<int, int> cache(0);
  cache.Put(1, 10);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, ClearKeepsCounters) {
  LruCache<int, int> cache(4);
  cache.Put(1, 10);
  cache.Get(1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_FALSE(cache.Get(1).has_value());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.UniformInt(3, 7);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 7);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-1.0, 1.0);
    EXPECT_GE(x, -1.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(3);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) ++counts[rng.Categorical({0.7, 0.2, 0.1})];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_NEAR(counts[0] / 30000.0, 0.7, 0.03);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(StatsTest, EmptyAccumulator) {
  StatsAccumulator s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Percentile(50), 0.0);
}

TEST(StatsTest, BasicMoments) {
  StatsAccumulator s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(StatsTest, PercentilesInterpolate) {
  StatsAccumulator s;
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(95), 95.05, 1e-9);
}

TEST(StatsTest, PercentileAfterMoreSamples) {
  StatsAccumulator s;
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 10.0);
  s.Add(20.0);  // accumulator must re-sort lazily
  EXPECT_DOUBLE_EQ(s.Percentile(100), 20.0);
}

// Rank of a value in a sorted sample set: the midpoint of its
// equal-range window (handles ties and between-sample estimates).
double RankIn(const std::vector<double>& sorted, double v) {
  const double lo = static_cast<double>(
      std::lower_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
  const double hi = static_cast<double>(
      std::upper_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
  if (lo == hi) return lo - 0.5;      // absent: between ranks lo-1 and lo
  return 0.5 * (lo + hi - 1.0);       // present: midpoint of the tie run
}

TEST(StatsTest, DigestCapsMemoryKeepsExactMoments) {
  StatsAccumulator s;
  const int n = 50'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(i % 1000);
    s.Add(x);
    sum += x;
  }
  // The digest is bounded; count/sum/min/max stay exact regardless.
  obs::TDigest d = s.digest();  // copy: Compress() is mutating
  d.Compress();
  EXPECT_LE(d.centroids().size(), static_cast<std::size_t>(2 * 400 + 16));
  EXPECT_EQ(s.count(), static_cast<std::size_t>(n));
  EXPECT_DOUBLE_EQ(s.sum(), sum);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 999.0);
}

TEST(StatsTest, DigestDeterministicAcrossRuns) {
  // Same Add sequence => same sketch => identical percentiles, even
  // when Percentile() queries interleave differently (queries build a
  // scratch view and must not perturb the digest).
  StatsAccumulator a, b;
  Rng rng(77);
  std::vector<double> stream;
  for (int i = 0; i < 20'000; ++i) stream.push_back(rng.Uniform(0.0, 50.0));
  for (std::size_t i = 0; i < stream.size(); ++i) {
    a.Add(stream[i]);
    if (i % 997 == 0) a.Percentile(50);  // interleaved queries
  }
  for (const double x : stream) b.Add(x);
  obs::TDigest da = a.digest(), db = b.digest();
  da.Compress();
  db.Compress();
  ASSERT_EQ(da.centroids().size(), db.centroids().size());
  for (std::size_t i = 0; i < da.centroids().size(); ++i) {
    EXPECT_EQ(da.centroids()[i].mean, db.centroids()[i].mean);
    EXPECT_EQ(da.centroids()[i].weight, db.centroids()[i].weight);
  }
  EXPECT_DOUBLE_EQ(a.Percentile(50), b.Percentile(50));
  EXPECT_DOUBLE_EQ(a.Percentile(95), b.Percentile(95));
}

TEST(StatsTest, DigestRankErrorBounded) {
  // Rank-accuracy pin vs an exact sort on a skewed (lognormal-ish)
  // stream far above the digest's buffer: the estimate's rank must sit
  // within 1% of the target rank. Everything is seeded and the digest
  // has no randomness, so the observed error is a fixed number — this
  // re-breaks only if the sketch changes.
  StatsAccumulator s;
  std::vector<double> exact;
  Rng rng(123);
  for (int i = 0; i < 60'000; ++i) {
    const double x = std::exp(rng.Uniform(0.0, 4.0));  // heavy right tail
    s.Add(x);
    exact.push_back(x);
  }
  std::sort(exact.begin(), exact.end());
  const double n = static_cast<double>(exact.size());
  for (const double p : {50.0, 95.0, 99.0}) {
    const double approx = s.Percentile(p);
    const double target_rank = p / 100.0 * (n - 1.0);
    const double got_rank = RankIn(exact, approx);
    EXPECT_NEAR(got_rank, target_rank, 0.01 * n)
        << "p" << p << " rank drifted: estimate " << approx;
  }
}

TEST(StatsTest, MergePoolsExactlyUnderBuffer) {
  // Below the digest's first flush every sample is a singleton
  // centroid, so pooled percentiles are exact — not approximations.
  StatsAccumulator a, b;
  for (int i = 0; i < 9; ++i) a.Add(1.0);
  a.Add(1000.0);
  for (int i = 0; i < 10; ++i) b.Add(100.0);
  StatsAccumulator pooled;
  pooled.Merge(a);
  pooled.Merge(b);
  EXPECT_EQ(pooled.count(), 20u);
  EXPECT_DOUBLE_EQ(pooled.min(), 1.0);
  EXPECT_DOUBLE_EQ(pooled.max(), 1000.0);
  // Sorted pool: 1.0 x9, 100.0 x10, 1000.0; rank 9.5 lands inside the
  // 100.0 run.
  EXPECT_DOUBLE_EQ(pooled.Percentile(50), 100.0);
}

TEST(StatsTest, MergeStaysBoundedAndClose) {
  StatsAccumulator a, b, merged;
  std::vector<double> exact;
  Rng rng(5);
  for (int i = 0; i < 30'000; ++i) {
    const double x = rng.Uniform(0.0, 10.0);
    (i % 2 == 0 ? a : b).Add(x);
    exact.push_back(x);
  }
  merged.Merge(a);
  merged.Merge(b);
  std::sort(exact.begin(), exact.end());
  EXPECT_EQ(merged.count(), 30'000u);
  obs::TDigest d = merged.digest();
  d.Compress();
  EXPECT_LE(d.centroids().size(), static_cast<std::size_t>(2 * 400 + 16));
  const double n = static_cast<double>(exact.size());
  for (const double p : {50.0, 95.0, 99.0}) {
    EXPECT_NEAR(RankIn(exact, merged.Percentile(p)), p / 100.0 * (n - 1.0),
                0.01 * n)
        << "p" << p;
  }
}

TEST(TableTest, AlignedRendering) {
  TablePrinter t({"algo", "cost"});
  t.AddRow({"tshare", "12.5"});
  t.AddRow({"pruneGreedyDP", "3.25"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| algo"), std::string::npos);
  EXPECT_NE(s.find("pruneGreedyDP"), std::string::npos);
  EXPECT_NE(s.find("|-"), std::string::npos);
}

TEST(TableTest, CsvRendering) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(1000.0, 0), "1000");
}

// ------------------------------------------------ HighWaterClamp

TEST(HighWaterClampTest, ShrinksPastRecentHighWaterOnlyAtPeriod) {
  HighWaterClamp clamp(/*min_keep=*/8, /*period=*/4);
  std::vector<int> v;
  // One burst pins a big capacity...
  v.assign(1000, 7);
  clamp.Observe(&v);
  EXPECT_EQ(clamp.high_water(), 1000u);
  const std::size_t burst_cap = v.capacity();
  ASSERT_GE(burst_cap, 1000u);
  // ...which survives until a full period of small uses has elapsed.
  v.assign(10, 1);
  clamp.Observe(&v);
  v.assign(12, 2);
  clamp.Observe(&v);
  EXPECT_EQ(v.capacity(), burst_cap);  // window still includes the burst
  v.assign(11, 3);
  clamp.Observe(&v);  // period boundary: burst is in this window's HW
  v.assign(9, 4);
  clamp.Observe(&v);
  v.assign(9, 5);
  clamp.Observe(&v);
  v.assign(9, 6);
  clamp.Observe(&v);
  v.assign(9, 7);
  clamp.Observe(&v);  // second period closes: high water is now ~11
  EXPECT_LT(v.capacity(), burst_cap);
  // Contents survive the trim.
  EXPECT_EQ(v.size(), 9u);
  for (const int x : v) EXPECT_EQ(x, 7);
}

TEST(HighWaterClampTest, NeverShrinksBelowMinKeepOrStableWorkingSet) {
  HighWaterClamp clamp(/*min_keep=*/64, /*period=*/2);
  std::vector<int> v;
  v.reserve(60);  // under min_keep: never touched
  const std::size_t small_cap = v.capacity();
  for (int i = 0; i < 10; ++i) {
    v.assign(4, i);
    clamp.Observe(&v);
  }
  EXPECT_EQ(v.capacity(), small_cap);
  // A stable working set is never reallocated either (capacity within
  // 2x of the recurring size).
  std::vector<int> w;
  w.assign(100, 0);
  const std::size_t stable_cap = w.capacity();
  HighWaterClamp clamp2(/*min_keep=*/8, /*period=*/2);
  for (int i = 0; i < 10; ++i) {
    w.assign(100, i);
    clamp2.Observe(&w);
    EXPECT_EQ(w.capacity(), stable_cap);
  }
}

}  // namespace
}  // namespace urpsm
