#include <gtest/gtest.h>

#include <tuple>

#include "src/core/decision.h"
#include "src/insertion/insertion.h"
#include "src/workload/city.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

/// Property sweep: on random graphs with random routes, the three
/// insertion operators must agree exactly on feasibility and minimal
/// increased distance (Sec. 4 claims the DP variants are exact
/// accelerations, not approximations), and the decision-phase lower bound
/// must never exceed the exact optimum (Lemma 7).
///
/// Parameters: (seed, graph_kind, worker_capacity, route_attempts).
class InsertionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {
 protected:
  RoadNetwork MakeGraph(int kind, Rng* rng) {
    switch (kind) {
      case 0:
        return MakeGridGraph(6, 6, 0.8);
      case 1:
        return MakeCycleGraph(24, 1.1);
      case 2:
        return MakeRandomGeometricGraph(60, 6.0, 3, rng);
      default: {
        CityParams p;
        p.rows = 10;
        p.cols = 10;
        p.seed = 99;
        return MakeCity(p);
      }
    }
  }
};

TEST_P(InsertionPropertyTest, DpVariantsMatchGroundTruth) {
  const auto [seed, kind, capacity, attempts] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  TestEnv env(MakeGraph(kind, &rng));
  const Worker worker{0, static_cast<VertexId>(rng.UniformInt(
                             0, env.graph().num_vertices() - 1)),
                      capacity};

  const double now = rng.Uniform(0.0, 30.0);
  Route route(worker.initial_location, now);
  const double span = rng.Uniform(10.0, 40.0);
  BuildRandomRoute(&env, worker, &route, attempts, now, span, &rng);

  // Probe many random new requests against this route.
  for (int probe = 0; probe < 25; ++probe) {
    const VertexId n = env.graph().num_vertices();
    const VertexId o = rng.UniformInt(0, n - 1);
    VertexId d = rng.UniformInt(0, n - 1);
    if (d == o) d = (d + 1) % n;
    const double deadline = now + rng.Uniform(0.2, 1.2) * span;
    const Request& r =
        env.AddRequest(o, d, now, deadline, 10.0, rng.UniformInt(1, 2));

    const InsertionCandidate basic =
        BasicInsertion(worker, route, r, env.ctx());
    const InsertionCandidate naive =
        NaiveDpInsertion(worker, route, r, env.ctx());
    const InsertionCandidate linear =
        LinearDpInsertion(worker, route, r, env.ctx());

    ASSERT_EQ(basic.feasible(), naive.feasible())
        << "naive feasibility mismatch, probe " << probe;
    ASSERT_EQ(basic.feasible(), linear.feasible())
        << "linear feasibility mismatch, probe " << probe;
    if (!basic.feasible()) continue;

    EXPECT_NEAR(naive.delta, basic.delta, 1e-9)
        << "naive delta mismatch, probe " << probe;
    EXPECT_NEAR(linear.delta, basic.delta, 1e-9)
        << "linear delta mismatch, probe " << probe;

    // The returned placements must be genuinely feasible and match the
    // reported delta when applied.
    for (const InsertionCandidate& c : {naive, linear}) {
      Route applied = route;
      applied.Insert(r, c.i, c.j, env.ctx()->oracle());
      std::vector<Stop> stops(applied.stops().begin(), applied.stops().end());
      double cost = 0.0;
      EXPECT_TRUE(ValidateStops(applied.anchor(), applied.anchor_time(),
                                stops, worker.capacity,
                                route.OnboardAtAnchor(*env.ctx()),
                                env.ctx(), &cost));
      EXPECT_NEAR(cost - route.RemainingCost(), c.delta, 1e-9);
    }

    // Lemma 7: the Euclidean decision bound never exceeds the optimum.
    const RouteState st = BuildRouteState(route, env.ctx());
    const double lb = DecisionLowerBound(worker, route, st, r,
                                         env.ctx()->DirectDist(r.id),
                                         env.graph());
    EXPECT_LE(lb, basic.delta + 1e-9) << "LB above Delta*, probe " << probe;
  }
}

TEST_P(InsertionPropertyTest, InfeasibilityImpliesLowerBoundInfeasible) {
  // Contrapositive of the LB's soundness: if the relaxed Euclidean check
  // says kInf, the exact insertion must be infeasible as well.
  const auto [seed, kind, capacity, attempts] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 7);
  TestEnv env(MakeGraph(kind, &rng));
  const Worker worker{0, static_cast<VertexId>(rng.UniformInt(
                             0, env.graph().num_vertices() - 1)),
                      capacity};
  const double now = 0.0;
  Route route(worker.initial_location, now);
  BuildRandomRoute(&env, worker, &route, attempts, now, 20.0, &rng);
  for (int probe = 0; probe < 25; ++probe) {
    const VertexId n = env.graph().num_vertices();
    const VertexId o = rng.UniformInt(0, n - 1);
    VertexId d = rng.UniformInt(0, n - 1);
    if (d == o) d = (d + 1) % n;
    // Mostly-tight deadlines to exercise the infeasible side.
    const Request r = env.AddRequest(o, d, now, now + rng.Uniform(0.0, 6.0));
    const RouteState st = BuildRouteState(route, env.ctx());
    const double lb = DecisionLowerBound(worker, route, st, r,
                                         env.ctx()->DirectDist(r.id),
                                         env.graph());
    if (lb == kInf) {
      EXPECT_FALSE(BasicInsertion(worker, route, r, env.ctx()).feasible())
          << "probe " << probe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InsertionPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),  // seeds
                       ::testing::Values(0, 1, 2, 3),     // graph kinds
                       ::testing::Values(1, 3, 6),        // capacities
                       ::testing::Values(4, 10)));        // route attempts

}  // namespace
}  // namespace urpsm
