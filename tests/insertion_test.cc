#include <gtest/gtest.h>

#include "src/insertion/insertion.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

using InsertFn = InsertionCandidate (*)(const Worker&, const Route&,
                                        const Request&, PlanningContext*);
const InsertFn kAllInsertions[] = {BasicInsertion, NaiveDpInsertion,
                                   LinearDpInsertion};

class InsertionTest : public ::testing::Test {
 protected:
  InsertionTest() : env_(MakePathGraph(12, 1.0)) {}
  double EdgeMin() const {
    return 1.0 / SpeedKmPerMin(RoadClass::kResidential);
  }
  TestEnv env_;
  Worker worker_{0, 0, 4};
};

TEST_F(InsertionTest, EmptyRouteAppends) {
  const double e = EdgeMin();
  const Request r = env_.AddRequest(3, 7, 0.0, 100.0);
  Route rt(0, 0.0);
  for (InsertFn fn : kAllInsertions) {
    const InsertionCandidate c = fn(worker_, rt, r, env_.ctx());
    ASSERT_TRUE(c.feasible());
    EXPECT_EQ(c.i, 0);
    EXPECT_EQ(c.j, 0);
    EXPECT_NEAR(c.delta, 7 * e, 1e-12);  // 0->3 (3e) + 3->7 (4e)
  }
}

TEST_F(InsertionTest, InfeasibleWhenDeadlineTooTight) {
  const double e = EdgeMin();
  const Request r = env_.AddRequest(3, 7, 0.0, 6.0 * e);  // needs 7e
  Route rt(0, 0.0);
  EXPECT_FALSE(BasicInsertion(worker_, rt, r, env_.ctx()).feasible());
  EXPECT_FALSE(NaiveDpInsertion(worker_, rt, r, env_.ctx()).feasible());
  EXPECT_FALSE(LinearDpInsertion(worker_, rt, r, env_.ctx()).feasible());
}

TEST_F(InsertionTest, InfeasibleWhenRequestExceedsWorkerCapacity) {
  const Request r = env_.AddRequest(3, 7, 0.0, 1e9, 10.0, 5);  // K_r > K_w
  Route rt(0, 0.0);
  EXPECT_FALSE(BasicInsertion(worker_, rt, r, env_.ctx()).feasible());
  EXPECT_FALSE(NaiveDpInsertion(worker_, rt, r, env_.ctx()).feasible());
  EXPECT_FALSE(LinearDpInsertion(worker_, rt, r, env_.ctx()).feasible());
}

TEST_F(InsertionTest, EnRoutePickupIsFree) {
  // Worker already drives 0 -> 5; a request 2 -> 4 lies on the way, so the
  // optimal insertion adds zero distance.
  const Request r1 = env_.AddRequest(5, 9, 0.0, 1e9);
  Route rt(0, 0.0);
  rt.Insert(r1, 0, 0, env_.oracle());
  const Request r2 = env_.AddRequest(2, 4, 0.0, 1e9);
  for (InsertFn fn : kAllInsertions) {
    const InsertionCandidate c = fn(worker_, rt, r2, env_.ctx());
    ASSERT_TRUE(c.feasible());
    EXPECT_NEAR(c.delta, 0.0, 1e-12);
  }
}

TEST_F(InsertionTest, CapacityForcesSequentialService) {
  // Worker capacity 1: two passengers can never overlap on board, so the
  // second request must be inserted after the first's dropoff (or around
  // it), increasing distance accordingly.
  Worker small{0, 0, 1};
  const Request r1 = env_.AddRequest(2, 4, 0.0, 1e9);
  Route rt(0, 0.0);
  rt.Insert(r1, 0, 0, env_.oracle());
  const Request r2 = env_.AddRequest(3, 5, 0.0, 1e9);
  const InsertionCandidate c = BasicInsertion(small, rt, r2, env_.ctx());
  ASSERT_TRUE(c.feasible());
  // Overlap is impossible: best is to serve r2 entirely after dropping r1
  // at 4 (go back? no: 4->3->5 costs 1e+2e; direct tail was 0).
  EXPECT_GT(c.delta, 0.0);
  const InsertionCandidate dp = LinearDpInsertion(small, rt, r2, env_.ctx());
  ASSERT_TRUE(dp.feasible());
  EXPECT_NEAR(dp.delta, c.delta, 1e-9);
  // And the chosen placements must keep the route feasible under replay.
  Route applied = rt;
  applied.Insert(r2, dp.i, dp.j, env_.oracle());
  std::vector<Stop> stops(applied.stops().begin(), applied.stops().end());
  EXPECT_TRUE(ValidateStops(applied.anchor(), applied.anchor_time(), stops,
                            small.capacity, 0, env_.ctx()));
}

TEST_F(InsertionTest, SlackBlocksDetourThatBreaksExistingDeadline) {
  const double e = EdgeMin();
  // r1 must reach 6 by exactly its travel time — zero slack.
  const Request r1 = env_.AddRequest(1, 6, 0.0, 6.0 * e);
  Route rt(0, 0.0);
  rt.Insert(r1, 0, 0, env_.oracle());
  // Any detour for r2 (9 -> 11, far off the path) would delay r1.
  const Request r2 = env_.AddRequest(9, 11, 0.0, 1e9);
  const InsertionCandidate basic = BasicInsertion(worker_, rt, r2, env_.ctx());
  const InsertionCandidate lin = LinearDpInsertion(worker_, rt, r2, env_.ctx());
  // Only appending after r1's dropoff is feasible.
  ASSERT_TRUE(basic.feasible());
  ASSERT_TRUE(lin.feasible());
  EXPECT_EQ(basic.i, 2);
  EXPECT_EQ(basic.j, 2);
  EXPECT_NEAR(lin.delta, basic.delta, 1e-9);
}

TEST_F(InsertionTest, DeltaMatchesAppliedRouteCostDifference) {
  const Request r1 = env_.AddRequest(2, 8, 0.0, 1e9);
  Route rt(1, 0.0);
  rt.Insert(r1, 0, 0, env_.oracle());
  const Request r2 = env_.AddRequest(4, 6, 0.0, 1e9);
  const InsertionCandidate c = LinearDpInsertion(worker_, rt, r2, env_.ctx());
  ASSERT_TRUE(c.feasible());
  const double before = rt.RemainingCost();
  Route applied = rt;
  applied.Insert(r2, c.i, c.j, env_.oracle());
  EXPECT_NEAR(applied.RemainingCost() - before, c.delta, 1e-9);
}

TEST_F(InsertionTest, InsertionDeltaFormulaMatchesEnumeration) {
  const Request r1 = env_.AddRequest(2, 8, 0.0, 1e9);
  Route rt(0, 0.0);
  rt.Insert(r1, 0, 0, env_.oracle());
  const Request r2 = env_.AddRequest(5, 10, 0.0, 1e9);
  for (int i = 0; i <= rt.size(); ++i) {
    for (int j = i; j <= rt.size(); ++j) {
      Route applied = rt;
      applied.Insert(r2, i, j, env_.oracle());
      EXPECT_NEAR(InsertionDelta(rt, r2, i, j, env_.ctx()),
                  applied.RemainingCost() - rt.RemainingCost(), 1e-9)
          << "(i,j)=(" << i << "," << j << ")";
    }
  }
}

TEST_F(InsertionTest, PrebuiltStateVariantsAgree) {
  const Request r1 = env_.AddRequest(2, 8, 0.0, 1e9);
  Route rt(0, 0.0);
  rt.Insert(r1, 0, 0, env_.oracle());
  const Request r2 = env_.AddRequest(4, 9, 0.0, 1e9);
  const RouteState st = BuildRouteState(rt, env_.ctx());
  const InsertionCandidate a = LinearDpInsertion(worker_, rt, r2, env_.ctx());
  const InsertionCandidate b =
      LinearDpInsertion(worker_, rt, st, r2, env_.ctx());
  EXPECT_EQ(a.i, b.i);
  EXPECT_EQ(a.j, b.j);
  EXPECT_NEAR(a.delta, b.delta, 1e-12);
}

TEST_F(InsertionTest, LinearDpQueryBudget2nPlus1) {
  // Lemma 9: at most 2n+1 distance queries (L is cached separately here,
  // so at most 2(n+1) fresh endpoint queries; with L that is 2n+3 worst
  // case when the anchor differs from every stop — the paper counts the
  // anchor as part of the n+1 positions, giving 2n+1 for its indexing).
  const Request r1 = env_.AddRequest(2, 8, 0.0, 1e9);
  Route rt(0, 0.0);
  rt.Insert(r1, 0, 0, env_.oracle());
  const Request r2 = env_.AddRequest(4, 9, 0.0, 1e9);
  env_.ctx()->DirectDist(r2.id);  // pre-pay the single L query
  const RouteState st = BuildRouteState(rt, env_.ctx());
  const std::int64_t before = env_.oracle()->query_count();
  LinearDpInsertion(worker_, rt, st, r2, env_.ctx());
  const std::int64_t used = env_.oracle()->query_count() - before;
  const int n = rt.size();
  EXPECT_LE(used, 2 * (n + 1));
}

TEST_F(InsertionTest, OnboardPassengerRestrictsCapacity) {
  // Worker capacity 2 with a 2-unit rider already on board: nothing else
  // fits until the dropoff.
  Worker w{0, 0, 2};
  const Request r1 = env_.AddRequest(1, 8, 0.0, 1e9, 10.0, 2);
  Route rt(0, 0.0);
  rt.Insert(r1, 0, 0, env_.oracle());
  rt.PopFront();  // commit pickup; onboard = 2
  const Request r2 = env_.AddRequest(3, 5, 0.0, 1e9, 10.0, 1);
  const InsertionCandidate basic = BasicInsertion(w, rt, r2, env_.ctx());
  const InsertionCandidate lin = LinearDpInsertion(w, rt, r2, env_.ctx());
  // Must wait until r1 leaves at vertex 8: pickup/dropoff appended after.
  ASSERT_TRUE(basic.feasible());
  EXPECT_EQ(basic.i, 1);
  EXPECT_EQ(basic.j, 1);
  ASSERT_TRUE(lin.feasible());
  EXPECT_NEAR(lin.delta, basic.delta, 1e-9);
}

}  // namespace
}  // namespace urpsm
