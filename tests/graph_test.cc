#include <gtest/gtest.h>

#include "src/graph/builders.h"
#include "src/graph/road_network.h"
#include "src/util/rng.h"

namespace urpsm {
namespace {

TEST(RoadNetworkTest, FromEdgesBuildsCsr) {
  std::vector<Point> coords = {{0, 0}, {1, 0}, {1, 1}};
  std::vector<EdgeSpec> edges = {{0, 1, 1.0, RoadClass::kResidential},
                                 {1, 2, 1.0, RoadClass::kResidential}};
  const RoadNetwork g = RoadNetwork::FromEdges(coords, edges);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_undirected_edges(), 2);
  EXPECT_EQ(g.Neighbors(0).size(), 1u);
  EXPECT_EQ(g.Neighbors(1).size(), 2u);
  EXPECT_EQ(g.Neighbors(2).size(), 1u);
  EXPECT_EQ(g.Neighbors(0)[0].to, 1);
}

TEST(RoadNetworkTest, SelfLoopsDropped) {
  std::vector<Point> coords = {{0, 0}, {1, 0}};
  std::vector<EdgeSpec> edges = {{0, 0, 1.0, RoadClass::kResidential},
                                 {0, 1, 1.0, RoadClass::kResidential}};
  const RoadNetwork g = RoadNetwork::FromEdges(coords, edges);
  EXPECT_EQ(g.num_undirected_edges(), 1);
  EXPECT_EQ(g.edges().size(), 1u);
}

TEST(RoadNetworkTest, EdgeCostIsTravelTime) {
  std::vector<Point> coords = {{0, 0}, {8, 0}};
  std::vector<EdgeSpec> edges = {{0, 1, 8.0, RoadClass::kMotorway}};
  const RoadNetwork g = RoadNetwork::FromEdges(coords, edges);
  // 8 km at motorway speed (80 km/h * 0.8... stored as km/min).
  const double expected = 8.0 / SpeedKmPerMin(RoadClass::kMotorway);
  EXPECT_DOUBLE_EQ(g.Neighbors(0)[0].cost, expected);
}

TEST(RoadNetworkTest, SpeedsOrderedByClass) {
  EXPECT_GT(SpeedKmPerMin(RoadClass::kMotorway),
            SpeedKmPerMin(RoadClass::kPrimary));
  EXPECT_GT(SpeedKmPerMin(RoadClass::kPrimary),
            SpeedKmPerMin(RoadClass::kSecondary));
  EXPECT_GT(SpeedKmPerMin(RoadClass::kSecondary),
            SpeedKmPerMin(RoadClass::kResidential));
  EXPECT_DOUBLE_EQ(MaxSpeedKmPerMin(), SpeedKmPerMin(RoadClass::kMotorway));
}

TEST(RoadNetworkTest, EuclideanLowerBoundBelowEdgeCost) {
  // Any single edge's cost must be >= the Euclidean lower bound between
  // its endpoints (edge length >= straight line, speed <= max).
  Rng rng(5);
  const RoadNetwork g = MakeRandomGeometricGraph(50, 10.0, 3, &rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const auto& arc : g.Neighbors(v)) {
      EXPECT_LE(g.EuclideanLowerBoundMin(v, arc.to), arc.cost + 1e-12);
    }
  }
}

TEST(RoadNetworkTest, NearestVertexFindsExactMatch) {
  const RoadNetwork g = MakeGridGraph(5, 5, 1.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.NearestVertex(g.coord(v)), v);
  }
}

TEST(RoadNetworkTest, BoundingBoxCoversAll) {
  const RoadNetwork g = MakeGridGraph(3, 4, 2.0);
  Point lo, hi;
  g.BoundingBox(&lo, &hi);
  EXPECT_DOUBLE_EQ(lo.x, 0.0);
  EXPECT_DOUBLE_EQ(lo.y, 0.0);
  EXPECT_DOUBLE_EQ(hi.x, 6.0);  // 4 cols * 2 km spacing
  EXPECT_DOUBLE_EQ(hi.y, 4.0);
}

TEST(BuildersTest, CycleGraphStructure) {
  const RoadNetwork g = MakeCycleGraph(6, 1.0);
  EXPECT_EQ(g.num_vertices(), 6);
  EXPECT_EQ(g.num_undirected_edges(), 6);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.Neighbors(v).size(), 2u);
}

TEST(BuildersTest, CycleGraphChordShorterThanEdge) {
  // Euclidean lower bounds stay valid: chord <= arc length.
  const RoadNetwork g = MakeCycleGraph(8, 2.0);
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_LE(g.EuclideanKm(v, (v + 1) % 8), 2.0 + 1e-12);
  }
}

TEST(BuildersTest, GridGraphStructure) {
  const RoadNetwork g = MakeGridGraph(3, 4, 1.0);
  EXPECT_EQ(g.num_vertices(), 12);
  // 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8.
  EXPECT_EQ(g.num_undirected_edges(), 17);
}

TEST(BuildersTest, PathGraphStructure) {
  const RoadNetwork g = MakePathGraph(5, 2.0);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_undirected_edges(), 4);
  EXPECT_EQ(g.Neighbors(0).size(), 1u);
  EXPECT_EQ(g.Neighbors(2).size(), 2u);
}

TEST(BuildersTest, RandomGeometricGraphConnectedEnough) {
  Rng rng(7);
  const RoadNetwork g = MakeRandomGeometricGraph(100, 10.0, 3, &rng);
  EXPECT_EQ(g.num_vertices(), 100);
  // Chain augmentation guarantees >= n-1 edges.
  EXPECT_GE(g.num_undirected_edges(), 99);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.Neighbors(v).size(), 1u);
  }
}

}  // namespace
}  // namespace urpsm
