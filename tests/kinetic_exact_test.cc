#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/algos/kinetic.h"
#include "src/insertion/insertion.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

/// Brute-force minimal route cost over ALL permutations of the given
/// stops (precedence/capacity/deadline respected), used as ground truth
/// for the kinetic planner's branch-and-bound ordering search.
double BruteForceBestCost(TestEnv* env, const Worker& worker, VertexId anchor,
                          double anchor_time, std::vector<Stop> stops) {
  std::vector<std::size_t> order(stops.size());
  std::iota(order.begin(), order.end(), 0);
  double best = kInf;
  std::sort(order.begin(), order.end());
  do {
    std::vector<Stop> seq;
    for (std::size_t k : order) seq.push_back(stops[k]);
    double cost = 0.0;
    if (ValidateStops(anchor, anchor_time, seq, worker.capacity, 0,
                      env->ctx(), &cost)) {
      best = std::min(best, cost);
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

class KineticExactTest : public ::testing::TestWithParam<int> {};

TEST_P(KineticExactTest, MatchesBruteForceOnTinyRoutes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 4409 + 19);
  TestEnv env(MakeGridGraph(6, 6, 0.8));
  const Worker worker{0, static_cast<VertexId>(rng.UniformInt(0, 35)), 6};
  std::vector<Worker> workers = {worker};
  Fleet fleet(workers, &env.graph());
  KineticPlanner kinetic(env.ctx(), &fleet, PlannerConfig{});

  // Feed 3 requests through the kinetic planner; after each accepted
  // request, the planner's route cost must equal the brute-force optimum
  // over all orderings of exactly the served stops.
  std::vector<Stop> expected_stops;
  for (int k = 0; k < 3; ++k) {
    const VertexId o = rng.UniformInt(0, 35);
    VertexId d = rng.UniformInt(0, 35);
    if (d == o) d = (d + 1) % 36;
    const Request r =
        env.AddRequest(o, d, 0.0, rng.Uniform(25.0, 60.0), 1e9);
    const WorkerId got = kinetic.OnRequest(r);
    if (got == kInvalidWorker) continue;
    expected_stops.push_back({r.origin, r.id, StopKind::kPickup});
    expected_stops.push_back({r.destination, r.id, StopKind::kDropoff});
    const double brute = BruteForceBestCost(
        &env, worker, fleet.route(0).anchor(), fleet.route(0).anchor_time(),
        expected_stops);
    ASSERT_LT(brute, kInf);
    EXPECT_NEAR(fleet.route(0).RemainingCost(), brute, 1e-9)
        << "after request " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KineticExactTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace urpsm
