#include <gtest/gtest.h>

#include "src/core/decision.h"
#include "src/insertion/insertion.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

class DecisionTest : public ::testing::Test {
 protected:
  DecisionTest() : env_(MakeGridGraph(8, 8, 1.0)) {}
  TestEnv env_;
  Worker worker_{0, 0, 4};
};

TEST_F(DecisionTest, EmptyRouteBoundIsEuclideanPlusL) {
  const Request r = env_.AddRequest(18, 45, 0.0, 1e9);  // (2,2) -> (5,5)
  Route rt(0, 0.0);
  const RouteState st = BuildRouteState(rt, env_.ctx());
  const double L = env_.ctx()->DirectDist(r.id);
  const double lb =
      DecisionLowerBound(worker_, rt, st, r, L, env_.graph());
  // Only the i=j=n=0 case exists: euc(anchor, o)/v_max + L.
  EXPECT_NEAR(lb, env_.graph().EuclideanLowerBoundMin(0, 18) + L, 1e-12);
}

TEST_F(DecisionTest, BoundRequiresZeroExtraQueries) {
  const Request r1 = env_.AddRequest(9, 54, 0.0, 1e9);
  Route rt(0, 0.0);
  rt.Insert(r1, 0, 0, env_.oracle());
  const Request r2 = env_.AddRequest(18, 45, 0.0, 1e9);
  const double L = env_.ctx()->DirectDist(r2.id);
  const RouteState st = BuildRouteState(rt, env_.ctx());
  const std::int64_t before = env_.oracle()->query_count();
  DecisionLowerBound(worker_, rt, st, r2, L, env_.graph());
  EXPECT_EQ(env_.oracle()->query_count(), before);  // Lemma 7: 1 query total
}

TEST_F(DecisionTest, CapacityInfeasibleGivesInfiniteBound) {
  const Request r = env_.AddRequest(18, 45, 0.0, 1e9, 10.0, 9);  // K_r > K_w
  Route rt(0, 0.0);
  const RouteState st = BuildRouteState(rt, env_.ctx());
  EXPECT_EQ(DecisionLowerBound(worker_, rt, st, r,
                               env_.ctx()->DirectDist(r.id), env_.graph()),
            kInf);
}

TEST_F(DecisionTest, HopelessDeadlineGivesInfiniteBound) {
  // Worker at corner (0,0); request at far corner with a deadline shorter
  // than even the straight-line travel time.
  const Request r = env_.AddRequest(63, 62, 0.0, 0.5);  // (7,7)
  Route rt(0, 0.0);
  const RouteState st = BuildRouteState(rt, env_.ctx());
  EXPECT_EQ(DecisionLowerBound(worker_, rt, st, r,
                               env_.ctx()->DirectDist(r.id), env_.graph()),
            kInf);
}

TEST_F(DecisionTest, BoundIsNonNegative) {
  Rng rng(3);
  Route rt(0, 0.0);
  BuildRandomRoute(&env_, worker_, &rt, 6, 0.0, 60.0, &rng);
  for (int probe = 0; probe < 50; ++probe) {
    const VertexId o = rng.UniformInt(0, 63);
    VertexId d = rng.UniformInt(0, 63);
    if (d == o) d = (d + 1) % 64;
    const Request r = env_.AddRequest(o, d, 0.0, rng.Uniform(5.0, 80.0));
    const RouteState st = BuildRouteState(rt, env_.ctx());
    const double lb = DecisionLowerBound(worker_, rt, st, r,
                                         env_.ctx()->DirectDist(r.id),
                                         env_.graph());
    if (lb < kInf) {
      EXPECT_GE(lb, 0.0);
    }
  }
}

TEST_F(DecisionTest, TighterForCloserWorkers) {
  // The bound should order an adjacent worker ahead of a distant one for
  // an empty-route pickup (this ordering drives Lemma 8 pruning).
  const Request r = env_.AddRequest(9, 18, 0.0, 1e9);  // (1,1) -> (2,2)
  Route near_rt(1, 0.0);   // vertex (1,0)
  Route far_rt(63, 0.0);   // vertex (7,7)
  const RouteState near_st = BuildRouteState(near_rt, env_.ctx());
  const RouteState far_st = BuildRouteState(far_rt, env_.ctx());
  const double L = env_.ctx()->DirectDist(r.id);
  EXPECT_LT(DecisionLowerBound(worker_, near_rt, near_st, r, L, env_.graph()),
            DecisionLowerBound(worker_, far_rt, far_st, r, L, env_.graph()));
}

TEST(DecisionColumnTest, ColumnPathBitIdenticalToReferenceFuzz) {
  // The column-gathered DecisionLowerBound vs the on-demand reference on
  // random routes/requests, including tight deadlines (exercising the
  // gather cutoff) and capacity pressure: results must be EXACTLY equal —
  // this bound feeds the engine determinism contract, so even an ulp of
  // drift between the paths would be a bug.
  TestEnv env(MakeGridGraph(12, 12, 0.7));
  Rng rng(97);
  Worker worker{0, 0, 3};
  Route route(0, 0.0);
  int compared = 0, finite = 0, cutoff_hit = 0;
  for (int iter = 0; iter < 400; ++iter) {
    if (iter % 5 == 0 && route.size() < 24) {
      // Grow the route through a real insertion so schedules stay valid.
      const VertexId o = rng.UniformInt(0, 143);
      VertexId d = rng.UniformInt(0, 143);
      if (d == o) d = (d + 1) % 144;
      const Request grow = env.AddRequest(o, d, 0.0, 1e9, 10.0, 1);
      const InsertionCandidate c = LinearDpInsertion(
          worker, route, BuildRouteState(route, env.ctx()), grow, env.ctx());
      if (c.feasible()) route.Insert(grow, c.i, c.j, env.oracle());
    }
    const VertexId o = rng.UniformInt(0, 143);
    VertexId d = rng.UniformInt(0, 143);
    if (d == o) d = (d + 1) % 144;
    // Mix loose, tight and hopeless deadlines.
    const double deadline =
        iter % 3 == 0 ? rng.Uniform(0.5, 20.0) : rng.Uniform(20.0, 1e4);
    const Request probe =
        env.AddRequest(o, d, 0.0, deadline, 10.0, rng.UniformInt(1, 3));
    const RouteState st = BuildRouteState(route, env.ctx());
    const double L = env.ctx()->DirectDist(probe.id);
    const double fast =
        DecisionLowerBound(worker, route, st, probe, L, env.graph());
    const double ref =
        DecisionLowerBoundReference(worker, route, st, probe, L, env.graph());
    EXPECT_EQ(fast, ref) << "iter " << iter << " n=" << st.n;
    ++compared;
    if (fast < kInf) ++finite;
    if (!st.arr.empty() && st.arr[static_cast<std::size_t>(st.n)] > deadline) {
      ++cutoff_hit;  // gather stopped before the end of the route
    }
  }
  EXPECT_EQ(compared, 400);
  EXPECT_GT(finite, 50);     // the fuzz really exercised feasible bounds
  EXPECT_GT(cutoff_hit, 20);  // ...and the deadline-cutoff gather
}

}  // namespace
}  // namespace urpsm
