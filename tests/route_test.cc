#include <gtest/gtest.h>

#include "src/graph/builders.h"
#include "src/model/route.h"
#include "src/shortest/oracle.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

class RouteTest : public ::testing::Test {
 protected:
  RouteTest() : env_(MakePathGraph(8, 1.0)) {}
  double EdgeMin() const { return 1.0 / SpeedKmPerMin(RoadClass::kResidential); }
  TestEnv env_;
};

TEST_F(RouteTest, EmptyRoute) {
  Route rt(3, 5.0);
  EXPECT_EQ(rt.anchor(), 3);
  EXPECT_DOUBLE_EQ(rt.anchor_time(), 5.0);
  EXPECT_TRUE(rt.empty());
  EXPECT_DOUBLE_EQ(rt.RemainingCost(), 0.0);
  EXPECT_EQ(rt.VertexAt(0), 3);
  EXPECT_DOUBLE_EQ(rt.ArrivalAt(0), 5.0);
}

TEST_F(RouteTest, AppendInsertion) {
  const Request r = env_.AddRequest(2, 5, 0.0, 100.0);
  Route rt(0, 0.0);
  rt.Insert(r, 0, 0, env_.oracle());  // i = j = n = 0: Fig. 2a
  ASSERT_EQ(rt.size(), 2);
  EXPECT_EQ(rt.VertexAt(1), 2);
  EXPECT_EQ(rt.VertexAt(2), 5);
  EXPECT_EQ(rt.stops()[0].kind, StopKind::kPickup);
  EXPECT_EQ(rt.stops()[1].kind, StopKind::kDropoff);
  EXPECT_NEAR(rt.RemainingCost(), 5 * EdgeMin(), 1e-12);  // 0->2 + 2->5
  EXPECT_NEAR(rt.ArrivalAt(2), 5 * EdgeMin(), 1e-12);
}

TEST_F(RouteTest, MidRouteInsertionFig2b) {
  const Request r1 = env_.AddRequest(4, 7, 0.0, 100.0);
  const Request r2 = env_.AddRequest(1, 2, 0.0, 100.0);
  Route rt(0, 0.0);
  rt.Insert(r1, 0, 0, env_.oracle());   // 0 -> 4 -> 7
  rt.Insert(r2, 0, 0, env_.oracle());   // 0 -> 1 -> 2 -> 4 -> 7
  ASSERT_EQ(rt.size(), 4);
  EXPECT_EQ(rt.VertexAt(1), 1);
  EXPECT_EQ(rt.VertexAt(2), 2);
  EXPECT_EQ(rt.VertexAt(3), 4);
  EXPECT_EQ(rt.VertexAt(4), 7);
  EXPECT_NEAR(rt.RemainingCost(), 7 * EdgeMin(), 1e-12);
}

TEST_F(RouteTest, GeneralInsertionFig2c) {
  const Request r1 = env_.AddRequest(2, 6, 0.0, 100.0);
  const Request r2 = env_.AddRequest(3, 7, 0.0, 100.0);
  Route rt(0, 0.0);
  rt.Insert(r1, 0, 0, env_.oracle());   // 0 -> 2 -> 6
  rt.Insert(r2, 1, 2, env_.oracle());   // 0 -> 2 -> 3 -> 6 -> 7
  ASSERT_EQ(rt.size(), 4);
  EXPECT_EQ(rt.VertexAt(2), 3);
  EXPECT_EQ(rt.VertexAt(4), 7);
  // Legs: 0->2 (2), 2->3 (1), 3->6 (3), 6->7 (1) = 7 edges total.
  EXPECT_NEAR(rt.RemainingCost(), 7 * EdgeMin(), 1e-12);
}

TEST_F(RouteTest, LegCostsMatchOracleAfterInsertions) {
  const Request r1 = env_.AddRequest(3, 5, 0.0, 100.0);
  const Request r2 = env_.AddRequest(1, 6, 0.0, 100.0);
  Route rt(2, 0.0);
  rt.Insert(r1, 0, 0, env_.oracle());
  rt.Insert(r2, 0, 2, env_.oracle());  // pickup before r1's, dropoff after
  for (int k = 0; k < rt.size(); ++k) {
    EXPECT_NEAR(rt.leg_costs()[static_cast<std::size_t>(k)],
                env_.oracle()->Distance(rt.VertexAt(k), rt.VertexAt(k + 1)),
                1e-12)
        << "leg " << k;
  }
}

TEST_F(RouteTest, PopFrontCommitsStop) {
  const Request r = env_.AddRequest(2, 5, 0.0, 100.0);
  Route rt(0, 0.0);
  rt.Insert(r, 0, 0, env_.oracle());
  const Stop s = rt.PopFront();
  EXPECT_EQ(s.location, 2);
  EXPECT_EQ(s.kind, StopKind::kPickup);
  EXPECT_EQ(rt.anchor(), 2);
  EXPECT_NEAR(rt.anchor_time(), 2 * EdgeMin(), 1e-12);
  EXPECT_EQ(rt.size(), 1);
}

TEST_F(RouteTest, OnboardAtAnchorCountsCommittedPickups) {
  const Request r = env_.AddRequest(2, 5, 0.0, 100.0, 10.0, 3);
  Route rt(0, 0.0);
  rt.Insert(r, 0, 0, env_.oracle());
  EXPECT_EQ(rt.OnboardAtAnchor(*env_.ctx()), 0);
  rt.PopFront();  // pickup committed; rider (capacity 3) on board
  EXPECT_EQ(rt.OnboardAtAnchor(*env_.ctx()), 3);
  rt.PopFront();  // dropoff committed
  EXPECT_EQ(rt.OnboardAtAnchor(*env_.ctx()), 0);
}

TEST_F(RouteTest, SetStopsRecomputesLegs) {
  const Request r1 = env_.AddRequest(1, 4, 0.0, 100.0);
  Route rt(0, 0.0);
  std::vector<Stop> stops = {{4, r1.id, StopKind::kPickup},
                             {1, r1.id, StopKind::kDropoff}};
  rt.SetStops(stops, env_.oracle());
  ASSERT_EQ(rt.size(), 2);
  EXPECT_NEAR(rt.RemainingCost(), (4 + 3) * EdgeMin(), 1e-12);
}

TEST_F(RouteTest, ArrivalTimesArePrefixSums) {
  const Request r1 = env_.AddRequest(2, 6, 10.0, 200.0);
  Route rt(0, 10.0);
  rt.Insert(r1, 0, 0, env_.oracle());
  EXPECT_NEAR(rt.ArrivalAt(0), 10.0, 1e-12);
  EXPECT_NEAR(rt.ArrivalAt(1), 10.0 + 2 * EdgeMin(), 1e-12);
  EXPECT_NEAR(rt.ArrivalAt(2), 10.0 + 6 * EdgeMin(), 1e-12);
}

}  // namespace
}  // namespace urpsm
