// Tests for the incremental cross-window planning layer: EvalMemo
// (route-version keyed evaluation reuse) semantics, narrowed commit
// conflict replans, forced-speculation replan narrowing with
// query-billing identity, and a churn fuzz asserting memoized and fresh
// runs are bit-identical at every thread count and pipeline depth.
// Suites are named Pipeline* so the tsan preset picks them up.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/eval_memo.h"
#include "src/shortest/hub_labels.h"
#include "src/shortest/oracle.h"
#include "src/sim/dispatch_window.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"
#include "tests/test_util.h"

namespace urpsm {
namespace {

// ------------------------------------------------------------ EvalMemo

TEST(PipelineMemoUnitTest, FindMissesUntilUpsertAndValidityFlagsGate) {
  EvalMemo memo;
  EXPECT_EQ(memo.Find(3, 7), nullptr);  // empty memo

  // An Upsert creates the entry but neither validity flag is set yet:
  // Find returns the slot, but callers must check lb_valid / dp_valid.
  EvalMemo::Entry& e = memo.Upsert(3, 7);
  e.lb = 1.5;
  e.lb_valid = true;
  const EvalMemo::Entry* found = memo.Find(3, 7);
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->lb_valid);
  EXPECT_FALSE(found->dp_valid);
  EXPECT_EQ(found->lb, 1.5);

  // A stale version is a miss even though the worker has an entry.
  EXPECT_EQ(memo.Find(3, 8), nullptr);
}

TEST(PipelineMemoUnitTest, VersionChangeDropsBothValidityFlags) {
  EvalMemo memo;
  EvalMemo::Entry& e = memo.Upsert(5, 10);
  e.lb = 2.0;
  e.lb_valid = true;
  e.delta = 3.0;
  e.i = 1;
  e.j = 2;
  e.queries = 4;
  e.dp_valid = true;
  ASSERT_NE(memo.Find(5, 10), nullptr);

  // Re-upserting at a newer version resets the entry: the old lb and DP
  // results describe a route that no longer exists.
  EvalMemo::Entry& fresh = memo.Upsert(5, 11);
  EXPECT_FALSE(fresh.lb_valid);
  EXPECT_FALSE(fresh.dp_valid);
  EXPECT_EQ(memo.Find(5, 10), nullptr);  // old version gone
  const EvalMemo::Entry* now = memo.Find(5, 11);
  ASSERT_NE(now, nullptr);
  EXPECT_FALSE(now->lb_valid);
}

TEST(PipelineMemoUnitTest, ResetClearsEntriesAndDrainMovesCounters) {
  EvalMemo memo;
  memo.Upsert(1, 1).lb_valid = true;
  memo.Upsert(2, 1).lb_valid = true;
  memo.hits = 3;
  memo.misses = 5;
  memo.saved_queries = 7;

  std::int64_t h = 0, m = 0, s = 0;
  memo.Drain(&h, &m, &s);
  EXPECT_EQ(h, 3);
  EXPECT_EQ(m, 5);
  EXPECT_EQ(s, 7);
  EXPECT_EQ(memo.hits, 0);
  EXPECT_EQ(memo.misses, 0);
  // Drain adds (the harvest points accumulate several preps into one
  // tally); entries survive a drain.
  memo.hits = 2;
  memo.Drain(&h, &m, &s);
  EXPECT_EQ(h, 5);
  EXPECT_NE(memo.Find(1, 1), nullptr);

  memo.Reset();
  EXPECT_EQ(memo.Find(1, 1), nullptr);
  EXPECT_EQ(memo.Find(2, 1), nullptr);
  EXPECT_EQ(memo.hits, 0);
}

TEST(PipelineMemoUnitTest, OneEntryPerWorkerRotatingLookup) {
  EvalMemo memo;
  for (WorkerId w = 0; w < 16; ++w) {
    EvalMemo::Entry& e = memo.Upsert(w, 100 + static_cast<std::uint64_t>(w));
    e.lb = static_cast<double>(w);
    e.lb_valid = true;
  }
  // Out-of-order consultation still finds every entry (the cursor is an
  // amortization device, not a correctness constraint).
  for (WorkerId w = 15; w >= 0; --w) {
    const EvalMemo::Entry* e =
        memo.Find(w, 100 + static_cast<std::uint64_t>(w));
    ASSERT_NE(e, nullptr) << "worker " << w;
    EXPECT_EQ(e->lb, static_cast<double>(w));
  }
  // Upsert at the same version returns the same entry (no duplicates).
  EvalMemo::Entry& again = memo.Upsert(4, 104);
  EXPECT_TRUE(again.lb_valid);
}

// ------------------------------------ narrowed commit-conflict replan

TEST(PipelineMemoTest, SingleWorkerConflictReplansOnlyThatWorker) {
  // Two batch members whose best worker is the same (worker 0, anchored
  // next to both origins); worker 1 idles far away but inside both
  // candidate radii. The loser's conflict replan consults its memo:
  // worker 0's version moved (the winner's apply), worker 1's did not —
  // so the replan re-evaluates exactly one worker and reuses the other
  // verbatim (a narrowed replan; zero full replans).
  TestEnv env(MakeGridGraph(8, 8, 0.8));
  CachedOracle cached(env.oracle(), 1 << 16);
  std::vector<Worker> workers = {{0, 27, 4}, {1, 63, 4}};
  const Request r1 = env.AddRequest(28, 30, 0.0, 1e9, 1e9);
  const Request r2 = env.AddRequest(29, 31, 0.0, 1e9, 1e9);
  PlanningContext ctx(&env.graph(), &cached, &env.requests());

  Fleet fleet(workers, &env.graph());
  DispatchWindowPlanner planner(&ctx, &fleet, PlannerConfig{},
                                /*pool=*/nullptr);
  planner.OnBatch({r1.id, r2.id}, 0.0, /*epoch=*/1);

  EXPECT_EQ(fleet.AssignedWorker(r1.id), 0);
  EXPECT_EQ(planner.conflict_replans(), 1);
  EXPECT_EQ(planner.replans_narrowed(), 1);
  EXPECT_EQ(planner.replans_full(), 0);
  // The replan reused worker 1's recorded decision lower bound and
  // re-evaluated only worker 0 (worker 1's DP never runs — the Lemma 8
  // cutoff prunes it before the memo is consulted).
  EXPECT_GE(planner.memo_hits(), 1);
  EXPECT_GT(planner.memo_misses(), 0);
  const StatsAccumulator scope = planner.replan_scope();
  ASSERT_EQ(scope.count(), 1u);
  // The replan reused part of its lookups (a full recompute would score
  // 1.0 — every lookup a miss).
  EXPECT_LT(scope.mean(), 1.0);
  EXPECT_GT(scope.mean(), 0.0);

  fleet.FinishAll();
  const InvariantReport inv = VerifyInvariants(fleet, env.requests());
  EXPECT_TRUE(inv.ok) << inv.violation;

  // Twin run with the memo off: identical assignments and identical
  // billed query counts (hits re-bill their recorded counts, so the
  // totals are memo-independent).
  TestEnv env2(MakeGridGraph(8, 8, 0.8));
  CachedOracle cached2(env2.oracle(), 1 << 16);
  env2.AddRequest(28, 30, 0.0, 1e9, 1e9);
  env2.AddRequest(29, 31, 0.0, 1e9, 1e9);
  PlanningContext ctx2(&env2.graph(), &cached2, &env2.requests());
  Fleet fleet2(workers, &env2.graph());
  PlannerConfig off;
  off.use_eval_memo = false;
  DispatchWindowPlanner fresh(&ctx2, &fleet2, off, /*pool=*/nullptr);
  fresh.OnBatch({r1.id, r2.id}, 0.0, /*epoch=*/1);
  EXPECT_EQ(fresh.memo_hits() + fresh.memo_misses(), 0);
  for (const Request& r : env.requests()) {
    EXPECT_EQ(fleet.AssignedWorker(r.id), fleet2.AssignedWorker(r.id));
  }
  EXPECT_EQ(cached.query_count(), cached2.query_count());
}

// ------------------------------------ forced speculation, narrowed

TEST(PipelineMemoTest, ForcedSpeculationNarrowsReplansAndBillsIdentically) {
  // The forced-speculation drive from the speculation suite (plan stage
  // one window ahead on a contended 6-worker fleet, so commits overturn
  // speculative reads), run memo-on and memo-off. Both runs must agree
  // bit-for-bit on every assignment AND on the billed query count; the
  // memo run must additionally narrow at least one validation replan.
  const RoadNetwork graph = MakeChengduLike(0.05, 3);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(97);
  RequestParams rp;
  rp.count = 160;
  rp.duration_min = 80.0;
  rp.penalty_factor = 12.0;
  rp.seed = 101;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 6, 4.0, &rng);

  const double window_min = 6.0 / 60.0;
  std::vector<std::vector<RequestId>> batches;
  std::vector<double> closes;
  std::size_t next = 0;
  while (next < requests.size()) {
    const double window_end = requests[next].release_time + window_min;
    std::vector<RequestId> batch;
    while (next < requests.size() &&
           requests[next].release_time < window_end) {
      batch.push_back(requests[next].id);
      ++next;
    }
    batches.push_back(std::move(batch));
    closes.push_back(window_end);
  }
  ASSERT_GT(batches.size(), 4u);

  struct DriveResult {
    double committed_distance = 0.0;
    std::int64_t queries = 0;
    std::int64_t spec_misses = 0;
    std::int64_t narrowed = 0;
    std::int64_t full = 0;
    std::int64_t memo_hits = 0;
    std::vector<WorkerId> assigned;
    std::vector<double> pickups;
  };
  const auto drive = [&](bool use_memo) {
    CachedOracle cached(&labels, 1 << 18);
    Fleet fleet(workers, &graph);
    PlanningContext ctx(&graph, &cached, &requests);
    PlannerConfig config;
    config.use_eval_memo = use_memo;
    DispatchWindowPlanner planner(&ctx, &fleet, config, /*pool=*/nullptr);
    planner.ConfigurePipeline(4);
    fleet.DisableArrivalHeap();
    WindowEpoch planned = 0, committed = 0;
    const auto plan_next = [&] {
      const std::size_t k = static_cast<std::size_t>(planned);
      planner.PlanWindow(batches[k], closes[k], ++planned);
    };
    plan_next();
    while (committed < batches.size()) {
      if (planned < batches.size()) plan_next();  // one window ahead
      planner.CommitWindow(++committed);
    }
    fleet.FinishAll();
    DriveResult out;
    out.committed_distance = fleet.committed_distance();
    out.queries = cached.query_count();
    out.spec_misses = planner.speculation_misses();
    out.narrowed = planner.replans_narrowed();
    out.full = planner.replans_full();
    out.memo_hits = planner.memo_hits();
    for (const Request& r : requests) {
      out.assigned.push_back(fleet.AssignedWorker(r.id));
      out.pickups.push_back(fleet.PickupTime(r.id));
    }
    return out;
  };

  const DriveResult memoized = drive(/*use_memo=*/true);
  const DriveResult fresh = drive(/*use_memo=*/false);

  // Speculation diverged (same seeds as the speculation suite) and the
  // memo turned at least one of the resulting replans into a narrowed
  // one with real reuse.
  EXPECT_GT(memoized.spec_misses, 0);
  EXPECT_GT(memoized.narrowed, 0);
  EXPECT_GT(memoized.memo_hits, 0);
  EXPECT_EQ(fresh.memo_hits, 0);

  // Determinism contract: memoized and fresh evaluation agree bit for
  // bit — assignments, schedule, committed distance, and the billed
  // query count (hits re-bill their recorded totals).
  EXPECT_EQ(memoized.committed_distance, fresh.committed_distance);
  EXPECT_EQ(memoized.assigned, fresh.assigned);
  EXPECT_EQ(memoized.pickups, fresh.pickups);
  EXPECT_EQ(memoized.queries, fresh.queries);
}

// --------------------------------------------------- churn fuzz

struct WorkloadRun {
  SimReport report;
  std::vector<bool> served;
};

WorkloadRun RunOnce(const RoadNetwork& graph, DistanceOracle* oracle,
                    const std::vector<Worker>& workers,
                    const std::vector<Request>& requests, int num_threads,
                    int pipeline_depth, bool use_memo) {
  SimOptions options;
  options.num_threads = num_threads;
  options.batch_window_s = 6.0;
  options.pipeline = true;
  options.pipeline_depth = pipeline_depth;
  Simulation sim(&graph, oracle, workers, &requests, options);
  PlannerConfig config;
  config.use_eval_memo = use_memo;
  WorkloadRun run;
  run.report = sim.Run(MakeDispatchWindowFactory(config));
  run.served = sim.served();
  return run;
}

void ExpectIdentical(const WorkloadRun& a, const WorkloadRun& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.report.served_requests, b.report.served_requests);
  EXPECT_EQ(a.report.unified_cost, b.report.unified_cost);
  EXPECT_EQ(a.report.total_distance, b.report.total_distance);
  EXPECT_EQ(a.report.penalty_sum, b.report.penalty_sum);
  EXPECT_EQ(a.report.mean_pickup_wait_min, b.report.mean_pickup_wait_min);
  EXPECT_EQ(a.report.mean_detour_ratio, b.report.mean_detour_ratio);
  EXPECT_EQ(a.report.makespan_min, b.report.makespan_min);
  EXPECT_EQ(a.report.distance_queries, b.report.distance_queries);
  EXPECT_EQ(a.served, b.served);
}

TEST(PipelineMemoFuzzTest, ChurnMemoizedMatchesFreshAcrossThreadsAndDepths) {
  // A contended workload (12 workers, dense windows) memo-on vs memo-off
  // at 1/2/4 threads and depths 2/3/4: winners, reports and query counts
  // must be bit-identical — the memo is an execution strategy, never a
  // result change. (Run under tsan by the tsan preset.)
  const RoadNetwork graph = MakeChengduLike(0.05, 2);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(41);
  RequestParams rp;
  rp.count = 220;
  rp.duration_min = 150.0;
  rp.penalty_factor = 10.0;
  rp.seed = 43;
  const std::vector<Request> requests =
      GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 12, 4.0, &rng);

  for (int depth : {2, 3, 4}) {
    const WorkloadRun fresh = RunOnce(graph, &labels, workers, requests,
                                      /*threads=*/1, depth,
                                      /*use_memo=*/false);
    ASSERT_GT(fresh.report.served_requests, 0);
    EXPECT_EQ(fresh.report.pipeline.memo_hits, 0);
    EXPECT_EQ(fresh.report.pipeline.memo_misses, 0);
    for (int threads : {1, 2, 4}) {
      const WorkloadRun memoized = RunOnce(graph, &labels, workers, requests,
                                           threads, depth, /*use_memo=*/true);
      ExpectIdentical(fresh, memoized,
                      "depth=" + std::to_string(depth) +
                          " threads=" + std::to_string(threads));
      // The memo is live: every planning evaluation consults it (a fresh
      // eval is a recorded miss).
      EXPECT_GT(memoized.report.pipeline.memo_misses, 0);
      // replans_full stays 0 when no replan happened at all; when replans
      // did happen, narrowed + full covers them.
      EXPECT_GE(memoized.report.pipeline.replans_narrowed, 0);
    }
  }
}

}  // namespace
}  // namespace urpsm
