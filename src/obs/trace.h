#ifndef URPSM_SRC_OBS_TRACE_H_
#define URPSM_SRC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace urpsm::obs {

/// Records engine spans and emits Chrome trace-event JSON (loadable in
/// Perfetto / chrome://tracing). Disabled (empty path) it records
/// nothing and TraceSpan below reduces to a null check.
///
/// Events are duration Begin/End pairs ("ph":"B"/"E") or instants
/// ("ph":"i"), with integer args (window epoch, shard id, hit/miss
/// counts, ...). Timestamps are microseconds on the steady clock
/// relative to recorder construction, taken *before* the recorder
/// mutex, so events of one thread appear in program order —
/// non-decreasing ts per tid (the schema test asserts this).
///
/// Names and arg keys must be string literals (or otherwise outlive
/// the recorder): they are stored as const char* to keep recording
/// allocation-free apart from the event vector itself.
///
/// Memory bound: at most kMaxEvents events are retained; later events
/// are counted in dropped() and omitted from the file.
class TraceRecorder {
 public:
  struct Arg {
    const char* key;
    std::int64_t value;
  };

  static constexpr std::size_t kMaxEvents = std::size_t{1} << 22;

  /// Empty path disables recording entirely.
  explicit TraceRecorder(std::string path);
  ~TraceRecorder();  // flushes if not already flushed

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_; }
  const std::string& path() const { return path_; }

  void Begin(const char* name, std::initializer_list<Arg> args = {});
  void End(const char* name);
  void Instant(const char* name, std::initializer_list<Arg> args = {});

  /// Writes the Chrome trace JSON file (one event per line inside
  /// "traceEvents"). Idempotent; called by the destructor. Events
  /// recorded after the first Flush are lost.
  void Flush();

  std::size_t event_count() const;
  std::size_t dropped() const;

 private:
  struct Event {
    const char* name;
    char ph;  // 'B', 'E', 'i'
    double ts_us;
    int tid;
    std::vector<Arg> args;
  };

  void Record(const char* name, char ph, std::initializer_list<Arg> args);

  const std::string path_;
  const bool enabled_;
  const std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::thread::id, int> tids_;
  std::size_t dropped_ = 0;
  bool flushed_ = false;
};

/// RAII scoped span: Begin on construction, End on destruction. Null-
/// safe — pass nullptr (or a disabled recorder) and both ends are a
/// single branch, no clock reads.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* t, const char* name,
            std::initializer_list<TraceRecorder::Arg> args = {})
      : t_(t != nullptr && t->enabled() ? t : nullptr), name_(name) {
    if (t_ != nullptr) t_->Begin(name_, args);
  }
  ~TraceSpan() {
    if (t_ != nullptr) t_->End(name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* t_;
  const char* name_;
};

}  // namespace urpsm::obs

#endif  // URPSM_SRC_OBS_TRACE_H_
