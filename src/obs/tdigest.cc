#include "src/obs/tdigest.h"

#include <algorithm>
#include <cmath>

namespace urpsm::obs {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Total order on centroids: by mean, then weight. Strictness matters
/// for determinism — equal means must sort the same way every run.
bool CentroidLess(const Centroid& a, const Centroid& b) {
  if (a.mean != b.mean) return a.mean < b.mean;
  return a.weight < b.weight;
}

}  // namespace

TDigest::TDigest(double compression)
    : compression_(std::max(20.0, compression)) {}

double TDigest::ScaleK(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  return compression_ / (2.0 * kPi) * std::asin(2.0 * q - 1.0);
}

double TDigest::ScaleQ(double k) const {
  const double x = 2.0 * kPi * k / compression_;
  if (x >= kPi / 2.0) return 1.0;
  if (x <= -kPi / 2.0) return 0.0;
  return 0.5 * (std::sin(x) + 1.0);
}

void TDigest::Add(double x, double weight) {
  if (weight <= 0.0) return;
  buffer_.push_back(Centroid{x, weight});
  buffered_ += weight;
  // Amortized compression: flush once the buffer holds a few multiples
  // of the final centroid count, so Add stays O(1) amortized and small
  // inputs (below the threshold) keep every point as a singleton —
  // exact percentiles until the first flush.
  if (buffer_.size() >= static_cast<std::size_t>(4.0 * compression_)) {
    Compress();
  }
}

void TDigest::Merge(const TDigest& other) {
  if (&other == this) return;
  // Feed the other sketch's full logical content through our own
  // buffer; both inputs are deterministic, so the result is too. Copy
  // first: `other` may share storage lifetime quirks with `this` only
  // in the self-merge case handled above, but the buffer_ push_backs
  // below can reallocate, so never iterate other's vectors while
  // mutating our own if they aliased.
  for (const Centroid& c : other.centroids_) Add(c.mean, c.weight);
  for (const Centroid& c : other.buffer_) Add(c.mean, c.weight);
}

void TDigest::Compress() {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end(), CentroidLess);
  std::vector<Centroid> merged;
  MergeSorted(buffer_, &merged);
  centroids_ = std::move(merged);
  total_ += buffered_;
  buffered_ = 0.0;
  buffer_.clear();
}

void TDigest::MergeSorted(const std::vector<Centroid>& points,
                          std::vector<Centroid>* out) const {
  std::vector<Centroid> all;
  all.reserve(centroids_.size() + points.size());
  std::merge(centroids_.begin(), centroids_.end(), points.begin(),
             points.end(), std::back_inserter(all), CentroidLess);
  out->clear();
  if (all.empty()) return;
  // Sum in list order so W is deterministic.
  double w_total = 0.0;
  for (const Centroid& c : all) w_total += c.weight;

  // One left-to-right pass: grow the current cluster while it fits
  // within one unit of the k1 scale function, else emit it and start
  // the next. The weighted-mean update order is fixed, so the output
  // is a pure function of `all`.
  Centroid cur = all[0];
  double w_so_far = 0.0;
  double q_limit = ScaleQ(ScaleK(0.0) + 1.0);
  for (std::size_t i = 1; i < all.size(); ++i) {
    const Centroid& c = all[i];
    const double q_new = (w_so_far + cur.weight + c.weight) / w_total;
    if (q_new <= q_limit) {
      cur.mean += (c.weight / (cur.weight + c.weight)) * (c.mean - cur.mean);
      cur.weight += c.weight;
    } else {
      out->push_back(cur);
      w_so_far += cur.weight;
      q_limit = ScaleQ(ScaleK(w_so_far / w_total) + 1.0);
      cur = c;
    }
  }
  out->push_back(cur);
}

double TDigest::Quantile(double q) const {
  const double w_total = total_weight();
  if (w_total <= 0.0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));

  // Query view: centroids merged with the *uncompressed* buffer — a
  // scratch copy, never written back, so queries cannot perturb the
  // sketch and small (pre-flush) inputs stay exact singletons.
  std::vector<Centroid> pts(buffer_);
  std::sort(pts.begin(), pts.end(), CentroidLess);
  std::vector<Centroid> view;
  view.reserve(centroids_.size() + pts.size());
  std::merge(centroids_.begin(), centroids_.end(), pts.begin(), pts.end(),
             std::back_inserter(view), CentroidLess);
  if (view.size() == 1) return view[0].mean;

  // Piecewise-linear interpolation between centroid rank centers
  // (cumulative weight before the centroid + (weight - 1) / 2). With
  // all-singleton centroids the centers are 0, 1, ..., n-1 and this is
  // exactly lerp(sorted[floor(r)], sorted[ceil(r)]) at r = q * (n-1).
  const double t = q * (w_total - 1.0);
  double cum = 0.0;  // weight before view[i]
  double prev_center = (view[0].weight - 1.0) / 2.0;
  double prev_mean = view[0].mean;
  if (t <= prev_center) return prev_mean;
  for (std::size_t i = 1; i < view.size(); ++i) {
    cum += view[i - 1].weight;
    const double center = cum + (view[i].weight - 1.0) / 2.0;
    if (t <= center) {
      const double span = center - prev_center;
      if (span <= 0.0) return view[i].mean;
      const double u = (t - prev_center) / span;
      return prev_mean * (1.0 - u) + view[i].mean * u;
    }
    prev_center = center;
    prev_mean = view[i].mean;
  }
  return view.back().mean;
}

}  // namespace urpsm::obs
