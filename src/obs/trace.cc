#include "src/obs/trace.h"

#include <cstdio>

namespace urpsm::obs {

TraceRecorder::TraceRecorder(std::string path)
    : path_(std::move(path)),
      enabled_(!path_.empty()),
      start_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() { Flush(); }

void TraceRecorder::Record(const char* name, char ph,
                           std::initializer_list<Arg> args) {
  if (!enabled_) return;
  // Timestamp before the lock: same-thread events stay in program
  // order, so per-tid timestamps are non-decreasing regardless of how
  // threads interleave on the mutex.
  const double ts_us = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> l(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  auto it = tids_.find(self);
  if (it == tids_.end()) {
    it = tids_.emplace(self, static_cast<int>(tids_.size()) + 1).first;
  }
  events_.push_back(Event{name, ph, ts_us, it->second,
                          std::vector<Arg>(args.begin(), args.end())});
}

void TraceRecorder::Begin(const char* name, std::initializer_list<Arg> args) {
  Record(name, 'B', args);
}

void TraceRecorder::End(const char* name) { Record(name, 'E', {}); }

void TraceRecorder::Instant(const char* name,
                            std::initializer_list<Arg> args) {
  Record(name, 'i', args);
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> l(mu_);
  return events_.size();
}

std::size_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> l(mu_);
  return dropped_;
}

void TraceRecorder::Flush() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> l(mu_);
  if (flushed_) return;
  flushed_ = true;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) return;
  std::fputs("{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n", f);
  std::string line;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    line.clear();
    line += "{\"name\":\"";
    line += e.name;  // span names are our own literals: no escaping
    line += "\",\"cat\":\"engine\",\"ph\":\"";
    line += e.ph;
    line += "\",\"ts\":";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", e.ts_us);
    line += buf;
    line += ",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%d", e.tid);
    line += buf;
    if (!e.args.empty()) {
      line += ",\"args\":{";
      for (std::size_t a = 0; a < e.args.size(); ++a) {
        if (a > 0) line += ',';
        line += '"';
        line += e.args[a].key;
        line += "\":";
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(e.args[a].value));
        line += buf;
      }
      line += '}';
    }
    line += '}';
    if (i + 1 < events_.size()) line += ',';
    line += '\n';
    std::fputs(line.c_str(), f);
  }
  std::fputs("]}\n", f);
  std::fclose(f);
}

}  // namespace urpsm::obs
