#ifndef URPSM_SRC_OBS_REGISTRY_H_
#define URPSM_SRC_OBS_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/util/stats.h"

namespace urpsm::obs {

class Registry;

/// Monotonic event counter. The hot path is one branch when the owning
/// registry is disabled (no atomics, no TLS lookup); when enabled, each
/// thread increments its own cache-line-private cell (relaxed atomics,
/// no contention) and Snapshot sums the cells.
///
/// Thread-safe. Pointers returned by Registry::GetCounter stay valid
/// for the registry's lifetime.
class Counter {
 public:
  void Add(std::int64_t n = 1) {
    if (!enabled_) return;
    AddSlow(n);
  }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  Counter(Registry* owner, std::size_t id, std::string name, bool enabled);
  void AddSlow(std::int64_t n);

  Registry* owner_;
  std::size_t id_;
  std::string name_;
  const bool enabled_;  // copied from the registry at creation
};

/// Last-value-wins gauge (a single relaxed atomic double).
class Gauge {
 public:
  void Set(double v) {
    if (!enabled_) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  Gauge(std::string name, bool enabled);

  std::string name_;
  const bool enabled_;
  std::atomic<double> value_{0.0};
};

/// Value-distribution histogram backed by the digest-based
/// StatsAccumulator (mutex-guarded; Observe from any thread). Snapshot
/// expands it to <name>.count/.sum/.min/.max/.p50/.p95/.p99.
class Histogram {
 public:
  void Observe(double v);
  bool enabled() const { return enabled_; }
  const std::string& name() const { return name_; }
  /// Copy of the current accumulator (for report plumbing/tests).
  StatsAccumulator Snapshot() const;

 private:
  friend class Registry;
  Histogram(std::string name, bool enabled);

  std::string name_;
  const bool enabled_;
  mutable std::mutex mu_;
  StatsAccumulator acc_;
};

/// Names metrics and owns their storage. One Registry per Simulation
/// run; components fetch (find-or-create) their instruments by name at
/// setup time and hold raw pointers — stable for the registry's
/// lifetime.
///
/// Enabled/disabled is fixed at construction (instruments copy the
/// flag, so the disabled hot path is a single non-atomic branch and
/// tsan-clean). Pull-model metrics register a callback gauge; a
/// component that dies before the final Snapshot freezes its callbacks
/// first (CallbackGuard) so the last evaluated value still appears.
///
/// Locking rule for instrumented components: never invoke a registry
/// instrument while holding a component lock that a Snapshot callback
/// also takes — observe after unlocking. Snapshot itself evaluates
/// callbacks outside the registry mutex.
class Registry {
 public:
  explicit Registry(bool enabled = true);
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool enabled() const { return enabled_; }

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Registers a pull-model gauge evaluated at Snapshot time; returns
  /// an id for FreezeCallbackGauge. The callback must stay valid until
  /// frozen or the registry is destroyed.
  std::size_t RegisterCallbackGauge(const std::string& name,
                                    std::function<double()> fn);
  /// Evaluates the callback one last time, stores the value, and drops
  /// the callback — call before destroying the component it reads.
  void FreezeCallbackGauge(std::size_t id);
  /// Freezes every registered callback gauge — run after the final
  /// Snapshot, before the instrumented components are destroyed, so the
  /// registry outliving them stays safe to snapshot.
  void FreezeAllCallbacks();

  /// Flat name -> value view of everything: counters summed across
  /// thread cells, gauges, callback gauges (evaluated or frozen), and
  /// histograms expanded to .count/.sum/.min/.max/.p50/.p95/.p99
  /// (histograms with no observations are omitted). Returns an empty
  /// map when the registry is disabled. Safe to call concurrently with
  /// instrument updates.
  std::map<std::string, double> Snapshot();

  /// Spawns a thread appending one JSON line of Snapshot() to `path`
  /// every `period_s` seconds (plus a final line on stop) — the
  /// long-serving-loop exporter. No-op when disabled or already
  /// running.
  void StartPeriodicExport(const std::string& path, double period_s);
  /// Stops and joins the exporter (idempotent; also run by ~Registry).
  void StopPeriodicExport();

 private:
  friend class Counter;

  struct CellBlock {
    static constexpr std::size_t kCapacity = 256;
    std::atomic<std::int64_t> cells[kCapacity];  // zero-initialized
    CellBlock() {
      for (auto& c : cells) c.store(0, std::memory_order_relaxed);
    }
  };
  struct Callback {
    std::string name;
    std::function<double()> fn;  // empty once frozen
    double frozen = 0.0;
  };

  void AddToCell(std::size_t id, std::int64_t n);
  CellBlock* GetBlockSlow();
  void ExportLoop(std::string path, double period_s);

  const bool enabled_;
  const std::uint64_t uid_;  // process-unique; keys the TLS block cache

  std::mutex mu_;
  std::deque<std::unique_ptr<Counter>> counters_;  // deque: stable ptrs
  std::map<std::string, Counter*> counter_index_;
  std::deque<std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, Gauge*> gauge_index_;
  std::deque<std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, Histogram*> histogram_index_;
  std::vector<Callback> callbacks_;
  std::map<std::thread::id, std::unique_ptr<CellBlock>> thread_blocks_;
  std::map<std::size_t, std::int64_t> overflow_;  // counter id >= kCapacity

  std::thread exporter_;
  std::mutex export_mu_;
  std::condition_variable export_cv_;
  bool export_stop_ = false;
};

/// Null-safe increment: components hold Counter* that may be null when
/// no registry was wired in.
inline void Inc(Counter* c, std::int64_t n = 1) {
  if (c != nullptr) c->Add(n);
}

/// RAII timer observing elapsed milliseconds into a histogram on
/// destruction. Takes no clock reads when the histogram is null or
/// disabled, so the compiled-in-but-off cost is one branch.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(Histogram* h)
      : h_(h != nullptr && h->enabled() ? h : nullptr) {
    if (h_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimerMs() {
    if (h_ != nullptr) {
      h_->Observe(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0_)
                      .count());
    }
  }
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
};

/// RAII holder for callback-gauge ids: freezes them all on destruction
/// so a snapshot taken after the component dies still reports the last
/// values.
class CallbackGuard {
 public:
  explicit CallbackGuard(Registry* reg) : reg_(reg) {}
  ~CallbackGuard() { Freeze(); }
  CallbackGuard(const CallbackGuard&) = delete;
  CallbackGuard& operator=(const CallbackGuard&) = delete;

  void Track(std::size_t id) { ids_.push_back(id); }
  void Freeze() {
    if (reg_ != nullptr) {
      for (std::size_t id : ids_) reg_->FreezeCallbackGauge(id);
    }
    ids_.clear();
  }

 private:
  Registry* reg_;
  std::vector<std::size_t> ids_;
};

}  // namespace urpsm::obs

#endif  // URPSM_SRC_OBS_REGISTRY_H_
