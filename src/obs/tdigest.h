#ifndef URPSM_SRC_OBS_TDIGEST_H_
#define URPSM_SRC_OBS_TDIGEST_H_

#include <cstddef>
#include <vector>

namespace urpsm::obs {

/// One cluster of the sketch: the weighted mean of `weight` samples.
struct Centroid {
  double mean = 0.0;
  double weight = 0.0;
};

/// Deterministic merging t-digest (Dunning's k1 scale function): a
/// mergeable quantile sketch whose clusters are tight near the tails
/// (relative rank error shrinks toward q = 0 and q = 1) and coarse in
/// the middle, bounded to O(compression) centroids regardless of how
/// many samples are added.
///
/// Determinism contract: no randomness anywhere — incoming points are
/// buffered, sorted with a total order (mean, then weight), and merged
/// left-to-right with a fixed floating-point operation order, so the
/// same Add/Merge sequence always produces the same centroid list and
/// the same quantile answers. Queries are const and never perturb the
/// sketch: interleaving Quantile calls with Adds cannot change any
/// later answer.
///
/// Merge(other) feeds the other sketch's centroids through this
/// sketch's own buffer, so it is deterministic given both inputs'
/// histories. It is NOT bit-exactly associative — no rank-clustered
/// sketch is — but (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) agree on total weight
/// exactly and on every quantile within the sketch's rank-error bound
/// (tested in tests/obs_test.cc).
///
/// Accuracy: with the default compression (400) the observed rank
/// error at p50/p95/p99 on million-sample inputs is well under 1%
/// (tested against an exact sort in tests/obs_test.cc).
///
/// Interpolation: quantiles interpolate piecewise-linearly between
/// centroid *rank centers* (cumulative weight before the centroid plus
/// (weight - 1) / 2), which reduces exactly to the classic sorted-
/// sample formula `lerp(sorted[floor(r)], sorted[ceil(r)])` with
/// r = q * (n - 1) while every centroid is a singleton — i.e. until
/// the first buffer compression, small inputs get exact percentiles.
class TDigest {
 public:
  static constexpr double kDefaultCompression = 400.0;

  explicit TDigest(double compression = kDefaultCompression);

  /// Adds one sample standing in for `weight` identical originals.
  void Add(double x, double weight = 1.0);

  /// Pools the other sketch's mass into this one (deterministic; see
  /// the class comment for the associativity contract). Self-merge is
  /// a no-op.
  void Merge(const TDigest& other);

  /// The q-th quantile, q in [0, 1], clamped to the observed value
  /// range. Returns 0 when the sketch is empty.
  double Quantile(double q) const;

  /// Total weight of all samples added/merged so far.
  double total_weight() const { return total_ + buffered_; }

  /// Folds any buffered points into the centroid list. Queries do this
  /// logically (on a scratch copy) without mutating; tests call it to
  /// inspect the compressed representation.
  void Compress();

  /// Centroids after the last Compress (buffered points excluded);
  /// sorted by mean. Bounded by ~2 * compression entries.
  const std::vector<Centroid>& centroids() const { return centroids_; }

  double compression() const { return compression_; }

 private:
  // k1 scale function and its inverse, mapping quantile <-> cluster
  // index space; cluster capacity is one unit of k.
  double ScaleK(double q) const;
  double ScaleQ(double k) const;

  // Merges `points` (sorted by (mean, weight)) with centroids_ and
  // re-clusters into `out`. Shared by Compress and the query path.
  void MergeSorted(const std::vector<Centroid>& points,
                   std::vector<Centroid>* out) const;

  double compression_;
  double total_ = 0.0;                // weight held in centroids_
  double buffered_ = 0.0;             // weight held in buffer_
  std::vector<Centroid> centroids_;   // sorted by mean
  std::vector<Centroid> buffer_;      // unsorted incoming points
};

}  // namespace urpsm::obs

#endif  // URPSM_SRC_OBS_TDIGEST_H_
