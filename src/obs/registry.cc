#include "src/obs/registry.h"

#include <cstdio>

namespace urpsm::obs {

namespace {

/// Process-unique registry ids: the TLS cell-block cache is keyed by
/// uid, so a stale cached pointer from a destroyed registry (or a
/// recycled address) can never be dereferenced — the uid mismatch
/// forces a fresh lookup.
std::atomic<std::uint64_t> g_registry_uid{1};

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  *out += buf;
}

}  // namespace

// ----------------------------------------------------------- instruments

Counter::Counter(Registry* owner, std::size_t id, std::string name,
                 bool enabled)
    : owner_(owner), id_(id), name_(std::move(name)), enabled_(enabled) {}

void Counter::AddSlow(std::int64_t n) { owner_->AddToCell(id_, n); }

Gauge::Gauge(std::string name, bool enabled)
    : name_(std::move(name)), enabled_(enabled) {}

Histogram::Histogram(std::string name, bool enabled)
    : name_(std::move(name)), enabled_(enabled) {}

void Histogram::Observe(double v) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> l(mu_);
  acc_.Add(v);
}

StatsAccumulator Histogram::Snapshot() const {
  std::lock_guard<std::mutex> l(mu_);
  return acc_;
}

// -------------------------------------------------------------- registry

Registry::Registry(bool enabled)
    : enabled_(enabled),
      uid_(g_registry_uid.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() { StopPeriodicExport(); }

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return it->second;
  const std::size_t id = counters_.size();
  counters_.emplace_back(
      std::unique_ptr<Counter>(new Counter(this, id, name, enabled_)));
  Counter* c = counters_.back().get();
  counter_index_[name] = c;
  return c;
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return it->second;
  gauges_.emplace_back(std::unique_ptr<Gauge>(new Gauge(name, enabled_)));
  Gauge* g = gauges_.back().get();
  gauge_index_[name] = g;
  return g;
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return it->second;
  histograms_.emplace_back(
      std::unique_ptr<Histogram>(new Histogram(name, enabled_)));
  Histogram* h = histograms_.back().get();
  histogram_index_[name] = h;
  return h;
}

std::size_t Registry::RegisterCallbackGauge(const std::string& name,
                                            std::function<double()> fn) {
  std::lock_guard<std::mutex> l(mu_);
  callbacks_.push_back(Callback{name, std::move(fn), 0.0});
  return callbacks_.size() - 1;
}

void Registry::FreezeCallbackGauge(std::size_t id) {
  std::function<double()> fn;
  {
    std::lock_guard<std::mutex> l(mu_);
    if (id >= callbacks_.size()) return;
    fn = std::move(callbacks_[id].fn);
    callbacks_[id].fn = nullptr;
  }
  if (!fn) return;  // already frozen
  // Evaluate outside mu_: the callback reads component state behind the
  // component's own lock.
  const double v = fn();
  std::lock_guard<std::mutex> l(mu_);
  callbacks_[id].frozen = v;
}

void Registry::FreezeAllCallbacks() {
  std::size_t n = 0;
  {
    std::lock_guard<std::mutex> l(mu_);
    n = callbacks_.size();
  }
  for (std::size_t i = 0; i < n; ++i) FreezeCallbackGauge(i);
}

void Registry::AddToCell(std::size_t id, std::int64_t n) {
  struct TlsCache {
    std::uint64_t uid = 0;
    CellBlock* block = nullptr;
  };
  static thread_local TlsCache cache;
  if (cache.uid != uid_) {
    cache.block = GetBlockSlow();
    cache.uid = uid_;
  }
  if (id < CellBlock::kCapacity) {
    // Single-writer cell (this thread's private block): relaxed
    // load+store, no RMW contention; Snapshot reads concurrently.
    std::atomic<std::int64_t>& cell = cache.block->cells[id];
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  } else {
    std::lock_guard<std::mutex> l(mu_);
    overflow_[id] += n;
  }
}

Registry::CellBlock* Registry::GetBlockSlow() {
  std::lock_guard<std::mutex> l(mu_);
  std::unique_ptr<CellBlock>& slot = thread_blocks_[std::this_thread::get_id()];
  if (!slot) slot = std::make_unique<CellBlock>();
  return slot.get();
}

std::map<std::string, double> Registry::Snapshot() {
  std::map<std::string, double> out;
  if (!enabled_) return out;
  std::vector<std::pair<std::string, std::function<double()>>> live;
  {
    std::lock_guard<std::mutex> l(mu_);
    for (const auto& c : counters_) {
      std::int64_t sum = 0;
      if (c->id_ < CellBlock::kCapacity) {
        for (const auto& [tid, block] : thread_blocks_) {
          sum += block->cells[c->id_].load(std::memory_order_relaxed);
        }
      }
      auto it = overflow_.find(c->id_);
      if (it != overflow_.end()) sum += it->second;
      out[c->name_] = static_cast<double>(sum);
    }
    for (const auto& g : gauges_) out[g->name_] = g->Value();
    for (const auto& cb : callbacks_) {
      if (cb.fn) {
        live.emplace_back(cb.name, cb.fn);
      } else {
        out[cb.name] = cb.frozen;
      }
    }
    for (const auto& h : histograms_) {
      const StatsAccumulator s = h->Snapshot();
      if (s.count() == 0) continue;
      out[h->name_ + ".count"] = static_cast<double>(s.count());
      out[h->name_ + ".sum"] = s.sum();
      out[h->name_ + ".min"] = s.min();
      out[h->name_ + ".max"] = s.max();
      out[h->name_ + ".p50"] = s.Percentile(50);
      out[h->name_ + ".p95"] = s.Percentile(95);
      out[h->name_ + ".p99"] = s.Percentile(99);
    }
  }
  // Pull-model gauges read component state behind component locks —
  // evaluate them with the registry mutex released (see class comment).
  for (const auto& [name, fn] : live) out[name] = fn();
  return out;
}

void Registry::StartPeriodicExport(const std::string& path, double period_s) {
  if (!enabled_ || path.empty() || period_s <= 0.0) return;
  if (exporter_.joinable()) return;
  export_stop_ = false;
  exporter_ = std::thread(&Registry::ExportLoop, this, path, period_s);
}

void Registry::StopPeriodicExport() {
  if (!exporter_.joinable()) return;
  {
    std::lock_guard<std::mutex> l(export_mu_);
    export_stop_ = true;
  }
  export_cv_.notify_all();
  exporter_.join();
}

void Registry::ExportLoop(std::string path, double period_s) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  const auto t0 = std::chrono::steady_clock::now();
  const auto write_line = [&]() {
    const double ts_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    const std::map<std::string, double> snap = Snapshot();
    std::string line = "{\"ts_ms\":";
    AppendDouble(&line, ts_ms);
    line += ",\"metrics\":{";
    bool first = true;
    for (const auto& [k, v] : snap) {
      if (!first) line += ',';
      first = false;
      line += '"';
      line += k;  // metric names are our own identifiers: no escaping
      line += "\":";
      AppendDouble(&line, v);
    }
    line += "}}\n";
    std::fputs(line.c_str(), f);
    std::fflush(f);
  };
  std::unique_lock<std::mutex> l(export_mu_);
  while (!export_stop_) {
    const bool stopped = export_cv_.wait_for(
        l, std::chrono::duration<double>(period_s),
        [&]() { return export_stop_; });
    if (stopped) break;
    l.unlock();
    write_line();
    l.lock();
  }
  l.unlock();
  write_line();  // final snapshot on stop
  std::fclose(f);
}

}  // namespace urpsm::obs
