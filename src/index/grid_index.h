#ifndef URPSM_SRC_INDEX_GRID_INDEX_H_
#define URPSM_SRC_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/geo/point.h"
#include "src/model/types.h"

namespace urpsm {

/// Uniform spatial grid over the road network's bounding box, storing the
/// set of workers whose route anchor lies in each cell (Sec. 5.3 line 1 of
/// Algo. 5 "build grid index"). The cell side g (km) is the paper's grid
/// size parameter (Fig. 5). Worker lookups expand outward ring by ring so
/// candidate filtering touches only cells that can contain feasible
/// workers.
class GridIndex {
 public:
  GridIndex(Point lo, Point hi, double cell_km);

  void Insert(WorkerId w, const Point& p);
  void Remove(WorkerId w, const Point& p);
  void Move(WorkerId w, const Point& from, const Point& to);

  /// Workers whose anchor may lie within `radius_km` of `p`: the union of
  /// all cells intersecting the disk (a superset of the exact disk —
  /// callers re-check exact distances).
  std::vector<WorkerId> WithinRadius(const Point& p, double radius_km) const;

  /// WithinRadius into a caller-owned reusable buffer (cleared first) —
  /// the allocation-free variant for hot-path window workspaces.
  void WithinRadiusInto(const Point& p, double radius_km,
                        std::vector<WorkerId>* out) const;

  /// All indexed workers.
  std::vector<WorkerId> All() const;

  int cells_x() const { return cells_x_; }
  int cells_y() const { return cells_y_; }
  double cell_km() const { return cell_km_; }

  /// Approximate heap memory consumed by the index, in bytes.
  std::int64_t MemoryBytes() const;

 protected:
  int CellX(double x) const;
  int CellY(double y) const;
  int CellOf(const Point& p) const { return CellY(p.y) * cells_x_ + CellX(p.x); }

  Point lo_;
  double cell_km_;
  int cells_x_ = 0;
  int cells_y_ = 0;
  std::vector<std::vector<WorkerId>> cells_;
};

/// tshare-style grid index [30]: additionally precomputes, for every cell,
/// the list of all cells sorted by center-to-center distance, enabling the
/// "search grids in distance order" procedure of T-Share. This is the
/// memory-hungry structure whose footprint the paper reports in Fig. 5
/// (hundreds of MB at small g on citywide networks, vs. <1 MB for the
/// plain index used by the other algorithms).
class TShareGridIndex : public GridIndex {
 public:
  TShareGridIndex(Point lo, Point hi, double cell_km);

  /// Cells in ascending center-distance from the cell containing `p`.
  const std::vector<int>& CellsByDistance(const Point& p) const;

  /// Workers of a cell, in insertion order.
  const std::vector<WorkerId>& CellWorkers(int cell) const {
    return cells_[static_cast<std::size_t>(cell)];
  }

  /// Center-to-center distance between the cells of `p` and cell id `c`.
  double CellCenterDistanceKm(const Point& p, int cell) const;

  std::int64_t MemoryBytes() const;

 private:
  Point CellCenter(int cell) const;

  // sorted_[c] = all cell ids ordered by distance from cell c.
  std::vector<std::vector<int>> sorted_;
};

}  // namespace urpsm

#endif  // URPSM_SRC_INDEX_GRID_INDEX_H_
