#include "src/index/grid_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace urpsm {

GridIndex::GridIndex(Point lo, Point hi, double cell_km)
    : lo_(lo), cell_km_(cell_km) {
  assert(cell_km > 0.0);
  cells_x_ = std::max(1, static_cast<int>(std::ceil((hi.x - lo.x) / cell_km)));
  cells_y_ = std::max(1, static_cast<int>(std::ceil((hi.y - lo.y) / cell_km)));
  cells_.resize(static_cast<std::size_t>(cells_x_) * cells_y_);
}

int GridIndex::CellX(double x) const {
  const int c = static_cast<int>((x - lo_.x) / cell_km_);
  return std::clamp(c, 0, cells_x_ - 1);
}

int GridIndex::CellY(double y) const {
  const int c = static_cast<int>((y - lo_.y) / cell_km_);
  return std::clamp(c, 0, cells_y_ - 1);
}

void GridIndex::Insert(WorkerId w, const Point& p) {
  cells_[static_cast<std::size_t>(CellOf(p))].push_back(w);
}

void GridIndex::Remove(WorkerId w, const Point& p) {
  auto& cell = cells_[static_cast<std::size_t>(CellOf(p))];
  auto it = std::find(cell.begin(), cell.end(), w);
  if (it != cell.end()) {
    *it = cell.back();
    cell.pop_back();
  }
}

void GridIndex::Move(WorkerId w, const Point& from, const Point& to) {
  if (CellOf(from) == CellOf(to)) return;
  Remove(w, from);
  Insert(w, to);
}

std::vector<WorkerId> GridIndex::WithinRadius(const Point& p,
                                              double radius_km) const {
  std::vector<WorkerId> out;
  WithinRadiusInto(p, radius_km, &out);
  return out;
}

void GridIndex::WithinRadiusInto(const Point& p, double radius_km,
                                 std::vector<WorkerId>* out) const {
  out->clear();
  if (radius_km < 0.0) return;
  const int cx = CellX(p.x);
  const int cy = CellY(p.y);
  const int rings = static_cast<int>(radius_km / cell_km_) + 1;
  const int x0 = std::max(0, cx - rings);
  const int x1 = std::min(cells_x_ - 1, cx + rings);
  const int y0 = std::max(0, cy - rings);
  const int y1 = std::min(cells_y_ - 1, cy + rings);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const auto& cell = cells_[static_cast<std::size_t>(y) * cells_x_ + x];
      out->insert(out->end(), cell.begin(), cell.end());
    }
  }
}

std::vector<WorkerId> GridIndex::All() const {
  std::vector<WorkerId> out;
  for (const auto& cell : cells_) out.insert(out.end(), cell.begin(), cell.end());
  return out;
}

std::int64_t GridIndex::MemoryBytes() const {
  std::int64_t total = static_cast<std::int64_t>(cells_.capacity() *
                                                 sizeof(std::vector<WorkerId>));
  for (const auto& cell : cells_) {
    total += static_cast<std::int64_t>(cell.capacity() * sizeof(WorkerId));
  }
  return total;
}

TShareGridIndex::TShareGridIndex(Point lo, Point hi, double cell_km)
    : GridIndex(lo, hi, cell_km) {
  const int n = cells_x_ * cells_y_;
  sorted_.resize(static_cast<std::size_t>(n));
  std::vector<std::pair<double, int>> order(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    const Point center = CellCenter(c);
    for (int d = 0; d < n; ++d) {
      order[static_cast<std::size_t>(d)] = {
          EuclideanDistance(center, CellCenter(d)), d};
    }
    std::sort(order.begin(), order.end());
    auto& row = sorted_[static_cast<std::size_t>(c)];
    row.resize(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) row[static_cast<std::size_t>(d)] = order[static_cast<std::size_t>(d)].second;
  }
}

Point TShareGridIndex::CellCenter(int cell) const {
  const int y = cell / cells_x_;
  const int x = cell % cells_x_;
  return {lo_.x + (x + 0.5) * cell_km_, lo_.y + (y + 0.5) * cell_km_};
}

const std::vector<int>& TShareGridIndex::CellsByDistance(const Point& p) const {
  return sorted_[static_cast<std::size_t>(CellOf(p))];
}

double TShareGridIndex::CellCenterDistanceKm(const Point& p, int cell) const {
  return EuclideanDistance(CellCenter(CellOf(p)), CellCenter(cell));
}

std::int64_t TShareGridIndex::MemoryBytes() const {
  std::int64_t total = GridIndex::MemoryBytes();
  total += static_cast<std::int64_t>(sorted_.capacity() *
                                     sizeof(std::vector<int>));
  for (const auto& row : sorted_) {
    total += static_cast<std::int64_t>(row.capacity() * sizeof(int));
  }
  return total;
}

}  // namespace urpsm
