#ifndef URPSM_SRC_GEO_POINT_H_
#define URPSM_SRC_GEO_POINT_H_

#include <cmath>

namespace urpsm {

/// Planar coordinate of a road-network vertex, in kilometres.
///
/// The paper stores latitude/longitude per vertex and uses the Euclidean
/// distance between coordinates as a lower bound on the network shortest
/// distance (Sec. 5.1). We work in a projected planar frame, so plain
/// Euclidean distance is exact for that purpose.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points, in kilometres.
inline double EuclideanDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace urpsm

#endif  // URPSM_SRC_GEO_POINT_H_
