#ifndef URPSM_SRC_CORE_DECISION_H_
#define URPSM_SRC_CORE_DECISION_H_

#include <vector>

#include "src/model/feasibility.h"
#include "src/model/route.h"
#include "src/model/types.h"

namespace urpsm {

/// A worker together with the decision-phase lower bound on its minimal
/// insertion cost for the current request.
struct WorkerBound {
  WorkerId worker = kInvalidWorker;
  double lower_bound = kInf;
};

/// LB(Delta*) of Sec. 5.1 (Lemma 7, Eq. 15-17): a lower bound on the
/// minimal increased distance of inserting `r` into `route`, computed with
/// Euclidean travel-time lower bounds and the route's cached schedule.
///
/// Issues **zero** shortest-distance queries: the caller supplies
/// L = dis(o_r, d_r) (the decision phase's single query, shared across all
/// workers). Returns kInf when even the relaxed feasibility checks fail —
/// in that case the exact insertion is provably infeasible too.
double DecisionLowerBound(const Worker& worker, const Route& route,
                          const RouteState& st, const Request& r, double L,
                          const RoadNetwork& graph);

/// Batched decision phase: lower bounds for every candidate (worker,
/// state) pair of ONE request, gathering all per-candidate Euclidean bound
/// columns in a single pass over the concatenated route-state coordinate
/// arrays before running the DP per candidate. out[i] is bit-identical to
/// DecisionLowerBound(workers[i], ..., states[i], r, L, graph) — the
/// element arithmetic and the DP are shared, only the gather is fused.
void BatchDecisionLowerBounds(const std::vector<const Worker*>& workers,
                              const std::vector<const RouteState*>& states,
                              const Request& r, double L,
                              const RoadNetwork& graph,
                              std::vector<double>* out);

/// Reference implementation computing every Euclidean bound on demand
/// with per-position calls into the graph (the pre-column code path).
/// DecisionLowerBound gathers the same bounds as two flat per-request
/// columns over RouteState::pts first — identical arithmetic per element,
/// so the two are bit-identical (asserted by decision_test's fuzz;
/// bench_hotpath times both as the before/after).
double DecisionLowerBoundReference(const Worker& worker, const Route& route,
                                   const RouteState& st, const Request& r,
                                   double L, const RoadNetwork& graph);

}  // namespace urpsm

#endif  // URPSM_SRC_CORE_DECISION_H_
