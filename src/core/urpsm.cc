#include "src/core/urpsm.h"

#include <sstream>

namespace urpsm {

namespace {

std::string Problem(const std::string& what, int id) {
  std::ostringstream out;
  out << what << " (id " << id << ")";
  return out.str();
}

}  // namespace

std::string ValidateInstance(const Instance& instance) {
  const VertexId n = instance.graph.num_vertices();
  if (n == 0) return "empty road network";
  for (std::size_t i = 0; i < instance.workers.size(); ++i) {
    const Worker& w = instance.workers[i];
    if (w.id != static_cast<WorkerId>(i)) return Problem("worker id not dense", w.id);
    if (w.initial_location < 0 || w.initial_location >= n) {
      return Problem("worker location out of range", w.id);
    }
    if (w.capacity <= 0) return Problem("non-positive worker capacity", w.id);
  }
  double prev_release = -kInf;
  for (std::size_t i = 0; i < instance.requests.size(); ++i) {
    const Request& r = instance.requests[i];
    if (r.id != static_cast<RequestId>(i)) return Problem("request id not dense", r.id);
    if (r.origin < 0 || r.origin >= n) return Problem("origin out of range", r.id);
    if (r.destination < 0 || r.destination >= n) {
      return Problem("destination out of range", r.id);
    }
    if (r.deadline < r.release_time) return Problem("deadline before release", r.id);
    if (r.capacity <= 0) return Problem("non-positive request capacity", r.id);
    if (r.penalty < 0.0) return Problem("negative penalty", r.id);
    if (r.release_time < prev_release) return Problem("requests unsorted", r.id);
    prev_release = r.release_time;
  }
  return "";
}

}  // namespace urpsm
