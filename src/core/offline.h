#ifndef URPSM_SRC_CORE_OFFLINE_H_
#define URPSM_SRC_CORE_OFFLINE_H_

#include <vector>

#include "src/model/feasibility.h"
#include "src/model/types.h"

namespace urpsm {

/// Exact offline optimum of a (tiny) URPSM instance.
///
/// The paper proves no online algorithm has a constant competitive ratio
/// (Sec. 3.3) but never measures the gap; this solver computes the true
/// clairvoyant optimum on small instances by exhaustive search, enabling
/// empirical competitive-ratio measurements (bench_optimality_gap) and
/// ground-truth tests for the online planners.
///
/// Model: the offline planner knows every request in advance but still
/// must respect release times (a pickup cannot happen before t_r; waiting
/// at a vertex is free — only travel counts toward D(S_w)), deadlines and
/// capacities. It minimizes alpha * sum_w D(S_w) + sum_rejected p_r over
/// all serve/reject subsets, worker assignments and stop orderings.
struct OfflineSolution {
  double unified_cost = 0.0;
  double total_distance = 0.0;
  int served = 0;
  /// Per request id: serving worker or kInvalidWorker.
  std::vector<WorkerId> assignment;
};

/// Exhaustive branch-and-bound. Complexity is exponential; intended for
/// instances with at most ~8 requests and ~3 workers (asserts on larger).
OfflineSolution SolveOffline(const std::vector<Worker>& workers,
                             const std::vector<Request>& requests,
                             double alpha, PlanningContext* ctx);

/// Minimal travel cost of one worker serving exactly `assigned` (all of
/// them), honoring release/deadline/capacity; kInf if infeasible.
/// Exposed for tests.
double BestRouteCost(const Worker& worker,
                     const std::vector<RequestId>& assigned,
                     PlanningContext* ctx);

}  // namespace urpsm

#endif  // URPSM_SRC_CORE_OFFLINE_H_
