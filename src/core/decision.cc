#include "src/core/decision.h"

#include <algorithm>
#include <vector>

namespace urpsm {

namespace {

/// The DP of Lemma 7 / Eq. 15-17 over precomputed per-position Euclidean
/// bound columns: euc_o[k] / euc_d[k] bound the travel time from route
/// position k to the request's origin / destination. Mirrors
/// DecisionLowerBoundReference below statement for statement — only the
/// bound *evaluations* differ (column reads vs on-demand lambda calls),
/// and the element arithmetic is identical, so the results are bit-equal
/// (decision_test fuzz-pins the pair).
double DecisionDp(const RouteState& st, const Request& r, double L, int cap,
                  const double* euc_o, const double* euc_d) {
  const int n = st.n;
  const auto leg = [&](int k) {
    return st.arr[static_cast<std::size_t>(k + 1)] -
           st.arr[static_cast<std::size_t>(k)];
  };

  double best = kInf;
  double dio = kInf;  // Dio_euc[j] of Eq. (16)

  for (int j = 0; j <= n; ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (st.arr[js] > r.deadline) break;  // exact arrival: safe cutoff

    // Cases i == j (first two branches of Eq. 17).
    if (st.picked[js] <= cap && st.arr[js] + euc_o[j] + L <= r.deadline) {
      const double lb = (j == n) ? euc_o[j] + L
                                 : euc_o[j] + L + euc_d[j + 1] - leg(j);
      if ((j == n || lb <= st.slack[js]) && lb < best) best = lb;
    }

    // General case i < j (third branch of Eq. 17).
    if (j > 0 && dio < kInf && st.picked[js] <= cap) {
      const double ldet_d =
          (j == n) ? euc_d[j] : euc_d[j] + euc_d[j + 1] - leg(j);
      const bool ddl_ok = st.arr[js] + dio + euc_d[j] <= r.deadline;
      const bool slack_ok = j == n || dio + ldet_d <= st.slack[js];
      if (ddl_ok && slack_ok) best = std::min(best, dio + ldet_d);
    }

    // Transition of Eq. (16).
    if (j < n) {
      if (st.picked[js] > cap) {
        dio = kInf;
      } else {
        const double ldet = euc_o[j] + euc_o[j + 1] - leg(j);
        if (ldet <= st.slack[js]) dio = std::min(dio, ldet);
      }
    }
  }
  // Delta* >= 0 always (detours are non-negative in a metric), so clamping
  // tightens the bound without invalidating it.
  return best == kInf ? kInf : std::max(0.0, best);
}

}  // namespace

// Mirrors LinearDpInsertion with every network distance that would need a
// query replaced by its Euclidean travel-time lower bound, and every leg
// distance taken from the schedule (arr[k+1] - arr[k], Lemma 7). All
// feasibility filters are *relaxations* of the exact ones (lower-bound
// distances make deadline/slack checks easier to pass), so the minimum is
// taken over a superset of the exact feasible placements with
// value-wise-smaller costs — a valid lower bound on Delta*.
//
// The Euclidean bounds are gathered ONCE per (route, request) as two flat
// columns over the route-state coordinate array — one tight pass instead
// of the reference's ~5 on-demand evaluations per position (each lambda
// call recomputed its hypot) — and only up to the deadline cutoff the DP
// loop would reach anyway. Element-wise the arithmetic is exactly
// EuclideanLowerBoundMin, so the result is bit-identical to the
// reference.
double DecisionLowerBound(const Worker& worker, const Route& route,
                          const RouteState& st, const Request& r, double L,
                          const RoadNetwork& graph) {
  (void)route;
  const int n = st.n;
  const int cap = worker.capacity - r.capacity;
  if (cap < 0) return kInf;

  // Gather limit: the DP breaks at the first j with arr[j] > deadline and
  // touches columns only up to index j (via j-1's j+1 accesses).
  int m = n;
  for (int k = 0; k <= n; ++k) {
    if (st.arr[static_cast<std::size_t>(k)] > r.deadline) {
      m = k;
      break;
    }
  }

  const Point origin = graph.coord(r.origin);
  const Point dest = graph.coord(r.destination);
  const double vmax = MaxSpeedKmPerMin();
  thread_local std::vector<double> o_col;
  thread_local std::vector<double> d_col;
  o_col.resize(static_cast<std::size_t>(m) + 1);
  d_col.resize(static_cast<std::size_t>(m) + 1);
  for (int k = 0; k <= m; ++k) {
    // Same expression as EuclideanLowerBoundMin element-wise (divide, not
    // multiply-by-reciprocal) — the bit-identity with the reference
    // depends on it.
    const Point& p = st.pts[static_cast<std::size_t>(k)];
    o_col[static_cast<std::size_t>(k)] = EuclideanDistance(p, origin) / vmax;
    d_col[static_cast<std::size_t>(k)] = EuclideanDistance(p, dest) / vmax;
  }
  return DecisionDp(st, r, L, cap, o_col.data(), d_col.data());
}

void BatchDecisionLowerBounds(const std::vector<const Worker*>& workers,
                              const std::vector<const RouteState*>& states,
                              const Request& r, double L,
                              const RoadNetwork& graph,
                              std::vector<double>* out) {
  const std::size_t nc = workers.size();
  out->resize(nc);

  const Point origin = graph.coord(r.origin);
  const Point dest = graph.coord(r.destination);
  const double vmax = MaxSpeedKmPerMin();

  // Per-candidate gather limit (same rule as DecisionLowerBound), with the
  // columns of all candidates laid out back to back in one flat buffer —
  // one tight gather loop for the whole candidate set.
  thread_local std::vector<std::size_t> offset;
  thread_local std::vector<int> limit;
  thread_local std::vector<double> o_col;
  thread_local std::vector<double> d_col;
  offset.resize(nc + 1);
  limit.resize(nc);
  offset[0] = 0;
  for (std::size_t c = 0; c < nc; ++c) {
    const RouteState& st = *states[c];
    int m = st.n;
    for (int k = 0; k <= st.n; ++k) {
      if (st.arr[static_cast<std::size_t>(k)] > r.deadline) {
        m = k;
        break;
      }
    }
    const bool skip = workers[c]->capacity - r.capacity < 0;
    limit[c] = skip ? -1 : m;  // infeasible capacity gathers nothing
    offset[c + 1] = offset[c] + (skip ? 0 : static_cast<std::size_t>(m) + 1);
  }
  o_col.resize(offset[nc]);
  d_col.resize(offset[nc]);
  for (std::size_t c = 0; c < nc; ++c) {
    const RouteState& st = *states[c];
    double* oc = o_col.data() + offset[c];
    double* dc = d_col.data() + offset[c];
    for (int k = 0; k <= limit[c]; ++k) {
      // Same expression as DecisionLowerBound's gather element-wise — the
      // bit-identity depends on it.
      const Point& p = st.pts[static_cast<std::size_t>(k)];
      oc[k] = EuclideanDistance(p, origin) / vmax;
      dc[k] = EuclideanDistance(p, dest) / vmax;
    }
  }

  for (std::size_t c = 0; c < nc; ++c) {
    if (limit[c] < 0) {
      (*out)[c] = kInf;
      continue;
    }
    const int cap = workers[c]->capacity - r.capacity;
    (*out)[c] = DecisionDp(*states[c], r, L, cap, o_col.data() + offset[c],
                           d_col.data() + offset[c]);
  }
}

// The pre-column code path, verbatim: every Euclidean bound is an
// on-demand lambda call into the graph, re-evaluated at each use (the DP
// touches most positions ~5 times), and route positions resolve through
// VertexAt's stop-list indirection. Kept as-is — NOT routed through
// DecisionDp — so bench_hotpath's before/after really measures the
// historical cost profile; the element arithmetic is identical, so the
// result is still bit-equal to the column path (fuzz-pinned).
double DecisionLowerBoundReference(const Worker& worker, const Route& route,
                                   const RouteState& st, const Request& r,
                                   double L, const RoadNetwork& graph) {
  const int n = st.n;
  const int cap = worker.capacity - r.capacity;
  if (cap < 0) return kInf;

  const auto euc_o = [&](int k) {
    return graph.EuclideanLowerBoundMin(route.VertexAt(k), r.origin);
  };
  const auto euc_d = [&](int k) {
    return graph.EuclideanLowerBoundMin(route.VertexAt(k), r.destination);
  };
  const auto leg = [&](int k) {
    return st.arr[static_cast<std::size_t>(k + 1)] -
           st.arr[static_cast<std::size_t>(k)];
  };

  double best = kInf;
  double dio = kInf;  // Dio_euc[j] of Eq. (16)

  for (int j = 0; j <= n; ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (st.arr[js] > r.deadline) break;  // exact arrival: safe cutoff

    // Cases i == j (first two branches of Eq. 17).
    if (st.picked[js] <= cap && st.arr[js] + euc_o(j) + L <= r.deadline) {
      const double lb = (j == n) ? euc_o(j) + L
                                 : euc_o(j) + L + euc_d(j + 1) - leg(j);
      if ((j == n || lb <= st.slack[js]) && lb < best) best = lb;
    }

    // General case i < j (third branch of Eq. 17).
    if (j > 0 && dio < kInf && st.picked[js] <= cap) {
      const double ldet_d =
          (j == n) ? euc_d(j) : euc_d(j) + euc_d(j + 1) - leg(j);
      const bool ddl_ok = st.arr[js] + dio + euc_d(j) <= r.deadline;
      const bool slack_ok = j == n || dio + ldet_d <= st.slack[js];
      if (ddl_ok && slack_ok) best = std::min(best, dio + ldet_d);
    }

    // Transition of Eq. (16).
    if (j < n) {
      if (st.picked[js] > cap) {
        dio = kInf;
      } else {
        const double ldet = euc_o(j) + euc_o(j + 1) - leg(j);
        if (ldet <= st.slack[js]) dio = std::min(dio, ldet);
      }
    }
  }
  return best == kInf ? kInf : std::max(0.0, best);
}

}  // namespace urpsm
