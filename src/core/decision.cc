#include "src/core/decision.h"

#include <algorithm>

namespace urpsm {

// Mirrors LinearDpInsertion with every network distance that would need a
// query replaced by its Euclidean travel-time lower bound, and every leg
// distance taken from the schedule (arr[k+1] - arr[k], Lemma 7). All
// feasibility filters are *relaxations* of the exact ones (lower-bound
// distances make deadline/slack checks easier to pass), so the minimum is
// taken over a superset of the exact feasible placements with
// value-wise-smaller costs — a valid lower bound on Delta*.
double DecisionLowerBound(const Worker& worker, const Route& route,
                          const RouteState& st, const Request& r, double L,
                          const RoadNetwork& graph) {
  const int n = st.n;
  const int cap = worker.capacity - r.capacity;
  if (cap < 0) return kInf;

  const auto euc_o = [&](int k) {
    return graph.EuclideanLowerBoundMin(route.VertexAt(k), r.origin);
  };
  const auto euc_d = [&](int k) {
    return graph.EuclideanLowerBoundMin(route.VertexAt(k), r.destination);
  };
  const auto leg = [&](int k) {
    return st.arr[static_cast<std::size_t>(k + 1)] -
           st.arr[static_cast<std::size_t>(k)];
  };

  double best = kInf;
  double dio = kInf;  // Dio_euc[j] of Eq. (16)

  for (int j = 0; j <= n; ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (st.arr[js] > r.deadline) break;  // exact arrival: safe cutoff

    // Cases i == j (first two branches of Eq. 17).
    if (st.picked[js] <= cap && st.arr[js] + euc_o(j) + L <= r.deadline) {
      const double lb = (j == n) ? euc_o(j) + L
                                 : euc_o(j) + L + euc_d(j + 1) - leg(j);
      if ((j == n || lb <= st.slack[js]) && lb < best) best = lb;
    }

    // General case i < j (third branch of Eq. 17).
    if (j > 0 && dio < kInf && st.picked[js] <= cap) {
      const double ldet_d =
          (j == n) ? euc_d(j) : euc_d(j) + euc_d(j + 1) - leg(j);
      const bool ddl_ok = st.arr[js] + dio + euc_d(j) <= r.deadline;
      const bool slack_ok = j == n || dio + ldet_d <= st.slack[js];
      if (ddl_ok && slack_ok) best = std::min(best, dio + ldet_d);
    }

    // Transition of Eq. (16).
    if (j < n) {
      if (st.picked[js] > cap) {
        dio = kInf;
      } else {
        const double ldet = euc_o(j) + euc_o(j + 1) - leg(j);
        if (ldet <= st.slack[js]) dio = std::min(dio, ldet);
      }
    }
  }
  // Delta* >= 0 always (detours are non-negative in a metric), so clamping
  // tightens the bound without invalidating it.
  return best == kInf ? kInf : std::max(0.0, best);
}

}  // namespace urpsm
