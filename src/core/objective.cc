#include "src/core/objective.h"

namespace urpsm {

void SetServeAllPenalties(std::vector<Request>* requests) {
  for (Request& r : *requests) r.penalty = kServeAllPenalty;
}

void SetUnitPenalties(std::vector<Request>* requests) {
  for (Request& r : *requests) r.penalty = 1.0;
}

void SetRevenuePenalties(std::vector<Request>* requests, double fare_per_min,
                         DistanceOracle* oracle) {
  for (Request& r : *requests) {
    r.penalty = fare_per_min * oracle->Distance(r.origin, r.destination);
  }
}

void ScalePenalties(std::vector<Request>* requests, double factor) {
  for (Request& r : *requests) r.penalty *= factor;
}

double Revenue(const std::vector<Request>& requests,
               const std::vector<bool>& served, double total_distance,
               double fare_per_min, double worker_cost_per_min,
               DistanceOracle* oracle) {
  double fare = 0.0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (served[i]) {
      fare += fare_per_min *
              oracle->Distance(requests[i].origin, requests[i].destination);
    }
  }
  return fare - worker_cost_per_min * total_distance;
}

}  // namespace urpsm
