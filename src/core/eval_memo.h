#ifndef URPSM_SRC_CORE_EVAL_MEMO_H_
#define URPSM_SRC_CORE_EVAL_MEMO_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/model/types.h"

namespace urpsm {

/// Per-(request, window) memo of planner evaluations keyed on
/// (worker, route version).
///
/// Route::version() defines semantic equality of route state: equal
/// versions of the same Route object imply an identical route, so any
/// quantity that is a pure function of (route state, request) — the
/// decision-phase lower bound, the linear-DP insertion result, and the
/// number of distance queries that DP evaluation issues — can be reused
/// verbatim while the version holds. One EvalMemo lives inside each
/// window slot's per-request Prep and spans that request's evaluations
/// within one window: the speculative scan populates it, and commit-time
/// validation replans plus same-window conflict replans consult it, so a
/// speculation miss recomputes only the candidates whose versions
/// actually moved (O(affected), not O(window)).
///
/// Determinism contract: a memo hit reproduces the exact bound / DP
/// result a fresh evaluation would compute, and the caller re-bills the
/// recorded query count to the active billing scope, so reported
/// distance-query totals are bit-identical with the memo on or off. The
/// queries the memo *avoided* are tracked separately in
/// `saved_queries`.
///
/// At most one entry is kept per worker (a newer version supersedes the
/// old — stale versions can never hit again). Lookups walk the entry
/// list from a rotating cursor: consultation normally happens in the
/// same candidate order as population, so the expected probe length is
/// O(1). Not thread-safe; each instance is owned by exactly one request
/// slot and only ever touched by the single thread currently planning
/// that request.
class EvalMemo {
 public:
  struct Entry {
    WorkerId worker = kInvalidWorker;
    std::uint64_t version = 0;
    double lb = 0.0;            // decision-phase lower bound (may be +inf)
    double delta = 0.0;         // DP result, valid when dp_valid
    int i = -1;                 // DP pickup position
    int j = -1;                 // DP dropoff position
    std::int64_t queries = 0;   // distance queries the DP evaluation billed
    bool lb_valid = false;      // lb filled (a speculative scan can see a
                                // version move mid-scan and upsert the DP
                                // side first, leaving lb unfilled)
    bool dp_valid = false;      // DP fields filled
  };

  /// Entry for `w` at exactly `version`, or nullptr (no entry / stale).
  const Entry* Find(WorkerId w, std::uint64_t version) {
    Entry* e = FindWorker(w);
    return (e != nullptr && e->version == version) ? e : nullptr;
  }

  /// Entry for `w` at `version`, creating it (or resetting a stale one —
  /// lb_valid and dp_valid both drop) as needed.
  Entry& Upsert(WorkerId w, std::uint64_t version) {
    Entry* e = FindWorker(w);
    if (e == nullptr) {
      entries_.push_back(Entry{});
      e = &entries_.back();
      e->worker = w;
      e->version = version;
    } else if (e->version != version) {
      *e = Entry{};
      e->worker = w;
      e->version = version;
    }
    return *e;
  }

  /// Forgets all entries (capacity retained) and zeroes the counters —
  /// called when the owning slot is recycled for a new window's request.
  void Reset() {
    entries_.clear();
    cursor_ = 0;
    hits = misses = saved_queries = 0;
  }

  /// Adds the counters into the given accumulators and zeroes them, so
  /// each harvest point (post-plan, post-validate, post-commit-replan)
  /// sees only the traffic since the previous one.
  void Drain(std::int64_t* out_hits, std::int64_t* out_misses,
             std::int64_t* out_saved) {
    *out_hits += hits;
    *out_misses += misses;
    *out_saved += saved_queries;
    hits = misses = saved_queries = 0;
  }

  std::size_t size() const { return entries_.size(); }

  /// Lookup counters, bumped by the consuming scan: one hit or miss per
  /// memo consultation (decision bound and DP evaluation each count).
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  /// Distance queries that memo hits avoided issuing (re-billed to the
  /// active scope by the caller, so they never perturb reported totals).
  std::int64_t saved_queries = 0;

 private:
  Entry* FindWorker(WorkerId w) {
    const std::size_t n = entries_.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t at = cursor_ + k < n ? cursor_ + k : cursor_ + k - n;
      if (entries_[at].worker == w) {
        cursor_ = at + 1 < n ? at + 1 : 0;
        return &entries_[at];
      }
    }
    return nullptr;
  }

  std::vector<Entry> entries_;
  std::size_t cursor_ = 0;
};

}  // namespace urpsm

#endif  // URPSM_SRC_CORE_EVAL_MEMO_H_
