#include "src/core/planner.h"

#include <algorithm>

#include "src/core/decision.h"
#include "src/insertion/insertion.h"
#include "src/shortest/oracle.h"
#include "src/util/scratch.h"

namespace urpsm {

double CandidateRadiusKm(const Request& r, double L, double now) {
  // The pickup must happen by e_r - L (Eq. 6). A worker anchored at
  // distance euc from o_r cannot reach it before
  // anchor_time + euc / v_max, so euc <= (e_r - L - anchor_time) * v_max
  // is necessary. Busy workers can have anchor_time < now (their anchor is
  // the last stop they passed), which *enlarges* their window; to stay a
  // strict superset we allow one deadline-span of anchor lag — a worker
  // whose anchor is older than that cannot slot the pickup in time anyway.
  const double slack_min = (r.deadline - L) - now;
  if (slack_min < 0.0) return -1.0;
  const double lag_allowance = r.deadline - r.release_time;
  return (slack_min + lag_allowance) * MaxSpeedKmPerMin();
}

std::vector<std::size_t> AscendingLowerBoundOrder(
    const std::vector<WorkerBound>& bounds) {
  // Deterministic for a given bounds array: std::sort's introsort is a
  // pure function of the comparator decisions and element positions, and
  // every caller funnels through this one instantiation.
  std::vector<std::size_t> order(bounds.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return bounds[a].lower_bound < bounds[b].lower_bound;
  });
  return order;
}

std::vector<WorkerId> FilterCandidates(PlanningContext* ctx,
                                       const GridIndex& index,
                                       const Request& r, double L,
                                       double now) {
  std::vector<WorkerId> out;
  FilterCandidatesInto(ctx, index, r, L, now, &out);
  return out;
}

void FilterCandidatesInto(PlanningContext* ctx, const GridIndex& index,
                          const Request& r, double L, double now,
                          std::vector<WorkerId>* out) {
  out->clear();
  if (now + L > r.deadline) return;  // unservable even ideally
  const double radius = CandidateRadiusKm(r, L, now);
  if (radius < 0.0) return;
  const Point origin_pt = ctx->graph().coord(r.origin);
  index.WithinRadiusInto(origin_pt, radius, out);
}

WorkerId PlanRequestSequential(PlanningContext* ctx, Fleet* fleet,
                               const PlannerConfig& config, const Request& r,
                               double L,
                               const std::vector<WorkerId>& candidates,
                               InsertionCandidate* best_out,
                               std::int64_t* exact_evaluations,
                               const SpecCapture* spec, EvalMemo* memo) {
  // Multi-route gather (below) fetches every ordered candidate's columns
  // in one fused sweep, so per-candidate query attribution — and with it
  // the memo's re-billing contract — is impossible there. The memo also
  // needs a CachedOracle to re-bill into; without one it stands down and
  // the scan behaves exactly as if no memo were passed.
  const bool batch_gather = spec == nullptr && !config.use_pruning;
  CachedOracle* const billing =
      memo != nullptr && !batch_gather
          ? dynamic_cast<CachedOracle*>(ctx->oracle())
          : nullptr;
  const bool use_memo = billing != nullptr;

  // Phase 1 — decision (Algo. 4): per-worker lower bounds, no new queries.
  // Route states come from the fleet's per-worker cache (keyed on
  // Route::version): a worker whose route did not change since the last
  // request reuses its arrays instead of re-deriving them.
  // With a SpecCapture, each access additionally holds the worker's
  // stripe lock (a commit stage may be mutating the fleet concurrently)
  // and records the version it read.
  thread_local std::vector<WorkerBound> bounds;
  thread_local HighWaterClamp bounds_clamp;
  bounds.clear();
  double min_lb = kInf;
  if (spec == nullptr) {
    // Batched decision phase: the fleet is frozen for the scan (no commit
    // stage mutates it), so the cached state references stay valid while
    // the non-memoized candidates' Euclidean bound columns are gathered
    // in one fused pass. Each bound is bit-identical to the per-candidate
    // call — on subsets too, so memo hits simply drop out of the batch.
    thread_local std::vector<const Worker*> batch_workers;
    thread_local std::vector<const RouteState*> batch_states;
    thread_local std::vector<double> batch_lbs;
    thread_local std::vector<std::size_t> batch_slots;
    thread_local std::vector<double> all_lbs;
    thread_local HighWaterClamp batch_workers_clamp;
    thread_local HighWaterClamp batch_states_clamp;
    thread_local HighWaterClamp batch_lbs_clamp;
    thread_local HighWaterClamp batch_slots_clamp;
    thread_local HighWaterClamp all_lbs_clamp;
    batch_workers.clear();
    batch_states.clear();
    batch_slots.clear();
    all_lbs.assign(candidates.size(), kInf);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const WorkerId w = candidates[i];
      if (use_memo) {
        const EvalMemo::Entry* e = memo->Find(w, fleet->route(w).version());
        if (e != nullptr && e->lb_valid) {
          all_lbs[i] = e->lb;
          ++memo->hits;
          continue;
        }
        ++memo->misses;
      }
      batch_slots.push_back(i);
      batch_workers.push_back(&fleet->worker(w));
      batch_states.push_back(&fleet->CachedState(w, ctx));
    }
    BatchDecisionLowerBounds(batch_workers, batch_states, r, L, ctx->graph(),
                             &batch_lbs);
    for (std::size_t k = 0; k < batch_slots.size(); ++k) {
      const std::size_t i = batch_slots[k];
      all_lbs[i] = batch_lbs[k];
      if (use_memo) {
        const WorkerId w = candidates[i];
        EvalMemo::Entry& e = memo->Upsert(w, fleet->route(w).version());
        e.lb = batch_lbs[k];
        e.lb_valid = true;
      }
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const double lb = all_lbs[i];
      if (lb == kInf) continue;  // provably infeasible for this worker
      bounds.push_back({candidates[i], lb});
      min_lb = std::min(min_lb, lb);
    }
    batch_workers_clamp.Observe(&batch_workers);
    batch_states_clamp.Observe(&batch_states);
    batch_lbs_clamp.Observe(&batch_lbs);
    batch_slots_clamp.Observe(&batch_slots);
    all_lbs_clamp.Observe(&all_lbs);
  } else {
    // Speculative scans hold the worker's stripe lock per access (a commit
    // stage may be mutating the fleet concurrently) and record the version
    // they read, so they keep the lazy per-candidate loop.
    for (const WorkerId w : candidates) {
      std::unique_lock<std::mutex> spec_lock = fleet->LockWorker(w);
      const std::uint64_t version = fleet->route(w).version();
      spec->versions->push_back({w, version});
      double lb;
      const EvalMemo::Entry* e =
          use_memo ? memo->Find(w, version) : nullptr;
      if (e != nullptr && e->lb_valid) {
        lb = e->lb;
        ++memo->hits;
      } else {
        const Route& route = fleet->route(w);
        const RouteState& st = fleet->CachedStateLocked(w, ctx);
        lb = DecisionLowerBound(fleet->worker(w), route, st, r, L,
                                ctx->graph());
        if (use_memo) {
          ++memo->misses;
          EvalMemo::Entry& fresh = memo->Upsert(w, version);
          fresh.lb = lb;
          fresh.lb_valid = true;
        }
      }
      if (lb == kInf) continue;  // provably infeasible for this worker
      bounds.push_back({w, lb});
      min_lb = std::min(min_lb, lb);
    }
  }
  bounds_clamp.Observe(&bounds);
  if (bounds.empty()) return kInvalidWorker;
  // Line 5 of Algo. 4: reject when the penalty is cheaper than even the
  // optimistic cost of serving.
  if (r.penalty < config.alpha * min_lb) return kInvalidWorker;

  // Phase 2 — planning: scan in ascending LB order with exact insertion.
  const std::vector<std::size_t> order = AscendingLowerBoundOrder(bounds);

  // Multi-route gather: when the scan provably evaluates every ordered
  // candidate (no Lemma 8 cutoff, no concurrent mutation), all candidates'
  // origin/destination distance columns are fetched with one multi-source
  // oracle sweep up front. Billed queries and cell values are identical to
  // the lazy per-candidate gathers; pruned scans keep the lazy gather so
  // candidates cut off by Lemma 8 still pay no queries.
  thread_local std::vector<DistanceColumns> multi_cols;
  thread_local HighWaterClamp multi_cols_clamp;
  if (batch_gather) {
    thread_local std::vector<const Route*> batch_routes;
    thread_local std::vector<int> batch_cutoffs;
    thread_local HighWaterClamp batch_routes_clamp;
    thread_local HighWaterClamp batch_cutoffs_clamp;
    batch_routes.clear();
    batch_cutoffs.clear();
    for (const std::size_t k : order) {
      const WorkerId w = bounds[k].worker;
      batch_routes.push_back(&fleet->route(w));
      batch_cutoffs.push_back(InsertionCutoff(fleet->CachedState(w, ctx), r));
    }
    GatherDistanceColumnsMulti(batch_routes, batch_cutoffs, r, ctx,
                               &multi_cols);
    batch_routes_clamp.Observe(&batch_routes);
    batch_cutoffs_clamp.Observe(&batch_cutoffs);
    multi_cols_clamp.Observe(&multi_cols);
  }

  WorkerId best_worker = kInvalidWorker;
  InsertionCandidate best;
  for (std::size_t ko = 0; ko < order.size(); ++ko) {
    const std::size_t k = order[ko];
    // Lemma 8: every remaining worker's exact cost is at least its LB.
    if (config.use_pruning && best.feasible() &&
        LemmaEightCutoff(best.delta, bounds[k].lower_bound)) {
      break;
    }
    const WorkerId w = bounds[k].worker;
    if (exact_evaluations != nullptr) ++*exact_evaluations;
    // The fleet is frozen between Touch and ApplyInsertion, so this hits
    // the state cache warmed by the decision phase. (Speculative scans
    // have no freeze — the stripe lock keeps the read consistent, and a
    // mutation between the phases shows up as a version bump that fails
    // commit-time validation.)
    std::unique_lock<std::mutex> spec_lock;
    if (spec != nullptr) spec_lock = fleet->LockWorker(w);
    InsertionCandidate cand;
    if (batch_gather) {
      cand = LinearDpInsertion(fleet->worker(w), fleet->route(w),
                               fleet->CachedState(w, ctx), r, multi_cols[ko],
                               ctx);
    } else if (use_memo) {
      // A version-matched DP entry reproduces the exact evaluation —
      // result and billed query count alike (both are pure functions of
      // (route@version, request); CachedOracle bills cache hits too, so
      // the count is warmth-independent). Hits re-bill the recorded
      // count to the active scope; the queries actually avoided are
      // accounted separately in saved_queries.
      const std::uint64_t version = fleet->route(w).version();
      const EvalMemo::Entry* e = memo->Find(w, version);
      if (e != nullptr && e->dp_valid) {
        ++memo->hits;
        memo->saved_queries += e->queries;
        billing->BillCurrent(e->queries);
        cand.delta = e->delta;
        cand.i = e->i;
        cand.j = e->j;
      } else {
        ++memo->misses;
        std::int64_t eval_queries = 0;
        {
          const CachedOracle::BillingScope eval_scope(&eval_queries);
          cand = LinearDpInsertion(fleet->worker(w), fleet->route(w),
                                   spec != nullptr
                                       ? fleet->CachedStateLocked(w, ctx)
                                       : fleet->CachedState(w, ctx),
                                   r, ctx);
        }
        billing->BillCurrent(eval_queries);
        EvalMemo::Entry& fresh = memo->Upsert(w, version);
        fresh.delta = cand.delta;
        fresh.i = cand.i;
        fresh.j = cand.j;
        fresh.queries = eval_queries;
        fresh.dp_valid = true;
      }
    } else {
      cand = LinearDpInsertion(fleet->worker(w), fleet->route(w),
                               spec != nullptr
                                   ? fleet->CachedStateLocked(w, ctx)
                                   : fleet->CachedState(w, ctx),
                               r, ctx);
    }
    spec_lock = {};
    // Strict improvement only: ties on the exact cost go to the earliest
    // worker in the scan order. Together with the epsilon-guarded cutoff
    // above (which never prunes a potential tie, only strictly worse
    // workers), the chosen insertion is the same for any scan that
    // follows this order and evaluates a superset — in particular
    // ParallelGreedyDpPlanner's block-parallel scan and the dispatch-
    // window engine's per-shard scans are bit-identical to this one.
    if (cand.feasible() && cand.delta < best.delta) {
      best = cand;
      best_worker = w;
    }
  }
  if (best_worker == kInvalidWorker) return kInvalidWorker;
  if (config.exact_reject_check && r.penalty < config.alpha * best.delta) {
    return kInvalidWorker;
  }
  *best_out = best;
  return best_worker;
}

GreedyDpPlanner::GreedyDpPlanner(PlanningContext* ctx, Fleet* fleet,
                                 PlannerConfig config)
    : ctx_(ctx), fleet_(fleet), config_(config) {
  Point lo, hi;
  ctx_->graph().BoundingBox(&lo, &hi);
  index_ = std::make_unique<GridIndex>(lo, hi, config_.grid_cell_km);
  fleet_->AttachIndex(index_.get());
}

WorkerId GreedyDpPlanner::OnRequest(const Request& r) {
  const double now = r.release_time;
  const double L = ctx_->DirectDist(r.id);  // the decision phase's 1 query
  // Line 3 of Algo. 5: candidate filter via grid index and deadline.
  const std::vector<WorkerId> candidates =
      FilterCandidates(ctx_, *index_, r, L, now);
  if (candidates.empty()) return kInvalidWorker;

  // Touching only mutates the touched worker's own route, so committing
  // every candidate up front is equivalent to the historical interleaved
  // touch-then-bound loop — commits happen in the same candidate order.
  for (const WorkerId w : candidates) fleet_->Touch(w, now);

  InsertionCandidate best;
  const WorkerId best_worker = PlanRequestSequential(
      ctx_, fleet_, config_, r, L, candidates, &best, &exact_evaluations_);
  if (best_worker == kInvalidWorker) return kInvalidWorker;
  fleet_->ApplyInsertion(best_worker, r, best.i, best.j, ctx_->oracle());
  return best_worker;
}

}  // namespace urpsm
