#ifndef URPSM_SRC_CORE_URPSM_H_
#define URPSM_SRC_CORE_URPSM_H_

#include <string>
#include <vector>

#include "src/graph/road_network.h"
#include "src/model/types.h"

namespace urpsm {

/// A complete URPSM problem instance: the road network plus the worker
/// fleet and the (release-time-sorted) request stream. This is the unit
/// the workload generators produce, the I/O module round-trips, and the
/// simulator consumes.
struct Instance {
  std::string name;
  RoadNetwork graph;
  std::vector<Worker> workers;
  std::vector<Request> requests;  // sorted by release_time ascending
};

/// The unified cost UC(W, R) of Def. 5 from its two aggregates.
inline double UnifiedCost(double alpha, double total_distance,
                          double rejected_penalty_sum) {
  return alpha * total_distance + rejected_penalty_sum;
}

/// Structural validation of an instance: ids dense and in order, vertices
/// in range, deadlines after releases, positive capacities/penalties,
/// requests sorted by release time. Returns an empty string when valid,
/// else a description of the first problem found.
std::string ValidateInstance(const Instance& instance);

}  // namespace urpsm

#endif  // URPSM_SRC_CORE_URPSM_H_
