#ifndef URPSM_SRC_CORE_OBJECTIVE_H_
#define URPSM_SRC_CORE_OBJECTIVE_H_

#include <vector>

#include "src/model/types.h"
#include "src/shortest/oracle.h"

namespace urpsm {

/// Penalty used by the "minimize total distance while serving all
/// requests" preset. A large finite stand-in for the paper's p_r = inf so
/// that unified costs remain comparable arithmetic values.
inline constexpr double kServeAllPenalty = 1e12;

/// The unified objective (Def. 5): UC = alpha * sum_w D(S_w) +
/// sum_{rejected} p_r. Per-request penalties live in Request::penalty;
/// the objective itself only carries the distance weight alpha.
struct Objective {
  double alpha = 1.0;

  /// Special case (Sec. 3.2): minimize total travel distance while serving
  /// every request — alpha = 1, p_r = "infinite".
  static Objective MinTotalDistance() { return {1.0}; }

  /// Special case: maximize the number of served requests — alpha = 0,
  /// p_r = 1.
  static Objective MaxServedCount() { return {0.0}; }

  /// Special case: maximize platform revenue — alpha = c_w (worker cost
  /// per unit time), p_r = c_r * dis(o_r, d_r).
  static Objective MaxRevenue(double worker_cost_per_min) {
    return {worker_cost_per_min};
  }
};

/// Rewrites request penalties for the min-total-distance preset.
void SetServeAllPenalties(std::vector<Request>* requests);

/// Rewrites request penalties for the max-served-count preset (p_r = 1).
void SetUnitPenalties(std::vector<Request>* requests);

/// Rewrites request penalties for the revenue preset:
/// p_r = fare_per_min * dis(o_r, d_r). Issues one distance query per
/// request (these are the same L_r values every algorithm caches anyway).
void SetRevenuePenalties(std::vector<Request>* requests, double fare_per_min,
                         DistanceOracle* oracle);

/// Scales every penalty by `factor` (the paper's p_r sweep multiplies
/// dis(o_r, d_r) by 2..50; see Table 5).
void ScalePenalties(std::vector<Request>* requests, double factor);

/// Platform revenue under the reduction of Sec. 3.2 (Eq. 2):
/// revenue = c_r * sum_{served} dis(o_r, d_r) - c_w * sum_w D(S_w).
double Revenue(const std::vector<Request>& requests,
               const std::vector<bool>& served, double total_distance,
               double fare_per_min, double worker_cost_per_min,
               DistanceOracle* oracle);

}  // namespace urpsm

#endif  // URPSM_SRC_CORE_OBJECTIVE_H_
