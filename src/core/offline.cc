#include "src/core/offline.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>

namespace urpsm {

namespace {

/// DFS over stop orderings for one worker: pickups wait for release times,
/// drop-offs must meet deadlines, load must fit. Branch-and-bound on cost.
struct RouteSearch {
  PlanningContext* ctx;
  const Worker* worker;
  std::vector<Stop> stops;
  std::vector<bool> used;
  double best = kInf;

  void Dfs(VertexId at, double time, double cost, int load, int placed) {
    if (cost >= best) return;
    if (placed == static_cast<int>(stops.size())) {
      best = cost;
      return;
    }
    for (std::size_t k = 0; k < stops.size(); ++k) {
      if (used[k]) continue;
      const Stop& s = stops[k];
      const Request& r = ctx->request(s.request);
      if (s.kind == StopKind::kDropoff) {
        // Pickup must already be placed.
        bool picked = false;
        for (std::size_t p = 0; p < stops.size(); ++p) {
          if (used[p] && stops[p].request == s.request &&
              stops[p].kind == StopKind::kPickup) {
            picked = true;
            break;
          }
        }
        if (!picked) continue;
      }
      const double leg = ctx->Dist(at, s.location);
      double t = time + leg;
      int new_load = load;
      if (s.kind == StopKind::kPickup) {
        t = std::max(t, r.release_time);  // free waiting until release
        new_load += r.capacity;
        if (new_load > worker->capacity) continue;
      } else {
        if (t > r.deadline) continue;
        new_load -= r.capacity;
      }
      used[k] = true;
      Dfs(s.location, t, cost + leg, new_load, placed + 1);
      used[k] = false;
    }
  }
};

}  // namespace

double BestRouteCost(const Worker& worker,
                     const std::vector<RequestId>& assigned,
                     PlanningContext* ctx) {
  if (assigned.empty()) return 0.0;
  RouteSearch search;
  search.ctx = ctx;
  search.worker = &worker;
  for (RequestId rid : assigned) {
    const Request& r = ctx->request(rid);
    search.stops.push_back({r.origin, rid, StopKind::kPickup});
    search.stops.push_back({r.destination, rid, StopKind::kDropoff});
  }
  search.used.assign(search.stops.size(), false);
  search.Dfs(worker.initial_location, 0.0, 0.0, 0, 0);
  return search.best;
}

OfflineSolution SolveOffline(const std::vector<Worker>& workers,
                             const std::vector<Request>& requests,
                             double alpha, PlanningContext* ctx) {
  assert(requests.size() <= 10 && workers.size() <= 4);

  // Memoized per-worker optimal route costs, keyed by assigned set.
  std::map<std::pair<WorkerId, std::vector<RequestId>>, double> route_cache;
  const auto worker_cost = [&](WorkerId w,
                               const std::vector<RequestId>& set) {
    const auto key = std::make_pair(w, set);
    auto it = route_cache.find(key);
    if (it != route_cache.end()) return it->second;
    const double c =
        BestRouteCost(workers[static_cast<std::size_t>(w)], set, ctx);
    route_cache[key] = c;
    return c;
  };

  OfflineSolution best;
  best.unified_cost = kInf;
  std::vector<std::vector<RequestId>> assigned(workers.size());
  std::vector<WorkerId> choice(requests.size(), kInvalidWorker);

  // DFS over per-request decisions: reject, or one of the workers.
  const std::function<void(std::size_t, double)> recurse =
      [&](std::size_t idx, double penalty_so_far) {
        if (penalty_so_far >= best.unified_cost) return;  // bound
        if (idx == requests.size()) {
          double distance = 0.0;
          for (WorkerId w = 0; w < static_cast<WorkerId>(workers.size());
               ++w) {
            const double c = worker_cost(w, assigned[static_cast<std::size_t>(w)]);
            if (c == kInf) return;  // infeasible combination
            distance += c;
          }
          const double uc = alpha * distance + penalty_so_far;
          if (uc < best.unified_cost) {
            best.unified_cost = uc;
            best.total_distance = distance;
            best.assignment = choice;
            best.served = 0;
            for (WorkerId w : choice) best.served += (w != kInvalidWorker);
          }
          return;
        }
        const Request& r = requests[idx];
        // Try serving with each worker (feasibility checked at the leaf
        // via the route search; prune early when the worker set is already
        // infeasible).
        for (WorkerId w = 0; w < static_cast<WorkerId>(workers.size()); ++w) {
          auto& set = assigned[static_cast<std::size_t>(w)];
          set.push_back(r.id);
          if (worker_cost(w, set) < kInf) {
            choice[idx] = w;
            recurse(idx + 1, penalty_so_far);
          }
          set.pop_back();
        }
        // Reject.
        choice[idx] = kInvalidWorker;
        recurse(idx + 1, penalty_so_far + r.penalty);
      };
  recurse(0, 0.0);
  return best;
}

}  // namespace urpsm
