#ifndef URPSM_SRC_CORE_PLANNER_H_
#define URPSM_SRC_CORE_PLANNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "src/core/decision.h"
#include "src/core/eval_memo.h"
#include "src/index/grid_index.h"
#include "src/model/feasibility.h"
#include "src/sim/fleet.h"
#include "src/util/stats.h"

namespace urpsm {

struct InsertionCandidate;

/// Online route-planning algorithm: receives each request at its release
/// time (the fleet is already advanced to that time) and either assigns it
/// to a worker — mutating that worker's route through the Fleet — or
/// rejects it by returning kInvalidWorker. The invariable constraint of
/// Def. 5 is enforced by the simulator: a rejection is final.
class RoutePlanner {
 public:
  virtual ~RoutePlanner() = default;

  /// Processes one released request; returns the serving worker or
  /// kInvalidWorker for rejection.
  virtual WorkerId OnRequest(const Request& r) = 0;

  virtual std::string_view name() const = 0;

  /// Called once after the last request; batch-style planners flush any
  /// buffered work here. `budget_seconds` is the planning wall time still
  /// available under the simulation's kill switch (SimOptions::
  /// wall_limit_seconds): a run that already timed out passes 0, and the
  /// planner must not start unbounded work — buffered requests it cannot
  /// afford to plan stay rejected (DNF, as in the paper's timeout runs).
  virtual void Finalize(double budget_seconds) { (void)budget_seconds; }

  /// Memory footprint of the planner's spatial index (Fig. 5's metric).
  virtual std::int64_t index_memory_bytes() const { return 0; }
};

/// Monotone dispatch-window counter: window k of one run has epoch k
/// (1-based; epoch 0 means "outside any window" and every epoch wait is
/// trivially satisfied at 0). The epoch is the unit of the pipelined
/// engine's cross-window dependency graph — shard readiness, commit
/// ordering and the double-buffered window slots are all keyed on it.
using WindowEpoch = std::uint64_t;

/// A planner that consumes whole dispatch windows: the simulation buffers
/// requests released within SimOptions::batch_window_s, advances the fleet
/// to the window close, and hands the batch over in one call. Assignment
/// outcomes are read from the fleet's records (OnRequest's return value is
/// unused on this path), so OnBatch may serve members in any internal
/// order — including in parallel — as long as rejections remain final.
class BatchPlanner : public RoutePlanner {
 public:
  /// Plans every buffered request of one window. `batch` holds the ids in
  /// release order; `now` is the window close time — the fleet has already
  /// been advanced to it, and all planning happens "at" this instant.
  /// `epoch` is the window's position in the run (1, 2, ...): the windowed
  /// event loop increments it per window, and planners that track
  /// cross-window state (the dispatch-window engine's shard-readiness
  /// graph) key it on the epoch. Planners driven outside the simulator may
  /// pass 0 for "no epoch bookkeeping".
  virtual void OnBatch(const std::vector<RequestId>& batch, double now,
                       WindowEpoch epoch) = 0;
};

/// A batch planner whose window processing splits into a *planning* stage
/// (pure against the fleet snapshot the previous commit left behind) and a
/// *commit* stage (the only part that mutates the fleet) — the contract
/// the pipelined event loop drives from two threads:
///
///   planning thread:  PlanWindow(k)   PlanWindow(k+1)   PlanWindow(k+2)
///   commit thread:          CommitWindow(k)   CommitWindow(k+1)   ...
///
/// PlanWindow(k+1) may overlap CommitWindow(k): its per-shard *advance*
/// stage (committing stops due by the window close) is gated on the
/// commit stage's shard-readiness marks instead of a global barrier, so
/// shards advance for window k+1 while window k's commit tail is still
/// applying elsewhere. A request's candidate filtering is gated per
/// shard too, on a worker-displacement bound: workers of a shard whose
/// tile sits farther from the request origin than its candidate radius
/// plus the shard's maximum displacement (v_max times the oldest member
/// anchor's lag) provably cannot enter the filter's grid cells, so the
/// filter runs as soon as the shards within that ball advanced — the
/// global advance barrier is gone. With pipeline depth k > 2, a window
/// whose predecessor is still committing is planned *speculatively*
/// against the live fleet (per-candidate route versions captured under
/// the mutex stripes); its commit stage re-advances, re-filters and
/// keeps each request's speculative proposal only when its candidate
/// list and every captured version still hold, replanning the diverged
/// rest — so results are identical at every depth. CommitWindow calls
/// are issued strictly in epoch order from a single thread, and OnBatch
/// must remain exactly PlanWindow + CommitWindow fused (one
/// implementation of the planning logic, so the windowed and pipelined
/// loops cannot drift).
class PipelinedBatchPlanner : public BatchPlanner {
 public:
  /// Plans window `epoch` (close time `now`). Unlike OnBatch, the fleet
  /// has NOT been pre-advanced: the implementation advances each shard's
  /// workers to `now` itself, per shard, as the previous window's commit
  /// stage releases that shard. Planning-thread only.
  virtual void PlanWindow(const std::vector<RequestId>& batch, double now,
                          WindowEpoch epoch) = 0;
  /// Applies window `epoch`'s planned proposals in unified-cost-then-
  /// request-id order, releasing each shard as its last dependent
  /// proposal (or potential replan) retires. Commit-thread only; called
  /// once per planned window, in epoch order.
  virtual void CommitWindow(WindowEpoch epoch) = 0;
  /// Sizes the window-slot ring before the pipelined loop starts (depth
  /// >= 2; depth 2 reproduces the classic double buffer, larger depths
  /// enable speculative planning). Must not be called mid-run.
  virtual void ConfigurePipeline(int depth) { (void)depth; }
  /// Speculatively planned requests whose proposals survived commit-time
  /// validation / had to be replanned. Quiescent reads (after the run).
  virtual std::int64_t speculation_hits() const { return 0; }
  virtual std::int64_t speculation_misses() const { return 0; }
  /// EvalMemo lookup traffic across all planning/validation/commit scans
  /// (one hit or miss per consultation; see EvalMemo). Quiescent reads.
  virtual std::int64_t memo_hits() const { return 0; }
  virtual std::int64_t memo_misses() const { return 0; }
  /// Distance queries memo hits avoided issuing (hits re-bill the
  /// recorded count instead, so reported query totals stay
  /// memo-independent; the avoided work is accounted here).
  virtual std::int64_t memo_saved_queries() const { return 0; }
  /// Replans (validation misses and commit conflicts) split by whether
  /// they reused at least one memoized evaluation ("narrowed") or had to
  /// recompute everything ("full"). Quiescent reads.
  virtual std::int64_t replans_narrowed() const { return 0; }
  virtual std::int64_t replans_full() const { return 0; }
  /// Per validation replan: the fraction of that scan's memo lookups
  /// that missed — 0 means the replan was pure reuse, 1 means a fully
  /// fresh recomputation. Quiescent reads.
  virtual StatsAccumulator replan_scope() const { return StatsAccumulator{}; }
};

/// Builds the planner under test once the simulation has wired up the
/// planning context and fleet.
using PlannerFactory =
    std::function<std::unique_ptr<RoutePlanner>(PlanningContext*, Fleet*)>;

/// Configuration shared by the paper's planner and our baselines.
struct PlannerConfig {
  double alpha = 1.0;        // weight of total distance in the unified cost
  double grid_cell_km = 2.0; // grid size g (Table 5; default 2 km)
  bool use_pruning = true;   // Lemma 8 pruning; false = plain GreedyDP
  /// Ablation (off in the paper): also reject when the *exact* minimal
  /// increased distance ends up exceeding p_r / alpha.
  bool exact_reject_check = false;
  /// Route-version memoization of decision bounds and DP evaluations
  /// inside the dispatch-window engine (see EvalMemo). Results and
  /// reported query totals are bit-identical either way; off disables
  /// the reuse for A/B measurement.
  bool use_eval_memo = true;
};

/// pruneGreedyDP (Algo. 5) and its unpruned ablation GreedyDP.
///
/// Per request: (1) grid-index + deadline candidate filter; (2) decision
/// phase (Algo. 4) computing per-worker lower bounds with one distance
/// query total, rejecting when p_r < alpha * min LB; (3) planning phase
/// scanning workers in ascending-LB order with exact linear DP insertion,
/// stopping early via Lemma 8 when pruning is enabled.
class GreedyDpPlanner : public RoutePlanner {
 public:
  GreedyDpPlanner(PlanningContext* ctx, Fleet* fleet, PlannerConfig config);

  WorkerId OnRequest(const Request& r) override;
  std::string_view name() const override {
    return config_.use_pruning ? "pruneGreedyDP" : "GreedyDP";
  }
  std::int64_t index_memory_bytes() const override {
    return index_->MemoryBytes();
  }

  /// Exact linear-DP evaluations performed (for the pruning ablation).
  std::int64_t exact_evaluations() const { return exact_evaluations_; }

 private:
  PlanningContext* ctx_;
  Fleet* fleet_;
  PlannerConfig config_;
  std::unique_ptr<GridIndex> index_;
  std::int64_t exact_evaluations_ = 0;
};

/// Conservative candidate radius (km): a worker anchored farther than this
/// from the request origin provably cannot pick it up by e_r - L (its
/// earliest possible arrival, anchor_time + Euclidean time, is too late).
double CandidateRadiusKm(const Request& r, double L, double now);

/// Lemma 8 cutoff, shared verbatim by GreedyDpPlanner's per-candidate
/// scan and ParallelGreedyDpPlanner's per-block scan (their bit-identity
/// depends on using the same expression): true when every worker whose
/// lower bound is at least `lower_bound` is provably worse than the best
/// exact cost found so far. The epsilon guards the cutoff against float
/// noise: on straight-line trips the Euclidean bound equals the exact
/// network distance, and rounding can put Delta* an epsilon *below* its
/// own LB; a strict comparison there would (very rarely) let a pruned
/// scan diverge from an unpruned one.
inline bool LemmaEightCutoff(double best_delta, double lower_bound) {
  return best_delta < lower_bound - 1e-9 * (1.0 + best_delta);
}

/// Indices of `bounds` in ascending lower-bound order — the planning
/// phase's shared scan order. Both planners sort the same array through
/// this one function, so they obtain the same permutation (ties included)
/// and with it the same first-strict-improvement winner.
std::vector<std::size_t> AscendingLowerBoundOrder(
    const std::vector<WorkerBound>& bounds);

/// The candidate filter (line 3 of Algo. 5) shared by every planning
/// path: the ideal-service deadline test, the conservative radius, and
/// the grid-index lookup. Returns an empty vector when `r` is unservable
/// or no worker is in range — callers treat empty as rejection. Like
/// PlanRequestSequential below, this exists so the window = 0
/// bit-identity contract has exactly one filter implementation to drift
/// from (none).
std::vector<WorkerId> FilterCandidates(PlanningContext* ctx,
                                       const GridIndex& index,
                                       const Request& r, double L,
                                       double now);

/// THE sequential decision+planning scan (Algos. 4+5 minus candidate
/// filtering): per-candidate lower bounds in candidate order, the penalty
/// rejection against the minimum bound, then exact linear-DP evaluation
/// in ascending-lower-bound order with the (config-gated) Lemma 8 cutoff
/// and strict-improvement tie-break. Every sequential planning path —
/// GreedyDpPlanner::OnRequest, the dispatch-window engine's singleton
/// batches and its conflict replans — funnels through this one function,
/// so their bit-identity contract has a single implementation to stay in
/// lockstep with. `candidates` must already be touched to the planning
/// time; `L` is the request's direct distance. Returns kInvalidWorker on
/// rejection, else the chosen worker with `*best` filled. Each linear-DP
/// evaluation increments *exact_evaluations when non-null.
/// Speculative-evaluation capture for PlanRequestSequential: when
/// non-null, every candidate access (decision bound and DP insertion)
/// runs under the worker's Fleet::LockWorker stripe — the fleet may be
/// mutated concurrently by a commit stage — and the route version seen
/// at bound time is recorded per candidate into `versions`. Versions
/// only ever grow, so "every recorded version still current at commit
/// time" proves the whole speculative scan read exactly the state a
/// fresh scan would read.
struct SpecCapture {
  std::vector<std::pair<WorkerId, std::uint64_t>>* versions = nullptr;
};

/// `memo`, when non-null, memoizes per-candidate evaluations keyed on
/// route version (see EvalMemo): version-matched lookups reuse the
/// recorded bound / DP result and re-bill the recorded query count to the
/// thread's active billing scope, so the scan's outcome AND its reported
/// query total are bit-identical to a fresh scan. The memo is ignored on
/// the batch-gather path (pruning off, non-speculative) where per-
/// candidate query attribution is impossible, and when the context's
/// oracle is not a CachedOracle (no billing scope to re-bill into).
WorkerId PlanRequestSequential(PlanningContext* ctx, Fleet* fleet,
                               const PlannerConfig& config, const Request& r,
                               double L,
                               const std::vector<WorkerId>& candidates,
                               InsertionCandidate* best,
                               std::int64_t* exact_evaluations,
                               const SpecCapture* spec = nullptr,
                               EvalMemo* memo = nullptr);

/// FilterCandidates into a caller-owned reusable buffer (cleared first):
/// the allocation-free variant the window workspaces use. The returning
/// overload above wraps this one.
void FilterCandidatesInto(PlanningContext* ctx, const GridIndex& index,
                          const Request& r, double L, double now,
                          std::vector<WorkerId>* out);

}  // namespace urpsm

#endif  // URPSM_SRC_CORE_PLANNER_H_
