#ifndef URPSM_SRC_UTIL_SHARDED_LRU_CACHE_H_
#define URPSM_SRC_UTIL_SHARDED_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/util/lru_cache.h"

namespace urpsm {

/// A thread-safe LRU cache striped over independently locked shards.
///
/// Keys are spread across 2^k shards by a scrambled hash; each shard is a
/// plain LruCache behind its own mutex, so concurrent lookups serialize
/// only when they collide on a shard — the property the parallel planner
/// needs to keep many in-flight oracle queries from queueing behind one
/// global cache lock. LRU order is maintained *per shard* (global LRU
/// would need the global lock this type exists to avoid); with keys
/// hash-spread evenly the eviction behaviour is indistinguishable from a
/// single LRU of the same total capacity.
///
/// Thread-safety: Get/Put/Clear/size/hits/misses may be called
/// concurrently. Two threads that miss on the same key may both compute
/// and Put the value; the second Put refreshes the entry, which is
/// harmless for the pure-function values (shortest distances) cached
/// here.
template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly (rounded up)
  /// across shards. `num_shards` is rounded up to a power of two; a
  /// capacity of 0 disables caching entirely, as in LruCache.
  explicit ShardedLruCache(std::size_t capacity, std::size_t num_shards = 16)
      : capacity_(capacity) {
    std::size_t shards = 1;
    while (shards < num_shards) shards <<= 1;
    shard_bits_ = 0;
    for (std::size_t s = shards; s > 1; s >>= 1) ++shard_bits_;
    const std::size_t per_shard =
        capacity == 0 ? 0 : (capacity + shards - 1) / shards;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  std::optional<V> Get(const K& key) {
    Shard& s = ShardOf(key);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.cache.Get(key);
  }

  void Put(const K& key, V value) {
    Shard& s = ShardOf(key);
    std::lock_guard<std::mutex> lock(s.mu);
    s.cache.Put(key, std::move(value));
  }

  /// Removes all entries (shard by shard; not atomic across shards) but
  /// keeps hit/miss counters.
  void Clear() {
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      s->cache.Clear();
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      total += s->cache.size();
    }
    return total;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t num_shards() const { return shards_.size(); }

  std::int64_t hits() const {
    std::int64_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      total += s->cache.hits();
    }
    return total;
  }

  std::int64_t misses() const {
    std::int64_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      total += s->cache.misses();
    }
    return total;
  }

 private:
  struct Shard {
    explicit Shard(std::size_t cap) : cache(cap) {}
    mutable std::mutex mu;
    LruCache<K, V, Hash> cache;
  };

  Shard& ShardOf(const K& key) const {
    if (shard_bits_ == 0) return *shards_[0];  // >>64 would be UB below
    // Fibonacci scramble so the shard index (top bits) stays uncorrelated
    // with the hash table's bucket index (low bits) inside the shard.
    const std::uint64_t h =
        static_cast<std::uint64_t>(Hash{}(key)) * 0x9e3779b97f4a7c15ULL;
    return *shards_[static_cast<std::size_t>(h >> (64 - shard_bits_))];
  }

  std::size_t capacity_;
  unsigned shard_bits_ = 0;  // log2(num_shards)
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace urpsm

#endif  // URPSM_SRC_UTIL_SHARDED_LRU_CACHE_H_
