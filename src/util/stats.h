#ifndef URPSM_SRC_UTIL_STATS_H_
#define URPSM_SRC_UTIL_STATS_H_

#include <cstddef>

#include "src/obs/tdigest.h"

namespace urpsm {

/// Online accumulator for scalar samples: count/sum/mean/min/max are
/// exact; percentiles come from a mergeable t-digest sketch
/// (src/obs/tdigest.h). Used by the simulator to report response-time
/// distributions the way the paper's Figures 3–7 do, and pooled across
/// runs by AverageReports.
///
/// Memory bound: O(compression) centroids plus a constant-size buffer
/// (~a few hundred KiB at the default compression of 400), regardless
/// of how many samples are added — million-request runs and multi-run
/// pooling on top of them stay bounded.
///
/// Accuracy contract: below the digest's first buffer flush (a few
/// thousand samples) percentiles are exact (every sample is a
/// singleton centroid and interpolation reduces to the classic
/// sorted-sample formula); beyond it the rank error at p50/p95/p99 is
/// tested under 1% on million-sample pooled input (tests/obs_test.cc).
///
/// Determinism: the digest has no randomness — the same Add/Merge
/// sequence always yields the same sketch and the same percentiles,
/// and Percentile queries never perturb later answers. Merge is
/// deterministic; it is not bit-exactly associative (no rank-clustered
/// sketch is), but any association agrees exactly on
/// count/sum/min/max and on every percentile within the rank-error
/// bound.
class StatsAccumulator {
 public:
  explicit StatsAccumulator(
      double compression = obs::TDigest::kDefaultCompression);

  void Add(double x);
  /// Pools `other` into this accumulator (pooling, not averaging):
  /// count/sum/min/max combine exactly, and the digests merge so
  /// percentiles of the result are percentiles of the pooled stream
  /// within the sketch's rank-error bound. An average of per-run
  /// percentiles is not a percentile of anything — this is how
  /// multi-run reports aggregate latency distributions.
  void Merge(const StatsAccumulator& other);

  /// Samples ever Added/Merged (exact).
  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  /// Exact min/max over ALL seen samples (tracked online, not
  /// sketched).
  double min() const;
  double max() const;
  /// p-th percentile of all seen samples, p in [0, 100], clamped to
  /// the exact [min, max] range. Exact for small inputs, digest-
  /// approximated (rank error < 1% at p50/p95/p99) beyond. Returns 0
  /// when empty.
  double Percentile(double p) const;

  /// The underlying sketch (tests and stage-timing aggregation).
  const obs::TDigest& digest() const { return digest_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  obs::TDigest digest_;
};

}  // namespace urpsm

#endif  // URPSM_SRC_UTIL_STATS_H_
