#ifndef URPSM_SRC_UTIL_STATS_H_
#define URPSM_SRC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace urpsm {

/// Online accumulator for scalar samples: count/sum/mean/min/max are
/// exact; percentiles come from a *capped reservoir* of retained samples.
/// Used by the simulator to report response-time distributions the way
/// the paper's Figures 3–7 do.
///
/// Memory bound: at most `capacity` samples are ever retained
/// (kDefaultCapacity = 64Ki doubles = 512 KiB), so million-request runs —
/// and multi-run pooling on top of them — no longer grow without limit.
/// Below the cap the reservoir holds every sample and percentiles are
/// exact; above it, uniform reservoir sampling (Algorithm R) keeps each
/// seen sample retained with equal probability, so percentile estimates
/// stay unbiased with error O(1/sqrt(capacity)).
///
/// Determinism: the reservoir's replacement decisions come from a
/// splitmix64 stream seeded by a fixed constant at construction — the
/// same Add/Merge sequence always yields the same retained set, so
/// AverageReports percentiles are reproducible run to run.
class StatsAccumulator {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit StatsAccumulator(std::size_t capacity = kDefaultCapacity);

  void Add(double x);
  /// Adds every *retained* sample of `other` (pooling, not averaging):
  /// while the combined accumulator stays under its cap this is exact
  /// pooling — percentiles of the merge are percentiles of the union of
  /// the sample sets. Once capped, each of `other`'s retained samples
  /// stands in for other.count()/other.samples().size() originals: it is
  /// fed through the reservoir with that weight, keeping the merged
  /// reservoir an (approximately) uniform sample of the pooled stream.
  /// The approximation is deterministic but not merge-order invariant,
  /// and a weighted sample can hold at most one slot — so merging runs
  /// of wildly unequal sizes can over-represent a small early run, by at
  /// most its retained count / capacity in absolute slot share (e.g. a
  /// 100-sample run merged before a 1M-sample run holds <=100 of 64Ki
  /// slots — ~0.15% — where ~0.01% would be proportional). For same-
  /// order-of-magnitude runs (the AverageReports use: repetitions of one
  /// setting) the skew is negligible; an exactly mergeable sketch
  /// (t-digest/KLL) is the ROADMAP follow-up. An average of per-run
  /// percentiles is not a percentile of anything — this is how
  /// multi-run reports aggregate latency distributions.
  void Merge(const StatsAccumulator& other);

  /// Samples ever Added/Merged (NOT the retained count — see samples()).
  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  /// Exact min/max over ALL seen samples (tracked online; the reservoir
  /// may have evicted the extremes).
  double min() const;
  double max() const;
  /// p-th percentile of the retained reservoir, p in [0, 100]. Exact
  /// while count() <= capacity; an unbiased estimate beyond. Returns 0
  /// when empty.
  double Percentile(double p) const;
  /// The retained samples, in reservoir order (insertion order until the
  /// cap, replacement order after). At most capacity() entries.
  const std::vector<double>& samples() const { return samples_; }
  std::size_t capacity() const { return capacity_; }

 private:
  /// Reservoir step for one sample that stands in for `weight` originals;
  /// advances count_ by `weight` (the stream position the replacement
  /// probability competes at).
  void Offer(double x, std::uint64_t weight);

  std::size_t capacity_;
  std::size_t count_ = 0;      // all samples seen; advanced by Offer
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t rng_state_;    // deterministic seed, fixed at construction
  std::vector<double> samples_;
  // Sorted scratch for percentile queries, rebuilt lazily: sorting
  // samples_ in place would permute the reservoir's slot meaning and make
  // the retained set depend on when Percentile was called.
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace urpsm

#endif  // URPSM_SRC_UTIL_STATS_H_
