#ifndef URPSM_SRC_UTIL_STATS_H_
#define URPSM_SRC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace urpsm {

/// Online accumulator for scalar samples: count/mean/min/max plus exact
/// percentiles (samples are retained). Used by the simulator to report
/// response-time distributions the way the paper's Figures 3–7 do.
class StatsAccumulator {
 public:
  void Add(double x);
  /// Adds every sample of `other` (pooling, not averaging): percentiles of
  /// the merged accumulator are percentiles of the union of the two sample
  /// sets. This is how multi-run reports aggregate latency distributions —
  /// an average of per-run percentiles is not a percentile of anything.
  void Merge(const StatsAccumulator& other);

  std::size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Exact p-th percentile, p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;
  /// The retained samples. Order is unspecified (percentile queries sort
  /// the backing array in place).
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  double sum_ = 0.0;
};

}  // namespace urpsm

#endif  // URPSM_SRC_UTIL_STATS_H_
