#include "src/util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace urpsm {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TablePrinter::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace urpsm
