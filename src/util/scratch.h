#ifndef URPSM_SRC_UTIL_SCRATCH_H_
#define URPSM_SRC_UTIL_SCRATCH_H_

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <vector>

namespace urpsm {

/// Shrink-past-high-water policy for reusable scratch buffers.
///
/// Hot-path scratch vectors (thread_local planner columns, per-slot window
/// workspaces) are recycled across uses so steady state allocates nothing —
/// but a single giant window would otherwise pin their capacity at the
/// largest size ever seen for the rest of the run. A HighWaterClamp sits
/// next to each such buffer: Observe() records the size of every use, and
/// once per `period` uses it reallocates the buffer down to the recent
/// high-water mark if the retained capacity overshoots it by more than 2x.
/// Peak residency then tracks ~2x the *recent* working set instead of the
/// all-time maximum, while the common case (stable window sizes) never
/// touches the allocator.
class HighWaterClamp {
 public:
  explicit HighWaterClamp(std::size_t min_keep = 64, int period = 64)
      : min_keep_(min_keep), period_(period) {}

  /// Records one use of `v` (measured at its current size, i.e. call after
  /// the buffer is filled) and periodically trims excess capacity.
  template <typename T>
  void Observe(std::vector<T>* v) {
    high_water_ = std::max(high_water_, v->size());
    if (++uses_ < period_) return;
    if (v->capacity() > min_keep_ && v->capacity() > 2 * high_water_) {
      std::vector<T> trimmed;
      trimmed.reserve(std::max(min_keep_, high_water_));
      trimmed.assign(std::make_move_iterator(v->begin()),
                     std::make_move_iterator(v->end()));
      v->swap(trimmed);
    }
    uses_ = 0;
    high_water_ = v->size();
  }

  std::size_t high_water() const { return high_water_; }

 private:
  std::size_t min_keep_;
  int period_;
  int uses_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace urpsm

#endif  // URPSM_SRC_UTIL_SCRATCH_H_
