#ifndef URPSM_SRC_UTIL_FAULT_H_
#define URPSM_SRC_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>

namespace urpsm {

/// Named fault-injection sites along the ingest -> plan -> commit path of
/// the pipelined engine. Each site is a point where a seeded schedule may
/// perturb the *wall-clock* timing of the run — never a planning input —
/// so every deterministic SimReport field must survive any schedule (the
/// fault suite's core assertion).
enum class FaultSite : int {
  kIngestStall = 0,   // short producer pause before an arrival is offered
  kIngestBurst = 1,   // long producer pause -> a release backlog bursts out
  kOracleDelay = 2,   // distance-query latency in CachedOracle::Distance
  kShardLockHold = 3, // commit stage holds a shard's epoch lock longer
  kPoolTaskDelay = 4, // thread-pool chunk execution delay
  kDrainTrigger = 5,  // mid-run graceful drain at a seed-derived instant
};
inline constexpr int kNumFaultSites = 6;

const char* FaultSiteName(FaultSite site);

/// Per-site arming: fire probability per visit and the maximum injected
/// delay when a visit fires (the actual delay is drawn from the same
/// schedule word that decided the firing).
struct FaultConfig {
  double rate = 0.0;      // [0, 1] fire probability per visit
  double delay_us = 0.0;  // max sleep per firing (microseconds)
};

/// Seeded fault-injection plan, carried by SimOptions. Disabled (the
/// default) the engine never constructs an injector and every site costs
/// one null-pointer branch. kDrainTrigger ignores delay_us: arming it
/// picks a deterministic drain instant from the seed instead (see
/// FaultInjector::StableFraction).
struct FaultSpec {
  bool enabled = false;
  std::uint64_t seed = 1;
  FaultConfig site[kNumFaultSites];

  /// Arms one site (and the spec); chainable.
  FaultSpec& Arm(FaultSite s, double rate, double delay_us = 0.0) {
    enabled = true;
    site[static_cast<int>(s)] = {rate, delay_us};
    return *this;
  }
};

/// Deterministic, replayable fault injector. The n-th visit of a site
/// draws schedule word mix(site_seed + n) — a pure splitmix64 function of
/// (spec.seed, site, n) — so a failure run is replayable from its seed:
/// the decision and delay of every visit index are fixed; only the
/// interleaving of visit indices across threads varies, and that is
/// exactly the wall-clock nondeterminism the engine must already absorb.
///
/// Thread-safe; all hot-path state is relaxed atomics.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  bool enabled() const { return spec_.enabled; }
  /// Whether the site has a nonzero fire rate.
  bool armed(FaultSite s) const {
    return spec_.enabled && spec_.site[static_cast<int>(s)].rate > 0.0;
  }

  /// One visit of `site`: advances the site's schedule and, when the
  /// drawn word fires, sleeps for the scheduled delay. Returns whether it
  /// fired. Unarmed sites return false without advancing anything.
  bool MaybeDelay(FaultSite site);

  /// Deterministic fraction in [0, 1) from (seed, site) — does NOT
  /// advance the schedule. The drain-trigger site derives its simulated
  /// drain instant from this, so the shed set stays a pure function of
  /// the workload and the seed.
  double StableFraction(FaultSite site) const;

  /// Visits / firings per site so far (test observability).
  std::int64_t visits(FaultSite site) const {
    return static_cast<std::int64_t>(
        cursor_[static_cast<int>(site)].load(std::memory_order_relaxed));
  }
  std::int64_t fired(FaultSite site) const {
    return fired_[static_cast<int>(site)].load(std::memory_order_relaxed);
  }

 private:
  const FaultSpec spec_;
  std::uint64_t site_seed_[kNumFaultSites];
  std::atomic<std::uint64_t> cursor_[kNumFaultSites];
  std::atomic<std::int64_t> fired_[kNumFaultSites];
};

/// Null-safe injection: components hold a FaultInjector* that is nullptr
/// for every un-faulted run, so the compiled-in-but-disabled cost of a
/// site is a single branch (same contract as the obs instruments).
inline bool MaybeInject(FaultInjector* f, FaultSite site) {
  return f != nullptr && f->MaybeDelay(site);
}

}  // namespace urpsm

#endif  // URPSM_SRC_UTIL_FAULT_H_
