#ifndef URPSM_SRC_UTIL_RNG_H_
#define URPSM_SRC_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace urpsm {

/// Deterministic random number generator used throughout the library so
/// that workloads, tests and benchmarks are reproducible from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int UniformInt(int lo, int hi);

  /// Uniform 64-bit integer in [lo, hi] (inclusive).
  std::int64_t UniformInt64(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  int Categorical(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace urpsm

#endif  // URPSM_SRC_UTIL_RNG_H_
