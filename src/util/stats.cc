#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace urpsm {

void StatsAccumulator::Add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_ = false;
}

void StatsAccumulator::Merge(const StatsAccumulator& other) {
  // Self-merge would insert from a vector being reallocated.
  const std::size_t n = other.samples_.size();
  samples_.reserve(samples_.size() + n);
  for (std::size_t i = 0; i < n; ++i) samples_.push_back(other.samples_[i]);
  sum_ += other.sum_;
  sorted_ = false;
}

double StatsAccumulator::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double StatsAccumulator::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double StatsAccumulator::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double StatsAccumulator::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace urpsm
