#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace urpsm {

namespace {

/// splitmix64: tiny, fast, and statistically fine for reservoir slot
/// selection. Seeded with a fixed constant so retained sets — and with
/// them AverageReports percentiles — are reproducible.
constexpr std::uint64_t kReservoirSeed = 0x9e3779b97f4a7c15ULL;

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

StatsAccumulator::StatsAccumulator(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)),
      rng_state_(kReservoirSeed) {}

void StatsAccumulator::Offer(double x, std::uint64_t weight) {
  count_ += weight;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    sorted_valid_ = false;
    return;
  }
  // Algorithm R: keep the newcomer with probability capacity/count_,
  // evicting a uniformly random slot. With weight > 1 the newcomer
  // stands in for `weight` stream elements, so it competes at the
  // weighted stream position — an approximation that is exact for
  // weight == 1 and keeps merged reservoirs near-uniform otherwise.
  const std::uint64_t slot = SplitMix64(&rng_state_) % count_;
  if (slot < capacity_ * weight) {
    samples_[static_cast<std::size_t>(slot % capacity_)] = x;
    sorted_valid_ = false;
  }
}

void StatsAccumulator::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  Offer(x, 1);
}

void StatsAccumulator::Merge(const StatsAccumulator& other) {
  // Self-merge would iterate a vector being mutated.
  if (&other == this) return;
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  // Each retained sample represents an equal share of the other side's
  // full stream (weight 1 while `other` never overflowed its cap); the
  // offered weights sum to other.count_, so count_ pools exactly.
  const std::size_t retained = other.samples_.size();
  const std::uint64_t base = other.count_ / retained;
  const std::uint64_t extra = other.count_ % retained;  // spread remainder
  for (std::size_t i = 0; i < retained; ++i) {
    Offer(other.samples_[i], base + (i < extra ? 1 : 0));
  }
}

double StatsAccumulator::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double StatsAccumulator::min() const { return count_ == 0 ? 0.0 : min_; }

double StatsAccumulator::max() const { return count_ == 0 ? 0.0 : max_; }

double StatsAccumulator::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

}  // namespace urpsm
