#include "src/util/stats.h"

#include <algorithm>

namespace urpsm {

StatsAccumulator::StatsAccumulator(double compression)
    : digest_(compression) {}

void StatsAccumulator::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  digest_.Add(x);
}

void StatsAccumulator::Merge(const StatsAccumulator& other) {
  if (&other == this) return;
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  digest_.Merge(other.digest_);
}

double StatsAccumulator::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double StatsAccumulator::min() const { return count_ == 0 ? 0.0 : min_; }

double StatsAccumulator::max() const { return count_ == 0 ? 0.0 : max_; }

double StatsAccumulator::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  const double q = digest_.Quantile(p / 100.0);
  return std::min(max_, std::max(min_, q));
}

}  // namespace urpsm
