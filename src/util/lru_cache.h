#ifndef URPSM_SRC_UTIL_LRU_CACHE_H_
#define URPSM_SRC_UTIL_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace urpsm {

/// A fixed-capacity least-recently-used cache.
///
/// The paper (Sec. 6.1) maintains an LRU cache for shortest distance and
/// path queries shared by all compared algorithms; this is that cache.
/// `Get` promotes the entry to most-recently-used. Not thread-safe on its
/// own; concurrent callers go through ShardedLruCache, which stripes
/// instances of this type behind per-shard locks.
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  /// Creates a cache holding at most `capacity` entries. A capacity of 0
  /// disables caching (every Get misses, Put is a no-op).
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;
  LruCache(LruCache&&) = default;
  LruCache& operator=(LruCache&&) = default;

  /// Returns the cached value for `key`, or nullopt on a miss.
  std::optional<V> Get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or refreshes `key`, evicting the least-recently-used entry
  /// when at capacity.
  void Put(const K& key, V value) {
    if (capacity_ == 0) return;
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (map_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
  }

  /// Removes all entries but keeps hit/miss counters.
  void Clear() {
    map_.clear();
    order_.clear();
  }

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }

 private:
  using Entry = std::pair<K, V>;
  std::size_t capacity_;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<K, typename std::list<Entry>::iterator, Hash> map_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace urpsm

#endif  // URPSM_SRC_UTIL_LRU_CACHE_H_
