#include "src/util/rng.h"

#include <cassert>

namespace urpsm {

int Rng::UniformInt(int lo, int hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::UniformInt64(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::Exponential(double rate) {
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

int Rng::Categorical(const std::vector<double>& weights) {
  std::discrete_distribution<int> dist(weights.begin(), weights.end());
  return dist(engine_);
}

}  // namespace urpsm
