#include "src/util/fault.h"

#include <chrono>
#include <thread>

namespace urpsm {

namespace {

/// splitmix64 output mix (Steele, Lea, Flood 2014).
std::uint64_t Mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ULL;

/// Uniform double in [0, 1) from the top 53 bits of a schedule word.
double ToUnit(std::uint64_t w) {
  return static_cast<double>(w >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kIngestStall: return "ingest_stall";
    case FaultSite::kIngestBurst: return "ingest_burst";
    case FaultSite::kOracleDelay: return "oracle_delay";
    case FaultSite::kShardLockHold: return "shard_lock_hold";
    case FaultSite::kPoolTaskDelay: return "pool_task_delay";
    case FaultSite::kDrainTrigger: return "drain_trigger";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultSpec& spec) : spec_(spec) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    // Per-site stream base: a mixed function of the seed and the site, so
    // arming one site never shifts another site's schedule.
    site_seed_[i] = Mix(spec_.seed + static_cast<std::uint64_t>(i + 1) * kGamma);
    cursor_[i].store(0, std::memory_order_relaxed);
    fired_[i].store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::MaybeDelay(FaultSite site) {
  const int i = static_cast<int>(site);
  const FaultConfig& c = spec_.site[i];
  if (!spec_.enabled || c.rate <= 0.0) return false;
  const std::uint64_t n = cursor_[i].fetch_add(1, std::memory_order_relaxed);
  const double u = ToUnit(Mix(site_seed_[i] + n * kGamma));
  if (u >= c.rate) return false;
  fired_[i].fetch_add(1, std::memory_order_relaxed);
  // Reuse the firing word for the magnitude: u/rate is uniform in [0, 1)
  // conditioned on firing, so the delay is also replayable per visit.
  const auto us = static_cast<std::int64_t>((u / c.rate) * c.delay_us);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  return true;
}

double FaultInjector::StableFraction(FaultSite site) const {
  return ToUnit(Mix(site_seed_[static_cast<int>(site)] ^ kGamma));
}

}  // namespace urpsm
