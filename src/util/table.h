#ifndef URPSM_SRC_UTIL_TABLE_H_
#define URPSM_SRC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace urpsm {

/// Minimal fixed-width text-table printer used by the benchmark harnesses
/// to emit rows in the shape of the paper's figures and tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table (header, separator, rows) as a string.
  std::string ToString() const;

  /// Renders the table as comma-separated values (for plotting scripts).
  std::string ToCsv() const;

  /// Formats a double with `digits` digits after the decimal point.
  static std::string Num(double v, int digits = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace urpsm

#endif  // URPSM_SRC_UTIL_TABLE_H_
