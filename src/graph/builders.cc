#include "src/graph/builders.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <vector>

namespace urpsm {

RoadNetwork MakeCycleGraph(int n, double edge_length_km, RoadClass cls) {
  assert(n >= 3);
  // Place vertices on a circle whose chord between neighbours is shorter
  // than edge_length_km, keeping Euclidean lower bounds valid.
  const double radius =
      edge_length_km * static_cast<double>(n) / (2.0 * std::numbers::pi);
  std::vector<Point> coords(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double angle = 2.0 * std::numbers::pi * i / n;
    coords[static_cast<std::size_t>(i)] = {radius * std::cos(angle),
                                           radius * std::sin(angle)};
  }
  std::vector<EdgeSpec> edges;
  edges.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    edges.push_back({i, (i + 1) % n, edge_length_km, cls});
  }
  return RoadNetwork::FromEdges(std::move(coords), edges);
}

RoadNetwork MakeGridGraph(int rows, int cols, double spacing_km,
                          RoadClass cls) {
  assert(rows >= 1 && cols >= 1);
  std::vector<Point> coords;
  coords.reserve(static_cast<std::size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      coords.push_back({c * spacing_km, r * spacing_km});
    }
  }
  auto id = [cols](int r, int c) { return r * cols + c; };
  std::vector<EdgeSpec> edges;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1), spacing_km, cls});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c), spacing_km, cls});
    }
  }
  return RoadNetwork::FromEdges(std::move(coords), edges);
}

RoadNetwork MakePathGraph(int n, double edge_length_km, RoadClass cls) {
  assert(n >= 1);
  std::vector<Point> coords(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    coords[static_cast<std::size_t>(i)] = {i * edge_length_km, 0.0};
  }
  std::vector<EdgeSpec> edges;
  for (int i = 0; i + 1 < n; ++i) {
    edges.push_back({i, i + 1, edge_length_km, cls});
  }
  return RoadNetwork::FromEdges(std::move(coords), edges);
}

RoadNetwork MakeRandomGeometricGraph(int n, double side_km, int k, Rng* rng,
                                     double detour_factor, RoadClass cls) {
  assert(n >= 2 && k >= 1 && detour_factor >= 1.0);
  std::vector<Point> coords(static_cast<std::size_t>(n));
  for (auto& p : coords) p = {rng->Uniform(0, side_km), rng->Uniform(0, side_km)};

  std::vector<EdgeSpec> edges;
  // k-nearest-neighbour edges.
  std::vector<std::pair<double, int>> dist(static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      dist[static_cast<std::size_t>(v)] = {
          EuclideanDistance(coords[static_cast<std::size_t>(u)],
                            coords[static_cast<std::size_t>(v)]),
          v};
    }
    const int take = std::min(k + 1, n);  // +1 skips self (distance 0)
    std::partial_sort(dist.begin(), dist.begin() + take, dist.end());
    for (int i = 0; i < take; ++i) {
      const int v = dist[static_cast<std::size_t>(i)].second;
      if (v == u) continue;
      if (v < u) continue;  // deduplicate (u,v)/(v,u) pairs from both sides
      edges.push_back({u, v, dist[static_cast<std::size_t>(i)].first * detour_factor, cls});
    }
  }
  // Random chain guaranteeing connectivity.
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::shuffle(order.begin(), order.end(), rng->engine());
  for (int i = 0; i + 1 < n; ++i) {
    const int u = order[static_cast<std::size_t>(i)];
    const int v = order[static_cast<std::size_t>(i + 1)];
    const double d = EuclideanDistance(coords[static_cast<std::size_t>(u)],
                                       coords[static_cast<std::size_t>(v)]);
    edges.push_back({u, v, d * detour_factor, cls});
  }
  return RoadNetwork::FromEdges(std::move(coords), edges);
}

}  // namespace urpsm
