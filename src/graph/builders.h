#ifndef URPSM_SRC_GRAPH_BUILDERS_H_
#define URPSM_SRC_GRAPH_BUILDERS_H_

#include "src/graph/road_network.h"
#include "src/util/rng.h"

namespace urpsm {

/// Basic deterministic graph builders used by tests, the hardness
/// constructions (Sec. 3.3 uses an undirected cycle graph) and as building
/// blocks of the synthetic city generator.

/// Undirected cycle v0 - v1 - ... - v_{n-1} - v0. Every edge has the given
/// length (km) and road class. Vertices are placed on a circle so that
/// Euclidean lower bounds stay valid.
RoadNetwork MakeCycleGraph(int n, double edge_length_km,
                           RoadClass cls = RoadClass::kResidential);

/// Axis-aligned grid with `rows` x `cols` vertices and `spacing_km` between
/// neighbours; all edges share one road class.
RoadNetwork MakeGridGraph(int rows, int cols, double spacing_km,
                          RoadClass cls = RoadClass::kResidential);

/// Path graph v0 - v1 - ... - v_{n-1} with unit spacing along the x axis.
RoadNetwork MakePathGraph(int n, double edge_length_km,
                          RoadClass cls = RoadClass::kResidential);

/// Random connected geometric graph: `n` vertices uniform in a
/// `side_km` x `side_km` square, each vertex connected to its `k` nearest
/// neighbours, then augmented with a random spanning chain for connectivity.
/// Edge lengths are the Euclidean distances (times a detour factor >= 1).
RoadNetwork MakeRandomGeometricGraph(int n, double side_km, int k, Rng* rng,
                                     double detour_factor = 1.2,
                                     RoadClass cls = RoadClass::kResidential);

}  // namespace urpsm

#endif  // URPSM_SRC_GRAPH_BUILDERS_H_
