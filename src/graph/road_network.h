#ifndef URPSM_SRC_GRAPH_ROAD_NETWORK_H_
#define URPSM_SRC_GRAPH_ROAD_NETWORK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/geo/point.h"

namespace urpsm {

/// Identifier of a road-network vertex. Vertices are dense, 0-based.
using VertexId = std::int32_t;
inline constexpr VertexId kInvalidVertex = -1;

/// Road class of an edge; determines free-flow travel speed. Mirrors the
/// paper's setup where a taxi travels at a constant per-road-class speed
/// (80% of the class speed limit, Sec. 6.1).
enum class RoadClass : std::uint8_t {
  kMotorway = 0,
  kPrimary = 1,
  kSecondary = 2,
  kResidential = 3,
};

/// Free-flow speed for a road class, in km/minute.
/// Motorway ≈ 23 m/s and residential ≈ 6 m/s as quoted in the paper.
double SpeedKmPerMin(RoadClass cls);

/// Fastest speed over all road classes, in km/minute. Euclidean travel-time
/// lower bounds divide straight-line distance by this value.
double MaxSpeedKmPerMin();

/// An undirected edge to be inserted into a RoadNetwork under construction.
struct EdgeSpec {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  double length_km = 0.0;
  RoadClass cls = RoadClass::kResidential;
};

/// Immutable undirected road network with travel-time edge costs.
///
/// Storage is CSR (compressed sparse rows) over both directions of every
/// undirected edge. Edge cost is the free-flow travel time in minutes
/// (length / class speed); the paper uses travel time and travel distance
/// interchangeably (Def. 1) and so do we — all "distances" in this library
/// are minutes of travel unless stated otherwise.
class RoadNetwork {
 public:
  /// One outgoing arc in the CSR adjacency.
  struct Arc {
    VertexId to = kInvalidVertex;
    double cost = 0.0;  // travel time, minutes
  };

  /// An empty network; assign a built one (e.g. from FromEdges) before use.
  RoadNetwork() = default;

  /// Builds a network from vertex coordinates and undirected edges.
  /// Self-loops are dropped; parallel edges are kept (Dijkstra handles them).
  static RoadNetwork FromEdges(std::vector<Point> coords,
                               const std::vector<EdgeSpec>& edges);

  VertexId num_vertices() const {
    return static_cast<VertexId>(coords_.size());
  }
  std::int64_t num_undirected_edges() const { return num_undirected_edges_; }

  /// The original undirected edge list (self-loops removed); retained for
  /// serialization and inspection.
  const std::vector<EdgeSpec>& edges() const { return edges_; }

  const Point& coord(VertexId v) const { return coords_[v]; }
  const std::vector<Point>& coords() const { return coords_; }

  /// Outgoing arcs of `v`.
  std::span<const Arc> Neighbors(VertexId v) const {
    return {arcs_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }

  /// Euclidean straight-line distance between two vertices, in km.
  double EuclideanKm(VertexId u, VertexId v) const {
    return EuclideanDistance(coords_[u], coords_[v]);
  }

  /// Lower bound on the shortest travel time between two vertices,
  /// in minutes: straight-line distance at the fastest road speed.
  /// Guaranteed <= the true shortest-path cost.
  double EuclideanLowerBoundMin(VertexId u, VertexId v) const {
    return EuclideanKm(u, v) / MaxSpeedKmPerMin();
  }

  /// Vertex whose coordinate is nearest to `p` (linear scan; used when
  /// mapping request coordinates onto the network, as the paper pre-maps
  /// pickup/drop-off coordinates to the closest vertex).
  VertexId NearestVertex(const Point& p) const;

  /// Bounding box of all vertex coordinates.
  void BoundingBox(Point* lo, Point* hi) const;

 private:
  std::vector<Point> coords_;
  std::vector<EdgeSpec> edges_;
  std::vector<std::int64_t> offsets_;  // size num_vertices()+1
  std::vector<Arc> arcs_;
  std::int64_t num_undirected_edges_ = 0;
};

}  // namespace urpsm

#endif  // URPSM_SRC_GRAPH_ROAD_NETWORK_H_
