#include "src/graph/road_network.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace urpsm {

namespace {

// Speeds are 80% of typical legal limits (paper Sec. 6.1), converted from
// km/h to km/min: motorway 100*0.8, primary 80*0.8, secondary 50*0.8,
// residential 30*0.8.
constexpr double kSpeedsKmPerMin[] = {
    80.0 / 60.0,  // motorway  (~22.2 m/s)
    64.0 / 60.0,  // primary
    40.0 / 60.0,  // secondary
    24.0 / 60.0,  // residential (~6.7 m/s)
};

}  // namespace

double SpeedKmPerMin(RoadClass cls) {
  return kSpeedsKmPerMin[static_cast<int>(cls)];
}

double MaxSpeedKmPerMin() { return kSpeedsKmPerMin[0]; }

RoadNetwork RoadNetwork::FromEdges(std::vector<Point> coords,
                                   const std::vector<EdgeSpec>& edges) {
  RoadNetwork g;
  g.coords_ = std::move(coords);
  const VertexId n = g.num_vertices();

  std::vector<std::int64_t> degree(n + 1, 0);
  for (const EdgeSpec& e : edges) {
    assert(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n);
    if (e.u == e.v) continue;
    ++degree[e.u];
    ++degree[e.v];
    ++g.num_undirected_edges_;
    g.edges_.push_back(e);
  }
  g.offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  g.arcs_.resize(static_cast<std::size_t>(g.offsets_[n]));

  std::vector<std::int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const EdgeSpec& e : edges) {
    if (e.u == e.v) continue;
    const double cost = e.length_km / SpeedKmPerMin(e.cls);
    g.arcs_[static_cast<std::size_t>(cursor[e.u]++)] = {e.v, cost};
    g.arcs_[static_cast<std::size_t>(cursor[e.v]++)] = {e.u, cost};
  }
  return g;
}

VertexId RoadNetwork::NearestVertex(const Point& p) const {
  VertexId best = kInvalidVertex;
  double best_d = std::numeric_limits<double>::infinity();
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const double d = EuclideanDistance(coords_[v], p);
    if (d < best_d) {
      best_d = d;
      best = v;
    }
  }
  return best;
}

void RoadNetwork::BoundingBox(Point* lo, Point* hi) const {
  lo->x = lo->y = std::numeric_limits<double>::infinity();
  hi->x = hi->y = -std::numeric_limits<double>::infinity();
  for (const Point& p : coords_) {
    lo->x = std::min(lo->x, p.x);
    lo->y = std::min(lo->y, p.y);
    hi->x = std::max(hi->x, p.x);
    hi->y = std::max(hi->y, p.y);
  }
}

}  // namespace urpsm
