#ifndef URPSM_SRC_ALGOS_TSHARE_H_
#define URPSM_SRC_ALGOS_TSHARE_H_

#include <memory>

#include "src/core/planner.h"
#include "src/index/grid_index.h"

namespace urpsm {

/// T-Share baseline (Ma, Zheng, Wolfson, ICDE'13 [30]).
///
/// For each request it scans grid cells in ascending distance from the
/// pickup cell — the "single-sided search" of T-Share — and takes only the
/// workers of the nearest non-empty cells (within one extra cell ring of
/// the first hit). The winner is chosen by *basic insertion* (Algo. 1)
/// with minimal increased distance. The aggressive cell cutoff is exactly
/// what the paper blames for T-Share's low served rate: "its searching
/// process mistakenly removes many possible workers" — while making it the
/// fastest algorithm. The per-cell sorted cell lists are why its grid
/// index dwarfs the others' in memory (Fig. 5).
class TSharePlanner : public RoutePlanner {
 public:
  TSharePlanner(PlanningContext* ctx, Fleet* fleet, PlannerConfig config);

  WorkerId OnRequest(const Request& r) override;
  std::string_view name() const override { return "tshare"; }
  std::int64_t index_memory_bytes() const override {
    return index_->MemoryBytes();
  }

 private:
  PlanningContext* ctx_;
  Fleet* fleet_;
  PlannerConfig config_;
  std::unique_ptr<TShareGridIndex> index_;
};

PlannerFactory MakeTShareFactory(PlannerConfig config);

}  // namespace urpsm

#endif  // URPSM_SRC_ALGOS_TSHARE_H_
