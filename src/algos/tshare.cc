#include "src/algos/tshare.h"

#include "src/insertion/insertion.h"
#include "src/sim/simulator.h"

namespace urpsm {

TSharePlanner::TSharePlanner(PlanningContext* ctx, Fleet* fleet,
                             PlannerConfig config)
    : ctx_(ctx), fleet_(fleet), config_(config) {
  Point lo, hi;
  ctx_->graph().BoundingBox(&lo, &hi);
  index_ = std::make_unique<TShareGridIndex>(lo, hi, config_.grid_cell_km);
  fleet_->AttachIndex(index_.get());
}

WorkerId TSharePlanner::OnRequest(const Request& r) {
  const double now = r.release_time;
  const double L = ctx_->DirectDist(r.id);
  if (now + L > r.deadline) return kInvalidWorker;

  // Single-sided search: walk cells in ascending distance from the pickup
  // cell and stop at the first non-empty cell (within the pickup-
  // reachability radius). This is the aggressive cutoff the paper blames
  // for T-Share's served rate — nearby-but-busy workers shadow feasible
  // ones a cell further out, and the search never revisits them.
  const double radius_km =
      (r.deadline - L - now) * MaxSpeedKmPerMin() + config_.grid_cell_km;
  const Point origin_pt = ctx_->graph().coord(r.origin);
  std::vector<WorkerId> candidates;
  for (int cell : index_->CellsByDistance(origin_pt)) {
    const double cell_km = index_->CellCenterDistanceKm(origin_pt, cell);
    if (cell_km > radius_km) break;
    const auto& workers = index_->CellWorkers(cell);
    if (workers.empty()) continue;
    candidates.assign(workers.begin(), workers.end());
    break;
  }
  if (candidates.empty()) return kInvalidWorker;

  WorkerId best_worker = kInvalidWorker;
  InsertionCandidate best;
  for (WorkerId w : candidates) {
    fleet_->Touch(w, now);
    const InsertionCandidate cand =
        BasicInsertion(fleet_->worker(w), fleet_->route(w), r, ctx_);
    if (cand.feasible() && cand.delta < best.delta) {
      best = cand;
      best_worker = w;
    }
  }
  if (best_worker == kInvalidWorker) return kInvalidWorker;
  fleet_->ApplyInsertion(best_worker, r, best.i, best.j, ctx_->oracle());
  return best_worker;
}

PlannerFactory MakeTShareFactory(PlannerConfig config) {
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<TSharePlanner>(ctx, fleet, config);
  };
}

}  // namespace urpsm
