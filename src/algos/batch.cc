#include "src/algos/batch.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "src/insertion/insertion.h"
#include "src/sim/simulator.h"

namespace urpsm {

BatchBaselinePlanner::BatchBaselinePlanner(PlanningContext* ctx, Fleet* fleet,
                                           PlannerConfig config,
                                           double batch_interval_min,
                                           int max_group_size)
    : ctx_(ctx),
      fleet_(fleet),
      config_(config),
      batch_interval_(batch_interval_min),
      max_group_size_(max_group_size) {
  Point lo, hi;
  ctx_->graph().BoundingBox(&lo, &hi);
  index_ = std::make_unique<GridIndex>(lo, hi, config_.grid_cell_km);
  fleet_->AttachIndex(index_.get());
}

WorkerId BatchBaselinePlanner::OnRequest(const Request& r) {
  const double now = r.release_time;
  if (batch_open_ && now >= batch_start_ + batch_interval_) FlushBatch(now);
  if (!batch_open_) {
    batch_open_ = true;
    batch_start_ = now;
  }
  buffer_.push_back(r.id);
  // Assignment is deferred to the batch boundary; the simulator reads the
  // final outcome from the fleet's assignment records.
  return kInvalidWorker;
}

void BatchBaselinePlanner::OnBatch(const std::vector<RequestId>& batch,
                                   double now, WindowEpoch /*epoch*/) {
  // The simulation owns the windowing on this path; bypass the internal
  // buffer and plan the window as one batch at its close. The baseline
  // keeps no cross-window state, so the epoch is unused.
  batch_open_ = false;
  buffer_ = batch;
  FlushBatch(now);
}

void BatchBaselinePlanner::Finalize(double budget_seconds) {
  if (budget_seconds <= 0.0) {
    // Kill switch already exceeded: buffered requests stay rejected (DNF)
    // instead of paying for an unbounded final flush.
    buffer_.clear();
    batch_open_ = false;
    return;
  }
  if (batch_open_) {
    FlushBatch(batch_start_ + batch_interval_, budget_seconds);
  }
}

BatchBaselinePlanner::GroupFit BatchBaselinePlanner::EvaluateGroup(
    WorkerId w, const std::vector<RequestId>& group, double /*now*/,
    bool commit) {
  GroupFit fit;
  const Worker& worker = fleet_->worker(w);
  Route scratch;  // virtual copy for evaluation
  const Route* route = &fleet_->route(w);
  if (!commit) {
    scratch = *route;
    route = &scratch;
  }
  for (RequestId rid : group) {
    const Request& r = ctx_->request(rid);
    const InsertionCandidate cand =
        LinearDpInsertion(worker, *route, r, ctx_);
    if (!cand.feasible()) continue;
    ++fit.count;
    fit.delta += cand.delta;
    if (commit) {
      fleet_->ApplyInsertion(w, r, cand.i, cand.j, ctx_->oracle());
    } else {
      scratch.Insert(r, cand.i, cand.j, ctx_->oracle());
    }
  }
  return fit;
}

void BatchBaselinePlanner::FlushBatch(double now, double budget_seconds) {
  const auto flush_t0 = std::chrono::steady_clock::now();
  batch_open_ = false;
  if (buffer_.empty()) return;
  std::vector<RequestId> batch;
  batch.swap(buffer_);

  // Group by pickup grid cell, splitting cells into groups of at most
  // max_group_size_ members (a light-weight stand-in for the RV graph).
  const double g = config_.grid_cell_km;
  std::map<std::pair<int, int>, std::vector<RequestId>> by_cell;
  for (RequestId rid : batch) {
    const Point p = ctx_->graph().coord(ctx_->request(rid).origin);
    by_cell[{static_cast<int>(p.x / g), static_cast<int>(p.y / g)}].push_back(
        rid);
  }
  std::vector<std::vector<RequestId>> groups;
  for (auto& [cell, members] : by_cell) {
    std::sort(members.begin(), members.end(), [&](RequestId a, RequestId b) {
      return ctx_->request(a).deadline < ctx_->request(b).deadline;
    });
    for (std::size_t k = 0; k < members.size();
         k += static_cast<std::size_t>(max_group_size_)) {
      const auto end =
          std::min(members.size(), k + static_cast<std::size_t>(max_group_size_));
      groups.emplace_back(members.begin() + static_cast<std::ptrdiff_t>(k),
                          members.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }
  // Earliest-deadline groups first.
  std::sort(groups.begin(), groups.end(),
            [&](const std::vector<RequestId>& a,
                const std::vector<RequestId>& b) {
              return ctx_->request(a.front()).deadline <
                     ctx_->request(b.front()).deadline;
            });

  for (const auto& group : groups) {
    // A bounded flush stops between groups once the budget is spent; the
    // remaining groups' members stay rejected (DNF) rather than letting a
    // nearly-exhausted wall limit buy an unbounded amount of planning.
    if (budget_seconds < kInf &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      flush_t0)
                .count() > budget_seconds) {
      break;
    }
    // Candidate workers around the group's first pickup.
    double radius = 0.0;
    for (RequestId rid : group) {
      const Request& r = ctx_->request(rid);
      radius = std::max(
          radius, CandidateRadiusKm(r, ctx_->DirectDist(rid), now));
    }
    const Point origin_pt =
        ctx_->graph().coord(ctx_->request(group.front()).origin);
    const std::vector<WorkerId> candidates =
        index_->WithinRadius(origin_pt, radius);

    WorkerId best_worker = kInvalidWorker;
    GroupFit best;
    for (WorkerId w : candidates) {
      fleet_->Touch(w, now);
      const GroupFit fit = EvaluateGroup(w, group, now, /*commit=*/false);
      if (fit.count == 0) continue;
      if (fit.count > best.count ||
          (fit.count == best.count && fit.delta < best.delta)) {
        best = fit;
        best_worker = w;
      }
    }
    if (best_worker != kInvalidWorker) {
      EvaluateGroup(best_worker, group, now, /*commit=*/true);
    }
  }
}

PlannerFactory MakeBatchFactory(PlannerConfig config,
                                double batch_interval_min,
                                int max_group_size) {
  return [=](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<BatchBaselinePlanner>(ctx, fleet, config,
                                          batch_interval_min, max_group_size);
  };
}

}  // namespace urpsm
