#ifndef URPSM_SRC_ALGOS_BATCH_H_
#define URPSM_SRC_ALGOS_BATCH_H_

#include <memory>
#include <vector>

#include "src/core/planner.h"
#include "src/index/grid_index.h"

namespace urpsm {

/// Batch baseline (Alonso-Mora et al., PNAS'17 [11], simplified).
///
/// Requests are buffered into fixed wall-clock batches (6 simulated
/// seconds, as in the paper's description). At each batch boundary the
/// buffered requests are grouped by pickup proximity (same grid cell,
/// bounded group size), groups are ordered by earliest deadline, and each
/// group is assigned to the single worker that can serve the most of its
/// members with the least total increased distance — members are inserted
/// greedily with linear DP insertion. Members that do not fit the chosen
/// worker are rejected, which is where batch loses served rate relative to
/// per-request greedy planning.
class BatchPlanner : public RoutePlanner {
 public:
  BatchPlanner(PlanningContext* ctx, Fleet* fleet, PlannerConfig config,
               double batch_interval_min = 0.1, int max_group_size = 3);

  WorkerId OnRequest(const Request& r) override;
  void Finalize() override;
  std::string_view name() const override { return "batch"; }
  std::int64_t index_memory_bytes() const override {
    return index_->MemoryBytes();
  }

 private:
  void FlushBatch(double now);
  /// Greedy multi-insert evaluation: how many of `group` fit into worker
  /// `w`'s route (virtually), and at what total cost.
  struct GroupFit {
    int count = 0;
    double delta = 0.0;
  };
  GroupFit EvaluateGroup(WorkerId w, const std::vector<RequestId>& group,
                         double now, bool commit);

  PlanningContext* ctx_;
  Fleet* fleet_;
  PlannerConfig config_;
  double batch_interval_;
  int max_group_size_;
  std::unique_ptr<GridIndex> index_;
  std::vector<RequestId> buffer_;
  double batch_start_ = 0.0;
  bool batch_open_ = false;
};

PlannerFactory MakeBatchFactory(PlannerConfig config,
                                double batch_interval_min = 0.1,
                                int max_group_size = 3);

}  // namespace urpsm

#endif  // URPSM_SRC_ALGOS_BATCH_H_
