#ifndef URPSM_SRC_ALGOS_BATCH_H_
#define URPSM_SRC_ALGOS_BATCH_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/core/planner.h"
#include "src/index/grid_index.h"

namespace urpsm {

/// Batch baseline (Alonso-Mora et al., PNAS'17 [11], simplified).
///
/// Requests are buffered into fixed wall-clock batches (6 simulated
/// seconds, as in the paper's description). At each batch boundary the
/// buffered requests are grouped by pickup proximity (same grid cell,
/// bounded group size), groups are ordered by earliest deadline, and each
/// group is assigned to the single worker that can serve the most of its
/// members with the least total increased distance — members are inserted
/// greedily with linear DP insertion. Members that do not fit the chosen
/// worker are rejected, which is where batch loses served rate relative to
/// per-request greedy planning.
///
/// Two driving modes share the one FlushBatch implementation:
///  - per-request (OnRequest): the planner buffers internally and flushes
///    when a release crosses its own `batch_interval_min` boundary — the
///    legacy standalone behaviour;
///  - windowed (OnBatch): the simulation owns the windowing
///    (SimOptions::batch_window_s) and hands whole release windows over,
///    so the baseline rides the same dispatch-window plumbing as
///    DispatchWindowPlanner and the two become directly comparable under
///    identical window semantics.
class BatchBaselinePlanner : public BatchPlanner {
 public:
  BatchBaselinePlanner(PlanningContext* ctx, Fleet* fleet,
                       PlannerConfig config, double batch_interval_min = 0.1,
                       int max_group_size = 3);

  WorkerId OnRequest(const Request& r) override;
  void OnBatch(const std::vector<RequestId>& batch, double now,
               WindowEpoch epoch) override;
  void Finalize(double budget_seconds) override;
  std::string_view name() const override { return "batch"; }
  std::int64_t index_memory_bytes() const override {
    return index_->MemoryBytes();
  }

 private:
  /// Plans the buffered batch at simulated time `now`. `budget_seconds`
  /// bounds the wall time spent: group planning stops once it is
  /// exhausted and the remaining members stay rejected (DNF). The
  /// in-simulation driving paths pass an unbounded budget — their time
  /// is accounted by the simulator's own per-request/per-window clock.
  void FlushBatch(double now, double budget_seconds = kInf);
  /// Greedy multi-insert evaluation: how many of `group` fit into worker
  /// `w`'s route (virtually), and at what total cost.
  struct GroupFit {
    int count = 0;
    double delta = 0.0;
  };
  GroupFit EvaluateGroup(WorkerId w, const std::vector<RequestId>& group,
                         double now, bool commit);

  PlanningContext* ctx_;
  Fleet* fleet_;
  PlannerConfig config_;
  double batch_interval_;
  int max_group_size_;
  std::unique_ptr<GridIndex> index_;
  std::vector<RequestId> buffer_;
  double batch_start_ = 0.0;
  bool batch_open_ = false;
};

PlannerFactory MakeBatchFactory(PlannerConfig config,
                                double batch_interval_min = 0.1,
                                int max_group_size = 3);

}  // namespace urpsm

#endif  // URPSM_SRC_ALGOS_BATCH_H_
