#include "src/algos/kinetic.h"

#include <algorithm>

#include "src/sim/simulator.h"

namespace urpsm {

namespace {

/// DFS frame data shared across the recursion.
struct SearchContext {
  PlanningContext* ctx = nullptr;
  const std::vector<Stop>* stops = nullptr;   // all stops to order
  std::vector<double> deadline;               // per stop: latest arrival
  std::vector<int> load_change;               // per stop: +Kr / -Kr
  std::vector<int> pickup_of;                 // dropoff idx -> pickup idx or -1
  int capacity = 0;
  std::int64_t* budget = nullptr;
  double best_cost = kInf;
  std::vector<int> best_order;
  std::vector<int> current;
  std::vector<bool> used;
};

void Dfs(SearchContext* s, VertexId at, double time, double cost, int load) {
  if (*s->budget <= 0) return;
  --*s->budget;
  if (cost >= s->best_cost) return;  // branch and bound
  const std::size_t total = s->stops->size();
  if (s->current.size() == total) {
    s->best_cost = cost;
    s->best_order = s->current;
    return;
  }
  for (std::size_t k = 0; k < total; ++k) {
    if (s->used[k]) continue;
    // Precedence: a drop-off only after its pickup (if the pickup is part
    // of the ordering at all; onboard requests have pickup_of == -1).
    const int pk = s->pickup_of[k];
    if (pk >= 0 && !s->used[static_cast<std::size_t>(pk)]) continue;
    const int new_load = load + s->load_change[k];
    if (new_load > s->capacity) continue;
    const Stop& stop = (*s->stops)[k];
    const double leg = s->ctx->Dist(at, stop.location);
    const double t = time + leg;
    if (t > s->deadline[k]) continue;
    s->used[k] = true;
    s->current.push_back(static_cast<int>(k));
    Dfs(s, stop.location, t, cost + leg, new_load);
    s->current.pop_back();
    s->used[k] = false;
  }
}

}  // namespace

KineticPlanner::KineticPlanner(PlanningContext* ctx, Fleet* fleet,
                               PlannerConfig config,
                               std::int64_t max_expansions_per_request)
    : ctx_(ctx),
      fleet_(fleet),
      config_(config),
      max_expansions_(max_expansions_per_request) {
  Point lo, hi;
  ctx_->graph().BoundingBox(&lo, &hi);
  index_ = std::make_unique<GridIndex>(lo, hi, config_.grid_cell_km);
  fleet_->AttachIndex(index_.get());
}

KineticPlanner::Ordering KineticPlanner::BestOrdering(const Worker& worker,
                                                      const Route& route,
                                                      const Request& r,
                                                      std::int64_t* budget) {
  std::vector<Stop> stops(route.stops().begin(), route.stops().end());
  stops.push_back({r.origin, r.id, StopKind::kPickup});
  stops.push_back({r.destination, r.id, StopKind::kDropoff});

  SearchContext s;
  s.ctx = ctx_;
  s.stops = &stops;
  s.capacity = worker.capacity;
  s.budget = budget;
  const std::size_t m = stops.size();
  s.deadline.resize(m);
  s.load_change.resize(m);
  s.pickup_of.assign(m, -1);
  std::vector<int> pickup_index(m, -1);
  for (std::size_t k = 0; k < m; ++k) {
    const Request& req = ctx_->request(stops[k].request);
    if (stops[k].kind == StopKind::kPickup) {
      s.deadline[k] = req.deadline - ctx_->DirectDist(req.id);
      s.load_change[k] = req.capacity;
      for (std::size_t d = 0; d < m; ++d) {
        if ((*s.stops)[d].request == stops[k].request &&
            (*s.stops)[d].kind == StopKind::kDropoff) {
          s.pickup_of[d] = static_cast<int>(k);
        }
      }
    } else {
      s.deadline[k] = req.deadline;
      s.load_change[k] = -req.capacity;
    }
  }
  s.used.assign(m, false);
  Dfs(&s, route.anchor(), route.anchor_time(), 0.0,
      route.OnboardAtAnchor(*ctx_));

  Ordering out;
  if (s.best_cost == kInf) return out;
  out.cost = s.best_cost;
  out.stops.reserve(m);
  for (int k : s.best_order) out.stops.push_back(stops[static_cast<std::size_t>(k)]);
  return out;
}

WorkerId KineticPlanner::OnRequest(const Request& r) {
  const double now = r.release_time;
  const double L = ctx_->DirectDist(r.id);
  if (now + L > r.deadline) return kInvalidWorker;
  const double radius = CandidateRadiusKm(r, L, now);
  if (radius < 0.0) return kInvalidWorker;
  const Point origin_pt = ctx_->graph().coord(r.origin);
  const std::vector<WorkerId> candidates =
      index_->WithinRadius(origin_pt, radius);

  std::int64_t budget = max_expansions_;
  WorkerId best_worker = kInvalidWorker;
  Ordering best;
  double best_delta = kInf;
  for (WorkerId w : candidates) {
    fleet_->Touch(w, now);
    const Route& route = fleet_->route(w);
    Ordering ord = BestOrdering(fleet_->worker(w), route, r, &budget);
    if (ord.cost < kInf) {
      const double delta = ord.cost - route.RemainingCost();
      if (delta < best_delta) {
        best_delta = delta;
        best = std::move(ord);
        best_worker = w;
      }
    }
    if (budget <= 0) break;
  }
  if (budget <= 0) ++budget_exhausted_;
  if (best_worker == kInvalidWorker) return kInvalidWorker;
  fleet_->ReplaceRoute(best_worker, r, std::move(best.stops), ctx_->oracle());
  return best_worker;
}

PlannerFactory MakeKineticFactory(PlannerConfig config,
                                  std::int64_t max_expansions_per_request) {
  return [config, max_expansions_per_request](PlanningContext* ctx,
                                              Fleet* fleet) {
    return std::make_unique<KineticPlanner>(ctx, fleet, config,
                                            max_expansions_per_request);
  };
}

}  // namespace urpsm
