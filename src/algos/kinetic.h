#ifndef URPSM_SRC_ALGOS_KINETIC_H_
#define URPSM_SRC_ALGOS_KINETIC_H_

#include <memory>
#include <vector>

#include "src/core/planner.h"
#include "src/index/grid_index.h"

namespace urpsm {

/// Kinetic-tree baseline (Huang et al., PVLDB'14 [25]).
///
/// Instead of inserting into the current stop order, the kinetic approach
/// keeps *all* feasible orderings of a worker's pending stops and picks the
/// cheapest ordering that accommodates the new request — a search that is
/// exponential in the number of pending stops, i.e. in the worker capacity
/// ((2 Kw)! per the paper's Sec. 6.2 discussion). We realize the tree as a
/// branch-and-bound DFS over orderings with deadline/capacity pruning,
/// bounded by an expansion budget; when the budget is exhausted the best
/// ordering found so far is used. This reproduces kinetic's profile:
/// near-best service quality at small Kw, blow-up / DNF at large Kw.
class KineticPlanner : public RoutePlanner {
 public:
  KineticPlanner(PlanningContext* ctx, Fleet* fleet, PlannerConfig config,
                 std::int64_t max_expansions_per_request = 200000);

  WorkerId OnRequest(const Request& r) override;
  std::string_view name() const override { return "kinetic"; }
  std::int64_t index_memory_bytes() const override {
    return index_->MemoryBytes();
  }

  /// Requests whose search hit the expansion budget (tree blow-up).
  std::int64_t budget_exhausted_count() const { return budget_exhausted_; }

 private:
  struct Ordering {
    double cost = kInf;  // total travel time anchor -> last stop
    std::vector<Stop> stops;
  };

  /// Cheapest feasible ordering of `route`'s pending stops plus the pickup
  /// and drop-off of `r`, or cost == kInf if none found within budget.
  Ordering BestOrdering(const Worker& worker, const Route& route,
                        const Request& r, std::int64_t* budget);

  PlanningContext* ctx_;
  Fleet* fleet_;
  PlannerConfig config_;
  std::int64_t max_expansions_;
  std::int64_t budget_exhausted_ = 0;
  std::unique_ptr<GridIndex> index_;
};

PlannerFactory MakeKineticFactory(PlannerConfig config,
                                  std::int64_t max_expansions_per_request =
                                      200000);

}  // namespace urpsm

#endif  // URPSM_SRC_ALGOS_KINETIC_H_
