#include "src/workload/io.h"

#include <fstream>
#include <sstream>

namespace urpsm {

bool SaveInstance(const Instance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  out << "urpsm-instance v1\n";
  out << "name " << (instance.name.empty() ? "unnamed" : instance.name)
      << "\n";
  const RoadNetwork& g = instance.graph;
  out << "vertices " << g.num_vertices() << "\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << g.coord(v).x << " " << g.coord(v).y << "\n";
  }
  out << "edges " << g.edges().size() << "\n";
  for (const EdgeSpec& e : g.edges()) {
    out << e.u << " " << e.v << " " << e.length_km << " "
        << static_cast<int>(e.cls) << "\n";
  }
  out << "workers " << instance.workers.size() << "\n";
  for (const Worker& w : instance.workers) {
    out << w.initial_location << " " << w.capacity << "\n";
  }
  out << "requests " << instance.requests.size() << "\n";
  for (const Request& r : instance.requests) {
    out << r.origin << " " << r.destination << " " << r.release_time << " "
        << r.deadline << " " << r.penalty << " " << r.capacity << "\n";
  }
  return static_cast<bool>(out);
}

bool LoadInstance(const std::string& path, Instance* result) {
  std::ifstream in(path);
  if (!in) return false;
  std::string magic, version;
  if (!(in >> magic >> version) || magic != "urpsm-instance" ||
      version != "v1") {
    return false;
  }
  Instance inst;
  std::string tag;
  if (!(in >> tag >> inst.name) || tag != "name") return false;

  std::size_t n = 0;
  if (!(in >> tag >> n) || tag != "vertices") return false;
  std::vector<Point> coords(n);
  for (Point& p : coords) {
    if (!(in >> p.x >> p.y)) return false;
  }

  std::size_t m = 0;
  if (!(in >> tag >> m) || tag != "edges") return false;
  std::vector<EdgeSpec> edges(m);
  for (EdgeSpec& e : edges) {
    int cls = 0;
    if (!(in >> e.u >> e.v >> e.length_km >> cls)) return false;
    if (cls < 0 || cls > 3) return false;
    e.cls = static_cast<RoadClass>(cls);
  }
  inst.graph = RoadNetwork::FromEdges(std::move(coords), edges);

  std::size_t k = 0;
  if (!(in >> tag >> k) || tag != "workers") return false;
  inst.workers.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    Worker& w = inst.workers[i];
    w.id = static_cast<WorkerId>(i);
    if (!(in >> w.initial_location >> w.capacity)) return false;
  }

  std::size_t q = 0;
  if (!(in >> tag >> q) || tag != "requests") return false;
  inst.requests.resize(q);
  for (std::size_t i = 0; i < q; ++i) {
    Request& r = inst.requests[i];
    r.id = static_cast<RequestId>(i);
    if (!(in >> r.origin >> r.destination >> r.release_time >> r.deadline >>
          r.penalty >> r.capacity)) {
      return false;
    }
  }
  *result = std::move(inst);
  return true;
}

}  // namespace urpsm
