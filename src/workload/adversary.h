#ifndef URPSM_SRC_WORKLOAD_ADVERSARY_H_
#define URPSM_SRC_WORKLOAD_ADVERSARY_H_

#include "src/core/urpsm.h"
#include "src/util/rng.h"

namespace urpsm {

/// Which hardness construction of Sec. 3.3 to instantiate.
enum class AdversaryLemma {
  kMaxServed = 1,   // Lemma 1: alpha = 0, p_r = 1
  kMaxRevenue = 2,  // Lemma 2: alpha = c_w, p_r = c_r * dis(o_r, d_r)
  kMinDistance = 3, // Lemma 3: alpha = 1, p_r -> infinity
};

/// Builds one draw from the adversarial input distribution chi used in the
/// proofs of Lemmas 1-3: an undirected cycle of `num_vertices` (even)
/// unit-cost edges, a single worker of capacity 2 starting at v_0, and one
/// request released at time |V| whose origin is uniform over V. For
/// Lemma 1/3 the destination equals the origin's antipode-free choice
/// (d_r = o_r, modeled as the nearest distinct vertex since self-loops are
/// not representable); for Lemma 2 the destination is the antipodal vertex
/// (distance |V|/2). The deadline is t_r + epsilon.
///
/// An omniscient (offline) algorithm always serves the request (it has |V|
/// time units to pre-position the worker); any online algorithm serves it
/// with probability <= 2/|V| + o(1) — the empirical competitive-ratio
/// blow-up reproduced by bench_hardness.
Instance MakeCycleAdversary(int num_vertices, AdversaryLemma lemma,
                            double epsilon, Rng* rng);

/// The online-unservable probability floor of the construction: 1 - 2/|V|.
double AdversaryUnservedLowerBound(int num_vertices);

}  // namespace urpsm

#endif  // URPSM_SRC_WORKLOAD_ADVERSARY_H_
