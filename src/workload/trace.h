#ifndef URPSM_SRC_WORKLOAD_TRACE_H_
#define URPSM_SRC_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "src/graph/road_network.h"
#include "src/model/types.h"
#include "src/shortest/oracle.h"

namespace urpsm {

/// One raw trip record, in the shape of the taxi traces the paper
/// evaluates on (NYC TLC / Didi GAIA): pickup and drop-off coordinates,
/// a release timestamp (minutes) and a passenger count.
struct TripRecord {
  double release_min = 0.0;
  Point pickup;
  Point dropoff;
  int passengers = 1;
};

/// Loads trips from a CSV file with the header
/// `release_min,pickup_x,pickup_y,dropoff_x,dropoff_y,passengers`.
/// Returns false on I/O or parse failure.
bool LoadTripCsv(const std::string& path, std::vector<TripRecord>* out);

/// Writes trips in the same format.
bool SaveTripCsv(const std::vector<TripRecord>& trips,
                 const std::string& path);

/// Converts raw trips into URPSM requests exactly the way the paper
/// preprocesses its datasets (Sec. 6.1): pickup/drop-off coordinates are
/// mapped to the closest road-network vertex; deadlines are release +
/// `deadline_offset_min`; penalties are `penalty_factor * dis(o_r, d_r)`.
/// Trips whose endpoints map to the same vertex are dropped. The result
/// is sorted by release time with dense ids.
std::vector<Request> RequestsFromTrips(const RoadNetwork& graph,
                                       const std::vector<TripRecord>& trips,
                                       double deadline_offset_min,
                                       double penalty_factor,
                                       DistanceOracle* oracle);

/// Exact nearest-vertex lookup accelerated by a uniform bucket grid
/// (NearestVertex on RoadNetwork is a linear scan; this is the indexed
/// version used for trace mapping).
class NearestVertexIndex {
 public:
  explicit NearestVertexIndex(const RoadNetwork& graph,
                              double bucket_km = 0.5);

  VertexId Nearest(const Point& p) const;

 private:
  const RoadNetwork* graph_;
  double bucket_km_;
  Point lo_;
  int bx_ = 0;
  int by_ = 0;
  std::vector<std::vector<VertexId>> buckets_;
};

}  // namespace urpsm

#endif  // URPSM_SRC_WORKLOAD_TRACE_H_
