#ifndef URPSM_SRC_WORKLOAD_CITY_H_
#define URPSM_SRC_WORKLOAD_CITY_H_

#include "src/graph/road_network.h"
#include "src/util/rng.h"

namespace urpsm {

/// Parameters of the synthetic city road-network generator.
///
/// The generator substitutes for the paper's real road networks (NYC from
/// Geofabrik OSM, Chengdu extracted via Osmconvert) which are not
/// available offline. It produces a planar street grid with the features
/// the URPSM algorithms are sensitive to: heterogeneous road classes with
/// different speeds (the paper drives at 80% of per-class speed limits),
/// irregular block lengths, and a few missing segments so that shortest
/// paths are non-trivial. Edge lengths are always >= the Euclidean
/// distance between endpoints, keeping the decision phase's Euclidean
/// lower bounds valid.
struct CityParams {
  int rows = 60;
  int cols = 60;
  double block_km = 0.25;       // nominal block edge length
  int arterial_every = 8;       // every k-th street is primary-class
  int motorway_every = 24;      // every k-th street is motorway-class
  double length_jitter = 0.15;  // edge length multiplier in [1, 1+jitter]
  double dropout = 0.04;        // fraction of interior edges removed
  std::uint64_t seed = 1;
};

/// Builds a synthetic city from `params`.
RoadNetwork MakeCity(const CityParams& params);

/// NYC-like city at the given scale: scale 1.0 gives ~10k vertices (the
/// real network has 808k; the scale knob trades fidelity for runtime, see
/// DESIGN.md substitution #1).
RoadNetwork MakeNycLike(double scale = 1.0, std::uint64_t seed = 1);

/// Chengdu-like city: smaller and denser-demand than NYC, mirroring
/// Table 4's relative sizes (~214k vs 808k vertices -> ~0.27x).
RoadNetwork MakeChengduLike(double scale = 1.0, std::uint64_t seed = 2);

}  // namespace urpsm

#endif  // URPSM_SRC_WORKLOAD_CITY_H_
