#ifndef URPSM_SRC_WORKLOAD_IO_H_
#define URPSM_SRC_WORKLOAD_IO_H_

#include <string>

#include "src/core/urpsm.h"

namespace urpsm {

/// Plain-text instance format, one section per entity kind:
///
///   urpsm-instance v1
///   name <string>
///   vertices <n>
///   <x> <y>                (n lines)
///   edges <m>
///   <u> <v> <length_km> <class>   (m lines)
///   workers <k>
///   <vertex> <capacity>    (k lines; ids are line order)
///   requests <q>
///   <origin> <dest> <release> <deadline> <penalty> <capacity>  (q lines)
///
/// Used to persist generated workloads so benchmark sweeps are replayable
/// and to exchange instances with external tooling.
bool SaveInstance(const Instance& instance, const std::string& path);

/// Loads an instance; returns false (and leaves `out` untouched) on parse
/// or I/O failure.
bool LoadInstance(const std::string& path, Instance* out);

}  // namespace urpsm

#endif  // URPSM_SRC_WORKLOAD_IO_H_
