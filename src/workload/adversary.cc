#include "src/workload/adversary.h"

#include <cassert>

#include "src/core/objective.h"
#include "src/graph/builders.h"

namespace urpsm {

Instance MakeCycleAdversary(int num_vertices, AdversaryLemma lemma,
                            double epsilon, Rng* rng) {
  assert(num_vertices >= 4 && num_vertices % 2 == 0);
  Instance inst;
  inst.name = "cycle-adversary";
  // Unit-cost edges: one edge takes exactly one minute of travel.
  const double edge_km = SpeedKmPerMin(RoadClass::kResidential);
  inst.graph = MakeCycleGraph(num_vertices, edge_km);

  Worker w;
  w.id = 0;
  w.initial_location = 0;  // v_0
  w.capacity = 2;
  inst.workers.push_back(w);

  Request r;
  r.id = 0;
  r.origin = static_cast<VertexId>(rng->UniformInt(0, num_vertices - 1));
  if (lemma == AdversaryLemma::kMaxRevenue) {
    // d_r at cycle distance |V|/2 from o_r (the antipodal vertex).
    r.destination =
        static_cast<VertexId>((r.origin + num_vertices / 2) % num_vertices);
  } else {
    // The proofs use d_r = o_r; the closest representable trip is to a
    // neighbouring vertex, which preserves the argument (the worker still
    // must be within epsilon of o_r at release time).
    r.destination = static_cast<VertexId>((r.origin + 1) % num_vertices);
  }
  r.release_time = static_cast<double>(num_vertices);
  r.deadline = r.release_time + epsilon +
               (lemma == AdversaryLemma::kMaxRevenue
                    ? static_cast<double>(num_vertices) / 2.0
                    : 1.0);
  r.capacity = 1;
  switch (lemma) {
    case AdversaryLemma::kMaxServed:
      r.penalty = 1.0;
      break;
    case AdversaryLemma::kMaxRevenue:
      // p_r = c_r * dis(o_r, d_r) with c_r = 2.5 c_w (c_w = 1): large
      // enough that the optimal never rejects (cf. Lemma 2's c_r > 2 c_w).
      r.penalty = 2.5 * (static_cast<double>(num_vertices) / 2.0);
      break;
    case AdversaryLemma::kMinDistance:
      r.penalty = kServeAllPenalty;
      break;
  }
  inst.requests.push_back(r);
  return inst;
}

double AdversaryUnservedLowerBound(int num_vertices) {
  return 1.0 - 2.0 / static_cast<double>(num_vertices);
}

}  // namespace urpsm
