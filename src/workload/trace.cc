#include "src/workload/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

namespace urpsm {

bool LoadTripCsv(const std::string& path, std::vector<TripRecord>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;  // header
  std::vector<TripRecord> trips;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    TripRecord t;
    char comma;
    if (!(ss >> t.release_min >> comma >> t.pickup.x >> comma >> t.pickup.y >>
          comma >> t.dropoff.x >> comma >> t.dropoff.y >> comma >>
          t.passengers)) {
      return false;
    }
    trips.push_back(t);
  }
  *out = std::move(trips);
  return true;
}

bool SaveTripCsv(const std::vector<TripRecord>& trips,
                 const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  out << "release_min,pickup_x,pickup_y,dropoff_x,dropoff_y,passengers\n";
  for (const TripRecord& t : trips) {
    out << t.release_min << ',' << t.pickup.x << ',' << t.pickup.y << ','
        << t.dropoff.x << ',' << t.dropoff.y << ',' << t.passengers << '\n';
  }
  return static_cast<bool>(out);
}

NearestVertexIndex::NearestVertexIndex(const RoadNetwork& graph,
                                       double bucket_km)
    : graph_(&graph), bucket_km_(bucket_km) {
  Point hi;
  graph.BoundingBox(&lo_, &hi);
  bx_ = std::max(1, static_cast<int>(std::ceil((hi.x - lo_.x) / bucket_km_)));
  by_ = std::max(1, static_cast<int>(std::ceil((hi.y - lo_.y) / bucket_km_)));
  buckets_.resize(static_cast<std::size_t>(bx_) * by_);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const Point& p = graph.coord(v);
    const int x = std::clamp(static_cast<int>((p.x - lo_.x) / bucket_km_), 0,
                             bx_ - 1);
    const int y = std::clamp(static_cast<int>((p.y - lo_.y) / bucket_km_), 0,
                             by_ - 1);
    buckets_[static_cast<std::size_t>(y) * bx_ + x].push_back(v);
  }
}

VertexId NearestVertexIndex::Nearest(const Point& p) const {
  const int cx =
      std::clamp(static_cast<int>((p.x - lo_.x) / bucket_km_), 0, bx_ - 1);
  const int cy =
      std::clamp(static_cast<int>((p.y - lo_.y) / bucket_km_), 0, by_ - 1);
  VertexId best = kInvalidVertex;
  double best_d = std::numeric_limits<double>::infinity();
  const int max_ring = std::max(bx_, by_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    // Once a candidate exists, one extra ring suffices: anything farther
    // out is at least (ring - 1) * bucket_km away.
    if (best != kInvalidVertex &&
        static_cast<double>(ring - 1) * bucket_km_ > best_d) {
      break;
    }
    for (int y = std::max(0, cy - ring); y <= std::min(by_ - 1, cy + ring);
         ++y) {
      for (int x = std::max(0, cx - ring); x <= std::min(bx_ - 1, cx + ring);
           ++x) {
        if (std::max(std::abs(x - cx), std::abs(y - cy)) != ring) continue;
        for (VertexId v : buckets_[static_cast<std::size_t>(y) * bx_ + x]) {
          const double d = EuclideanDistance(graph_->coord(v), p);
          if (d < best_d) {
            best_d = d;
            best = v;
          }
        }
      }
    }
  }
  return best;
}

std::vector<Request> RequestsFromTrips(const RoadNetwork& graph,
                                       const std::vector<TripRecord>& trips,
                                       double deadline_offset_min,
                                       double penalty_factor,
                                       DistanceOracle* oracle) {
  const NearestVertexIndex index(graph);
  std::vector<Request> requests;
  requests.reserve(trips.size());
  for (const TripRecord& t : trips) {
    Request r;
    r.origin = index.Nearest(t.pickup);
    r.destination = index.Nearest(t.dropoff);
    if (r.origin == r.destination) continue;  // degenerate after mapping
    r.release_time = t.release_min;
    r.deadline = t.release_min + deadline_offset_min;
    r.capacity = std::max(1, t.passengers);
    requests.push_back(r);
  }
  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) {
              return a.release_time < b.release_time;
            });
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = static_cast<RequestId>(i);
    requests[i].penalty =
        penalty_factor *
        oracle->Distance(requests[i].origin, requests[i].destination);
  }
  return requests;
}

}  // namespace urpsm
