#include "src/workload/city.h"

#include <cmath>
#include <vector>

namespace urpsm {

namespace {

/// Union-find used to keep the generated city connected.
class Dsu {
 public:
  explicit Dsu(int n) : parent_(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
  }
  int Find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[static_cast<std::size_t>(a)] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

RoadClass StreetClass(int index, const CityParams& p) {
  if (p.motorway_every > 0 && index % p.motorway_every == 0) {
    return RoadClass::kMotorway;
  }
  if (p.arterial_every > 0 && index % p.arterial_every == 0) {
    return RoadClass::kPrimary;
  }
  return RoadClass::kResidential;
}

}  // namespace

RoadNetwork MakeCity(const CityParams& p) {
  Rng rng(p.seed);
  const int rows = p.rows;
  const int cols = p.cols;

  // Vertex coordinates: a jittered lattice. Jitter is bounded to 20% of a
  // block so the lattice stays planar-ish and edge-length >= Euclidean
  // holds after the length multiplier below.
  std::vector<Point> coords;
  coords.reserve(static_cast<std::size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      coords.push_back({c * p.block_km, r * p.block_km});
    }
  }

  auto id = [cols](int r, int c) { return r * cols + c; };
  std::vector<EdgeSpec> edges;
  std::vector<EdgeSpec> dropped;
  edges.reserve(static_cast<std::size_t>(rows) * cols * 2);
  Dsu dsu(rows * cols);
  auto emit = [&](int u, int v, RoadClass cls, bool interior) {
    const double len = p.block_km * (1.0 + rng.Uniform(0.0, p.length_jitter));
    const EdgeSpec e{u, v, len, cls};
    if (interior && rng.Bernoulli(p.dropout)) {
      dropped.push_back(e);
      return;
    }
    edges.push_back(e);
    dsu.Union(u, v);
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Horizontal street r, vertical street c. A street keeps one road
      // class along its whole length, like real arterials.
      if (c + 1 < cols) {
        emit(id(r, c), id(r, c + 1), StreetClass(r, p), r > 0 && r + 1 < rows);
      }
      if (r + 1 < rows) {
        emit(id(r, c), id(r + 1, c), StreetClass(c, p), c > 0 && c + 1 < cols);
      }
    }
  }
  // Re-add just enough dropped edges to keep the city connected.
  for (const EdgeSpec& e : dropped) {
    if (dsu.Union(e.u, e.v)) edges.push_back(e);
  }
  return RoadNetwork::FromEdges(std::move(coords), edges);
}

RoadNetwork MakeNycLike(double scale, std::uint64_t seed) {
  CityParams p;
  const double side = std::sqrt(scale);
  p.rows = std::max(8, static_cast<int>(100 * side));
  p.cols = std::max(8, static_cast<int>(100 * side));
  p.block_km = 0.25;
  p.arterial_every = 8;
  p.motorway_every = 25;
  p.seed = seed;
  return MakeCity(p);
}

RoadNetwork MakeChengduLike(double scale, std::uint64_t seed) {
  CityParams p;
  const double side = std::sqrt(scale);
  p.rows = std::max(8, static_cast<int>(52 * side));
  p.cols = std::max(8, static_cast<int>(52 * side));
  p.block_km = 0.3;
  p.arterial_every = 6;
  p.motorway_every = 18;
  p.seed = seed;
  return MakeCity(p);
}

}  // namespace urpsm
