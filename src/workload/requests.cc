#include "src/workload/requests.h"

#include <algorithm>
#include <cmath>

namespace urpsm {

namespace {

// NYC TLC passenger-count distribution (the paper generates Chengdu's Kr
// from NYC's distribution; these are the yellow-cab proportions).
constexpr double kCapacityWeights[] = {0.72, 0.14, 0.05, 0.05, 0.02, 0.02};

/// Release-time sampler: two Gaussian rush peaks (8:30 and 18:00) over a
/// uniform base load.
double SampleReleaseTime(const RequestParams& p, Rng* rng) {
  if (rng->Bernoulli(p.rush_fraction)) {
    const bool morning = rng->Bernoulli(0.45);
    const double peak = morning ? 8.5 * 60.0 : 18.0 * 60.0;
    const double t = rng->Gaussian(peak, 45.0);
    return std::clamp(t, 0.0, p.duration_min);
  }
  return rng->Uniform(0.0, p.duration_min);
}

}  // namespace

VertexSampler::VertexSampler(const RoadNetwork& graph, double bucket_km)
    : graph_(&graph), bucket_km_(bucket_km) {
  Point hi;
  graph.BoundingBox(&lo_, &hi);
  bx_ = std::max(1, static_cast<int>(std::ceil((hi.x - lo_.x) / bucket_km_)));
  by_ = std::max(1, static_cast<int>(std::ceil((hi.y - lo_.y) / bucket_km_)));
  buckets_.resize(static_cast<std::size_t>(bx_) * by_);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const Point& p = graph.coord(v);
    const int x = std::clamp(static_cast<int>((p.x - lo_.x) / bucket_km_), 0,
                             bx_ - 1);
    const int y = std::clamp(static_cast<int>((p.y - lo_.y) / bucket_km_), 0,
                             by_ - 1);
    buckets_[static_cast<std::size_t>(y) * bx_ + x].push_back(v);
  }
}

VertexId VertexSampler::SampleNear(const Point& p, Rng* rng) const {
  const int cx = std::clamp(static_cast<int>((p.x - lo_.x) / bucket_km_), 0,
                            bx_ - 1);
  const int cy = std::clamp(static_cast<int>((p.y - lo_.y) / bucket_km_), 0,
                            by_ - 1);
  for (int ring = 0; ring < std::max(bx_, by_); ++ring) {
    // Collect candidates from the square ring at L-inf radius `ring`.
    std::vector<VertexId> pool;
    for (int y = std::max(0, cy - ring); y <= std::min(by_ - 1, cy + ring);
         ++y) {
      for (int x = std::max(0, cx - ring); x <= std::min(bx_ - 1, cx + ring);
           ++x) {
        if (std::max(std::abs(x - cx), std::abs(y - cy)) != ring) continue;
        const auto& b = buckets_[static_cast<std::size_t>(y) * bx_ + x];
        pool.insert(pool.end(), b.begin(), b.end());
      }
    }
    if (!pool.empty()) {
      return pool[static_cast<std::size_t>(
          rng->UniformInt(0, static_cast<int>(pool.size()) - 1))];
    }
  }
  return SampleUniform(rng);
}

VertexId VertexSampler::SampleUniform(Rng* rng) const {
  return static_cast<VertexId>(
      rng->UniformInt(0, graph_->num_vertices() - 1));
}

std::vector<Request> GenerateRequests(const RoadNetwork& graph,
                                      const RequestParams& params,
                                      DistanceOracle* oracle, Rng* rng) {
  const VertexSampler sampler(graph);

  // Hotspot centers: random vertices.
  std::vector<Point> hotspots;
  hotspots.reserve(static_cast<std::size_t>(params.hotspot_count));
  for (int h = 0; h < params.hotspot_count; ++h) {
    hotspots.push_back(graph.coord(sampler.SampleUniform(rng)));
  }

  const auto sample_endpoint = [&]() -> VertexId {
    if (hotspots.empty() || rng->Bernoulli(params.uniform_fraction)) {
      return sampler.SampleUniform(rng);
    }
    const Point& c = hotspots[static_cast<std::size_t>(
        rng->UniformInt(0, static_cast<int>(hotspots.size()) - 1))];
    const Point p{c.x + rng->Gaussian(0.0, params.hotspot_stddev_km),
                  c.y + rng->Gaussian(0.0, params.hotspot_stddev_km)};
    return sampler.SampleNear(p, rng);
  };

  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(params.count));
  for (int i = 0; i < params.count; ++i) {
    Request r;
    r.origin = sample_endpoint();
    do {
      r.destination = sample_endpoint();
    } while (r.destination == r.origin);
    r.release_time = SampleReleaseTime(params, rng);
    r.deadline = r.release_time + params.deadline_offset_min;
    const std::vector<double> weights(std::begin(kCapacityWeights),
                                      std::end(kCapacityWeights));
    r.capacity = 1 + rng->Categorical(weights);
    requests.push_back(r);
  }
  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) {
              return a.release_time < b.release_time;
            });
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = static_cast<RequestId>(i);
  }
  SetPenaltyFactors(&requests, params.penalty_factor, oracle);
  return requests;
}

std::vector<Worker> GenerateWorkers(const RoadNetwork& graph, int count,
                                    double capacity_mean, Rng* rng) {
  std::vector<Worker> workers;
  workers.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Worker w;
    w.id = static_cast<WorkerId>(i);
    w.initial_location =
        static_cast<VertexId>(rng->UniformInt(0, graph.num_vertices() - 1));
    w.capacity = std::max(
        1, static_cast<int>(std::lround(rng->Gaussian(capacity_mean, 1.0))));
    workers.push_back(w);
  }
  return workers;
}

void SetDeadlineOffsets(std::vector<Request>* requests, double offset_min) {
  for (Request& r : *requests) r.deadline = r.release_time + offset_min;
}

void SetPenaltyFactors(std::vector<Request>* requests, double factor,
                       DistanceOracle* oracle) {
  for (Request& r : *requests) {
    r.penalty = factor * oracle->Distance(r.origin, r.destination);
  }
}

}  // namespace urpsm
