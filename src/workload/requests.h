#ifndef URPSM_SRC_WORKLOAD_REQUESTS_H_
#define URPSM_SRC_WORKLOAD_REQUESTS_H_

#include <vector>

#include "src/graph/road_network.h"
#include "src/model/types.h"
#include "src/shortest/oracle.h"
#include "src/util/rng.h"

namespace urpsm {

/// Parameters of the synthetic request generator.
///
/// Mirrors what the paper's taxi traces look like statistically: spatially
/// clustered demand (trips concentrate around a handful of hotspots),
/// rush-hour arrival peaks over a day, the NYC capacity distribution
/// (Kr is 1 for ~70% of trips; Chengdu borrows NYC's distribution in the
/// paper too), deadlines at release + er_offset minutes, and penalties
/// proportional to the direct origin->destination distance (Table 5).
struct RequestParams {
  int count = 5000;
  double duration_min = 1440.0;     // one day
  int hotspot_count = 6;
  double hotspot_stddev_km = 1.5;
  double uniform_fraction = 0.25;   // trips not tied to any hotspot
  double rush_fraction = 0.6;       // trips in the two rush-hour peaks
  double deadline_offset_min = 10.0;  // er = tr + offset (Table 5 default)
  double penalty_factor = 10.0;       // pr = factor * dis(or, dr)
  std::uint64_t seed = 7;
};

/// Generates `params.count` requests over `graph`, sorted by release time,
/// with dense ids 0..count-1. Penalties are factor * dis(o_r, d_r) using
/// `oracle` (the same values every algorithm later caches as L_r). Trips
/// whose origin equals their destination are re-drawn.
std::vector<Request> GenerateRequests(const RoadNetwork& graph,
                                      const RequestParams& params,
                                      DistanceOracle* oracle, Rng* rng);

/// Generates `count` workers at uniformly random vertices with capacities
/// drawn from a Gaussian with the given mean (stddev 1, clamped to >= 1),
/// exactly as in Sec. 6.1.
std::vector<Worker> GenerateWorkers(const RoadNetwork& graph, int count,
                                    double capacity_mean, Rng* rng);

/// Rewrites deadlines to release + offset (paper's er sweep).
void SetDeadlineOffsets(std::vector<Request>* requests, double offset_min);

/// Rewrites penalties to factor * dis(o_r, d_r) (paper's pr sweep).
void SetPenaltyFactors(std::vector<Request>* requests, double factor,
                       DistanceOracle* oracle);

/// Samples vertices near arbitrary points efficiently (bucketed by a
/// coarse grid). Shared by the request generator and tests.
class VertexSampler {
 public:
  VertexSampler(const RoadNetwork& graph, double bucket_km = 1.0);

  /// A random vertex near `p`: a uniform choice within the nearest
  /// non-empty bucket ring around p's bucket.
  VertexId SampleNear(const Point& p, Rng* rng) const;

  /// A uniformly random vertex.
  VertexId SampleUniform(Rng* rng) const;

 private:
  const RoadNetwork* graph_;
  double bucket_km_;
  Point lo_;
  int bx_ = 0;
  int by_ = 0;
  std::vector<std::vector<VertexId>> buckets_;
};

}  // namespace urpsm

#endif  // URPSM_SRC_WORKLOAD_REQUESTS_H_
