#ifndef URPSM_SRC_MODEL_ROUTE_H_
#define URPSM_SRC_MODEL_ROUTE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/model/types.h"
#include "src/shortest/oracle.h"

namespace urpsm {

class PlanningContext;

/// A worker's planned route (Def. 4): the anchor vertex l_0 (the vertex the
/// worker most recently reached, with the time it was/will be reached) plus
/// the ordered pending stops l_1..l_n. The route caches the travel time of
/// every leg so that schedules (arrival times) are recomputable with zero
/// shortest-distance queries, and keeps the arrival prefix itself cached so
/// ArrivalAt is O(1).
///
/// Every mutation (Insert, SetStops, PopFront, set_anchor_time) bumps a
/// monotonic version counter. Downstream caches — the fleet's per-worker
/// RouteState memo in particular — key on it: an unchanged version
/// guarantees the route (stops, legs, anchor, anchor time) is unchanged.
///
/// Model note: worker positions are resolved at vertex granularity, exactly
/// as in the paper's simulation — between stops the worker's location is
/// implied by the schedule, and re-planning always measures from the anchor.
class Route {
 public:
  Route() = default;
  Route(VertexId anchor, double anchor_time)
      : anchor_(anchor), anchor_time_(anchor_time), arrivals_{anchor_time} {}

  VertexId anchor() const { return anchor_; }
  double anchor_time() const { return anchor_time_; }
  void set_anchor_time(double t) {
    anchor_time_ = t;
    ++version_;
    RecomputeArrivals();
  }

  /// Mutation counter: bumped by Insert, SetStops, PopFront and
  /// set_anchor_time. Equal versions of the same Route object imply an
  /// identical route; cache RouteState and schedules against it.
  ///
  /// The incremental planning layer leans on the same guarantee one level
  /// up: EvalMemo keys a request's per-worker evaluations (decision lower
  /// bound, insertion-DP delta/position, billed query count) on
  /// (worker, version). Because an evaluation is a pure function of
  /// (route, request), an entry at the current version can be replayed
  /// verbatim — including re-billing its recorded query count — and a
  /// replan only recomputes workers whose version moved. The counter must
  /// therefore keep bumping on EVERY mutation, even ones that restore a
  /// previous byte-identical state (the memo never compares content).
  std::uint64_t version() const { return version_; }

  const std::vector<Stop>& stops() const { return stops_; }
  /// Travel time of leg k (from vertex k to vertex k+1), k in [0, size).
  const std::vector<double>& leg_costs() const { return leg_costs_; }

  int size() const { return static_cast<int>(stops_.size()); }
  bool empty() const { return stops_.empty(); }

  /// Vertex at route position k: k = 0 is the anchor, k in [1, size] is
  /// stops()[k-1].
  VertexId VertexAt(int k) const {
    return k == 0 ? anchor_ : stops_[static_cast<std::size_t>(k - 1)].location;
  }

  /// Arrival time at route position k. O(1): served from the cached
  /// arrival prefix, which is recomputed eagerly on every mutation with
  /// the same left-to-right accumulation a fresh prefix walk would use
  /// (bit-identical results, and safe for concurrent readers since reads
  /// never mutate).
  double ArrivalAt(int k) const {
    assert(k >= 0 && k <= size());
    return arrivals_[static_cast<std::size_t>(k)];
  }

  /// Total planned travel time from the anchor through the last stop.
  double RemainingCost() const;

  /// Inserts the pickup of `r` after position i and the drop-off after
  /// position j (i <= j, positions in [0, size]), looking up the new legs'
  /// costs in `oracle`. Matches the paper's insertion semantics exactly.
  void Insert(const Request& r, int i, int j, DistanceOracle* oracle);

  /// Replaces all pending stops, recomputing every leg cost via `oracle`.
  /// Used by planners that reorder routes wholesale (kinetic trees).
  void SetStops(std::vector<Stop> stops, DistanceOracle* oracle);

  /// Removes the front stop, making it the new anchor; its arrival time
  /// becomes the anchor time. Returns the removed stop.
  Stop PopFront();

  /// Number of capacity units on board at the anchor: requests whose
  /// drop-off is pending but whose pickup already happened. Request
  /// capacities resolve through the context's id->index mapping, so
  /// non-dense id spaces are handled like dense ones.
  int OnboardAtAnchor(const PlanningContext& ctx) const;

  /// Full vertex-level driving path from the anchor through every pending
  /// stop, materialized with shortest-path queries (each stop-to-stop leg
  /// expanded; consecutive duplicates collapsed). Used when exporting
  /// planned routes for navigation/visualization.
  std::vector<VertexId> MaterializePath(DistanceOracle* oracle) const;

 private:
  void RecomputeArrivals();

  VertexId anchor_ = kInvalidVertex;
  double anchor_time_ = 0.0;
  std::uint64_t version_ = 0;
  std::vector<Stop> stops_;
  std::vector<double> leg_costs_;  // leg_costs_[k] = cost(VertexAt(k), VertexAt(k+1))
  std::vector<double> arrivals_{0.0};  // arrivals_[k] = ArrivalAt(k), size()+1 entries
};

}  // namespace urpsm

#endif  // URPSM_SRC_MODEL_ROUTE_H_
