#ifndef URPSM_SRC_MODEL_FEASIBILITY_H_
#define URPSM_SRC_MODEL_FEASIBILITY_H_

#include <vector>

#include "src/graph/road_network.h"
#include "src/model/route.h"
#include "src/model/types.h"
#include "src/shortest/oracle.h"

namespace urpsm {

/// Shared state threaded through decision/insertion/planning: the road
/// network, the distance oracle, the request table (indexed by RequestId)
/// and a per-request cache of the direct origin->destination shortest
/// distance L_r = dis(o_r, d_r). Caching L_r keeps the deadline array
/// (Eq. 6) free of repeat queries and makes the decision phase's
/// "exactly one shortest-distance query" property (Lemma 7) hold.
class PlanningContext {
 public:
  PlanningContext(const RoadNetwork* graph, DistanceOracle* oracle,
                  const std::vector<Request>* requests)
      : graph_(graph), oracle_(oracle), requests_(requests) {}

  const RoadNetwork& graph() const { return *graph_; }
  DistanceOracle* oracle() const { return oracle_; }
  const std::vector<Request>& requests() const { return *requests_; }
  const Request& request(RequestId id) const {
    return (*requests_)[static_cast<std::size_t>(id)];
  }

  double Dist(VertexId u, VertexId v) const { return oracle_->Distance(u, v); }

  /// L_r = dis(o_r, d_r); computed at most once per request.
  double DirectDist(RequestId id);

 private:
  const RoadNetwork* graph_;
  DistanceOracle* oracle_;
  const std::vector<Request>* requests_;
  std::vector<double> direct_dist_;  // kInf-filled lazily grown cache
};

/// The auxiliary arrays of Sec. 4.3 for a route with n stops; all are
/// indexed by route position k in [0, n] (k = 0 is the anchor).
///
///   arr[k]    — arrival time at l_k (Eq. 7)
///   ddl[k]    — latest feasible arrival at l_k (Eq. 6); +inf at the anchor
///   slack[k]  — max tolerable detour between l_k and l_k+1 (Eq. 8); +inf at n
///   picked[k] — capacity units on board after visiting l_k (Eq. 9)
struct RouteState {
  int n = 0;
  std::vector<double> arr;
  std::vector<double> ddl;
  std::vector<double> slack;
  std::vector<int> picked;
};

/// Builds the auxiliary arrays for `route`. Uses only the route's cached
/// leg costs plus (cached) direct distances, so it issues no new
/// shortest-distance queries after the first time each onboard request's
/// L_r is seen.
RouteState BuildRouteState(const Route& route, PlanningContext* ctx);

/// Ground-truth feasibility check used by tests and the basic insertion:
/// recomputes the schedule of `stops` starting from (anchor, anchor_time)
/// with fresh distance queries and verifies Def. 4's three conditions
/// (pickup precedes drop-off, drop-off by deadline, capacity bound).
/// `onboard` is the load already on the vehicle at the anchor.
bool ValidateStops(VertexId anchor, double anchor_time,
                   const std::vector<Stop>& stops, int worker_capacity,
                   int onboard, PlanningContext* ctx,
                   double* total_cost = nullptr);

}  // namespace urpsm

#endif  // URPSM_SRC_MODEL_FEASIBILITY_H_
