#ifndef URPSM_SRC_MODEL_FEASIBILITY_H_
#define URPSM_SRC_MODEL_FEASIBILITY_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/graph/road_network.h"
#include "src/model/route.h"
#include "src/model/types.h"
#include "src/shortest/oracle.h"

namespace urpsm {

class ThreadPool;
class FaultInjector;

namespace obs {
class Registry;
class TraceRecorder;
}  // namespace obs

/// Shared state threaded through decision/insertion/planning: the road
/// network, the distance oracle, the request table (indexed by RequestId)
/// and a per-request cache of the direct origin->destination shortest
/// distance L_r = dis(o_r, d_r). Caching L_r keeps the deadline array
/// (Eq. 6) free of repeat queries and makes the decision phase's
/// "exactly one shortest-distance query" property (Lemma 7) hold.
class PlanningContext {
 public:
  PlanningContext(const RoadNetwork* graph, DistanceOracle* oracle,
                  const std::vector<Request>* requests)
      : graph_(graph),
        oracle_(oracle),
        requests_(requests),
        direct_dist_(requests->size()) {
    for (auto& d : direct_dist_) d.store(kInf, std::memory_order_relaxed);
    // Ids are usually the dense positions 0..n-1 (generated workloads);
    // everything downstream used to *assume* that and silently indexed out
    // of bounds otherwise. Detect the dense layout once and keep the O(1)
    // path for it; any other id scheme gets an explicit id->index map.
    dense_ids_ = true;
    for (std::size_t i = 0; i < requests_->size(); ++i) {
      if ((*requests_)[i].id != static_cast<RequestId>(i)) {
        dense_ids_ = false;
        break;
      }
    }
    if (!dense_ids_) {
      id_to_index_.reserve(requests_->size());
      for (std::size_t i = 0; i < requests_->size(); ++i) {
        id_to_index_.emplace((*requests_)[i].id, i);
      }
    }
  }

  const RoadNetwork& graph() const { return *graph_; }
  DistanceOracle* oracle() const { return oracle_; }
  const std::vector<Request>& requests() const { return *requests_; }
  /// Position of request `id` in the request table. Ids need not be dense
  /// or equal to positions; unknown ids are a caller bug (asserted).
  /// Requests appended to the table after construction (a test-fixture
  /// pattern) must keep the dense id==position layout.
  std::size_t IndexOf(RequestId id) const {
    if (dense_ids_) return static_cast<std::size_t>(id);
    const auto it = id_to_index_.find(id);
    assert(it != id_to_index_.end() && "unknown request id");
    return it->second;
  }
  const Request& request(RequestId id) const {
    return (*requests_)[IndexOf(id)];
  }

  double Dist(VertexId u, VertexId v) const { return oracle_->Distance(u, v); }

  /// Multi-source sweep through the oracle (see
  /// DistanceOracle::BatchQuery): out[i * targets.size() + j] =
  /// Dist(sources[i], targets[j]), bit-identical per cell and billed as
  /// sources x targets queries. Label-backed oracles answer it in one pass
  /// per source label instead of per-pair point queries.
  void BatchDist(const std::vector<VertexId>& sources,
                 const std::vector<VertexId>& targets,
                 std::vector<double>* out) const {
    oracle_->BatchQuery(sources, targets, out);
  }

  /// L_r = dis(o_r, d_r); computed at most once per request. Safe to call
  /// concurrently (the lazy cache is mutex-guarded), so parallel candidate
  /// evaluations can share it.
  double DirectDist(RequestId id);

  /// Pool for planners that fan per-candidate work across threads, or
  /// nullptr when the run is sequential. Owned by the simulation.
  ThreadPool* thread_pool() const { return thread_pool_; }
  void set_thread_pool(ThreadPool* pool) { thread_pool_ = pool; }

  /// Metrics registry / span tracer of the run, or nullptr when
  /// observability is off. Owned by the simulation; components fetch
  /// instruments at setup time and hold pointers (stable for the run).
  obs::Registry* metrics() const { return metrics_; }
  void set_metrics(obs::Registry* reg) { metrics_ = reg; }
  obs::TraceRecorder* tracer() const { return tracer_; }
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  /// Fault injector of the run, or nullptr (the default and the
  /// zero-overhead case: every site guards with one null check). Owned by
  /// the simulation; set before any stage thread exists.
  FaultInjector* faults() const { return faults_; }
  void set_faults(FaultInjector* faults) { faults_ = faults; }

 private:
  const RoadNetwork* graph_;
  DistanceOracle* oracle_;
  const std::vector<Request>* requests_;
  ThreadPool* thread_pool_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  obs::TraceRecorder* tracer_ = nullptr;
  FaultInjector* faults_ = nullptr;
  bool dense_ids_ = true;  // ids equal table positions (common case)
  std::unordered_map<RequestId, std::size_t> id_to_index_;  // non-dense only
  std::mutex direct_mu_;  // serializes direct_dist_ misses + the overflow map
  // One slot per request known at construction, kInf = not yet computed.
  // Hits are lock-free atomic loads — this cache sits inside the
  // per-placement inner loop of the parallel planner, so a lock on the
  // hit path would serialize it. Requests appended to the vector *after*
  // construction (a test-fixture pattern; simulations always pass the
  // full table) fall back to the mutex-guarded overflow map.
  std::vector<std::atomic<double>> direct_dist_;
  std::unordered_map<RequestId, double> direct_overflow_;
};

/// The auxiliary arrays of Sec. 4.3 for a route with n stops; all are
/// indexed by route position k in [0, n] (k = 0 is the anchor).
///
///   arr[k]    — arrival time at l_k (Eq. 7)
///   ddl[k]    — latest feasible arrival at l_k (Eq. 6); +inf at the anchor
///   slack[k]  — max tolerable detour between l_k and l_k+1 (Eq. 8); +inf at n
///   picked[k] — capacity units on board after visiting l_k (Eq. 9)
struct RouteState {
  int n = 0;
  std::vector<double> arr;
  std::vector<double> ddl;
  std::vector<double> slack;
  std::vector<int> picked;
  /// pts[k] — coordinate of the vertex at route position k (the flat
  /// coordinate column the decision phase gathers its per-request
  /// Euclidean lower bounds from, instead of chasing VertexAt(k) through
  /// the stop list per position). Rebuilt with the rest of the state, so
  /// the fleet's per-worker cache amortizes it across requests.
  std::vector<Point> pts;
};

/// Builds the auxiliary arrays for `route`. Uses only the route's cached
/// arrival prefix plus (cached) direct distances, so it issues no new
/// shortest-distance queries after the first time each onboard request's
/// L_r is seen.
RouteState BuildRouteState(const Route& route, PlanningContext* ctx);

/// In-place variant reusing `out`'s array capacity — the form the fleet's
/// per-worker route-state cache rebuilds through, so steady-state planning
/// allocates nothing here.
void BuildRouteState(const Route& route, PlanningContext* ctx,
                     RouteState* out);

/// Ground-truth feasibility check used by tests and the basic insertion:
/// recomputes the schedule of `stops` starting from (anchor, anchor_time)
/// with fresh distance queries and verifies Def. 4's three conditions
/// (pickup precedes drop-off, drop-off by deadline, capacity bound).
/// `onboard` is the load already on the vehicle at the anchor.
bool ValidateStops(VertexId anchor, double anchor_time,
                   const std::vector<Stop>& stops, int worker_capacity,
                   int onboard, PlanningContext* ctx,
                   double* total_cost = nullptr);

}  // namespace urpsm

#endif  // URPSM_SRC_MODEL_FEASIBILITY_H_
