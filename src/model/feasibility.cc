#include "src/model/feasibility.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace urpsm {

double PlanningContext::DirectDist(RequestId id) {
  const auto idx = static_cast<std::size_t>(id);
  if (idx < direct_dist_.size()) {
    std::atomic<double>& slot = direct_dist_[idx];
    const double hit = slot.load(std::memory_order_acquire);
    if (hit != kInf) return hit;
    // The mutex is held across the oracle call on a miss so each L_r is
    // computed exactly once — concurrent candidate evaluations needing
    // the same onboard request's L_r never duplicate the query (keeping
    // query counts independent of the thread count). Misses happen once
    // per request id, so this serialization is negligible; hits take the
    // lock-free path above.
    std::lock_guard<std::mutex> lock(direct_mu_);
    const double again = slot.load(std::memory_order_relaxed);
    if (again != kInf) return again;
    const Request& r = request(id);
    const double d = oracle_->Distance(r.origin, r.destination);
    slot.store(d, std::memory_order_release);
    return d;
  }
  // Id beyond the construction-time table: the request was appended to
  // the vector afterwards. Always mutex-guarded — only single-threaded
  // callers (test fixtures, incremental tools) build contexts this way.
  std::lock_guard<std::mutex> lock(direct_mu_);
  const auto it = direct_overflow_.find(id);
  if (it != direct_overflow_.end()) return it->second;
  const Request& r = request(id);
  const double d = oracle_->Distance(r.origin, r.destination);
  direct_overflow_.emplace(id, d);
  return d;
}

RouteState BuildRouteState(const Route& route, PlanningContext* ctx) {
  RouteState st;
  st.n = route.size();
  const auto size = static_cast<std::size_t>(st.n + 1);
  st.arr.resize(size);
  st.ddl.resize(size);
  st.slack.resize(size);
  st.picked.resize(size);

  st.arr[0] = route.anchor_time();
  st.ddl[0] = kInf;
  st.picked[0] = route.OnboardAtAnchor(ctx->requests());

  for (int k = 1; k <= st.n; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const Stop& stop = route.stops()[ks - 1];
    st.arr[ks] = st.arr[ks - 1] + route.leg_costs()[ks - 1];
    const Request& r = ctx->request(stop.request);
    if (stop.kind == StopKind::kPickup) {
      st.ddl[ks] = r.deadline - ctx->DirectDist(stop.request);
      st.picked[ks] = st.picked[ks - 1] + r.capacity;
    } else {
      st.ddl[ks] = r.deadline;
      st.picked[ks] = st.picked[ks - 1] - r.capacity;
    }
  }

  st.slack[static_cast<std::size_t>(st.n)] = kInf;
  for (int k = st.n - 1; k >= 0; --k) {
    const auto ks = static_cast<std::size_t>(k);
    st.slack[ks] = std::min(st.slack[ks + 1], st.ddl[ks + 1] - st.arr[ks + 1]);
  }
  return st;
}

bool ValidateStops(VertexId anchor, double anchor_time,
                   const std::vector<Stop>& stops, int worker_capacity,
                   int onboard, PlanningContext* ctx, double* total_cost) {
  double t = anchor_time;
  double cost = 0.0;
  int load = onboard;
  VertexId prev = anchor;
  std::unordered_set<RequestId> picked;
  for (const Stop& s : stops) {
    const double leg = ctx->Dist(prev, s.location);
    t += leg;
    cost += leg;
    prev = s.location;
    const Request& r = ctx->request(s.request);
    if (s.kind == StopKind::kPickup) {
      if (!picked.insert(s.request).second) return false;  // duplicate pickup
      load += r.capacity;
      if (load > worker_capacity) return false;
    } else {
      // The pickup must precede the drop-off unless the rider is already
      // on board (pickup committed before the anchor).
      const bool picked_in_route = picked.contains(s.request);
      if (!picked_in_route && onboard == 0) return false;
      load -= r.capacity;
      if (load < 0) return false;
      if (t > r.deadline) return false;
    }
  }
  if (total_cost != nullptr) *total_cost = cost;
  return true;
}

}  // namespace urpsm
