#include "src/model/feasibility.h"

#include <algorithm>

namespace urpsm {

double PlanningContext::DirectDist(RequestId id) {
  const std::size_t idx = IndexOf(id);
  if (idx < direct_dist_.size()) {
    std::atomic<double>& slot = direct_dist_[idx];
    const double hit = slot.load(std::memory_order_acquire);
    if (hit != kInf) return hit;
    // The mutex is held across the oracle call on a miss so each L_r is
    // computed exactly once — concurrent candidate evaluations needing
    // the same onboard request's L_r never duplicate the query (keeping
    // query counts independent of the thread count). Misses happen once
    // per request id, so this serialization is negligible; hits take the
    // lock-free path above.
    std::lock_guard<std::mutex> lock(direct_mu_);
    const double again = slot.load(std::memory_order_relaxed);
    if (again != kInf) return again;
    const Request& r = (*requests_)[idx];
    const double d = oracle_->Distance(r.origin, r.destination);
    slot.store(d, std::memory_order_release);
    return d;
  }
  // Id beyond the construction-time table: the request was appended to
  // the vector afterwards. Always mutex-guarded — only single-threaded
  // callers (test fixtures, incremental tools) build contexts this way.
  std::lock_guard<std::mutex> lock(direct_mu_);
  const auto it = direct_overflow_.find(id);
  if (it != direct_overflow_.end()) return it->second;
  const Request& r = request(id);
  const double d = oracle_->Distance(r.origin, r.destination);
  direct_overflow_.emplace(id, d);
  return d;
}

void BuildRouteState(const Route& route, PlanningContext* ctx,
                     RouteState* out) {
  RouteState& st = *out;
  st.n = route.size();
  const auto size = static_cast<std::size_t>(st.n + 1);
  st.arr.resize(size);
  st.ddl.resize(size);
  st.slack.resize(size);
  st.picked.resize(size);
  st.pts.resize(size);

  st.arr[0] = route.anchor_time();
  st.ddl[0] = kInf;
  st.picked[0] = route.OnboardAtAnchor(*ctx);
  const RoadNetwork& graph = ctx->graph();
  for (int k = 0; k <= st.n; ++k) {
    st.pts[static_cast<std::size_t>(k)] = graph.coord(route.VertexAt(k));
  }

  for (int k = 1; k <= st.n; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const Stop& stop = route.stops()[ks - 1];
    // The route's arrival prefix is maintained with the same left-to-right
    // accumulation this loop used to perform, so copying it is bit-exact.
    st.arr[ks] = route.ArrivalAt(k);
    const Request& r = ctx->request(stop.request);
    if (stop.kind == StopKind::kPickup) {
      st.ddl[ks] = r.deadline - ctx->DirectDist(stop.request);
      st.picked[ks] = st.picked[ks - 1] + r.capacity;
    } else {
      st.ddl[ks] = r.deadline;
      st.picked[ks] = st.picked[ks - 1] - r.capacity;
    }
  }

  st.slack[static_cast<std::size_t>(st.n)] = kInf;
  for (int k = st.n - 1; k >= 0; --k) {
    const auto ks = static_cast<std::size_t>(k);
    st.slack[ks] = std::min(st.slack[ks + 1], st.ddl[ks + 1] - st.arr[ks + 1]);
  }
}

RouteState BuildRouteState(const Route& route, PlanningContext* ctx) {
  RouteState st;
  BuildRouteState(route, ctx, &st);
  return st;
}

bool ValidateStops(VertexId anchor, double anchor_time,
                   const std::vector<Stop>& stops, int worker_capacity,
                   int onboard, PlanningContext* ctx, double* total_cost) {
  double t = anchor_time;
  double cost = 0.0;
  int load = onboard;
  VertexId prev = anchor;
  // Thread-local scratch instead of a per-call unordered_set: this runs
  // inside candidate validation loops. Stop lists are short, so a linear
  // membership scan over a flat array beats hashing + allocation.
  thread_local std::vector<RequestId> picked;
  picked.clear();
  const auto picked_contains = [&](RequestId id) {
    return std::find(picked.begin(), picked.end(), id) != picked.end();
  };
  for (const Stop& s : stops) {
    const double leg = ctx->Dist(prev, s.location);
    t += leg;
    cost += leg;
    prev = s.location;
    const Request& r = ctx->request(s.request);
    if (s.kind == StopKind::kPickup) {
      if (picked_contains(s.request)) return false;  // duplicate pickup
      picked.push_back(s.request);
      load += r.capacity;
      if (load > worker_capacity) return false;
    } else {
      // The pickup must precede the drop-off unless the rider is already
      // on board (pickup committed before the anchor).
      const bool picked_in_route = picked_contains(s.request);
      if (!picked_in_route && onboard == 0) return false;
      load -= r.capacity;
      if (load < 0) return false;
      if (t > r.deadline) return false;
    }
  }
  if (total_cost != nullptr) *total_cost = cost;
  return true;
}

}  // namespace urpsm
