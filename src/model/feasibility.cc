#include "src/model/feasibility.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace urpsm {

double PlanningContext::DirectDist(RequestId id) {
  const auto idx = static_cast<std::size_t>(id);
  if (direct_dist_.size() <= idx) direct_dist_.resize(idx + 1, kInf);
  if (direct_dist_[idx] == kInf) {
    const Request& r = request(id);
    direct_dist_[idx] = oracle_->Distance(r.origin, r.destination);
  }
  return direct_dist_[idx];
}

RouteState BuildRouteState(const Route& route, PlanningContext* ctx) {
  RouteState st;
  st.n = route.size();
  const auto size = static_cast<std::size_t>(st.n + 1);
  st.arr.resize(size);
  st.ddl.resize(size);
  st.slack.resize(size);
  st.picked.resize(size);

  st.arr[0] = route.anchor_time();
  st.ddl[0] = kInf;
  st.picked[0] = route.OnboardAtAnchor(ctx->requests());

  for (int k = 1; k <= st.n; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const Stop& stop = route.stops()[ks - 1];
    st.arr[ks] = st.arr[ks - 1] + route.leg_costs()[ks - 1];
    const Request& r = ctx->request(stop.request);
    if (stop.kind == StopKind::kPickup) {
      st.ddl[ks] = r.deadline - ctx->DirectDist(stop.request);
      st.picked[ks] = st.picked[ks - 1] + r.capacity;
    } else {
      st.ddl[ks] = r.deadline;
      st.picked[ks] = st.picked[ks - 1] - r.capacity;
    }
  }

  st.slack[static_cast<std::size_t>(st.n)] = kInf;
  for (int k = st.n - 1; k >= 0; --k) {
    const auto ks = static_cast<std::size_t>(k);
    st.slack[ks] = std::min(st.slack[ks + 1], st.ddl[ks + 1] - st.arr[ks + 1]);
  }
  return st;
}

bool ValidateStops(VertexId anchor, double anchor_time,
                   const std::vector<Stop>& stops, int worker_capacity,
                   int onboard, PlanningContext* ctx, double* total_cost) {
  double t = anchor_time;
  double cost = 0.0;
  int load = onboard;
  VertexId prev = anchor;
  std::unordered_set<RequestId> picked;
  for (const Stop& s : stops) {
    const double leg = ctx->Dist(prev, s.location);
    t += leg;
    cost += leg;
    prev = s.location;
    const Request& r = ctx->request(s.request);
    if (s.kind == StopKind::kPickup) {
      if (!picked.insert(s.request).second) return false;  // duplicate pickup
      load += r.capacity;
      if (load > worker_capacity) return false;
    } else {
      // The pickup must precede the drop-off unless the rider is already
      // on board (pickup committed before the anchor).
      const bool picked_in_route = picked.contains(s.request);
      if (!picked_in_route && onboard == 0) return false;
      load -= r.capacity;
      if (load < 0) return false;
      if (t > r.deadline) return false;
    }
  }
  if (total_cost != nullptr) *total_cost = cost;
  return true;
}

}  // namespace urpsm
