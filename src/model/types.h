#ifndef URPSM_SRC_MODEL_TYPES_H_
#define URPSM_SRC_MODEL_TYPES_H_

#include <cstdint>
#include <limits>

#include "src/graph/road_network.h"

namespace urpsm {

using RequestId = std::int32_t;
using WorkerId = std::int32_t;
inline constexpr RequestId kInvalidRequest = -1;
inline constexpr WorkerId kInvalidWorker = -1;

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// A shared-mobility request (Def. 3): origin/destination vertices, release
/// time t_r, delivery deadline e_r, rejection penalty p_r and capacity K_r
/// (number of passengers or parcel units). Times are minutes from the start
/// of the simulated day; a request is *served* iff one worker picks it up at
/// the origin at/after t_r and drops it at the destination by e_r.
struct Request {
  RequestId id = kInvalidRequest;
  VertexId origin = kInvalidVertex;
  VertexId destination = kInvalidVertex;
  double release_time = 0.0;  // t_r, minutes
  double deadline = 0.0;      // e_r, minutes
  double penalty = 0.0;       // p_r
  int capacity = 1;           // K_r
};

/// A worker (Def. 2): a vehicle/courier with an initial vertex and a
/// capacity K_w bounding how many units may be on board simultaneously.
struct Worker {
  WorkerId id = kInvalidWorker;
  VertexId initial_location = kInvalidVertex;
  int capacity = 4;  // K_w
};

/// Whether a route stop is the pickup (origin) or drop-off (destination)
/// of its request.
enum class StopKind : std::uint8_t { kPickup = 0, kDropoff = 1 };

/// One waypoint of a worker's route.
struct Stop {
  VertexId location = kInvalidVertex;
  RequestId request = kInvalidRequest;
  StopKind kind = StopKind::kPickup;

  friend bool operator==(const Stop& a, const Stop& b) {
    return a.location == b.location && a.request == b.request &&
           a.kind == b.kind;
  }
};

}  // namespace urpsm

#endif  // URPSM_SRC_MODEL_TYPES_H_
