#include "src/model/route.h"

#include <algorithm>
#include <cassert>

#include "src/model/feasibility.h"

namespace urpsm {

void Route::RecomputeArrivals() {
  // Same left-to-right accumulation as a fresh prefix walk starting at the
  // anchor time, so cached arrivals are bit-identical to recomputed ones.
  arrivals_.resize(stops_.size() + 1);
  double t = anchor_time_;
  arrivals_[0] = t;
  for (std::size_t k = 0; k < leg_costs_.size(); ++k) {
    t += leg_costs_[k];
    arrivals_[k + 1] = t;
  }
}

double Route::RemainingCost() const {
  double total = 0.0;
  for (double c : leg_costs_) total += c;
  return total;
}

void Route::Insert(const Request& r, int i, int j, DistanceOracle* oracle) {
  const int n_old = size();
  assert(0 <= i && i <= j && j <= n_old);
  const Stop pickup{r.origin, r.id, StopKind::kPickup};
  const Stop dropoff{r.destination, r.id, StopKind::kDropoff};
  const VertexId li = VertexAt(i);
  const VertexId li1 = i < n_old ? VertexAt(i + 1) : kInvalidVertex;
  const VertexId lj = VertexAt(j);
  const VertexId lj1 = j < n_old ? VertexAt(j + 1) : kInvalidVertex;

  // Insert the drop-off first so index i remains valid; stops_ index k
  // corresponds to route position k+1, so "after position j" = index j.
  stops_.insert(stops_.begin() + j, dropoff);
  stops_.insert(stops_.begin() + i, pickup);

  // Splice the leg-cost cache with the paper's 2 (append both), 3 (i == j
  // mid-route, or i < j == n) or 4 (general) shortest-distance queries
  // (Sec. 5.3); everything else is reused.
  if (i == j) {
    if (i == n_old) {
      // Fig. 2a: append o then d.
      leg_costs_.push_back(oracle->Distance(li, r.origin));
      leg_costs_.push_back(oracle->Distance(r.origin, r.destination));
    } else {
      // Fig. 2b: l_i -> o -> d -> l_{i+1}.
      leg_costs_.erase(leg_costs_.begin() + i);
      const double a = oracle->Distance(li, r.origin);
      const double b = oracle->Distance(r.origin, r.destination);
      const double c = oracle->Distance(r.destination, li1);
      leg_costs_.insert(leg_costs_.begin() + i, {a, b, c});
    }
  } else {
    // Fig. 2c: o between l_i and l_{i+1}, d between l_j and l_{j+1}.
    leg_costs_.erase(leg_costs_.begin() + i);
    const double a = oracle->Distance(li, r.origin);
    const double b = oracle->Distance(r.origin, li1);
    leg_costs_.insert(leg_costs_.begin() + i, {a, b});
    if (j == n_old) {
      leg_costs_.push_back(oracle->Distance(lj, r.destination));
    } else {
      // After the pickup splice, old leg j sits at index j + 1.
      leg_costs_.erase(leg_costs_.begin() + j + 1);
      const double c = oracle->Distance(lj, r.destination);
      const double d = oracle->Distance(r.destination, lj1);
      leg_costs_.insert(leg_costs_.begin() + j + 1, {c, d});
    }
  }
  assert(static_cast<int>(leg_costs_.size()) == size());
  ++version_;
  RecomputeArrivals();
}

void Route::SetStops(std::vector<Stop> stops, DistanceOracle* oracle) {
  stops_ = std::move(stops);
  const int n = size();
  leg_costs_.assign(static_cast<std::size_t>(n), 0.0);
  for (int k = 0; k < n; ++k) {
    leg_costs_[static_cast<std::size_t>(k)] =
        oracle->Distance(VertexAt(k), VertexAt(k + 1));
  }
  ++version_;
  RecomputeArrivals();
}

Stop Route::PopFront() {
  assert(!stops_.empty());
  const Stop front = stops_.front();
  anchor_time_ += leg_costs_.front();
  anchor_ = front.location;
  stops_.erase(stops_.begin());
  leg_costs_.erase(leg_costs_.begin());
  ++version_;
  RecomputeArrivals();
  return front;
}

std::vector<VertexId> Route::MaterializePath(DistanceOracle* oracle) const {
  std::vector<VertexId> path = {anchor_};
  for (int k = 0; k < size(); ++k) {
    const std::vector<VertexId> leg =
        oracle->Path(VertexAt(k), VertexAt(k + 1));
    for (std::size_t i = 1; i < leg.size(); ++i) path.push_back(leg[i]);
    if (leg.empty() && VertexAt(k + 1) != path.back()) {
      path.push_back(VertexAt(k + 1));  // unreachable leg: keep the stop
    }
  }
  return path;
}

int Route::OnboardAtAnchor(const PlanningContext& ctx) const {
  // Thread-local scratch instead of a per-call unordered_set: this runs
  // inside every RouteState build. Stops lists are short, so a linear
  // membership scan over a flat array beats hashing. Request capacities
  // resolve through the context's id->index mapping — the one place id
  // resolution lives.
  thread_local std::vector<RequestId> picked_here;
  picked_here.clear();
  for (const Stop& s : stops_) {
    if (s.kind == StopKind::kPickup) picked_here.push_back(s.request);
  }
  int onboard = 0;
  for (const Stop& s : stops_) {
    if (s.kind == StopKind::kDropoff &&
        std::find(picked_here.begin(), picked_here.end(), s.request) ==
            picked_here.end()) {
      onboard += ctx.request(s.request).capacity;
    }
  }
  return onboard;
}

}  // namespace urpsm
