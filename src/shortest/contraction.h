#ifndef URPSM_SRC_SHORTEST_CONTRACTION_H_
#define URPSM_SRC_SHORTEST_CONTRACTION_H_

#include <cstdint>
#include <vector>

#include "src/graph/road_network.h"
#include "src/shortest/oracle.h"

namespace urpsm {

/// Contraction rank of every vertex: rank[v] is the step at which the lazy
/// edge-difference contraction loop contracts v, so a high rank means
/// "contracted late" = structurally important (a hub). Shares the exact
/// contraction sequence with ContractionHierarchy::Build; used by
/// HubLabelOracle's kContraction vertex ordering, where labels are built
/// from roots in descending rank order.
std::vector<int> ContractionOrder(const RoadNetwork& graph);

/// Contraction Hierarchies (Geisberger et al.) distance/path oracle.
///
/// Second high-performance oracle besides HubLabelOracle: the same family
/// of road-network speedup techniques the paper's hub-based labeling [9]
/// descends from. Vertices are contracted in ascending importance (lazy
/// edge-difference heuristic); witness searches keep the shortcut count
/// low; queries run a bidirectional Dijkstra restricted to upward edges.
/// Path queries unpack shortcuts recursively into original vertices.
class ContractionHierarchy : public DistanceOracle {
 public:
  /// Preprocesses `graph`. O(E log V)-ish on road-like graphs.
  static ContractionHierarchy Build(const RoadNetwork& graph);

  double Distance(VertexId u, VertexId v) override;
  std::vector<VertexId> Path(VertexId u, VertexId v) override;

  std::int64_t num_shortcuts() const { return num_shortcuts_; }
  std::int64_t MemoryBytes() const;

 private:
  struct UpArc {
    VertexId to = kInvalidVertex;
    double cost = 0.0;
    VertexId middle = kInvalidVertex;  // contracted vertex, -1 if original
  };

  ContractionHierarchy() = default;

  /// Distance + meeting vertex for path reconstruction; meeting is
  /// kInvalidVertex when unreachable.
  double Query(VertexId s, VertexId t, VertexId* meeting,
               std::vector<VertexId>* parent_f,
               std::vector<VertexId>* parent_b) const;

  void UnpackArc(VertexId from, VertexId to, std::vector<VertexId>* out) const;

  /// Cost and middle vertex of the up-arc from `from` to `to`.
  const UpArc* FindUpArc(VertexId from, VertexId to) const;

  std::vector<std::vector<UpArc>> up_;  // upward adjacency per vertex
  std::vector<int> rank_;
  std::int64_t num_shortcuts_ = 0;
};

}  // namespace urpsm

#endif  // URPSM_SRC_SHORTEST_CONTRACTION_H_
