#include "src/shortest/hub_labels.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

#include "src/parallel/thread_pool.h"
#include "src/shortest/dijkstra.h"

namespace urpsm {

namespace {

// One (hub rank, distance) pair produced by a pruned search. Build-time
// only; the final oracle stores the same data flattened into CSR arrays.
struct BuildEntry {
  VertexId rank;
  double dist;
};

// Label lists under construction: per-vertex vectors, ascending rank by
// construction (roots commit in rank order).
using BuildLabels = std::vector<std::vector<BuildEntry>>;

double QueryBuildLabels(const BuildLabels& labels, VertexId u, VertexId v) {
  const auto& lu = labels[static_cast<std::size_t>(u)];
  const auto& lv = labels[static_cast<std::size_t>(v)];
  double best = std::numeric_limits<double>::infinity();
  std::size_t i = 0, j = 0;
  while (i < lu.size() && j < lv.size()) {
    const VertexId a = lu[i].rank, b = lv[j].rank;
    if (a == b) {
      best = std::min(best, lu[i].dist + lv[j].dist);
      ++i;
      ++j;
    } else {
      i += static_cast<std::size_t>(a < b);
      j += static_cast<std::size_t>(b < a);
    }
  }
  return best;
}

// Reusable per-search state (one instance per speculative batch slot, so
// concurrent searches never share).
struct SearchScratch {
  std::vector<double> dist;
  std::vector<VertexId> touched;
  std::vector<std::pair<VertexId, double>> out;  // pop-order label entries
};

// The pruned Dijkstra of PLL from `root`, evaluated against the (frozen)
// label set `labels`. Returns, in scratch->out, exactly the entries the
// sequential build would append had `labels` been the committed state: a
// vertex u popped at distance d is labeled iff no pair of existing labels
// certifies dis(root, u) <= d; pruned vertices are not expanded.
void PrunedSearch(const RoadNetwork& graph, const BuildLabels& labels,
                  VertexId root, SearchScratch* scratch) {
  using HeapEntry = std::pair<double, VertexId>;
  using MinHeap =
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;
  std::vector<double>& dist = scratch->dist;
  std::vector<VertexId>& touched = scratch->touched;
  scratch->out.clear();
  MinHeap heap;
  dist[static_cast<std::size_t>(root)] = 0.0;
  touched.clear();
  touched.push_back(root);
  heap.push({0.0, root});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    const auto ui = static_cast<std::size_t>(u);
    if (d > dist[ui]) continue;
    // Prune: if existing labels already certify a distance <= d between
    // root and u, u (and everything behind it) need not store this hub.
    if (QueryBuildLabels(labels, root, u) <= d) continue;
    scratch->out.push_back({u, d});
    for (const auto& arc : graph.Neighbors(u)) {
      const auto vi = static_cast<std::size_t>(arc.to);
      const double nd = d + arc.cost;
      if (nd < dist[vi]) {
        if (dist[vi] == kInfDistance) touched.push_back(arc.to);
        dist[vi] = nd;
        heap.push({nd, arc.to});
      }
    }
  }
  for (VertexId v : touched) dist[static_cast<std::size_t>(v)] = kInfDistance;
}

}  // namespace

HubLabelOracle HubLabelOracle::Build(const RoadNetwork& graph) {
  return Build(graph, nullptr);
}

HubLabelOracle HubLabelOracle::Build(const RoadNetwork& graph,
                                     ThreadPool* pool) {
  HubLabelOracle oracle(&graph);
  const auto n = static_cast<std::size_t>(graph.num_vertices());

  // Order vertices by descending degree (cheap, effective proxy for
  // betweenness on road networks).
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return graph.Neighbors(a).size() > graph.Neighbors(b).size();
  });

  BuildLabels labels(n);

  // Roots are processed in batches. Every root in a batch runs its pruned
  // search speculatively (in parallel) against the label state frozen at
  // the batch boundary; commits then happen strictly in rank order. A
  // pending root's speculation is invalidated exactly when a hub committed
  // ahead of it inside the batch would have pruned one of its speculative
  // label entries — the first point at which its sequential search could
  // diverge — and only then is its search re-run, now against the exact
  // committed state. Batch size 1 degenerates to the sequential build, and
  // validated commits are provably the sequential result, so the labels
  // are bit-identical for every pool size.
  const int threads = pool != nullptr ? pool->num_threads() : 1;
  const std::size_t batch =
      threads > 1 ? std::min<std::size_t>(4 * static_cast<std::size_t>(threads),
                                          32)
                  : 1;

  std::vector<SearchScratch> scratch(batch);
  for (auto& s : scratch) s.dist.assign(n, kInfDistance);
  std::vector<char> dirty(batch, 0);
  // Dense scatter of the just-committed root's label distances, used to
  // evaluate the new-hub query contribution d(root_j, x) + d(x, u) in O(1)
  // per entry. Cleared after each commit by re-scattering.
  std::vector<double> commit_dist(n, kInfDistance);

  for (std::size_t s = 0; s < n; s += batch) {
    const std::size_t e = std::min(n, s + batch);
    const auto run_spec = [&](std::int64_t b) {
      PrunedSearch(graph, labels, order[s + static_cast<std::size_t>(b)],
                   &scratch[static_cast<std::size_t>(b)]);
    };
    if (batch > 1 && e - s > 1) {
      pool->ParallelFor(0, static_cast<std::int64_t>(e - s), run_spec);
    } else {
      for (std::size_t b = 0; b < e - s; ++b) {
        run_spec(static_cast<std::int64_t>(b));
      }
    }
    std::fill(dirty.begin(), dirty.begin() + static_cast<std::ptrdiff_t>(e - s),
              0);

    for (std::size_t j = s; j < e; ++j) {
      SearchScratch& sj = scratch[j - s];
      if (dirty[j - s] != 0) {
        // Speculation invalidated: labels now hold exactly the sequential
        // state L_{j-1}, so this re-run is the sequential search itself.
        PrunedSearch(graph, labels, order[j], &sj);
      }
      const auto rank_j = static_cast<VertexId>(j);
      for (const auto& [u, d] : sj.out) {
        labels[static_cast<std::size_t>(u)].push_back({rank_j, d});
      }
      if (j + 1 == e) continue;
      // Validate the batch's still-pending speculations against this
      // commit. The only way root_k's sequential search can differ from
      // its speculation is a label entry (u, d) flipping to pruned, i.e.
      // d(root_j, root_k) + d(root_j, u) <= d with both distances taken
      // from root_j's committed output (<= mirrors the prune comparison).
      for (const auto& [u, d] : sj.out) {
        commit_dist[static_cast<std::size_t>(u)] = d;
      }
      for (std::size_t k = j + 1; k < e; ++k) {
        if (dirty[k - s] != 0) continue;
        const double dj = commit_dist[static_cast<std::size_t>(order[k])];
        if (dj == kInfDistance) continue;  // root_k gained no hub-j label
        for (const auto& [u, d] : scratch[k - s].out) {
          if (dj + commit_dist[static_cast<std::size_t>(u)] <= d) {
            dirty[k - s] = 1;
            break;
          }
        }
      }
      for (const auto& entry : sj.out) {
        commit_dist[static_cast<std::size_t>(entry.first)] = kInfDistance;
      }
    }
  }

  // Flatten into CSR (structure of arrays): per-vertex offsets plus one
  // contiguous rank array and one contiguous distance array.
  oracle.offsets_.resize(n + 1);
  oracle.offsets_[0] = 0;
  for (std::size_t v = 0; v < n; ++v) {
    oracle.offsets_[v + 1] =
        oracle.offsets_[v] + static_cast<std::int64_t>(labels[v].size());
  }
  const auto total = static_cast<std::size_t>(oracle.offsets_[n]);
  oracle.hub_rank_.resize(total);
  oracle.hub_dist_.resize(total);
  for (std::size_t v = 0; v < n; ++v) {
    auto at = static_cast<std::size_t>(oracle.offsets_[v]);
    for (const BuildEntry& entry : labels[v]) {
      oracle.hub_rank_[at] = entry.rank;
      oracle.hub_dist_[at] = entry.dist;
      ++at;
    }
  }
  return oracle;
}

double HubLabelOracle::QueryByLabels(VertexId u, VertexId v) const {
  std::size_t bu = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(u)]);
  std::size_t eu = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(u) + 1]);
  std::size_t bv = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
  std::size_t ev = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
  const VertexId* ranks = hub_rank_.data();
  const double* dists = hub_dist_.data();

  // Scatter-scan instead of a merge-join. The classic two-pointer merge
  // spends ~10 cycles per element here: the hub-match branch is
  // data-dependent (≈45% match rate on road labels, unpredictable) and the
  // running min is a loop-carried FP dependency. Instead: (1) scatter the
  // shorter label's distances into a rank-indexed dense column (kept +inf
  // outside this call, so a non-common hub contributes inf + d = inf and
  // drops out of the min); (2) scan the longer label with four independent
  // branch-free min accumulators; (3) restore the column. Every candidate
  // is the same du + dv sum the merge would form, and min over doubles is
  // exact and order-independent, so results are bit-identical — measured
  // ~2.6x faster on the bench_oracle fixture.
  //
  // The dense column costs 8 bytes per vertex per querying thread and is
  // shared by all oracle instances on the thread (it only ever grows).
  thread_local std::vector<double> dense;
  const std::size_t num_ranks = offsets_.size() - 1;  // one rank per vertex
  if (dense.size() < num_ranks) {
    dense.resize(num_ranks, std::numeric_limits<double>::infinity());
  }
  if (eu - bu > ev - bv) {
    std::swap(bu, bv);
    std::swap(eu, ev);
  }
  double* col = dense.data();
  for (std::size_t i = bu; i < eu; ++i) {
    col[static_cast<std::size_t>(ranks[i])] = dists[i];
  }
  double b0 = std::numeric_limits<double>::infinity(), b1 = b0, b2 = b0,
         b3 = b0;
  std::size_t j = bv;
  for (; j + 4 <= ev; j += 4) {
    const double c0 = col[static_cast<std::size_t>(ranks[j])] + dists[j];
    const double c1 = col[static_cast<std::size_t>(ranks[j + 1])] + dists[j + 1];
    const double c2 = col[static_cast<std::size_t>(ranks[j + 2])] + dists[j + 2];
    const double c3 = col[static_cast<std::size_t>(ranks[j + 3])] + dists[j + 3];
    b0 = c0 < b0 ? c0 : b0;
    b1 = c1 < b1 ? c1 : b1;
    b2 = c2 < b2 ? c2 : b2;
    b3 = c3 < b3 ? c3 : b3;
  }
  for (; j < ev; ++j) {
    const double c = col[static_cast<std::size_t>(ranks[j])] + dists[j];
    b0 = c < b0 ? c : b0;
  }
  for (std::size_t i = bu; i < eu; ++i) {
    col[static_cast<std::size_t>(ranks[i])] =
        std::numeric_limits<double>::infinity();
  }
  return std::min(std::min(b0, b1), std::min(b2, b3));
}

double HubLabelOracle::Distance(VertexId u, VertexId v) {
  ++query_count_;
  if (u == v) return 0.0;
  return QueryByLabels(u, v);
}

std::vector<VertexId> HubLabelOracle::Path(VertexId u, VertexId v) {
  return DijkstraPath(*graph_, u, v);
}

double HubLabelOracle::average_label_size() const {
  const std::size_t n = offsets_.empty() ? 0 : offsets_.size() - 1;
  if (n == 0) return 0.0;
  return static_cast<double>(offsets_.back()) / static_cast<double>(n);
}

std::int64_t HubLabelOracle::MemoryBytes() const {
  return static_cast<std::int64_t>(offsets_.capacity() * sizeof(std::int64_t) +
                                   hub_rank_.capacity() * sizeof(VertexId) +
                                   hub_dist_.capacity() * sizeof(double));
}

}  // namespace urpsm
