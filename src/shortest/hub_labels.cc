#include "src/shortest/hub_labels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

#include "src/parallel/thread_pool.h"
#include "src/shortest/contraction.h"
#include "src/shortest/dijkstra.h"

namespace urpsm {

namespace {

// One (hub rank, distance) pair produced by a pruned search. Build-time
// only; the final oracle stores the same data flattened into CSR arrays.
struct BuildEntry {
  VertexId rank;
  double dist;
};

// Label lists under construction: per-vertex vectors, ascending rank by
// construction (roots commit in rank order).
using BuildLabels = std::vector<std::vector<BuildEntry>>;

double QueryBuildLabels(const BuildLabels& labels, VertexId u, VertexId v) {
  const auto& lu = labels[static_cast<std::size_t>(u)];
  const auto& lv = labels[static_cast<std::size_t>(v)];
  double best = std::numeric_limits<double>::infinity();
  std::size_t i = 0, j = 0;
  while (i < lu.size() && j < lv.size()) {
    const VertexId a = lu[i].rank, b = lv[j].rank;
    if (a == b) {
      best = std::min(best, lu[i].dist + lv[j].dist);
      ++i;
      ++j;
    } else {
      i += static_cast<std::size_t>(a < b);
      j += static_cast<std::size_t>(b < a);
    }
  }
  return best;
}

// Reusable per-search state (one instance per speculative batch slot, so
// concurrent searches never share).
struct SearchScratch {
  std::vector<double> dist;
  std::vector<VertexId> touched;
  std::vector<std::pair<VertexId, double>> out;  // pop-order label entries
};

// The pruned Dijkstra of PLL from `root`, evaluated against the (frozen)
// label set `labels`. Returns, in scratch->out, exactly the entries the
// sequential build would append had `labels` been the committed state: a
// vertex u popped at distance d is labeled iff no pair of existing labels
// certifies dis(root, u) <= d; pruned vertices are not expanded.
void PrunedSearch(const RoadNetwork& graph, const BuildLabels& labels,
                  VertexId root, SearchScratch* scratch) {
  using HeapEntry = std::pair<double, VertexId>;
  using MinHeap =
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;
  std::vector<double>& dist = scratch->dist;
  std::vector<VertexId>& touched = scratch->touched;
  scratch->out.clear();
  MinHeap heap;
  dist[static_cast<std::size_t>(root)] = 0.0;
  touched.clear();
  touched.push_back(root);
  heap.push({0.0, root});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    const auto ui = static_cast<std::size_t>(u);
    if (d > dist[ui]) continue;
    // Prune: if existing labels already certify a distance <= d between
    // root and u, u (and everything behind it) need not store this hub.
    if (QueryBuildLabels(labels, root, u) <= d) continue;
    scratch->out.push_back({u, d});
    for (const auto& arc : graph.Neighbors(u)) {
      const auto vi = static_cast<std::size_t>(arc.to);
      const double nd = d + arc.cost;
      if (nd < dist[vi]) {
        if (dist[vi] == kInfDistance) touched.push_back(arc.to);
        dist[vi] = nd;
        heap.push({nd, arc.to});
      }
    }
  }
  for (VertexId v : touched) dist[static_cast<std::size_t>(v)] = kInfDistance;
}

// Root processing order per the chosen strategy. Stable sorts keep ties in
// vertex-id order, so each ordering is fully deterministic.
std::vector<VertexId> BuildOrder(const RoadNetwork& graph, VertexOrder order) {
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  std::vector<VertexId> result(n);
  std::iota(result.begin(), result.end(), 0);
  if (order == VertexOrder::kContraction) {
    // Most important = contracted last = highest CH rank first.
    const std::vector<int> rank = ContractionOrder(graph);
    std::stable_sort(result.begin(), result.end(),
                     [&](VertexId a, VertexId b) {
                       return rank[static_cast<std::size_t>(a)] >
                              rank[static_cast<std::size_t>(b)];
                     });
  } else {
    // Descending degree (cheap, effective proxy for betweenness on road
    // networks).
    std::stable_sort(result.begin(), result.end(),
                     [&](VertexId a, VertexId b) {
                       return graph.Neighbors(a).size() >
                              graph.Neighbors(b).size();
                     });
  }
  return result;
}

}  // namespace

HubLabelOracle HubLabelOracle::Build(const RoadNetwork& graph) {
  return Build(graph, nullptr, OracleOptions{});
}

HubLabelOracle HubLabelOracle::Build(const RoadNetwork& graph,
                                     ThreadPool* pool) {
  return Build(graph, pool, OracleOptions{});
}

HubLabelOracle HubLabelOracle::Build(const RoadNetwork& graph,
                                     ThreadPool* pool,
                                     const OracleOptions& options) {
  HubLabelOracle oracle(&graph);
  oracle.order_ = options.order;
  const auto n = static_cast<std::size_t>(graph.num_vertices());

  const std::vector<VertexId> order = BuildOrder(graph, options.order);

  BuildLabels labels(n);

  // Roots are processed in batches. Every root in a batch runs its pruned
  // search speculatively (in parallel) against the label state frozen at
  // the batch boundary; commits then happen strictly in rank order. A
  // pending root's speculation is invalidated exactly when a hub committed
  // ahead of it inside the batch would have pruned one of its speculative
  // label entries — the first point at which its sequential search could
  // diverge — and only then is its search re-run, now against the exact
  // committed state. Batch size 1 degenerates to the sequential build, and
  // validated commits are provably the sequential result, so the labels
  // are bit-identical for every pool size.
  const int threads = pool != nullptr ? pool->num_threads() : 1;
  const std::size_t batch =
      threads > 1 ? std::min<std::size_t>(4 * static_cast<std::size_t>(threads),
                                          32)
                  : 1;

  std::vector<SearchScratch> scratch(batch);
  for (auto& s : scratch) s.dist.assign(n, kInfDistance);
  std::vector<char> dirty(batch, 0);
  // Dense scatter of the just-committed root's label distances, used to
  // evaluate the new-hub query contribution d(root_j, x) + d(x, u) in O(1)
  // per entry. Cleared after each commit by re-scattering.
  std::vector<double> commit_dist(n, kInfDistance);

  for (std::size_t s = 0; s < n; s += batch) {
    const std::size_t e = std::min(n, s + batch);
    const auto run_spec = [&](std::int64_t b) {
      PrunedSearch(graph, labels, order[s + static_cast<std::size_t>(b)],
                   &scratch[static_cast<std::size_t>(b)]);
    };
    if (batch > 1 && e - s > 1) {
      pool->ParallelFor(0, static_cast<std::int64_t>(e - s), run_spec);
    } else {
      for (std::size_t b = 0; b < e - s; ++b) {
        run_spec(static_cast<std::int64_t>(b));
      }
    }
    std::fill(dirty.begin(), dirty.begin() + static_cast<std::ptrdiff_t>(e - s),
              0);

    for (std::size_t j = s; j < e; ++j) {
      SearchScratch& sj = scratch[j - s];
      if (dirty[j - s] != 0) {
        // Speculation invalidated: labels now hold exactly the sequential
        // state L_{j-1}, so this re-run is the sequential search itself.
        PrunedSearch(graph, labels, order[j], &sj);
      }
      const auto rank_j = static_cast<VertexId>(j);
      for (const auto& [u, d] : sj.out) {
        labels[static_cast<std::size_t>(u)].push_back({rank_j, d});
      }
      if (j + 1 == e) continue;
      // Validate the batch's still-pending speculations against this
      // commit. The only way root_k's sequential search can differ from
      // its speculation is a label entry (u, d) flipping to pruned, i.e.
      // d(root_j, root_k) + d(root_j, u) <= d with both distances taken
      // from root_j's committed output (<= mirrors the prune comparison).
      for (const auto& [u, d] : sj.out) {
        commit_dist[static_cast<std::size_t>(u)] = d;
      }
      for (std::size_t k = j + 1; k < e; ++k) {
        if (dirty[k - s] != 0) continue;
        const double dj = commit_dist[static_cast<std::size_t>(order[k])];
        if (dj == kInfDistance) continue;  // root_k gained no hub-j label
        for (const auto& [u, d] : scratch[k - s].out) {
          if (dj + commit_dist[static_cast<std::size_t>(u)] <= d) {
            dirty[k - s] = 1;
            break;
          }
        }
      }
      for (const auto& entry : sj.out) {
        commit_dist[static_cast<std::size_t>(entry.first)] = kInfDistance;
      }
    }
  }

  // Flatten into CSR (structure of arrays): per-vertex offsets plus one
  // contiguous rank array and one contiguous distance array.
  oracle.offsets_.resize(n + 1);
  oracle.offsets_[0] = 0;
  for (std::size_t v = 0; v < n; ++v) {
    oracle.offsets_[v + 1] =
        oracle.offsets_[v] + static_cast<std::int64_t>(labels[v].size());
  }
  const auto total = static_cast<std::size_t>(oracle.offsets_[n]);
  oracle.hub_rank_.resize(total);
  oracle.hub_dist_.resize(total);
  for (std::size_t v = 0; v < n; ++v) {
    auto at = static_cast<std::size_t>(oracle.offsets_[v]);
    for (const BuildEntry& entry : labels[v]) {
      oracle.hub_rank_[at] = entry.rank;
      oracle.hub_dist_[at] = entry.dist;
      ++at;
    }
  }

  if (options.quantize) {
    // Quantization happens strictly after the (double-precision) build, so
    // the parallel-build bit-identity argument above is untouched: the
    // quantized arrays are a pure function of the exact ones. Scale maps
    // the largest finite label distance to the saturation cap, so every
    // build entry encodes without saturating; the cap and the infinity
    // sentinel exist for the encoding helpers and defensive symmetry.
    double max_finite = 0.0;
    for (const double d : oracle.hub_dist_) {
      if (d < kInfDistance && d > max_finite) max_finite = d;
    }
    oracle.quant_scale_ =
        max_finite > 0.0 ? static_cast<double>(kQuantMax) / max_finite : 1.0;
    oracle.quant_resolution_ = 1.0 / oracle.quant_scale_;
    oracle.hub_dist_q_.resize(total);
    for (std::size_t i = 0; i < total; ++i) {
      oracle.hub_dist_q_[i] =
          QuantizeDistance(oracle.hub_dist_[i], oracle.quant_scale_);
    }
    oracle.hub_dist_.clear();
    oracle.quantized_ = true;
    // Proven bound on |quantized query - exact query|: the two label
    // entries of any candidate sum each round by <= resolution/2 (the
    // saturated encoding of the max-finite entry errs by at most a few
    // ulps of max_finite); dequantization multiplies by fl(1/scale),
    // adding <= max_finite * eps per entry; the candidate addition rounds
    // once more (<= 2 * max_finite * eps); and min over per-candidate
    // perturbed values moves by at most the largest perturbation. The
    // 8 * max * eps slack covers every epsilon-scaled term with room.
    oracle.quantization_error_bound_ =
        oracle.quant_resolution_ +
        8.0 * max_finite * std::numeric_limits<double>::epsilon();
  }

  // Exact-size storage: MemoryBytes() reports size() * element width, so
  // drop the growth slack the flatten/quantize steps may have left.
  oracle.offsets_.shrink_to_fit();
  oracle.hub_rank_.shrink_to_fit();
  oracle.hub_dist_.shrink_to_fit();
  oracle.hub_dist_q_.shrink_to_fit();
  return oracle;
}

std::uint32_t HubLabelOracle::QuantizeDistance(double d, double scale) {
  if (!(d < kInfDistance)) return kQuantInf;  // +inf (and NaN) -> sentinel
  const double scaled = d * scale;
  if (scaled >= static_cast<double>(kQuantMax)) return kQuantMax;  // saturate
  if (scaled <= 0.0) return 0u;
  return static_cast<std::uint32_t>(std::llround(scaled));
}

double HubLabelOracle::DequantizeDistance(std::uint32_t q, double resolution) {
  if (q == kQuantInf) return kInfDistance;
  return static_cast<double>(q) * resolution;
}

void HubLabelOracle::ScatterLabel(VertexId v, double* col,
                                  std::size_t stride) const {
  const auto b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
  const auto e =
      static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
  const VertexId* ranks = hub_rank_.data();
  if (quantized_) {
    const std::uint32_t* dists = hub_dist_q_.data();
    const double res = quant_resolution_;
    for (std::size_t i = b; i < e; ++i) {
      col[static_cast<std::size_t>(ranks[i]) * stride] =
          DequantizeDistance(dists[i], res);
    }
  } else {
    const double* dists = hub_dist_.data();
    for (std::size_t i = b; i < e; ++i) {
      col[static_cast<std::size_t>(ranks[i]) * stride] = dists[i];
    }
  }
}

void HubLabelOracle::RestoreColumn(VertexId v, double* col,
                                   std::size_t stride) const {
  const auto b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
  const auto e =
      static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
  const VertexId* ranks = hub_rank_.data();
  for (std::size_t i = b; i < e; ++i) {
    col[static_cast<std::size_t>(ranks[i]) * stride] =
        std::numeric_limits<double>::infinity();
  }
}

double HubLabelOracle::QueryByLabels(VertexId u, VertexId v) const {
  std::size_t bu = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(u)]);
  std::size_t eu = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(u) + 1]);
  std::size_t bv = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
  std::size_t ev = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
  const VertexId* ranks = hub_rank_.data();

  // Scatter-scan instead of a merge-join. The classic two-pointer merge
  // spends ~10 cycles per element here: the hub-match branch is
  // data-dependent (≈45% match rate on road labels, unpredictable) and the
  // running min is a loop-carried FP dependency. Instead: (1) scatter the
  // shorter label's distances into a rank-indexed dense column (kept +inf
  // outside this call, so a non-common hub contributes inf + d = inf and
  // drops out of the min); (2) scan the longer label with four independent
  // branch-free min accumulators; (3) restore the column. Every candidate
  // is the same du + dv sum the merge would form, and min over doubles is
  // exact and order-independent, so results are bit-identical — measured
  // ~2.6x faster on the bench_oracle fixture. Quantized labels dequantize
  // on the fly (one multiply per entry); the candidate set is the same.
  //
  // The dense column costs 8 bytes per vertex per querying thread and is
  // shared by all oracle instances on the thread (it only ever grows).
  thread_local std::vector<double> dense;
  const std::size_t num_ranks = offsets_.size() - 1;  // one rank per vertex
  if (dense.size() < num_ranks) {
    dense.resize(num_ranks, std::numeric_limits<double>::infinity());
  }
  VertexId scatter_v = u;
  if (eu - bu > ev - bv) {
    scatter_v = v;
    std::swap(bu, bv);
    std::swap(eu, ev);
  }
  double* col = dense.data();
  ScatterLabel(scatter_v, col, 1);
  double b0 = std::numeric_limits<double>::infinity(), b1 = b0, b2 = b0,
         b3 = b0;
  std::size_t j = bv;
  if (quantized_) {
    const std::uint32_t* dists = hub_dist_q_.data();
    const double res = quant_resolution_;
    for (; j + 4 <= ev; j += 4) {
      const double c0 =
          col[static_cast<std::size_t>(ranks[j])] + DequantizeDistance(dists[j], res);
      const double c1 = col[static_cast<std::size_t>(ranks[j + 1])] +
                        DequantizeDistance(dists[j + 1], res);
      const double c2 = col[static_cast<std::size_t>(ranks[j + 2])] +
                        DequantizeDistance(dists[j + 2], res);
      const double c3 = col[static_cast<std::size_t>(ranks[j + 3])] +
                        DequantizeDistance(dists[j + 3], res);
      b0 = c0 < b0 ? c0 : b0;
      b1 = c1 < b1 ? c1 : b1;
      b2 = c2 < b2 ? c2 : b2;
      b3 = c3 < b3 ? c3 : b3;
    }
    for (; j < ev; ++j) {
      const double c =
          col[static_cast<std::size_t>(ranks[j])] + DequantizeDistance(dists[j], res);
      b0 = c < b0 ? c : b0;
    }
  } else {
    const double* dists = hub_dist_.data();
    for (; j + 4 <= ev; j += 4) {
      const double c0 = col[static_cast<std::size_t>(ranks[j])] + dists[j];
      const double c1 = col[static_cast<std::size_t>(ranks[j + 1])] + dists[j + 1];
      const double c2 = col[static_cast<std::size_t>(ranks[j + 2])] + dists[j + 2];
      const double c3 = col[static_cast<std::size_t>(ranks[j + 3])] + dists[j + 3];
      b0 = c0 < b0 ? c0 : b0;
      b1 = c1 < b1 ? c1 : b1;
      b2 = c2 < b2 ? c2 : b2;
      b3 = c3 < b3 ? c3 : b3;
    }
    for (; j < ev; ++j) {
      const double c = col[static_cast<std::size_t>(ranks[j])] + dists[j];
      b0 = c < b0 ? c : b0;
    }
  }
  RestoreColumn(scatter_v, col, 1);
  return std::min(std::min(b0, b1), std::min(b2, b3));
}

double HubLabelOracle::Distance(VertexId u, VertexId v) {
  ++query_count_;
  if (u == v) return 0.0;
  return QueryByLabels(u, v);
}

void HubLabelOracle::BatchQuery(const std::vector<VertexId>& sources,
                                const std::vector<VertexId>& targets,
                                std::vector<double>* out) {
  const std::size_t ns = sources.size();
  const std::size_t nt = targets.size();
  query_count_.fetch_add(
      static_cast<std::int64_t>(ns) * static_cast<std::int64_t>(nt),
      std::memory_order_relaxed);
  out->resize(ns * nt);
  if (ns == 0 || nt == 0) return;

  // One dense rank-indexed column per target, interleaved rank-major in
  // one thread-local buffer (kept +inf outside this call, like the
  // point-query column): rank r's entry for target j lives at r * nt + j,
  // so all targets' entries for a rank share a cache line and a source
  // label entry costs one miss, not nt. Each target label scatters once;
  // each source label is then walked once against all target columns, so
  // the per-pair scatter and restore of repeated point queries disappears.
  thread_local std::vector<double> dense_multi;
  const std::size_t num_ranks = offsets_.size() - 1;
  if (dense_multi.size() < num_ranks * nt) {
    dense_multi.resize(num_ranks * nt,
                       std::numeric_limits<double>::infinity());
  }
  double* base = dense_multi.data();
  for (std::size_t j = 0; j < nt; ++j) {
    ScatterLabel(targets[j], base + j, nt);
  }

  const VertexId* ranks = hub_rank_.data();
  const bool quantized = quantized_;
  const double res = quant_resolution_;
  const auto entry_dist = [&](std::size_t k) {
    return quantized ? DequantizeDistance(hub_dist_q_[k], res) : hub_dist_[k];
  };
  if (nt == 2) {
    // The planner's dominant shape — route positions x {origin,
    // destination} — keeps both accumulators in registers.
    for (std::size_t i = 0; i < ns; ++i) {
      const VertexId s = sources[i];
      const auto bs =
          static_cast<std::size_t>(offsets_[static_cast<std::size_t>(s)]);
      const auto es =
          static_cast<std::size_t>(offsets_[static_cast<std::size_t>(s) + 1]);
      double a0 = std::numeric_limits<double>::infinity(), a1 = a0;
      for (std::size_t k = bs; k < es; ++k) {
        const double* row = base + static_cast<std::size_t>(ranks[k]) * 2;
        const double d = entry_dist(k);
        const double c0 = row[0] + d;
        const double c1 = row[1] + d;
        a0 = c0 < a0 ? c0 : a0;
        a1 = c1 < a1 ? c1 : a1;
      }
      // Candidate sums and their min are exactly the point query's (min
      // over doubles is order-independent); only u == v short-circuits.
      (*out)[i * 2] = s == targets[0] ? 0.0 : a0;
      (*out)[i * 2 + 1] = s == targets[1] ? 0.0 : a1;
    }
  } else {
    thread_local std::vector<double> acc;
    acc.resize(nt);
    for (std::size_t i = 0; i < ns; ++i) {
      const VertexId s = sources[i];
      const auto bs =
          static_cast<std::size_t>(offsets_[static_cast<std::size_t>(s)]);
      const auto es =
          static_cast<std::size_t>(offsets_[static_cast<std::size_t>(s) + 1]);
      std::fill(acc.begin(), acc.end(),
                std::numeric_limits<double>::infinity());
      for (std::size_t k = bs; k < es; ++k) {
        const double* row = base + static_cast<std::size_t>(ranks[k]) * nt;
        const double d = entry_dist(k);
        for (std::size_t j = 0; j < nt; ++j) {
          const double c = row[j] + d;
          acc[j] = c < acc[j] ? c : acc[j];
        }
      }
      for (std::size_t j = 0; j < nt; ++j) {
        (*out)[i * nt + j] = s == targets[j] ? 0.0 : acc[j];
      }
    }
  }

  for (std::size_t j = 0; j < nt; ++j) {
    RestoreColumn(targets[j], base + j, nt);
  }
}

std::vector<VertexId> HubLabelOracle::Path(VertexId u, VertexId v) {
  return DijkstraPath(*graph_, u, v);
}

double HubLabelOracle::average_label_size() const {
  const std::size_t n = offsets_.empty() ? 0 : offsets_.size() - 1;
  if (n == 0) return 0.0;
  return static_cast<double>(offsets_.back()) / static_cast<double>(n);
}

std::int64_t HubLabelOracle::MemoryBytes() const {
  // Sizes, not capacities: the build shrinks every CSR array to fit, so
  // this is the actual resident footprint of the labels.
  return static_cast<std::int64_t>(
      offsets_.size() * sizeof(std::int64_t) +
      hub_rank_.size() * sizeof(VertexId) +
      hub_dist_.size() * sizeof(double) +
      hub_dist_q_.size() * sizeof(std::uint32_t));
}

}  // namespace urpsm
