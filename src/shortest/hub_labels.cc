#include "src/shortest/hub_labels.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

#include "src/shortest/dijkstra.h"

namespace urpsm {

HubLabelOracle HubLabelOracle::Build(const RoadNetwork& graph) {
  HubLabelOracle oracle(&graph);
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  oracle.labels_.resize(n);

  // Order vertices by descending degree (cheap, effective proxy for
  // betweenness on road networks).
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return graph.Neighbors(a).size() > graph.Neighbors(b).size();
  });
  // rank[v] = position of v in the build order; hubs are stored in rank
  // space so that label lists are sorted by construction.
  std::vector<VertexId> rank(n);
  for (std::size_t i = 0; i < n; ++i) {
    rank[static_cast<std::size_t>(order[i])] = static_cast<VertexId>(i);
  }

  std::vector<double> dist(n, kInfDistance);
  std::vector<VertexId> touched;
  using HeapEntry = std::pair<double, VertexId>;
  using MinHeap =
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

  for (std::size_t i = 0; i < n; ++i) {
    const VertexId root = order[i];
    const VertexId root_rank = static_cast<VertexId>(i);
    MinHeap heap;
    dist[static_cast<std::size_t>(root)] = 0.0;
    touched.clear();
    touched.push_back(root);
    heap.push({0.0, root});
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      const auto ui = static_cast<std::size_t>(u);
      if (d > dist[ui]) continue;
      // Prune: if existing labels already certify a distance <= d between
      // root and u, u (and everything behind it) need not store this hub.
      if (oracle.QueryByLabels(root, u) <= d) continue;
      oracle.labels_[ui].push_back({root_rank, d});
      for (const auto& arc : graph.Neighbors(u)) {
        const auto vi = static_cast<std::size_t>(arc.to);
        const double nd = d + arc.cost;
        if (nd < dist[vi]) {
          if (dist[vi] == kInfDistance) touched.push_back(arc.to);
          dist[vi] = nd;
          heap.push({nd, arc.to});
        }
      }
    }
    for (VertexId v : touched) dist[static_cast<std::size_t>(v)] = kInfDistance;
  }
  return oracle;
}

double HubLabelOracle::QueryByLabels(VertexId u, VertexId v) const {
  const auto& lu = labels_[static_cast<std::size_t>(u)];
  const auto& lv = labels_[static_cast<std::size_t>(v)];
  double best = std::numeric_limits<double>::infinity();
  std::size_t i = 0, j = 0;
  while (i < lu.size() && j < lv.size()) {
    if (lu[i].hub == lv[j].hub) {
      best = std::min(best, lu[i].dist + lv[j].dist);
      ++i;
      ++j;
    } else if (lu[i].hub < lv[j].hub) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

double HubLabelOracle::Distance(VertexId u, VertexId v) {
  ++query_count_;
  if (u == v) return 0.0;
  return QueryByLabels(u, v);
}

std::vector<VertexId> HubLabelOracle::Path(VertexId u, VertexId v) {
  return DijkstraPath(*graph_, u, v);
}

double HubLabelOracle::average_label_size() const {
  if (labels_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& l : labels_) total += l.size();
  return static_cast<double>(total) / static_cast<double>(labels_.size());
}

std::int64_t HubLabelOracle::MemoryBytes() const {
  std::int64_t total = 0;
  for (const auto& l : labels_) {
    total += static_cast<std::int64_t>(l.capacity() * sizeof(LabelEntry));
  }
  return total + static_cast<std::int64_t>(
                     labels_.capacity() * sizeof(std::vector<LabelEntry>));
}

}  // namespace urpsm
