#ifndef URPSM_SRC_SHORTEST_ALT_H_
#define URPSM_SRC_SHORTEST_ALT_H_

#include <cstdint>
#include <vector>

#include "src/graph/road_network.h"
#include "src/shortest/oracle.h"

namespace urpsm {

/// ALT oracle: A* with Landmarks and the Triangle inequality (Goldberg &
/// Harrelson). Third shortest-path substrate besides hub labels and
/// contraction hierarchies: cheap preprocessing (k single-source Dijkstras
/// from farthest-selected landmarks), goal-directed exact queries via the
/// admissible landmark heuristic
///   h(v) = max_L |d(L, t) - d(L, v)|.
class AltOracle : public DistanceOracle {
 public:
  /// Preprocesses `graph` with `num_landmarks` landmarks chosen by
  /// farthest selection from vertex 0.
  static AltOracle Build(const RoadNetwork& graph, int num_landmarks = 8);

  double Distance(VertexId u, VertexId v) override;
  std::vector<VertexId> Path(VertexId u, VertexId v) override;

  int num_landmarks() const { return static_cast<int>(landmarks_.size()); }
  const std::vector<VertexId>& landmarks() const { return landmarks_; }
  std::int64_t MemoryBytes() const;

  /// The admissible heuristic used by the A* search (exposed for tests:
  /// must never exceed the true distance).
  double Heuristic(VertexId v, VertexId target) const;

 private:
  AltOracle() = default;

  double AStar(VertexId s, VertexId t, std::vector<VertexId>* parent) const;

  const RoadNetwork* graph_ = nullptr;
  std::vector<VertexId> landmarks_;
  // dist_[l][v] = shortest distance from landmarks_[l] to v.
  std::vector<std::vector<double>> dist_;
};

}  // namespace urpsm

#endif  // URPSM_SRC_SHORTEST_ALT_H_
