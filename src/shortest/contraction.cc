#include "src/shortest/contraction.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <utility>

#include "src/shortest/dijkstra.h"

namespace urpsm {

namespace {

/// Working-graph edge during contraction.
struct WorkEdge {
  double cost;
  VertexId middle;  // kInvalidVertex for original edges
};

using WorkAdj = std::vector<std::unordered_map<VertexId, WorkEdge>>;

/// Witness search: is there a path a -> b avoiding `banned` with cost
/// <= bound, using only uncontracted vertices? Truncated (settle budget);
/// truncation errs toward "no witness", which only adds extra shortcuts —
/// never incorrect distances.
bool HasWitness(const WorkAdj& adj, const std::vector<bool>& contracted,
                VertexId a, VertexId b, VertexId banned, double bound,
                int settle_budget) {
  if (a == b) return true;
  std::unordered_map<VertexId, double> dist;
  using HeapEntry = std::pair<double, VertexId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  dist[a] = 0.0;
  heap.push({0.0, a});
  int settled = 0;
  while (!heap.empty() && settled < settle_budget) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > bound) break;
    auto it = dist.find(u);
    if (it != dist.end() && d > it->second) continue;
    if (u == b) return true;
    ++settled;
    for (const auto& [to, e] : adj[static_cast<std::size_t>(u)]) {
      if (to == banned || contracted[static_cast<std::size_t>(to)]) continue;
      const double nd = d + e.cost;
      if (nd > bound) continue;
      auto dit = dist.find(to);
      if (dit == dist.end() || nd < dit->second) {
        dist[to] = nd;
        heap.push({nd, to});
      }
    }
  }
  return false;
}

/// Shortcuts that contracting `v` would create right now.
std::vector<std::tuple<VertexId, VertexId, double>> RequiredShortcuts(
    const WorkAdj& adj, const std::vector<bool>& contracted, VertexId v,
    int settle_budget) {
  std::vector<std::pair<VertexId, double>> nbrs;
  for (const auto& [to, e] : adj[static_cast<std::size_t>(v)]) {
    if (!contracted[static_cast<std::size_t>(to)]) nbrs.push_back({to, e.cost});
  }
  std::vector<std::tuple<VertexId, VertexId, double>> shortcuts;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      const auto [a, ca] = nbrs[i];
      const auto [b, cb] = nbrs[j];
      const double through = ca + cb;
      if (!HasWitness(adj, contracted, a, b, v, through, settle_budget)) {
        shortcuts.push_back({a, b, through});
      }
    }
  }
  return shortcuts;
}

void AddWorkEdge(WorkAdj* adj, VertexId u, VertexId v, double cost,
                 VertexId middle) {
  auto& row = (*adj)[static_cast<std::size_t>(u)];
  auto it = row.find(v);
  if (it == row.end() || cost < it->second.cost) row[v] = {cost, middle};
}

/// The full contraction loop: lazy edge-difference priority, witness
/// searches, shortcut insertion. Shared between ContractionHierarchy::Build
/// (which also materializes the upward search graph from `adj`) and
/// ContractionOrder (which only needs the ranks). Both callers therefore see
/// the exact same contraction sequence.
struct ContractionResult {
  WorkAdj adj;
  std::vector<int> rank;
  std::int64_t num_shortcuts = 0;
};

ContractionResult RunContraction(const RoadNetwork& graph) {
  constexpr int kSettleBudget = 60;
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  ContractionResult res;
  WorkAdj& adj = res.adj;
  adj.resize(n);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const auto& arc : graph.Neighbors(v)) {
      auto it = adj[static_cast<std::size_t>(v)].find(arc.to);
      if (it == adj[static_cast<std::size_t>(v)].end() ||
          arc.cost < it->second.cost) {
        adj[static_cast<std::size_t>(v)][arc.to] = {arc.cost, kInvalidVertex};
      }
    }
  }

  res.rank.assign(n, -1);
  std::vector<bool> contracted(n, false);
  std::vector<int> deleted_neighbors(n, 0);

  const auto priority = [&](VertexId v) {
    const auto sc = RequiredShortcuts(adj, contracted, v, kSettleBudget);
    int degree = 0;
    for (const auto& [to, e] : adj[static_cast<std::size_t>(v)]) {
      if (!contracted[static_cast<std::size_t>(to)]) ++degree;
    }
    return static_cast<double>(sc.size()) - degree +
           2.0 * deleted_neighbors[static_cast<std::size_t>(v)];
  };

  using PqEntry = std::pair<double, VertexId>;
  std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<>> pq;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    pq.push({priority(v), v});
  }

  int next_rank = 0;
  while (!pq.empty()) {
    auto [p, v] = pq.top();
    pq.pop();
    if (contracted[static_cast<std::size_t>(v)]) continue;
    // Lazy update: re-evaluate and re-queue if stale.
    const double cur = priority(v);
    if (!pq.empty() && cur > pq.top().first) {
      pq.push({cur, v});
      continue;
    }
    // Contract v.
    const auto shortcuts =
        RequiredShortcuts(adj, contracted, v, kSettleBudget);
    for (const auto& [a, b, cost] : shortcuts) {
      AddWorkEdge(&adj, a, b, cost, v);
      AddWorkEdge(&adj, b, a, cost, v);
      ++res.num_shortcuts;
    }
    contracted[static_cast<std::size_t>(v)] = true;
    res.rank[static_cast<std::size_t>(v)] = next_rank++;
    for (const auto& [to, e] : adj[static_cast<std::size_t>(v)]) {
      if (!contracted[static_cast<std::size_t>(to)]) {
        ++deleted_neighbors[static_cast<std::size_t>(to)];
      }
    }
  }
  return res;
}

}  // namespace

std::vector<int> ContractionOrder(const RoadNetwork& graph) {
  return RunContraction(graph).rank;
}

ContractionHierarchy ContractionHierarchy::Build(const RoadNetwork& graph) {
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  ContractionResult res = RunContraction(graph);
  const WorkAdj& adj = res.adj;

  ContractionHierarchy ch;
  ch.up_.resize(n);
  ch.rank_ = std::move(res.rank);
  ch.num_shortcuts_ = res.num_shortcuts;

  // Materialize the upward graph: every working edge (u, w) hangs off the
  // lower-ranked endpoint. Keep only the cheapest parallel arc.
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (const auto& [to, e] : adj[static_cast<std::size_t>(u)]) {
      if (ch.rank_[static_cast<std::size_t>(u)] <
          ch.rank_[static_cast<std::size_t>(to)]) {
        ch.up_[static_cast<std::size_t>(u)].push_back({to, e.cost, e.middle});
      }
    }
  }
  return ch;
}

double ContractionHierarchy::Query(VertexId s, VertexId t, VertexId* meeting,
                                   std::vector<VertexId>* parent_f,
                                   std::vector<VertexId>* parent_b) const {
  const auto n = up_.size();
  std::vector<double> dist_f(n, kInfDistance), dist_b(n, kInfDistance);
  if (parent_f != nullptr) parent_f->assign(n, kInvalidVertex);
  if (parent_b != nullptr) parent_b->assign(n, kInvalidVertex);
  using HeapEntry = std::pair<double, VertexId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap_f, heap_b;
  dist_f[static_cast<std::size_t>(s)] = 0.0;
  dist_b[static_cast<std::size_t>(t)] = 0.0;
  heap_f.push({0.0, s});
  heap_b.push({0.0, t});
  double best = kInfDistance;
  if (meeting != nullptr) *meeting = kInvalidVertex;

  const auto relax = [&](bool forward) {
    auto& heap = forward ? heap_f : heap_b;
    auto& dist = forward ? dist_f : dist_b;
    auto& other = forward ? dist_b : dist_f;
    auto* parent = forward ? parent_f : parent_b;
    auto [d, u] = heap.top();
    heap.pop();
    const auto ui = static_cast<std::size_t>(u);
    if (d > dist[ui]) return;
    if (other[ui] < kInfDistance && d + other[ui] < best) {
      best = d + other[ui];
      if (meeting != nullptr) *meeting = u;
    }
    for (const UpArc& arc : up_[ui]) {
      const auto vi = static_cast<std::size_t>(arc.to);
      const double nd = d + arc.cost;
      if (nd < dist[vi]) {
        dist[vi] = nd;
        if (parent != nullptr) (*parent)[vi] = u;
        heap.push({nd, arc.to});
      }
    }
  };

  while (!heap_f.empty() || !heap_b.empty()) {
    const double top_f = heap_f.empty() ? kInfDistance : heap_f.top().first;
    const double top_b = heap_b.empty() ? kInfDistance : heap_b.top().first;
    if (std::min(top_f, top_b) >= best) break;
    if (top_f <= top_b) {
      relax(true);
    } else {
      relax(false);
    }
  }
  return best;
}

double ContractionHierarchy::Distance(VertexId u, VertexId v) {
  ++query_count_;
  if (u == v) return 0.0;
  return Query(u, v, nullptr, nullptr, nullptr);
}

const ContractionHierarchy::UpArc* ContractionHierarchy::FindUpArc(
    VertexId from, VertexId to) const {
  const UpArc* best = nullptr;
  for (const UpArc& arc : up_[static_cast<std::size_t>(from)]) {
    if (arc.to == to && (best == nullptr || arc.cost < best->cost)) {
      best = &arc;
    }
  }
  return best;
}

void ContractionHierarchy::UnpackArc(VertexId from, VertexId to,
                                     std::vector<VertexId>* out) const {
  // The up-arc lives at the lower-ranked endpoint.
  const bool from_lower = rank_[static_cast<std::size_t>(from)] <
                          rank_[static_cast<std::size_t>(to)];
  const UpArc* arc =
      from_lower ? FindUpArc(from, to) : FindUpArc(to, from);
  if (arc == nullptr || arc->middle == kInvalidVertex) {
    out->push_back(to);
    return;
  }
  UnpackArc(from, arc->middle, out);
  UnpackArc(arc->middle, to, out);
}

std::vector<VertexId> ContractionHierarchy::Path(VertexId u, VertexId v) {
  if (u == v) return {u};
  VertexId meeting = kInvalidVertex;
  std::vector<VertexId> parent_f, parent_b;
  const double d = Query(u, v, &meeting, &parent_f, &parent_b);
  if (d == kInfDistance || meeting == kInvalidVertex) return {};
  // Up-graph path u -> meeting (reversed walk over forward parents).
  std::vector<VertexId> fwd;
  for (VertexId x = meeting; x != kInvalidVertex;
       x = parent_f[static_cast<std::size_t>(x)]) {
    fwd.push_back(x);
  }
  std::reverse(fwd.begin(), fwd.end());
  // meeting -> v over backward parents.
  std::vector<VertexId> bwd;
  for (VertexId x = parent_b[static_cast<std::size_t>(meeting)];
       x != kInvalidVertex; x = parent_b[static_cast<std::size_t>(x)]) {
    bwd.push_back(x);
  }
  // Unpack every hierarchy arc into original vertices.
  std::vector<VertexId> path = {u};
  for (std::size_t i = 0; i + 1 < fwd.size(); ++i) {
    UnpackArc(fwd[i], fwd[i + 1], &path);
  }
  VertexId prev = meeting;
  for (VertexId x : bwd) {
    UnpackArc(prev, x, &path);
    prev = x;
  }
  return path;
}

std::int64_t ContractionHierarchy::MemoryBytes() const {
  std::int64_t total = 0;
  for (const auto& arcs : up_) {
    total += static_cast<std::int64_t>(arcs.capacity() * sizeof(UpArc));
  }
  total += static_cast<std::int64_t>(rank_.capacity() * sizeof(int));
  return total;
}

}  // namespace urpsm
