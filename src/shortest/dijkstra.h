#ifndef URPSM_SRC_SHORTEST_DIJKSTRA_H_
#define URPSM_SRC_SHORTEST_DIJKSTRA_H_

#include <limits>
#include <vector>

#include "src/graph/road_network.h"

namespace urpsm {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Single-source shortest travel times from `source` to every vertex.
/// Unreachable vertices get kInfDistance.
std::vector<double> DijkstraAll(const RoadNetwork& graph, VertexId source);

/// Point-to-point Dijkstra with early termination at `target`.
double DijkstraDistance(const RoadNetwork& graph, VertexId source,
                        VertexId target);

/// Point-to-point shortest path (vertex sequence including endpoints);
/// empty when unreachable.
std::vector<VertexId> DijkstraPath(const RoadNetwork& graph, VertexId source,
                                   VertexId target);

}  // namespace urpsm

#endif  // URPSM_SRC_SHORTEST_DIJKSTRA_H_
