#ifndef URPSM_SRC_SHORTEST_ORACLE_H_
#define URPSM_SRC_SHORTEST_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/graph/road_network.h"
#include "src/util/sharded_lru_cache.h"

namespace urpsm {

class FaultInjector;

namespace obs {
class Registry;
}  // namespace obs

/// Abstract shortest-distance / shortest-path oracle over a road network.
///
/// The paper assumes a shortest-distance query takes O(1) (or O(q)) time and
/// answers them with a hub-based labeling plus a shared LRU cache
/// (Sec. 6.1). All algorithms in this library talk to this interface, and
/// the number of `Distance` calls is the "distance query" count reported by
/// the pruning experiments (Figs. 3 and 6).
///
/// Thread-safety contract (relied on by the parallel dispatch engine):
/// `Distance` must be safe to call concurrently. Every oracle bundled here
/// satisfies it the same way — the query itself only reads immutable state
/// (graph, labels) through per-call local buffers, and the query counter is
/// atomic. `Path` is not part of the contract: planners only materialize
/// paths sequentially.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Shortest travel time between two vertices, in minutes.
  virtual double Distance(VertexId u, VertexId v) = 0;

  /// Shortest path between two vertices as a vertex sequence including both
  /// endpoints. Empty when unreachable.
  virtual std::vector<VertexId> Path(VertexId u, VertexId v) = 0;

  /// Multi-source sweep: fills `out` (row-major, sources.size() x
  /// targets.size()) with out[i * targets.size() + j] =
  /// Distance(sources[i], targets[j]). Bills sources x targets queries, and
  /// every cell is bit-identical to the corresponding point query. The base
  /// implementation loops over Distance; label-based oracles override it to
  /// walk each source label once against rank-indexed dense target columns.
  /// Same thread-safety contract as Distance.
  virtual void BatchQuery(const std::vector<VertexId>& sources,
                          const std::vector<VertexId>& targets,
                          std::vector<double>* out) {
    out->resize(sources.size() * targets.size());
    std::size_t at = 0;
    for (const VertexId s : sources) {
      for (const VertexId t : targets) (*out)[at++] = Distance(s, t);
    }
  }

  /// Worst-case absolute error of any Distance result versus the exact
  /// shortest distance, when the oracle stores lossy (quantized) labels.
  /// 0 for exact oracles. Decorators forward to the wrapped oracle.
  virtual double QuantizationErrorBound() const { return 0.0; }

  /// Number of `Distance` calls served so far.
  std::int64_t query_count() const {
    return query_count_.load(std::memory_order_relaxed);
  }

  void ResetQueryCount() { query_count_.store(0, std::memory_order_relaxed); }

 protected:
  DistanceOracle() = default;
  // std::atomic is neither copyable nor movable; oracles are (HubLabelOracle
  // is returned by value from Build), so transfer the counter's value.
  DistanceOracle(const DistanceOracle& other) : query_count_(other.query_count()) {}
  DistanceOracle& operator=(const DistanceOracle& other) {
    query_count_.store(other.query_count(), std::memory_order_relaxed);
    return *this;
  }

  std::atomic<std::int64_t> query_count_{0};
};

/// Exact oracle running Dijkstra per query. Simple and always correct;
/// used as ground truth in tests and as a fallback oracle.
class DijkstraOracle : public DistanceOracle {
 public:
  explicit DijkstraOracle(const RoadNetwork* graph) : graph_(graph) {}

  double Distance(VertexId u, VertexId v) override;
  std::vector<VertexId> Path(VertexId u, VertexId v) override;

 private:
  const RoadNetwork* graph_;
};

/// Decorator adding the paper's shared LRU cache on top of any oracle.
/// Cache hits do not count as queries of the inner oracle but do count as
/// queries of this oracle (the paper's "saved queries" metric counts calls
/// that never happen at all thanks to pruning, not cache hits).
///
/// The cache is sharded with striped locks, so concurrent `Distance` calls
/// from the parallel planner only serialize when they collide on a shard.
/// Two threads racing on the same cold key may both consult the inner
/// oracle; both obtain the same exact value, so results are unaffected.
class CachedOracle : public DistanceOracle {
 public:
  /// `inner` is borrowed, not owned: oracles (hub labels in particular)
  /// are built once and shared across many simulation runs.
  CachedOracle(DistanceOracle* inner, std::size_t capacity)
      : inner_(inner), cache_(capacity) {}

  double Distance(VertexId u, VertexId v) override;
  std::vector<VertexId> Path(VertexId u, VertexId v) override;

  /// Batched sweep through the cache: hits are served from the cache, the
  /// misses of each target column are forwarded to the inner oracle as one
  /// (deduplicated) BatchQuery, and results are inserted back. Cell values
  /// and billed query counts are identical to per-pair Distance calls; only
  /// the cache's LRU touch order differs.
  void BatchQuery(const std::vector<VertexId>& sources,
                  const std::vector<VertexId>& targets,
                  std::vector<double>* out) override;

  double QuantizationErrorBound() const override {
    return inner_->QuantizationErrorBound();
  }

  std::int64_t cache_hits() const { return cache_.hits(); }
  std::int64_t cache_misses() const { return cache_.misses(); }
  DistanceOracle* inner() { return inner_; }

  /// Registers pull-model gauges (oracle.queries / oracle.cache_hits /
  /// oracle.cache_misses / oracle.cache_hit_rate) on `reg`. The oracle
  /// must outlive the registry's last Snapshot (or the gauges must be
  /// frozen first). No-op when reg is null or disabled.
  void RegisterMetrics(obs::Registry* reg);

  /// Arms the kOracleDelay fault site on this oracle's Distance path
  /// (timing-only; query counts and results are untouched). nullptr (the
  /// default) costs one branch per call.
  void set_faults(FaultInjector* faults) { faults_ = faults; }

  /// Redirects this thread's Distance billing away from query_count_ and
  /// into `*sink` for the scope's lifetime. The speculative planning
  /// stage bills each request's queries to a private sink: a speculation
  /// HIT re-bills them via AddBilled (the queries a non-speculative run
  /// would have made), a MISS drops them — so the reported query count is
  /// depth- and timing-independent. Cache contents still warm either way.
  class BillingScope {
   public:
    explicit BillingScope(std::int64_t* sink) : prev_(bill_sink_) {
      bill_sink_ = sink;
    }
    ~BillingScope() { bill_sink_ = prev_; }
    BillingScope(const BillingScope&) = delete;
    BillingScope& operator=(const BillingScope&) = delete;

   private:
    std::int64_t* prev_;
  };

  /// Adds `n` sink-billed queries back onto the global counter.
  void AddBilled(std::int64_t n) {
    query_count_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Bills `n` queries to this thread's *current* scope — the active
  /// BillingScope sink when one is open, the global counter otherwise.
  /// Memoized evaluations re-bill a cached evaluation's recorded query
  /// count here, so the total a scan reports is identical to a fresh
  /// evaluation running in the same scope (speculative or not).
  void BillCurrent(std::int64_t n) {
    if (bill_sink_ != nullptr) {
      *bill_sink_ += n;
    } else {
      AddBilled(n);
    }
  }

 private:
  static thread_local std::int64_t* bill_sink_;

  struct KeyHash {
    std::size_t operator()(const std::pair<VertexId, VertexId>& k) const {
      return std::hash<std::int64_t>()(
          (static_cast<std::int64_t>(k.first) << 32) |
          static_cast<std::uint32_t>(k.second));
    }
  };

  DistanceOracle* inner_;
  ShardedLruCache<std::pair<VertexId, VertexId>, double, KeyHash> cache_;
  FaultInjector* faults_ = nullptr;
};

}  // namespace urpsm

#endif  // URPSM_SRC_SHORTEST_ORACLE_H_
