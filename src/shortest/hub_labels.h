#ifndef URPSM_SRC_SHORTEST_HUB_LABELS_H_
#define URPSM_SRC_SHORTEST_HUB_LABELS_H_

#include <cstdint>
#include <vector>

#include "src/graph/road_network.h"
#include "src/shortest/oracle.h"

namespace urpsm {

/// Two-hop hub labeling built with pruned landmark labeling (PLL).
///
/// Stand-in for the hub-based labeling algorithm of Abraham et al. [9] that
/// the paper uses for on-the-fly shortest distance and path queries
/// (Sec. 6.1). The label of a vertex v is a sorted list of (hub, distance)
/// pairs; dis(u, v) = min over common hubs h of d(u,h) + d(h,v). Pruned
/// Dijkstras are run from vertices in descending-degree order, which keeps
/// labels small on road-like planar graphs.
class HubLabelOracle : public DistanceOracle {
 public:
  /// Builds labels for `graph`. O(sum label sizes * log) preprocessing;
  /// intended for graphs up to a few hundred thousand vertices.
  static HubLabelOracle Build(const RoadNetwork& graph);

  double Distance(VertexId u, VertexId v) override;

  /// Path queries fall back to Dijkstra on the underlying graph (the paper
  /// issues far fewer path queries than distance queries; the planner only
  /// needs paths when materializing final routes).
  std::vector<VertexId> Path(VertexId u, VertexId v) override;

  /// Average number of (hub, distance) pairs per vertex label.
  double average_label_size() const;

  /// Total memory consumed by the labels, in bytes.
  std::int64_t MemoryBytes() const;

 private:
  struct LabelEntry {
    VertexId hub;   // rank-space hub id (position in build order)
    double dist;
  };

  explicit HubLabelOracle(const RoadNetwork* graph) : graph_(graph) {}

  double QueryByLabels(VertexId u, VertexId v) const;

  const RoadNetwork* graph_;
  // labels_[v] sorted by hub id ascending.
  std::vector<std::vector<LabelEntry>> labels_;
};

}  // namespace urpsm

#endif  // URPSM_SRC_SHORTEST_HUB_LABELS_H_
