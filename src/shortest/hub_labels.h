#ifndef URPSM_SRC_SHORTEST_HUB_LABELS_H_
#define URPSM_SRC_SHORTEST_HUB_LABELS_H_

#include <cstdint>
#include <vector>

#include "src/graph/road_network.h"
#include "src/shortest/oracle.h"

namespace urpsm {

class ThreadPool;

/// Root processing order for the pruned-landmark-labeling build. The order
/// only changes which vertices become hubs early — every ordering yields an
/// exact oracle, so simulation outputs are bit-identical across orderings
/// (same distances, merely different label sizes and query speed).
enum class VertexOrder {
  /// Descending degree: cheap, effective proxy for betweenness on
  /// road-like planar graphs. The historical default.
  kDegree,
  /// Descending Contraction Hierarchies rank (vertices contracted last by
  /// the lazy edge-difference heuristic first). Costs a CH contraction
  /// pass at build time and measurably shrinks labels versus degree order.
  kContraction,
};

/// Build-time options for HubLabelOracle. The defaults reproduce the
/// historical build bit for bit.
struct OracleOptions {
  VertexOrder order = VertexOrder::kDegree;
  /// Store label distances as 32-bit fixed point instead of doubles,
  /// shrinking CSR labels from 12 to 8 bytes per entry. Queries then carry
  /// a proven absolute error bound of `quantization_error_bound()`; exact
  /// infinities (disconnected pairs) survive the round trip via a sentinel.
  bool quantize = false;
};

/// Two-hop hub labeling built with pruned landmark labeling (PLL).
///
/// Stand-in for the hub-based labeling algorithm of Abraham et al. [9] that
/// the paper uses for on-the-fly shortest distance and path queries
/// (Sec. 6.1). The label of a vertex v is a sorted list of (hub, distance)
/// pairs; dis(u, v) = min over common hubs h of d(u,h) + d(h,v). Pruned
/// Dijkstras are run from vertices in a pluggable importance order
/// (VertexOrder), which keeps labels small on road-like planar graphs.
///
/// Labels are stored in CSR layout: one contiguous hub-rank array and one
/// contiguous hub-distance array (structure of arrays), plus per-vertex
/// offsets. A query scatters the shorter label into a rank-indexed dense
/// column and scans the longer one — no per-vertex vector indirection, no
/// padding (12 bytes per label exact, 8 quantized).
class HubLabelOracle : public DistanceOracle {
 public:
  /// Builds labels for `graph` sequentially with default options.
  /// O(sum label sizes * log) preprocessing; intended for graphs up to a
  /// few hundred thousand vertices.
  static HubLabelOracle Build(const RoadNetwork& graph);

  /// Parallel build over `pool` (nullptr or size 1 falls back to the
  /// sequential build). Roots are processed in speculative batches against
  /// a frozen label snapshot and committed strictly in rank order; a
  /// speculative search is re-run sequentially exactly when a hub committed
  /// ahead of it would have pruned one of its label entries, so the result
  /// is bit-identical to the sequential build for every pool size (per
  /// ordering — the guarantee holds separately for each VertexOrder).
  static HubLabelOracle Build(const RoadNetwork& graph, ThreadPool* pool);

  /// Full-control build: vertex ordering and quantization per `options`.
  static HubLabelOracle Build(const RoadNetwork& graph, ThreadPool* pool,
                              const OracleOptions& options);

  double Distance(VertexId u, VertexId v) override;

  /// Multi-source sweep: each target label is scattered into its own
  /// rank-indexed dense column once, then each source label is walked once
  /// against all target columns — O(sum(label(s)) * |targets| +
  /// sum(label(t))) instead of per-pair scatter/restore. Every cell is
  /// bit-identical to the corresponding Distance call (min over the same
  /// candidate sums); bills sources x targets queries.
  void BatchQuery(const std::vector<VertexId>& sources,
                  const std::vector<VertexId>& targets,
                  std::vector<double>* out) override;

  /// Path queries fall back to Dijkstra on the underlying graph (the paper
  /// issues far fewer path queries than distance queries; the planner only
  /// needs paths when materializing final routes).
  std::vector<VertexId> Path(VertexId u, VertexId v) override;

  /// Average number of (hub, distance) pairs per vertex label.
  double average_label_size() const;

  /// Total memory consumed by the labels, in bytes. Exact: the CSR arrays
  /// are shrunk to size after build, and this sums size() * element width.
  std::int64_t MemoryBytes() const;

  VertexOrder order() const { return order_; }
  bool quantized() const { return quantized_; }

  /// Proven worst-case absolute error of any Distance/BatchQuery result:
  /// 0 when exact; when quantized, each of the two label entries in a
  /// candidate sum carries at most half a quantum of rounding error plus
  /// O(eps)-scaled dequantization error, and min over perturbed candidates
  /// moves by at most the largest per-candidate perturbation.
  double QuantizationErrorBound() const override {
    return quantization_error_bound_;
  }

  /// Fixed-point helpers, exposed for edge-case tests. `scale` maps
  /// travel-time minutes to quantum counts. Encoding saturates at
  /// kQuantMax; exact infinity (unreachable) round-trips via kQuantInf.
  static constexpr std::uint32_t kQuantInf = 0xFFFFFFFFu;
  static constexpr std::uint32_t kQuantMax = 0xFFFFFFFEu;
  static std::uint32_t QuantizeDistance(double d, double scale);
  static double DequantizeDistance(std::uint32_t q, double resolution);

  /// Quantum size in minutes (0 when not quantized).
  double quant_resolution() const { return quant_resolution_; }

  /// Exact equality of the label structure (offsets, hub ranks and hub
  /// distances — exact or quantized — bit for bit). Used to prove parallel
  /// builds identical to sequential ones.
  bool SameLabels(const HubLabelOracle& other) const {
    return offsets_ == other.offsets_ && hub_rank_ == other.hub_rank_ &&
           hub_dist_ == other.hub_dist_ && hub_dist_q_ == other.hub_dist_q_ &&
           quant_resolution_ == other.quant_resolution_;
  }

 private:
  explicit HubLabelOracle(const RoadNetwork* graph) : graph_(graph) {}

  double QueryByLabels(VertexId u, VertexId v) const;

  /// Scatters vertex v's label distances (dequantized if needed) into the
  /// rank-indexed column `col` at `stride` doubles per rank; RestoreColumn
  /// undoes it. Stride 1 serves the point query's dense column; the batched
  /// sweep interleaves its per-target columns rank-major (stride = number
  /// of targets) so one cache line holds every target's entry for a rank.
  void ScatterLabel(VertexId v, double* col, std::size_t stride) const;
  void RestoreColumn(VertexId v, double* col, std::size_t stride) const;

  const RoadNetwork* graph_;
  VertexOrder order_ = VertexOrder::kDegree;
  bool quantized_ = false;
  double quant_resolution_ = 0.0;        // minutes per quantum; 0 = exact
  double quant_scale_ = 0.0;             // quanta per minute; 0 = exact
  double quantization_error_bound_ = 0.0;
  // CSR label storage: vertex v's label occupies [offsets_[v], offsets_[v+1])
  // in hub_rank_ and hub_dist_ (exact) or hub_dist_q_ (quantized), sorted by
  // hub rank ascending (ranks are positions in the build order, so lists are
  // sorted by construction). Exactly one of the distance arrays is non-empty.
  std::vector<std::int64_t> offsets_;
  std::vector<VertexId> hub_rank_;
  std::vector<double> hub_dist_;
  std::vector<std::uint32_t> hub_dist_q_;
};

}  // namespace urpsm

#endif  // URPSM_SRC_SHORTEST_HUB_LABELS_H_
