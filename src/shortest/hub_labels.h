#ifndef URPSM_SRC_SHORTEST_HUB_LABELS_H_
#define URPSM_SRC_SHORTEST_HUB_LABELS_H_

#include <cstdint>
#include <vector>

#include "src/graph/road_network.h"
#include "src/shortest/oracle.h"

namespace urpsm {

class ThreadPool;

/// Two-hop hub labeling built with pruned landmark labeling (PLL).
///
/// Stand-in for the hub-based labeling algorithm of Abraham et al. [9] that
/// the paper uses for on-the-fly shortest distance and path queries
/// (Sec. 6.1). The label of a vertex v is a sorted list of (hub, distance)
/// pairs; dis(u, v) = min over common hubs h of d(u,h) + d(h,v). Pruned
/// Dijkstras are run from vertices in descending-degree order, which keeps
/// labels small on road-like planar graphs.
///
/// Labels are stored in CSR layout: one contiguous hub-rank array and one
/// contiguous hub-distance array (structure of arrays), plus per-vertex
/// offsets. A query is a branch-light merge-join over two flat, sorted
/// slices — no per-vertex vector indirection, no padding (the old
/// array-of-structs entry was 16 bytes; CSR stores 12 per label).
class HubLabelOracle : public DistanceOracle {
 public:
  /// Builds labels for `graph` sequentially. O(sum label sizes * log)
  /// preprocessing; intended for graphs up to a few hundred thousand
  /// vertices.
  static HubLabelOracle Build(const RoadNetwork& graph);

  /// Parallel build over `pool` (nullptr or size 1 falls back to the
  /// sequential build). Roots are processed in speculative batches against
  /// a frozen label snapshot and committed strictly in rank order; a
  /// speculative search is re-run sequentially exactly when a hub committed
  /// ahead of it would have pruned one of its label entries, so the result
  /// is bit-identical to the sequential build for every pool size.
  static HubLabelOracle Build(const RoadNetwork& graph, ThreadPool* pool);

  double Distance(VertexId u, VertexId v) override;

  /// Path queries fall back to Dijkstra on the underlying graph (the paper
  /// issues far fewer path queries than distance queries; the planner only
  /// needs paths when materializing final routes).
  std::vector<VertexId> Path(VertexId u, VertexId v) override;

  /// Average number of (hub, distance) pairs per vertex label.
  double average_label_size() const;

  /// Total memory consumed by the labels, in bytes.
  std::int64_t MemoryBytes() const;

  /// Exact equality of the label structure (offsets, hub ranks and hub
  /// distances, bit for bit). Used to prove parallel builds identical to
  /// sequential ones.
  bool SameLabels(const HubLabelOracle& other) const {
    return offsets_ == other.offsets_ && hub_rank_ == other.hub_rank_ &&
           hub_dist_ == other.hub_dist_;
  }

 private:
  explicit HubLabelOracle(const RoadNetwork* graph) : graph_(graph) {}

  double QueryByLabels(VertexId u, VertexId v) const;

  const RoadNetwork* graph_;
  // CSR label storage: vertex v's label occupies [offsets_[v], offsets_[v+1])
  // in hub_rank_/hub_dist_, sorted by hub rank ascending (ranks are
  // positions in the build order, so lists are sorted by construction).
  std::vector<std::int64_t> offsets_;
  std::vector<VertexId> hub_rank_;
  std::vector<double> hub_dist_;
};

}  // namespace urpsm

#endif  // URPSM_SRC_SHORTEST_HUB_LABELS_H_
