#include "src/shortest/dijkstra.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace urpsm {

namespace {

using HeapEntry = std::pair<double, VertexId>;  // (distance, vertex)
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

std::vector<double> DijkstraAll(const RoadNetwork& graph, VertexId source) {
  std::vector<double> dist(static_cast<std::size_t>(graph.num_vertices()),
                           kInfDistance);
  dist[static_cast<std::size_t>(source)] = 0.0;
  MinHeap heap;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& arc : graph.Neighbors(u)) {
      const double nd = d + arc.cost;
      if (nd < dist[static_cast<std::size_t>(arc.to)]) {
        dist[static_cast<std::size_t>(arc.to)] = nd;
        heap.push({nd, arc.to});
      }
    }
  }
  return dist;
}

double DijkstraDistance(const RoadNetwork& graph, VertexId source,
                        VertexId target) {
  if (source == target) return 0.0;
  std::vector<double> dist(static_cast<std::size_t>(graph.num_vertices()),
                           kInfDistance);
  dist[static_cast<std::size_t>(source)] = 0.0;
  MinHeap heap;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (u == target) return d;
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& arc : graph.Neighbors(u)) {
      const double nd = d + arc.cost;
      if (nd < dist[static_cast<std::size_t>(arc.to)]) {
        dist[static_cast<std::size_t>(arc.to)] = nd;
        heap.push({nd, arc.to});
      }
    }
  }
  return kInfDistance;
}

std::vector<VertexId> DijkstraPath(const RoadNetwork& graph, VertexId source,
                                   VertexId target) {
  if (source == target) return {source};
  std::vector<double> dist(static_cast<std::size_t>(graph.num_vertices()),
                           kInfDistance);
  std::vector<VertexId> parent(static_cast<std::size_t>(graph.num_vertices()),
                               kInvalidVertex);
  dist[static_cast<std::size_t>(source)] = 0.0;
  MinHeap heap;
  heap.push({0.0, source});
  bool found = false;
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (u == target) {
      found = true;
      break;
    }
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& arc : graph.Neighbors(u)) {
      const double nd = d + arc.cost;
      if (nd < dist[static_cast<std::size_t>(arc.to)]) {
        dist[static_cast<std::size_t>(arc.to)] = nd;
        parent[static_cast<std::size_t>(arc.to)] = u;
        heap.push({nd, arc.to});
      }
    }
  }
  if (!found) return {};
  std::vector<VertexId> path;
  for (VertexId v = target; v != kInvalidVertex;
       v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace urpsm
