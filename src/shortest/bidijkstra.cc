#include "src/shortest/bidijkstra.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "src/shortest/dijkstra.h"

namespace urpsm {

double BidirectionalDistance(const RoadNetwork& graph, VertexId source,
                             VertexId target) {
  if (source == target) return 0.0;
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  std::vector<double> dist_f(n, kInfDistance), dist_b(n, kInfDistance);
  std::vector<bool> settled_f(n, false), settled_b(n, false);
  using HeapEntry = std::pair<double, VertexId>;
  using MinHeap =
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;
  MinHeap heap_f, heap_b;
  dist_f[static_cast<std::size_t>(source)] = 0.0;
  dist_b[static_cast<std::size_t>(target)] = 0.0;
  heap_f.push({0.0, source});
  heap_b.push({0.0, target});

  double best = kInfDistance;
  while (!heap_f.empty() || !heap_b.empty()) {
    const double top_f = heap_f.empty() ? kInfDistance : heap_f.top().first;
    const double top_b = heap_b.empty() ? kInfDistance : heap_b.top().first;
    if (top_f + top_b >= best) break;

    const bool forward = top_f <= top_b;
    auto& heap = forward ? heap_f : heap_b;
    auto& dist = forward ? dist_f : dist_b;
    auto& other_dist = forward ? dist_b : dist_f;
    auto& settled = forward ? settled_f : settled_b;

    auto [d, u] = heap.top();
    heap.pop();
    const auto ui = static_cast<std::size_t>(u);
    if (settled[ui]) continue;
    settled[ui] = true;
    if (other_dist[ui] < kInfDistance) {
      best = std::min(best, d + other_dist[ui]);
    }
    for (const auto& arc : graph.Neighbors(u)) {
      const auto vi = static_cast<std::size_t>(arc.to);
      const double nd = d + arc.cost;
      if (nd < dist[vi]) {
        dist[vi] = nd;
        heap.push({nd, arc.to});
      }
    }
  }
  return best;
}

}  // namespace urpsm
