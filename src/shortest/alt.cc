#include "src/shortest/alt.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "src/shortest/dijkstra.h"

namespace urpsm {

AltOracle AltOracle::Build(const RoadNetwork& graph, int num_landmarks) {
  AltOracle alt;
  alt.graph_ = &graph;
  const VertexId n = graph.num_vertices();
  num_landmarks = std::min(num_landmarks, static_cast<int>(n));

  // Farthest selection: start from vertex 0's farthest vertex, then
  // repeatedly take the vertex maximizing the min distance to the chosen
  // landmarks. Unreachable vertices (infinite distance) are skipped so
  // disconnected graphs still get usable landmarks.
  std::vector<double> min_dist(static_cast<std::size_t>(n), kInfDistance);
  VertexId next = 0;
  for (int l = 0; l < num_landmarks; ++l) {
    alt.landmarks_.push_back(next);
    alt.dist_.push_back(DijkstraAll(graph, next));
    const auto& d = alt.dist_.back();
    VertexId best = kInvalidVertex;
    double best_d = -1.0;
    for (VertexId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (d[vi] < min_dist[vi]) min_dist[vi] = d[vi];
      if (min_dist[vi] < kInfDistance && min_dist[vi] > best_d) {
        best_d = min_dist[vi];
        best = v;
      }
    }
    if (best == kInvalidVertex || best_d <= 0.0) break;  // graph exhausted
    next = best;
  }
  return alt;
}

double AltOracle::Heuristic(VertexId v, VertexId target) const {
  double h = 0.0;
  for (std::size_t l = 0; l < landmarks_.size(); ++l) {
    const double dv = dist_[l][static_cast<std::size_t>(v)];
    const double dt = dist_[l][static_cast<std::size_t>(target)];
    if (dv == kInfDistance || dt == kInfDistance) continue;
    h = std::max(h, std::abs(dt - dv));
  }
  return h;
}

double AltOracle::AStar(VertexId s, VertexId t,
                        std::vector<VertexId>* parent) const {
  const auto n = static_cast<std::size_t>(graph_->num_vertices());
  std::vector<double> g(n, kInfDistance);
  if (parent != nullptr) parent->assign(n, kInvalidVertex);
  using HeapEntry = std::pair<double, VertexId>;  // (f = g + h, vertex)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  g[static_cast<std::size_t>(s)] = 0.0;
  heap.push({Heuristic(s, t), s});
  while (!heap.empty()) {
    auto [f, u] = heap.top();
    heap.pop();
    const auto ui = static_cast<std::size_t>(u);
    if (u == t) return g[ui];
    if (f > g[ui] + Heuristic(u, t) + 1e-12) continue;  // stale entry
    for (const auto& arc : graph_->Neighbors(u)) {
      const auto vi = static_cast<std::size_t>(arc.to);
      const double ng = g[ui] + arc.cost;
      if (ng < g[vi]) {
        g[vi] = ng;
        if (parent != nullptr) (*parent)[vi] = u;
        heap.push({ng + Heuristic(arc.to, t), arc.to});
      }
    }
  }
  return kInfDistance;
}

double AltOracle::Distance(VertexId u, VertexId v) {
  ++query_count_;
  if (u == v) return 0.0;
  return AStar(u, v, nullptr);
}

std::vector<VertexId> AltOracle::Path(VertexId u, VertexId v) {
  if (u == v) return {u};
  std::vector<VertexId> parent;
  if (AStar(u, v, &parent) == kInfDistance) return {};
  std::vector<VertexId> path;
  for (VertexId x = v; x != kInvalidVertex;
       x = parent[static_cast<std::size_t>(x)]) {
    path.push_back(x);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::int64_t AltOracle::MemoryBytes() const {
  std::int64_t total = 0;
  for (const auto& d : dist_) {
    total += static_cast<std::int64_t>(d.capacity() * sizeof(double));
  }
  return total;
}

}  // namespace urpsm
