#include "src/shortest/oracle.h"

#include "src/obs/registry.h"
#include "src/shortest/bidijkstra.h"
#include "src/shortest/dijkstra.h"
#include "src/util/fault.h"

namespace urpsm {

double DijkstraOracle::Distance(VertexId u, VertexId v) {
  ++query_count_;
  return BidirectionalDistance(*graph_, u, v);
}

std::vector<VertexId> DijkstraOracle::Path(VertexId u, VertexId v) {
  return DijkstraPath(*graph_, u, v);
}

thread_local std::int64_t* CachedOracle::bill_sink_ = nullptr;

double CachedOracle::Distance(VertexId u, VertexId v) {
  MaybeInject(faults_, FaultSite::kOracleDelay);
  if (bill_sink_ != nullptr) {
    ++*bill_sink_;
  } else {
    ++query_count_;
  }
  if (u == v) return 0.0;
  // The network is undirected: canonicalize the key.
  const std::pair<VertexId, VertexId> key =
      u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  if (auto hit = cache_.Get(key)) return *hit;
  const double d = inner_->Distance(u, v);
  cache_.Put(key, d);
  return d;
}

void CachedOracle::BatchQuery(const std::vector<VertexId>& sources,
                              const std::vector<VertexId>& targets,
                              std::vector<double>* out) {
  MaybeInject(faults_, FaultSite::kOracleDelay);
  const std::size_t ns = sources.size();
  const std::size_t nt = targets.size();
  const auto pairs = static_cast<std::int64_t>(ns) * static_cast<std::int64_t>(nt);
  if (bill_sink_ != nullptr) {
    *bill_sink_ += pairs;
  } else {
    query_count_.fetch_add(pairs, std::memory_order_relaxed);
  }
  out->assign(ns * nt, 0.0);
  // Per-target miss list: unique missing sources plus the out cells each
  // fills. A repeated (s, t) miss consults the inner oracle once, exactly
  // like sequential point queries (where the second call hits the cache).
  std::vector<VertexId> miss_sources;
  std::vector<std::vector<std::size_t>> miss_cells;
  std::vector<double> col;
  std::vector<VertexId> one_target(1);
  for (std::size_t j = 0; j < nt; ++j) {
    const VertexId t = targets[j];
    miss_sources.clear();
    miss_cells.clear();
    for (std::size_t i = 0; i < ns; ++i) {
      const VertexId s = sources[i];
      const std::size_t cell = i * nt + j;
      if (s == t) continue;  // cell already 0.0
      const std::pair<VertexId, VertexId> key =
          s < t ? std::make_pair(s, t) : std::make_pair(t, s);
      if (auto hit = cache_.Get(key)) {
        (*out)[cell] = *hit;
        continue;
      }
      bool pending = false;
      for (std::size_t m = 0; m < miss_sources.size(); ++m) {
        if (miss_sources[m] == s) {
          miss_cells[m].push_back(cell);
          pending = true;
          break;
        }
      }
      if (!pending) {
        miss_sources.push_back(s);
        miss_cells.push_back({cell});
      }
    }
    if (miss_sources.empty()) continue;
    one_target[0] = t;
    inner_->BatchQuery(miss_sources, one_target, &col);
    for (std::size_t m = 0; m < miss_sources.size(); ++m) {
      const VertexId s = miss_sources[m];
      const std::pair<VertexId, VertexId> key =
          s < t ? std::make_pair(s, t) : std::make_pair(t, s);
      cache_.Put(key, col[m]);
      for (const std::size_t cell : miss_cells[m]) (*out)[cell] = col[m];
    }
  }
}

std::vector<VertexId> CachedOracle::Path(VertexId u, VertexId v) {
  return inner_->Path(u, v);
}

void CachedOracle::RegisterMetrics(obs::Registry* reg) {
  if (reg == nullptr || !reg->enabled()) return;
  reg->RegisterCallbackGauge(
      "oracle.queries",
      [this] { return static_cast<double>(query_count()); });
  reg->RegisterCallbackGauge(
      "oracle.cache_hits",
      [this] { return static_cast<double>(cache_hits()); });
  reg->RegisterCallbackGauge(
      "oracle.cache_misses",
      [this] { return static_cast<double>(cache_misses()); });
  reg->RegisterCallbackGauge("oracle.cache_hit_rate", [this] {
    const double h = static_cast<double>(cache_hits());
    const double m = static_cast<double>(cache_misses());
    return h + m == 0.0 ? 0.0 : h / (h + m);  // 0, not NaN, before traffic
  });
}

}  // namespace urpsm
