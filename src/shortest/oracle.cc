#include "src/shortest/oracle.h"

#include "src/shortest/bidijkstra.h"
#include "src/shortest/dijkstra.h"

namespace urpsm {

double DijkstraOracle::Distance(VertexId u, VertexId v) {
  ++query_count_;
  return BidirectionalDistance(*graph_, u, v);
}

std::vector<VertexId> DijkstraOracle::Path(VertexId u, VertexId v) {
  return DijkstraPath(*graph_, u, v);
}

thread_local std::int64_t* CachedOracle::bill_sink_ = nullptr;

double CachedOracle::Distance(VertexId u, VertexId v) {
  if (bill_sink_ != nullptr) {
    ++*bill_sink_;
  } else {
    ++query_count_;
  }
  if (u == v) return 0.0;
  // The network is undirected: canonicalize the key.
  const std::pair<VertexId, VertexId> key =
      u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  if (auto hit = cache_.Get(key)) return *hit;
  const double d = inner_->Distance(u, v);
  cache_.Put(key, d);
  return d;
}

std::vector<VertexId> CachedOracle::Path(VertexId u, VertexId v) {
  return inner_->Path(u, v);
}

}  // namespace urpsm
