#include "src/shortest/oracle.h"

#include "src/obs/registry.h"
#include "src/shortest/bidijkstra.h"
#include "src/shortest/dijkstra.h"
#include "src/util/fault.h"

namespace urpsm {

double DijkstraOracle::Distance(VertexId u, VertexId v) {
  ++query_count_;
  return BidirectionalDistance(*graph_, u, v);
}

std::vector<VertexId> DijkstraOracle::Path(VertexId u, VertexId v) {
  return DijkstraPath(*graph_, u, v);
}

thread_local std::int64_t* CachedOracle::bill_sink_ = nullptr;

double CachedOracle::Distance(VertexId u, VertexId v) {
  MaybeInject(faults_, FaultSite::kOracleDelay);
  if (bill_sink_ != nullptr) {
    ++*bill_sink_;
  } else {
    ++query_count_;
  }
  if (u == v) return 0.0;
  // The network is undirected: canonicalize the key.
  const std::pair<VertexId, VertexId> key =
      u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  if (auto hit = cache_.Get(key)) return *hit;
  const double d = inner_->Distance(u, v);
  cache_.Put(key, d);
  return d;
}

std::vector<VertexId> CachedOracle::Path(VertexId u, VertexId v) {
  return inner_->Path(u, v);
}

void CachedOracle::RegisterMetrics(obs::Registry* reg) {
  if (reg == nullptr || !reg->enabled()) return;
  reg->RegisterCallbackGauge(
      "oracle.queries",
      [this] { return static_cast<double>(query_count()); });
  reg->RegisterCallbackGauge(
      "oracle.cache_hits",
      [this] { return static_cast<double>(cache_hits()); });
  reg->RegisterCallbackGauge(
      "oracle.cache_misses",
      [this] { return static_cast<double>(cache_misses()); });
  reg->RegisterCallbackGauge("oracle.cache_hit_rate", [this] {
    const double h = static_cast<double>(cache_hits());
    const double m = static_cast<double>(cache_misses());
    return h + m == 0.0 ? 0.0 : h / (h + m);  // 0, not NaN, before traffic
  });
}

}  // namespace urpsm
