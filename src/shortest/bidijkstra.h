#ifndef URPSM_SRC_SHORTEST_BIDIJKSTRA_H_
#define URPSM_SRC_SHORTEST_BIDIJKSTRA_H_

#include "src/graph/road_network.h"

namespace urpsm {

/// Point-to-point shortest travel time via bidirectional Dijkstra.
/// Roughly halves the search space of plain Dijkstra on road networks;
/// exact (the graph is undirected, so forward/backward searches are
/// symmetric). Returns kInfDistance when unreachable.
double BidirectionalDistance(const RoadNetwork& graph, VertexId source,
                             VertexId target);

}  // namespace urpsm

#endif  // URPSM_SRC_SHORTEST_BIDIJKSTRA_H_
