#include <vector>

#include "src/insertion/insertion.h"

namespace urpsm {

// Algo. 3: linear DP insertion. A single pass over drop-off positions j;
// the cheapest feasible pickup position i < j is maintained incrementally
// by the dynamic program Dio/Plc (Eq. 11-12). Lemma 6 guarantees that if
// the stored minimal-detour candidate violates the pairing constraints of
// Corollary 1, every other candidate does too, so one O(1) check per j
// suffices. Total O(n) time and at most 2n + 1 distance queries: dis(l_k,
// o_r) and dis(l_k, d_r) for k = 0..n (l_0 = anchor shares no query with
// the legs, which come from the route's cache) plus L = dis(o_r, d_r).
InsertionCandidate LinearDpInsertion(const Worker& worker, const Route& route,
                                     const RouteState& st, const Request& r,
                                     PlanningContext* ctx) {
  InsertionCandidate best;
  const int n = st.n;
  const int cap = worker.capacity - r.capacity;
  if (cap < 0) return best;
  const double L = ctx->DirectDist(r.id);
  const auto leg = [&](int k) {
    return route.leg_costs()[static_cast<std::size_t>(k)];
  };

  // dis(l_k, o_r) / dis(l_k, d_r), filled on demand as the scan advances.
  std::vector<double> d_o(static_cast<std::size_t>(n + 1), -1.0);
  std::vector<double> d_d(static_cast<std::size_t>(n + 1), -1.0);
  const auto dist_o = [&](int k) -> double {
    auto& slot = d_o[static_cast<std::size_t>(k)];
    if (slot < 0.0) slot = ctx->Dist(route.VertexAt(k), r.origin);
    return slot;
  };
  const auto dist_d = [&](int k) -> double {
    auto& slot = d_d[static_cast<std::size_t>(k)];
    if (slot < 0.0) slot = ctx->Dist(route.VertexAt(k), r.destination);
    return slot;
  };

  double dio = kInf;  // Dio[j]: min feasible det(l_i, o_r, l_{i+1}), i < j
  int plc = -1;       // Plc[j]: the i achieving Dio[j]

  for (int j = 0; j <= n; ++j) {
    const auto js = static_cast<std::size_t>(j);
    // Any placement at positions >= j arrives after r's deadline.
    if (st.arr[js] > r.deadline) break;

    // --- Cases i == j (Fig. 2a / 2b), O(1) each (line 4 of Algo. 3). ---
    if (st.picked[js] <= cap &&
        st.arr[js] + dist_o(j) + L <= r.deadline) {
      const double delta = (j == n)
                               ? dist_o(j) + L
                               : dist_o(j) + L + dist_d(j + 1) - leg(j);
      const bool others_ok = j == n || delta <= st.slack[js];
      if (others_ok && delta < best.delta) best = {delta, j, j};
    }

    // --- General case: pair the stored best pickup with drop-off j. ---
    if (j > 0 && dio < kInf) {
      // Corollary 1: (1) capacity through j, (2) r's deadline, (3) slack
      // of stops after j.
      const bool cap_ok = st.picked[js] <= cap;
      const bool ddl_ok = st.arr[js] + dio + dist_d(j) <= r.deadline;
      const double det_d =
          (j == n) ? dist_d(j) : dist_d(j) + dist_d(j + 1) - leg(j);
      const bool slack_ok = j == n || dio + det_d <= st.slack[js];
      if (cap_ok && ddl_ok && slack_ok) {
        const double delta = dio + det_d;
        if (delta < best.delta) best = {delta, plc, j};
      }
    }

    // --- DP transition to Dio[j+1] / Plc[j+1] (Eq. 11-12). ---
    if (j < n) {
      if (st.picked[js] > cap) {
        // Lemma 5: r cannot remain on board across segment j -> j+1;
        // every candidate i <= j dies.
        dio = kInf;
        plc = -1;
      } else {
        const double det = dist_o(j) + dist_o(j + 1) - leg(j);
        // Lemma 4 (2): candidate i = j must not exhaust later slacks.
        if (det <= st.slack[js] && det < dio) {
          dio = det;
          plc = j;
        }
      }
    }
  }
  return best;
}

}  // namespace urpsm
