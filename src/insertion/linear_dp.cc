#include "src/insertion/insertion.h"

namespace urpsm {

// Algo. 3: linear DP insertion. A single pass over drop-off positions j;
// the cheapest feasible pickup position i < j is maintained incrementally
// by the dynamic program Dio/Plc (Eq. 11-12). Lemma 6 guarantees that if
// the stored minimal-detour candidate violates the pairing constraints of
// Corollary 1, every other candidate does too, so one O(1) check per j
// suffices. Total O(n) time over flat inputs: dis(l_k, o_r) / dis(l_k, d_r)
// come pre-gathered in `cols` (2n + 2 queries paid once per (route,
// request), Lemma 9's budget), the legs from the route's cache, and L from
// the per-request direct-distance cache — the scan itself touches no hash
// table and takes no lock.
InsertionCandidate LinearDpInsertion(const Worker& worker, const Route& route,
                                     const RouteState& st, const Request& r,
                                     const DistanceColumns& cols,
                                     PlanningContext* ctx) {
  InsertionCandidate best;
  const int n = st.n;
  const int cap = worker.capacity - r.capacity;
  if (cap < 0) return best;
  const double L = ctx->DirectDist(r.id);
  const double* legs = route.leg_costs().data();
  const double* d_o = cols.to_origin.data();
  const double* d_d = cols.to_destination.data();
  const double* arr = st.arr.data();
  const double* slack = st.slack.data();
  const int* picked = st.picked.data();

  double dio = kInf;  // Dio[j]: min feasible det(l_i, o_r, l_{i+1}), i < j
  int plc = -1;       // Plc[j]: the i achieving Dio[j]

  for (int j = 0; j <= n; ++j) {
    const auto js = static_cast<std::size_t>(j);
    // Any placement at positions >= j arrives after r's deadline.
    if (arr[js] > r.deadline) break;

    // --- Cases i == j (Fig. 2a / 2b), O(1) each (line 4 of Algo. 3). ---
    if (picked[js] <= cap && arr[js] + d_o[js] + L <= r.deadline) {
      const double delta = (j == n)
                               ? d_o[js] + L
                               : d_o[js] + L + d_d[js + 1] - legs[js];
      const bool others_ok = j == n || delta <= slack[js];
      if (others_ok && delta < best.delta) best = {delta, j, j};
    }

    // --- General case: pair the stored best pickup with drop-off j. ---
    if (j > 0 && dio < kInf) {
      // Corollary 1: (1) capacity through j, (2) r's deadline, (3) slack
      // of stops after j.
      const bool cap_ok = picked[js] <= cap;
      const bool ddl_ok = arr[js] + dio + d_d[js] <= r.deadline;
      const double det_d =
          (j == n) ? d_d[js] : d_d[js] + d_d[js + 1] - legs[js];
      const bool slack_ok = j == n || dio + det_d <= slack[js];
      if (cap_ok && ddl_ok && slack_ok) {
        const double delta = dio + det_d;
        if (delta < best.delta) best = {delta, plc, j};
      }
    }

    // --- DP transition to Dio[j+1] / Plc[j+1] (Eq. 11-12). ---
    if (j < n) {
      if (picked[js] > cap) {
        // Lemma 5: r cannot remain on board across segment j -> j+1;
        // every candidate i <= j dies.
        dio = kInf;
        plc = -1;
      } else {
        const double det = d_o[js] + d_o[js + 1] - legs[js];
        // Lemma 4 (2): candidate i = j must not exhaust later slacks.
        if (det <= slack[js] && det < dio) {
          dio = det;
          plc = j;
        }
      }
    }
  }
  return best;
}

}  // namespace urpsm
