#include "src/insertion/insertion.h"

namespace urpsm {

// Algo. 1: enumerate every (i, j) pair, build the candidate stop sequence,
// and validate it from scratch. O(n^3) time (O(n^3 q) with O(q) distance
// queries); kept deliberately naive as the paper's baseline and as ground
// truth for the DP implementations.
InsertionCandidate BasicInsertion(const Worker& worker, const Route& route,
                                  const Request& r, PlanningContext* ctx) {
  InsertionCandidate best;
  const int n = route.size();
  const int onboard = route.OnboardAtAnchor(ctx->requests());
  const Stop pickup{r.origin, r.id, StopKind::kPickup};
  const Stop dropoff{r.destination, r.id, StopKind::kDropoff};
  const double base_cost = route.RemainingCost();

  std::vector<Stop> candidate;
  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      candidate.assign(route.stops().begin(), route.stops().end());
      candidate.insert(candidate.begin() + j, dropoff);
      candidate.insert(candidate.begin() + i, pickup);
      double cost = 0.0;
      if (!ValidateStops(route.anchor(), route.anchor_time(), candidate,
                         worker.capacity, onboard, ctx, &cost)) {
        continue;
      }
      const double delta = cost - base_cost;
      if (delta < best.delta) {
        best.delta = delta;
        best.i = i;
        best.j = j;
      }
    }
  }
  return best;
}

}  // namespace urpsm
