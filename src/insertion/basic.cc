#include <algorithm>
#include <vector>

#include "src/insertion/insertion.h"

namespace urpsm {

// Algo. 1: enumerate every (i, j) pair and validate the implied stop
// sequence from scratch. O(n^3) time; kept deliberately naive as the
// paper's baseline and as ground truth for the DP implementations — the
// per-candidate walk below re-derives the schedule, capacity profile and
// pairing constraints from the raw stop sequence with exactly the checks
// (and check order) of ValidateStops, independent of the RouteState
// machinery the DPs rely on.
//
// Unlike the DPs it used to issue O(n) distance queries per candidate
// (O(n^3) total) and build a candidate stop vector per pair. The flat hot
// path gathers everything once — the two endpoint columns, one freshly
// queried leg array and L — and every candidate walk then indexes flat
// arrays only: O(n) fresh queries total and zero per-candidate
// allocations, with bit-identical accept/reject decisions and deltas
// (same oracle values accumulated in the same left-to-right order).
InsertionCandidate BasicInsertion(const Worker& worker, const Route& route,
                                  const Request& r, PlanningContext* ctx) {
  InsertionCandidate best;
  const int n = route.size();
  const int onboard = route.OnboardAtAnchor(*ctx);
  const double base_cost = route.RemainingCost();
  const std::vector<Stop>& stops = route.stops();

  // One prepass over the original stops. pickup_before[m]: the drop-off at
  // original stop index m has its pickup earlier in the route (insertion
  // preserves the originals' order, so this is position-independent).
  // Along the way, detect pickups that would duplicate — either r's own id
  // or a repeated original pickup: ground truth rejects every candidate
  // containing a duplicate pickup, so the whole enumeration can bail out.
  thread_local std::vector<char> pickup_before;
  pickup_before.assign(static_cast<std::size_t>(n), 0);
  {
    thread_local std::vector<RequestId> seen;
    seen.clear();
    for (int m = 0; m < n; ++m) {
      const Stop& s = stops[static_cast<std::size_t>(m)];
      const bool seen_before =
          std::find(seen.begin(), seen.end(), s.request) != seen.end();
      if (s.kind == StopKind::kPickup) {
        if (s.request == r.id || seen_before) return best;
        seen.push_back(s.request);
      } else if (seen_before) {
        pickup_before[static_cast<std::size_t>(m)] = 1;
      }
    }
  }

  // Flat distance inputs, gathered once: endpoint columns, fresh legs
  // (ground truth re-queries the legs rather than trusting the route's
  // cache) and the direct distance L.
  DistanceColumns* cols = ThreadLocalDistanceColumns();
  GatherDistanceColumns(route, r, ctx, cols);
  const double* d_o = cols->to_origin.data();
  const double* d_d = cols->to_destination.data();
  thread_local std::vector<double> fresh_legs;
  fresh_legs.resize(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    fresh_legs[static_cast<std::size_t>(k)] =
        ctx->Dist(route.VertexAt(k), route.VertexAt(k + 1));
  }
  const double L = ctx->Dist(r.origin, r.destination);

  // Validates the candidate "pickup after position i, drop-off after
  // position j" by walking its n+2 stops. Candidate stop index q holds the
  // pickup at q == i, the drop-off at q == j + 1, and original stop
  // q / q-1 / q-2 otherwise; the leg into q is picked from the flat
  // arrays by which of the three the source and target are.
  const auto walk = [&](int i, int j, double* cost_out) -> bool {
    double t = route.anchor_time();
    double cost = 0.0;
    int load = onboard;
    for (int q = 0; q < n + 2; ++q) {
      if (q == i) {  // r's pickup; source is route position i
        const double leg = d_o[i];
        t += leg;
        cost += leg;
        load += r.capacity;
        if (load > worker.capacity) return false;
      } else if (q == j + 1) {  // r's drop-off
        const double leg = (j == i) ? L : d_d[j];
        t += leg;
        cost += leg;
        load -= r.capacity;
        if (load < 0) return false;
        if (t > r.deadline) return false;
      } else {  // original stop, index m in the unmodified route
        const int m = q < i ? q : (q <= j ? q - 1 : q - 2);
        double leg;
        if (q - 1 == i) {  // source is r's pickup
          leg = d_o[m + 1];
        } else if (q - 1 == j + 1) {  // source is r's drop-off
          leg = d_d[m + 1];
        } else {  // source is route position m (anchor or original stop)
          leg = fresh_legs[static_cast<std::size_t>(m)];
        }
        t += leg;
        cost += leg;
        const Stop& s = stops[static_cast<std::size_t>(m)];
        const Request& sr = ctx->request(s.request);
        if (s.kind == StopKind::kPickup) {
          load += sr.capacity;
          if (load > worker.capacity) return false;
        } else {
          const bool picked_in_route =
              pickup_before[static_cast<std::size_t>(m)] != 0 ||
              (s.request == r.id && m >= i);
          if (!picked_in_route && onboard == 0) return false;
          load -= sr.capacity;
          if (load < 0) return false;
          if (t > sr.deadline) return false;
        }
      }
    }
    *cost_out = cost;
    return true;
  };

  for (int i = 0; i <= n; ++i) {
    for (int j = i; j <= n; ++j) {
      double cost = 0.0;
      if (!walk(i, j, &cost)) continue;
      const double delta = cost - base_cost;
      if (delta < best.delta) {
        best.delta = delta;
        best.i = i;
        best.j = j;
      }
    }
  }
  return best;
}

}  // namespace urpsm
