#ifndef URPSM_SRC_INSERTION_INSERTION_H_
#define URPSM_SRC_INSERTION_INSERTION_H_

#include <vector>

#include "src/model/feasibility.h"
#include "src/model/route.h"
#include "src/model/types.h"

namespace urpsm {

/// Flat per-request distance columns over route positions 0..n:
///   to_origin[k]      = dis(l_k, o_r)
///   to_destination[k] = dis(l_k, d_r)
/// Gathered once per (route, request) before the i/j insertion scan so the
/// operators index a flat column instead of calling the (locked) shared
/// distance cache per slot. The road network is undirected, so one column
/// serves both directions of every detour term.
struct DistanceColumns {
  std::vector<double> to_origin;
  std::vector<double> to_destination;
};

/// Fills `cols` with the endpoint distances of inserting `r` into `route`
/// for route positions 0..max_pos (max_pos = route.size() gathers the full
/// 2(n+1), Lemma 9's budget), reusing the columns' capacity. Callers whose
/// scan provably stops early — the linear DP breaks at the first position
/// past r's deadline — pass a smaller max_pos so pruned candidates don't
/// pay shared-cache queries for positions never read.
void GatherDistanceColumns(const Route& route, const Request& r,
                           PlanningContext* ctx, DistanceColumns* cols,
                           int max_pos);
inline void GatherDistanceColumns(const Route& route, const Request& r,
                                  PlanningContext* ctx,
                                  DistanceColumns* cols) {
  GatherDistanceColumns(route, r, ctx, cols, route.size());
}

/// The original per-pair gather loop, kept verbatim as ground truth: tests
/// fuzz-pin GatherDistanceColumns (which routes through the oracle's
/// batched multi-source sweep) bit-identical to this.
void GatherDistanceColumnsReference(const Route& route, const Request& r,
                                    PlanningContext* ctx,
                                    DistanceColumns* cols, int max_pos);

/// First route position of `st` whose arrival already misses r's deadline
/// (== st.n when none does). LinearDpInsertion's scan breaks there and
/// looks one position ahead at most, so columns past the cutoff are never
/// read; gathers bounded by it issue no wasted queries.
inline int InsertionCutoff(const RouteState& st, const Request& r) {
  int cutoff = 0;
  while (cutoff < st.n &&
         st.arr[static_cast<std::size_t>(cutoff)] <= r.deadline) {
    ++cutoff;
  }
  return cutoff;
}

/// Multi-route gather: fills (*cols)[c] for every candidate route of one
/// request with a single multi-source BatchDist sweep — sources are the
/// concatenated route positions up to each route's max_pos[c], targets are
/// {o_r, d_r}. Cell values and the billed query count are identical to
/// gathering each route separately via GatherDistanceColumns; only the
/// order in which the shared cache sees the pairs changes. `cols` is
/// resized to routes.size(); per-candidate columns reuse their capacity.
void GatherDistanceColumnsMulti(const std::vector<const Route*>& routes,
                                const std::vector<int>& max_pos,
                                const Request& r, PlanningContext* ctx,
                                std::vector<DistanceColumns>* cols);

/// Reusable thread-local scratch columns. The operator overloads without an
/// explicit columns argument gather into these, so steady-state planning
/// allocates nothing per candidate. The pointer stays valid for the thread's
/// lifetime; contents are overwritten by the next gather on this thread.
DistanceColumns* ThreadLocalDistanceColumns();

/// Result of an insertion evaluation (Def. 6): the cheapest feasible
/// placement of the request's pickup (after route position i) and drop-off
/// (after position j, i <= j), and the route-distance increase delta.
/// An infeasible result has delta == kInf and i == j == -1.
struct InsertionCandidate {
  double delta = kInf;
  int i = -1;
  int j = -1;

  bool feasible() const { return delta < kInf; }
};

/// O(n^3) basic insertion (Algo. 1, Jaw et al. [27][28]): enumerates all
/// O(n^2) placements and validates each candidate route from scratch.
/// Ground truth for the DP variants.
InsertionCandidate BasicInsertion(const Worker& worker, const Route& route,
                                  const Request& r, PlanningContext* ctx);

/// O(n^2) naive DP insertion (Algo. 2): same enumeration, but O(1)
/// feasibility checks and O(1) delta via the arr/ddl/slack/picked arrays.
InsertionCandidate NaiveDpInsertion(const Worker& worker, const Route& route,
                                    const Request& r, PlanningContext* ctx);

/// O(n) linear DP insertion (Algo. 3): enumerates only drop-off positions
/// and finds the best pickup position in O(1) with the Dio/Plc dynamic
/// program (Eq. 11-12, Lemma 6, Corollary 1). Issues at most 2n+1
/// shortest-distance queries (Lemma 9).
InsertionCandidate LinearDpInsertion(const Worker& worker, const Route& route,
                                     const Request& r, PlanningContext* ctx);

/// Variants taking a prebuilt RouteState (for callers that already have
/// it, e.g. the planners' fleet-cached state); the distance columns are
/// gathered into the thread-local scratch.
InsertionCandidate NaiveDpInsertion(const Worker& worker, const Route& route,
                                    const RouteState& st, const Request& r,
                                    PlanningContext* ctx);
InsertionCandidate LinearDpInsertion(const Worker& worker, const Route& route,
                                     const RouteState& st, const Request& r,
                                     PlanningContext* ctx);

/// Core variants taking prebuilt state AND prebuilt distance columns
/// (cols must hold n+1 entries per column for this route). These issue no
/// endpoint distance queries themselves — only the cached L_r lookup.
InsertionCandidate NaiveDpInsertion(const Worker& worker, const Route& route,
                                    const RouteState& st, const Request& r,
                                    const DistanceColumns& cols,
                                    PlanningContext* ctx);
InsertionCandidate LinearDpInsertion(const Worker& worker, const Route& route,
                                     const RouteState& st, const Request& r,
                                     const DistanceColumns& cols,
                                     PlanningContext* ctx);

/// Increased distance Delta_{i,j} of a concrete placement (Eq. 5), with no
/// feasibility checking. Exposed for tests.
double InsertionDelta(const Route& route, const Request& r, int i, int j,
                      PlanningContext* ctx);

}  // namespace urpsm

#endif  // URPSM_SRC_INSERTION_INSERTION_H_
