#ifndef URPSM_SRC_INSERTION_INSERTION_H_
#define URPSM_SRC_INSERTION_INSERTION_H_

#include "src/model/feasibility.h"
#include "src/model/route.h"
#include "src/model/types.h"

namespace urpsm {

/// Result of an insertion evaluation (Def. 6): the cheapest feasible
/// placement of the request's pickup (after route position i) and drop-off
/// (after position j, i <= j), and the route-distance increase delta.
/// An infeasible result has delta == kInf and i == j == -1.
struct InsertionCandidate {
  double delta = kInf;
  int i = -1;
  int j = -1;

  bool feasible() const { return delta < kInf; }
};

/// O(n^3) basic insertion (Algo. 1, Jaw et al. [27][28]): enumerates all
/// O(n^2) placements and validates each candidate route from scratch.
/// Ground truth for the DP variants.
InsertionCandidate BasicInsertion(const Worker& worker, const Route& route,
                                  const Request& r, PlanningContext* ctx);

/// O(n^2) naive DP insertion (Algo. 2): same enumeration, but O(1)
/// feasibility checks and O(1) delta via the arr/ddl/slack/picked arrays.
InsertionCandidate NaiveDpInsertion(const Worker& worker, const Route& route,
                                    const Request& r, PlanningContext* ctx);

/// O(n) linear DP insertion (Algo. 3): enumerates only drop-off positions
/// and finds the best pickup position in O(1) with the Dio/Plc dynamic
/// program (Eq. 11-12, Lemma 6, Corollary 1). Issues at most 2n+1
/// shortest-distance queries (Lemma 9).
InsertionCandidate LinearDpInsertion(const Worker& worker, const Route& route,
                                     const Request& r, PlanningContext* ctx);

/// Variants taking a prebuilt RouteState (for callers that already have it).
InsertionCandidate NaiveDpInsertion(const Worker& worker, const Route& route,
                                    const RouteState& st, const Request& r,
                                    PlanningContext* ctx);
InsertionCandidate LinearDpInsertion(const Worker& worker, const Route& route,
                                     const RouteState& st, const Request& r,
                                     PlanningContext* ctx);

/// Increased distance Delta_{i,j} of a concrete placement (Eq. 5), with no
/// feasibility checking. Exposed for tests.
double InsertionDelta(const Route& route, const Request& r, int i, int j,
                      PlanningContext* ctx);

}  // namespace urpsm

#endif  // URPSM_SRC_INSERTION_INSERTION_H_
