#include "src/insertion/insertion.h"

namespace urpsm {

// Algo. 2: enumerate all O(n^2) pairs (i, j); each pair is checked in O(1)
// using the auxiliary arrays (Lemmas 4 and 5) and Delta_{i,j} from Eq. (5).
// We use `continue` where the paper uses `break` on conditions (3)/(4) of
// Lemma 4: those quantities are not monotone in j (dis(l_j, d_r) can shrink
// as j grows), so continuing is required for exact equivalence with basic
// insertion. This does not change the O(n^2) bound. The endpoint distances
// dis(l_k, o_r) / dis(l_k, d_r) come pre-gathered in `cols` (the naive
// variant always needed all 2n + 2 of them), so the O(n^2) scan reads flat
// arrays only.
InsertionCandidate NaiveDpInsertion(const Worker& worker, const Route& route,
                                    const RouteState& st, const Request& r,
                                    const DistanceColumns& cols,
                                    PlanningContext* ctx) {
  InsertionCandidate best;
  const int n = st.n;
  const int cap = worker.capacity - r.capacity;
  if (cap < 0) return best;
  const double L = ctx->DirectDist(r.id);
  const double* legs = route.leg_costs().data();
  const double* d_o = cols.to_origin.data();
  const double* d_d = cols.to_destination.data();

  for (int i = 0; i <= n; ++i) {
    const auto is = static_cast<std::size_t>(i);
    // Positions at/after i are unreachable before r's deadline: no pickup
    // or drop-off placed there can ever meet it (arr is non-decreasing).
    if (st.arr[is] > r.deadline) break;
    // Lemma 5 (1): capacity on the segment l_i -> o_r -> l_{i+1}.
    if (st.picked[is] > cap) continue;
    // Lemma 4 (1), tightened with the pickup deadline of Eq. (6).
    if (st.arr[is] + d_o[is] > r.deadline - L) continue;

    // Cases i == j (Fig. 2a / 2b).
    {
      const double delta = (i == n)
                               ? d_o[is] + L
                               : d_o[is] + L + d_d[is + 1] - legs[is];
      // Lemma 4 (3): r's own drop-off deadline.
      const bool own_ok = st.arr[is] + d_o[is] + L <= r.deadline;
      // Lemma 4 (4): delay of every later stop.
      const bool others_ok = i == n || delta <= st.slack[is];
      if (own_ok && others_ok && delta < best.delta) {
        best = {delta, i, i};
      }
    }

    // General case i < j (Fig. 2c).
    if (i == n) continue;
    const double det_o = d_o[is] + d_o[is + 1] - legs[is];
    // Lemma 4 (2): the pickup detour alone must respect every later slack.
    if (det_o > st.slack[is]) continue;
    for (int j = i + 1; j <= n; ++j) {
      const auto js = static_cast<std::size_t>(j);
      // Lemma 5 (2): r is on board through position j.
      if (st.picked[js] > cap) break;
      const double det_d =
          (j == n) ? d_d[js] : d_d[js] + d_d[js + 1] - legs[js];
      const double delta = det_o + det_d;
      // Lemma 4 (3): arrival at d_r.
      if (st.arr[js] + det_o + d_d[js] > r.deadline) continue;
      // Lemma 4 (4): delay of stops after j.
      if (j < n && delta > st.slack[js]) continue;
      if (delta < best.delta) best = {delta, i, j};
    }
  }
  return best;
}

}  // namespace urpsm
