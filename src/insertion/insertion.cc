#include "src/insertion/insertion.h"

namespace urpsm {

void GatherDistanceColumns(const Route& route, const Request& r,
                           PlanningContext* ctx, DistanceColumns* cols,
                           int max_pos) {
  cols->to_origin.resize(static_cast<std::size_t>(max_pos + 1));
  cols->to_destination.resize(static_cast<std::size_t>(max_pos + 1));
  for (int k = 0; k <= max_pos; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const VertexId v = route.VertexAt(k);
    cols->to_origin[ks] = ctx->Dist(v, r.origin);
    cols->to_destination[ks] = ctx->Dist(v, r.destination);
  }
}

DistanceColumns* ThreadLocalDistanceColumns() {
  thread_local DistanceColumns cols;
  return &cols;
}

double InsertionDelta(const Route& route, const Request& r, int i, int j,
                      PlanningContext* ctx) {
  const int n = route.size();
  const auto leg = [&](int k) {
    return route.leg_costs()[static_cast<std::size_t>(k)];
  };
  if (i == j) {
    if (i == n) {
      // Fig. 2a: append at the end.
      return ctx->Dist(route.VertexAt(n), r.origin) + ctx->DirectDist(r.id);
    }
    // Fig. 2b: o and d both between l_i and l_{i+1}.
    return ctx->Dist(route.VertexAt(i), r.origin) + ctx->DirectDist(r.id) +
           ctx->Dist(r.destination, route.VertexAt(i + 1)) - leg(i);
  }
  // Fig. 2c: general case, det(l_i, o, l_{i+1}) + det(l_j, d, l_{j+1}).
  const double det_o = ctx->Dist(route.VertexAt(i), r.origin) +
                       ctx->Dist(r.origin, route.VertexAt(i + 1)) - leg(i);
  double det_d;
  if (j == n) {
    det_d = ctx->Dist(route.VertexAt(n), r.destination);
  } else {
    det_d = ctx->Dist(route.VertexAt(j), r.destination) +
            ctx->Dist(r.destination, route.VertexAt(j + 1)) - leg(j);
  }
  return det_o + det_d;
}

InsertionCandidate NaiveDpInsertion(const Worker& worker, const Route& route,
                                    const RouteState& st, const Request& r,
                                    PlanningContext* ctx) {
  DistanceColumns* cols = ThreadLocalDistanceColumns();
  GatherDistanceColumns(route, r, ctx, cols);
  return NaiveDpInsertion(worker, route, st, r, *cols, ctx);
}

InsertionCandidate LinearDpInsertion(const Worker& worker, const Route& route,
                                     const RouteState& st, const Request& r,
                                     PlanningContext* ctx) {
  DistanceColumns* cols = ThreadLocalDistanceColumns();
  // The scan breaks at the first position whose arrival already misses
  // r's deadline and looks one position ahead at most; positions beyond
  // that are never read, so don't pay queries for them.
  int cutoff = 0;
  while (cutoff < st.n &&
         st.arr[static_cast<std::size_t>(cutoff)] <= r.deadline) {
    ++cutoff;
  }
  GatherDistanceColumns(route, r, ctx, cols, cutoff);
  return LinearDpInsertion(worker, route, st, r, *cols, ctx);
}

InsertionCandidate NaiveDpInsertion(const Worker& worker, const Route& route,
                                    const Request& r, PlanningContext* ctx) {
  const RouteState st = BuildRouteState(route, ctx);
  return NaiveDpInsertion(worker, route, st, r, ctx);
}

InsertionCandidate LinearDpInsertion(const Worker& worker, const Route& route,
                                     const Request& r, PlanningContext* ctx) {
  const RouteState st = BuildRouteState(route, ctx);
  return LinearDpInsertion(worker, route, st, r, ctx);
}

}  // namespace urpsm
