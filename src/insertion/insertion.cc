#include "src/insertion/insertion.h"

namespace urpsm {

void GatherDistanceColumns(const Route& route, const Request& r,
                           PlanningContext* ctx, DistanceColumns* cols,
                           int max_pos) {
  // One multi-source sweep over the route's positions against both request
  // endpoints: label-backed oracles walk each position's label once for
  // both targets instead of twice, and bill the same 2(max_pos+1) queries
  // the per-pair loop (GatherDistanceColumnsReference) would.
  thread_local std::vector<VertexId> sources;
  thread_local std::vector<VertexId> targets;
  thread_local std::vector<double> matrix;
  sources.resize(static_cast<std::size_t>(max_pos + 1));
  for (int k = 0; k <= max_pos; ++k) {
    sources[static_cast<std::size_t>(k)] = route.VertexAt(k);
  }
  targets.assign({r.origin, r.destination});
  ctx->BatchDist(sources, targets, &matrix);
  cols->to_origin.resize(static_cast<std::size_t>(max_pos + 1));
  cols->to_destination.resize(static_cast<std::size_t>(max_pos + 1));
  for (int k = 0; k <= max_pos; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    cols->to_origin[ks] = matrix[2 * ks];
    cols->to_destination[ks] = matrix[2 * ks + 1];
  }
}

void GatherDistanceColumnsReference(const Route& route, const Request& r,
                                    PlanningContext* ctx,
                                    DistanceColumns* cols, int max_pos) {
  cols->to_origin.resize(static_cast<std::size_t>(max_pos + 1));
  cols->to_destination.resize(static_cast<std::size_t>(max_pos + 1));
  for (int k = 0; k <= max_pos; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const VertexId v = route.VertexAt(k);
    cols->to_origin[ks] = ctx->Dist(v, r.origin);
    cols->to_destination[ks] = ctx->Dist(v, r.destination);
  }
}

void GatherDistanceColumnsMulti(const std::vector<const Route*>& routes,
                                const std::vector<int>& max_pos,
                                const Request& r, PlanningContext* ctx,
                                std::vector<DistanceColumns>* cols) {
  thread_local std::vector<VertexId> sources;
  thread_local std::vector<VertexId> targets;
  thread_local std::vector<double> matrix;
  const std::size_t nc = routes.size();
  sources.clear();
  for (std::size_t c = 0; c < nc; ++c) {
    for (int k = 0; k <= max_pos[c]; ++k) {
      sources.push_back(routes[c]->VertexAt(k));
    }
  }
  targets.assign({r.origin, r.destination});
  ctx->BatchDist(sources, targets, &matrix);
  if (cols->size() < nc) cols->resize(nc);
  std::size_t at = 0;
  for (std::size_t c = 0; c < nc; ++c) {
    DistanceColumns& cc = (*cols)[c];
    const auto len = static_cast<std::size_t>(max_pos[c] + 1);
    cc.to_origin.resize(len);
    cc.to_destination.resize(len);
    for (std::size_t k = 0; k < len; ++k, ++at) {
      cc.to_origin[k] = matrix[2 * at];
      cc.to_destination[k] = matrix[2 * at + 1];
    }
  }
}

DistanceColumns* ThreadLocalDistanceColumns() {
  thread_local DistanceColumns cols;
  return &cols;
}

double InsertionDelta(const Route& route, const Request& r, int i, int j,
                      PlanningContext* ctx) {
  const int n = route.size();
  const auto leg = [&](int k) {
    return route.leg_costs()[static_cast<std::size_t>(k)];
  };
  if (i == j) {
    if (i == n) {
      // Fig. 2a: append at the end.
      return ctx->Dist(route.VertexAt(n), r.origin) + ctx->DirectDist(r.id);
    }
    // Fig. 2b: o and d both between l_i and l_{i+1}.
    return ctx->Dist(route.VertexAt(i), r.origin) + ctx->DirectDist(r.id) +
           ctx->Dist(r.destination, route.VertexAt(i + 1)) - leg(i);
  }
  // Fig. 2c: general case, det(l_i, o, l_{i+1}) + det(l_j, d, l_{j+1}).
  const double det_o = ctx->Dist(route.VertexAt(i), r.origin) +
                       ctx->Dist(r.origin, route.VertexAt(i + 1)) - leg(i);
  double det_d;
  if (j == n) {
    det_d = ctx->Dist(route.VertexAt(n), r.destination);
  } else {
    det_d = ctx->Dist(route.VertexAt(j), r.destination) +
            ctx->Dist(r.destination, route.VertexAt(j + 1)) - leg(j);
  }
  return det_o + det_d;
}

InsertionCandidate NaiveDpInsertion(const Worker& worker, const Route& route,
                                    const RouteState& st, const Request& r,
                                    PlanningContext* ctx) {
  DistanceColumns* cols = ThreadLocalDistanceColumns();
  GatherDistanceColumns(route, r, ctx, cols);
  return NaiveDpInsertion(worker, route, st, r, *cols, ctx);
}

InsertionCandidate LinearDpInsertion(const Worker& worker, const Route& route,
                                     const RouteState& st, const Request& r,
                                     PlanningContext* ctx) {
  DistanceColumns* cols = ThreadLocalDistanceColumns();
  // Positions past the deadline cutoff are never read by the scan, so
  // don't pay queries for them.
  GatherDistanceColumns(route, r, ctx, cols, InsertionCutoff(st, r));
  return LinearDpInsertion(worker, route, st, r, *cols, ctx);
}

InsertionCandidate NaiveDpInsertion(const Worker& worker, const Route& route,
                                    const Request& r, PlanningContext* ctx) {
  const RouteState st = BuildRouteState(route, ctx);
  return NaiveDpInsertion(worker, route, st, r, ctx);
}

InsertionCandidate LinearDpInsertion(const Worker& worker, const Route& route,
                                     const Request& r, PlanningContext* ctx) {
  const RouteState st = BuildRouteState(route, ctx);
  return LinearDpInsertion(worker, route, st, r, ctx);
}

}  // namespace urpsm
