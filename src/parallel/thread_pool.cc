#include "src/parallel/thread_pool.h"

#include <algorithm>

#include "src/obs/registry.h"
#include "src/util/fault.h"

namespace urpsm {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunChunks(Job* job) {
  for (;;) {
    const std::int64_t i0 = job->cursor.fetch_add(job->grain);
    if (i0 >= job->end) return;
    MaybeInject(faults_, FaultSite::kPoolTaskDelay);
    const std::int64_t i1 = std::min(job->end, i0 + job->grain);
    for (std::int64_t i = i0; i < i1; ++i) (*job->body)(i);
    if (job->finished.fetch_add(i1 - i0) + (i1 - i0) == job->total) {
      // Last chunk of the loop: wake the submitter. Locking mu_ pairs
      // with the predicate re-check in ParallelFor so the wakeup cannot
      // be lost between its predicate evaluation and its wait.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock,
                   [&] { return shutdown_ || job_epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    RunChunks(job.get());
  }
}

std::int64_t ThreadPool::pending_iterations() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!job_) return 0;
  const std::int64_t cur = job_->cursor.load(std::memory_order_relaxed);
  return cur >= job_->end ? 0 : job_->end - cur;
}

void ThreadPool::RegisterMetrics(obs::Registry* reg) {
  if (reg == nullptr || !reg->enabled()) return;
  reg->RegisterCallbackGauge(
      "pool.threads", [this] { return static_cast<double>(num_threads()); });
  reg->RegisterCallbackGauge(
      "pool.pending", [this] { return static_cast<double>(pending_iterations()); });
}

void ThreadPool::ParallelFor(std::int64_t begin, std::int64_t end,
                             const std::function<void(std::int64_t)>& body,
                             std::int64_t grain) {
  if (end <= begin) return;
  grain = std::max<std::int64_t>(1, grain);
  // Inline when there is nobody to share with or nothing worth sharing:
  // identical semantics, no synchronization.
  if (workers_.empty() || end - begin <= grain) {
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->body = &body;
  job->end = end;
  job->grain = grain;
  job->total = end - begin;
  job->cursor.store(begin);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++job_epoch_;
  }
  job_cv_.notify_all();

  RunChunks(job.get());  // the caller is one of the pool's threads

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return job->finished.load() == job->total; });
  // `body` (a reference into the caller's frame) is dead after we return,
  // but stragglers only probe cursor/end — both past the end — before
  // dropping their shared_ptr, so they never touch it.
}

}  // namespace urpsm
