#ifndef URPSM_SRC_PARALLEL_INGEST_QUEUE_H_
#define URPSM_SRC_PARALLEL_INGEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "src/model/types.h"

namespace urpsm {

namespace obs {
class CallbackGuard;
class Registry;
}  // namespace obs

/// One time-stamped request arrival flowing through the ingest stage.
struct Arrival {
  RequestId id = kInvalidRequest;
  double release_time = 0.0;  // simulated minutes (the request's release)
  /// Deadline slack at release (simulated minutes): deadline - release -
  /// Euclidean lower-bound travel time. The least-slack arrival is the
  /// least likely to still be servable, so it is the eviction victim of
  /// AdmissionPolicy::kShedOldestSlack. kInf when admission control is
  /// off (the producer then never computes it).
  double slack_min = kInf;
  /// Wall-clock enqueue instant, stamped by the producer; the consumer
  /// derives the per-arrival ingest-stage latency (queue wait) from it.
  std::chrono::steady_clock::time_point enqueued_at{};
};

/// What a producer does when the bounded queue is physically full.
///
/// kBlock is the lossless default (backpressure; the PR 7 behavior).
/// The two shedding policies also arm the engine's *deterministic*
/// admission levers (ingress slack floor, per-window admit budget — see
/// SimOptions); the queue-full branch below is the wall-clock safety
/// valve behind them and never engages when the capacity exceeds the
/// real backlog.
enum class AdmissionPolicy : int {
  kBlock = 0,           // full queue blocks the producer; nothing is shed
  kRejectAtIngress = 1, // full queue rejects the incoming arrival
  kShedOldestSlack = 2, // full queue evicts the least-slack queued arrival
};

/// Bounded MPSC arrival queue decoupling the ingest stage from the
/// planning stage of the pipelined dispatch engine.
///
/// Producers Push time-stamped arrivals; the single consumer Pops them in
/// FIFO order and assembles dispatch windows. The queue is *bounded*:
/// Push blocks while the queue is full (backpressure — arrivals are never
/// dropped, the producer is slowed instead), which caps the memory an
/// ingest burst can pin while a window is mid-plan. TryPush adds the
/// admission-policy front end: on a full queue it can reject the incoming
/// arrival or evict the least-slack queued one instead of blocking.
/// Close() ends the stream (Pop drains the remainder, then returns
/// false); Cancel() aborts it from the consumer side (blocked producers
/// wake and Push returns false — the wall-limit kill-switch path).
///
/// The implementation is a mutex + two condition variables around a
/// deque: arrivals are tiny and the per-window consumer amortizes any
/// locking cost over whole batches, so lock-free machinery would buy
/// nothing here while costing the simple blocking backpressure semantics.
class IngestQueue {
 public:
  /// Outcome of an admission-policy TryPush.
  enum class PushOutcome {
    kAdmitted,   // enqueued (possibly after evicting a victim)
    kRejected,   // queue full and the policy shed the incoming arrival
    kCancelled,  // stream aborted; nothing enqueued
  };

  explicit IngestQueue(std::size_t capacity);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Enqueues one arrival, blocking while the queue is at capacity.
  /// Returns false — without enqueuing — once the queue is cancelled.
  bool Push(const Arrival& a);

  /// Admission-policy push. kBlock behaves exactly like Push. The
  /// shedding policies never block: on a full queue kRejectAtIngress
  /// returns kRejected, and kShedOldestSlack evicts the queued arrival
  /// with the least slack (ties: lowest id) to make room — unless the
  /// incoming arrival has the least slack itself, in which case IT is
  /// the victim and kRejected is returned. Evictions count in evicted().
  PushOutcome TryPush(const Arrival& a, AdmissionPolicy policy);

  /// Dequeues the oldest arrival, blocking while the queue is empty and
  /// still open. Returns false when the stream ended: cancelled, or
  /// closed with nothing left to drain.
  bool Pop(Arrival* out);

  /// Producer side is done; consumers drain the remainder.
  void Close();
  /// Aborts the stream: wakes blocked producers and consumers, Push and
  /// Pop return false from now on (pending arrivals are discarded and
  /// counted in discarded()).
  void Cancel();

  std::size_t capacity() const { return capacity_; }
  /// Current backlog (arrivals pushed but not yet popped).
  std::size_t depth() const;
  /// Deepest the queue ever got (backlog high-water mark).
  std::size_t max_depth() const;
  /// Arrivals accepted over the queue's lifetime (evicted ones included).
  std::int64_t total_pushed() const;
  /// Push calls that had to block on a full queue (backpressure events).
  std::int64_t backpressure_waits() const;
  /// Queued arrivals evicted by kShedOldestSlack to admit a newer one.
  std::int64_t evicted() const;
  /// Pending arrivals discarded by Cancel().
  std::int64_t discarded() const;

  /// Registers pull-model gauges (ingest.depth / ingest.max_depth /
  /// ingest.total_pushed / ingest.backpressure_waits / ingest.evicted)
  /// on `reg`. The ids are tracked on `guard`, which must freeze them
  /// before this queue is destroyed. No-op when reg is null.
  void RegisterMetrics(obs::Registry* reg, obs::CallbackGuard* guard) const;

 private:
  /// Appends under mu_ and updates the shared bookkeeping.
  void EnqueueLocked(const Arrival& a);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Arrival> q_;
  bool closed_ = false;
  bool cancelled_ = false;
  std::size_t max_depth_ = 0;
  std::int64_t pushed_ = 0;
  std::int64_t backpressure_waits_ = 0;
  std::int64_t evicted_ = 0;
  std::int64_t discarded_ = 0;
};

}  // namespace urpsm

#endif  // URPSM_SRC_PARALLEL_INGEST_QUEUE_H_
