#ifndef URPSM_SRC_PARALLEL_FLEET_SHARDS_H_
#define URPSM_SRC_PARALLEL_FLEET_SHARDS_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/geo/point.h"
#include "src/model/types.h"
#include "src/sim/fleet.h"

namespace urpsm {

class FaultInjector;

namespace obs {
class Counter;
class Histogram;
class Registry;
}  // namespace obs

/// Spatial partition of the fleet for whole-request parallel planning:
/// the road network's bounding box is covered by a coarse grid of region
/// cells, the region grid is split into a fixed set of contiguous
/// rectangular tiles (one per shard), and every worker belongs to the
/// shard of the tile its route anchor lies in.
///
/// The tiles are contiguous — unlike a scattered cells-modulo-shards
/// mapping — so each shard covers one bounded rectangle of the map. That
/// is what makes the deep pipeline's displacement gate non-degenerate: a
/// request's candidate workers can only come from shards whose tile lies
/// within its candidate radius plus a worker-displacement bound, so its
/// filtering can start as soon as THOSE shards advanced instead of
/// waiting for the global advance barrier (see TileDistanceKm /
/// MaxDisplacementKm and the DispatchWindowPlanner contract).
///
/// Worker mutations are serialized on a mutex *stripe* keyed by worker id
/// (mutex_of) — deliberately independent of the tile assignment, so a
/// Rebuild on the commit thread can never re-home a worker's lock while a
/// speculative planner holds it.
///
/// The shard count and region size are structural constants of the run:
/// they never depend on the thread count, so the task decomposition (and
/// with it every deterministic planning result) is identical for any pool
/// size. Shard membership is refreshed by Rebuild(), which the engine
/// calls once per window after the committing thread has advanced the
/// fleet; between Rebuilds the worker->shard map is immutable and may be
/// read concurrently.
class FleetShards {
 public:
  static constexpr int kDefaultShards = 16;

  /// `fleet` is borrowed and must outlive the shards. `lo`/`hi` bound the
  /// anchor coordinates (the graph bounding box); `region_km` is the side
  /// of one region cell — coarser than the planners' candidate grid so
  /// small anchor moves rarely change a worker's shard.
  FleetShards(const Fleet* fleet, Point lo, Point hi, double region_km,
              int num_shards = kDefaultShards);

  /// Reassigns every worker to the shard of its current anchor tile and
  /// records each shard's minimum member anchor time (the displacement
  /// bound's baseline). Single-writer only; must not run concurrently
  /// with anything that reads the assignment (planning phases that call
  /// ShardOf / workers_in / MaxDisplacementKm).
  void Rebuild();

  int num_shards() const { return num_shards_; }
  int ShardOf(WorkerId w) const {
    return shard_of_[static_cast<std::size_t>(w)];
  }
  /// Mutex stripe of worker `w` — keyed by worker id, NOT by the tile
  /// assignment, so the lock map is stable across Rebuilds. Distinct
  /// workers may share a stripe; one worker always maps to one mutex.
  std::mutex& mutex_of(WorkerId w) {
    return mutexes_[static_cast<std::size_t>(w) %
                    static_cast<std::size_t>(num_shards_)];
  }
  /// Workers currently assigned to `shard`, in worker-id order.
  const std::vector<WorkerId>& workers_in(int shard) const {
    return members_[static_cast<std::size_t>(shard)];
  }

  /// Shard of an arbitrary point's tile (exposed for tests).
  int ShardOfPoint(const Point& p) const;

  /// Euclidean distance (km) from `p` to shard `s`'s tile rectangle
  /// (0 when inside). The rectangle covers every region cell of the tile,
  /// so every member anchor recorded by the last Rebuild lies within it.
  double TileDistanceKm(int s, const Point& p) const;

  /// Upper bound (km) on how far any member of shard `s` can sit from its
  /// last-Rebuild anchor once the fleet is advanced to `now`: a worker
  /// moves at most v_max * (now - anchor_time), and anchor times only
  /// grow after the Rebuild snapshot. Empty shards bound 0.
  double MaxDisplacementKm(int s, double now) const;

  // ---- Cross-window readiness (the pipelined engine's dependency graph).
  //
  // Each shard carries the epoch of the last dispatch window whose commit
  // stage can no longer touch it. The commit stage marks shards as their
  // last dependent proposal applies (and every shard when the window is
  // fully committed); the planning stage of a later window blocks in
  // WaitCommitted before advancing a shard's workers — so a window's
  // per-shard ADVANCE starts as soon as the previous window released that
  // shard, not when it finished globally. Epochs start at 0, so waiting
  // on epoch 0 is always satisfied (the non-pipelined OnBatch path relies
  // on that).

  /// Blocks until shard `s` has been released by window `epoch`'s commit
  /// stage (no-op when already released or epoch == 0).
  void WaitCommitted(int s, std::uint64_t epoch) const;
  /// Non-blocking probe of WaitCommitted's condition.
  bool TryCommitted(int s, std::uint64_t epoch) const;
  /// Whether EVERY shard has been released by window `epoch` — the deep
  /// pipeline's exact-vs-speculative probe (one lock, no waiting).
  bool AllCommittedAtLeast(std::uint64_t epoch) const;
  /// Marks shard `s` as released by window `epoch`. Monotone: a smaller
  /// epoch than the current mark is ignored.
  void MarkCommitted(int s, std::uint64_t epoch);
  /// Marks every shard released by window `epoch` (end of a commit stage).
  void MarkAllCommitted(std::uint64_t epoch);
  /// Last epoch shard `s` was released by (locked read; for tests).
  std::uint64_t CommittedEpoch(int s) const;
  /// Minimum committed-epoch mark across all shards: every commit stage
  /// with a smaller-or-equal epoch has fully retired, so all of its fleet
  /// mutations happened-before this call returns (the marks are written
  /// under the same mutex). The speculative planner stamps this as its
  /// scan's dirty-set baseline.
  std::uint64_t MinCommittedEpoch() const;

  // ---- Commit dirty-sets (the incremental-planning propagation channel).
  //
  // The commit stage is the fleet's only mutator while windows are in
  // flight; it logs every worker it mutates — proposal applies, conflict
  // replans, and the validation stage's own advance/touch version bumps —
  // tagged with the committing window's epoch. A speculative slot records
  // MinCommittedEpoch() when its scan starts; at validation it collects
  // the workers dirtied since that baseline, which is a proven superset
  // of "routes that can have changed under the scan". Requests none of
  // whose candidates are in the set skip the per-candidate version
  // comparison entirely; the rest replan narrowly through their EvalMemo.

  /// Logs worker `w` as mutated by window `epoch`'s commit stage. Safe to
  /// call concurrently from parallel commit tasks.
  void RecordDirty(std::uint64_t epoch, WorkerId w);
  /// Appends every worker logged with an epoch tag > `base` to `out`
  /// (cleared first; may contain duplicates).
  void CollectDirtySince(std::uint64_t base, std::vector<WorkerId>* out) const;
  /// Drops log entries tagged <= `epoch` — callers pass the oldest epoch
  /// any in-flight speculative slot can still use as a baseline.
  void PruneDirtyBefore(std::uint64_t epoch);

  /// Hooks the per-shard commit-lock wait blind spot: WaitCommitted calls
  /// that actually block record their wall wait on the
  /// shards.commit_wait_ms histogram and bump shards.commit_blocking_waits.
  /// Instruments are owned by `reg`, which must outlive this object's last
  /// WaitCommitted. No-op when reg is null or disabled.
  void RegisterMetrics(obs::Registry* reg);

  /// Arms the kShardLockHold fault site: MarkCommitted may hold the epoch
  /// mutex for a seeded delay before releasing a shard — stretching
  /// exactly the cross-window dependency edge the pipelined engine waits
  /// on. Timing-only; the release order is unchanged.
  void set_faults(FaultInjector* faults) { faults_ = faults; }

 private:
  const Fleet* fleet_;
  Point lo_;
  double region_km_;
  int cells_x_ = 0;
  int cells_y_ = 0;
  int tiles_x_ = 0;  // tile grid: tiles_x_ * tiles_y_ == num_shards_
  int tiles_y_ = 0;
  int num_shards_ = 0;
  std::vector<int> shard_of_;                // worker id -> shard
  std::vector<std::vector<WorkerId>> members_;  // shard -> worker ids
  /// Tile rectangles in km ({min, max} per shard), fixed at construction.
  std::vector<Point> tile_min_;
  std::vector<Point> tile_max_;
  /// Minimum member anchor time at the last Rebuild (kInf when empty).
  std::vector<double> min_anchor_time_;
  std::unique_ptr<std::mutex[]> mutexes_;

  // Epoch tracker state: one mark per shard behind a single mutex — marks
  // and waits happen at most a few times per shard per window, far off
  // the per-candidate hot path, so striping would buy nothing.
  mutable std::mutex epoch_mu_;
  mutable std::condition_variable epoch_cv_;
  std::vector<std::uint64_t> committed_epoch_;

  // Dirty log: (epoch tag, worker) pairs behind its own mutex — appends
  // happen per applied proposal and per advance-stage version bump, far
  // off the per-candidate hot path.
  mutable std::mutex dirty_mu_;
  std::vector<std::pair<std::uint64_t, WorkerId>> dirty_log_;

  // Borrowed instruments (null until RegisterMetrics); WaitCommitted is
  // const, so it observes through the pointers without mutating them.
  obs::Histogram* commit_wait_hist_ = nullptr;
  obs::Counter* commit_blocking_waits_ = nullptr;
  FaultInjector* faults_ = nullptr;
};

}  // namespace urpsm

#endif  // URPSM_SRC_PARALLEL_FLEET_SHARDS_H_
