#ifndef URPSM_SRC_PARALLEL_FLEET_SHARDS_H_
#define URPSM_SRC_PARALLEL_FLEET_SHARDS_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/geo/point.h"
#include "src/model/types.h"
#include "src/sim/fleet.h"

namespace urpsm {

/// Spatial partition of the fleet for whole-request parallel planning:
/// the road network's bounding box is covered by a coarse grid of region
/// cells, regions map onto a fixed set of shards, and every worker belongs
/// to the shard of the region its route anchor lies in.
///
/// Each shard carries its own mutex. The dispatch-window engine hands out
/// one task per (request, candidate shard), and the Fleet — once shards
/// are attached via Fleet::AttachShards — serializes per-worker mutations
/// and route-state cache rebuilds on the owning shard's lock, so requests
/// planned concurrently can touch overlapping candidate sets without
/// racing.
///
/// The shard count and region size are structural constants of the run:
/// they never depend on the thread count, so the task decomposition (and
/// with it every deterministic planning result) is identical for any pool
/// size. Shard membership is refreshed by Rebuild(), which the engine
/// calls once per window after the driver thread has committed due stops;
/// between Rebuilds the worker->shard map is immutable and may be read
/// concurrently.
class FleetShards {
 public:
  static constexpr int kDefaultShards = 16;

  /// `fleet` is borrowed and must outlive the shards. `lo`/`hi` bound the
  /// anchor coordinates (the graph bounding box); `region_km` is the side
  /// of one region cell — coarser than the planners' candidate grid so
  /// small anchor moves rarely change a worker's shard.
  FleetShards(const Fleet* fleet, Point lo, Point hi, double region_km,
              int num_shards = kDefaultShards);

  /// Reassigns every worker to the shard of its current anchor region.
  /// Driver-thread only; must not run concurrently with anything that
  /// reads the assignment (planning phases, locked Fleet mutations).
  void Rebuild();

  int num_shards() const { return num_shards_; }
  int ShardOf(WorkerId w) const {
    return shard_of_[static_cast<std::size_t>(w)];
  }
  std::mutex& mutex(int shard) {
    return mutexes_[static_cast<std::size_t>(shard)];
  }
  std::mutex& mutex_of(WorkerId w) { return mutex(ShardOf(w)); }
  /// Workers currently assigned to `shard`, in worker-id order.
  const std::vector<WorkerId>& workers_in(int shard) const {
    return members_[static_cast<std::size_t>(shard)];
  }

  /// Shard of an arbitrary point's region (exposed for tests).
  int ShardOfPoint(const Point& p) const;

  // ---- Cross-window readiness (the pipelined engine's dependency graph).
  //
  // Each shard carries the epoch of the last dispatch window whose commit
  // stage can no longer touch it. The commit stage marks shards as their
  // last dependent proposal applies (and every shard when the window is
  // fully committed); the planning stage of the NEXT window blocks in
  // WaitCommitted before advancing a shard's workers — so window k+1's
  // per-shard ADVANCE starts as soon as window k released that shard,
  // not when window k finished globally. (The later filter/decision/
  // planning phases still need every shard advanced — see the
  // PipelinedBatchPlanner contract — and the advance iterates shards in
  // fixed order for determinism, so a late release of a low-numbered
  // shard serializes the tail.) Epochs start at 0, so waiting on epoch 0
  // is always satisfied (the non-pipelined OnBatch path relies on that).

  /// Blocks until shard `s` has been released by window `epoch`'s commit
  /// stage (no-op when already released or epoch == 0).
  void WaitCommitted(int s, std::uint64_t epoch) const;
  /// Marks shard `s` as released by window `epoch`. Monotone: a smaller
  /// epoch than the current mark is ignored.
  void MarkCommitted(int s, std::uint64_t epoch);
  /// Marks every shard released by window `epoch` (end of a commit stage).
  void MarkAllCommitted(std::uint64_t epoch);
  /// Last epoch shard `s` was released by (locked read; for tests).
  std::uint64_t CommittedEpoch(int s) const;

 private:
  const Fleet* fleet_;
  Point lo_;
  double region_km_;
  int cells_x_ = 0;
  int cells_y_ = 0;
  int num_shards_ = 0;
  std::vector<int> shard_of_;                // worker id -> shard
  std::vector<std::vector<WorkerId>> members_;  // shard -> worker ids
  std::unique_ptr<std::mutex[]> mutexes_;

  // Epoch tracker state: one mark per shard behind a single mutex — marks
  // and waits happen at most a few times per shard per window, far off
  // the per-candidate hot path, so striping would buy nothing.
  mutable std::mutex epoch_mu_;
  mutable std::condition_variable epoch_cv_;
  std::vector<std::uint64_t> committed_epoch_;
};

}  // namespace urpsm

#endif  // URPSM_SRC_PARALLEL_FLEET_SHARDS_H_
