#include "src/parallel/fleet_shards.h"

#include <algorithm>
#include <cmath>

namespace urpsm {

FleetShards::FleetShards(const Fleet* fleet, Point lo, Point hi,
                         double region_km, int num_shards)
    : fleet_(fleet),
      lo_(lo),
      region_km_(region_km > 0.0 ? region_km : 1.0),
      num_shards_(std::max(1, num_shards)) {
  cells_x_ = std::max(1, static_cast<int>(std::ceil((hi.x - lo.x) /
                                                    region_km_)));
  cells_y_ = std::max(1, static_cast<int>(std::ceil((hi.y - lo.y) /
                                                    region_km_)));
  shard_of_.assign(static_cast<std::size_t>(fleet_->size()), 0);
  members_.resize(static_cast<std::size_t>(num_shards_));
  mutexes_ = std::make_unique<std::mutex[]>(
      static_cast<std::size_t>(num_shards_));
  committed_epoch_.assign(static_cast<std::size_t>(num_shards_), 0);
  Rebuild();
}

void FleetShards::WaitCommitted(int s, std::uint64_t epoch) const {
  std::unique_lock<std::mutex> lock(epoch_mu_);
  epoch_cv_.wait(lock, [&] {
    return committed_epoch_[static_cast<std::size_t>(s)] >= epoch;
  });
}

void FleetShards::MarkCommitted(int s, std::uint64_t epoch) {
  {
    const std::lock_guard<std::mutex> lock(epoch_mu_);
    auto& mark = committed_epoch_[static_cast<std::size_t>(s)];
    if (mark >= epoch) return;
    mark = epoch;
  }
  epoch_cv_.notify_all();
}

void FleetShards::MarkAllCommitted(std::uint64_t epoch) {
  {
    const std::lock_guard<std::mutex> lock(epoch_mu_);
    for (auto& mark : committed_epoch_) mark = std::max(mark, epoch);
  }
  epoch_cv_.notify_all();
}

std::uint64_t FleetShards::CommittedEpoch(int s) const {
  const std::lock_guard<std::mutex> lock(epoch_mu_);
  return committed_epoch_[static_cast<std::size_t>(s)];
}

int FleetShards::ShardOfPoint(const Point& p) const {
  const int cx = std::clamp(
      static_cast<int>(std::floor((p.x - lo_.x) / region_km_)), 0,
      cells_x_ - 1);
  const int cy = std::clamp(
      static_cast<int>(std::floor((p.y - lo_.y) / region_km_)), 0,
      cells_y_ - 1);
  // Neighbouring regions land on different shards (row-major scan order),
  // so dense areas spread across the lock space instead of piling onto
  // one shard.
  return (cy * cells_x_ + cx) % num_shards_;
}

void FleetShards::Rebuild() {
  for (std::vector<WorkerId>& m : members_) m.clear();
  for (WorkerId w = 0; w < fleet_->size(); ++w) {
    const int s = ShardOfPoint(fleet_->anchor_point(w));
    shard_of_[static_cast<std::size_t>(w)] = s;
    members_[static_cast<std::size_t>(s)].push_back(w);
  }
}

}  // namespace urpsm
