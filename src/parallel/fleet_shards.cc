#include "src/parallel/fleet_shards.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/graph/road_network.h"
#include "src/model/route.h"
#include "src/obs/registry.h"
#include "src/util/fault.h"

namespace urpsm {

namespace {

/// Largest divisor of `n` that is <= sqrt(n) — the tile grid is as close
/// to square as the shard count allows (16 -> 4x4, 8 -> 2x4, 7 -> 1x7).
int SquarestDivisor(int n) {
  int best = 1;
  for (int d = 1; d * d <= n; ++d) {
    if (n % d == 0) best = d;
  }
  return best;
}

}  // namespace

FleetShards::FleetShards(const Fleet* fleet, Point lo, Point hi,
                         double region_km, int num_shards)
    : fleet_(fleet),
      lo_(lo),
      region_km_(region_km > 0.0 ? region_km : 1.0),
      num_shards_(std::max(1, num_shards)) {
  cells_x_ = std::max(1, static_cast<int>(std::ceil((hi.x - lo.x) /
                                                    region_km_)));
  cells_y_ = std::max(1, static_cast<int>(std::ceil((hi.y - lo.y) /
                                                    region_km_)));
  // Orient the tile grid along the longer cell axis so tiles stay as
  // square as the region grid allows.
  const int d = SquarestDivisor(num_shards_);
  if (cells_x_ >= cells_y_) {
    tiles_x_ = num_shards_ / d;
    tiles_y_ = d;
  } else {
    tiles_x_ = d;
    tiles_y_ = num_shards_ / d;
  }
  // Tile rectangles: the km-space union of each tile's region cells.
  // Cell (cx, cy) spans [lo + c*region, lo + (c+1)*region] per axis; the
  // ceil above lets the last cell overshoot `hi`, which only enlarges the
  // rectangle (conservative for TileDistanceKm).
  tile_min_.assign(static_cast<std::size_t>(num_shards_),
                   {kInf, kInf});
  tile_max_.assign(static_cast<std::size_t>(num_shards_),
                   {-kInf, -kInf});
  for (int cy = 0; cy < cells_y_; ++cy) {
    for (int cx = 0; cx < cells_x_; ++cx) {
      const int tcx = std::min(tiles_x_ - 1, cx * tiles_x_ / cells_x_);
      const int tcy = std::min(tiles_y_ - 1, cy * tiles_y_ / cells_y_);
      const auto s = static_cast<std::size_t>(tcy * tiles_x_ + tcx);
      tile_min_[s].x = std::min(tile_min_[s].x, lo_.x + cx * region_km_);
      tile_min_[s].y = std::min(tile_min_[s].y, lo_.y + cy * region_km_);
      tile_max_[s].x =
          std::max(tile_max_[s].x, lo_.x + (cx + 1) * region_km_);
      tile_max_[s].y =
          std::max(tile_max_[s].y, lo_.y + (cy + 1) * region_km_);
    }
  }
  shard_of_.assign(static_cast<std::size_t>(fleet_->size()), 0);
  members_.resize(static_cast<std::size_t>(num_shards_));
  min_anchor_time_.assign(static_cast<std::size_t>(num_shards_), kInf);
  mutexes_ = std::make_unique<std::mutex[]>(
      static_cast<std::size_t>(num_shards_));
  committed_epoch_.assign(static_cast<std::size_t>(num_shards_), 0);
  Rebuild();
}

void FleetShards::WaitCommitted(int s, std::uint64_t epoch) const {
  if (epoch == 0) return;  // epoch 0 is always released
  std::unique_lock<std::mutex> lock(epoch_mu_);
  if (committed_epoch_[static_cast<std::size_t>(s)] >= epoch) return;
  // Only an actual block is timed: satisfied waits stay clock-free so the
  // histogram measures commit-lock contention, not call frequency.
  obs::Inc(commit_blocking_waits_);
  const bool timed = commit_wait_hist_ != nullptr;
  const auto t0 =
      timed ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
  epoch_cv_.wait(lock, [&] {
    return committed_epoch_[static_cast<std::size_t>(s)] >= epoch;
  });
  if (!timed) return;
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  lock.unlock();  // never Observe under epoch_mu_
  commit_wait_hist_->Observe(ms);
}

bool FleetShards::TryCommitted(int s, std::uint64_t epoch) const {
  const std::lock_guard<std::mutex> lock(epoch_mu_);
  return committed_epoch_[static_cast<std::size_t>(s)] >= epoch;
}

bool FleetShards::AllCommittedAtLeast(std::uint64_t epoch) const {
  const std::lock_guard<std::mutex> lock(epoch_mu_);
  for (const std::uint64_t mark : committed_epoch_) {
    if (mark < epoch) return false;
  }
  return true;
}

void FleetShards::MarkCommitted(int s, std::uint64_t epoch) {
  {
    const std::lock_guard<std::mutex> lock(epoch_mu_);
    // Fault site: hold the epoch lock across the seeded delay, stretching
    // the exact dependency edge later windows block on in WaitCommitted.
    MaybeInject(faults_, FaultSite::kShardLockHold);
    auto& mark = committed_epoch_[static_cast<std::size_t>(s)];
    if (mark >= epoch) return;
    mark = epoch;
  }
  epoch_cv_.notify_all();
}

void FleetShards::MarkAllCommitted(std::uint64_t epoch) {
  {
    const std::lock_guard<std::mutex> lock(epoch_mu_);
    for (auto& mark : committed_epoch_) mark = std::max(mark, epoch);
  }
  epoch_cv_.notify_all();
}

std::uint64_t FleetShards::CommittedEpoch(int s) const {
  const std::lock_guard<std::mutex> lock(epoch_mu_);
  return committed_epoch_[static_cast<std::size_t>(s)];
}

std::uint64_t FleetShards::MinCommittedEpoch() const {
  const std::lock_guard<std::mutex> lock(epoch_mu_);
  std::uint64_t min_mark = ~std::uint64_t{0};
  for (const std::uint64_t mark : committed_epoch_) {
    min_mark = std::min(min_mark, mark);
  }
  return committed_epoch_.empty() ? 0 : min_mark;
}

void FleetShards::RecordDirty(std::uint64_t epoch, WorkerId w) {
  const std::lock_guard<std::mutex> lock(dirty_mu_);
  dirty_log_.emplace_back(epoch, w);
}

void FleetShards::CollectDirtySince(std::uint64_t base,
                                    std::vector<WorkerId>* out) const {
  out->clear();
  const std::lock_guard<std::mutex> lock(dirty_mu_);
  for (const auto& [epoch, w] : dirty_log_) {
    if (epoch > base) out->push_back(w);
  }
}

void FleetShards::PruneDirtyBefore(std::uint64_t epoch) {
  const std::lock_guard<std::mutex> lock(dirty_mu_);
  auto keep = dirty_log_.begin();
  for (auto& entry : dirty_log_) {
    if (entry.first > epoch) *keep++ = entry;
  }
  dirty_log_.erase(keep, dirty_log_.end());
}

void FleetShards::RegisterMetrics(obs::Registry* reg) {
  if (reg == nullptr || !reg->enabled()) return;
  commit_wait_hist_ = reg->GetHistogram("shards.commit_wait_ms");
  commit_blocking_waits_ = reg->GetCounter("shards.commit_blocking_waits");
}

int FleetShards::ShardOfPoint(const Point& p) const {
  const int cx = std::clamp(
      static_cast<int>(std::floor((p.x - lo_.x) / region_km_)), 0,
      cells_x_ - 1);
  const int cy = std::clamp(
      static_cast<int>(std::floor((p.y - lo_.y) / region_km_)), 0,
      cells_y_ - 1);
  const int tcx = std::min(tiles_x_ - 1, cx * tiles_x_ / cells_x_);
  const int tcy = std::min(tiles_y_ - 1, cy * tiles_y_ / cells_y_);
  return tcy * tiles_x_ + tcx;
}

double FleetShards::TileDistanceKm(int s, const Point& p) const {
  const auto i = static_cast<std::size_t>(s);
  const double dx =
      std::max({tile_min_[i].x - p.x, p.x - tile_max_[i].x, 0.0});
  const double dy =
      std::max({tile_min_[i].y - p.y, p.y - tile_max_[i].y, 0.0});
  return std::sqrt(dx * dx + dy * dy);
}

double FleetShards::MaxDisplacementKm(int s, double now) const {
  const double t0 = min_anchor_time_[static_cast<std::size_t>(s)];
  if (t0 == kInf) return 0.0;  // empty shard
  return std::max(0.0, now - t0) * MaxSpeedKmPerMin();
}

void FleetShards::Rebuild() {
  for (std::vector<WorkerId>& m : members_) m.clear();
  min_anchor_time_.assign(static_cast<std::size_t>(num_shards_), kInf);
  for (WorkerId w = 0; w < fleet_->size(); ++w) {
    const int s = ShardOfPoint(fleet_->anchor_point(w));
    shard_of_[static_cast<std::size_t>(w)] = s;
    members_[static_cast<std::size_t>(s)].push_back(w);
    min_anchor_time_[static_cast<std::size_t>(s)] =
        std::min(min_anchor_time_[static_cast<std::size_t>(s)],
                 fleet_->route(w).anchor_time());
  }
}

}  // namespace urpsm
