#ifndef URPSM_SRC_PARALLEL_PARALLEL_PLANNER_H_
#define URPSM_SRC_PARALLEL_PARALLEL_PLANNER_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/core/decision.h"
#include "src/core/planner.h"
#include "src/insertion/insertion.h"
#include "src/parallel/thread_pool.h"
#include "src/util/scratch.h"

namespace urpsm {

/// pruneGreedyDP with both per-request phases fanned across a ThreadPool.
///
/// Structure per request (mirrors GreedyDpPlanner::OnRequest):
///   1. Candidate filter (grid index + deadline) and Fleet::Touch — kept
///      sequential: touching commits due stops and moves anchors, i.e.
///      mutates the fleet and the grid index.
///   2. Decision phase: every candidate's RouteState + decision lower
///      bound is an independent pure computation over the now-frozen
///      fleet, evaluated with ParallelFor (candidates are partitioned in
///      grid-shard order — WithinRadius emits cell by cell — and claimed
///      chunk-wise by the pool's threads).
///   3. Planning phase: candidates sorted by lower bound are evaluated
///      with the exact linear DP in fixed-size blocks; within a block
///      evaluations run in parallel, and between blocks the Lemma 8
///      cutoff is applied exactly as in the sequential scan.
///
/// Determinism: the result is bit-identical to GreedyDpPlanner's. Both
/// planners sort the same bounds array with the same comparator (hence
/// share one scan order) and keep the first strict cost improvement, the
/// blockwise scan
/// evaluates a superset of the candidates the sequential pruned scan
/// evaluates, and the epsilon-guarded cutoff guarantees no member of
/// that superset can beat or tie the sequential winner. The block size is a
/// constant — deliberately independent of the pool size — so the set of
/// exact evaluations, and with it the distance-query count, is identical
/// for every thread count.
class ParallelGreedyDpPlanner : public RoutePlanner {
 public:
  /// Exact evaluations per speculative block. Constant (never derived
  /// from the pool size): large enough to keep 8 threads busy, small
  /// enough that the extra evaluations past the sequential cutoff stay
  /// cheap.
  static constexpr std::size_t kEvalBlock = 32;

  /// `pool` is borrowed and may be nullptr (or size 1), in which case
  /// every phase runs inline on the calling thread.
  ParallelGreedyDpPlanner(PlanningContext* ctx, Fleet* fleet,
                          PlannerConfig config, ThreadPool* pool);

  WorkerId OnRequest(const Request& r) override;
  std::string_view name() const override {
    return config_.use_pruning ? "parallelPruneGreedyDP" : "parallelGreedyDP";
  }
  std::int64_t index_memory_bytes() const override {
    return index_->MemoryBytes();
  }

  /// Exact linear-DP evaluations performed. At least the sequential
  /// planner's count (blocks are evaluated whole past the cutoff), but
  /// the same for every thread count.
  std::int64_t exact_evaluations() const { return exact_evaluations_; }

 private:
  /// Runs body over [0, n) on the pool when one is attached, inline
  /// otherwise.
  void ForEach(std::size_t n, const std::function<void(std::int64_t)>& body);

  PlanningContext* ctx_;
  Fleet* fleet_;
  PlannerConfig config_;
  ThreadPool* pool_;
  std::unique_ptr<GridIndex> index_;
  std::int64_t exact_evaluations_ = 0;
  // Reusable per-request workspaces (driver thread only — OnRequest is
  // never re-entered). Recycled across requests with high-water clamps so
  // one dense downtown request doesn't pin its peak footprint forever.
  std::vector<WorkerId> candidates_;
  std::vector<double> lbs_;
  std::vector<WorkerBound> bounds_;
  std::vector<InsertionCandidate> cands_;
  HighWaterClamp candidates_clamp_;
  HighWaterClamp lbs_clamp_;
  HighWaterClamp bounds_clamp_;
  HighWaterClamp cands_clamp_;
};

}  // namespace urpsm

#endif  // URPSM_SRC_PARALLEL_PARALLEL_PLANNER_H_
