#include "src/parallel/parallel_planner.h"

#include <algorithm>

#include "src/insertion/insertion.h"

namespace urpsm {

ParallelGreedyDpPlanner::ParallelGreedyDpPlanner(PlanningContext* ctx,
                                                 Fleet* fleet,
                                                 PlannerConfig config,
                                                 ThreadPool* pool)
    : ctx_(ctx), fleet_(fleet), config_(config), pool_(pool) {
  Point lo, hi;
  ctx_->graph().BoundingBox(&lo, &hi);
  index_ = std::make_unique<GridIndex>(lo, hi, config_.grid_cell_km);
  fleet_->AttachIndex(index_.get());
}

void ParallelGreedyDpPlanner::ForEach(
    std::size_t n, const std::function<void(std::int64_t)>& body) {
  // Below ~two iterations per pool thread the condition-variable wakeup
  // costs more than the loop; run inline. Purely an execution choice —
  // the evaluated set and the results are unchanged (see class comment).
  const bool worth_fanning =
      pool_ != nullptr && pool_->num_threads() > 1 &&
      n >= 2 * static_cast<std::size_t>(pool_->num_threads());
  if (worth_fanning) {
    pool_->ParallelFor(0, static_cast<std::int64_t>(n), body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(static_cast<std::int64_t>(i));
  }
}

WorkerId ParallelGreedyDpPlanner::OnRequest(const Request& r) {
  const double now = r.release_time;
  const double L = ctx_->DirectDist(r.id);  // the decision phase's 1 query

  // Candidate filter via grid index and deadline — the shared
  // FilterCandidates, run sequentially as in the sequential planner (the
  // index emits workers cell by cell, which is the partition order the
  // pool's threads later claim chunks of). The output lands in the
  // reusable per-request workspace.
  FilterCandidatesInto(ctx_, *index_, r, L, now, &candidates_);
  const std::vector<WorkerId>& candidates = candidates_;
  candidates_clamp_.Observe(&candidates_);
  if (candidates.empty()) return kInvalidWorker;

  // Touching mutates the fleet (commits due stops, bumps idle clocks) and
  // the grid index, so it stays on the driver thread. After this loop the
  // fleet is frozen until ApplyInsertion.
  for (const WorkerId w : candidates) fleet_->Touch(w, now);

  // Phase 1 — decision (Algo. 4): per-worker lower bounds, fanned across
  // the pool. Each lbs slot is written by exactly one iteration, and each
  // iteration touches exactly one fleet state-cache slot (candidates are
  // distinct workers), so the cached RouteState rebuilds are race-free.
  std::vector<double>& lbs = lbs_;
  lbs.assign(candidates.size(), kInf);
  lbs_clamp_.Observe(&lbs);
  ForEach(candidates.size(), [&](std::int64_t k) {
    const auto ks = static_cast<std::size_t>(k);
    const WorkerId w = candidates[ks];
    const Route& route = fleet_->route(w);
    const RouteState& st = fleet_->CachedState(w, ctx_);
    lbs[ks] =
        DecisionLowerBound(fleet_->worker(w), route, st, r, L, ctx_->graph());
  });

  // Sequential reduction in candidate order: same bounds, same min as the
  // sequential planner.
  std::vector<WorkerBound>& bounds = bounds_;
  bounds.clear();
  bounds.reserve(candidates.size());
  double min_lb = kInf;
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    if (lbs[k] == kInf) continue;  // provably infeasible for this worker
    bounds.push_back({candidates[k], lbs[k]});
    min_lb = std::min(min_lb, lbs[k]);
  }
  bounds_clamp_.Observe(&bounds);
  if (bounds.empty()) return kInvalidWorker;
  if (r.penalty < config_.alpha * min_lb) return kInvalidWorker;

  // Phase 2 — planning: ascending LB order, exact linear DP in parallel
  // blocks of kEvalBlock with the Lemma 8 cutoff between blocks (see the
  // class comment for why this is bit-identical to the sequential scan).
  // Order and cutoff are the sequential planner's own helpers: both
  // planners see the same bounds array, so they share one scan order.
  const std::vector<std::size_t> order = AscendingLowerBoundOrder(bounds);

  std::vector<InsertionCandidate>& cands = cands_;
  cands.assign(bounds.size(), InsertionCandidate{});
  cands_clamp_.Observe(&cands);
  WorkerId best_worker = kInvalidWorker;
  InsertionCandidate best;
  for (std::size_t b0 = 0; b0 < order.size(); b0 += kEvalBlock) {
    if (config_.use_pruning && best.feasible() &&
        LemmaEightCutoff(best.delta, bounds[order[b0]].lower_bound)) {
      break;
    }
    const std::size_t b1 = std::min(order.size(), b0 + kEvalBlock);
    ForEach(b1 - b0, [&](std::int64_t i) {
      const std::size_t k = order[b0 + static_cast<std::size_t>(i)];
      const WorkerId w = bounds[k].worker;
      // Pure cache read: the decision phase warmed every candidate's
      // state slot and the fleet is frozen until ApplyInsertion.
      cands[k] = LinearDpInsertion(fleet_->worker(w), fleet_->route(w),
                                   fleet_->CachedState(w, ctx_), r, ctx_);
    });
    exact_evaluations_ += static_cast<std::int64_t>(b1 - b0);
    // Reduce in scan order with strict improvement only — exactly the
    // sequential planner's tie behaviour (the earliest candidate in the
    // shared AscendingLowerBoundOrder permutation wins equal costs).
    for (std::size_t idx = b0; idx < b1; ++idx) {
      const std::size_t k = order[idx];
      const InsertionCandidate& cand = cands[k];
      if (cand.feasible() && cand.delta < best.delta) {
        best = cand;
        best_worker = bounds[k].worker;
      }
    }
  }
  if (best_worker == kInvalidWorker) return kInvalidWorker;
  if (config_.exact_reject_check && r.penalty < config_.alpha * best.delta) {
    return kInvalidWorker;
  }
  fleet_->ApplyInsertion(best_worker, r, best.i, best.j, ctx_->oracle());
  return best_worker;
}

}  // namespace urpsm
