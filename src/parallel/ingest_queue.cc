#include "src/parallel/ingest_queue.h"

#include <algorithm>

#include "src/obs/registry.h"

namespace urpsm {

IngestQueue::IngestQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

bool IngestQueue::Push(const Arrival& a) {
  std::unique_lock<std::mutex> lock(mu_);
  if (q_.size() >= capacity_ && !cancelled_) {
    ++backpressure_waits_;
    not_full_.wait(lock, [&] { return q_.size() < capacity_ || cancelled_; });
  }
  if (cancelled_) return false;
  q_.push_back(a);
  ++pushed_;
  max_depth_ = std::max(max_depth_, q_.size());
  not_empty_.notify_one();
  return true;
}

bool IngestQueue::Pop(Arrival* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return !q_.empty() || closed_ || cancelled_; });
  if (cancelled_ || q_.empty()) return false;
  *out = q_.front();
  q_.pop_front();
  not_full_.notify_one();
  return true;
}

void IngestQueue::Close() {
  const std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
}

void IngestQueue::Cancel() {
  const std::lock_guard<std::mutex> lock(mu_);
  cancelled_ = true;
  q_.clear();
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t IngestQueue::max_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return max_depth_;
}

std::int64_t IngestQueue::total_pushed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return pushed_;
}

std::int64_t IngestQueue::backpressure_waits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return backpressure_waits_;
}

std::size_t IngestQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

void IngestQueue::RegisterMetrics(obs::Registry* reg,
                                  obs::CallbackGuard* guard) const {
  if (reg == nullptr || !reg->enabled()) return;
  const auto track = [&](const std::string& name,
                         std::function<double()> fn) {
    guard->Track(reg->RegisterCallbackGauge(name, std::move(fn)));
  };
  track("ingest.depth",
        [this] { return static_cast<double>(depth()); });
  track("ingest.max_depth",
        [this] { return static_cast<double>(max_depth()); });
  track("ingest.total_pushed",
        [this] { return static_cast<double>(total_pushed()); });
  track("ingest.backpressure_waits",
        [this] { return static_cast<double>(backpressure_waits()); });
}

}  // namespace urpsm
