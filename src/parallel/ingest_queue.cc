#include "src/parallel/ingest_queue.h"

#include <algorithm>

#include "src/obs/registry.h"

namespace urpsm {

IngestQueue::IngestQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void IngestQueue::EnqueueLocked(const Arrival& a) {
  q_.push_back(a);
  ++pushed_;
  max_depth_ = std::max(max_depth_, q_.size());
}

bool IngestQueue::Push(const Arrival& a) {
  std::unique_lock<std::mutex> lock(mu_);
  if (q_.size() >= capacity_ && !cancelled_) {
    ++backpressure_waits_;
    not_full_.wait(lock, [&] { return q_.size() < capacity_ || cancelled_; });
  }
  if (cancelled_) return false;
  EnqueueLocked(a);
  not_empty_.notify_one();
  return true;
}

IngestQueue::PushOutcome IngestQueue::TryPush(const Arrival& a,
                                              AdmissionPolicy policy) {
  if (policy == AdmissionPolicy::kBlock) {
    return Push(a) ? PushOutcome::kAdmitted : PushOutcome::kCancelled;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  if (cancelled_) return PushOutcome::kCancelled;
  if (q_.size() >= capacity_) {
    if (policy == AdmissionPolicy::kRejectAtIngress) {
      return PushOutcome::kRejected;
    }
    // kShedOldestSlack: the victim is the arrival with the least deadline
    // slack — least likely to still be servable — among the queued ones
    // AND the incoming one. Ties break on the lower id so the choice is
    // deterministic for a fixed queue state.
    auto victim = q_.begin();
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (it->slack_min < victim->slack_min ||
          (it->slack_min == victim->slack_min && it->id < victim->id)) {
        victim = it;
      }
    }
    if (a.slack_min < victim->slack_min ||
        (a.slack_min == victim->slack_min && a.id < victim->id)) {
      return PushOutcome::kRejected;  // the incoming arrival is the victim
    }
    q_.erase(victim);
    ++evicted_;
  }
  EnqueueLocked(a);
  not_empty_.notify_one();
  return PushOutcome::kAdmitted;
}

bool IngestQueue::Pop(Arrival* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return !q_.empty() || closed_ || cancelled_; });
  if (cancelled_ || q_.empty()) return false;
  *out = q_.front();
  q_.pop_front();
  not_full_.notify_one();
  return true;
}

void IngestQueue::Close() {
  const std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
}

void IngestQueue::Cancel() {
  const std::lock_guard<std::mutex> lock(mu_);
  cancelled_ = true;
  discarded_ += static_cast<std::int64_t>(q_.size());
  q_.clear();
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t IngestQueue::max_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return max_depth_;
}

std::int64_t IngestQueue::total_pushed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return pushed_;
}

std::int64_t IngestQueue::backpressure_waits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return backpressure_waits_;
}

std::int64_t IngestQueue::evicted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

std::int64_t IngestQueue::discarded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return discarded_;
}

std::size_t IngestQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

void IngestQueue::RegisterMetrics(obs::Registry* reg,
                                  obs::CallbackGuard* guard) const {
  if (reg == nullptr || !reg->enabled()) return;
  const auto track = [&](const std::string& name,
                         std::function<double()> fn) {
    guard->Track(reg->RegisterCallbackGauge(name, std::move(fn)));
  };
  track("ingest.depth",
        [this] { return static_cast<double>(depth()); });
  track("ingest.max_depth",
        [this] { return static_cast<double>(max_depth()); });
  track("ingest.total_pushed",
        [this] { return static_cast<double>(total_pushed()); });
  track("ingest.backpressure_waits",
        [this] { return static_cast<double>(backpressure_waits()); });
  track("ingest.evicted",
        [this] { return static_cast<double>(evicted()); });
}

}  // namespace urpsm
