#ifndef URPSM_SRC_PARALLEL_THREAD_POOL_H_
#define URPSM_SRC_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace urpsm {

class FaultInjector;

namespace obs {
class Registry;
}  // namespace obs

/// Fixed-size pool of worker threads driving self-scheduling parallel
/// loops over index ranges.
///
/// The pool exists so the per-request hot path (candidate lower bounds and
/// exact DP insertions, each an independent pure computation over shared
/// read-only state) can fan out without spawning threads per request.
/// Iterations are claimed in `grain`-sized chunks off a shared atomic
/// cursor — dynamic self-scheduling, so a thread that drew cheap
/// candidates steals the remaining range from slower ones instead of
/// idling at a static partition boundary.
///
/// `num_threads` counts the *calling* thread: a pool of size N spawns N-1
/// workers and the caller participates in every loop, so ThreadPool(1)
/// runs everything inline with zero synchronization. Loops are submitted
/// one at a time (the planner's driver loop is sequential); `ParallelFor`
/// is not reentrant and must not be called concurrently from two threads.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Unclaimed iterations of the current loop (0 when idle) — the pool's
  /// instantaneous task-queue depth.
  std::int64_t pending_iterations() const;

  /// Registers pull-model gauges (pool.threads / pool.pending) on `reg`.
  /// The pool must outlive the registry's last Snapshot (or the gauges
  /// must be frozen first). No-op when reg is null.
  void RegisterMetrics(obs::Registry* reg);

  /// Arms the kPoolTaskDelay fault site: each claimed chunk may start
  /// with a seeded delay (timing-only — chunk assignment already varies
  /// run to run; results never depend on it). Set before the pool is
  /// handed to planners; nullptr (default) costs one branch per chunk.
  void set_faults(FaultInjector* faults) { faults_ = faults; }

  /// Runs body(i) for every i in [begin, end) exactly once and blocks
  /// until all iterations finish. Writes made by `body` happen-before the
  /// return, so the caller may read per-index results without extra
  /// synchronization. `body` must not throw and must not call back into
  /// this pool.
  void ParallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t)>& body,
                   std::int64_t grain = 1);

  /// ParallelFor producing a value per index: out[i] = fn(i). T must be
  /// default-constructible — and not bool: adjacent std::vector<bool>
  /// bit-proxies share bytes, so concurrent per-index writes would race.
  template <typename T, typename F>
  std::vector<T> ParallelMap(std::int64_t n, F&& fn) {
    static_assert(!std::is_same_v<T, bool>,
                  "ParallelMap<bool> would race on vector<bool> bit-proxies; "
                  "map to char/int instead");
    std::vector<T> out(static_cast<std::size_t>(n));
    ParallelFor(0, n,
                [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = fn(i); });
    return out;
  }

 private:
  /// One submitted loop. Workers that wake late (after the loop already
  /// drained) only ever read `cursor`/`end` and claim nothing, so the
  /// job's lifetime is managed by shared_ptr rather than a join barrier.
  struct Job {
    const std::function<void(std::int64_t)>* body = nullptr;
    std::int64_t end = 0;
    std::int64_t grain = 1;
    std::int64_t total = 0;                // iterations in the loop
    std::atomic<std::int64_t> cursor{0};   // next unclaimed index
    std::atomic<std::int64_t> finished{0}; // iterations completed
  };

  void WorkerLoop();
  /// Claims and runs chunks of `job` until the cursor passes the end.
  void RunChunks(Job* job);

  int num_threads_;
  FaultInjector* faults_ = nullptr;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable job_cv_;   // workers: a new job was published
  std::condition_variable done_cv_;  // submitter: all iterations finished
  std::uint64_t job_epoch_ = 0;      // bumped per ParallelFor submission
  std::shared_ptr<Job> job_;         // current (or last) job
  bool shutdown_ = false;
};

}  // namespace urpsm

#endif  // URPSM_SRC_PARALLEL_THREAD_POOL_H_
