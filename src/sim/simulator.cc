#include "src/sim/simulator.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "src/parallel/ingest_queue.h"
#include "src/parallel/parallel_planner.h"
#include "src/util/stats.h"

namespace urpsm {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One planned window handed from the planning stage to the commit stage.
struct CommitJob {
  WindowEpoch epoch = 0;
  int members = 0;           // batch size, for latency/throughput accounting
  double plan_seconds = 0.0; // the window's planning-stage wall time
  bool stop = false;         // sentinel: planning stage is done
};

/// Unbounded FIFO between the planning and commit threads. Depth is
/// bounded by the planner's slot ring (SimOptions::pipeline_depth): at
/// depth 2 PlanWindow(k+1)'s advance gate cannot fully open before
/// CommitWindow(k) retires, and deeper rings run ahead speculatively
/// until window k - depth's slot is still unreleased — so the planning
/// stage always self-throttles against the commit stage.
class CommitChannel {
 public:
  void Push(const CommitJob& job) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      q_.push_back(job);
    }
    cv_.notify_one();
  }

  CommitJob Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !q_.empty(); });
    const CommitJob job = q_.front();
    q_.pop_front();
    return job;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<CommitJob> q_;
};

}  // namespace

SimOptions ValidateSimOptions(SimOptions options,
                              std::vector<std::string>* warnings) {
  const auto warn = [&](const std::string& msg) {
    std::fprintf(stderr, "SimOptions: %s\n", msg.c_str());
    if (warnings != nullptr) warnings->push_back(msg);
  };
  if (options.batch_window_s < 0.0) {
    warn("negative batch_window_s clamped to 0 (per-request loop)");
    options.batch_window_s = 0.0;
  }
  if (options.pipeline && options.batch_window_s <= 0.0) {
    warn("pipeline requires batch_window_s > 0; pipeline disabled");
    options.pipeline = false;
  }
  if (options.pipeline_depth < 2) {
    warn("pipeline_depth < 2 clamped to 2 (the minimum double buffer)");
    options.pipeline_depth = 2;
  }
  if (options.ingest_capacity == 0) {
    warn("ingest_capacity == 0 clamped to 1 (the queue must hold at least "
         "one arrival)");
    options.ingest_capacity = 1;
  }
  if (options.wall_limit_seconds < 0.0) {
    warn("negative wall_limit_seconds clamped to 0 (immediate kill switch)");
    options.wall_limit_seconds = 0.0;
  }
  if (options.num_threads < 1) {
    warn("num_threads < 1 clamped to 1 (sequential)");
    options.num_threads = 1;
  }
  if (options.admission_slack_min < 0.0) {
    warn("negative admission_slack_min clamped to 0 (filter off)");
    options.admission_slack_min = 0.0;
  }
  if (options.window_admit_budget < 0) {
    warn("negative window_admit_budget clamped to 0 (unlimited)");
    options.window_admit_budget = 0;
  }
  if (options.drain_after_s < 0.0 && options.drain_after_s != -1.0) {
    // Any negative value means "never"; normalize to the documented
    // sentinel so reports compare cleanly.
    options.drain_after_s = -1.0;
  }
  if (options.metrics_snapshot_period_s <= 0.0) {
    warn("metrics_snapshot_period_s <= 0 clamped to 1.0");
    options.metrics_snapshot_period_s = 1.0;
  }
  for (int i = 0; i < kNumFaultSites; ++i) {
    FaultConfig& c = options.faults.site[i];
    if (c.rate < 0.0 || c.rate > 1.0) {
      warn(std::string("fault rate for ") +
           FaultSiteName(static_cast<FaultSite>(i)) +
           " clamped into [0, 1]");
      c.rate = std::min(1.0, std::max(0.0, c.rate));
    }
    if (c.delay_us < 0.0) {
      warn(std::string("negative fault delay for ") +
           FaultSiteName(static_cast<FaultSite>(i)) + " clamped to 0");
      c.delay_us = 0.0;
    }
  }
  return options;
}

Simulation::Simulation(const RoadNetwork* graph, DistanceOracle* oracle,
                       std::vector<Worker> workers,
                       const std::vector<Request>* requests,
                       SimOptions options)
    : graph_(graph),
      oracle_(oracle),
      workers_(std::move(workers)),
      requests_(requests),
      options_(ValidateSimOptions(std::move(options))) {
  for (std::size_t i = 0; i + 1 < requests_->size(); ++i) {
    assert((*requests_)[i].release_time <= (*requests_)[i + 1].release_time);
  }
  // Ids must be unique and valid; they are resolved through an id->index
  // map downstream, so they need not be dense. Validated unconditionally
  // (release builds too): before this check a non-dense id silently
  // indexed out of bounds, and a duplicate id would silently alias two
  // requests in every id-keyed map — both are unrecoverable input bugs,
  // so fail loudly instead of producing corrupt reports.
  std::unordered_set<RequestId> ids;
  ids.reserve(requests_->size());
  for (const Request& r : *requests_) {
    if (r.id < 0 || !ids.insert(r.id).second) {
      std::fprintf(stderr,
                   "Simulation: invalid or duplicate request id %d\n", r.id);
      std::abort();
    }
  }
}

bool Simulation::request_served(RequestId id) const {
  // served_ is empty before the first Run(); any id reads as not served.
  // Linear scan: this is a post-run inspection helper, not a hot path.
  const std::size_t n = std::min(served_.size(), requests_->size());
  for (std::size_t i = 0; i < n; ++i) {
    if ((*requests_)[i].id == id) return served_[i];
  }
  return false;
}

SimReport Simulation::Run(const PlannerFactory& factory) {
  cached_ = std::make_unique<CachedOracle>(oracle_, options_.cache_capacity);
  pool_ = options_.num_threads > 1
              ? std::make_unique<ThreadPool>(options_.num_threads)
              : nullptr;
  fleet_ = std::make_unique<Fleet>(workers_, graph_);
  registry_ = std::make_unique<obs::Registry>(options_.collect_metrics);
  tracer_ = std::make_unique<obs::TraceRecorder>(options_.trace_path);
  faults_ = options_.faults.enabled
                ? std::make_unique<FaultInjector>(options_.faults)
                : nullptr;
  PlanningContext ctx(graph_, cached_.get(), requests_);
  ctx.set_thread_pool(pool_.get());
  ctx.set_metrics(registry_.get());
  ctx.set_tracer(tracer_.get());
  ctx.set_faults(faults_.get());
  // Components fetch instruments up front; planner construction (below)
  // registers the planner- and shard-side ones through the context.
  cached_->RegisterMetrics(registry_.get());
  cached_->set_faults(faults_.get());
  if (pool_ != nullptr) {
    pool_->RegisterMetrics(registry_.get());
    pool_->set_faults(faults_.get());
  }
  std::unique_ptr<RoutePlanner> planner = factory(&ctx, fleet_.get());
  registry_->StartPeriodicExport(options_.metrics_snapshot_path,
                                 options_.metrics_snapshot_period_s);

  SimReport report;
  report.algorithm = std::string(planner->name());
  report.total_requests = static_cast<int>(requests_->size());
  report.num_threads = options_.num_threads;

  StatsAccumulator& response_ms = report.response_stats;
  const auto t0 = std::chrono::steady_clock::now();
  double planning_seconds = 0.0;

  auto* batcher = dynamic_cast<BatchPlanner*>(planner.get());
  auto* pipelined = dynamic_cast<PipelinedBatchPlanner*>(planner.get());
  if (batcher != nullptr && options_.batch_window_s > 0.0) {
    if (options_.pipeline && pipelined != nullptr) {
      planning_seconds = RunPipelined(pipelined, &report);
    } else {
      planning_seconds = RunWindowed(batcher, &report);
    }
  } else {
    planning_seconds = RunPerRequest(planner.get(), &report);
  }
  {
    // Finalize gets only the wall-time budget that is actually left: a
    // timed-out run passes 0 and a batch-style planner must not start
    // unbounded flush work on top of an already-exceeded limit. (Its
    // time used to be added unbounded after the loop had broken.)
    const double budget =
        std::max(0.0, options_.wall_limit_seconds - planning_seconds);
    const auto fin_t0 = std::chrono::steady_clock::now();
    planner->Finalize(budget);
    planning_seconds += SecondsSince(fin_t0);
    if (planning_seconds > options_.wall_limit_seconds) {
      report.timed_out = true;
    }
  }
  fleet_->FinishAll();

  served_.assign(requests_->size(), false);
  double wait_sum = 0.0, detour_sum = 0.0;
  for (std::size_t idx = 0; idx < requests_->size(); ++idx) {
    const Request& r = (*requests_)[idx];
    const bool ok = fleet_->DropoffTime(r.id) < kInf;
    served_[idx] = ok;
    if (ok) {
      ++report.served_requests;
      const double pickup = fleet_->PickupTime(r.id);
      const double dropoff = fleet_->DropoffTime(r.id);
      wait_sum += std::max(0.0, pickup - r.release_time);
      const double direct = ctx.DirectDist(r.id);
      if (direct > 1e-9) detour_sum += (dropoff - pickup) / direct;
      report.makespan_min = std::max(report.makespan_min, dropoff);
    } else {
      report.penalty_sum += r.penalty;
    }
  }
  if (report.served_requests > 0) {
    report.mean_pickup_wait_min = wait_sum / report.served_requests;
    report.mean_detour_ratio = detour_sum / report.served_requests;
  }
  report.served_rate =
      report.total_requests == 0
          ? 0.0
          : static_cast<double>(report.served_requests) / report.total_requests;
  // Overload-accounting partition. The loops above fill processed and the
  // shed buckets; the derived buckets close the partition exactly:
  // requests the planner saw but did not serve are rejections, and
  // requests that were neither planned nor shed (wall-limit cutoff) are
  // DNFs. CheckAccounting() re-verifies the identity on every report.
  report.shed_requests = static_cast<int>(
      report.shed_deadline + report.shed_overload + report.shed_drain);
  report.rejected_requests =
      report.processed_requests - report.served_requests;
  report.dnf_requests = report.total_requests - report.processed_requests -
                        report.shed_requests;
  report.total_distance = fleet_->committed_distance();
  report.unified_cost =
      options_.alpha * report.total_distance + report.penalty_sum;
  report.avg_response_ms = response_ms.mean();
  report.p50_response_ms = response_ms.Percentile(50);
  report.p95_response_ms = response_ms.Percentile(95);
  report.p99_response_ms = response_ms.Percentile(99);
  report.max_response_ms = response_ms.max();
  report.distance_queries = cached_->query_count();
  report.oracle_quant_error_bound = cached_->QuantizationErrorBound();
  report.index_memory_bytes = planner->index_memory_bytes();
  report.wall_seconds = SecondsSince(t0);
  registry_->StopPeriodicExport();
  report.trace_enabled = tracer_->enabled();
  report.metrics = registry_->Snapshot();  // planner callbacks still live
  // The planner dies with this scope while registry_ survives as a
  // member: freeze its callbacks so a later Snapshot stays safe.
  registry_->FreezeAllCallbacks();
  tracer_->Flush();
  return report;
}

double Simulation::RunPerRequest(RoutePlanner* planner, SimReport* report) {
  double planning_seconds = 0.0;
  for (const Request& r : *requests_) {
    if (planning_seconds > options_.wall_limit_seconds) {
      report->timed_out = true;
      break;  // remaining requests are rejected (DNF, as in the paper)
    }
    fleet_->AdvanceTo(r.release_time);
    const auto req_t0 = std::chrono::steady_clock::now();
    {
      obs::TraceSpan span(tracer_.get(), "request.plan", {{"request", r.id}});
      planner->OnRequest(r);
    }
    const double secs = SecondsSince(req_t0);
    planning_seconds += secs;
    ++report->processed_requests;
    report->response_stats.Add(secs * 1e3);
  }
  return planning_seconds;
}

double Simulation::RunWindowed(BatchPlanner* batcher, SimReport* report) {
  // Lock-step windowed event loop: buffer all requests released within
  // one dispatch window, advance the fleet to the window close, and plan
  // the batch in a single OnBatch call. Each member's recorded response
  // latency is its window's planning latency — what a requester
  // experiences at the dispatch boundary.
  const double window_min = options_.batch_window_s / 60.0;
  const std::size_t n = requests_->size();
  double planning_seconds = 0.0;
  std::size_t next = 0;
  WindowEpoch epoch = 0;
  std::vector<RequestId> batch;
  while (next < n) {
    if (planning_seconds > options_.wall_limit_seconds) {
      report->timed_out = true;
      break;  // remaining requests are rejected (DNF, as in the paper)
    }
    const double window_end = (*requests_)[next].release_time + window_min;
    batch.clear();
    while (next < n && (*requests_)[next].release_time < window_end) {
      batch.push_back((*requests_)[next].id);
      ++next;
    }
    fleet_->AdvanceTo(window_end);
    ++epoch;
    const auto win_t0 = std::chrono::steady_clock::now();
    {
      obs::TraceSpan span(
          tracer_.get(), "window",
          {{"epoch", static_cast<std::int64_t>(epoch)},
           {"batch", static_cast<std::int64_t>(batch.size())}});
      batcher->OnBatch(batch, window_end, epoch);
    }
    const double secs = SecondsSince(win_t0);
    planning_seconds += secs;
    report->processed_requests += static_cast<int>(batch.size());
    for (std::size_t b = 0; b < batch.size(); ++b) {
      report->response_stats.Add(secs * 1e3);
    }
  }
  return planning_seconds;
}

double Simulation::RunPipelined(PipelinedBatchPlanner* planner,
                                SimReport* report) {
  // Three-stage pipelined event loop. Stage threads and what they own:
  //
  //   ingest (this thread)  — replays the request table into the bounded
  //     arrival queue in release order; keeps accepting arrivals while
  //     later stages work. Owns: the queue's producer side.
  //   plan (spawned)        — assembles dispatch windows from the queue
  //     (identical boundaries to RunWindowed: first buffered release +
  //     window length) and runs PlanWindow, whose per-shard advance gate
  //     overlaps the previous window's commit tail. Owns: window
  //     assembly, plan-side report fields (windows, plan_ms, timed_out).
  //   commit (spawned)      — applies each planned window in epoch order,
  //     releasing shards for the next window as dependents retire. Owns:
  //     commit-side report fields (processed_requests, response samples,
  //     commit_ms).
  //
  // The report fields the stages write are disjoint, and the main thread
  // reads them only after joining both stages.
  const double window_min = options_.batch_window_s / 60.0;
  // This mode advances the fleet per worker (PlanWindow's shard-by-shard
  // advance gate); nothing ever pops the driver-loop arrival heap, so
  // stop feeding it or it grows by every committed stop for the whole run.
  fleet_->DisableArrivalHeap();
  PipelineStats& ps = report->pipeline;
  ps.enabled = true;
  // Size the planner's window-slot ring before any stage thread exists.
  // (>= 2 is guaranteed by ValidateSimOptions.)
  const int depth = options_.pipeline_depth;
  planner->ConfigurePipeline(depth);
  ps.depth = depth;
  IngestQueue queue(options_.ingest_capacity);
  // --- Admission control / drain configuration (all simulated-time).
  const AdmissionPolicy policy = options_.admission_policy;
  const bool shedding = policy != AdmissionPolicy::kBlock;
  const double slack_floor = options_.admission_slack_min;
  const int admit_budget = shedding ? options_.window_admit_budget : 0;
  // The drain cutoff is a simulated release-time threshold, so the
  // drained (shed) remainder is a pure function of the workload and the
  // options/fault seed — never of wall-clock scheduling. The kDrainTrigger
  // fault site derives its instant from the seed inside the release span.
  double drain_cutoff_min = kInf;
  if (options_.drain_after_s >= 0.0) {
    drain_cutoff_min = options_.drain_after_s / 60.0;
  }
  if (faults_ != nullptr && faults_->armed(FaultSite::kDrainTrigger) &&
      !requests_->empty()) {
    const double lo = requests_->front().release_time;
    const double hi = requests_->back().release_time;
    const double frac =
        0.25 + 0.5 * faults_->StableFraction(FaultSite::kDrainTrigger);
    drain_cutoff_min = std::min(drain_cutoff_min, lo + frac * (hi - lo));
  }
  // Shed/drain decisions are observable: one counter per reason, plus a
  // trace instant per decision (instants leave B/E span balance intact).
  obs::Counter* c_shed_deadline =
      registry_->GetCounter("admission.shed_deadline");
  obs::Counter* c_shed_overload =
      registry_->GetCounter("admission.shed_overload");
  obs::Counter* c_shed_drain = registry_->GetCounter("admission.shed_drain");
  obs::Counter* c_admitted = registry_->GetCounter("admission.admitted");
  // Declared after `queue` so the guard freezes the queue's pull-model
  // gauges (into the surviving registry) before the queue is destroyed.
  obs::CallbackGuard queue_gauges(registry_.get());
  queue.RegisterMetrics(registry_.get(), &queue_gauges);
  std::atomic<bool> plan_busy{false};
  std::atomic<bool> commit_busy{false};
  std::atomic<bool> aborted{false};
  CommitChannel commits;
  // The kill switch and the returned planning time bill the pipeline
  // against ONE elapsed clock: the stages overlap in real time (and
  // PlanWindow's advance gate already blocks on the previous commit), so
  // summing per-stage times would double-count the overlap and trip the
  // wall limit far before the paper's "cumulative planning wall time"
  // semantics intend. ps.plan_ms / ps.commit_ms keep the per-stage
  // totals, documented as overlapping.
  const auto engine_t0 = std::chrono::steady_clock::now();

  std::thread committer([&] {
    for (;;) {
      const CommitJob job = commits.Pop();
      if (job.stop) return;
      commit_busy.store(true, std::memory_order_relaxed);
      const auto c0 = std::chrono::steady_clock::now();
      {
        obs::TraceSpan span(
            tracer_.get(), "commit",
            {{"epoch", static_cast<std::int64_t>(job.epoch)},
             {"members", job.members}});
        planner->CommitWindow(job.epoch);
      }
      const double secs = SecondsSince(c0);
      commit_busy.store(false, std::memory_order_relaxed);
      ps.commit_ms += secs * 1e3;
      ps.commit_window_ms.Add(secs * 1e3);
      // A member's response latency is its window's plan + commit time —
      // dispatch-boundary to fleet-visible assignment.
      report->processed_requests += job.members;
      for (int b = 0; b < job.members; ++b) {
        report->response_stats.Add((job.plan_seconds + secs) * 1e3);
      }
    }
  });

  std::atomic<std::int64_t> shed_budget{0};  // plan-thread window-budget sheds
  std::thread plan_thread([&] {
    const auto queued_ms = [](const Arrival& a) {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - a.enqueued_at)
          .count();
    };
    std::vector<RequestId> batch;
    std::vector<double> slacks;  // parallel to batch (budget victim pick)
    Arrival pending;
    // Queue wait is sampled at Pop time: the arrival that closes window k
    // parks in `pending` across PlanWindow(k), and charging it at the top
    // of window k+1 would bill the whole planning stage as ingest wait.
    double pending_wait_ms = 0.0;
    bool has_pending = false;
    WindowEpoch epoch = 0;
    for (;;) {
      if (!has_pending) {
        if (!queue.Pop(&pending)) break;  // stream closed and drained
        pending_wait_ms = queued_ms(pending);
        has_pending = true;
      }
      if (SecondsSince(engine_t0) > options_.wall_limit_seconds) {
        // Kill switch: stop planning, wake the (possibly blocked)
        // producer, and let the commit stage drain what was planned.
        // Un-planned arrivals stay rejected (DNF, as in the paper).
        report->timed_out = true;
        aborted.store(true, std::memory_order_relaxed);
        queue.Cancel();
        break;
      }
      const double window_end = pending.release_time + window_min;
      batch.clear();
      slacks.clear();
      batch.push_back(pending.id);
      slacks.push_back(pending.slack_min);
      ps.ingest_wait_ms += pending_wait_ms;
      ps.ingest_wait_per_arrival_ms.Add(pending_wait_ms);
      has_pending = false;
      // A window closes when an arrival beyond it shows up or the stream
      // ends — streaming form of RunWindowed's release-order scan, so the
      // window decomposition is identical.
      Arrival a;
      while (queue.Pop(&a)) {
        if (a.release_time < window_end) {
          batch.push_back(a.id);
          slacks.push_back(a.slack_min);
          const double wait_ms = queued_ms(a);
          ps.ingest_wait_ms += wait_ms;
          ps.ingest_wait_per_arrival_ms.Add(wait_ms);
        } else {
          pending = a;
          pending_wait_ms = queued_ms(a);
          has_pending = true;
          break;
        }
      }
      // Per-window admit budget: shed the excess before planning. Window
      // membership is deterministic (release order + window length), so
      // the shed set is too. kShedOldestSlack drops the least-slack
      // members (ties: lowest id); kRejectAtIngress keeps the earliest
      // `admit_budget` releases. A budget >= 1 always keeps the window
      // non-empty, so epochs stay contiguous.
      if (admit_budget > 0 &&
          batch.size() > static_cast<std::size_t>(admit_budget)) {
        const auto excess =
            static_cast<std::int64_t>(batch.size()) - admit_budget;
        if (policy == AdmissionPolicy::kShedOldestSlack) {
          std::vector<std::size_t> order(batch.size());
          for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
          std::sort(order.begin(), order.end(),
                    [&](std::size_t x, std::size_t y) {
                      if (slacks[x] != slacks[y]) return slacks[x] < slacks[y];
                      return batch[x] < batch[y];
                    });
          std::vector<bool> drop(batch.size(), false);
          for (std::int64_t k = 0; k < excess; ++k) {
            drop[order[static_cast<std::size_t>(k)]] = true;
          }
          std::vector<RequestId> kept;
          kept.reserve(static_cast<std::size_t>(admit_budget));
          for (std::size_t i = 0; i < batch.size(); ++i) {
            if (drop[i]) {
              tracer_->Instant("shed.overload", {{"request", batch[i]}});
            } else {
              kept.push_back(batch[i]);
            }
          }
          batch.swap(kept);
        } else {  // kRejectAtIngress: latest releases over budget go
          for (std::size_t i = static_cast<std::size_t>(admit_budget);
               i < batch.size(); ++i) {
            tracer_->Instant("shed.overload", {{"request", batch[i]}});
          }
          batch.resize(static_cast<std::size_t>(admit_budget));
        }
        shed_budget.fetch_add(excess, std::memory_order_relaxed);
        obs::Inc(c_shed_overload, excess);
      }
      ++epoch;
      plan_busy.store(true, std::memory_order_relaxed);
      const auto p0 = std::chrono::steady_clock::now();
      {
        obs::TraceSpan span(
            tracer_.get(), "plan",
            {{"epoch", static_cast<std::int64_t>(epoch)},
             {"batch", static_cast<std::int64_t>(batch.size())}});
        planner->PlanWindow(batch, window_end, epoch);
      }
      const double secs = SecondsSince(p0);
      plan_busy.store(false, std::memory_order_relaxed);
      ps.plan_ms += secs * 1e3;
      ps.plan_window_ms.Add(secs * 1e3);
      ++ps.windows;
      commits.Push({epoch, static_cast<int>(batch.size()), secs, false});
    }
    commits.Push({0, 0, 0.0, true});
  });

  // Ingest stage: replay the request table into the queue. Under kBlock a
  // full queue blocks the producer (backpressure) and nothing is ever
  // shed. Under a shedding policy the two deterministic levers act here
  // (slack floor) and at window assembly (admit budget); TryPush adds the
  // queue-full safety valve without blocking. The drain cutoff ends
  // admission mid-table: the remainder is shed (reason: drain) while the
  // admitted prefix flushes through the normal Close() path — every
  // in-flight window slot plans and commits, unlike the kill switch's
  // Cancel(). Shed counts and the admission-latency digest accumulate in
  // locals and publish after the joins (ps/report fields stay
  // single-writer per stage thread).
  std::int64_t overlapped = 0;
  std::int64_t shed_deadline = 0;
  std::int64_t shed_overload_ingress = 0;
  std::int64_t shed_drain = 0;
  bool drained = false;
  StatsAccumulator admission_latency;
  {
    obs::TraceSpan span(tracer_.get(), "ingest.replay");
    const std::int64_t n = static_cast<std::int64_t>(requests_->size());
    for (std::int64_t i = 0; i < n; ++i) {
      const Request& r = (*requests_)[static_cast<std::size_t>(i)];
      if (aborted.load(std::memory_order_relaxed)) break;
      // Timing-only fault sites: kIngestStall is a frequent short pause,
      // kIngestBurst a rare long one — the arrivals queued up behind a
      // long pause land on the planner as a burst when the producer
      // resumes. Neither changes which arrivals are offered.
      MaybeInject(faults_.get(), FaultSite::kIngestStall);
      MaybeInject(faults_.get(), FaultSite::kIngestBurst);
      if (r.release_time >= drain_cutoff_min) {
        const std::int64_t rest = n - i;
        shed_drain += rest;
        drained = true;
        obs::Inc(c_shed_drain, rest);
        tracer_->Instant(
            "drain.trigger",
            {{"cutoff_min",
              static_cast<std::int64_t>(std::llround(drain_cutoff_min))},
             {"shed", rest}});
        break;
      }
      double slack = kInf;
      if (shedding) {
        // Oracle-free lower bound: even an adjacent idle worker needs at
        // least the Euclidean travel time, so a slack below the floor can
        // never be served — shedding it is correct degradation. Using the
        // Euclidean bound (not the oracle) keeps query counts untouched.
        slack = r.deadline - r.release_time -
                graph_->EuclideanLowerBoundMin(r.origin, r.destination);
        if (slack_floor > 0.0 && slack < slack_floor) {
          ++shed_deadline;
          obs::Inc(c_shed_deadline);
          tracer_->Instant("shed.deadline", {{"request", r.id}});
          continue;
        }
      }
      const auto t0 = std::chrono::steady_clock::now();
      const IngestQueue::PushOutcome outcome =
          queue.TryPush({r.id, r.release_time, slack, t0}, policy);
      admission_latency.Add(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
      if (outcome == IngestQueue::PushOutcome::kCancelled) {
        break;  // cancelled by the kill switch
      }
      if (outcome == IngestQueue::PushOutcome::kRejected) {
        ++shed_overload_ingress;
        obs::Inc(c_shed_overload);
        tracer_->Instant("shed.overload", {{"request", r.id}});
        continue;
      }
      obs::Inc(c_admitted);
      if (plan_busy.load(std::memory_order_relaxed) ||
          commit_busy.load(std::memory_order_relaxed)) {
        ++overlapped;
      }
    }
  }
  queue.Close();
  plan_thread.join();
  committer.join();

  ps.ingested = queue.total_pushed();
  ps.overlapped_arrivals = overlapped;
  ps.occupancy =
      ps.ingested > 0
          ? static_cast<double>(overlapped) / static_cast<double>(ps.ingested)
          : 0.0;
  ps.max_queue_depth = static_cast<std::int64_t>(queue.max_depth());
  ps.backpressure_waits = queue.backpressure_waits();
  ps.speculation_hits = planner->speculation_hits();
  ps.speculation_misses = planner->speculation_misses();
  ps.memo_hits = planner->memo_hits();
  ps.memo_misses = planner->memo_misses();
  ps.memo_saved_queries = planner->memo_saved_queries();
  ps.replans_narrowed = planner->replans_narrowed();
  ps.replans_full = planner->replans_full();
  ps.replan_scope = planner->replan_scope();
  // Queue-full evictions (kShedOldestSlack safety valve) are only known
  // to the queue; fold them into the overload bucket here. The evicted
  // arrivals were already counted by total_pushed, so ingested covers
  // them and dnf = total - processed - shed stays exact.
  if (queue.evicted() > 0) {
    obs::Inc(c_shed_overload, queue.evicted());
    tracer_->Instant("shed.overload.evicted", {{"count", queue.evicted()}});
  }
  ps.admission_latency_ms.Merge(admission_latency);
  ps.drained = drained;
  if (drain_cutoff_min < kInf) ps.drain_cutoff_min = drain_cutoff_min;
  report->shed_deadline = shed_deadline;
  report->shed_overload = shed_overload_ingress + queue.evicted() +
                          shed_budget.load(std::memory_order_relaxed);
  report->shed_drain = shed_drain;
  // Elapsed engine time, measured after both stages drained — each real
  // second of pipelined planning is billed exactly once.
  return SecondsSince(engine_t0);
}

PlannerFactory MakePruneGreedyDpFactory(PlannerConfig config) {
  config.use_pruning = true;
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<GreedyDpPlanner>(ctx, fleet, config);
  };
}

PlannerFactory MakeGreedyDpFactory(PlannerConfig config) {
  config.use_pruning = false;
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<GreedyDpPlanner>(ctx, fleet, config);
  };
}

PlannerFactory MakeParallelGreedyDpFactory(PlannerConfig config) {
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<ParallelGreedyDpPlanner>(ctx, fleet, config,
                                                     ctx->thread_pool());
  };
}

}  // namespace urpsm
