#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "src/parallel/parallel_planner.h"
#include "src/util/stats.h"

namespace urpsm {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Simulation::Simulation(const RoadNetwork* graph, DistanceOracle* oracle,
                       std::vector<Worker> workers,
                       const std::vector<Request>* requests,
                       SimOptions options)
    : graph_(graph),
      oracle_(oracle),
      workers_(std::move(workers)),
      requests_(requests),
      options_(options) {
  for (std::size_t i = 0; i + 1 < requests_->size(); ++i) {
    assert((*requests_)[i].release_time <= (*requests_)[i + 1].release_time);
  }
}

SimReport Simulation::Run(const PlannerFactory& factory) {
  cached_ = std::make_unique<CachedOracle>(oracle_, options_.cache_capacity);
  pool_ = options_.num_threads > 1
              ? std::make_unique<ThreadPool>(options_.num_threads)
              : nullptr;
  fleet_ = std::make_unique<Fleet>(workers_, graph_);
  PlanningContext ctx(graph_, cached_.get(), requests_);
  ctx.set_thread_pool(pool_.get());
  std::unique_ptr<RoutePlanner> planner = factory(&ctx, fleet_.get());

  SimReport report;
  report.algorithm = std::string(planner->name());
  report.total_requests = static_cast<int>(requests_->size());

  StatsAccumulator response_ms;
  const auto t0 = std::chrono::steady_clock::now();
  double planning_seconds = 0.0;

  for (const Request& r : *requests_) {
    if (planning_seconds > options_.wall_limit_seconds) {
      report.timed_out = true;
      break;  // remaining requests are rejected (DNF, as in the paper)
    }
    fleet_->AdvanceTo(r.release_time);
    const auto req_t0 = std::chrono::steady_clock::now();
    planner->OnRequest(r);
    const double secs = SecondsSince(req_t0);
    planning_seconds += secs;
    response_ms.Add(secs * 1e3);
  }
  {
    const auto fin_t0 = std::chrono::steady_clock::now();
    planner->Finalize();
    planning_seconds += SecondsSince(fin_t0);
  }
  fleet_->FinishAll();

  served_.assign(requests_->size(), false);
  double wait_sum = 0.0, detour_sum = 0.0;
  for (const Request& r : *requests_) {
    const bool ok = fleet_->DropoffTime(r.id) < kInf;
    served_[static_cast<std::size_t>(r.id)] = ok;
    if (ok) {
      ++report.served_requests;
      const double pickup = fleet_->PickupTime(r.id);
      const double dropoff = fleet_->DropoffTime(r.id);
      wait_sum += std::max(0.0, pickup - r.release_time);
      const double direct = ctx.DirectDist(r.id);
      if (direct > 1e-9) detour_sum += (dropoff - pickup) / direct;
      report.makespan_min = std::max(report.makespan_min, dropoff);
    } else {
      report.penalty_sum += r.penalty;
    }
  }
  if (report.served_requests > 0) {
    report.mean_pickup_wait_min = wait_sum / report.served_requests;
    report.mean_detour_ratio = detour_sum / report.served_requests;
  }
  report.served_rate =
      report.total_requests == 0
          ? 0.0
          : static_cast<double>(report.served_requests) / report.total_requests;
  report.total_distance = fleet_->committed_distance();
  report.unified_cost =
      options_.alpha * report.total_distance + report.penalty_sum;
  report.avg_response_ms = response_ms.mean();
  report.p50_response_ms = response_ms.Percentile(50);
  report.p95_response_ms = response_ms.Percentile(95);
  report.max_response_ms = response_ms.max();
  report.distance_queries = cached_->query_count();
  report.index_memory_bytes = planner->index_memory_bytes();
  report.wall_seconds = SecondsSince(t0);
  return report;
}

PlannerFactory MakePruneGreedyDpFactory(PlannerConfig config) {
  config.use_pruning = true;
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<GreedyDpPlanner>(ctx, fleet, config);
  };
}

PlannerFactory MakeGreedyDpFactory(PlannerConfig config) {
  config.use_pruning = false;
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<GreedyDpPlanner>(ctx, fleet, config);
  };
}

PlannerFactory MakeParallelGreedyDpFactory(PlannerConfig config) {
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<ParallelGreedyDpPlanner>(ctx, fleet, config,
                                                     ctx->thread_pool());
  };
}

}  // namespace urpsm
