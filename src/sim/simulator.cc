#include "src/sim/simulator.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "src/parallel/ingest_queue.h"
#include "src/parallel/parallel_planner.h"
#include "src/util/stats.h"

namespace urpsm {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One planned window handed from the planning stage to the commit stage.
struct CommitJob {
  WindowEpoch epoch = 0;
  int members = 0;           // batch size, for latency/throughput accounting
  double plan_seconds = 0.0; // the window's planning-stage wall time
  bool stop = false;         // sentinel: planning stage is done
};

/// Unbounded FIFO between the planning and commit threads. Depth is
/// bounded by the planner's slot ring (SimOptions::pipeline_depth): at
/// depth 2 PlanWindow(k+1)'s advance gate cannot fully open before
/// CommitWindow(k) retires, and deeper rings run ahead speculatively
/// until window k - depth's slot is still unreleased — so the planning
/// stage always self-throttles against the commit stage.
class CommitChannel {
 public:
  void Push(const CommitJob& job) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      q_.push_back(job);
    }
    cv_.notify_one();
  }

  CommitJob Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !q_.empty(); });
    const CommitJob job = q_.front();
    q_.pop_front();
    return job;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<CommitJob> q_;
};

}  // namespace

Simulation::Simulation(const RoadNetwork* graph, DistanceOracle* oracle,
                       std::vector<Worker> workers,
                       const std::vector<Request>* requests,
                       SimOptions options)
    : graph_(graph),
      oracle_(oracle),
      workers_(std::move(workers)),
      requests_(requests),
      options_(options) {
  for (std::size_t i = 0; i + 1 < requests_->size(); ++i) {
    assert((*requests_)[i].release_time <= (*requests_)[i + 1].release_time);
  }
  // Ids must be unique and valid; they are resolved through an id->index
  // map downstream, so they need not be dense. Validated unconditionally
  // (release builds too): before this check a non-dense id silently
  // indexed out of bounds, and a duplicate id would silently alias two
  // requests in every id-keyed map — both are unrecoverable input bugs,
  // so fail loudly instead of producing corrupt reports.
  std::unordered_set<RequestId> ids;
  ids.reserve(requests_->size());
  for (const Request& r : *requests_) {
    if (r.id < 0 || !ids.insert(r.id).second) {
      std::fprintf(stderr,
                   "Simulation: invalid or duplicate request id %d\n", r.id);
      std::abort();
    }
  }
}

bool Simulation::request_served(RequestId id) const {
  // served_ is empty before the first Run(); any id reads as not served.
  // Linear scan: this is a post-run inspection helper, not a hot path.
  const std::size_t n = std::min(served_.size(), requests_->size());
  for (std::size_t i = 0; i < n; ++i) {
    if ((*requests_)[i].id == id) return served_[i];
  }
  return false;
}

SimReport Simulation::Run(const PlannerFactory& factory) {
  cached_ = std::make_unique<CachedOracle>(oracle_, options_.cache_capacity);
  pool_ = options_.num_threads > 1
              ? std::make_unique<ThreadPool>(options_.num_threads)
              : nullptr;
  fleet_ = std::make_unique<Fleet>(workers_, graph_);
  registry_ = std::make_unique<obs::Registry>(options_.collect_metrics);
  tracer_ = std::make_unique<obs::TraceRecorder>(options_.trace_path);
  PlanningContext ctx(graph_, cached_.get(), requests_);
  ctx.set_thread_pool(pool_.get());
  ctx.set_metrics(registry_.get());
  ctx.set_tracer(tracer_.get());
  // Components fetch instruments up front; planner construction (below)
  // registers the planner- and shard-side ones through the context.
  cached_->RegisterMetrics(registry_.get());
  if (pool_ != nullptr) pool_->RegisterMetrics(registry_.get());
  std::unique_ptr<RoutePlanner> planner = factory(&ctx, fleet_.get());
  registry_->StartPeriodicExport(options_.metrics_snapshot_path,
                                 options_.metrics_snapshot_period_s);

  SimReport report;
  report.algorithm = std::string(planner->name());
  report.total_requests = static_cast<int>(requests_->size());
  report.num_threads = options_.num_threads;

  StatsAccumulator& response_ms = report.response_stats;
  const auto t0 = std::chrono::steady_clock::now();
  double planning_seconds = 0.0;

  auto* batcher = dynamic_cast<BatchPlanner*>(planner.get());
  auto* pipelined = dynamic_cast<PipelinedBatchPlanner*>(planner.get());
  if (batcher != nullptr && options_.batch_window_s > 0.0) {
    if (options_.pipeline && pipelined != nullptr) {
      planning_seconds = RunPipelined(pipelined, &report);
    } else {
      planning_seconds = RunWindowed(batcher, &report);
    }
  } else {
    planning_seconds = RunPerRequest(planner.get(), &report);
  }
  {
    // Finalize gets only the wall-time budget that is actually left: a
    // timed-out run passes 0 and a batch-style planner must not start
    // unbounded flush work on top of an already-exceeded limit. (Its
    // time used to be added unbounded after the loop had broken.)
    const double budget =
        std::max(0.0, options_.wall_limit_seconds - planning_seconds);
    const auto fin_t0 = std::chrono::steady_clock::now();
    planner->Finalize(budget);
    planning_seconds += SecondsSince(fin_t0);
    if (planning_seconds > options_.wall_limit_seconds) {
      report.timed_out = true;
    }
  }
  fleet_->FinishAll();

  served_.assign(requests_->size(), false);
  double wait_sum = 0.0, detour_sum = 0.0;
  for (std::size_t idx = 0; idx < requests_->size(); ++idx) {
    const Request& r = (*requests_)[idx];
    const bool ok = fleet_->DropoffTime(r.id) < kInf;
    served_[idx] = ok;
    if (ok) {
      ++report.served_requests;
      const double pickup = fleet_->PickupTime(r.id);
      const double dropoff = fleet_->DropoffTime(r.id);
      wait_sum += std::max(0.0, pickup - r.release_time);
      const double direct = ctx.DirectDist(r.id);
      if (direct > 1e-9) detour_sum += (dropoff - pickup) / direct;
      report.makespan_min = std::max(report.makespan_min, dropoff);
    } else {
      report.penalty_sum += r.penalty;
    }
  }
  if (report.served_requests > 0) {
    report.mean_pickup_wait_min = wait_sum / report.served_requests;
    report.mean_detour_ratio = detour_sum / report.served_requests;
  }
  report.served_rate =
      report.total_requests == 0
          ? 0.0
          : static_cast<double>(report.served_requests) / report.total_requests;
  report.total_distance = fleet_->committed_distance();
  report.unified_cost =
      options_.alpha * report.total_distance + report.penalty_sum;
  report.avg_response_ms = response_ms.mean();
  report.p50_response_ms = response_ms.Percentile(50);
  report.p95_response_ms = response_ms.Percentile(95);
  report.p99_response_ms = response_ms.Percentile(99);
  report.max_response_ms = response_ms.max();
  report.distance_queries = cached_->query_count();
  report.index_memory_bytes = planner->index_memory_bytes();
  report.wall_seconds = SecondsSince(t0);
  registry_->StopPeriodicExport();
  report.trace_enabled = tracer_->enabled();
  report.metrics = registry_->Snapshot();  // planner callbacks still live
  // The planner dies with this scope while registry_ survives as a
  // member: freeze its callbacks so a later Snapshot stays safe.
  registry_->FreezeAllCallbacks();
  tracer_->Flush();
  return report;
}

double Simulation::RunPerRequest(RoutePlanner* planner, SimReport* report) {
  double planning_seconds = 0.0;
  for (const Request& r : *requests_) {
    if (planning_seconds > options_.wall_limit_seconds) {
      report->timed_out = true;
      break;  // remaining requests are rejected (DNF, as in the paper)
    }
    fleet_->AdvanceTo(r.release_time);
    const auto req_t0 = std::chrono::steady_clock::now();
    {
      obs::TraceSpan span(tracer_.get(), "request.plan", {{"request", r.id}});
      planner->OnRequest(r);
    }
    const double secs = SecondsSince(req_t0);
    planning_seconds += secs;
    ++report->processed_requests;
    report->response_stats.Add(secs * 1e3);
  }
  return planning_seconds;
}

double Simulation::RunWindowed(BatchPlanner* batcher, SimReport* report) {
  // Lock-step windowed event loop: buffer all requests released within
  // one dispatch window, advance the fleet to the window close, and plan
  // the batch in a single OnBatch call. Each member's recorded response
  // latency is its window's planning latency — what a requester
  // experiences at the dispatch boundary.
  const double window_min = options_.batch_window_s / 60.0;
  const std::size_t n = requests_->size();
  double planning_seconds = 0.0;
  std::size_t next = 0;
  WindowEpoch epoch = 0;
  std::vector<RequestId> batch;
  while (next < n) {
    if (planning_seconds > options_.wall_limit_seconds) {
      report->timed_out = true;
      break;  // remaining requests are rejected (DNF, as in the paper)
    }
    const double window_end = (*requests_)[next].release_time + window_min;
    batch.clear();
    while (next < n && (*requests_)[next].release_time < window_end) {
      batch.push_back((*requests_)[next].id);
      ++next;
    }
    fleet_->AdvanceTo(window_end);
    ++epoch;
    const auto win_t0 = std::chrono::steady_clock::now();
    {
      obs::TraceSpan span(
          tracer_.get(), "window",
          {{"epoch", static_cast<std::int64_t>(epoch)},
           {"batch", static_cast<std::int64_t>(batch.size())}});
      batcher->OnBatch(batch, window_end, epoch);
    }
    const double secs = SecondsSince(win_t0);
    planning_seconds += secs;
    report->processed_requests += static_cast<int>(batch.size());
    for (std::size_t b = 0; b < batch.size(); ++b) {
      report->response_stats.Add(secs * 1e3);
    }
  }
  return planning_seconds;
}

double Simulation::RunPipelined(PipelinedBatchPlanner* planner,
                                SimReport* report) {
  // Three-stage pipelined event loop. Stage threads and what they own:
  //
  //   ingest (this thread)  — replays the request table into the bounded
  //     arrival queue in release order; keeps accepting arrivals while
  //     later stages work. Owns: the queue's producer side.
  //   plan (spawned)        — assembles dispatch windows from the queue
  //     (identical boundaries to RunWindowed: first buffered release +
  //     window length) and runs PlanWindow, whose per-shard advance gate
  //     overlaps the previous window's commit tail. Owns: window
  //     assembly, plan-side report fields (windows, plan_ms, timed_out).
  //   commit (spawned)      — applies each planned window in epoch order,
  //     releasing shards for the next window as dependents retire. Owns:
  //     commit-side report fields (processed_requests, response samples,
  //     commit_ms).
  //
  // The report fields the stages write are disjoint, and the main thread
  // reads them only after joining both stages.
  const double window_min = options_.batch_window_s / 60.0;
  // This mode advances the fleet per worker (PlanWindow's shard-by-shard
  // advance gate); nothing ever pops the driver-loop arrival heap, so
  // stop feeding it or it grows by every committed stop for the whole run.
  fleet_->DisableArrivalHeap();
  PipelineStats& ps = report->pipeline;
  ps.enabled = true;
  // Size the planner's window-slot ring before any stage thread exists.
  const int depth = std::max(2, options_.pipeline_depth);
  planner->ConfigurePipeline(depth);
  ps.depth = depth;
  IngestQueue queue(options_.ingest_capacity);
  // Declared after `queue` so the guard freezes the queue's pull-model
  // gauges (into the surviving registry) before the queue is destroyed.
  obs::CallbackGuard queue_gauges(registry_.get());
  queue.RegisterMetrics(registry_.get(), &queue_gauges);
  std::atomic<bool> plan_busy{false};
  std::atomic<bool> commit_busy{false};
  std::atomic<bool> aborted{false};
  CommitChannel commits;
  // The kill switch and the returned planning time bill the pipeline
  // against ONE elapsed clock: the stages overlap in real time (and
  // PlanWindow's advance gate already blocks on the previous commit), so
  // summing per-stage times would double-count the overlap and trip the
  // wall limit far before the paper's "cumulative planning wall time"
  // semantics intend. ps.plan_ms / ps.commit_ms keep the per-stage
  // totals, documented as overlapping.
  const auto engine_t0 = std::chrono::steady_clock::now();

  std::thread committer([&] {
    for (;;) {
      const CommitJob job = commits.Pop();
      if (job.stop) return;
      commit_busy.store(true, std::memory_order_relaxed);
      const auto c0 = std::chrono::steady_clock::now();
      {
        obs::TraceSpan span(
            tracer_.get(), "commit",
            {{"epoch", static_cast<std::int64_t>(job.epoch)},
             {"members", job.members}});
        planner->CommitWindow(job.epoch);
      }
      const double secs = SecondsSince(c0);
      commit_busy.store(false, std::memory_order_relaxed);
      ps.commit_ms += secs * 1e3;
      ps.commit_window_ms.Add(secs * 1e3);
      // A member's response latency is its window's plan + commit time —
      // dispatch-boundary to fleet-visible assignment.
      report->processed_requests += job.members;
      for (int b = 0; b < job.members; ++b) {
        report->response_stats.Add((job.plan_seconds + secs) * 1e3);
      }
    }
  });

  std::thread plan_thread([&] {
    const auto queued_ms = [](const Arrival& a) {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - a.enqueued_at)
          .count();
    };
    std::vector<RequestId> batch;
    Arrival pending;
    // Queue wait is sampled at Pop time: the arrival that closes window k
    // parks in `pending` across PlanWindow(k), and charging it at the top
    // of window k+1 would bill the whole planning stage as ingest wait.
    double pending_wait_ms = 0.0;
    bool has_pending = false;
    WindowEpoch epoch = 0;
    for (;;) {
      if (!has_pending) {
        if (!queue.Pop(&pending)) break;  // stream closed and drained
        pending_wait_ms = queued_ms(pending);
        has_pending = true;
      }
      if (SecondsSince(engine_t0) > options_.wall_limit_seconds) {
        // Kill switch: stop planning, wake the (possibly blocked)
        // producer, and let the commit stage drain what was planned.
        // Un-planned arrivals stay rejected (DNF, as in the paper).
        report->timed_out = true;
        aborted.store(true, std::memory_order_relaxed);
        queue.Cancel();
        break;
      }
      const double window_end = pending.release_time + window_min;
      batch.clear();
      batch.push_back(pending.id);
      ps.ingest_wait_ms += pending_wait_ms;
      ps.ingest_wait_per_arrival_ms.Add(pending_wait_ms);
      has_pending = false;
      // A window closes when an arrival beyond it shows up or the stream
      // ends — streaming form of RunWindowed's release-order scan, so the
      // window decomposition is identical.
      Arrival a;
      while (queue.Pop(&a)) {
        if (a.release_time < window_end) {
          batch.push_back(a.id);
          const double wait_ms = queued_ms(a);
          ps.ingest_wait_ms += wait_ms;
          ps.ingest_wait_per_arrival_ms.Add(wait_ms);
        } else {
          pending = a;
          pending_wait_ms = queued_ms(a);
          has_pending = true;
          break;
        }
      }
      ++epoch;
      plan_busy.store(true, std::memory_order_relaxed);
      const auto p0 = std::chrono::steady_clock::now();
      {
        obs::TraceSpan span(
            tracer_.get(), "plan",
            {{"epoch", static_cast<std::int64_t>(epoch)},
             {"batch", static_cast<std::int64_t>(batch.size())}});
        planner->PlanWindow(batch, window_end, epoch);
      }
      const double secs = SecondsSince(p0);
      plan_busy.store(false, std::memory_order_relaxed);
      ps.plan_ms += secs * 1e3;
      ps.plan_window_ms.Add(secs * 1e3);
      ++ps.windows;
      commits.Push({epoch, static_cast<int>(batch.size()), secs, false});
    }
    commits.Push({0, 0, 0.0, true});
  });

  // Ingest stage: replay the request table into the queue. Push blocks on
  // a full queue (backpressure) — arrivals are never dropped, the
  // producer is paced instead.
  std::int64_t overlapped = 0;
  {
    obs::TraceSpan span(tracer_.get(), "ingest.replay");
    for (const Request& r : *requests_) {
      if (aborted.load(std::memory_order_relaxed)) break;
      if (!queue.Push({r.id, r.release_time,
                       std::chrono::steady_clock::now()})) {
        break;  // cancelled by the kill switch
      }
      if (plan_busy.load(std::memory_order_relaxed) ||
          commit_busy.load(std::memory_order_relaxed)) {
        ++overlapped;
      }
    }
  }
  queue.Close();
  plan_thread.join();
  committer.join();

  ps.ingested = queue.total_pushed();
  ps.overlapped_arrivals = overlapped;
  ps.occupancy =
      ps.ingested > 0
          ? static_cast<double>(overlapped) / static_cast<double>(ps.ingested)
          : 0.0;
  ps.max_queue_depth = static_cast<std::int64_t>(queue.max_depth());
  ps.backpressure_waits = queue.backpressure_waits();
  ps.speculation_hits = planner->speculation_hits();
  ps.speculation_misses = planner->speculation_misses();
  // Elapsed engine time, measured after both stages drained — each real
  // second of pipelined planning is billed exactly once.
  return SecondsSince(engine_t0);
}

PlannerFactory MakePruneGreedyDpFactory(PlannerConfig config) {
  config.use_pruning = true;
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<GreedyDpPlanner>(ctx, fleet, config);
  };
}

PlannerFactory MakeGreedyDpFactory(PlannerConfig config) {
  config.use_pruning = false;
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<GreedyDpPlanner>(ctx, fleet, config);
  };
}

PlannerFactory MakeParallelGreedyDpFactory(PlannerConfig config) {
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<ParallelGreedyDpPlanner>(ctx, fleet, config,
                                                     ctx->thread_pool());
  };
}

}  // namespace urpsm
