#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "src/parallel/parallel_planner.h"
#include "src/util/stats.h"

namespace urpsm {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Simulation::Simulation(const RoadNetwork* graph, DistanceOracle* oracle,
                       std::vector<Worker> workers,
                       const std::vector<Request>* requests,
                       SimOptions options)
    : graph_(graph),
      oracle_(oracle),
      workers_(std::move(workers)),
      requests_(requests),
      options_(options) {
  for (std::size_t i = 0; i + 1 < requests_->size(); ++i) {
    assert((*requests_)[i].release_time <= (*requests_)[i + 1].release_time);
  }
  // Ids must be unique and valid; they are resolved through an id->index
  // map downstream, so they need not be dense. Validated unconditionally
  // (release builds too): before this check a non-dense id silently
  // indexed out of bounds, and a duplicate id would silently alias two
  // requests in every id-keyed map — both are unrecoverable input bugs,
  // so fail loudly instead of producing corrupt reports.
  std::unordered_set<RequestId> ids;
  ids.reserve(requests_->size());
  for (const Request& r : *requests_) {
    if (r.id < 0 || !ids.insert(r.id).second) {
      std::fprintf(stderr,
                   "Simulation: invalid or duplicate request id %d\n", r.id);
      std::abort();
    }
  }
}

bool Simulation::request_served(RequestId id) const {
  // served_ is empty before the first Run(); any id reads as not served.
  // Linear scan: this is a post-run inspection helper, not a hot path.
  const std::size_t n = std::min(served_.size(), requests_->size());
  for (std::size_t i = 0; i < n; ++i) {
    if ((*requests_)[i].id == id) return served_[i];
  }
  return false;
}

SimReport Simulation::Run(const PlannerFactory& factory) {
  cached_ = std::make_unique<CachedOracle>(oracle_, options_.cache_capacity);
  pool_ = options_.num_threads > 1
              ? std::make_unique<ThreadPool>(options_.num_threads)
              : nullptr;
  fleet_ = std::make_unique<Fleet>(workers_, graph_);
  PlanningContext ctx(graph_, cached_.get(), requests_);
  ctx.set_thread_pool(pool_.get());
  std::unique_ptr<RoutePlanner> planner = factory(&ctx, fleet_.get());

  SimReport report;
  report.algorithm = std::string(planner->name());
  report.total_requests = static_cast<int>(requests_->size());
  report.num_threads = options_.num_threads;

  StatsAccumulator& response_ms = report.response_stats;
  const auto t0 = std::chrono::steady_clock::now();
  double planning_seconds = 0.0;

  auto* batcher = dynamic_cast<BatchPlanner*>(planner.get());
  if (batcher != nullptr && options_.batch_window_s > 0.0) {
    // Windowed event loop: buffer all requests released within one
    // dispatch window, advance the fleet to the window close, and plan
    // the batch in a single OnBatch call. Each member's recorded
    // response latency is its window's planning latency — what a
    // requester experiences at the dispatch boundary.
    const double window_min = options_.batch_window_s / 60.0;
    const std::size_t n = requests_->size();
    std::size_t next = 0;
    std::vector<RequestId> batch;
    while (next < n) {
      if (planning_seconds > options_.wall_limit_seconds) {
        report.timed_out = true;
        break;  // remaining requests are rejected (DNF, as in the paper)
      }
      const double window_end = (*requests_)[next].release_time + window_min;
      batch.clear();
      while (next < n && (*requests_)[next].release_time < window_end) {
        batch.push_back((*requests_)[next].id);
        ++next;
      }
      fleet_->AdvanceTo(window_end);
      const auto win_t0 = std::chrono::steady_clock::now();
      batcher->OnBatch(batch, window_end);
      const double secs = SecondsSince(win_t0);
      planning_seconds += secs;
      report.processed_requests += static_cast<int>(batch.size());
      for (std::size_t b = 0; b < batch.size(); ++b) {
        response_ms.Add(secs * 1e3);
      }
    }
  } else {
    for (const Request& r : *requests_) {
      if (planning_seconds > options_.wall_limit_seconds) {
        report.timed_out = true;
        break;  // remaining requests are rejected (DNF, as in the paper)
      }
      fleet_->AdvanceTo(r.release_time);
      const auto req_t0 = std::chrono::steady_clock::now();
      planner->OnRequest(r);
      const double secs = SecondsSince(req_t0);
      planning_seconds += secs;
      ++report.processed_requests;
      response_ms.Add(secs * 1e3);
    }
  }
  {
    // Finalize gets only the wall-time budget that is actually left: a
    // timed-out run passes 0 and a batch-style planner must not start
    // unbounded flush work on top of an already-exceeded limit. (Its
    // time used to be added unbounded after the loop had broken.)
    const double budget =
        std::max(0.0, options_.wall_limit_seconds - planning_seconds);
    const auto fin_t0 = std::chrono::steady_clock::now();
    planner->Finalize(budget);
    planning_seconds += SecondsSince(fin_t0);
    if (planning_seconds > options_.wall_limit_seconds) {
      report.timed_out = true;
    }
  }
  fleet_->FinishAll();

  served_.assign(requests_->size(), false);
  double wait_sum = 0.0, detour_sum = 0.0;
  for (std::size_t idx = 0; idx < requests_->size(); ++idx) {
    const Request& r = (*requests_)[idx];
    const bool ok = fleet_->DropoffTime(r.id) < kInf;
    served_[idx] = ok;
    if (ok) {
      ++report.served_requests;
      const double pickup = fleet_->PickupTime(r.id);
      const double dropoff = fleet_->DropoffTime(r.id);
      wait_sum += std::max(0.0, pickup - r.release_time);
      const double direct = ctx.DirectDist(r.id);
      if (direct > 1e-9) detour_sum += (dropoff - pickup) / direct;
      report.makespan_min = std::max(report.makespan_min, dropoff);
    } else {
      report.penalty_sum += r.penalty;
    }
  }
  if (report.served_requests > 0) {
    report.mean_pickup_wait_min = wait_sum / report.served_requests;
    report.mean_detour_ratio = detour_sum / report.served_requests;
  }
  report.served_rate =
      report.total_requests == 0
          ? 0.0
          : static_cast<double>(report.served_requests) / report.total_requests;
  report.total_distance = fleet_->committed_distance();
  report.unified_cost =
      options_.alpha * report.total_distance + report.penalty_sum;
  report.avg_response_ms = response_ms.mean();
  report.p50_response_ms = response_ms.Percentile(50);
  report.p95_response_ms = response_ms.Percentile(95);
  report.max_response_ms = response_ms.max();
  report.distance_queries = cached_->query_count();
  report.index_memory_bytes = planner->index_memory_bytes();
  report.wall_seconds = SecondsSince(t0);
  return report;
}

PlannerFactory MakePruneGreedyDpFactory(PlannerConfig config) {
  config.use_pruning = true;
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<GreedyDpPlanner>(ctx, fleet, config);
  };
}

PlannerFactory MakeGreedyDpFactory(PlannerConfig config) {
  config.use_pruning = false;
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<GreedyDpPlanner>(ctx, fleet, config);
  };
}

PlannerFactory MakeParallelGreedyDpFactory(PlannerConfig config) {
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<ParallelGreedyDpPlanner>(ctx, fleet, config,
                                                     ctx->thread_pool());
  };
}

}  // namespace urpsm
