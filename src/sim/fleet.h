#ifndef URPSM_SRC_SIM_FLEET_H_
#define URPSM_SRC_SIM_FLEET_H_

#include <cstdint>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/index/grid_index.h"
#include "src/model/feasibility.h"
#include "src/model/route.h"
#include "src/model/types.h"
#include "src/shortest/oracle.h"

namespace urpsm {

class FleetShards;

/// The moving fleet: every worker's committed route, its progress along it,
/// and the spatial index of worker anchors.
///
/// Motion model (matching the paper's simulation): a worker follows its
/// planned schedule; its position is resolved at stop granularity. When the
/// simulated clock passes a stop's scheduled arrival, the stop is
/// *committed* — it becomes the new route anchor, pickups/drop-offs are
/// recorded, and the grid index is updated. Workers with empty routes idle
/// in place; their anchor time is bumped to "now" before planning so no
/// schedule can depart in the past.
class Fleet {
 public:
  Fleet(std::vector<Worker> workers, const RoadNetwork* graph);

  /// Registers the grid index that should track anchor movement (owned by
  /// the caller); inserts all current anchors.
  void AttachIndex(GridIndex* index);

  /// Switches the fleet into shard-safe mode (nullptr switches back):
  /// Touch, ApplyInsertion, ReplaceRoute and CachedState serialize on the
  /// owning shard's mutex, and the cross-shard state a commit mutates
  /// (arrival heap, grid index, pickup/drop-off records, total distance)
  /// goes behind one commit mutex — so distinct requests may plan and
  /// mutate overlapping worker sets from pool threads concurrently.
  /// With no shards attached (the default) every call stays lock-free and
  /// the PR-2 single-request contract applies. AdvanceTo and FinishAll
  /// remain driver-thread-only in both modes: they walk the arrival heap
  /// unlocked and must not overlap locked mutations.
  void AttachShards(FleetShards* shards);

  int size() const { return static_cast<int>(workers_.size()); }
  const std::vector<Worker>& workers() const { return workers_; }
  const Worker& worker(WorkerId w) const {
    return workers_[static_cast<std::size_t>(w)];
  }
  const Route& route(WorkerId w) const {
    return routes_[static_cast<std::size_t>(w)];
  }

  /// The auxiliary arrays (Sec. 4.3) of worker `w`'s current route,
  /// memoized on Route::version(): a rebuild happens only after the route
  /// actually mutated (Insert/SetStops/PopFront/anchor-time bump), so the
  /// decision and planning phases stop re-deriving O(n) state per
  /// candidate. Equivalent to a fresh BuildRouteState at every call.
  ///
  /// Thread-safety: calls for *distinct* workers may run concurrently
  /// (each worker owns its slot; the planners' parallel phases touch every
  /// candidate exactly once per loop). Without attached shards, calls for
  /// the same worker must be externally ordered — in the planners that
  /// holds because the fleet is frozen between Touch and ApplyInsertion,
  /// so after the decision phase warms a worker's entry, later calls are
  /// pure reads. With shards attached (dispatch-window engine), the
  /// check-and-rebuild is serialized on the worker's shard mutex, so
  /// concurrent requests sharing a candidate may both call this; the
  /// returned reference stays valid while the route's version is stable.
  const RouteState& CachedState(WorkerId w, PlanningContext* ctx);
  /// CachedState for callers that already hold LockWorker(w): the
  /// speculative planning path evaluates a candidate's bound and DP
  /// insertion under one stripe lock (capturing the route version
  /// alongside), so re-acquiring inside would self-deadlock.
  const RouteState& CachedStateLocked(WorkerId w, PlanningContext* ctx);
  const Point& anchor_point(WorkerId w) const {
    return graph_->coord(route(w).anchor());
  }

  /// Worker `w`'s mutex stripe (no-op lock without attached shards). The
  /// speculative planner holds this across each candidate evaluation so
  /// a concurrent commit stage cannot mutate the route mid-read.
  std::unique_lock<std::mutex> LockWorker(WorkerId w) {
    return MaybeLockShard(w);
  }
  /// The cross-shard commit lock (heap/index/records/distance; no-op
  /// without shards). The speculative planner holds it across a grid-
  /// index candidate filter so the read is atomic against the commit
  /// thread's index moves.
  std::unique_lock<std::mutex> LockCommitState() { return MaybeLockCommit(); }

  /// Commits every stop scheduled at or before `t`, fleet-wide. Amortized
  /// O(log |W|) per committed stop via the arrival heap.
  void AdvanceTo(double t);

  /// Ensures worker `w` can be planned at time `t`: commits its due stops
  /// and, if idle, moves its clock forward to `t`.
  void Touch(WorkerId w, double t);

  /// Commits worker `w`'s stops due at or before `t` — Touch without the
  /// idle-clock bump, i.e. exactly worker `w`'s share of AdvanceTo(t).
  /// The pipelined dispatch engine advances the fleet through this, shard
  /// by shard, instead of the driver-only heap walk: per-worker advance
  /// results are independent of each other, so a fixed shard-then-worker
  /// call order reproduces AdvanceTo's end state deterministically while
  /// individual shards advance as the previous window releases them.
  /// Shard-locked like Touch; safe to interleave with commit-stage
  /// mutations of workers in other shards.
  void AdvanceWorkerTo(WorkerId w, double t);

  /// Applies an insertion (pickup after position i, drop-off after j) to
  /// worker `w`'s route and records the assignment.
  void ApplyInsertion(WorkerId w, const Request& r, int i, int j,
                      DistanceOracle* oracle);

  /// Replaces worker `w`'s pending stops wholesale (kinetic-tree planners
  /// may reorder existing stops) and records that `r` is now assigned to
  /// `w`. Leg costs are recomputed through `oracle`.
  void ReplaceRoute(WorkerId w, const Request& r, std::vector<Stop> stops,
                    DistanceOracle* oracle);

  /// Commits all remaining stops (end of simulation).
  void FinishAll();

  /// Drops the arrival heap and stops feeding it: commits no longer push
  /// entries, and AdvanceTo becomes a no-op. The pipelined engine calls
  /// this before its stages start — it advances the fleet exclusively
  /// through AdvanceWorkerTo, so heap entries would accumulate for the
  /// whole run with no consumer (three pushes per served request).
  /// Irreversible for this Fleet; must not be combined with AdvanceTo.
  void DisableArrivalHeap();

  /// Worker assigned to a request, or kInvalidWorker.
  WorkerId AssignedWorker(RequestId r) const;
  /// Recorded pickup / drop-off times (kInf when the event never happened).
  double PickupTime(RequestId r) const;
  double DropoffTime(RequestId r) const;

  /// One executed stop: what was committed, when, at which vertex.
  struct CommittedStop {
    Stop stop;
    double time = 0.0;
  };

  /// Full execution log of worker `w`, in commit order. Used by the
  /// invariant checker (capacity/ordering/deadline replay).
  const std::vector<CommittedStop>& CommitLog(WorkerId w) const {
    return commit_log_[static_cast<std::size_t>(w)];
  }

  /// Total distance (travel time) driven so far by all workers, committed
  /// legs only.
  double committed_distance() const { return committed_distance_; }
  /// Committed plus still-planned distance: equals sum_w D(S_w) over the
  /// full simulation once all requests are in.
  double TotalPlannedDistance() const;

 private:
  void CommitFront(WorkerId w);
  void PushHeap(WorkerId w);
  /// Shard lock of worker `w` when shards are attached, else a no-op lock.
  std::unique_lock<std::mutex> MaybeLockShard(WorkerId w);
  /// Commit lock (heap/index/records/distance) when sharded, else no-op.
  std::unique_lock<std::mutex> MaybeLockCommit();

  struct StateCacheEntry {
    std::uint64_t route_version = 0;
    bool valid = false;
    RouteState state;
  };

  struct HeapEntry {
    double arrival;
    WorkerId worker;
    // Route::version() at push time; a mismatch on pop means the route
    // mutated since and the entry is stale. (The route's counter is the
    // single mutation clock — the state cache keys on it too.)
    std::uint64_t version;
    bool operator>(const HeapEntry& o) const { return arrival > o.arrival; }
  };

  std::vector<Worker> workers_;
  const RoadNetwork* graph_;
  GridIndex* index_ = nullptr;
  FleetShards* shards_ = nullptr;  // non-null => shard-safe mode
  bool heap_enabled_ = true;       // false => per-worker advance only
  std::mutex commit_mu_;           // guards cross-shard commit state
  std::vector<Route> routes_;
  std::vector<StateCacheEntry> state_cache_;  // slot w ↔ routes_[w]
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;

  std::unordered_map<RequestId, WorkerId> assignment_;
  std::unordered_map<RequestId, double> pickup_time_;
  std::unordered_map<RequestId, double> dropoff_time_;
  std::vector<std::vector<CommittedStop>> commit_log_;
  double committed_distance_ = 0.0;
};

}  // namespace urpsm

#endif  // URPSM_SRC_SIM_FLEET_H_
