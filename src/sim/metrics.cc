#include "src/sim/metrics.h"

#include <cassert>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace urpsm {

SimReport AverageReports(const std::vector<SimReport>& reports) {
  assert(!reports.empty());
  SimReport avg;
  avg.algorithm = reports.front().algorithm;
  avg.total_requests = reports.front().total_requests;
  avg.num_threads = reports.front().num_threads;
  const double n = static_cast<double>(reports.size());
  double served = 0.0, processed = 0.0, queries = 0.0, index_mem = 0.0;
  double rejected = 0.0, shed = 0.0, dnf = 0.0;
  double shed_deadline = 0.0, shed_overload = 0.0, shed_drain = 0.0;
  double pl_windows = 0.0, pl_ingested = 0.0, pl_overlapped = 0.0,
         pl_backpressure = 0.0, pl_spec_hits = 0.0, pl_spec_misses = 0.0;
  double pl_memo_hits = 0.0, pl_memo_misses = 0.0, pl_memo_saved = 0.0,
         pl_narrowed = 0.0, pl_full = 0.0;
  std::map<std::string, std::pair<double, int>> metric_sums;  // sum, runs
  for (const SimReport& r : reports) {
    served += r.served_requests;
    processed += r.processed_requests;
    rejected += r.rejected_requests;
    shed += r.shed_requests;
    dnf += r.dnf_requests;
    shed_deadline += static_cast<double>(r.shed_deadline);
    shed_overload += static_cast<double>(r.shed_overload);
    shed_drain += static_cast<double>(r.shed_drain);
    avg.served_rate += r.served_rate / n;
    avg.unified_cost += r.unified_cost / n;
    avg.total_distance += r.total_distance / n;
    avg.penalty_sum += r.penalty_sum / n;
    // Latency distribution: pool the per-request samples. An average of
    // per-run percentiles is not a percentile of the pooled runs (two
    // skewed runs can move it arbitrarily far from the true pooled p50).
    avg.response_stats.Merge(r.response_stats);
    queries += static_cast<double>(r.distance_queries);
    index_mem += static_cast<double>(r.index_memory_bytes);
    // An error bound must stay a bound across pooled runs: take the max.
    avg.oracle_quant_error_bound =
        std::max(avg.oracle_quant_error_bound, r.oracle_quant_error_bound);
    avg.wall_seconds += r.wall_seconds / n;
    avg.timed_out = avg.timed_out || r.timed_out;
    avg.mean_pickup_wait_min += r.mean_pickup_wait_min / n;
    avg.mean_detour_ratio += r.mean_detour_ratio / n;
    avg.makespan_min = std::max(avg.makespan_min, r.makespan_min);
    // Pipeline stage counters: means for the rates/totals, max for the
    // backlog high-water mark (a depth mean would hide the worst burst).
    // Integer counters accumulate below and round ONCE after the loop —
    // rounding each term would collapse small counts (3 runs of
    // windows = 1 would average to 0).
    avg.pipeline.enabled = avg.pipeline.enabled || r.pipeline.enabled;
    pl_windows += r.pipeline.windows;
    pl_ingested += static_cast<double>(r.pipeline.ingested);
    pl_overlapped += static_cast<double>(r.pipeline.overlapped_arrivals);
    pl_backpressure += static_cast<double>(r.pipeline.backpressure_waits);
    avg.pipeline.occupancy += r.pipeline.occupancy / n;
    avg.pipeline.max_queue_depth =
        std::max(avg.pipeline.max_queue_depth, r.pipeline.max_queue_depth);
    avg.pipeline.ingest_wait_ms += r.pipeline.ingest_wait_ms / n;
    avg.pipeline.plan_ms += r.pipeline.plan_ms / n;
    avg.pipeline.commit_ms += r.pipeline.commit_ms / n;
    // The ring size is a run parameter, not a measurement: repeats share
    // it, so max just propagates it (and flags mixed-depth pools).
    avg.pipeline.depth = std::max(avg.pipeline.depth, r.pipeline.depth);
    pl_spec_hits += static_cast<double>(r.pipeline.speculation_hits);
    pl_spec_misses += static_cast<double>(r.pipeline.speculation_misses);
    pl_memo_hits += static_cast<double>(r.pipeline.memo_hits);
    pl_memo_misses += static_cast<double>(r.pipeline.memo_misses);
    pl_memo_saved += static_cast<double>(r.pipeline.memo_saved_queries);
    pl_narrowed += static_cast<double>(r.pipeline.replans_narrowed);
    pl_full += static_cast<double>(r.pipeline.replans_full);
    // Stage-time distributions pool like the latency samples do.
    avg.pipeline.plan_window_ms.Merge(r.pipeline.plan_window_ms);
    avg.pipeline.replan_scope.Merge(r.pipeline.replan_scope);
    avg.pipeline.commit_window_ms.Merge(r.pipeline.commit_window_ms);
    avg.pipeline.ingest_wait_per_arrival_ms.Merge(
        r.pipeline.ingest_wait_per_arrival_ms);
    avg.pipeline.admission_latency_ms.Merge(r.pipeline.admission_latency_ms);
    // Drain flags/cutoffs behave like run parameters: OR / max-propagate.
    avg.pipeline.drained = avg.pipeline.drained || r.pipeline.drained;
    avg.pipeline.drain_cutoff_min =
        std::max(avg.pipeline.drain_cutoff_min, r.pipeline.drain_cutoff_min);
    avg.trace_enabled = avg.trace_enabled || r.trace_enabled;
    // Registry snapshots: element-wise mean over the runs that reported
    // the key (percentile sub-keys of a pooled distribution would need
    // the digests — the pipeline stage digests above carry those; the
    // map keeps counter/gauge magnitudes comparable across sweeps).
    for (const auto& [k, v] : r.metrics) {
      metric_sums[k].first += v;
      metric_sums[k].second += 1;
    }
  }
  for (const auto& [k, sc] : metric_sums) {
    avg.metrics[k] = sc.first / static_cast<double>(sc.second);
  }
  avg.avg_response_ms = avg.response_stats.mean();
  avg.p50_response_ms = avg.response_stats.Percentile(50);
  avg.p95_response_ms = avg.response_stats.Percentile(95);
  avg.p99_response_ms = avg.response_stats.Percentile(99);
  avg.max_response_ms = avg.response_stats.max();
  avg.served_requests = static_cast<int>(std::lround(served / n));
  avg.processed_requests = static_cast<int>(std::lround(processed / n));
  avg.rejected_requests = static_cast<int>(std::lround(rejected / n));
  avg.shed_requests = static_cast<int>(std::lround(shed / n));
  avg.dnf_requests = static_cast<int>(std::lround(dnf / n));
  avg.shed_deadline = std::llround(shed_deadline / n);
  avg.shed_overload = std::llround(shed_overload / n);
  avg.shed_drain = std::llround(shed_drain / n);
  avg.distance_queries = static_cast<std::int64_t>(std::llround(queries / n));
  avg.index_memory_bytes =
      static_cast<std::int64_t>(std::llround(index_mem / n));
  avg.pipeline.windows = static_cast<int>(std::lround(pl_windows / n));
  avg.pipeline.ingested =
      static_cast<std::int64_t>(std::llround(pl_ingested / n));
  avg.pipeline.overlapped_arrivals =
      static_cast<std::int64_t>(std::llround(pl_overlapped / n));
  avg.pipeline.backpressure_waits =
      static_cast<std::int64_t>(std::llround(pl_backpressure / n));
  avg.pipeline.speculation_hits =
      static_cast<std::int64_t>(std::llround(pl_spec_hits / n));
  avg.pipeline.speculation_misses =
      static_cast<std::int64_t>(std::llround(pl_spec_misses / n));
  avg.pipeline.memo_hits =
      static_cast<std::int64_t>(std::llround(pl_memo_hits / n));
  avg.pipeline.memo_misses =
      static_cast<std::int64_t>(std::llround(pl_memo_misses / n));
  avg.pipeline.memo_saved_queries =
      static_cast<std::int64_t>(std::llround(pl_memo_saved / n));
  avg.pipeline.replans_narrowed =
      static_cast<std::int64_t>(std::llround(pl_narrowed / n));
  avg.pipeline.replans_full =
      static_cast<std::int64_t>(std::llround(pl_full / n));
  return avg;
}

namespace {

constexpr double kTimeEps = 1e-6;  // float tolerance on schedule arithmetic

InvariantReport Fail(const std::string& msg) { return {false, msg}; }

}  // namespace

InvariantReport CheckAccounting(const SimReport& r) {
  const auto count = [](const char* name, long long v) {
    return std::string(name) + "=" + std::to_string(v);
  };
  if (r.served_requests < 0 || r.rejected_requests < 0 ||
      r.shed_requests < 0 || r.dnf_requests < 0 || r.processed_requests < 0 ||
      r.shed_deadline < 0 || r.shed_overload < 0 || r.shed_drain < 0) {
    return Fail("negative accounting bucket");
  }
  if (r.served_requests + r.rejected_requests + r.shed_requests +
          r.dnf_requests !=
      r.total_requests) {
    return Fail("served + rejected + shed + dnf != total (" +
                count("served", r.served_requests) + ", " +
                count("rejected", r.rejected_requests) + ", " +
                count("shed", r.shed_requests) + ", " +
                count("dnf", r.dnf_requests) + ", " +
                count("total", r.total_requests) + ")");
  }
  if (r.rejected_requests != r.processed_requests - r.served_requests) {
    return Fail("rejected != processed - served (" +
                count("rejected", r.rejected_requests) + ", " +
                count("processed", r.processed_requests) + ", " +
                count("served", r.served_requests) + ")");
  }
  if (r.shed_deadline + r.shed_overload + r.shed_drain !=
      static_cast<std::int64_t>(r.shed_requests)) {
    return Fail("shed by-reason counts do not sum to shed_requests (" +
                count("deadline", r.shed_deadline) + ", " +
                count("overload", r.shed_overload) + ", " +
                count("drain", r.shed_drain) + ", " +
                count("shed", r.shed_requests) + ")");
  }
  return {};
}

InvariantReport VerifyInvariants(const Fleet& fleet,
                                 const std::vector<Request>& requests,
                                 bool mid_run) {
  // Requests are looked up by id, never by vector position: workloads with
  // gappy or reordered ids must verify the same way dense ones do.
  std::unordered_map<RequestId, const Request*> by_id;
  by_id.reserve(requests.size());
  for (const Request& r : requests) by_id.emplace(r.id, &r);
  std::unordered_set<RequestId> seen_served;
  for (WorkerId w = 0; w < fleet.size(); ++w) {
    const Worker& worker = fleet.worker(w);
    int load = 0;
    double prev_time = 0.0;
    std::unordered_set<RequestId> onboard;
    for (const Fleet::CommittedStop& cs : fleet.CommitLog(w)) {
      const auto it = by_id.find(cs.stop.request);
      if (it == by_id.end()) {
        return Fail("committed stop references unknown request " +
                    std::to_string(cs.stop.request));
      }
      const Request& r = *it->second;
      std::ostringstream at;
      at << "worker " << w << ", request " << r.id << ", t=" << cs.time;
      if (cs.time + kTimeEps < prev_time) {
        return Fail("time went backwards at " + at.str());
      }
      prev_time = cs.time;
      if (cs.stop.kind == StopKind::kPickup) {
        if (!onboard.insert(cs.stop.request).second) {
          return Fail("double pickup at " + at.str());
        }
        load += r.capacity;
        if (load > worker.capacity) {
          return Fail("capacity exceeded at " + at.str());
        }
      } else {
        if (!onboard.erase(cs.stop.request)) {
          return Fail("drop-off before pickup at " + at.str());
        }
        load -= r.capacity;
        if (cs.time > r.deadline + kTimeEps) {
          return Fail("deadline violated at " + at.str());
        }
        if (!seen_served.insert(cs.stop.request).second) {
          return Fail("request served twice at " + at.str());
        }
        if (fleet.AssignedWorker(cs.stop.request) != w) {
          return Fail("served by unassigned worker at " + at.str());
        }
      }
    }
    if (!mid_run && !onboard.empty()) {
      return Fail("worker " + std::to_string(w) +
                  " finished with passengers on board");
    }
  }
  // (4) served/rejected partition. Mid-run, an assigned request may still
  // be en route (drop-off pending); a delivery without an assignment is a
  // violation at any point.
  for (const Request& r : requests) {
    const bool assigned = fleet.AssignedWorker(r.id) != kInvalidWorker;
    const bool delivered = seen_served.contains(r.id);
    if (delivered && !assigned) {
      return Fail("request " + std::to_string(r.id) +
                  " delivered without assignment");
    }
    if (!mid_run && assigned != delivered) {
      return Fail("request " + std::to_string(r.id) +
                  " assigned/delivered mismatch");
    }
  }
  return {};
}

}  // namespace urpsm
