#ifndef URPSM_SRC_SIM_DISPATCH_WINDOW_H_
#define URPSM_SRC_SIM_DISPATCH_WINDOW_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "src/core/planner.h"
#include "src/insertion/insertion.h"
#include "src/parallel/fleet_shards.h"
#include "src/parallel/thread_pool.h"

namespace urpsm {

/// Batched dispatch-window engine: pruneGreedyDP lifted from per-request
/// to per-window planning with *whole-request* parallelism, and — in the
/// pipelined driving mode — cross-window per-shard scheduling.
///
/// The simulation buffers every request released within one dispatch
/// window (SimOptions::batch_window_s) and hands the batch over at the
/// window close, with the fleet advanced to that instant. The engine then
/// plans the batch as the paper's assignment problem:
///
///   1. Advance gate (per shard): in the pipelined mode each shard's
///      workers are advanced to the window close as soon as the previous
///      window's commit stage releases that shard (FleetShards epoch
///      marks) — a shard task of window k+1 starts while distant shards
///      still commit window k. In the windowed mode the simulator has
///      already advanced the fleet and the gates are trivially open.
///   2. Prep (planning thread): per request — direct distance,
///      unservability and radius checks, grid-index candidate filter,
///      Fleet::Touch of every candidate. Touching mutates fleet + index,
///      so it stays serial.
///   3. Decision + planning (parallel, per-request dependency chains):
///      workers are partitioned into grid-region shards (FleetShards);
///      one task per (request, candidate shard). A request's planning
///      tasks start the moment its OWN decision tasks finish — there is
///      no global phase barrier across requests. The rejection test
///      (Algo. 4) and AscendingLowerBoundOrder run on whichever thread
///      completed the request's last decision task; both are pure
///      functions of the bounds, so the results are schedule-independent.
///      Planning tasks evaluate the exact linear-DP insertions of their
///      shard's candidates in the global scan order with a shard-local
///      Lemma 8 cutoff.
///   4. Merge (planning thread): the per-request winner is the (delta,
///      scan-position) minimum over shard tasks — bit-identical to the
///      sequential pruned scan's first-strict-improvement winner, because
///      the epsilon-guarded cutoff never prunes a candidate that could
///      beat or tie, and lexicographic min is merge-order independent.
///   5. Commit (commit stage): proposals apply in unified-cost-then-
///      request-id order. A proposal whose worker's route changed under
///      it (an earlier batch member won the same worker) is replanned
///      sequentially against the updated fleet; rejections stay final
///      (Def. 5). As the last proposal (or potential replan) that could
///      touch a shard retires, the shard is released for the next
///      window's advance gate.
///
/// Determinism: tasks are pure functions of the fleet snapshot the
/// previous commit left behind, task decomposition depends only on
/// structural constants (never the thread count), merges are
/// order-independent lexicographic minima, conflicts resolve in a total
/// order, and the pipelined advance executes in fixed shard-then-worker
/// order on one thread — so for any window length the results are
/// bit-identical across thread counts (and across ingest-queue
/// capacities), and a window of 0 (the simulator then drives OnRequest
/// per release) reproduces the sequential pruneGreedyDP run exactly.
class DispatchWindowPlanner : public PipelinedBatchPlanner {
 public:
  /// `pool` is borrowed and may be nullptr (phases then run inline).
  DispatchWindowPlanner(PlanningContext* ctx, Fleet* fleet,
                        PlannerConfig config, ThreadPool* pool);
  ~DispatchWindowPlanner() override;

  /// Singleton batch at the release time — the window = 0 semantics.
  WorkerId OnRequest(const Request& r) override;
  /// The windowed (non-pipelined) mode: plan + commit fused on the
  /// calling thread. Exactly PlanWindow(without self-advance) followed by
  /// CommitWindow — the pipelined split shares this one implementation.
  void OnBatch(const std::vector<RequestId>& batch, double now,
               WindowEpoch epoch) override;
  void PlanWindow(const std::vector<RequestId>& batch, double now,
                  WindowEpoch epoch) override;
  void CommitWindow(WindowEpoch epoch) override;
  std::string_view name() const override {
    return config_.use_pruning ? "windowPruneGreedyDP" : "windowGreedyDP";
  }
  std::int64_t index_memory_bytes() const override {
    return index_->MemoryBytes();
  }

  /// Exact linear-DP evaluations performed (including commit-stage
  /// replans). Thread-count independent for a fixed window length (the
  /// task decomposition is structural). Read only after the run
  /// quiesced — the commit stage contributes while a window is in flight.
  std::int64_t exact_evaluations() const {
    return exact_evaluations_ + slots_[0].commit_evals +
           slots_[1].commit_evals;
  }
  /// Proposals that lost their worker to an earlier batch member and went
  /// through the sequential replanning path. Quiescent read, as above.
  std::int64_t conflict_replans() const {
    return slots_[0].commit_replans + slots_[1].commit_replans;
  }
  /// The engine's shard partition (epoch marks are inspectable in tests).
  const FleetShards& shards() const { return *shards_; }

 private:
  /// A request's chosen insertion against a fleet snapshot, keyed by the
  /// worker's route version so conflict resolution can detect staleness.
  struct Proposal {
    RequestId request = kInvalidRequest;
    WorkerId worker = kInvalidWorker;
    double delta = kInf;  // exact increased distance (unified cost / alpha)
    int i = -1;
    int j = -1;
    std::uint64_t route_version = 0;
  };

  /// Per-request window state (filter output + decision arrays).
  struct Prep {
    const Request* r = nullptr;
    double L = 0.0;
    std::vector<WorkerId> candidates;
    std::vector<int> shard;   // aligned with candidates: ShardOf(candidate)
    std::vector<double> lbs;  // aligned with candidates, kInf = infeasible
    std::vector<WorkerBound> bounds;
    std::vector<std::size_t> order;  // scan order into bounds
    std::size_t task_begin = 0;      // this request's tasks: [begin, end)
    std::size_t task_end = 0;
    bool alive = false;
  };

  /// One (request, shard) task — the unit of BOTH the decision and the
  /// planning pass (same structural decomposition, so the planning pass
  /// scans exactly the candidates whose bounds this task produced).
  struct ShardTask {
    std::size_t req = 0;                 // index into preps
    int shard = 0;
    std::vector<std::size_t> members;    // candidate positions in shard
    /// This shard's scan positions (into the request's order), ascending;
    /// distributed by the request's rejection/ordering step so each
    /// planning task walks only its own share of the scan.
    std::vector<std::size_t> plan_positions;
    InsertionCandidate best;             // planning result
    std::size_t best_pos = 0;            // scan position of `best`
    WorkerId best_worker = kInvalidWorker;
    std::int64_t evals = 0;
  };

  /// One dispatch window in flight. Two slots double-buffer the pipeline:
  /// while window k's slot sits in the commit stage, window k+1 plans
  /// into the other. Slot reuse is safe without further synchronization
  /// because PlanWindow(k+2)'s advance gate cannot open before window
  /// k+1 — and therefore window k, whose slot it reuses — fully
  /// committed.
  struct WindowSlot {
    WindowEpoch epoch = 0;
    double now = 0.0;
    std::vector<Prep> preps;
    std::vector<ShardTask> tasks;
    std::vector<Proposal> proposals;
    std::vector<std::size_t> accepted;  // apply order (cost, then id)
    /// Per shard: index into `accepted` after whose retirement the shard
    /// can be released to the next window (-1 = untouched, release at
    /// commit start).
    std::vector<std::ptrdiff_t> release_at;
    // Commit-stage counters, cumulative over the slot's lifetime
    // (written by the commit thread; read quiescently).
    std::int64_t commit_evals = 0;
    std::int64_t commit_replans = 0;
  };

  /// Runs body over [0, n) on the pool when attached, inline otherwise.
  void ForEach(std::size_t n, const std::function<void(std::int64_t)>& body);
  /// Full sequential pruneGreedyDP pass for one request against the
  /// *current* fleet (conflict replanning). Returns false on rejection.
  /// DP evaluations are counted into *evals (commit-stage callers pass
  /// their slot counter, the planning thread passes its own).
  bool PlanSequential(const Request& r, const std::vector<WorkerId>& candidates,
                      Proposal* out, std::int64_t* evals);
  /// The window = 0 / singleton-batch path: filter + touch + the shared
  /// sequential scan + apply. No shard rebuild, no task machinery.
  void PlanAndApplySingle(const Request& r, double now);
  /// Stages 1-4: fills `slot` with this window's proposals. With
  /// `self_advance`, runs the per-shard advance gate (pipelined mode);
  /// without, the fleet is already at `now` and only the epoch waits
  /// (trivially satisfied in the fused mode) remain.
  void PlanInto(WindowSlot* slot, const std::vector<RequestId>& batch,
                double now, WindowEpoch epoch, bool self_advance);
  /// Stage 5 on `slot`, releasing shards as their dependents retire.
  void CommitSlot(WindowSlot* slot);

  PlanningContext* ctx_;
  Fleet* fleet_;
  PlannerConfig config_;
  ThreadPool* pool_;
  std::unique_ptr<GridIndex> index_;
  std::unique_ptr<FleetShards> shards_;
  std::int64_t exact_evaluations_ = 0;  // planning-thread evaluations
  // Per-window scratch, planning-thread only (buffers stay warm across
  // windows; the atomic chain counters are rebuilt per window inside
  // PlanInto — they need fresh initialization stores anyway).
  std::vector<std::uint8_t> touched_;               // worker-indexed
  std::vector<std::vector<std::size_t>> by_shard_;  // shard-indexed
  std::vector<std::size_t> best_pos_of_;            // request-indexed
  WindowSlot slots_[2];
};

/// DispatchWindowPlanner on the simulation's pool; the windowed twin of
/// pruneGreedyDP. Drive it with SimOptions::batch_window_s > 0 for real
/// windows (plus SimOptions::pipeline for the three-stage pipelined
/// loop), or 0 for the bit-identical per-request mode.
PlannerFactory MakeDispatchWindowFactory(PlannerConfig config);

}  // namespace urpsm

#endif  // URPSM_SRC_SIM_DISPATCH_WINDOW_H_
