#ifndef URPSM_SRC_SIM_DISPATCH_WINDOW_H_
#define URPSM_SRC_SIM_DISPATCH_WINDOW_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "src/core/planner.h"
#include "src/parallel/fleet_shards.h"
#include "src/parallel/thread_pool.h"

namespace urpsm {

/// Batched dispatch-window engine: pruneGreedyDP lifted from per-request
/// to per-window planning with *whole-request* parallelism.
///
/// The simulation buffers every request released within one dispatch
/// window (SimOptions::batch_window_s) and hands the batch over at the
/// window close, with the fleet advanced to that instant. The engine then
/// plans the batch as the paper's assignment problem:
///
///   1. Prep (driver): per request — direct distance, unservability and
///      radius checks, grid-index candidate filter, Fleet::Touch of every
///      candidate. Touching mutates fleet + index, so it stays serial.
///   2. Decision phase (parallel): workers are partitioned into
///      grid-region shards (FleetShards); one task per (request,
///      candidate shard) computes that shard's decision lower bounds.
///      Route-state cache rebuilds serialize on the shard's lock, so
///      requests sharing candidates are race-free.
///   3. Rejection + scan order (driver): per request, the bounds merge in
///      candidate order — exactly the array the sequential planner builds
///      — and Algo. 4's penalty test plus AscendingLowerBoundOrder run
///      unchanged.
///   4. Planning phase (parallel): one task per (request, candidate
///      shard) evaluates the exact linear-DP insertions of its shard's
///      candidates in the global scan order with a shard-local Lemma 8
///      cutoff. The per-request winner is the (delta, scan-position)
///      minimum over shards — bit-identical to the sequential pruned
///      scan's first-strict-improvement winner, because the epsilon-
///      guarded cutoff never prunes a candidate that could beat or tie.
///   5. Conflict resolution (driver): proposals apply in unified-cost-
///      then-request-id order. A proposal whose worker's route changed
///      under it (an earlier batch member won the same worker) is
///      replanned sequentially against the updated fleet; rejections
///      stay final (Def. 5).
///
/// Determinism: tasks are pure functions of the frozen fleet, task
/// decomposition depends only on structural constants (never the thread
/// count), merges happen in fixed orders on the driver, and conflicts
/// resolve in a total order — so for any window length the results are
/// bit-identical across thread counts, and a window of 0 (the simulator
/// then drives OnRequest per release, i.e. singleton batches at release
/// time) reproduces the sequential pruneGreedyDP run exactly.
class DispatchWindowPlanner : public BatchPlanner {
 public:
  /// `pool` is borrowed and may be nullptr (phases then run inline).
  DispatchWindowPlanner(PlanningContext* ctx, Fleet* fleet,
                        PlannerConfig config, ThreadPool* pool);
  ~DispatchWindowPlanner() override;

  /// Singleton batch at the release time — the window = 0 semantics.
  WorkerId OnRequest(const Request& r) override;
  void OnBatch(const std::vector<RequestId>& batch, double now) override;
  std::string_view name() const override {
    return config_.use_pruning ? "windowPruneGreedyDP" : "windowGreedyDP";
  }
  std::int64_t index_memory_bytes() const override {
    return index_->MemoryBytes();
  }

  /// Exact linear-DP evaluations performed. Thread-count independent for
  /// a fixed window length (the task decomposition is structural).
  std::int64_t exact_evaluations() const { return exact_evaluations_; }
  /// Proposals that lost their worker to an earlier batch member and went
  /// through the sequential replanning path.
  std::int64_t conflict_replans() const { return conflict_replans_; }

 private:
  /// A request's chosen insertion against a fleet snapshot, keyed by the
  /// worker's route version so conflict resolution can detect staleness.
  struct Proposal {
    RequestId request = kInvalidRequest;
    WorkerId worker = kInvalidWorker;
    double delta = kInf;  // exact increased distance (unified cost / alpha)
    int i = -1;
    int j = -1;
    std::uint64_t route_version = 0;
  };

  /// Runs body over [0, n) on the pool when attached, inline otherwise.
  void ForEach(std::size_t n, const std::function<void(std::int64_t)>& body);
  /// Full sequential pruneGreedyDP pass for one request against the
  /// *current* fleet (conflict replanning). Returns false on rejection.
  bool PlanSequential(const Request& r, const std::vector<WorkerId>& candidates,
                      Proposal* out);
  /// The window = 0 / singleton-batch path: filter + touch + the shared
  /// sequential scan + apply. No shard rebuild, no task machinery.
  void PlanAndApplySingle(const Request& r, double now);

  PlanningContext* ctx_;
  Fleet* fleet_;
  PlannerConfig config_;
  ThreadPool* pool_;
  std::unique_ptr<GridIndex> index_;
  std::unique_ptr<FleetShards> shards_;
  std::int64_t exact_evaluations_ = 0;
  std::int64_t conflict_replans_ = 0;
  std::vector<std::uint8_t> touched_;  // per-window scratch, worker-indexed
};

/// DispatchWindowPlanner on the simulation's pool; the windowed twin of
/// pruneGreedyDP. Drive it with SimOptions::batch_window_s > 0 for real
/// windows, or 0 for the bit-identical per-request mode.
PlannerFactory MakeDispatchWindowFactory(PlannerConfig config);

}  // namespace urpsm

#endif  // URPSM_SRC_SIM_DISPATCH_WINDOW_H_
