#ifndef URPSM_SRC_SIM_DISPATCH_WINDOW_H_
#define URPSM_SRC_SIM_DISPATCH_WINDOW_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/planner.h"
#include "src/insertion/insertion.h"
#include "src/parallel/fleet_shards.h"
#include "src/parallel/thread_pool.h"
#include "src/shortest/oracle.h"
#include "src/util/scratch.h"

namespace urpsm {

namespace obs {
class Counter;
class Histogram;
class TraceRecorder;
}  // namespace obs

/// Batched dispatch-window engine: pruneGreedyDP lifted from per-request
/// to per-window planning with whole-request parallelism and — in the
/// pipelined driving mode — a k-slot window ring with speculative
/// planning and parallel shard-footprint commits.
///
/// The simulation buffers every request released within one dispatch
/// window (SimOptions::batch_window_s) and hands the batch over at the
/// window close. One window then flows through:
///
///   1. Advance gate (per shard): in the pipelined mode each shard's
///      workers are advanced to the window close as soon as the previous
///      window's commit stage releases that shard (FleetShards epoch
///      marks), always in fixed shard-then-worker order on one thread so
///      every cross-worker accumulation (committed distance, heap pushes,
///      grid moves) is deterministic. In the windowed mode the simulator
///      has already advanced the fleet and the gates are trivially open.
///   2. Prep: per request — direct distance, unservability and radius
///      checks, grid-index candidate filter, Fleet::Touch of every
///      candidate (first touch wins). In the pipelined mode a request's
///      prep is gated per shard on a worker-displacement bound: shard s
///      is *required* only if its tile rectangle lies within the
///      request's filter read rectangle inflated by the shard's maximum
///      member displacement (v_max times the oldest anchor's lag since
///      the last Rebuild) — workers of any other shard provably cannot
///      appear in the filter's grid cells, so the request preps as soon
///      as its required shards advanced instead of waiting for the
///      global advance barrier.
///   3. Planning (parallel, one task per request): the shared sequential
///      decision+planning scan (PlanRequestSequential) against the
///      frozen fleet. Requests are independent against a frozen
///      snapshot, so the per-request winners are schedule-independent.
///   4. Commit: proposals apply in unified-cost-then-request-id order.
///      Proposals with disjoint *shard footprints* (the candidate
///      shards) apply concurrently on the commit pool: each accepted
///      proposal holds a per-shard sequence ticket and retires in ticket
///      order per shard, so two proposals sharing any shard apply in the
///      global order while disjoint ones overlap. A proposal whose
///      worker's route changed under it (an earlier batch member won the
///      same worker) is replanned sequentially against the updated
///      fleet; rejections stay final (Def. 5). As the last proposal that
///      could touch a shard retires, the shard is released for the next
///      window's advance gate.
///
/// Deep pipeline (ConfigurePipeline depth k > 2): window e+1 may close
/// while window e is still committing. When the probe "every shard
/// released by window e" fails, window e+1 is planned *speculatively*
/// against the live fleet — candidate filtering under the commit lock,
/// every candidate access under its mutex stripe with the route version
/// recorded. Its commit stage first re-advances and re-filters exactly
/// like a non-speculative window, then keeps each request's speculative
/// proposal only if its candidate list is unchanged and every recorded
/// version is still current (speculation hit), replanning the diverged
/// rest (miss) — versions only grow, so a clean check proves the
/// speculative scan read exactly what a fresh scan would have. Distance
/// queries made on the speculative path are billed to a private sink
/// and re-billed only on a hit, so reported query counts are
/// depth-independent.
///
/// Determinism: planning is pure against the fleet snapshot the
/// previous commit left behind (or validated to be so), decompositions
/// depend only on structural constants (never the thread count),
/// conflicts resolve in a total order, the parallel commit is
/// serial-equivalent by the per-shard tickets, and the advance executes
/// in fixed shard-then-worker order on one thread — so for any window
/// length the results are bit-identical across thread counts, ingest
/// capacities and pipeline depths, and a window of 0 (the simulator
/// then drives OnRequest per release) reproduces the sequential
/// pruneGreedyDP run exactly.
class DispatchWindowPlanner : public PipelinedBatchPlanner {
 public:
  /// `pool` is borrowed and may be nullptr (phases then run inline).
  DispatchWindowPlanner(PlanningContext* ctx, Fleet* fleet,
                        PlannerConfig config, ThreadPool* pool);
  ~DispatchWindowPlanner() override;

  /// Singleton batch at the release time — the window = 0 semantics.
  WorkerId OnRequest(const Request& r) override;
  /// The windowed (non-pipelined) mode: plan + commit fused on the
  /// calling thread. Exactly PlanWindow(without self-advance) followed by
  /// CommitWindow — the pipelined split shares this one implementation.
  void OnBatch(const std::vector<RequestId>& batch, double now,
               WindowEpoch epoch) override;
  void PlanWindow(const std::vector<RequestId>& batch, double now,
                  WindowEpoch epoch) override;
  void CommitWindow(WindowEpoch epoch) override;
  /// Sizes the slot ring (depth >= 2; 2 = the classic double buffer) and
  /// switches the commit stage onto its own pool. Not mid-run.
  void ConfigurePipeline(int depth) override;
  std::int64_t speculation_hits() const override { return spec_hits_; }
  std::int64_t speculation_misses() const override { return spec_misses_; }
  std::int64_t memo_hits() const override {
    std::int64_t total = memo_hits_;
    for (const WindowSlot& slot : slots_) total += slot.commit_memo_hits;
    return total;
  }
  std::int64_t memo_misses() const override {
    std::int64_t total = memo_misses_;
    for (const WindowSlot& slot : slots_) total += slot.commit_memo_misses;
    return total;
  }
  /// Distance queries that memo hits avoided issuing (accounted apart
  /// from the re-billed totals, which stay memo-independent).
  std::int64_t memo_saved_queries() const override {
    std::int64_t total = memo_saved_;
    for (const WindowSlot& slot : slots_) total += slot.commit_memo_saved;
    return total;
  }
  std::int64_t replans_narrowed() const override {
    std::int64_t total = 0;
    for (const WindowSlot& slot : slots_) total += slot.commit_narrowed;
    return total;
  }
  std::int64_t replans_full() const override {
    std::int64_t total = 0;
    for (const WindowSlot& slot : slots_) total += slot.commit_full;
    return total;
  }
  StatsAccumulator replan_scope() const override { return replan_scope_; }
  std::string_view name() const override {
    return config_.use_pruning ? "windowPruneGreedyDP" : "windowGreedyDP";
  }
  std::int64_t index_memory_bytes() const override {
    return index_->MemoryBytes();
  }

  /// Exact linear-DP evaluations performed (including commit-stage
  /// replans), summed over the whole slot ring. Thread-count independent
  /// for a fixed window length. Read only after the run quiesced — the
  /// commit stage contributes while a window is in flight.
  std::int64_t exact_evaluations() const {
    std::int64_t total = exact_evaluations_;
    for (const WindowSlot& slot : slots_) total += slot.commit_evals;
    return total;
  }
  /// Proposals that lost their worker to an earlier batch member and went
  /// through the sequential replanning path (speculation misses are
  /// counted separately). Quiescent read, summed over the ring.
  std::int64_t conflict_replans() const {
    std::int64_t total = 0;
    for (const WindowSlot& slot : slots_) total += slot.commit_replans;
    return total;
  }
  /// The engine's shard partition (epoch marks are inspectable in tests).
  const FleetShards& shards() const { return *shards_; }
  int pipeline_depth() const { return depth_; }

 private:
  /// A request's chosen insertion against a fleet snapshot, keyed by the
  /// worker's route version so conflict resolution can detect staleness.
  struct Proposal {
    RequestId request = kInvalidRequest;
    WorkerId worker = kInvalidWorker;
    double delta = kInf;  // exact increased distance (unified cost / alpha)
    int i = -1;
    int j = -1;
    std::uint64_t route_version = 0;
  };

  /// Per-request window state (filter output + speculation capture).
  struct Prep {
    const Request* r = nullptr;
    double L = 0.0;
    /// Shards whose advance must precede this request's prep (bit per
    /// shard; only meaningful on the self-advancing exact path).
    std::uint64_t required_mask = 0;
    std::vector<WorkerId> candidates;
    /// Commit-time re-filter output (speculative windows only).
    std::vector<WorkerId> fresh;
    /// (worker, route version) per candidate access of the speculative
    /// scan; all current at commit time <=> the scan was clean.
    std::vector<std::pair<WorkerId, std::uint64_t>> spec_versions;
    std::int64_t evals = 0;         // this request's DP evaluations
    std::int64_t spec_queries = 0;  // sink-billed speculative queries
    bool alive = false;             // candidates non-empty, not rejected
    bool prepped = false;           // filter + touch ran (gated loop)
    bool planned = false;           // proposal holds a chosen insertion
    /// Route-version memo spanning this request's evaluations within the
    /// window: the planning scan populates it; validation-miss replans
    /// and commit conflict replans reuse every candidate whose version
    /// held (see EvalMemo). Reset when the slot takes a new request.
    EvalMemo memo;
  };

  /// Slot lifecycle; purely diagnostic ordering (the epoch marks are the
  /// real synchronization), asserted at each stage boundary.
  enum class SlotState : std::uint8_t {
    kFree,
    kFilling,
    kPlanning,
    kCommitting,
  };

  /// One dispatch window in flight. The ring holds `depth_` slots:
  /// window e plans into slot e % depth_, which is reusable because the
  /// planning stage never starts before window e - depth_ fully
  /// committed (the exact path's advance gate implies it; the
  /// speculative path waits for it explicitly).
  struct WindowSlot {
    WindowEpoch epoch = 0;
    double now = 0.0;
    bool speculative = false;
    /// Dirty-set baseline of a speculative slot: FleetShards'
    /// MinCommittedEpoch() at scan start. Every fleet mutation since the
    /// scan began carries a dirty-log tag > this value.
    std::uint64_t spec_base = 0;
    std::atomic<SlotState> state{SlotState::kFree};
    std::vector<Prep> preps;
    std::vector<Proposal> proposals;
    std::vector<std::size_t> accepted;  // apply order (cost, then id)
    /// Per accepted proposal: its shard footprint as (shard, sequence
    /// ticket) pairs, ascending by shard. The parallel commit retires
    /// footprints in ticket order per shard — proposals sharing a shard
    /// serialize, disjoint ones overlap.
    std::vector<std::vector<std::pair<int, std::size_t>>> footprints;
    /// Per shard: index into `accepted` after whose retirement the shard
    /// can be released to the next window (-1 = untouched, release at
    /// commit start).
    std::vector<std::ptrdiff_t> release_at;
    // Commit-stage counters, cumulative over the slot's lifetime
    // (written by the commit thread; read quiescently).
    std::int64_t commit_evals = 0;
    std::int64_t commit_replans = 0;
    std::int64_t commit_memo_hits = 0;
    std::int64_t commit_memo_misses = 0;
    std::int64_t commit_memo_saved = 0;
    std::int64_t commit_narrowed = 0;  // replans that reused memo entries
    std::int64_t commit_full = 0;      // replans with zero memo reuse
    // Reusable-workspace clamps: the slot's buffers recycle across
    // windows; these trim capacity back to the recent high-water mark.
    HighWaterClamp preps_clamp;
    HighWaterClamp footprints_clamp;
  };

  /// Runs body over [0, n) on `pool` when attached, inline otherwise.
  void ForEachOn(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::int64_t)>& body);
  void ForEach(std::size_t n, const std::function<void(std::int64_t)>& body) {
    ForEachOn(pool_, n, body);
  }
  /// Full sequential pruneGreedyDP pass for one request against the
  /// *current* fleet (conflict replanning). Returns false on rejection.
  /// DP evaluations are counted into *evals. With `spec`, candidate
  /// accesses run under the mutex stripes with versions captured (the
  /// speculative planning path).
  bool PlanSequential(const Request& r, const std::vector<WorkerId>& candidates,
                      Proposal* out, std::int64_t* evals,
                      const SpecCapture* spec = nullptr,
                      EvalMemo* memo = nullptr);
  /// The window = 0 / singleton-batch path: filter + touch + the shared
  /// sequential scan + apply. No shard rebuild, no footprint machinery.
  void PlanAndApplySingle(const Request& r, double now);
  /// Stages 1-3 of a non-speculative window: advance gate (when
  /// `self_advance`; with displacement-gated preps interleaved), prep,
  /// Rebuild, parallel per-request planning, then BuildAcceptSchedule.
  void PlanExact(WindowSlot* slot, const std::vector<RequestId>& batch,
                 double now, WindowEpoch epoch, bool self_advance);
  /// Speculative planning of one window against the live fleet: filter
  /// under the commit lock, per-request scans under the mutex stripes
  /// with versions captured and queries sink-billed. No accept schedule
  /// yet — commit-time validation builds it.
  void PlanSpeculative(WindowSlot* slot, const std::vector<RequestId>& batch,
                       double now, WindowEpoch epoch);
  /// Commit-time validation of a speculative slot: advance everything in
  /// the fixed order, re-filter, keep clean proposals (hit) and replan
  /// diverged requests (miss), then BuildAcceptSchedule.
  void ValidateSpeculative(WindowSlot* slot);
  /// Accept filter + (delta, request) sort + shard footprints with
  /// sequence tickets + per-shard release schedule. Requires shard
  /// membership to be current (post-Rebuild).
  void BuildAcceptSchedule(WindowSlot* slot);
  /// Stage 4 on `slot`: validation when speculative, then the parallel
  /// footprint-ordered apply, releasing shards as dependents retire.
  void CommitSlot(WindowSlot* slot);

  PlanningContext* ctx_;
  Fleet* fleet_;
  PlannerConfig config_;
  ThreadPool* pool_;
  std::unique_ptr<GridIndex> index_;
  std::unique_ptr<FleetShards> shards_;
  /// The simulation's oracle when it is a CachedOracle (speculative query
  /// billing); nullptr otherwise — speculation then bills globally, which
  /// only perturbs the query count, never results.
  CachedOracle* billing_ = nullptr;
  int depth_ = 2;           // slot-ring size
  bool pipelined_ = false;  // ConfigurePipeline ran (split driving mode)
  /// Commit-stage pool: the planning thread owns pool_, so the commit
  /// thread fans out on its own pool (ThreadPool is single-submitter).
  std::unique_ptr<ThreadPool> commit_pool_;
  std::int64_t exact_evaluations_ = 0;  // planning-thread evaluations
  std::int64_t spec_hits_ = 0;          // commit-thread only
  std::int64_t spec_misses_ = 0;        // commit-thread only
  std::int64_t memo_hits_ = 0;          // planning-thread memo traffic
  std::int64_t memo_misses_ = 0;        // (commit-side lives on the slots)
  std::int64_t memo_saved_ = 0;
  /// Per validation replan: fraction of its memo lookups that missed
  /// (commit-thread writes; quiescent reads).
  StatsAccumulator replan_scope_;
  // Borrowed instruments, wired from the context's registry/tracer at
  // construction; all null (and every probe a single branch) when the
  // simulation runs without observability.
  obs::TraceRecorder* tracer_ = nullptr;
  obs::Counter* windows_counter_ = nullptr;
  obs::Counter* spec_hit_counter_ = nullptr;
  obs::Counter* spec_miss_counter_ = nullptr;
  obs::Counter* conflict_replan_counter_ = nullptr;
  obs::Counter* memo_hit_counter_ = nullptr;
  obs::Counter* memo_miss_counter_ = nullptr;
  obs::Counter* replan_narrowed_counter_ = nullptr;
  obs::Counter* replan_full_counter_ = nullptr;
  obs::Histogram* ticket_wait_hist_ = nullptr;    // commit ticket spins
  obs::Histogram* conflict_replan_hist_ = nullptr;
  obs::Histogram* spec_replan_hist_ = nullptr;    // speculation-miss cost
  // Scratch buffers. touched_ serves whichever thread preps a window
  // (planning thread for exact windows, commit thread for speculative
  // validation — never both at once); the rest are commit-stage only.
  std::vector<std::uint8_t> touched_;         // worker-indexed
  std::vector<std::uint8_t> shard_flag_;      // footprint dedup
  std::vector<std::size_t> shard_seq_;        // next ticket per shard
  std::vector<std::atomic<std::size_t>> commit_heads_;  // retired tickets
  /// Per-accepted-index stats of the parallel apply stage, accumulated
  /// into the slot's commit counters after the tasks join (the tasks run
  /// concurrently, so each writes only its own index).
  struct ApplyStats {
    std::int64_t evals = 0;
    std::int64_t replans = 0;
    std::int64_t memo_hits = 0;
    std::int64_t memo_misses = 0;
    std::int64_t memo_saved = 0;
    std::int64_t narrowed = 0;
    std::int64_t full = 0;
  };
  std::vector<ApplyStats> apply_stats_;       // per accepted index
  // Dirty-set scratch (commit thread only): the workers mutated since a
  // speculative slot's baseline, and a worker-indexed flag of them.
  std::vector<WorkerId> dirty_scratch_;
  std::vector<std::uint8_t> dirty_flag_;
  std::vector<WindowSlot> slots_;
};

/// DispatchWindowPlanner on the simulation's pool; the windowed twin of
/// pruneGreedyDP. Drive it with SimOptions::batch_window_s > 0 for real
/// windows (plus SimOptions::pipeline for the three-stage pipelined
/// loop and SimOptions::pipeline_depth for the deep ring), or 0 for the
/// bit-identical per-request mode.
PlannerFactory MakeDispatchWindowFactory(PlannerConfig config);

}  // namespace urpsm

#endif  // URPSM_SRC_SIM_DISPATCH_WINDOW_H_
