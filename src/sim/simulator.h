#ifndef URPSM_SRC_SIM_SIMULATOR_H_
#define URPSM_SRC_SIM_SIMULATOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/planner.h"
#include "src/model/feasibility.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/parallel/ingest_queue.h"
#include "src/parallel/thread_pool.h"
#include "src/sim/fleet.h"
#include "src/sim/metrics.h"
#include "src/util/fault.h"

namespace urpsm {

/// Options for one simulation run.
struct SimOptions {
  double alpha = 1.0;  // distance weight of the unified cost
  /// Abort when cumulative planning wall time exceeds this (seconds);
  /// mirrors the paper's 10/20-hour kill switch under which kinetic DNFs.
  double wall_limit_seconds = 1e18;
  /// Shared LRU cache capacity for distance queries (0 disables).
  std::size_t cache_capacity = 1 << 20;
  /// Threads available to planners that use the parallel dispatch engine
  /// (ParallelGreedyDpPlanner, DispatchWindowPlanner). 1 keeps the run
  /// fully sequential; above 1 the simulation owns a ThreadPool of this
  /// size and exposes it via PlanningContext::thread_pool(). Sequential
  /// planners simply ignore it. The request replay loop itself stays
  /// single-threaded — requests are serialized by release time, as in the
  /// paper.
  int num_threads = 1;
  /// Dispatch-window length in simulated *seconds*. When > 0 and the
  /// planner implements BatchPlanner, Run() switches to the windowed
  /// event loop: requests released within one window are buffered, the
  /// fleet advances to the window close, and the whole batch is planned
  /// in one OnBatch call (the paper's batch baseline uses 6 s). 0 — the
  /// default — keeps the per-request loop for every planner, which a
  /// BatchPlanner sees as singleton batches at each release time;
  /// DispatchWindowPlanner guarantees that mode is bit-identical to the
  /// sequential pruneGreedyDP run at every thread count.
  double batch_window_s = 0.0;
  /// Pipelined three-stage engine (ingest → plan → commit). Requires
  /// batch_window_s > 0 and a planner implementing PipelinedBatchPlanner
  /// (the dispatch-window engine); otherwise the option is ignored and
  /// the lock-step windowed loop runs. With pipelining, the driver thread
  /// keeps accepting and time-stamping arrivals for window k+1 while
  /// window k is still being planned, and window k+1's per-shard work
  /// starts as window k's commit stage releases each shard. Results are
  /// thread-count and queue-capacity independent for a fixed window size
  /// (SimReport deterministic fields; wall-clock stats vary run to run).
  bool pipeline = false;
  /// Ingest-queue capacity (arrivals buffered ahead of planning) when
  /// pipeline is on. The queue is bounded: a full queue blocks the
  /// producer (backpressure) rather than dropping arrivals, so this caps
  /// backlog memory without affecting any planning result.
  std::size_t ingest_capacity = 4096;
  /// Window-slot ring size of the pipelined engine (>= 2; values below 2
  /// are clamped). 2 is the classic double buffer: plan window k+1 while
  /// window k commits. Deeper rings let the planner run ahead by
  /// speculating windows against the live fleet and validating at commit
  /// time — results are identical at every depth (SimReport deterministic
  /// fields); only occupancy and the speculation hit/miss counters move.
  int pipeline_depth = 2;
  /// Collect engine metrics (obs::Registry) for the run and attach the
  /// final snapshot to SimReport::metrics. Off by default: the
  /// instrumentation is compiled in everywhere but its hot paths reduce
  /// to a single branch when disabled (<2% overhead, measured by
  /// bench_hotpath's obs_overhead lines).
  bool collect_metrics = false;
  /// When non-empty, record engine spans (ingest/plan/commit stages,
  /// window epochs, per-shard commits, speculation) and write Chrome
  /// trace-event JSON here at the end of the run — loadable in Perfetto
  /// or chrome://tracing. Independent of collect_metrics.
  std::string trace_path;
  /// When non-empty (and collect_metrics is on), a background thread
  /// appends a JSON-lines registry snapshot to this file every
  /// metrics_snapshot_period_s seconds — the long-serving-loop exporter.
  std::string metrics_snapshot_path;
  double metrics_snapshot_period_s = 1.0;
  /// Deadline-aware admission control of the pipelined ingest stage.
  /// kBlock (default) is the lossless PR 7 behavior: a full queue blocks
  /// the producer and nothing is ever shed. The shedding policies arm the
  /// two *deterministic* admission levers below — both pure functions of
  /// simulated time, so shed sets are identical across thread counts —
  /// plus the queue-full safety valve (reject the incoming arrival under
  /// kRejectAtIngress, evict the least-slack queued one under
  /// kShedOldestSlack). The safety valve depends on physical queue
  /// occupancy (wall clock); size ingest_capacity above the real backlog
  /// wherever determinism matters.
  AdmissionPolicy admission_policy = AdmissionPolicy::kBlock;
  /// Ingress deadline-slack floor (simulated minutes): an arrival whose
  /// deadline minus release minus the Euclidean lower-bound travel time
  /// falls below this is shed at ingress (reason: deadline) — it could
  /// not be delivered in time even by an adjacent idle worker, so the
  /// drop is correct degradation, not data loss. Computed with the
  /// oracle-free Euclidean bound, so arming it perturbs no query count.
  /// <= 0 (default) disables the filter; ignored under kBlock.
  double admission_slack_min = 0.0;
  /// Per-window admit budget: at window assembly the plan stage keeps at
  /// most this many members and sheds the excess (reason: overload) —
  /// least slack first under kShedOldestSlack, latest releases under
  /// kRejectAtIngress. Window membership is deterministic, so this lever
  /// is too. 0 (default) = unlimited; ignored under kBlock.
  int window_admit_budget = 0;
  /// Graceful drain: once a release time reaches this simulated instant
  /// (seconds, same clock as batch_window_s) the ingest stage stops
  /// admitting, in-flight window slots are flushed and committed, and
  /// the un-admitted remainder is shed (reason: drain) with exact final
  /// accounting — the serving-loop shutdown path, as opposed to the
  /// wall-limit kill switch which cancels and DNFs. < 0 (default) never
  /// drains. Works under every admission policy.
  double drain_after_s = -1.0;
  /// Deterministic fault injection (tests/benches): a seeded splitmix64
  /// schedule of wall-clock perturbations at named engine sites (see
  /// FaultSite). Every perturbation is timing-only, so deterministic
  /// SimReport fields must survive any schedule. Disabled by default;
  /// the compiled-in-but-disabled cost is one null-pointer branch per
  /// site.
  FaultSpec faults;
};

/// Validates and normalizes a SimOptions in ONE documented place (called
/// by the Simulation constructor, so every run sees sane options instead
/// of per-site silent clamps). Invalid combinations are clamped to the
/// nearest sane value with a warning on stderr:
///   - pipeline without batch_window_s > 0  -> pipeline off
///   - pipeline_depth < 2                   -> 2
///   - ingest_capacity == 0                 -> 1
///   - negative batch_window_s / wall limit / slack floor / budget -> 0
///   - num_threads < 1                      -> 1
///   - metrics_snapshot_period_s <= 0       -> 1.0
///   - fault rates outside [0, 1] / negative delays -> clamped
/// When `warnings` is non-null every emitted warning is also appended to
/// it (tests assert on the messages without capturing stderr).
SimOptions ValidateSimOptions(SimOptions options,
                              std::vector<std::string>* warnings = nullptr);

/// Event-driven day simulation (Sec. 6.1): requests are replayed in
/// release order; before each release the fleet advances to the release
/// time; the planner then serves or rejects the request. With
/// SimOptions::batch_window_s > 0 and a BatchPlanner, the replay loop is
/// windowed instead: whole release windows are handed over in one OnBatch
/// call. At the end all committed+planned work is flushed and the unified
/// cost, served rate and response times are collected.
class Simulation {
 public:
  /// `requests` must be sorted by release time (ascending), and ids must
  /// be unique and non-negative — they need NOT be the dense positions
  /// 0..n-1 (gappy id spaces from trace extracts are fine; everything
  /// downstream resolves ids through an id->index map).
  Simulation(const RoadNetwork* graph, DistanceOracle* oracle,
             std::vector<Worker> workers, const std::vector<Request>* requests,
             SimOptions options);

  SimReport Run(const PlannerFactory& factory);

  /// Fleet state after Run() (for invariant checks and inspection).
  const Fleet& fleet() const { return *fleet_; }
  /// served()[k] — whether the k-th request of the input vector was
  /// served (indexed by table *position*; for the common dense workloads
  /// position and id coincide). For arbitrary ids use request_served().
  const std::vector<bool>& served() const { return served_; }
  /// Whether the request with this id was served (id-safe lookup).
  bool request_served(RequestId id) const;

 private:
  // The three event loops Run dispatches between. Each processes the
  // request stream, mutates the loop-specific SimReport fields
  // (processed_requests, response samples, timed_out, pipeline stats) and
  // returns the planning wall time consumed — the Finalize budget and
  // kill-switch accounting are shared by all three.
  double RunPerRequest(RoutePlanner* planner, SimReport* report);
  double RunWindowed(BatchPlanner* batcher, SimReport* report);
  double RunPipelined(PipelinedBatchPlanner* planner, SimReport* report);

  const RoadNetwork* graph_;
  DistanceOracle* oracle_;
  std::vector<Worker> workers_;
  const std::vector<Request>* requests_;
  SimOptions options_;
  std::unique_ptr<CachedOracle> cached_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Fleet> fleet_;
  // Observability of the current run (recreated per Run): the metrics
  // registry (disabled unless SimOptions::collect_metrics) and the span
  // tracer (disabled unless SimOptions::trace_path).
  std::unique_ptr<obs::Registry> registry_;
  std::unique_ptr<obs::TraceRecorder> tracer_;
  /// Fault injector of the run (null unless SimOptions::faults.enabled) —
  /// wired through PlanningContext / CachedOracle / ThreadPool like the
  /// obs instruments.
  std::unique_ptr<FaultInjector> faults_;
  std::vector<bool> served_;
};

/// Convenience wrapper: build a planner of the given kind.
PlannerFactory MakePruneGreedyDpFactory(PlannerConfig config);
PlannerFactory MakeGreedyDpFactory(PlannerConfig config);
/// ParallelGreedyDpPlanner on the simulation's pool (SimOptions::
/// num_threads); with pruning on, the parallel twin of pruneGreedyDP —
/// bit-identical results, candidate evaluation fanned across threads.
PlannerFactory MakeParallelGreedyDpFactory(PlannerConfig config);

}  // namespace urpsm

#endif  // URPSM_SRC_SIM_SIMULATOR_H_
