#ifndef URPSM_SRC_SIM_SIMULATOR_H_
#define URPSM_SRC_SIM_SIMULATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/core/planner.h"
#include "src/model/feasibility.h"
#include "src/parallel/thread_pool.h"
#include "src/sim/fleet.h"
#include "src/sim/metrics.h"

namespace urpsm {

/// Options for one simulation run.
struct SimOptions {
  double alpha = 1.0;  // distance weight of the unified cost
  /// Abort when cumulative planning wall time exceeds this (seconds);
  /// mirrors the paper's 10/20-hour kill switch under which kinetic DNFs.
  double wall_limit_seconds = 1e18;
  /// Shared LRU cache capacity for distance queries (0 disables).
  std::size_t cache_capacity = 1 << 20;
  /// Threads available to planners that use the parallel dispatch engine
  /// (ParallelGreedyDpPlanner, DispatchWindowPlanner). 1 keeps the run
  /// fully sequential; above 1 the simulation owns a ThreadPool of this
  /// size and exposes it via PlanningContext::thread_pool(). Sequential
  /// planners simply ignore it. The request replay loop itself stays
  /// single-threaded — requests are serialized by release time, as in the
  /// paper.
  int num_threads = 1;
  /// Dispatch-window length in simulated *seconds*. When > 0 and the
  /// planner implements BatchPlanner, Run() switches to the windowed
  /// event loop: requests released within one window are buffered, the
  /// fleet advances to the window close, and the whole batch is planned
  /// in one OnBatch call (the paper's batch baseline uses 6 s). 0 — the
  /// default — keeps the per-request loop for every planner, which a
  /// BatchPlanner sees as singleton batches at each release time;
  /// DispatchWindowPlanner guarantees that mode is bit-identical to the
  /// sequential pruneGreedyDP run at every thread count.
  double batch_window_s = 0.0;
};

/// Event-driven day simulation (Sec. 6.1): requests are replayed in
/// release order; before each release the fleet advances to the release
/// time; the planner then serves or rejects the request. With
/// SimOptions::batch_window_s > 0 and a BatchPlanner, the replay loop is
/// windowed instead: whole release windows are handed over in one OnBatch
/// call. At the end all committed+planned work is flushed and the unified
/// cost, served rate and response times are collected.
class Simulation {
 public:
  /// `requests` must be sorted by release time (ascending), and ids must
  /// be unique and non-negative — they need NOT be the dense positions
  /// 0..n-1 (gappy id spaces from trace extracts are fine; everything
  /// downstream resolves ids through an id->index map).
  Simulation(const RoadNetwork* graph, DistanceOracle* oracle,
             std::vector<Worker> workers, const std::vector<Request>* requests,
             SimOptions options);

  SimReport Run(const PlannerFactory& factory);

  /// Fleet state after Run() (for invariant checks and inspection).
  const Fleet& fleet() const { return *fleet_; }
  /// served()[k] — whether the k-th request of the input vector was
  /// served (indexed by table *position*; for the common dense workloads
  /// position and id coincide). For arbitrary ids use request_served().
  const std::vector<bool>& served() const { return served_; }
  /// Whether the request with this id was served (id-safe lookup).
  bool request_served(RequestId id) const;

 private:
  const RoadNetwork* graph_;
  DistanceOracle* oracle_;
  std::vector<Worker> workers_;
  const std::vector<Request>* requests_;
  SimOptions options_;
  std::unique_ptr<CachedOracle> cached_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Fleet> fleet_;
  std::vector<bool> served_;
};

/// Convenience wrapper: build a planner of the given kind.
PlannerFactory MakePruneGreedyDpFactory(PlannerConfig config);
PlannerFactory MakeGreedyDpFactory(PlannerConfig config);
/// ParallelGreedyDpPlanner on the simulation's pool (SimOptions::
/// num_threads); with pruning on, the parallel twin of pruneGreedyDP —
/// bit-identical results, candidate evaluation fanned across threads.
PlannerFactory MakeParallelGreedyDpFactory(PlannerConfig config);

}  // namespace urpsm

#endif  // URPSM_SRC_SIM_SIMULATOR_H_
