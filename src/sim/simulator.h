#ifndef URPSM_SRC_SIM_SIMULATOR_H_
#define URPSM_SRC_SIM_SIMULATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/core/planner.h"
#include "src/model/feasibility.h"
#include "src/parallel/thread_pool.h"
#include "src/sim/fleet.h"
#include "src/sim/metrics.h"

namespace urpsm {

/// Options for one simulation run.
struct SimOptions {
  double alpha = 1.0;  // distance weight of the unified cost
  /// Abort when cumulative planning wall time exceeds this (seconds);
  /// mirrors the paper's 10/20-hour kill switch under which kinetic DNFs.
  double wall_limit_seconds = 1e18;
  /// Shared LRU cache capacity for distance queries (0 disables).
  std::size_t cache_capacity = 1 << 20;
  /// Threads available to planners that use the parallel dispatch engine
  /// (ParallelGreedyDpPlanner). 1 keeps the run fully sequential; above 1
  /// the simulation owns a ThreadPool of this size and exposes it via
  /// PlanningContext::thread_pool(). Sequential planners simply ignore
  /// it. The request replay loop itself stays single-threaded — requests
  /// are serialized by release time, as in the paper.
  int num_threads = 1;
};

/// Event-driven single-threaded day simulation (Sec. 6.1): requests are
/// replayed in release order; before each release the fleet advances to
/// the release time; the planner then serves or rejects the request. At
/// the end all committed+planned work is flushed and the unified cost,
/// served rate and response times are collected.
class Simulation {
 public:
  /// `requests` must be sorted by release time (ascending).
  Simulation(const RoadNetwork* graph, DistanceOracle* oracle,
             std::vector<Worker> workers, const std::vector<Request>* requests,
             SimOptions options);

  SimReport Run(const PlannerFactory& factory);

  /// Fleet state after Run() (for invariant checks and inspection).
  const Fleet& fleet() const { return *fleet_; }
  /// served()[r] — whether request r was served.
  const std::vector<bool>& served() const { return served_; }

 private:
  const RoadNetwork* graph_;
  DistanceOracle* oracle_;
  std::vector<Worker> workers_;
  const std::vector<Request>* requests_;
  SimOptions options_;
  std::unique_ptr<CachedOracle> cached_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Fleet> fleet_;
  std::vector<bool> served_;
};

/// Convenience wrapper: build a planner of the given kind.
PlannerFactory MakePruneGreedyDpFactory(PlannerConfig config);
PlannerFactory MakeGreedyDpFactory(PlannerConfig config);
/// ParallelGreedyDpPlanner on the simulation's pool (SimOptions::
/// num_threads); with pruning on, the parallel twin of pruneGreedyDP —
/// bit-identical results, candidate evaluation fanned across threads.
PlannerFactory MakeParallelGreedyDpFactory(PlannerConfig config);

}  // namespace urpsm

#endif  // URPSM_SRC_SIM_SIMULATOR_H_
