#ifndef URPSM_SRC_SIM_METRICS_H_
#define URPSM_SRC_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/types.h"
#include "src/sim/fleet.h"

namespace urpsm {

/// One simulation run's results: the three headline metrics of the paper's
/// evaluation (unified cost, served rate, response time; Sec. 6.1) plus
/// the supporting counters it also reports (distance queries saved by the
/// pruning strategy, grid-index memory).
struct SimReport {
  std::string algorithm;
  int total_requests = 0;
  int served_requests = 0;
  double served_rate = 0.0;
  double unified_cost = 0.0;
  double total_distance = 0.0;    // sum_w D(S_w), travel-time minutes
  double penalty_sum = 0.0;       // sum of p_r over rejected requests
  double avg_response_ms = 0.0;   // mean per-request planning wall time
  double p50_response_ms = 0.0;
  double p95_response_ms = 0.0;
  double max_response_ms = 0.0;
  std::int64_t distance_queries = 0;
  std::int64_t index_memory_bytes = 0;
  double wall_seconds = 0.0;
  bool timed_out = false;

  // Service-quality extras (not headline paper metrics, but standard in
  // the ride-sharing literature the paper cites).
  double mean_pickup_wait_min = 0.0;   // pickup time - release, served only
  double mean_detour_ratio = 0.0;      // (dropoff-pickup) / dis(o,d), served
  double makespan_min = 0.0;           // completion time of the last dropoff
};

/// Averages the numeric fields of several runs of the same algorithm
/// (the paper repeats every setting and reports means, Sec. 6.1).
/// `timed_out` is OR-ed; counters are rounded means.
SimReport AverageReports(const std::vector<SimReport>& reports);

/// Violation found by the invariant checker; empty string means clean.
struct InvariantReport {
  bool ok = true;
  std::string violation;
};

/// Replays the fleet's commit log and verifies the model invariants that
/// Def. 3 / Def. 4 promise:
///   (1) every assigned request is picked up exactly once, then dropped
///       off exactly once, by the same worker, in that order;
///   (2) every drop-off happens by the request's deadline;
///   (3) the onboard load never exceeds the worker's capacity;
///   (4) every request is either served or rejected — never both.
InvariantReport VerifyInvariants(const Fleet& fleet,
                                 const std::vector<Request>& requests);

}  // namespace urpsm

#endif  // URPSM_SRC_SIM_METRICS_H_
