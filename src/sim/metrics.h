#ifndef URPSM_SRC_SIM_METRICS_H_
#define URPSM_SRC_SIM_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/model/types.h"
#include "src/sim/fleet.h"
#include "src/util/stats.h"

namespace urpsm {

/// Occupancy and per-stage counters of the pipelined dispatch engine
/// (SimOptions::pipeline). All zeros when the run used the lock-step
/// windowed or per-request loop.
struct PipelineStats {
  bool enabled = false;
  /// Dispatch windows planned (== the last window epoch).
  int windows = 0;
  /// Arrivals accepted by the ingest queue (== total_requests unless the
  /// run timed out; the queue never drops — backpressure blocks instead).
  std::int64_t ingested = 0;
  /// Arrivals the ingest stage accepted while a window was mid-plan or
  /// mid-commit — the overlap the pipeline exists to create.
  std::int64_t overlapped_arrivals = 0;
  /// overlapped_arrivals / ingested: 0 = fully lock-step, 1 = ingest
  /// never had to wait for the planner between windows.
  double occupancy = 0.0;
  /// Ingest-queue backlog high-water mark (bounded by
  /// SimOptions::ingest_capacity).
  std::int64_t max_queue_depth = 0;
  /// Push calls that blocked on a full queue (backpressure events).
  std::int64_t backpressure_waits = 0;
  /// Per-stage totals: time arrivals spent queued (ingest), wall time in
  /// PlanWindow (plan), wall time in CommitWindow (commit). plan+commit
  /// overlap in real time across consecutive windows, so their sum can
  /// exceed the run's wall_seconds.
  double ingest_wait_ms = 0.0;
  double plan_ms = 0.0;
  double commit_ms = 0.0;
  /// Window-slot ring size of the run (SimOptions::pipeline_depth; 0 when
  /// the pipeline was off).
  int depth = 0;
  /// Speculatively planned requests that survived commit-time validation
  /// (hits) or had to be replanned (misses). Both stay 0 at depth 2 —
  /// the double buffer never speculates.
  std::int64_t speculation_hits = 0;
  std::int64_t speculation_misses = 0;
  /// Route-version memo traffic of the incremental planning layer: a hit
  /// reuses a recorded evaluation (its distance queries re-billed, not
  /// re-issued); a miss evaluates fresh and records. Saved = queries the
  /// hits avoided issuing (accounted apart from the re-billed totals,
  /// which stay memo-independent).
  std::int64_t memo_hits = 0;
  std::int64_t memo_misses = 0;
  std::int64_t memo_saved_queries = 0;
  /// Validation-miss and commit-conflict replans, split by memo reuse:
  /// narrowed = at least one candidate's evaluation was reused (the
  /// replan's fresh work was O(changed candidates)); full = zero reuse.
  std::int64_t replans_narrowed = 0;
  std::int64_t replans_full = 0;
  /// Per replan: fraction of its memo lookups that missed (0 = the whole
  /// candidate list was reused, 1 = nothing was).
  StatsAccumulator replan_scope;
  /// Per-window / per-arrival stage-time distributions behind the total
  /// ms fields above: PlanWindow wall time per window, CommitWindow wall
  /// time per window, queued time per arrival. Digest-backed, so
  /// AverageReports pools them across runs (true pooled percentiles,
  /// not averaged ones).
  StatsAccumulator plan_window_ms;
  StatsAccumulator commit_window_ms;
  StatsAccumulator ingest_wait_per_arrival_ms;
  /// Per-arrival admission latency (ms): wall time between the producer
  /// offering an arrival and the queue's admit/shed decision — the time
  /// a requester would wait at the front door. Non-trivial only under
  /// AdmissionPolicy::kBlock (backpressure blocks the offer); the
  /// shedding policies decide without blocking.
  StatsAccumulator admission_latency_ms;
  /// Graceful drain: the simulated cutoff (minutes) that ended ingest,
  /// or -1 when the run never drained. Set by SimOptions::drain_after_s
  /// or the kDrainTrigger fault site.
  double drain_cutoff_min = -1.0;
  /// Whether the drain cutoff actually fired (a release crossed it).
  bool drained = false;
};

/// One simulation run's results: the three headline metrics of the paper's
/// evaluation (unified cost, served rate, response time; Sec. 6.1) plus
/// the supporting counters it also reports (distance queries saved by the
/// pruning strategy, grid-index memory).
struct SimReport {
  std::string algorithm;
  int total_requests = 0;
  /// Requests actually handed to the planner before the wall limit hit.
  /// Equals total_requests on a complete run; on a truncated (timed_out)
  /// run the latency percentiles below cover only these.
  int processed_requests = 0;
  int served_requests = 0;
  /// Overload/robustness partition of total_requests. Every request lands
  /// in exactly one bucket:
  ///   served   — delivered by its deadline;
  ///   rejected — handed to the planner but not served (penalty billed);
  ///   shed     — dropped by admission control or drain before planning
  ///              (penalty billed; by-reason split below);
  ///   dnf      — neither planned nor shed: cut off by the wall-limit
  ///              kill switch (penalty billed, as in the paper).
  /// CheckAccounting() verifies served + rejected + shed + dnf == total
  /// on every run, including timed-out, drained and fault-injected ones.
  int rejected_requests = 0;
  int shed_requests = 0;
  int dnf_requests = 0;
  /// Shed counts by reason; their sum equals shed_requests.
  std::int64_t shed_deadline = 0;  // ingress slack below the admission floor
  std::int64_t shed_overload = 0;  // queue-full shed + window budget excess
  std::int64_t shed_drain = 0;     // released at/after the drain cutoff
  double served_rate = 0.0;
  double unified_cost = 0.0;
  double total_distance = 0.0;    // sum_w D(S_w), travel-time minutes
  double penalty_sum = 0.0;       // sum of p_r over rejected requests
  double avg_response_ms = 0.0;   // mean per-request planning wall time
  double p50_response_ms = 0.0;
  double p95_response_ms = 0.0;
  double p99_response_ms = 0.0;
  double max_response_ms = 0.0;
  /// The per-request planning-latency samples (ms) behind the summary
  /// fields above. Retained so multi-run aggregation can pool samples and
  /// report true percentiles of the pooled distribution — averaging each
  /// run's p50/p95 would not be a percentile of anything.
  StatsAccumulator response_stats;
  std::int64_t distance_queries = 0;
  std::int64_t index_memory_bytes = 0;
  /// Worst-case absolute error (travel-time minutes) of any oracle
  /// distance used by the run, from DistanceOracle::QuantizationErrorBound:
  /// 0 for exact oracles; for quantized hub labels, the proven fixed-point
  /// bound. AverageReports takes the max across runs (a bound, not a mean).
  double oracle_quant_error_bound = 0.0;
  double wall_seconds = 0.0;
  bool timed_out = false;
  /// SimOptions::num_threads of the run, recorded so every emitted result
  /// line carries its thread count machine-readably (the bench JSON also
  /// records std::thread::hardware_concurrency, making oversubscribed
  /// container runs distinguishable from real multicore measurements).
  int num_threads = 1;

  // Service-quality extras (not headline paper metrics, but standard in
  // the ride-sharing literature the paper cites).
  double mean_pickup_wait_min = 0.0;   // pickup time - release, served only
  double mean_detour_ratio = 0.0;      // (dropoff-pickup) / dis(o,d), served
  double makespan_min = 0.0;           // completion time of the last dropoff

  /// Pipelined-engine stage/occupancy counters (zeros unless
  /// SimOptions::pipeline drove the run).
  PipelineStats pipeline;

  /// Whether SimOptions::trace_path was set for the run (recorded in
  /// every BENCH line so trajectory comparisons stay apples-to-apples).
  bool trace_enabled = false;
  /// Final snapshot of the run's obs::Registry (empty when
  /// SimOptions::collect_metrics was off): flat metric name -> value,
  /// histograms expanded to .count/.sum/.min/.max/.p50/.p95/.p99.
  std::map<std::string, double> metrics;
};

/// Averages the numeric fields of several runs of the same algorithm
/// (the paper repeats every setting and reports means, Sec. 6.1).
/// `timed_out` is OR-ed; counters are rounded means. Latency percentiles
/// (p50/p95) are computed over the POOLED per-request samples of all runs,
/// not as a mean of per-run percentiles; avg/max likewise come from the
/// pooled distribution.
SimReport AverageReports(const std::vector<SimReport>& reports);

/// Violation found by the invariant checker; empty string means clean.
struct InvariantReport {
  bool ok = true;
  std::string violation;
};

/// Replays the fleet's commit log and verifies the model invariants that
/// Def. 3 / Def. 4 promise:
///   (1) every assigned request is picked up exactly once, then dropped
///       off exactly once, by the same worker, in that order;
///   (2) every drop-off happens by the request's deadline;
///   (3) the onboard load never exceeds the worker's capacity;
///   (4) every request is either served or rejected — never both.
/// Requests are matched by id (ids need not be dense or 0..n-1).
///
/// With `mid_run = true` the end-of-simulation conditions are relaxed for
/// checks between dispatch windows: passengers may still be on board, and
/// an assigned request may not have been delivered yet (its drop-off is
/// still pending). Prefix properties (1)-(3) are enforced in full.
InvariantReport VerifyInvariants(const Fleet& fleet,
                                 const std::vector<Request>& requests,
                                 bool mid_run = false);

/// Verifies the overload-accounting partition of a finished run:
/// served + rejected + shed + dnf == total, rejected == processed -
/// served, the by-reason shed counts sum to shed_requests, and no bucket
/// is negative. Holds by construction for Simulation::Run reports
/// (including timed-out, drained and fault-injected runs); tests and
/// benches call it on every report they emit.
InvariantReport CheckAccounting(const SimReport& report);

}  // namespace urpsm

#endif  // URPSM_SRC_SIM_METRICS_H_
