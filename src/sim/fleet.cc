#include "src/sim/fleet.h"

#include <cassert>

#include "src/parallel/fleet_shards.h"

namespace urpsm {

Fleet::Fleet(std::vector<Worker> workers, const RoadNetwork* graph)
    : workers_(std::move(workers)), graph_(graph) {
  routes_.reserve(workers_.size());
  state_cache_.resize(workers_.size());
  commit_log_.resize(workers_.size());
  for (const Worker& w : workers_) {
    routes_.emplace_back(w.initial_location, 0.0);
  }
}

std::unique_lock<std::mutex> Fleet::MaybeLockShard(WorkerId w) {
  if (shards_ == nullptr) return {};
  return std::unique_lock<std::mutex>(shards_->mutex_of(w));
}

std::unique_lock<std::mutex> Fleet::MaybeLockCommit() {
  if (shards_ == nullptr) return {};
  return std::unique_lock<std::mutex>(commit_mu_);
}

const RouteState& Fleet::CachedState(WorkerId w, PlanningContext* ctx) {
  const std::unique_lock<std::mutex> lock = MaybeLockShard(w);
  return CachedStateLocked(w, ctx);
}

const RouteState& Fleet::CachedStateLocked(WorkerId w, PlanningContext* ctx) {
  StateCacheEntry& entry = state_cache_[static_cast<std::size_t>(w)];
  const Route& rt = routes_[static_cast<std::size_t>(w)];
  if (!entry.valid || entry.route_version != rt.version()) {
    BuildRouteState(rt, ctx, &entry.state);
    entry.route_version = rt.version();
    entry.valid = true;
  }
  return entry.state;
}

void Fleet::AttachIndex(GridIndex* index) {
  index_ = index;
  for (const Worker& w : workers_) {
    index_->Insert(w.id, anchor_point(w.id));
  }
}

void Fleet::AttachShards(FleetShards* shards) { shards_ = shards; }

void Fleet::PushHeap(WorkerId w) {
  if (!heap_enabled_) return;
  const Route& rt = routes_[static_cast<std::size_t>(w)];
  if (rt.empty()) return;
  heap_.push({rt.anchor_time() + rt.leg_costs().front(), w, rt.version()});
}

void Fleet::DisableArrivalHeap() {
  heap_enabled_ = false;
  heap_ = {};
}

void Fleet::CommitFront(WorkerId w) {
  // Callers either run on the driver thread (AdvanceTo/FinishAll) or hold
  // the worker's shard lock (Touch in shard-safe mode): the route and the
  // per-worker commit log need no further locking here. The cross-shard
  // commit state does.
  Route& rt = routes_[static_cast<std::size_t>(w)];
  assert(!rt.empty());
  const Point from = anchor_point(w);
  const double leg = rt.leg_costs().front();
  const Stop stop = rt.PopFront();
  commit_log_[static_cast<std::size_t>(w)].push_back({stop, rt.anchor_time()});
  const std::unique_lock<std::mutex> lock = MaybeLockCommit();
  committed_distance_ += leg;
  if (stop.kind == StopKind::kPickup) {
    pickup_time_[stop.request] = rt.anchor_time();
  } else {
    dropoff_time_[stop.request] = rt.anchor_time();
  }
  if (index_ != nullptr) index_->Move(w, from, anchor_point(w));
  PushHeap(w);
}

void Fleet::AdvanceTo(double t) {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    const auto ws = static_cast<std::size_t>(top.worker);
    if (top.version != routes_[ws].version()) {
      heap_.pop();
      continue;
    }
    if (top.arrival > t) break;
    heap_.pop();
    CommitFront(top.worker);
  }
}

void Fleet::Touch(WorkerId w, double t) {
  const std::unique_lock<std::mutex> lock = MaybeLockShard(w);
  Route& rt = routes_[static_cast<std::size_t>(w)];
  while (!rt.empty() && rt.anchor_time() + rt.leg_costs().front() <= t) {
    CommitFront(w);
  }
  if (rt.empty() && rt.anchor_time() < t) rt.set_anchor_time(t);
}

void Fleet::AdvanceWorkerTo(WorkerId w, double t) {
  const std::unique_lock<std::mutex> lock = MaybeLockShard(w);
  Route& rt = routes_[static_cast<std::size_t>(w)];
  while (!rt.empty() && rt.anchor_time() + rt.leg_costs().front() <= t) {
    CommitFront(w);
  }
}

void Fleet::ApplyInsertion(WorkerId w, const Request& r, int i, int j,
                           DistanceOracle* oracle) {
  const std::unique_lock<std::mutex> shard_lock = MaybeLockShard(w);
  Route& rt = routes_[static_cast<std::size_t>(w)];
  rt.Insert(r, i, j, oracle);
  const std::unique_lock<std::mutex> lock = MaybeLockCommit();
  assignment_[r.id] = w;
  PushHeap(w);
}

void Fleet::ReplaceRoute(WorkerId w, const Request& r, std::vector<Stop> stops,
                         DistanceOracle* oracle) {
  const std::unique_lock<std::mutex> shard_lock = MaybeLockShard(w);
  Route& rt = routes_[static_cast<std::size_t>(w)];
  rt.SetStops(std::move(stops), oracle);
  const std::unique_lock<std::mutex> lock = MaybeLockCommit();
  assignment_[r.id] = w;
  PushHeap(w);
}

void Fleet::FinishAll() {
  for (WorkerId w = 0; w < size(); ++w) {
    while (!routes_[static_cast<std::size_t>(w)].empty()) CommitFront(w);
  }
}

WorkerId Fleet::AssignedWorker(RequestId r) const {
  auto it = assignment_.find(r);
  return it == assignment_.end() ? kInvalidWorker : it->second;
}

double Fleet::PickupTime(RequestId r) const {
  auto it = pickup_time_.find(r);
  return it == pickup_time_.end() ? kInf : it->second;
}

double Fleet::DropoffTime(RequestId r) const {
  auto it = dropoff_time_.find(r);
  return it == dropoff_time_.end() ? kInf : it->second;
}

double Fleet::TotalPlannedDistance() const {
  double total = committed_distance_;
  for (const Route& rt : routes_) total += rt.RemainingCost();
  return total;
}

}  // namespace urpsm
