#include "src/sim/dispatch_window.h"

#include <algorithm>
#include <utility>

#include "src/insertion/insertion.h"

namespace urpsm {

DispatchWindowPlanner::DispatchWindowPlanner(PlanningContext* ctx,
                                             Fleet* fleet,
                                             PlannerConfig config,
                                             ThreadPool* pool)
    : ctx_(ctx), fleet_(fleet), config_(config), pool_(pool) {
  Point lo, hi;
  ctx_->graph().BoundingBox(&lo, &hi);
  index_ = std::make_unique<GridIndex>(lo, hi, config_.grid_cell_km);
  fleet_->AttachIndex(index_.get());
  // Shard regions are coarser than the candidate grid (4 cells per region
  // side) so a worker's stop-to-stop anchor moves rarely change its shard.
  // Both constants are structural — independent of the thread count — so
  // the task decomposition, and with it every planning result, is too.
  shards_ = std::make_unique<FleetShards>(fleet_, lo, hi,
                                          4.0 * config_.grid_cell_km);
  fleet_->AttachShards(shards_.get());
}

DispatchWindowPlanner::~DispatchWindowPlanner() {
  fleet_->AttachShards(nullptr);
}

void DispatchWindowPlanner::ForEach(
    std::size_t n, const std::function<void(std::int64_t)>& body) {
  // Purely an execution choice (the per-task work is fixed): tiny task
  // counts run inline rather than paying the pool wakeup.
  const bool worth_fanning =
      pool_ != nullptr && pool_->num_threads() > 1 && n >= 2;
  if (worth_fanning) {
    pool_->ParallelFor(0, static_cast<std::int64_t>(n), body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(static_cast<std::int64_t>(i));
  }
}

WorkerId DispatchWindowPlanner::OnRequest(const Request& r) {
  PlanAndApplySingle(r, r.release_time);
  return fleet_->AssignedWorker(r.id);
}

void DispatchWindowPlanner::PlanAndApplySingle(const Request& r, double now) {
  const double L = ctx_->DirectDist(r.id);
  const std::vector<WorkerId> candidates =
      FilterCandidates(ctx_, *index_, r, L, now);
  if (candidates.empty()) return;
  for (const WorkerId w : candidates) fleet_->Touch(w, now);
  Proposal p;
  if (PlanSequential(r, candidates, &p)) {
    fleet_->ApplyInsertion(p.worker, r, p.i, p.j, ctx_->oracle());
  }
}

bool DispatchWindowPlanner::PlanSequential(
    const Request& r, const std::vector<WorkerId>& candidates, Proposal* out) {
  // Funnels through the one shared sequential scan, so singleton batches
  // and conflict replans can never drift from GreedyDpPlanner::OnRequest.
  const double L = ctx_->DirectDist(r.id);
  InsertionCandidate best;
  const WorkerId best_worker = PlanRequestSequential(
      ctx_, fleet_, config_, r, L, candidates, &best, &exact_evaluations_);
  if (best_worker == kInvalidWorker) return false;
  out->request = r.id;
  out->worker = best_worker;
  out->delta = best.delta;
  out->i = best.i;
  out->j = best.j;
  out->route_version = fleet_->route(best_worker).version();
  return true;
}

void DispatchWindowPlanner::OnBatch(const std::vector<RequestId>& batch,
                                    double now) {
  // Singleton fast path (the window = 0 / per-request mode): literally
  // the sequential planner's filter + touch + shared scan, which is what
  // the bit-identity contract promises anyway.
  if (batch.size() == 1) {
    PlanAndApplySingle(ctx_->request(batch.front()), now);
    return;
  }

  // ---- 1. Prep (driver): filters, candidates, touches.
  struct Prep {
    const Request* r = nullptr;
    double L = 0.0;
    std::vector<WorkerId> candidates;
    std::vector<double> lbs;  // aligned with candidates, kInf = infeasible
    std::vector<WorkerBound> bounds;
    std::vector<std::size_t> order;  // scan order into bounds
    bool alive = false;
  };
  std::vector<Prep> preps(batch.size());
  touched_.assign(static_cast<std::size_t>(fleet_->size()), 0);
  for (std::size_t b = 0; b < batch.size(); ++b) {
    Prep& p = preps[b];
    p.r = &ctx_->request(batch[b]);
    const Request& r = *p.r;
    p.L = ctx_->DirectDist(r.id);
    // Planning happens at the window close: the shared filter's ideal-
    // service deadline test runs against `now`, not the release time.
    p.candidates = FilterCandidates(ctx_, *index_, r, p.L, now);
    if (p.candidates.empty()) continue;
    p.alive = true;
    for (const WorkerId w : p.candidates) {
      auto& flag = touched_[static_cast<std::size_t>(w)];
      if (flag == 0) {
        flag = 1;
        fleet_->Touch(w, now);
      }
    }
  }
  // Anchors may have moved while committing due stops; shard membership
  // reflects the post-touch positions for the rest of the window.
  shards_->Rebuild();

  // ---- 2. Decision phase: one task per (request, candidate shard).
  struct ShardTask {
    std::size_t req = 0;                     // index into preps
    std::vector<std::size_t> positions;      // into candidates (phase 2:
                                             // into order)
    InsertionCandidate best;                 // phase 2 result
    std::size_t best_pos = 0;                // scan position of `best`
    WorkerId best_worker = kInvalidWorker;
    std::int64_t evals = 0;
  };
  const auto shard_count = static_cast<std::size_t>(shards_->num_shards());
  std::vector<std::vector<std::size_t>> by_shard(shard_count);
  std::vector<ShardTask> tasks;
  const auto flush_groups = [&](std::size_t req) {
    for (std::size_t s = 0; s < shard_count; ++s) {
      if (by_shard[s].empty()) continue;
      tasks.push_back({req, std::move(by_shard[s]), {}, 0, kInvalidWorker, 0});
      by_shard[s].clear();
    }
  };
  for (std::size_t b = 0; b < preps.size(); ++b) {
    Prep& p = preps[b];
    if (!p.alive) continue;
    p.lbs.assign(p.candidates.size(), kInf);
    for (std::size_t k = 0; k < p.candidates.size(); ++k) {
      by_shard[static_cast<std::size_t>(shards_->ShardOf(p.candidates[k]))]
          .push_back(k);
    }
    flush_groups(b);
  }
  ForEach(tasks.size(), [&](std::int64_t t) {
    ShardTask& task = tasks[static_cast<std::size_t>(t)];
    Prep& p = preps[task.req];
    for (const std::size_t k : task.positions) {
      const WorkerId w = p.candidates[k];
      const Route& route = fleet_->route(w);
      const RouteState& st = fleet_->CachedState(w, ctx_);
      p.lbs[k] = DecisionLowerBound(fleet_->worker(w), route, st, *p.r, p.L,
                                    ctx_->graph());
    }
  });

  // ---- 3. Rejection + scan order (driver), in candidate order — the
  // same bounds array and permutation the sequential planner derives.
  for (Prep& p : preps) {
    if (!p.alive) continue;
    double min_lb = kInf;
    p.bounds.reserve(p.candidates.size());
    for (std::size_t k = 0; k < p.candidates.size(); ++k) {
      if (p.lbs[k] == kInf) continue;
      p.bounds.push_back({p.candidates[k], p.lbs[k]});
      min_lb = std::min(min_lb, p.lbs[k]);
    }
    if (p.bounds.empty() || p.r->penalty < config_.alpha * min_lb) {
      p.alive = false;  // rejection is final (Def. 5)
      continue;
    }
    p.order = AscendingLowerBoundOrder(p.bounds);
  }

  // ---- 4. Planning phase: per (request, shard) exact evaluations in the
  // global scan order, shard-local Lemma 8 cutoff.
  tasks.clear();
  for (std::size_t b = 0; b < preps.size(); ++b) {
    Prep& p = preps[b];
    if (!p.alive) continue;
    for (std::size_t pos = 0; pos < p.order.size(); ++pos) {
      const WorkerId w = p.bounds[p.order[pos]].worker;
      by_shard[static_cast<std::size_t>(shards_->ShardOf(w))].push_back(pos);
    }
    flush_groups(b);
  }
  ForEach(tasks.size(), [&](std::int64_t t) {
    ShardTask& task = tasks[static_cast<std::size_t>(t)];
    const Prep& p = preps[task.req];
    for (const std::size_t pos : task.positions) {
      const std::size_t k = p.order[pos];
      // Shard-local cutoff: lossless (the epsilon guard never prunes a
      // candidate that could beat or tie this shard's best), so the
      // cross-shard merge below still finds the global winner.
      if (config_.use_pruning && task.best.feasible() &&
          LemmaEightCutoff(task.best.delta, p.bounds[k].lower_bound)) {
        break;
      }
      const WorkerId w = p.bounds[k].worker;
      ++task.evals;
      const InsertionCandidate cand =
          LinearDpInsertion(fleet_->worker(w), fleet_->route(w),
                            fleet_->CachedState(w, ctx_), *p.r, ctx_);
      if (cand.feasible() && cand.delta < task.best.delta) {
        task.best = cand;
        task.best_pos = pos;
        task.best_worker = w;
      }
    }
  });

  // ---- Merge winners per request: minimum (delta, scan position) over
  // shards == the sequential scan's first strict improvement (ties on the
  // exact cost go to the earliest candidate in the shared scan order).
  std::vector<Proposal> proposals(preps.size());
  std::vector<std::size_t> best_pos_of(preps.size(), 0);
  for (const ShardTask& task : tasks) {
    exact_evaluations_ += task.evals;
    if (!task.best.feasible()) continue;
    Proposal& p = proposals[task.req];
    const bool wins =
        p.worker == kInvalidWorker || task.best.delta < p.delta ||
        (task.best.delta == p.delta && task.best_pos < best_pos_of[task.req]);
    if (wins) {
      p.request = preps[task.req].r->id;
      p.worker = task.best_worker;
      p.delta = task.best.delta;
      p.i = task.best.i;
      p.j = task.best.j;
      best_pos_of[task.req] = task.best_pos;
    }
  }

  // ---- 5. Conflict resolution: apply in unified-cost-then-id order.
  std::vector<std::size_t> accepted;
  accepted.reserve(preps.size());
  for (std::size_t b = 0; b < preps.size(); ++b) {
    Prep& p = preps[b];
    if (!p.alive || proposals[b].worker == kInvalidWorker) continue;
    if (config_.exact_reject_check &&
        p.r->penalty < config_.alpha * proposals[b].delta) {
      continue;
    }
    proposals[b].route_version =
        fleet_->route(proposals[b].worker).version();
    accepted.push_back(b);
  }
  std::sort(accepted.begin(), accepted.end(),
            [&](std::size_t a, std::size_t b) {
              const Proposal& pa = proposals[a];
              const Proposal& pb = proposals[b];
              if (pa.delta != pb.delta) return pa.delta < pb.delta;
              return pa.request < pb.request;
            });
  for (const std::size_t b : accepted) {
    Proposal& p = proposals[b];
    const Request& r = *preps[b].r;
    if (fleet_->route(p.worker).version() == p.route_version) {
      // Still the fleet snapshot the proposal was computed against (for
      // this worker): feasibility and delta hold verbatim.
      fleet_->ApplyInsertion(p.worker, r, p.i, p.j, ctx_->oracle());
      continue;
    }
    // An earlier (cheaper) batch member took this worker: replan against
    // the updated fleet. The grid index did not move (Insert keeps
    // anchors), so the original candidate list is still the filter's
    // output.
    ++conflict_replans_;
    Proposal replanned;
    if (PlanSequential(r, preps[b].candidates, &replanned)) {
      fleet_->ApplyInsertion(replanned.worker, r, replanned.i, replanned.j,
                             ctx_->oracle());
    }
  }
}

PlannerFactory MakeDispatchWindowFactory(PlannerConfig config) {
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<DispatchWindowPlanner>(ctx, fleet, config,
                                                   ctx->thread_pool());
  };
}

}  // namespace urpsm
