#include "src/sim/dispatch_window.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace urpsm {

DispatchWindowPlanner::DispatchWindowPlanner(PlanningContext* ctx,
                                             Fleet* fleet,
                                             PlannerConfig config,
                                             ThreadPool* pool)
    : ctx_(ctx), fleet_(fleet), config_(config), pool_(pool), slots_(2) {
  Point lo, hi;
  ctx_->graph().BoundingBox(&lo, &hi);
  index_ = std::make_unique<GridIndex>(lo, hi, config_.grid_cell_km);
  fleet_->AttachIndex(index_.get());
  // Shard regions are coarser than the candidate grid (4 cells per region
  // side) so a worker's stop-to-stop anchor moves rarely change its shard.
  // Both constants are structural — independent of the thread count — so
  // the task decomposition, and with it every planning result, is too.
  shards_ = std::make_unique<FleetShards>(fleet_, lo, hi,
                                          4.0 * config_.grid_cell_km);
  fleet_->AttachShards(shards_.get());
  shards_->set_faults(ctx_->faults());
  commit_heads_ = std::vector<std::atomic<std::size_t>>(
      static_cast<std::size_t>(shards_->num_shards()));
  // Speculative query billing needs the cache layer; without it the
  // speculative path still produces identical assignments, only the
  // reported query count would include abandoned speculative work.
  billing_ = dynamic_cast<CachedOracle*>(ctx_->oracle());
  // Instrument wiring: instruments observe wall times and event counts
  // only — never anything planning reads — so the determinism contract
  // (bit-identical results with or without observability) holds.
  if (obs::Registry* reg = ctx_->metrics();
      reg != nullptr && reg->enabled()) {
    windows_counter_ = reg->GetCounter("engine.windows");
    spec_hit_counter_ = reg->GetCounter("engine.spec.hits");
    spec_miss_counter_ = reg->GetCounter("engine.spec.misses");
    conflict_replan_counter_ = reg->GetCounter("engine.commit.replans");
    memo_hit_counter_ = reg->GetCounter("memo.hit");
    memo_miss_counter_ = reg->GetCounter("memo.miss");
    replan_narrowed_counter_ = reg->GetCounter("replan.narrowed");
    replan_full_counter_ = reg->GetCounter("replan.full");
    ticket_wait_hist_ = reg->GetHistogram("engine.commit.ticket_wait_ms");
    conflict_replan_hist_ = reg->GetHistogram("engine.commit.replan_ms");
    spec_replan_hist_ = reg->GetHistogram("engine.spec.replan_ms");
    shards_->RegisterMetrics(reg);
  }
  if (obs::TraceRecorder* t = ctx_->tracer();
      t != nullptr && t->enabled()) {
    tracer_ = t;
  }
}

DispatchWindowPlanner::~DispatchWindowPlanner() {
  fleet_->AttachShards(nullptr);
}

void DispatchWindowPlanner::ConfigurePipeline(int depth) {
  depth_ = std::max(2, depth);
  pipelined_ = true;
  // The ring is rebuilt, not resized: WindowSlot carries an atomic and is
  // deliberately non-movable, and no window is in flight here.
  slots_ = std::vector<WindowSlot>(static_cast<std::size_t>(depth_));
  if (commit_pool_ == nullptr && pool_ != nullptr &&
      pool_->num_threads() > 1) {
    commit_pool_ = std::make_unique<ThreadPool>(pool_->num_threads());
  }
}

void DispatchWindowPlanner::ForEachOn(
    ThreadPool* pool, std::size_t n,
    const std::function<void(std::int64_t)>& body) {
  // Purely an execution choice (the per-task work is fixed): tiny task
  // counts run inline rather than paying the pool wakeup. Grain stays 1:
  // the cursor claims indices monotonically, which the commit stage's
  // ticket waits rely on (a task only ever waits on smaller indices, all
  // claimed — hence running to completion on some thread — before it).
  const bool worth_fanning =
      pool != nullptr && pool->num_threads() > 1 && n >= 2;
  if (worth_fanning) {
    pool->ParallelFor(0, static_cast<std::int64_t>(n), body, /*grain=*/1);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(static_cast<std::int64_t>(i));
  }
}

WorkerId DispatchWindowPlanner::OnRequest(const Request& r) {
  PlanAndApplySingle(r, r.release_time);
  return fleet_->AssignedWorker(r.id);
}

void DispatchWindowPlanner::PlanAndApplySingle(const Request& r, double now) {
  const double L = ctx_->DirectDist(r.id);
  const std::vector<WorkerId> candidates =
      FilterCandidates(ctx_, *index_, r, L, now);
  if (candidates.empty()) return;
  for (const WorkerId w : candidates) fleet_->Touch(w, now);
  Proposal p;
  if (PlanSequential(r, candidates, &p, &exact_evaluations_)) {
    fleet_->ApplyInsertion(p.worker, r, p.i, p.j, ctx_->oracle());
  }
}

bool DispatchWindowPlanner::PlanSequential(
    const Request& r, const std::vector<WorkerId>& candidates, Proposal* out,
    std::int64_t* evals, const SpecCapture* spec, EvalMemo* memo) {
  // Funnels through the one shared sequential scan, so batch planning,
  // speculative planning, singleton batches and conflict replans can
  // never drift from GreedyDpPlanner::OnRequest.
  const double L = ctx_->DirectDist(r.id);
  InsertionCandidate best;
  const WorkerId best_worker = PlanRequestSequential(
      ctx_, fleet_, config_, r, L, candidates, &best, evals, spec, memo);
  if (best_worker == kInvalidWorker) return false;
  out->request = r.id;
  out->worker = best_worker;
  out->delta = best.delta;
  out->i = best.i;
  out->j = best.j;
  if (spec != nullptr) {
    // The fleet is live under a speculative scan: the version stamp must
    // be read under the worker's stripe. (It is overwritten with the
    // then-current version if the proposal survives validation.)
    const std::unique_lock<std::mutex> lock = fleet_->LockWorker(best_worker);
    out->route_version = fleet_->route(best_worker).version();
  } else {
    out->route_version = fleet_->route(best_worker).version();
  }
  return true;
}

void DispatchWindowPlanner::OnBatch(const std::vector<RequestId>& batch,
                                    double now, WindowEpoch epoch) {
  // Singleton fast path (the window = 0 / per-request mode): literally
  // the sequential planner's filter + touch + shared scan, which is what
  // the bit-identity contract promises anyway. The epoch is still
  // released so a later window's advance gate cannot starve.
  if (batch.size() <= 1) {
    if (!batch.empty()) PlanAndApplySingle(ctx_->request(batch.front()), now);
    shards_->MarkAllCommitted(epoch);
    return;
  }
  WindowSlot& slot = slots_[epoch % static_cast<WindowEpoch>(depth_)];
  PlanExact(&slot, batch, now, epoch, /*self_advance=*/false);
  CommitSlot(&slot);
}

void DispatchWindowPlanner::PlanWindow(const std::vector<RequestId>& batch,
                                       double now, WindowEpoch epoch) {
  // The pipelined mode funnels even singleton windows through the full
  // plan/commit split: PlanAndApplySingle mutates the fleet, which the
  // planning stage must not do while the previous commit is in flight.
  WindowSlot& slot = slots_[epoch % static_cast<WindowEpoch>(depth_)];
  // Exact-vs-speculative probe: with the classic double buffer there is
  // nothing to decide (the advance gate waits for window e-1 anyway);
  // deeper rings plan exactly when the previous window already fully
  // committed — the probe races the commit tail, but BOTH outcomes
  // produce identical results (a speculative window whose fleet never
  // changes validates clean), so the race is benign for determinism.
  const bool exact = depth_ <= 2 || epoch <= 1 ||
                     shards_->AllCommittedAtLeast(epoch - 1);
  if (exact) {
    PlanExact(&slot, batch, now, epoch, /*self_advance=*/true);
  } else {
    PlanSpeculative(&slot, batch, now, epoch);
  }
}

void DispatchWindowPlanner::CommitWindow(WindowEpoch epoch) {
  WindowSlot& slot = slots_[epoch % static_cast<WindowEpoch>(depth_)];
  assert(slot.epoch == epoch && "CommitWindow out of order");
  CommitSlot(&slot);
}

void DispatchWindowPlanner::PlanExact(WindowSlot* slot,
                                      const std::vector<RequestId>& batch,
                                      double now, WindowEpoch epoch,
                                      bool self_advance) {
  const obs::TraceSpan span(
      tracer_, "window.plan_exact",
      {{"epoch", static_cast<std::int64_t>(epoch)},
       {"batch", static_cast<std::int64_t>(batch.size())}});
  obs::Inc(windows_counter_);
  const auto shard_count = static_cast<std::size_t>(shards_->num_shards());

  // ---- 0. Slot-free gate: the ring slot was last used by window
  // epoch - depth_, whose commit must have fully retired before any slot
  // field is rewritten. (The fused mode commits synchronously and the
  // waits return immediately.)
  if (epoch > static_cast<WindowEpoch>(depth_)) {
    const WindowEpoch freed = epoch - static_cast<WindowEpoch>(depth_);
    for (std::size_t s = 0; s < shard_count; ++s) {
      shards_->WaitCommitted(static_cast<int>(s), freed);
    }
  }
  assert(slot->state.load(std::memory_order_relaxed) == SlotState::kFree);
  slot->state.store(SlotState::kFilling, std::memory_order_relaxed);
  slot->epoch = epoch;
  slot->now = now;
  slot->speculative = false;
  // Reusable window workspace: trim capacity back toward the recent
  // high-water mark before refilling. Safe here — the slot-free gate
  // above proves the previous tenant's commit fully retired, so the
  // planning thread owns every slot buffer.
  slot->preps_clamp.Observe(&slot->preps);
  slot->footprints_clamp.Observe(&slot->footprints);

  // ---- 1. Request headers + displacement gate masks. Prep elements are
  // reused across the slot's windows (no clear() — that would free every
  // inner buffer): fields are either overwritten below or explicitly
  // reset, keeping capacity warm on the planning thread's critical path.
  std::vector<Prep>& preps = slot->preps;
  preps.resize(batch.size());
  touched_.assign(static_cast<std::size_t>(fleet_->size()), 0);
  // The per-shard gate needs one bit per shard; wider partitions fall
  // back to the full advance barrier (structurally deterministic either
  // way — the mask is a pure function of request and Rebuild snapshot).
  const bool gated = self_advance && shard_count <= 64;
  for (std::size_t b = 0; b < batch.size(); ++b) {
    Prep& p = preps[b];
    p.alive = false;
    p.prepped = false;
    p.planned = false;
    p.required_mask = 0;
    p.memo.Reset();  // new request in this prep element — drop stale entries
    p.r = &ctx_->request(batch[b]);
    p.L = ctx_->DirectDist(p.r->id);
    if (!gated) continue;
    // Planning happens at the window close: the shared filter's ideal-
    // service deadline test runs against `now`, not the release time.
    const double radius = CandidateRadiusKm(*p.r, p.L, now);
    if (now + p.L > p.r->deadline || radius < 0.0) continue;  // filter = {}
    // The filter reads the grid cells within `rings` of the origin cell
    // (rings = floor(radius / g) + 1), i.e. points within
    // sqrt(2) * (radius + 2g) of the origin. Shard s can place a worker
    // (any index position it held since the last Rebuild) inside that
    // rectangle only if its tile lies within the rectangle bound plus
    // the shard's maximum member displacement — everything farther is
    // provably invisible to this request's filter.
    const Point origin = ctx_->graph().coord(p.r->origin);
    const double reach =
        std::sqrt(2.0) * (radius + 2.0 * config_.grid_cell_km);
    for (std::size_t s = 0; s < shard_count; ++s) {
      if (shards_->TileDistanceKm(static_cast<int>(s), origin) <=
          reach + shards_->MaxDisplacementKm(static_cast<int>(s), now)) {
        p.required_mask |= std::uint64_t{1} << s;
      }
    }
  }

  // Filter + touch of one request; runs as soon as its required shards
  // advanced. Touching never commits stops here — every candidate's
  // shard is required, hence already advanced to `now` — so the touch
  // order across requests is immaterial (per-worker idle anchor bumps,
  // first touch wins).
  const auto prep_one = [&](std::size_t b) {
    Prep& p = preps[b];
    p.prepped = true;
    FilterCandidatesInto(ctx_, *index_, *p.r, p.L, now, &p.candidates);
    if (p.candidates.empty()) return;
    p.alive = true;
    for (const WorkerId w : p.candidates) {
      auto& flag = touched_[static_cast<std::size_t>(w)];
      if (flag == 0) {
        flag = 1;
        fleet_->Touch(w, now);
      }
    }
  };

  // ---- 2. Advance gate: shard by shard, in fixed shard order, each as
  // soon as the previous window's commit stage releases it. The fixed
  // shard-then-worker order keeps every cross-worker accumulation
  // (committed distance, heap pushes, grid moves) deterministic no matter
  // how the commit stage interleaves. Requests prep the moment their
  // required-shard mask is covered by the advanced prefix — the former
  // global advance barrier survives only for requests that genuinely
  // need every shard. In the fused (OnBatch) mode the previous window
  // committed synchronously, so the waits return immediately and the
  // simulator has already advanced the fleet.
  const WindowEpoch prev = epoch == 0 ? 0 : epoch - 1;
  if (self_advance) {
    std::uint64_t advanced = 0;
    for (std::size_t s = 0; s < shard_count; ++s) {
      shards_->WaitCommitted(static_cast<int>(s), prev);
      for (const WorkerId w : shards_->workers_in(static_cast<int>(s))) {
        fleet_->AdvanceWorkerTo(w, now);
      }
      if (!gated) continue;
      if (s < 64) advanced |= std::uint64_t{1} << s;
      for (std::size_t b = 0; b < preps.size(); ++b) {
        Prep& p = preps[b];
        if (!p.prepped && (p.required_mask & ~advanced) == 0) prep_one(b);
      }
    }
  } else {
    for (std::size_t s = 0; s < shard_count; ++s) {
      shards_->WaitCommitted(static_cast<int>(s), prev);
    }
  }
  for (std::size_t b = 0; b < preps.size(); ++b) {
    if (!preps[b].prepped) prep_one(b);
  }
  // Anchors may have moved while committing due stops; shard membership
  // reflects the post-advance positions for the rest of the window. (The
  // previous window has fully committed by now — the advance gate's last
  // wait saw every shard released — so no concurrent reader exists.)
  shards_->Rebuild();

  // ---- 3. Planning: one task per request, the shared sequential
  // decision+planning scan against the frozen fleet. Requests are
  // mutually independent here, so the winners are schedule-independent;
  // evaluation counts are accumulated serially afterwards.
  slot->state.store(SlotState::kPlanning, std::memory_order_relaxed);
  std::vector<Proposal>& proposals = slot->proposals;
  proposals.assign(preps.size(), Proposal{});
  ForEach(preps.size(), [&](std::int64_t i) {
    const auto b = static_cast<std::size_t>(i);
    Prep& p = preps[b];
    if (!p.alive) return;
    p.evals = 0;
    p.planned = PlanSequential(*p.r, p.candidates, &proposals[b], &p.evals,
                               /*spec=*/nullptr,
                               config_.use_eval_memo ? &p.memo : nullptr);
  });
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t saved = 0;
  for (Prep& p : preps) {
    if (p.alive) exact_evaluations_ += p.evals;
    p.memo.Drain(&hits, &misses, &saved);
  }
  memo_hits_ += hits;
  memo_misses_ += misses;
  memo_saved_ += saved;
  obs::Inc(memo_hit_counter_, hits);
  obs::Inc(memo_miss_counter_, misses);

  BuildAcceptSchedule(slot);
}

void DispatchWindowPlanner::PlanSpeculative(
    WindowSlot* slot, const std::vector<RequestId>& batch, double now,
    WindowEpoch epoch) {
  const obs::TraceSpan span(
      tracer_, "window.plan_speculative",
      {{"epoch", static_cast<std::int64_t>(epoch)},
       {"batch", static_cast<std::int64_t>(batch.size())}});
  obs::Inc(windows_counter_);
  const auto shard_count = static_cast<std::size_t>(shards_->num_shards());
  // Slot-free gate, as in PlanExact — the speculative path has no
  // advance gate to imply it.
  if (epoch > static_cast<WindowEpoch>(depth_)) {
    const WindowEpoch freed = epoch - static_cast<WindowEpoch>(depth_);
    for (std::size_t s = 0; s < shard_count; ++s) {
      shards_->WaitCommitted(static_cast<int>(s), freed);
    }
  }
  assert(slot->state.load(std::memory_order_relaxed) == SlotState::kFree);
  slot->state.store(SlotState::kFilling, std::memory_order_relaxed);
  slot->epoch = epoch;
  slot->now = now;
  slot->speculative = true;
  // Reusable window workspace, as on the exact path.
  slot->preps_clamp.Observe(&slot->preps);
  slot->footprints_clamp.Observe(&slot->footprints);
  // Dirty-set baseline: every fleet mutation the commit stages perform
  // after this stamp carries a dirty-log tag > spec_base, so validation
  // can collect exactly the workers that may have changed under the scan.
  slot->spec_base = shards_->MinCommittedEpoch();

  // ---- Provisional prep against the live fleet: no advance, no touch,
  // no Rebuild — those are the committing thread's to perform. The
  // filter runs under the commit lock, which serializes it against the
  // grid moves of concurrently committing stops.
  std::vector<Prep>& preps = slot->preps;
  preps.resize(batch.size());
  for (std::size_t b = 0; b < batch.size(); ++b) {
    Prep& p = preps[b];
    p.prepped = true;
    p.planned = false;
    p.required_mask = 0;
    p.memo.Reset();  // new request in this prep element — drop stale entries
    p.r = &ctx_->request(batch[b]);
    p.L = ctx_->DirectDist(p.r->id);  // memoized once; globally billed
    {
      const std::unique_lock<std::mutex> lock = fleet_->LockCommitState();
      FilterCandidatesInto(ctx_, *index_, *p.r, p.L, now, &p.candidates);
    }
    p.alive = !p.candidates.empty();
  }

  // ---- Speculative planning: per-candidate accesses under the mutex
  // stripes with route versions captured; distance queries billed to the
  // request's private sink (re-billed only if the speculation survives).
  slot->state.store(SlotState::kPlanning, std::memory_order_relaxed);
  std::vector<Proposal>& proposals = slot->proposals;
  proposals.assign(preps.size(), Proposal{});
  ForEach(preps.size(), [&](std::int64_t i) {
    const auto b = static_cast<std::size_t>(i);
    Prep& p = preps[b];
    if (!p.alive) return;
    p.evals = 0;
    p.spec_queries = 0;
    p.spec_versions.clear();
    const SpecCapture capture{&p.spec_versions};
    EvalMemo* const memo = config_.use_eval_memo ? &p.memo : nullptr;
    if (billing_ != nullptr) {
      const CachedOracle::BillingScope scope(&p.spec_queries);
      p.planned = PlanSequential(*p.r, p.candidates, &proposals[b], &p.evals,
                                 &capture, memo);
    } else {
      p.planned = PlanSequential(*p.r, p.candidates, &proposals[b], &p.evals,
                                 &capture, memo);
    }
  });
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t saved = 0;
  for (Prep& p : preps) p.memo.Drain(&hits, &misses, &saved);
  memo_hits_ += hits;
  memo_misses_ += misses;
  memo_saved_ += saved;
  obs::Inc(memo_hit_counter_, hits);
  obs::Inc(memo_miss_counter_, misses);
  // No accept schedule yet: commit-time validation re-derives candidates
  // and versions, then builds it from the surviving proposals.
}

void DispatchWindowPlanner::ValidateSpeculative(WindowSlot* slot) {
  const obs::TraceSpan span(
      tracer_, "window.validate",
      {{"epoch", static_cast<std::int64_t>(slot->epoch)}});
  const double now = slot->now;
  const auto shard_count = static_cast<std::size_t>(shards_->num_shards());
  std::vector<Prep>& preps = slot->preps;
  std::int64_t window_hits = 0;
  std::int64_t window_misses = 0;

  // The committing thread is the only committer and window epoch-1 fully
  // retired before CommitWindow(epoch) was called, so the full advance
  // runs without epoch waits — in the same fixed shard-then-worker order
  // the exact path uses, producing the identical commit-event stream.
  // Version bumps are logged to the dirty set: later in-flight
  // speculative slots must see these advances as mutations too.
  const bool track_dirty = pipelined_ && depth_ > 2;
  for (std::size_t s = 0; s < shard_count; ++s) {
    for (const WorkerId w : shards_->workers_in(static_cast<int>(s))) {
      const std::uint64_t v0 = fleet_->route(w).version();
      fleet_->AdvanceWorkerTo(w, now);
      if (track_dirty && fleet_->route(w).version() != v0) {
        shards_->RecordDirty(slot->epoch, w);
      }
    }
  }
  // Fresh filter + touch, exactly as a non-speculative prep would run
  // (batch order, first touch wins). Touches commit nothing — everything
  // just advanced — so this only bumps idle anchors, which shows up as a
  // version change on any speculatively-read candidate it affects.
  touched_.assign(static_cast<std::size_t>(fleet_->size()), 0);
  for (Prep& p : preps) {
    FilterCandidatesInto(ctx_, *index_, *p.r, p.L, now, &p.fresh);
    for (const WorkerId w : p.fresh) {
      auto& flag = touched_[static_cast<std::size_t>(w)];
      if (flag == 0) {
        flag = 1;
        const std::uint64_t v0 = fleet_->route(w).version();
        fleet_->Touch(w, now);
        if (track_dirty && fleet_->route(w).version() != v0) {
          shards_->RecordDirty(slot->epoch, w);
        }
      }
    }
  }
  shards_->Rebuild();

  // Dirty set since the scan's baseline: a proven superset of the workers
  // whose routes can have changed under the speculative scan (the commit
  // stages — the fleet's only mutators while windows are in flight — log
  // every worker they touch).
  shards_->CollectDirtySince(slot->spec_base, &dirty_scratch_);
  dirty_flag_.assign(static_cast<std::size_t>(fleet_->size()), 0);
  for (const WorkerId w : dirty_scratch_) {
    dirty_flag_[static_cast<std::size_t>(w)] = 1;
  }

  // Hit = the speculative scan provably read what a fresh scan would
  // read: same candidate list, and every captured route version still
  // current (versions only grow — any mutation in between, including the
  // idle bumps above, fails the check). Misses replan from scratch
  // against the now-advanced fleet; their sink-billed queries are
  // dropped, the replan bills globally like any exact scan.
  std::int64_t replan_evals = 0;
  for (std::size_t b = 0; b < preps.size(); ++b) {
    Prep& p = preps[b];
    bool hit = p.fresh == p.candidates;
    if (hit) {
      // Fast path: no speculatively-read worker appears in the dirty set,
      // so every captured version is provably still current — the
      // per-candidate comparison is skipped entirely. Dirty candidates
      // (a conservative superset of actual changes) still get the exact
      // version check, so both paths accept exactly the same scans.
      bool any_dirty = false;
      for (const auto& [w, version] : p.spec_versions) {
        if (dirty_flag_[static_cast<std::size_t>(w)] != 0) {
          any_dirty = true;
          break;
        }
      }
      if (any_dirty) {
        for (const auto& [w, version] : p.spec_versions) {
          if (fleet_->route(w).version() != version) {
            hit = false;
            break;
          }
        }
      }
    }
    if (hit) {
      if (p.alive) {
        ++spec_hits_;
        ++window_hits;
        obs::Inc(spec_hit_counter_);
        slot->commit_evals += p.evals;
        if (billing_ != nullptr) billing_->AddBilled(p.spec_queries);
      }
      // Dead on both sides: nothing was speculated, nothing to validate.
      continue;
    }
    ++spec_misses_;
    ++window_misses;
    obs::Inc(spec_miss_counter_);
    p.candidates = p.fresh;
    p.alive = !p.candidates.empty();
    p.planned = false;
    slot->proposals[b] = Proposal{};
    if (p.alive) {
      // Replan through the request's memo: every candidate whose route
      // version held since the speculative scan reuses its recorded
      // evaluation verbatim, so the replan's fresh work is O(changed
      // candidates), not O(candidates).
      const std::int64_t h0 = p.memo.hits;
      const std::int64_t m0 = p.memo.misses;
      {
        const obs::ScopedTimerMs replan_timer(spec_replan_hist_);
        p.planned = PlanSequential(*p.r, p.candidates, &slot->proposals[b],
                                   &replan_evals, /*spec=*/nullptr,
                                   config_.use_eval_memo ? &p.memo : nullptr);
      }
      const std::int64_t reused = p.memo.hits - h0;
      const std::int64_t fresh = p.memo.misses - m0;
      if (reused > 0) {
        ++slot->commit_narrowed;
        obs::Inc(replan_narrowed_counter_);
        if (tracer_ != nullptr) {
          tracer_->Instant("replan.narrowed",
                           {{"epoch", static_cast<std::int64_t>(slot->epoch)},
                            {"request", p.r->id},
                            {"reused", reused}});
        }
      } else {
        ++slot->commit_full;
        obs::Inc(replan_full_counter_);
      }
      if (reused + fresh > 0) {
        replan_scope_.Add(static_cast<double>(fresh) /
                          static_cast<double>(reused + fresh));
      }
    }
  }
  slot->commit_evals += replan_evals;
  // Validation-stage memo traffic (the planning-stage traffic was drained
  // on the planning thread; Drain zeroes, so this picks up the delta).
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t saved = 0;
  for (Prep& p : preps) p.memo.Drain(&hits, &misses, &saved);
  slot->commit_memo_hits += hits;
  slot->commit_memo_misses += misses;
  slot->commit_memo_saved += saved;
  obs::Inc(memo_hit_counter_, hits);
  obs::Inc(memo_miss_counter_, misses);
  if (tracer_ != nullptr) {
    tracer_->Instant("speculation",
                     {{"epoch", static_cast<std::int64_t>(slot->epoch)},
                      {"hits", window_hits},
                      {"misses", window_misses}});
  }

  BuildAcceptSchedule(slot);
}

void DispatchWindowPlanner::BuildAcceptSchedule(WindowSlot* slot) {
  const auto shard_count = static_cast<std::size_t>(shards_->num_shards());
  std::vector<Prep>& preps = slot->preps;
  std::vector<Proposal>& proposals = slot->proposals;

  // ---- Apply order: unified cost (= alpha * delta), then request id.
  // The exact-reject ablation already ran inside the shared scan
  // (planned = false), so acceptance is just "a proposal exists".
  std::vector<std::size_t>& accepted = slot->accepted;
  accepted.clear();
  for (std::size_t b = 0; b < preps.size(); ++b) {
    if (preps[b].alive && preps[b].planned) accepted.push_back(b);
  }
  std::sort(accepted.begin(), accepted.end(),
            [&](std::size_t a, std::size_t b) {
              const Proposal& pa = proposals[a];
              const Proposal& pb = proposals[b];
              if (pa.delta != pb.delta) return pa.delta < pb.delta;
              return pa.request < pb.request;
            });

  // ---- Shard footprints + sequence tickets + release schedule. A
  // proposal's footprint is the (deduplicated, ascending) shard set of
  // its candidates — the workers its apply may read (replan) or write.
  // Ticket seq s/k gates apply order per shard; the shard is released
  // once the last accepted proposal whose request could touch it —
  // directly or through a conflict replan over ANY of its candidates —
  // has retired. Membership is post-Rebuild, so footprints stay valid
  // until the next window's Rebuild, which cannot run before this
  // window's commit fully retires.
  slot->release_at.assign(shard_count, -1);
  slot->footprints.resize(accepted.size());
  shard_flag_.assign(shard_count, 0);
  shard_seq_.assign(shard_count, 0);
  for (std::size_t idx = 0; idx < accepted.size(); ++idx) {
    auto& footprint = slot->footprints[idx];
    footprint.clear();
    for (const WorkerId w : preps[accepted[idx]].candidates) {
      const int s = shards_->ShardOf(w);
      if (shard_flag_[static_cast<std::size_t>(s)] == 0) {
        shard_flag_[static_cast<std::size_t>(s)] = 1;
        footprint.push_back({s, 0});
      }
    }
    std::sort(footprint.begin(), footprint.end());
    for (auto& [s, seq] : footprint) {
      seq = shard_seq_[static_cast<std::size_t>(s)]++;
      shard_flag_[static_cast<std::size_t>(s)] = 0;
      slot->release_at[static_cast<std::size_t>(s)] =
          static_cast<std::ptrdiff_t>(idx);
    }
  }
}

void DispatchWindowPlanner::CommitSlot(WindowSlot* slot) {
  assert(slot->state.load(std::memory_order_relaxed) == SlotState::kPlanning);
  slot->state.store(SlotState::kCommitting, std::memory_order_relaxed);
  if (slot->speculative) ValidateSpeculative(slot);

  const WindowEpoch epoch = slot->epoch;
  const auto shard_count = static_cast<std::size_t>(shards_->num_shards());
  // Shards no accepted proposal can touch are free for the next window
  // before any apply work happens.
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (slot->release_at[s] < 0) {
      shards_->MarkCommitted(static_cast<int>(s), epoch);
    }
  }

  // ---- Parallel footprint-ordered apply. Per shard, tickets retire in
  // sequence; a proposal waits until it holds the head ticket of EVERY
  // footprint shard, so any two proposals sharing a shard apply in the
  // accepted (cost, id) order while disjoint ones overlap. That makes
  // the parallel apply serial-equivalent: a replan triggered by a stale
  // route version reads only candidates inside its own footprint, whose
  // state is exactly what the serial loop would have left. Deadlock-free
  // with grain-1 monotone claiming — a task only waits on smaller
  // indices, and the smallest unretired index never waits.
  const std::size_t n = slot->accepted.size();
  for (std::size_t s = 0; s < shard_count; ++s) {
    commit_heads_[s].store(0, std::memory_order_relaxed);
  }
  apply_stats_.assign(n, ApplyStats{});
  // Dirty recording matters only while speculative scans can be in
  // flight (a deep pipelined ring); the fused and double-buffer modes
  // never consult the log.
  const bool track_dirty = pipelined_ && depth_ > 2;
  ThreadPool* commit_exec = pipelined_ ? commit_pool_.get() : pool_;
  ForEachOn(commit_exec, n, [&](std::int64_t i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::size_t b = slot->accepted[idx];
    Proposal& p = slot->proposals[b];
    const Request& r = *slot->preps[b].r;
    const auto& footprint = slot->footprints[idx];
    for (const auto& [s, seq] : footprint) {
      auto& head = commit_heads_[static_cast<std::size_t>(s)];
      if (head.load(std::memory_order_acquire) == seq) continue;
      // The per-shard ticket spin — the commit-lock wait blind spot.
      // Only an actual spin is timed (and only with a live histogram),
      // so the head-ticket fast path stays clock-free.
      const bool timed = ticket_wait_hist_ != nullptr;
      const auto w0 = timed ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
      while (head.load(std::memory_order_acquire) != seq) {
        std::this_thread::yield();
      }
      if (timed) {
        ticket_wait_hist_->Observe(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - w0)
                .count());
      }
    }
    {
      const obs::TraceSpan apply_span(
          tracer_, "commit.apply",
          {{"epoch", static_cast<std::int64_t>(epoch)},
           {"request", r.id},
           {"shard",
            footprint.empty() ? std::int64_t{-1}
                              : static_cast<std::int64_t>(
                                    footprint.front().first)}});
      if (fleet_->route(p.worker).version() == p.route_version) {
        // Still the fleet snapshot the proposal was computed against (for
        // this worker): feasibility and delta hold verbatim.
        fleet_->ApplyInsertion(p.worker, r, p.i, p.j, ctx_->oracle());
        if (track_dirty) shards_->RecordDirty(epoch, p.worker);
      } else {
        // An earlier (cheaper) batch member took this worker: replan
        // against the updated fleet. The grid index did not move (Insert
        // keeps anchors), so the original candidate list is still the
        // filter's output. The request's memo narrows the replan to the
        // candidates whose routes actually changed; untouched candidates
        // reuse their recorded evaluations verbatim.
        ApplyStats& stats = apply_stats_[idx];
        stats.replans = 1;
        obs::Inc(conflict_replan_counter_);
        Prep& prep = slot->preps[b];
        Proposal replanned;
        bool planned = false;
        {
          const obs::ScopedTimerMs replan_timer(conflict_replan_hist_);
          planned = PlanSequential(
              r, prep.candidates, &replanned, &stats.evals,
              /*spec=*/nullptr, config_.use_eval_memo ? &prep.memo : nullptr);
        }
        if (planned) {
          fleet_->ApplyInsertion(replanned.worker, r, replanned.i,
                                 replanned.j, ctx_->oracle());
          if (track_dirty) shards_->RecordDirty(epoch, replanned.worker);
        }
        // The memo counters were drained after planning (and after
        // validation for speculative slots), and each prep belongs to at
        // most one accepted proposal — so this drain is exactly the
        // replan's own traffic.
        prep.memo.Drain(&stats.memo_hits, &stats.memo_misses,
                        &stats.memo_saved);
        if (stats.memo_hits > 0) {
          stats.narrowed = 1;
        } else {
          stats.full = 1;
        }
      }
    }
    for (const auto& [s, seq] : footprint) {
      commit_heads_[static_cast<std::size_t>(s)].store(
          seq + 1, std::memory_order_release);
    }
    for (const auto& [s, seq] : footprint) {
      if (slot->release_at[static_cast<std::size_t>(s)] ==
          static_cast<std::ptrdiff_t>(idx)) {
        shards_->MarkCommitted(s, epoch);
        if (tracer_ != nullptr) {
          tracer_->Instant("shard.release",
                           {{"shard", s},
                            {"epoch", static_cast<std::int64_t>(epoch)}});
        }
      }
    }
  });
  for (std::size_t idx = 0; idx < n; ++idx) {
    const ApplyStats& stats = apply_stats_[idx];
    slot->commit_evals += stats.evals;
    slot->commit_replans += stats.replans;
    slot->commit_memo_hits += stats.memo_hits;
    slot->commit_memo_misses += stats.memo_misses;
    slot->commit_memo_saved += stats.memo_saved;
    slot->commit_narrowed += stats.narrowed;
    slot->commit_full += stats.full;
    obs::Inc(memo_hit_counter_, stats.memo_hits);
    obs::Inc(memo_miss_counter_, stats.memo_misses);
    if (stats.narrowed != 0) {
      obs::Inc(replan_narrowed_counter_);
      if (tracer_ != nullptr) {
        tracer_->Instant(
            "replan.narrowed",
            {{"epoch", static_cast<std::int64_t>(epoch)},
             {"request", slot->proposals[slot->accepted[idx]].request},
             {"reused", stats.memo_hits}});
      }
    }
    if (stats.full != 0) obs::Inc(replan_full_counter_);
    if (stats.replans != 0 && stats.memo_hits + stats.memo_misses > 0) {
      replan_scope_.Add(
          static_cast<double>(stats.memo_misses) /
          static_cast<double>(stats.memo_hits + stats.memo_misses));
    }
  }
  shards_->MarkAllCommitted(epoch);
  // Entries tagged <= epoch - depth_ can never be consulted again: any
  // future speculative scan passes the slot-free gate first, so its
  // baseline is at least epoch + 1 - depth_.
  if (track_dirty && epoch > static_cast<WindowEpoch>(depth_)) {
    shards_->PruneDirtyBefore(epoch - static_cast<WindowEpoch>(depth_));
  }
  slot->state.store(SlotState::kFree, std::memory_order_relaxed);
}

PlannerFactory MakeDispatchWindowFactory(PlannerConfig config) {
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<DispatchWindowPlanner>(ctx, fleet, config,
                                                   ctx->thread_pool());
  };
}

}  // namespace urpsm
