#include "src/sim/dispatch_window.h"

#include <algorithm>
#include <cassert>
#include <thread>
#include <utility>

namespace urpsm {

DispatchWindowPlanner::DispatchWindowPlanner(PlanningContext* ctx,
                                             Fleet* fleet,
                                             PlannerConfig config,
                                             ThreadPool* pool)
    : ctx_(ctx), fleet_(fleet), config_(config), pool_(pool) {
  Point lo, hi;
  ctx_->graph().BoundingBox(&lo, &hi);
  index_ = std::make_unique<GridIndex>(lo, hi, config_.grid_cell_km);
  fleet_->AttachIndex(index_.get());
  // Shard regions are coarser than the candidate grid (4 cells per region
  // side) so a worker's stop-to-stop anchor moves rarely change its shard.
  // Both constants are structural — independent of the thread count — so
  // the task decomposition, and with it every planning result, is too.
  shards_ = std::make_unique<FleetShards>(fleet_, lo, hi,
                                          4.0 * config_.grid_cell_km);
  fleet_->AttachShards(shards_.get());
}

DispatchWindowPlanner::~DispatchWindowPlanner() {
  fleet_->AttachShards(nullptr);
}

void DispatchWindowPlanner::ForEach(
    std::size_t n, const std::function<void(std::int64_t)>& body) {
  // Purely an execution choice (the per-task work is fixed): tiny task
  // counts run inline rather than paying the pool wakeup. Grain stays 1:
  // the cursor claims indices monotonically, which the per-request
  // dependency chains rely on (every decision task is claimed — hence
  // running to completion on some thread — before any planning task is,
  // so a planning task's bounded wait always terminates).
  const bool worth_fanning =
      pool_ != nullptr && pool_->num_threads() > 1 && n >= 2;
  if (worth_fanning) {
    pool_->ParallelFor(0, static_cast<std::int64_t>(n), body, /*grain=*/1);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(static_cast<std::int64_t>(i));
  }
}

WorkerId DispatchWindowPlanner::OnRequest(const Request& r) {
  PlanAndApplySingle(r, r.release_time);
  return fleet_->AssignedWorker(r.id);
}

void DispatchWindowPlanner::PlanAndApplySingle(const Request& r, double now) {
  const double L = ctx_->DirectDist(r.id);
  const std::vector<WorkerId> candidates =
      FilterCandidates(ctx_, *index_, r, L, now);
  if (candidates.empty()) return;
  for (const WorkerId w : candidates) fleet_->Touch(w, now);
  Proposal p;
  if (PlanSequential(r, candidates, &p, &exact_evaluations_)) {
    fleet_->ApplyInsertion(p.worker, r, p.i, p.j, ctx_->oracle());
  }
}

bool DispatchWindowPlanner::PlanSequential(
    const Request& r, const std::vector<WorkerId>& candidates, Proposal* out,
    std::int64_t* evals) {
  // Funnels through the one shared sequential scan, so singleton batches
  // and conflict replans can never drift from GreedyDpPlanner::OnRequest.
  const double L = ctx_->DirectDist(r.id);
  InsertionCandidate best;
  const WorkerId best_worker = PlanRequestSequential(
      ctx_, fleet_, config_, r, L, candidates, &best, evals);
  if (best_worker == kInvalidWorker) return false;
  out->request = r.id;
  out->worker = best_worker;
  out->delta = best.delta;
  out->i = best.i;
  out->j = best.j;
  out->route_version = fleet_->route(best_worker).version();
  return true;
}

void DispatchWindowPlanner::OnBatch(const std::vector<RequestId>& batch,
                                    double now, WindowEpoch epoch) {
  // Singleton fast path (the window = 0 / per-request mode): literally
  // the sequential planner's filter + touch + shared scan, which is what
  // the bit-identity contract promises anyway. The epoch is still
  // released so a later window's advance gate cannot starve.
  if (batch.size() <= 1) {
    if (!batch.empty()) PlanAndApplySingle(ctx_->request(batch.front()), now);
    shards_->MarkAllCommitted(epoch);
    return;
  }
  WindowSlot& slot = slots_[epoch % 2];
  PlanInto(&slot, batch, now, epoch, /*self_advance=*/false);
  CommitSlot(&slot);
}

void DispatchWindowPlanner::PlanWindow(const std::vector<RequestId>& batch,
                                       double now, WindowEpoch epoch) {
  // The pipelined mode funnels even singleton windows through the full
  // plan/commit split: PlanAndApplySingle mutates the fleet, which the
  // planning stage must not do while the previous commit is in flight.
  PlanInto(&slots_[epoch % 2], batch, now, epoch, /*self_advance=*/true);
}

void DispatchWindowPlanner::CommitWindow(WindowEpoch epoch) {
  WindowSlot& slot = slots_[epoch % 2];
  assert(slot.epoch == epoch && "CommitWindow out of order");
  CommitSlot(&slot);
}

void DispatchWindowPlanner::PlanInto(WindowSlot* slot,
                                     const std::vector<RequestId>& batch,
                                     double now, WindowEpoch epoch,
                                     bool self_advance) {
  const auto shard_count = static_cast<std::size_t>(shards_->num_shards());

  // ---- 1. Advance gate: shard by shard, in fixed shard order, each as
  // soon as the previous window's commit stage releases it. The fixed
  // shard-then-worker order keeps every cross-worker accumulation
  // (committed distance, heap pushes, grid moves) deterministic no matter
  // how the commit stage interleaves. In the fused (OnBatch) mode the
  // previous window committed synchronously, so the waits return
  // immediately and the simulator has already advanced the fleet.
  const WindowEpoch prev = epoch == 0 ? 0 : epoch - 1;
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_->WaitCommitted(static_cast<int>(s), prev);
    if (self_advance) {
      for (const WorkerId w : shards_->workers_in(static_cast<int>(s))) {
        fleet_->AdvanceWorkerTo(w, now);
      }
    }
  }

  slot->epoch = epoch;
  slot->now = now;

  // ---- 2. Prep: filters, candidates, touches. Prep elements are reused
  // across the slot's windows (no clear() — that would free every inner
  // buffer): fields are either overwritten below or explicitly reset,
  // so shard/lbs/bounds keep their capacity warm on the planning
  // thread's critical path.
  std::vector<Prep>& preps = slot->preps;
  preps.resize(batch.size());
  touched_.assign(static_cast<std::size_t>(fleet_->size()), 0);
  for (std::size_t b = 0; b < batch.size(); ++b) {
    Prep& p = preps[b];
    p.alive = false;
    p.r = &ctx_->request(batch[b]);
    const Request& r = *p.r;
    p.L = ctx_->DirectDist(r.id);
    // Planning happens at the window close: the shared filter's ideal-
    // service deadline test runs against `now`, not the release time.
    p.candidates = FilterCandidates(ctx_, *index_, r, p.L, now);
    if (p.candidates.empty()) continue;
    p.alive = true;
    for (const WorkerId w : p.candidates) {
      auto& flag = touched_[static_cast<std::size_t>(w)];
      if (flag == 0) {
        flag = 1;
        fleet_->Touch(w, now);
      }
    }
  }
  // Anchors may have moved while committing due stops; shard membership
  // reflects the post-advance positions for the rest of the window. (The
  // previous window has fully committed by now — the advance gate's last
  // wait saw every shard released — so no concurrent reader exists.)
  shards_->Rebuild();

  // ---- 3+4. Decision + planning as per-request dependency chains: one
  // ShardTask per (request, candidate shard) serves BOTH passes. The
  // combined index space is [0, T) decision tasks then [T, 2T) planning
  // tasks; a planning task spins until its request's decision chain
  // completed (bounded: all decision tasks are claimed first — see
  // ForEach). The request's rejection test + scan order run exactly once,
  // on the thread that finished its last decision task.
  std::vector<ShardTask>& tasks = slot->tasks;
  tasks.clear();
  std::vector<std::vector<std::size_t>>& by_shard = by_shard_;
  by_shard.resize(shard_count);  // buckets are left empty between windows
  for (std::size_t b = 0; b < preps.size(); ++b) {
    Prep& p = preps[b];
    if (!p.alive) continue;
    p.lbs.assign(p.candidates.size(), kInf);
    p.shard.resize(p.candidates.size());
    p.bounds.clear();  // reused element: stale decision arrays from the
    p.order.clear();   // slot's previous window must not leak in
    for (std::size_t k = 0; k < p.candidates.size(); ++k) {
      const int s = shards_->ShardOf(p.candidates[k]);
      p.shard[k] = s;
      by_shard[static_cast<std::size_t>(s)].push_back(k);
    }
    p.task_begin = tasks.size();
    for (std::size_t s = 0; s < shard_count; ++s) {
      if (by_shard[s].empty()) continue;
      tasks.push_back({b, static_cast<int>(s), std::move(by_shard[s]),
                       {}, {}, 0, kInvalidWorker, 0});
      by_shard[s].clear();
    }
    p.task_end = tasks.size();
  }

  std::vector<std::atomic<int>> pending(preps.size());
  std::vector<std::atomic<std::uint8_t>> decided(preps.size());
  for (std::size_t b = 0; b < preps.size(); ++b) {
    pending[b].store(0, std::memory_order_relaxed);
    decided[b].store(preps[b].alive ? 0 : 1, std::memory_order_relaxed);
  }
  for (const ShardTask& task : tasks) {
    pending[task.req].fetch_add(1, std::memory_order_relaxed);
  }

  // Rejection + scan order for one request, in candidate order — the
  // same bounds array and permutation the sequential planner derives —
  // followed by distributing the scan positions onto the request's shard
  // tasks (so each planning task walks only its own share of the order).
  const auto finish_decision = [&](std::size_t b) {
    Prep& p = preps[b];
    double min_lb = kInf;
    p.bounds.reserve(p.candidates.size());
    for (std::size_t k = 0; k < p.candidates.size(); ++k) {
      if (p.lbs[k] == kInf) continue;
      p.bounds.push_back({p.candidates[k], p.lbs[k]});
      min_lb = std::min(min_lb, p.lbs[k]);
    }
    if (p.bounds.empty() || p.r->penalty < config_.alpha * min_lb) {
      p.alive = false;  // rejection is final (Def. 5)
    } else {
      p.order = AscendingLowerBoundOrder(p.bounds);
      // The request's tasks were created in ascending shard order, so the
      // owning task is a binary search away (every scanned candidate's
      // shard has one — task creation covered all candidate shards).
      const auto t_begin =
          tasks.begin() + static_cast<std::ptrdiff_t>(p.task_begin);
      const auto t_end =
          tasks.begin() + static_cast<std::ptrdiff_t>(p.task_end);
      for (std::size_t pos = 0; pos < p.order.size(); ++pos) {
        const int s = shards_->ShardOf(p.bounds[p.order[pos]].worker);
        const auto it = std::lower_bound(
            t_begin, t_end, s,
            [](const ShardTask& task, int shard) { return task.shard < shard; });
        assert(it != t_end && it->shard == s);
        it->plan_positions.push_back(pos);
      }
    }
    decided[b].store(1, std::memory_order_release);
  };

  const std::size_t t_count = tasks.size();
  ForEach(2 * t_count, [&](std::int64_t i) {
    if (i < static_cast<std::int64_t>(t_count)) {
      // Decision pass of one (request, shard) task.
      ShardTask& task = tasks[static_cast<std::size_t>(i)];
      Prep& p = preps[task.req];
      for (const std::size_t k : task.members) {
        const WorkerId w = p.candidates[k];
        const Route& route = fleet_->route(w);
        const RouteState& st = fleet_->CachedState(w, ctx_);
        p.lbs[k] = DecisionLowerBound(fleet_->worker(w), route, st, *p.r, p.L,
                                      ctx_->graph());
      }
      if (pending[task.req].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        finish_decision(task.req);
      }
      return;
    }
    // Planning pass of the matching task: wait for the request's decision
    // chain, then scan this shard's candidates in the global scan order
    // with the shard-local Lemma 8 cutoff. The cutoff is lossless (the
    // epsilon guard never prunes a candidate that could beat or tie this
    // shard's best), so the cross-shard merge still finds the winner.
    ShardTask& task = tasks[static_cast<std::size_t>(
        i - static_cast<std::int64_t>(t_count))];
    const Prep& p = preps[task.req];
    while (decided[task.req].load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
    if (!p.alive) return;
    for (const std::size_t pos : task.plan_positions) {
      const std::size_t k = p.order[pos];
      const WorkerId w = p.bounds[k].worker;
      if (config_.use_pruning && task.best.feasible() &&
          LemmaEightCutoff(task.best.delta, p.bounds[k].lower_bound)) {
        break;
      }
      ++task.evals;
      const InsertionCandidate cand =
          LinearDpInsertion(fleet_->worker(w), fleet_->route(w),
                            fleet_->CachedState(w, ctx_), *p.r, ctx_);
      if (cand.feasible() && cand.delta < task.best.delta) {
        task.best = cand;
        task.best_pos = pos;
        task.best_worker = w;
      }
    }
  });

  // ---- Merge winners per request: minimum (delta, scan position) over
  // shard tasks == the sequential scan's first strict improvement (ties
  // on the exact cost go to the earliest candidate in the shared scan
  // order). A lexicographic minimum, so the merge order is immaterial.
  std::vector<Proposal>& proposals = slot->proposals;
  proposals.assign(preps.size(), Proposal{});
  std::vector<std::size_t>& best_pos_of = best_pos_of_;
  best_pos_of.assign(preps.size(), 0);
  for (const ShardTask& task : tasks) {
    exact_evaluations_ += task.evals;
    if (!task.best.feasible()) continue;
    Proposal& p = proposals[task.req];
    const bool wins =
        p.worker == kInvalidWorker || task.best.delta < p.delta ||
        (task.best.delta == p.delta && task.best_pos < best_pos_of[task.req]);
    if (wins) {
      p.request = preps[task.req].r->id;
      p.worker = task.best_worker;
      p.delta = task.best.delta;
      p.i = task.best.i;
      p.j = task.best.j;
      best_pos_of[task.req] = task.best_pos;
    }
  }

  // ---- Apply order + shard release schedule for the commit stage.
  std::vector<std::size_t>& accepted = slot->accepted;
  accepted.clear();
  for (std::size_t b = 0; b < preps.size(); ++b) {
    Prep& p = preps[b];
    if (!p.alive || proposals[b].worker == kInvalidWorker) continue;
    if (config_.exact_reject_check &&
        p.r->penalty < config_.alpha * proposals[b].delta) {
      continue;
    }
    proposals[b].route_version =
        fleet_->route(proposals[b].worker).version();
    accepted.push_back(b);
  }
  std::sort(accepted.begin(), accepted.end(),
            [&](std::size_t a, std::size_t b) {
              const Proposal& pa = proposals[a];
              const Proposal& pb = proposals[b];
              if (pa.delta != pb.delta) return pa.delta < pb.delta;
              return pa.request < pb.request;
            });
  // A shard is released once the last accepted proposal whose request
  // could touch it — directly or through a conflict replan over ANY of
  // its candidates — has retired. Later writes win, so ascending apply
  // order leaves the maximum index per shard.
  slot->release_at.assign(shard_count, -1);
  for (std::size_t idx = 0; idx < accepted.size(); ++idx) {
    for (const int s : preps[accepted[idx]].shard) {
      slot->release_at[static_cast<std::size_t>(s)] =
          static_cast<std::ptrdiff_t>(idx);
    }
  }
}

void DispatchWindowPlanner::CommitSlot(WindowSlot* slot) {
  const WindowEpoch epoch = slot->epoch;
  const auto shard_count = static_cast<std::size_t>(shards_->num_shards());
  // Shards no accepted proposal can touch are free for the next window
  // before any apply work happens.
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (slot->release_at[s] < 0) {
      shards_->MarkCommitted(static_cast<int>(s), epoch);
    }
  }
  std::int64_t evals = 0, replans = 0;
  for (std::size_t idx = 0; idx < slot->accepted.size(); ++idx) {
    const std::size_t b = slot->accepted[idx];
    Proposal& p = slot->proposals[b];
    const Request& r = *slot->preps[b].r;
    if (fleet_->route(p.worker).version() == p.route_version) {
      // Still the fleet snapshot the proposal was computed against (for
      // this worker): feasibility and delta hold verbatim.
      fleet_->ApplyInsertion(p.worker, r, p.i, p.j, ctx_->oracle());
    } else {
      // An earlier (cheaper) batch member took this worker: replan
      // against the updated fleet. The grid index did not move (Insert
      // keeps anchors), so the original candidate list is still the
      // filter's output.
      ++replans;
      Proposal replanned;
      if (PlanSequential(r, slot->preps[b].candidates, &replanned, &evals)) {
        fleet_->ApplyInsertion(replanned.worker, r, replanned.i, replanned.j,
                               ctx_->oracle());
      }
    }
    for (std::size_t s = 0; s < shard_count; ++s) {
      if (slot->release_at[s] == static_cast<std::ptrdiff_t>(idx)) {
        shards_->MarkCommitted(static_cast<int>(s), epoch);
      }
    }
  }
  shards_->MarkAllCommitted(epoch);
  slot->commit_evals += evals;
  slot->commit_replans += replans;
}

PlannerFactory MakeDispatchWindowFactory(PlannerConfig config) {
  return [config](PlanningContext* ctx, Fleet* fleet) {
    return std::make_unique<DispatchWindowPlanner>(ctx, fleet, config,
                                                   ctx->thread_pool());
  };
}

}  // namespace urpsm
