// Flat-memory hot-path trajectory bench: hub-label (CSR) distance queries
// and per-request insertion latency, recorded machine-readably per PR.
//
// Unlike the google-benchmark microbenches (bench_oracle/bench_insertion,
// which need libbenchmark and report to stdout only), this binary always
// builds, times the two hot paths with the shared harness, and *writes*
// `BENCH_oracle.json` and `BENCH_insertion.json` (one JSON object per
// line, same schema as the BENCH_JSON stdout lines, including per-op
// p50/p95 latency) via the shared trajectory writer: full runs refresh
// the tracked repo-root files, while the CTest smoke entry is redirected
// to the build tree (BENCH_smoke_*.json) so smoke-sized records can never
// corrupt the full-run trajectories CI uploads as artifacts.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/decision.h"
#include "src/graph/builders.h"
#include "src/insertion/insertion.h"
#include "src/model/feasibility.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/parallel/thread_pool.h"
#include "src/shortest/hub_labels.h"
#include "src/shortest/oracle.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/workload/city.h"

namespace urpsm::bench {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

bool g_smoke = false;  // set once in main, before any Record call

void Record(std::vector<std::string>* out, const std::string& name,
            std::vector<std::pair<std::string, std::string>> params,
            double wall_ms, double throughput, double p50_ms, double p95_ms,
            double p99_ms) {
  // Mark smoke-sized runs so a trajectory refreshed by the CTest smoke
  // entry is never mistaken for a full measurement.
  if (g_smoke) params.emplace_back("smoke", "1");
  out->push_back(FormatJsonLine(name, params, wall_ms, throughput, p50_ms,
                                p95_ms, p99_ms));
  EmitJsonLine(name, params, wall_ms, throughput, p50_ms, p95_ms, p99_ms);
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// ------------------------------------------------------------------ oracle

void BenchOracle(bool smoke, std::vector<std::string>* lines) {
  const double s = EnvScale();
  const RoadNetwork graph = MakeNycLike(0.12 * s, 1);
  const auto n = graph.num_vertices();

  const auto seq_t0 = Clock::now();
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  const double seq_build_ms = MsSince(seq_t0);

  ThreadPool pool(4);
  const auto par_t0 = Clock::now();
  const HubLabelOracle par_labels = HubLabelOracle::Build(graph, &pool);
  const double par_build_ms = MsSince(par_t0);
  if (!par_labels.SameLabels(labels)) {
    std::fprintf(stderr,
                 "bench_hotpath: parallel hub-label build diverged from the "
                 "sequential build!\n");
    std::exit(1);
  }

  Record(lines, "hub_label_build",
         {{"graph", "nyc_like"},
          {"vertices", std::to_string(n)},
          {"threads", "1"},
          {"avg_label", Fmt(labels.average_label_size())}},
         seq_build_ms, n / (seq_build_ms / 1e3), -1.0, -1.0, -1.0);
  Record(lines, "hub_label_build",
         {{"graph", "nyc_like"},
          {"vertices", std::to_string(n)},
          {"threads", "4"}},
         par_build_ms, n / (par_build_ms / 1e3), -1.0, -1.0, -1.0);

  // Random point-to-point queries; latency sampled per batch so the clock
  // overhead does not drown sub-microsecond queries.
  const std::int64_t kQueries = smoke ? 100'000 : 2'000'000;
  constexpr std::int64_t kBatch = 64;
  Rng rng(7);
  std::vector<std::pair<VertexId, VertexId>> pairs(
      static_cast<std::size_t>(kBatch));
  StatsAccumulator per_query_us;
  double sink = 0.0;
  const auto q_t0 = Clock::now();
  for (std::int64_t done = 0; done < kQueries; done += kBatch) {
    for (auto& [u, v] : pairs) {
      u = rng.UniformInt(0, n - 1);
      v = rng.UniformInt(0, n - 1);
    }
    const auto b_t0 = Clock::now();
    for (const auto& [u, v] : pairs) sink += labels.Distance(u, v);
    per_query_us.Add(
        std::chrono::duration<double, std::micro>(Clock::now() - b_t0)
            .count() /
        static_cast<double>(kBatch));
  }
  const double q_ms = MsSince(q_t0);
  if (sink < 0.0) std::printf("unreachable\n");  // keep the loop observable
  Record(lines, "hub_label_query",
         {{"graph", "nyc_like"},
          {"vertices", std::to_string(n)},
          {"layout", "csr"},
          {"queries", std::to_string(kQueries)}},
         q_ms, kQueries / (q_ms / 1e3), per_query_us.Percentile(50) * 1e-3,
         per_query_us.Percentile(95) * 1e-3,
         per_query_us.Percentile(99) * 1e-3);
}

const char* OrderName(VertexOrder order) {
  return order == VertexOrder::kContraction ? "ch" : "degree";
}

// Times random point queries against `labels`, returning wall ms and
// filling per-query microsecond percentiles (batch-sampled like the main
// query bench so the clock never dominates).
double TimeQueries(HubLabelOracle* labels, VertexId n, std::int64_t queries,
                   StatsAccumulator* per_query_us) {
  constexpr std::int64_t kBatch = 64;
  Rng rng(7);
  std::vector<std::pair<VertexId, VertexId>> pairs(
      static_cast<std::size_t>(kBatch));
  double sink = 0.0;
  const auto t0 = Clock::now();
  for (std::int64_t done = 0; done < queries; done += kBatch) {
    for (auto& [u, v] : pairs) {
      u = rng.UniformInt(0, n - 1);
      v = rng.UniformInt(0, n - 1);
    }
    const auto b_t0 = Clock::now();
    for (const auto& [u, v] : pairs) sink += labels->Distance(u, v);
    per_query_us->Add(
        std::chrono::duration<double, std::micro>(Clock::now() - b_t0)
            .count() /
        static_cast<double>(kBatch));
  }
  const double ms = MsSince(t0);
  if (sink < 0.0) std::printf("unreachable\n");
  return ms;
}

// Ordering x quantization axes of the continental-scale oracle. The base
// city records all four configs; the ~10x point records the before/after
// pair (degree+exact is the historical default, CH+quantized the
// continental configuration) so the trajectory shows the label-memory and
// latency movement without paying four full builds at the large scale.
void BenchOracleConfigs(bool smoke, std::vector<std::string>* lines) {
  const double s = EnvScale();
  struct GraphPoint {
    const char* name;
    double scale;
    bool all_configs;
  };
  const std::vector<GraphPoint> points = {
      {"nyc_like", 0.12 * s, true},
      {"nyc_like_10x", 1.2 * s, false},
  };
  for (const GraphPoint& pt : points) {
    const RoadNetwork graph = MakeNycLike(pt.scale, 1);
    const auto n = graph.num_vertices();
    ThreadPool pool(4);
    for (const VertexOrder order :
         {VertexOrder::kDegree, VertexOrder::kContraction}) {
      for (const bool quantize : {false, true}) {
        if (!pt.all_configs &&
            !((order == VertexOrder::kDegree && !quantize) ||
              (order == VertexOrder::kContraction && quantize))) {
          continue;
        }
        OracleOptions opts;
        opts.order = order;
        opts.quantize = quantize;
        const auto b_t0 = Clock::now();
        HubLabelOracle labels = HubLabelOracle::Build(graph, &pool, opts);
        const double build_ms = MsSince(b_t0);
        const std::int64_t queries =
            smoke ? 20'000 : (pt.all_configs ? 500'000 : 200'000);
        StatsAccumulator per_query_us;
        const double q_ms = TimeQueries(&labels, n, queries, &per_query_us);
        Record(lines, "hub_label_config",
               {{"graph", pt.name},
                {"vertices", std::to_string(n)},
                {"order", OrderName(order)},
                {"quantize", quantize ? "1" : "0"},
                {"avg_label", Fmt(labels.average_label_size())},
                {"label_memory_bytes", std::to_string(labels.MemoryBytes())},
                {"build_ms", Fmt(build_ms)},
                {"quant_error_bound", Fmt(labels.QuantizationErrorBound())},
                {"queries", std::to_string(queries)}},
               q_ms, queries / (q_ms / 1e3),
               per_query_us.Percentile(50) * 1e-3,
               per_query_us.Percentile(95) * 1e-3,
               per_query_us.Percentile(99) * 1e-3);
      }
    }

    // Batched multi-source gather vs the point-query loop, in the shape
    // the planner issues (route positions x {origin, destination}). Both
    // modes produce bit-identical cells; the trajectory records the
    // per-cell latency of each.
    HubLabelOracle labels = HubLabelOracle::Build(graph, &pool);
    constexpr int kSources = 16, kTargets = 2;
    const std::int64_t rounds = smoke ? 2'000 : 50'000;
    Rng rng(13);
    std::vector<VertexId> sources(kSources);
    std::vector<VertexId> targets(kTargets);
    std::vector<double> matrix;
    for (const bool batch : {false, true}) {
      StatsAccumulator per_cell_us;
      double sink = 0.0;
      Rng mode_rng(13);
      const auto t0 = Clock::now();
      for (std::int64_t round = 0; round < rounds; ++round) {
        for (auto& v : sources) v = mode_rng.UniformInt(0, n - 1);
        for (auto& v : targets) v = mode_rng.UniformInt(0, n - 1);
        const auto b_t0 = Clock::now();
        if (batch) {
          labels.BatchQuery(sources, targets, &matrix);
          for (const double d : matrix) sink += d;
        } else {
          for (const VertexId u : sources) {
            for (const VertexId v : targets) sink += labels.Distance(u, v);
          }
        }
        per_cell_us.Add(
            std::chrono::duration<double, std::micro>(Clock::now() - b_t0)
                .count() /
            static_cast<double>(kSources * kTargets));
      }
      const double ms = MsSince(t0);
      if (sink < 0.0) std::printf("unreachable\n");
      const std::int64_t cells = rounds * kSources * kTargets;
      Record(lines, "multi_source_gather",
             {{"graph", pt.name},
              {"vertices", std::to_string(n)},
              {"mode", batch ? "batch" : "point"},
              {"sources", std::to_string(kSources)},
              {"targets", std::to_string(kTargets)}},
             ms, cells / (ms / 1e3), per_cell_us.Percentile(50) * 1e-3,
             per_cell_us.Percentile(95) * 1e-3,
             per_cell_us.Percentile(99) * 1e-3);
    }
  }
}

// --------------------------------------------------------------- insertion

struct InsertionScenario {
  explicit InsertionScenario(int stops)
      : graph(MakeGridGraph(40, 40, 0.5)),
        inner(&graph),
        cached(&inner, 1 << 22),
        ctx(&graph, &cached, &requests) {
    Rng rng(42);
    worker = {0, 0, 1 << 20};  // capacity never binds; n drives the cost
    route = Route(worker.initial_location, 0.0);
    while (route.size() < stops) {
      const VertexId o = rng.UniformInt(0, graph.num_vertices() - 1);
      VertexId d = rng.UniformInt(0, graph.num_vertices() - 1);
      if (d == o) d = (d + 1) % graph.num_vertices();
      Request r;
      r.id = static_cast<RequestId>(requests.size());
      r.origin = o;
      r.destination = d;
      r.release_time = 0.0;
      r.deadline = 1e9;  // loose deadlines: operators pay full asymptotic cost
      r.penalty = 1.0;
      requests.push_back(r);
      const InsertionCandidate c = BasicInsertion(worker, route, r, &ctx);
      if (c.feasible()) route.Insert(r, c.i, c.j, &cached);
    }
    Request p;
    p.id = static_cast<RequestId>(requests.size());
    p.origin = 1;
    p.destination = graph.num_vertices() - 2;
    p.release_time = 0.0;
    p.deadline = 1e9;
    requests.push_back(p);
    probe = p;
    BasicInsertion(worker, route, probe, &ctx);  // warm the distance cache
    state = BuildRouteState(route, &ctx);
  }

  RoadNetwork graph;
  DijkstraOracle inner;
  CachedOracle cached;
  std::vector<Request> requests;
  PlanningContext ctx;
  Worker worker;
  Route route;
  Request probe;
  RouteState state;
};

template <typename Op>
void TimeOp(std::vector<std::string>* lines, const std::string& name,
            int stops, std::int64_t ops, std::int64_t batch, Op&& op) {
  StatsAccumulator per_op_us;
  const auto t0 = Clock::now();
  for (std::int64_t done = 0; done < ops; done += batch) {
    const auto b_t0 = Clock::now();
    for (std::int64_t b = 0; b < batch; ++b) op();
    per_op_us.Add(
        std::chrono::duration<double, std::micro>(Clock::now() - b_t0)
            .count() /
        static_cast<double>(batch));
  }
  const double ms = MsSince(t0);
  Record(lines, name, {{"stops", std::to_string(stops)}}, ms, ops / (ms / 1e3),
         per_op_us.Percentile(50) * 1e-3, per_op_us.Percentile(95) * 1e-3,
         per_op_us.Percentile(99) * 1e-3);
}

void BenchInsertion(bool smoke, std::vector<std::string>* lines) {
  const std::vector<int> sizes = smoke ? std::vector<int>{8, 32}
                                       : std::vector<int>{16, 64, 128};
  for (const int stops : sizes) {
    InsertionScenario sc(stops);
    const std::int64_t ops = smoke ? 2'000 : 50'000;
    // Per-request planning path: gather the distance columns, then the
    // linear DP over flat arrays (route state comes from the fleet cache
    // in the real planner, so it is prebuilt here).
    TimeOp(lines, "linear_dp_insertion", stops, ops, 16, [&] {
      const InsertionCandidate c = LinearDpInsertion(
          sc.worker, sc.route, sc.state, sc.probe, &sc.ctx);
      if (c.i == -2) std::printf("impossible\n");
    });
    TimeOp(lines, "naive_dp_insertion", stops, ops / 4, 8, [&] {
      const InsertionCandidate c = NaiveDpInsertion(
          sc.worker, sc.route, sc.state, sc.probe, &sc.ctx);
      if (c.i == -2) std::printf("impossible\n");
    });
    TimeOp(lines, "basic_insertion", stops, smoke ? 50 : 500, 2, [&] {
      const InsertionCandidate c =
          BasicInsertion(sc.worker, sc.route, sc.probe, &sc.ctx);
      if (c.i == -2) std::printf("impossible\n");
    });
    TimeOp(lines, "build_route_state", stops, ops, 16, [&] {
      const RouteState st = BuildRouteState(sc.route, &sc.ctx);
      if (st.n < 0) std::printf("impossible\n");
    });
    // Decision-phase Euclidean lower bound, before/after: the reference
    // evaluates per-position hypot calls on demand; the production path
    // gathers the per-request columns once over RouteState::pts. Same
    // result bit-for-bit (decision_test fuzzes that); only the cost
    // profile differs.
    const std::int64_t lb_ops = smoke ? 5'000 : 200'000;
    TimeOp(lines, "decision_lb_reference", stops, lb_ops, 32, [&] {
      const double lb = DecisionLowerBoundReference(
          sc.worker, sc.route, sc.state, sc.probe,
          sc.ctx.DirectDist(sc.probe.id), sc.graph);
      if (lb < 0.0) std::printf("impossible\n");
    });
    TimeOp(lines, "decision_lb_columns", stops, lb_ops, 32, [&] {
      const double lb = DecisionLowerBound(
          sc.worker, sc.route, sc.state, sc.probe,
          sc.ctx.DirectDist(sc.probe.id), sc.graph);
      if (lb < 0.0) std::printf("impossible\n");
    });
  }
}

// ------------------------------------------------- observability overhead
//
// The engine ships with instrumentation compiled in everywhere; the
// registry/tracer contract is that a run with observability *disabled*
// pays only dead branches. This measures that contract on the hottest
// planning kernel: LinearDpInsertion bare vs. wrapped in exactly the
// per-operation instrumentation the engine adds (a disabled counter, a
// disabled scoped timer, a disabled trace span). The measured overhead
// is recorded in the BENCH line (`overhead_pct`; the guarantee is <2%).

void BenchObsOverhead(bool smoke, std::vector<std::string>* lines) {
  InsertionScenario sc(32);
  const std::int64_t ops = smoke ? 20'000 : 400'000;
  obs::Registry reg(/*enabled=*/false);
  obs::Counter* counter = reg.GetCounter("bench.ops");
  obs::Histogram* hist = reg.GetHistogram("bench.op_ms");
  obs::TraceRecorder tracer{std::string()};  // empty path: disabled
  double sink = 0.0;
  const auto op = [&] {
    const InsertionCandidate c =
        LinearDpInsertion(sc.worker, sc.route, sc.state, sc.probe, &sc.ctx);
    sink += c.delta;
  };
  // Best-of-3 per variant damps scheduler noise; both variants run the
  // identical kernel, so the delta isolates the disabled instruments.
  const auto best_of = [&](bool instrumented) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = Clock::now();
      for (std::int64_t i = 0; i < ops; ++i) {
        if (instrumented) {
          const obs::ScopedTimerMs timer(hist);
          const obs::TraceSpan span(&tracer, "bench.op");
          obs::Inc(counter);
          op();
        } else {
          op();
        }
      }
      best = std::min(best, MsSince(t0));
    }
    return best;
  };
  const double bare_ms = best_of(false);
  const double instrumented_ms = best_of(true);
  if (sink < 0.0) std::printf("impossible\n");  // keep the loops observable
  const double overhead_pct =
      bare_ms > 0.0 ? (instrumented_ms - bare_ms) / bare_ms * 100.0 : 0.0;
  Record(lines, "obs_overhead_disabled",
         {{"stops", "32"},
          {"ops", std::to_string(ops)},
          {"bare_ms", Fmt(bare_ms)},
          {"overhead_pct", Fmt(overhead_pct)}},
         instrumented_ms, ops / (instrumented_ms / 1e3), -1.0, -1.0, -1.0);
}

}  // namespace
}  // namespace urpsm::bench

int main(int argc, char** argv) {
  const bool smoke = urpsm::bench::InitBench(argc, argv);
  urpsm::bench::g_smoke = smoke;
  std::vector<std::string> oracle_lines;
  urpsm::bench::BenchOracle(smoke, &oracle_lines);
  urpsm::bench::BenchOracleConfigs(smoke, &oracle_lines);
  urpsm::bench::WriteTrajectory("oracle", smoke, oracle_lines);
  std::vector<std::string> insertion_lines;
  urpsm::bench::BenchInsertion(smoke, &insertion_lines);
  urpsm::bench::BenchObsOverhead(smoke, &insertion_lines);
  urpsm::bench::WriteTrajectory("insertion", smoke, insertion_lines);
  return 0;
}
