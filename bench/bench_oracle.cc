// Microbenchmark of the shortest-distance substrate: Dijkstra vs
// bidirectional Dijkstra vs hub labels vs the LRU-cached hub labels the
// simulations actually use. Hub labels are the paper's O(1)-ish query
// assumption [9]; this shows why that assumption is reasonable.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/shortest/alt.h"
#include "src/shortest/bidijkstra.h"
#include "src/shortest/dijkstra.h"
#include "src/shortest/contraction.h"
#include "src/shortest/hub_labels.h"
#include "src/shortest/oracle.h"
#include "src/util/rng.h"
#include "src/workload/city.h"

namespace urpsm {
namespace {

struct OracleFixture {
  OracleFixture() : graph(MakeNycLike(0.08, 5)) {
    labels = std::make_unique<HubLabelOracle>(HubLabelOracle::Build(graph));
    OracleOptions ch_order;
    ch_order.order = VertexOrder::kContraction;
    labels_ch = std::make_unique<HubLabelOracle>(
        HubLabelOracle::Build(graph, nullptr, ch_order));
    OracleOptions quant = ch_order;
    quant.quantize = true;
    labels_quant = std::make_unique<HubLabelOracle>(
        HubLabelOracle::Build(graph, nullptr, quant));
    ch = std::make_unique<ContractionHierarchy>(
        ContractionHierarchy::Build(graph));
    alt = std::make_unique<AltOracle>(AltOracle::Build(graph, 8));
  }
  RoadNetwork graph;
  std::unique_ptr<HubLabelOracle> labels;
  std::unique_ptr<HubLabelOracle> labels_ch;     // CH contraction order
  std::unique_ptr<HubLabelOracle> labels_quant;  // CH order + 32-bit labels
  std::unique_ptr<ContractionHierarchy> ch;
  std::unique_ptr<AltOracle> alt;
};

OracleFixture& Fixture() {
  static OracleFixture* f = new OracleFixture();
  return *f;
}

void BM_Dijkstra(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(1);
  for (auto _ : state) {
    const VertexId s = rng.UniformInt(0, f.graph.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, f.graph.num_vertices() - 1);
    benchmark::DoNotOptimize(DijkstraDistance(f.graph, s, t));
  }
}

void BM_BidirectionalDijkstra(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(1);
  for (auto _ : state) {
    const VertexId s = rng.UniformInt(0, f.graph.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, f.graph.num_vertices() - 1);
    benchmark::DoNotOptimize(BidirectionalDistance(f.graph, s, t));
  }
}

void BM_HubLabels(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(1);
  for (auto _ : state) {
    const VertexId s = rng.UniformInt(0, f.graph.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, f.graph.num_vertices() - 1);
    benchmark::DoNotOptimize(f.labels->Distance(s, t));
  }
}

void BM_HubLabelsChOrder(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(1);
  for (auto _ : state) {
    const VertexId s = rng.UniformInt(0, f.graph.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, f.graph.num_vertices() - 1);
    benchmark::DoNotOptimize(f.labels_ch->Distance(s, t));
  }
  state.counters["label_bytes"] =
      static_cast<double>(f.labels_ch->MemoryBytes());
}

void BM_HubLabelsQuantized(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(1);
  for (auto _ : state) {
    const VertexId s = rng.UniformInt(0, f.graph.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, f.graph.num_vertices() - 1);
    benchmark::DoNotOptimize(f.labels_quant->Distance(s, t));
  }
  state.counters["label_bytes"] =
      static_cast<double>(f.labels_quant->MemoryBytes());
}

// The planner's gather shape: route positions x {origin, destination} in
// one multi-source sweep vs the same cells as point queries.
void BM_HubLabelsBatchGather(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(1);
  const int ns = static_cast<int>(state.range(0));
  std::vector<VertexId> sources(static_cast<std::size_t>(ns));
  std::vector<VertexId> targets(2);
  std::vector<double> matrix;
  for (auto _ : state) {
    for (auto& v : sources) v = rng.UniformInt(0, f.graph.num_vertices() - 1);
    for (auto& v : targets) v = rng.UniformInt(0, f.graph.num_vertices() - 1);
    f.labels->BatchQuery(sources, targets, &matrix);
    benchmark::DoNotOptimize(matrix.data());
  }
  state.SetItemsProcessed(state.iterations() * ns * 2);
}

void BM_HubLabelsPointGather(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(1);
  const int ns = static_cast<int>(state.range(0));
  std::vector<VertexId> sources(static_cast<std::size_t>(ns));
  std::vector<VertexId> targets(2);
  for (auto _ : state) {
    for (auto& v : sources) v = rng.UniformInt(0, f.graph.num_vertices() - 1);
    for (auto& v : targets) v = rng.UniformInt(0, f.graph.num_vertices() - 1);
    double sink = 0.0;
    for (const VertexId s : sources) {
      for (const VertexId t : targets) sink += f.labels->Distance(s, t);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * ns * 2);
}

void BM_CachedHubLabels(benchmark::State& state) {
  auto& f = Fixture();
  CachedOracle cached(f.labels.get(), 1 << 20);
  Rng rng(1);
  // Zipf-ish reuse: a small hot set, as route planning produces.
  std::vector<std::pair<VertexId, VertexId>> hot;
  for (int i = 0; i < 64; ++i) {
    hot.push_back({rng.UniformInt(0, f.graph.num_vertices() - 1),
                   rng.UniformInt(0, f.graph.num_vertices() - 1)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = hot[i++ & 63];
    benchmark::DoNotOptimize(cached.Distance(s, t));
  }
}

void BM_ContractionHierarchy(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(1);
  for (auto _ : state) {
    const VertexId s = rng.UniformInt(0, f.graph.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, f.graph.num_vertices() - 1);
    benchmark::DoNotOptimize(f.ch->Distance(s, t));
  }
}

void BM_AltOracle(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(1);
  for (auto _ : state) {
    const VertexId s = rng.UniformInt(0, f.graph.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, f.graph.num_vertices() - 1);
    benchmark::DoNotOptimize(f.alt->Distance(s, t));
  }
}

BENCHMARK(BM_Dijkstra);
BENCHMARK(BM_BidirectionalDijkstra);
BENCHMARK(BM_HubLabels);
BENCHMARK(BM_HubLabelsChOrder);
BENCHMARK(BM_HubLabelsQuantized);
BENCHMARK(BM_HubLabelsBatchGather)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_HubLabelsPointGather)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_ContractionHierarchy);
BENCHMARK(BM_AltOracle);
BENCHMARK(BM_CachedHubLabels);

}  // namespace
}  // namespace urpsm
