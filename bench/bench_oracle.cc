// Microbenchmark of the shortest-distance substrate: Dijkstra vs
// bidirectional Dijkstra vs hub labels vs the LRU-cached hub labels the
// simulations actually use. Hub labels are the paper's O(1)-ish query
// assumption [9]; this shows why that assumption is reasonable.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/shortest/alt.h"
#include "src/shortest/bidijkstra.h"
#include "src/shortest/dijkstra.h"
#include "src/shortest/contraction.h"
#include "src/shortest/hub_labels.h"
#include "src/shortest/oracle.h"
#include "src/util/rng.h"
#include "src/workload/city.h"

namespace urpsm {
namespace {

struct OracleFixture {
  OracleFixture() : graph(MakeNycLike(0.08, 5)) {
    labels = std::make_unique<HubLabelOracle>(HubLabelOracle::Build(graph));
    ch = std::make_unique<ContractionHierarchy>(
        ContractionHierarchy::Build(graph));
    alt = std::make_unique<AltOracle>(AltOracle::Build(graph, 8));
  }
  RoadNetwork graph;
  std::unique_ptr<HubLabelOracle> labels;
  std::unique_ptr<ContractionHierarchy> ch;
  std::unique_ptr<AltOracle> alt;
};

OracleFixture& Fixture() {
  static OracleFixture* f = new OracleFixture();
  return *f;
}

void BM_Dijkstra(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(1);
  for (auto _ : state) {
    const VertexId s = rng.UniformInt(0, f.graph.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, f.graph.num_vertices() - 1);
    benchmark::DoNotOptimize(DijkstraDistance(f.graph, s, t));
  }
}

void BM_BidirectionalDijkstra(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(1);
  for (auto _ : state) {
    const VertexId s = rng.UniformInt(0, f.graph.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, f.graph.num_vertices() - 1);
    benchmark::DoNotOptimize(BidirectionalDistance(f.graph, s, t));
  }
}

void BM_HubLabels(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(1);
  for (auto _ : state) {
    const VertexId s = rng.UniformInt(0, f.graph.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, f.graph.num_vertices() - 1);
    benchmark::DoNotOptimize(f.labels->Distance(s, t));
  }
}

void BM_CachedHubLabels(benchmark::State& state) {
  auto& f = Fixture();
  CachedOracle cached(f.labels.get(), 1 << 20);
  Rng rng(1);
  // Zipf-ish reuse: a small hot set, as route planning produces.
  std::vector<std::pair<VertexId, VertexId>> hot;
  for (int i = 0; i < 64; ++i) {
    hot.push_back({rng.UniformInt(0, f.graph.num_vertices() - 1),
                   rng.UniformInt(0, f.graph.num_vertices() - 1)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = hot[i++ & 63];
    benchmark::DoNotOptimize(cached.Distance(s, t));
  }
}

void BM_ContractionHierarchy(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(1);
  for (auto _ : state) {
    const VertexId s = rng.UniformInt(0, f.graph.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, f.graph.num_vertices() - 1);
    benchmark::DoNotOptimize(f.ch->Distance(s, t));
  }
}

void BM_AltOracle(benchmark::State& state) {
  auto& f = Fixture();
  Rng rng(1);
  for (auto _ : state) {
    const VertexId s = rng.UniformInt(0, f.graph.num_vertices() - 1);
    const VertexId t = rng.UniformInt(0, f.graph.num_vertices() - 1);
    benchmark::DoNotOptimize(f.alt->Distance(s, t));
  }
}

BENCHMARK(BM_Dijkstra);
BENCHMARK(BM_BidirectionalDijkstra);
BENCHMARK(BM_HubLabels);
BENCHMARK(BM_ContractionHierarchy);
BENCHMARK(BM_AltOracle);
BENCHMARK(BM_CachedHubLabels);

}  // namespace
}  // namespace urpsm
