// Fig. 7 reproduction: impact of the penalty factor pr (x dis(o_r, d_r);
// Chengdu 2-30, NYC 10-50). Larger penalties raise every algorithm's
// unified cost; pruneGreedyDP stays lowest, and — per the paper — this
// sweep is equivalent to varying the c_r/c_w ratio of the revenue
// objective.

#include <cstdio>

#include "bench/harness.h"

using namespace urpsm;
using namespace urpsm::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  for (bool nyc : {false, true}) {
    const City city = LoadCity(nyc);
    std::printf("=== Fig. 7 (%s): %d vertices, %zu requests ===\n\n",
                city.name.c_str(), city.graph.num_vertices(),
                city.requests.size());
    const Defaults d;
    const FigureResults r = RunSweep(
        city, AllAlgorithms(PlannerConfig{.alpha = d.alpha}),
        city.penalty_sweep,
        [&](double v, int rep, std::vector<Worker>* workers,
            std::vector<Request>* requests, SimOptions* /*options*/) {
          Rng rng(29 + static_cast<std::uint64_t>(rep) * 7717);
          *workers = GenerateWorkers(city.graph, city.default_workers,
                                     d.capacity_mean, &rng);
          *requests = city.requests;
          SetPenaltyFactors(requests, v, city.labels.get());
        });
    PrintFigure("Fig. 7", "pr (x dis)", city, r);
  }
  return 0;
}
