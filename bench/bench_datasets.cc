// Table 4 reproduction: statistics of the evaluation datasets. The paper
// reports the real NYC / Chengdu figures; this prints our scaled synthetic
// substitutes side by side with the originals, so the preserved ratios are
// visible (NYC larger than Chengdu in requests, vertices and edges).

#include <cstdio>

#include "bench/harness.h"

using namespace urpsm;
using namespace urpsm::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  TablePrinter t({"Dataset", "#(Requests)", "#(Vertices)", "#(Edges)"});
  for (bool nyc : {true, false}) {
    const City city = LoadCity(nyc);
    t.AddRow({city.name + " (synthetic)", std::to_string(city.requests.size()),
              std::to_string(city.graph.num_vertices()),
              std::to_string(city.graph.num_undirected_edges())});
  }
  t.AddRow({"NYC (paper)", "517100", "807795", "2100632"});
  t.AddRow({"Chengdu (paper)", "259347", "214440", "466330"});
  std::printf("Table 4 — dataset statistics\n%s\n", t.ToString().c_str());

  // Hub-label oracle stats (the paper's shortest-path substrate [9]).
  TablePrinter labels({"Dataset", "avg label", "label MB"});
  for (bool nyc : {true, false}) {
    const City city = LoadCity(nyc);
    labels.AddRow({city.name,
                   TablePrinter::Num(city.labels->average_label_size(), 1),
                   TablePrinter::Num(city.labels->MemoryBytes() / 1048576.0,
                                     2)});
  }
  std::printf("Hub labeling statistics\n%s\n", labels.ToString().c_str());
  return 0;
}
