// Microbenchmark of the paper's central claim (Sec. 4): insertion drops
// from O(n^3) (basic) through O(n^2) (naive DP) to O(n) (linear DP) in
// the route length n. google-benchmark sweeps n and reports per-op time;
// the complexity columns make the asymptotic gap visible directly.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/graph/builders.h"
#include "src/insertion/insertion.h"
#include "src/model/feasibility.h"
#include "src/shortest/oracle.h"
#include "src/util/rng.h"

namespace urpsm {
namespace {

/// Shared scenario: a worker with an n-stop route on a grid city, plus a
/// probe request. Distances come from a pre-warmed cache so the benchmark
/// measures insertion logic, not Dijkstra.
class InsertionScenario {
 public:
  explicit InsertionScenario(int stops)
      : graph_(MakeGridGraph(40, 40, 0.5)),
        inner_(&graph_),
        cached_(&inner_, 1 << 22),
        ctx_(&graph_, &cached_, &requests_) {
    Rng rng(42);
    worker_ = {0, 0, 1 << 20};  // capacity never binds; n drives the cost
    route_ = Route(worker_.initial_location, 0.0);
    while (route_.size() < stops) {
      const VertexId o = rng.UniformInt(0, graph_.num_vertices() - 1);
      VertexId d = rng.UniformInt(0, graph_.num_vertices() - 1);
      if (d == o) d = (d + 1) % graph_.num_vertices();
      Request r;
      r.id = static_cast<RequestId>(requests_.size());
      r.origin = o;
      r.destination = d;
      r.release_time = 0.0;
      r.deadline = 1e9;  // loose deadlines: no feasibility pruning, so the
      r.penalty = 1.0;   // operators pay their full asymptotic cost
      requests_.push_back(r);
      const InsertionCandidate c =
          BasicInsertion(worker_, route_, r, &ctx_);
      if (c.feasible()) route_.Insert(r, c.i, c.j, &cached_);
    }
    Request probe;
    probe.id = static_cast<RequestId>(requests_.size());
    probe.origin = 1;
    probe.destination = graph_.num_vertices() - 2;
    probe.release_time = 0.0;
    probe.deadline = 1e9;
    requests_.push_back(probe);
    probe_ = probe;
    // Warm every distance the operators can touch.
    BasicInsertion(worker_, route_, probe_, &ctx_);
    state_ = BuildRouteState(route_, &ctx_);
  }

  const Worker& worker() const { return worker_; }
  const Route& route() const { return route_; }
  const Request& probe() const { return probe_; }
  const RouteState& state() const { return state_; }
  PlanningContext* ctx() { return &ctx_; }

 private:
  RoadNetwork graph_;
  DijkstraOracle inner_;
  CachedOracle cached_;
  std::vector<Request> requests_;
  PlanningContext ctx_;
  Worker worker_;
  Route route_;
  Request probe_;
  RouteState state_;
};

InsertionScenario* GetScenario(int stops) {
  // One scenario per size, built lazily and reused across iterations.
  static std::vector<std::unique_ptr<InsertionScenario>> cache(512);
  auto& slot = cache[static_cast<std::size_t>(stops)];
  if (!slot) slot = std::make_unique<InsertionScenario>(stops);
  return slot.get();
}

void BM_BasicInsertion(benchmark::State& state) {
  InsertionScenario* s = GetScenario(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BasicInsertion(s->worker(), s->route(), s->probe(), s->ctx()));
  }
  state.SetComplexityN(state.range(0));
}

void BM_NaiveDpInsertion(benchmark::State& state) {
  InsertionScenario* s = GetScenario(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveDpInsertion(s->worker(), s->route(),
                                              s->state(), s->probe(),
                                              s->ctx()));
  }
  state.SetComplexityN(state.range(0));
}

void BM_LinearDpInsertion(benchmark::State& state) {
  InsertionScenario* s = GetScenario(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LinearDpInsertion(s->worker(), s->route(),
                                               s->state(), s->probe(),
                                               s->ctx()));
  }
  state.SetComplexityN(state.range(0));
}

void BM_BuildRouteState(benchmark::State& state) {
  InsertionScenario* s = GetScenario(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildRouteState(s->route(), s->ctx()));
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_BasicInsertion)->RangeMultiplier(2)->Range(4, 128)->Complexity();
BENCHMARK(BM_NaiveDpInsertion)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity();
BENCHMARK(BM_LinearDpInsertion)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity();
BENCHMARK(BM_BuildRouteState)->RangeMultiplier(2)->Range(4, 256)->Complexity();

}  // namespace
}  // namespace urpsm
