// Decision-phase lower bound quality (Sec. 5.1): how tight LB(Delta*) is
// against the exact minimal insertion cost, and confirmation that the
// decision phase issues exactly one shortest-distance query per request
// regardless of fleet size (Lemma 7).

#include <cstdio>

#include "bench/harness.h"
#include "src/core/decision.h"
#include "src/insertion/insertion.h"

using namespace urpsm;
using namespace urpsm::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const City city = LoadCity(/*nyc=*/false);
  Rng rng(5);
  const std::vector<Worker> workers =
      GenerateWorkers(city.graph, city.default_workers, 4.0, &rng);

  // Warm the fleet with a prefix of the day, then probe LB vs exact.
  Fleet fleet(workers, &city.graph);
  std::vector<Request> requests = city.requests;
  PlanningContext ctx(&city.graph, city.labels.get(), &requests);

  int probes = 0, feasible_pairs = 0;
  double ratio_sum = 0.0;
  std::int64_t decision_queries = 0;
  const std::size_t warm = std::min<std::size_t>(400, requests.size());
  for (std::size_t i = 0; i < warm; ++i) {
    const Request& r = requests[i];
    fleet.AdvanceTo(r.release_time);
    const double L = ctx.DirectDist(r.id);
    // Probe a sample of workers.
    for (WorkerId w = 0; w < fleet.size(); w += 7) {
      fleet.Touch(w, r.release_time);
      const RouteState st = BuildRouteState(fleet.route(w), &ctx);
      const std::int64_t q0 = city.labels->query_count();
      const double lb = DecisionLowerBound(fleet.worker(w), fleet.route(w),
                                           st, r, L, city.graph);
      decision_queries += city.labels->query_count() - q0;
      const InsertionCandidate exact =
          LinearDpInsertion(fleet.worker(w), fleet.route(w), st, r, &ctx);
      ++probes;
      if (exact.feasible() && lb < kInf) {
        ++feasible_pairs;
        ratio_sum += exact.delta > 1e-9 ? lb / exact.delta : 1.0;
      }
    }
    // Keep the fleet evolving: assign to the nearest feasible worker.
    InsertionCandidate best;
    WorkerId best_w = kInvalidWorker;
    for (WorkerId w = 0; w < fleet.size(); ++w) {
      const InsertionCandidate c =
          LinearDpInsertion(fleet.worker(w), fleet.route(w), r, &ctx);
      if (c.feasible() && c.delta < best.delta) {
        best = c;
        best_w = w;
      }
    }
    if (best_w != kInvalidWorker) {
      fleet.ApplyInsertion(best_w, r, best.i, best.j, ctx.oracle());
    }
  }

  std::printf("Decision lower-bound quality (Chengdu-like, %d workers)\n\n",
              city.default_workers);
  std::printf("probes                       : %d\n", probes);
  std::printf("feasible (LB, exact) pairs   : %d\n", feasible_pairs);
  std::printf("mean LB / Delta* tightness   : %.3f (1.0 = exact)\n",
              feasible_pairs > 0 ? ratio_sum / feasible_pairs : 0.0);
  std::printf("distance queries inside LB   : %lld (Lemma 7 says 0; the one "
              "query per request is L, paid before the loop)\n",
              static_cast<long long>(decision_queries));
  return decision_queries == 0 ? 0 : 1;
}
