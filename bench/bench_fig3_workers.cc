// Fig. 3 reproduction: impact of the number of workers |W| on unified
// cost, served rate and response time for all five algorithms, on both
// cities. Also reports the distance queries saved by Lemma-8 pruning
// (the paper quotes 5.27-45.16 billion saved at full scale; here the
// instances are scaled down, so expect millions).

#include <cstdio>

#include "bench/harness.h"

using namespace urpsm;
using namespace urpsm::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  for (bool nyc : {false, true}) {
    const City city = LoadCity(nyc);
    std::printf("=== Fig. 3 (%s): %d vertices, %zu requests ===\n\n",
                city.name.c_str(), city.graph.num_vertices(),
                city.requests.size());
    std::vector<double> values(city.worker_sweep.begin(),
                               city.worker_sweep.end());
    const Defaults d;
    const FigureResults r = RunSweep(
        city, AllAlgorithms(PlannerConfig{.alpha = d.alpha}), values,
        [&](double v, int rep, std::vector<Worker>* workers,
            std::vector<Request>* requests, SimOptions* options) {
          Rng rng(static_cast<std::uint64_t>(v) * 31 + 1 +
                  static_cast<std::uint64_t>(rep) * 7717);
          *workers = GenerateWorkers(city.graph, static_cast<int>(v),
                                     d.capacity_mean, &rng);
          *requests = city.requests;
          options->alpha = d.alpha;
        });
    PrintFigure("Fig. 3", "|W|", city, r);

    // Pruning savings panel (text of Sec. 6.2, varying |W|).
    TablePrinter savings({"|W|", "GreedyDP queries", "pruneGreedyDP queries",
                          "saved"});
    const std::size_t greedy_idx = 3, prune_idx = 4;
    for (std::size_t v = 0; v < r.value_labels.size(); ++v) {
      const auto gq = r.reports[greedy_idx][v].distance_queries;
      const auto pq = r.reports[prune_idx][v].distance_queries;
      savings.AddRow({r.value_labels[v], std::to_string(gq),
                      std::to_string(pq), std::to_string(gq - pq)});
    }
    std::printf("Fig. 3 — distance queries saved by pruning (%s)\n%s\n",
                city.name.c_str(), savings.ToString().c_str());
  }
  return 0;
}
